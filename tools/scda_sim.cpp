// scda_sim — command-line experiment runner.
//
// Runs a workload against an SCDA or RandTCP cloud and writes the result
// series to CSV files (FCT CDF, AFCT-vs-size, throughput timeseries) plus
// a summary to stdout. This is the tool a user points at their own traces.
//
// Examples:
//   scda_sim --policy scda --workload video --duration 100 --out run1
//   scda_sim --policy randtcp --workload dc --k 1 --seed 7 --out base
//   scda_sim --workload trace --trace mytrace.csv --out replay
//   scda_sim --record-trace video_sample.csv --workload video --samples 1000
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/cloud.h"
#include "obs/observability.h"
#include "stats/collector.h"
#include "stats/metrics_collect.h"
#include "stats/throughput.h"
#include "util/args.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"
#include "workload/trace.h"

using namespace scda;

namespace {

void usage() {
  std::puts(
      "scda_sim — SCDA cloud datacenter simulator\n"
      "\n"
      "  --policy scda|randtcp     placement + transport (default scda)\n"
      "  --workload video|video-noctrl|dc|pareto|trace   (default pareto)\n"
      "  --trace FILE              trace file for --workload trace\n"
      "  --duration SECONDS        arrival window (default 60)\n"
      "  --drain SECONDS           extra drain time (default 20)\n"
      "  --arrival-rate PER_SEC    workload arrival rate override\n"
      "  --read-fraction F         fraction of ops that are reads (0.3)\n"
      "  --base-mbps X             link base bandwidth X (default 500)\n"
      "  --k FACTOR                agg<->core bandwidth factor (default 3)\n"
      "  --agg N --tors N --servers N --clients N    topology shape\n"
      "  --tau SECONDS             control interval (default 0.05)\n"
      "  --metric exact|simplified rate metric (default exact)\n"
      "  --fluid 0|1               hybrid fluid/packet mode: elephants\n"
      "                            advance analytically between RA epochs\n"
      "                            (default 0; docs/fluid_engine.md)\n"
      "  --fluid-threshold-bytes B fluid/packet split point (default 1 MiB)\n"
      "  --rscale-mbps R           dormant-server threshold (default off)\n"
      "  --replicate 0|1           replicate written content (default 1)\n"
      "  --replicas K              replica count target (default 2)\n"
      "  --churn 0|1               failure injection (default 0;\n"
      "                            docs/scenarios.md)\n"
      "  --server-mtbf S           mean server up-time (0 = no stochastic\n"
      "                            server churn)\n"
      "  --server-mttr S           mean server down-time (default 10)\n"
      "  --link-mtbf S             mean ToR-trunk up-time (0 = off)\n"
      "  --link-mttr S             mean ToR-trunk down-time (default 5)\n"
      "  --nns-mtbf S              mean name-node up-time (0 = off);\n"
      "                            enables NNS standby failover + retries\n"
      "  --nns-mttr S              mean name-node down-time (default 5)\n"
      "  --rebalance S             proactive rebalance scan interval\n"
      "                            (default 0 = off; docs/scenarios.md)\n"
      "  --kill SPEC               outage server|link|pod|nns:IDX@AT[+DUR]\n"
      "                            e.g. --kill pod:0@30+20 (repeatable via\n"
      "                            comma: server:3@30+5,nns:0@30+20)\n"
      "  --seed N                  RNG seed\n"
      "  --out PREFIX              write PREFIX_{cdf,afct,thpt}.csv\n"
      "  --trace-out FILE          record a Chrome trace-event JSON of the\n"
      "                            run to FILE (open with ui.perfetto.dev;\n"
      "                            --trace names an *input* workload trace)\n"
      "  --metrics 0|1             print metrics snapshot line (default 1)\n"
      "  --record-trace FILE       sample the workload into FILE and exit\n"
      "  --samples N               --record-trace records (default 1000)\n");
}

std::unique_ptr<workload::Generator> make_generator(
    const std::string& name, const util::ArgParser& args) {
  if (name == "video" || name == "video-noctrl") {
    workload::VideoWorkloadConfig w;
    w.include_control_flows = name == "video";
    w.video_arrival_rate = args.get_double("arrival-rate", 2.0);
    return std::make_unique<workload::VideoWorkload>(w);
  }
  if (name == "dc") {
    workload::DatacenterWorkloadConfig w;
    w.arrival_rate = args.get_double("arrival-rate", 60.0);
    return std::make_unique<workload::DatacenterWorkload>(w);
  }
  if (name == "pareto") {
    workload::ParetoPoissonConfig w;
    w.arrival_rate = args.get_double("arrival-rate", 50.0);
    return std::make_unique<workload::ParetoPoissonWorkload>(w);
  }
  if (name == "trace") {
    const std::string path = args.get("trace");
    if (path.empty())
      throw std::invalid_argument("--workload trace requires --trace FILE");
    return workload::TraceWorkload::from_file(path);
  }
  throw std::invalid_argument("unknown workload: " + name);
}

void write_csv(const std::string& path, const std::string& header,
               const std::function<void(std::ofstream&)>& body) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << header << "\n";
  body(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }

  try {
    const std::string wl_name = args.get("workload", "pareto");

    if (args.has("record-trace")) {
      sim::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
      auto gen = make_generator(wl_name, args);
      const auto n = static_cast<std::size_t>(args.get_int("samples", 1000));
      workload::write_trace(args.get("record-trace"),
                            workload::sample_generator(*gen, rng, n));
      std::printf("recorded %zu %s requests to %s\n", n, wl_name.c_str(),
                  args.get("record-trace").c_str());
      return 0;
    }

    const std::string policy = args.get("policy", "scda");
    if (policy != "scda" && policy != "randtcp")
      throw std::invalid_argument("unknown policy: " + policy);

    sim::Simulator sim(static_cast<std::uint64_t>(args.get_int("seed", 1)));

    obs::Observability observ;
    const std::string trace_out = args.get("trace-out");
    if (!trace_out.empty()) observ.enable_trace();
    sim.set_observability(&observ);

    core::CloudConfig cfg;
    cfg.topology.base_bps = util::mbps(args.get_double("base-mbps", 500));
    cfg.topology.k_factor = args.get_double("k", 3.0);
    cfg.topology.n_agg = static_cast<std::int32_t>(args.get_int("agg", 4));
    cfg.topology.tors_per_agg =
        static_cast<std::int32_t>(args.get_int("tors", 5));
    cfg.topology.servers_per_tor =
        static_cast<std::int32_t>(args.get_int("servers", 8));
    cfg.topology.n_clients =
        static_cast<std::int32_t>(args.get_int("clients", 64));
    cfg.params.tau = args.get_double("tau", 0.05);
    cfg.params.rscale =
        util::mbps(args.get_double("rscale-mbps", 0.0));
    const std::string metric = args.get("metric", "exact");
    if (metric == "simplified") {
      cfg.params.metric = core::RateMetricKind::kSimplified;
    } else if (metric != "exact") {
      throw std::invalid_argument("unknown metric: " + metric);
    }
    cfg.enable_replication = args.get_bool("replicate", true);
    cfg.params.replicas = static_cast<std::int32_t>(
        args.get_int("replicas", cfg.params.replicas));
    cfg.fluid.enabled = args.get_bool("fluid", false);
    cfg.fluid.threshold_bytes =
        args.get_int("fluid-threshold-bytes", cfg.fluid.threshold_bytes);
    cfg.churn.enabled = args.get_bool("churn", false);
    cfg.churn.server_mtbf_s = args.get_double("server-mtbf", 0.0);
    cfg.churn.server_mttr_s = args.get_double("server-mttr", 10.0);
    cfg.churn.link_mtbf_s = args.get_double("link-mtbf", 0.0);
    cfg.churn.link_mttr_s = args.get_double("link-mttr", 5.0);
    cfg.churn.nns_mtbf_s = args.get_double("nns-mtbf", 0.0);
    cfg.churn.nns_mttr_s = args.get_double("nns-mttr", 5.0);
    cfg.params.rebalance_interval_s = args.get_double("rebalance", 0.0);
    if (args.has("kill")) {
      cfg.churn.scripted = sim::parse_kill_specs(args.get("kill"));
      cfg.churn.enabled = true;
      // Validate indices against the run's census now: a typo is a clear
      // CLI error instead of a silently dropped schedule row.
      sim::ChurnShape shape;
      shape.n_servers = cfg.topology.n_servers();
      shape.n_links = cfg.topology.n_tors();
      shape.servers_per_pod =
          cfg.topology.tors_per_agg * cfg.topology.servers_per_tor;
      shape.n_nns =
          2 * std::max<std::int32_t>(1, cfg.params.n_name_nodes);
      sim::validate_scripted(cfg.churn.scripted, shape);
    }
    if (cfg.churn.enabled)
      cfg.churn.horizon_s =
          args.get_double("duration", 60.0) + args.get_double("drain", 20.0);
    if (policy == "randtcp") {
      cfg.placement = core::PlacementPolicy::kRandom;
      cfg.transport = transport::TransportKind::kTcp;
    }

    core::Cloud cloud(sim, cfg);
    stats::FlowStatsCollector collector(cloud);
    stats::ThroughputSampler thpt(sim, cloud.transports(), 1.0);

    workload::DriverConfig dc;
    dc.end_time_s = args.get_double("duration", 60.0);
    dc.read_fraction = args.get_double("read-fraction", 0.3);
    workload::WorkloadDriver driver(cloud, make_generator(wl_name, args),
                                    dc);
    driver.start();

    const double horizon = dc.end_time_s + args.get_double("drain", 20.0);
    const auto events = sim.run_until(sim::secs(horizon));
    thpt.stop();

    const stats::Summary s = collector.summary();
    std::printf("policy=%s workload=%s duration=%.0fs seed=%lld\n",
                policy.c_str(), wl_name.c_str(), dc.end_time_s,
                static_cast<long long>(args.get_int("seed", 1)));
    std::printf(
        "flows=%llu mean_fct=%.3fs median=%.3fs p95=%.3fs goodput=%.1fMbps\n",
        static_cast<unsigned long long>(s.flows), s.mean_fct_s,
        s.median_fct_s, s.p95_fct_s, s.goodput_bps / 1e6);
    std::printf("sla_violations=%llu failed_reads=%llu energy=%.1fkJ "
                "events=%llu\n",
                static_cast<unsigned long long>(
                    cloud.allocator().sla_violations()),
                static_cast<unsigned long long>(cloud.failed_reads()),
                cloud.total_energy_j() / 1e3,
                static_cast<unsigned long long>(events));
    if (cfg.churn.enabled) {
      const core::ChurnStats& ch = cloud.churn_stats();
      std::printf(
          "churn: failovers=%llu aborted=%llu repairs=%llu/%llu "
          "repair_bytes=%.1fMB under_replicated=%.2fs lost=%llu\n",
          static_cast<unsigned long long>(ch.failovers),
          static_cast<unsigned long long>(ch.aborted_flows),
          static_cast<unsigned long long>(ch.repair_flows_completed),
          static_cast<unsigned long long>(ch.repair_flows_started),
          static_cast<double>(ch.repair_bytes) / 1e6,
          cloud.under_replicated_seconds(),
          static_cast<unsigned long long>(ch.objects_lost));
    }
    if (cloud.nns_failover_enabled()) {
      const core::MetadataStats& ms = cloud.meta_stats();
      std::printf(
          "metadata: timeouts=%llu retries=%llu failovers=%llu "
          "unavailable=%llu dropped=%llu mirrors=%llu resyncs=%llu/%llu\n",
          static_cast<unsigned long long>(ms.requests_timed_out),
          static_cast<unsigned long long>(ms.retries),
          static_cast<unsigned long long>(ms.failovers),
          static_cast<unsigned long long>(ms.unavailable),
          static_cast<unsigned long long>(ms.requests_dropped),
          static_cast<unsigned long long>(ms.mirror_updates),
          static_cast<unsigned long long>(ms.resyncs_completed),
          static_cast<unsigned long long>(ms.resyncs_started));
    }
    if (cloud.rebalance_enabled()) {
      const core::RebalanceStats& rs = cloud.rebalance_stats();
      std::printf(
          "rebalance: scans=%llu moves=%llu/%llu bytes=%.1fMB skipped=%llu\n",
          static_cast<unsigned long long>(rs.scans),
          static_cast<unsigned long long>(rs.flows_completed),
          static_cast<unsigned long long>(rs.flows_started),
          static_cast<double>(rs.bytes_moved) / 1e6,
          static_cast<unsigned long long>(rs.skipped));
    }

    if (args.get_bool("metrics", true)) {
      stats::collect_run_metrics(observ.metrics(), sim, cloud);
      stats::emit_metrics(stdout, observ.metrics().snapshot());
    }
    if (obs::TraceRecorder* tr = observ.tracer()) {
      if (!tr->write_file(trace_out))
        throw std::runtime_error("cannot write " + trace_out);
      std::printf("wrote %s (%llu events, %llu dropped)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(tr->recorded()),
                  static_cast<unsigned long long>(tr->dropped()));
    }

    const std::string out = args.get("out");
    if (!out.empty()) {
      write_csv(out + "_cdf.csv", "fct_s,cdf", [&](std::ofstream& f) {
        for (const auto& p : collector.fct_cdf())
          f << p.x << ',' << p.p << '\n';
      });
      write_csv(out + "_afct.csv", "size_bytes,afct_s,flows",
                [&](std::ofstream& f) {
                  for (const auto& b : collector.afct_by_size(1e6, 100e6))
                    f << b.size_mid << ',' << b.afct_s << ',' << b.count
                      << '\n';
                });
      write_csv(out + "_thpt.csv", "time_s,kbytes_per_s",
                [&](std::ofstream& f) {
                  for (const auto& t : thpt.series())
                    f << t.time_s << ',' << t.kbytes_per_s << '\n';
                });
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scda_sim: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
  return 0;
}
