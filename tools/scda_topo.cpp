// scda-topo — topology inspector.
//
// Builds one of the supported datacenter fabrics and prints its shape,
// per-tier capacities, representative path lengths and the equal-cost path
// diversity — handy when sizing an experiment before running scda-sim.
//
//   scda-topo --fabric tree --agg 4 --tors 5 --servers 8
//   scda-topo --fabric leafspine --spines 4 --leaves 8
//   scda-topo --fabric fattree --k 4
#include <cstdio>
#include <memory>
#include <string>

#include "net/fat_tree.h"
#include "net/general_topology.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/args.h"
#include "util/units.h"

using namespace scda;

namespace {

void header(const char* name, const net::Network& net) {
  std::printf("fabric: %s\n", name);
  std::printf("nodes: %zu, unidirectional links: %zu\n", net.node_count(),
              net.link_count());
}

void paths_between(const net::Network& net, const char* what, net::NodeId a,
                   net::NodeId b) {
  const auto paths = net::all_shortest_paths(net, a, b);
  if (paths.empty()) {
    std::printf("%-28s unreachable\n", what);
    return;
  }
  double min_cap = 1e18;
  double prop = 0;
  for (const auto l : paths.front()) {
    min_cap = std::min(min_cap, net.link(l).capacity_bps());
    prop += net.link(l).prop_delay_s();
  }
  std::printf("%-28s %zu hop(s), %zu equal-cost path(s), bottleneck "
              "%.0f Mbps, one-way prop %.1f ms\n",
              what, paths.front().size(), paths.size(), min_cap / 1e6,
              prop * 1e3);
}

int run_tree(const util::ArgParser& args) {
  sim::Simulator sim;
  net::TopologyConfig cfg;
  cfg.n_agg = static_cast<std::int32_t>(args.get_int("agg", 4));
  cfg.tors_per_agg = static_cast<std::int32_t>(args.get_int("tors", 5));
  cfg.servers_per_tor =
      static_cast<std::int32_t>(args.get_int("servers", 8));
  cfg.n_clients = static_cast<std::int32_t>(args.get_int("clients", 64));
  cfg.base_bps = util::mbps(args.get_double("base-mbps", 500));
  cfg.k_factor = args.get_double("k", 3.0);
  net::ThreeTierTree t(sim, cfg);

  header("three-tier tree (paper figure 6)", t.net());
  std::printf("servers: %d  tors: %d  aggs: %d  clients: %d\n",
              cfg.n_servers(), cfg.n_tors(), cfg.n_agg, cfg.n_clients);
  std::printf("capacities: server %.0fM | tor %.0fM | agg %.0fM (K=%.1f) | "
              "core-gw %.0fM\n",
              cfg.base_bps.bps() / 1e6, cfg.base_bps.bps() / 1e6,
              cfg.k_factor * cfg.base_bps.bps() / 1e6, cfg.k_factor,
              cfg.core_gw_mult * cfg.base_bps.bps() / 1e6);
  paths_between(t.net(), "client -> server:", t.clients()[0],
                t.servers()[0]);
  paths_between(t.net(), "server -> server (rack):", t.servers()[0],
                t.servers()[1]);
  paths_between(t.net(), "server -> server (x-agg):", t.servers()[0],
                t.servers()[static_cast<std::size_t>(cfg.n_servers()) - 1]);
  return 0;
}

int run_leafspine(const util::ArgParser& args) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.n_spines = static_cast<std::int32_t>(args.get_int("spines", 4));
  cfg.n_leaves = static_cast<std::int32_t>(args.get_int("leaves", 8));
  cfg.servers_per_leaf =
      static_cast<std::int32_t>(args.get_int("servers", 8));
  cfg.n_clients = static_cast<std::int32_t>(args.get_int("clients", 32));
  cfg.server_bps = util::mbps(args.get_double("base-mbps", 500));
  cfg.fabric_bps = cfg.server_bps;
  net::LeafSpine t(sim, cfg);

  header("leaf-spine (paper section IX)", t.net());
  std::printf("servers: %d  leaves: %d  spines: %d  clients: %d\n",
              cfg.n_servers(), cfg.n_leaves, cfg.n_spines, cfg.n_clients);
  paths_between(t.net(), "server -> server (leaf):", t.servers()[0],
                t.servers()[1]);
  paths_between(t.net(), "server -> server (x-leaf):", t.servers()[0],
                t.servers()[static_cast<std::size_t>(cfg.n_servers()) - 1]);
  paths_between(t.net(), "client -> server:", t.clients()[0],
                t.servers()[0]);
  return 0;
}

int run_fattree(const util::ArgParser& args) {
  sim::Simulator sim;
  net::FatTreeConfig cfg;
  cfg.k = static_cast<std::int32_t>(args.get_int("k", 4));
  cfg.n_clients = static_cast<std::int32_t>(args.get_int("clients", 8));
  cfg.link_bps = util::mbps(args.get_double("base-mbps", 500));
  net::FatTree t(sim, cfg);

  header("k-ary fat-tree (refs [1]/[24])", t.net());
  std::printf("k=%d: pods: %d  cores: %d  servers: %d  clients: %d\n",
              cfg.k, cfg.pods(), cfg.cores(), cfg.n_servers(),
              cfg.n_clients);
  paths_between(t.net(), "server -> server (edge):", t.servers()[0],
                t.servers()[1]);
  paths_between(t.net(), "server -> server (pod):", t.servers()[0],
                t.servers()[2]);
  paths_between(t.net(), "server -> server (x-pod):", t.servers()[0],
                t.servers()[static_cast<std::size_t>(cfg.n_servers()) - 1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.has("help")) {
    std::puts("scda-topo --fabric tree|leafspine|fattree [shape flags]\n"
              "  tree:      --agg --tors --servers --clients --base-mbps --k\n"
              "  leafspine: --spines --leaves --servers --clients\n"
              "  fattree:   --k --clients");
    return 0;
  }
  try {
    const std::string fabric = args.get("fabric", "tree");
    if (fabric == "tree") return run_tree(args);
    if (fabric == "leafspine") return run_leafspine(args);
    if (fabric == "fattree") return run_fattree(args);
    throw std::invalid_argument("unknown fabric: " + fabric);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scda-topo: %s\n", e.what());
    return 1;
  }
}
