// scda_sweep — parallel multi-seed experiment sweeps from the command line.
//
// Expands {arms} x {grid cells} x {seeds} into independent simulation runs,
// shards them across a worker pool (one private Simulator per run), and
// prints one aggregated summary per (cell, arm): mean ± stddev [CI95] of
// the headline metrics, plus mean per-figure series in --json mode. The
// aggregated output is a pure function of the spec — byte-identical for
// any --workers value.
//
// Examples:
//   scda_sweep --workload pareto --seeds 8 --workers 4
//   scda_sweep --workload dc --seeds 4 --grid "tau=0.01,0.05,0.2"
//   scda_sweep --arms scda --seeds 16 --grid "k_factor=1,3;base_bps=2e8,5e8"
//   scda_sweep --seeds 8 --json > sweep.jsonl
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "runner/sweep.h"
#include "runner/worker_pool.h"
#include "util/args.h"
#include "util/units.h"
#include "workload/generators.h"

using namespace scda;

namespace {

void usage() {
  std::puts(
      "scda_sweep — parallel multi-seed SCDA experiment sweeps\n"
      "\n"
      "  --workload video|video-noctrl|dc|pareto   (default pareto)\n"
      "  --arms both|scda|randtcp  systems to run (default both)\n"
      "  --seeds N                 replications per arm (default 4)\n"
      "  --workers N               worker threads (default: SCDA_WORKERS\n"
      "                            or all cores)\n"
      "  --grid SPEC               swept parameters, e.g.\n"
      "                            \"tau=0.01,0.05;k_factor=1,3\"\n"
      "  --duration SECONDS        arrival window (default 30)\n"
      "  --drain SECONDS           extra drain time (default 15)\n"
      "  --arrival-rate PER_SEC    workload arrival rate override\n"
      "  --read-fraction F         fraction of ops that are reads (0.3)\n"
      "  --base-mbps X             link base bandwidth X (default 200)\n"
      "  --k FACTOR                agg<->core bandwidth factor (default 3)\n"
      "  --agg N --tors N --servers N --clients N    topology shape\n"
      "  --tau SECONDS             control interval (default 0.05)\n"
      "  --fluid 0|1               hybrid fluid/packet mode (default 0;\n"
      "                            also available as a --grid axis)\n"
      "  --fluid-threshold-bytes B fluid/packet split point (default 1 MiB)\n"
      "  --churn 0|1               failure injection (default 0; also a\n"
      "                            --grid axis, as are server_mtbf_s,\n"
      "                            server_mttr_s, link_mtbf_s, link_mttr_s,\n"
      "                            nns_mtbf_s, nns_mttr_s, replicas,\n"
      "                            repair_priority, metadata_timeout_s,\n"
      "                            metadata_max_attempts,\n"
      "                            rebalance_interval_s, rebalance_priority)\n"
      "  --server-mtbf S           mean server up-time (0 = off)\n"
      "  --server-mttr S           mean server down-time (default 10)\n"
      "  --link-mtbf S             mean ToR-trunk up-time (0 = off)\n"
      "  --link-mttr S             mean ToR-trunk down-time (default 5)\n"
      "  --nns-mtbf S              mean name-node up-time (0 = off);\n"
      "                            enables NNS standby failover + retries\n"
      "  --nns-mttr S              mean name-node down-time (default 5)\n"
      "  --rebalance S             proactive rebalance scan interval\n"
      "                            (default 0 = off)\n"
      "  --replicas K              replica count target (default 2)\n"
      "  --replicate 0|1           replicate written content (default 0\n"
      "                            in sweeps; required for churn repair)\n"
      "  --seed N                  base RNG seed (replication r derives\n"
      "                            its seed from it; r0 uses it verbatim)\n"
      "  --json                    one JSON object per (cell, arm) instead\n"
      "                            of text summaries\n"
      "  --trace FILE              record a Chrome trace-event JSON of run\n"
      "                            index 0 (first arm, seed 0) to FILE;\n"
      "                            open with Perfetto (ui.perfetto.dev)\n");
}

std::vector<runner::GridAxis> parse_grid(const std::string& spec) {
  std::vector<runner::GridAxis> grid;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string axis = spec.substr(start, end - start);
    start = end + 1;
    if (axis.empty()) continue;
    const std::size_t eq = axis.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--grid: expected name=v1,v2,... in '" +
                                  axis + "'");
    runner::GridAxis ga;
    ga.param = axis.substr(0, eq);
    std::size_t vstart = eq + 1;
    while (vstart <= axis.size()) {
      std::size_t vend = axis.find(',', vstart);
      if (vend == std::string::npos) vend = axis.size();
      const std::string v = axis.substr(vstart, vend - vstart);
      vstart = vend + 1;
      if (v.empty()) continue;
      std::size_t pos = 0;
      const double value = std::stod(v, &pos);
      if (pos != v.size())
        throw std::invalid_argument("--grid: bad value '" + v + "'");
      ga.values.push_back(value);
    }
    if (ga.values.empty())
      throw std::invalid_argument("--grid: axis '" + ga.param +
                                  "' has no values");
    grid.push_back(std::move(ga));
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }

  try {
    runner::SweepSpec spec;
    runner::ExperimentConfig& cfg = spec.base;

    const std::string wl = args.get("workload", "pareto");
    cfg.name = wl + " sweep";
    cfg.topology.base_bps = util::mbps(args.get_double("base-mbps", 200));
    cfg.topology.k_factor = args.get_double("k", 3.0);
    cfg.topology.n_agg = static_cast<std::int32_t>(args.get_int("agg", 2));
    cfg.topology.tors_per_agg =
        static_cast<std::int32_t>(args.get_int("tors", 2));
    cfg.topology.servers_per_tor =
        static_cast<std::int32_t>(args.get_int("servers", 4));
    cfg.topology.n_clients =
        static_cast<std::int32_t>(args.get_int("clients", 16));
    cfg.params.tau = args.get_double("tau", 0.05);
    cfg.fluid.enabled = args.get_bool("fluid", false);
    cfg.fluid.threshold_bytes =
        args.get_int("fluid-threshold-bytes", cfg.fluid.threshold_bytes);
    cfg.churn.enabled = args.get_bool("churn", false);
    cfg.churn.server_mtbf_s = args.get_double("server-mtbf", 0.0);
    cfg.churn.server_mttr_s = args.get_double("server-mttr", 10.0);
    cfg.churn.link_mtbf_s = args.get_double("link-mtbf", 0.0);
    cfg.churn.link_mttr_s = args.get_double("link-mttr", 5.0);
    cfg.churn.nns_mtbf_s = args.get_double("nns-mtbf", 0.0);
    cfg.churn.nns_mttr_s = args.get_double("nns-mttr", 5.0);
    cfg.params.rebalance_interval_s = args.get_double("rebalance", 0.0);
    cfg.params.replicas = static_cast<std::int32_t>(
        args.get_int("replicas", cfg.params.replicas));
    cfg.enable_replication = args.get_bool("replicate", cfg.enable_replication);
    cfg.driver.end_time_s = args.get_double("duration", 30.0);
    cfg.sim_time_s = cfg.driver.end_time_s + args.get_double("drain", 15.0);
    cfg.driver.read_fraction = args.get_double("read-fraction", 0.3);
    cfg.seed = static_cast<std::uint64_t>(
        args.get_int("seed", 0x5cda2013LL));

    const double rate = args.get_double(
        "arrival-rate", wl == "video" || wl == "video-noctrl" ? 2.0
                        : wl == "dc"                          ? 60.0
                                                              : 30.0);
    if (wl == "video" || wl == "video-noctrl") {
      const bool ctrl = wl == "video";
      cfg.make_generator = [rate, ctrl] {
        workload::VideoWorkloadConfig w;
        w.include_control_flows = ctrl;
        w.video_arrival_rate = rate;
        return std::make_unique<workload::VideoWorkload>(w);
      };
    } else if (wl == "dc") {
      cfg.make_generator = [rate] {
        workload::DatacenterWorkloadConfig w;
        w.arrival_rate = rate;
        return std::make_unique<workload::DatacenterWorkload>(w);
      };
    } else if (wl == "pareto") {
      cfg.make_generator = [rate] {
        workload::ParetoPoissonConfig w;
        w.arrival_rate = rate;
        return std::make_unique<workload::ParetoPoissonWorkload>(w);
      };
    } else {
      throw std::invalid_argument("unknown workload: " + wl);
    }

    const std::string arms = args.get("arms", "both");
    if (arms == "both" || arms == "scda")
      spec.arms.push_back({"SCDA", core::PlacementPolicy::kScda,
                           transport::TransportKind::kScda});
    if (arms == "both" || arms == "randtcp")
      spec.arms.push_back({"RandTCP", core::PlacementPolicy::kRandom,
                           transport::TransportKind::kTcp});
    if (spec.arms.empty())
      throw std::invalid_argument("unknown arms: " + arms);

    spec.seeds = static_cast<std::uint64_t>(args.get_int("seeds", 4));
    if (spec.seeds < 1) throw std::invalid_argument("--seeds must be >= 1");
    spec.grid = parse_grid(args.get("grid"));
    spec.trace_path = args.get("trace");

    const unsigned workers = args.has("workers")
                                 ? static_cast<unsigned>(
                                       args.get_int("workers", 1))
                                 : runner::default_workers();
    runner::WorkerPool pool(workers);

    const auto t0 = std::chrono::steady_clock::now();
    const runner::SweepResult res = runner::run_sweep(spec, pool);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const bool json = args.has("json");
    for (const runner::ArmSummary& s : runner::aggregate_sweep(spec, res)) {
      const std::string label = cfg.name + " " + s.label;
      if (json) {
        stats::emit_aggregate_json(stdout, label, s.agg);
      } else {
        stats::emit_aggregate_text(stdout, label, s.agg);
      }
    }
    // Timing goes to stderr so stdout stays a pure function of the spec
    // (the 1-vs-N-worker byte-identity check compares stdout).
    std::fprintf(stderr, "# %zu runs on %u workers in %.2f s\n",
                 res.runs.size(), pool.workers(), wall_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scda_sweep: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
  return 0;
}
