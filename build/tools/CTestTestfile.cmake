# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(scda_sim_smoke "/root/repo/build/tools/scda-sim" "--workload" "pareto" "--duration" "2" "--arrival-rate" "5" "--agg" "1" "--tors" "2" "--servers" "2" "--clients" "2" "--drain" "5")
set_tests_properties(scda_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scda_sim_help "/root/repo/build/tools/scda-sim" "--help")
set_tests_properties(scda_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scda_sim_rejects_bad_args "/root/repo/build/tools/scda-sim" "--policy" "bogus")
set_tests_properties(scda_sim_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scda_topo_smoke "/root/repo/build/tools/scda-topo" "--fabric" "fattree" "--k" "4")
set_tests_properties(scda_topo_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
