file(REMOVE_RECURSE
  "CMakeFiles/scda_topo_cli.dir/scda_topo.cpp.o"
  "CMakeFiles/scda_topo_cli.dir/scda_topo.cpp.o.d"
  "scda-topo"
  "scda-topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_topo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
