# Empty dependencies file for scda_topo_cli.
# This may be replaced when dependencies are built.
