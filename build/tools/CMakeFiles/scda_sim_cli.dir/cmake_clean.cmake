file(REMOVE_RECURSE
  "CMakeFiles/scda_sim_cli.dir/scda_sim.cpp.o"
  "CMakeFiles/scda_sim_cli.dir/scda_sim.cpp.o.d"
  "scda-sim"
  "scda-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
