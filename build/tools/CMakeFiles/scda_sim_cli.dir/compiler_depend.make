# Empty compiler generated dependencies file for scda_sim_cli.
# This may be replaced when dependencies are built.
