# Empty compiler generated dependencies file for power_aware_cloud.
# This may be replaced when dependencies are built.
