file(REMOVE_RECURSE
  "CMakeFiles/power_aware_cloud.dir/power_aware_cloud.cpp.o"
  "CMakeFiles/power_aware_cloud.dir/power_aware_cloud.cpp.o.d"
  "power_aware_cloud"
  "power_aware_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_aware_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
