file(REMOVE_RECURSE
  "CMakeFiles/video_cdn.dir/video_cdn.cpp.o"
  "CMakeFiles/video_cdn.dir/video_cdn.cpp.o.d"
  "video_cdn"
  "video_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
