# Empty compiler generated dependencies file for video_cdn.
# This may be replaced when dependencies are built.
