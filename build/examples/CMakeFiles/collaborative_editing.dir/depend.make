# Empty dependencies file for collaborative_editing.
# This may be replaced when dependencies are built.
