# Empty compiler generated dependencies file for datacenter_storage.
# This may be replaced when dependencies are built.
