file(REMOVE_RECURSE
  "CMakeFiles/datacenter_storage.dir/datacenter_storage.cpp.o"
  "CMakeFiles/datacenter_storage.dir/datacenter_storage.cpp.o.d"
  "datacenter_storage"
  "datacenter_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
