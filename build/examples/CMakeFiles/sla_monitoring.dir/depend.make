# Empty dependencies file for sla_monitoring.
# This may be replaced when dependencies are built.
