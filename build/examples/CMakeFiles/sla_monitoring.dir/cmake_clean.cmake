file(REMOVE_RECURSE
  "CMakeFiles/sla_monitoring.dir/sla_monitoring.cpp.o"
  "CMakeFiles/sla_monitoring.dir/sla_monitoring.cpp.o.d"
  "sla_monitoring"
  "sla_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
