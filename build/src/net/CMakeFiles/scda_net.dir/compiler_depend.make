# Empty compiler generated dependencies file for scda_net.
# This may be replaced when dependencies are built.
