file(REMOVE_RECURSE
  "libscda_net.a"
)
