file(REMOVE_RECURSE
  "CMakeFiles/scda_net.dir/fat_tree.cpp.o"
  "CMakeFiles/scda_net.dir/fat_tree.cpp.o.d"
  "CMakeFiles/scda_net.dir/general_topology.cpp.o"
  "CMakeFiles/scda_net.dir/general_topology.cpp.o.d"
  "CMakeFiles/scda_net.dir/link.cpp.o"
  "CMakeFiles/scda_net.dir/link.cpp.o.d"
  "CMakeFiles/scda_net.dir/network.cpp.o"
  "CMakeFiles/scda_net.dir/network.cpp.o.d"
  "CMakeFiles/scda_net.dir/topology.cpp.o"
  "CMakeFiles/scda_net.dir/topology.cpp.o.d"
  "libscda_net.a"
  "libscda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
