file(REMOVE_RECURSE
  "libscda_stats.a"
)
