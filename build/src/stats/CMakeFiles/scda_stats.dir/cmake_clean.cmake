file(REMOVE_RECURSE
  "CMakeFiles/scda_stats.dir/collector.cpp.o"
  "CMakeFiles/scda_stats.dir/collector.cpp.o.d"
  "libscda_stats.a"
  "libscda_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
