# Empty compiler generated dependencies file for scda_stats.
# This may be replaced when dependencies are built.
