file(REMOVE_RECURSE
  "CMakeFiles/scda_transport.dir/receiver.cpp.o"
  "CMakeFiles/scda_transport.dir/receiver.cpp.o.d"
  "CMakeFiles/scda_transport.dir/sender.cpp.o"
  "CMakeFiles/scda_transport.dir/sender.cpp.o.d"
  "CMakeFiles/scda_transport.dir/transport_manager.cpp.o"
  "CMakeFiles/scda_transport.dir/transport_manager.cpp.o.d"
  "libscda_transport.a"
  "libscda_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
