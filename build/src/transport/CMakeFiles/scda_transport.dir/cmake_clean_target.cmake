file(REMOVE_RECURSE
  "libscda_transport.a"
)
