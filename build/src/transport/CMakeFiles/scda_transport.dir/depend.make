# Empty dependencies file for scda_transport.
# This may be replaced when dependencies are built.
