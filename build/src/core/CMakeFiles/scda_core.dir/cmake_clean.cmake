file(REMOVE_RECURSE
  "CMakeFiles/scda_core.dir/cloud.cpp.o"
  "CMakeFiles/scda_core.dir/cloud.cpp.o.d"
  "CMakeFiles/scda_core.dir/hierarchy.cpp.o"
  "CMakeFiles/scda_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/scda_core.dir/path_selector.cpp.o"
  "CMakeFiles/scda_core.dir/path_selector.cpp.o.d"
  "CMakeFiles/scda_core.dir/rate_allocator.cpp.o"
  "CMakeFiles/scda_core.dir/rate_allocator.cpp.o.d"
  "CMakeFiles/scda_core.dir/selection.cpp.o"
  "CMakeFiles/scda_core.dir/selection.cpp.o.d"
  "CMakeFiles/scda_core.dir/sla.cpp.o"
  "CMakeFiles/scda_core.dir/sla.cpp.o.d"
  "CMakeFiles/scda_core.dir/water_filling.cpp.o"
  "CMakeFiles/scda_core.dir/water_filling.cpp.o.d"
  "libscda_core.a"
  "libscda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
