# Empty dependencies file for scda_core.
# This may be replaced when dependencies are built.
