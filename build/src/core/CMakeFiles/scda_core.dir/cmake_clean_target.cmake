file(REMOVE_RECURSE
  "libscda_core.a"
)
