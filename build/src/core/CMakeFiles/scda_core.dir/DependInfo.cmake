
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cloud.cpp" "src/core/CMakeFiles/scda_core.dir/cloud.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/cloud.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/scda_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/path_selector.cpp" "src/core/CMakeFiles/scda_core.dir/path_selector.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/path_selector.cpp.o.d"
  "/root/repo/src/core/rate_allocator.cpp" "src/core/CMakeFiles/scda_core.dir/rate_allocator.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/rate_allocator.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/scda_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/sla.cpp" "src/core/CMakeFiles/scda_core.dir/sla.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/sla.cpp.o.d"
  "/root/repo/src/core/water_filling.cpp" "src/core/CMakeFiles/scda_core.dir/water_filling.cpp.o" "gcc" "src/core/CMakeFiles/scda_core.dir/water_filling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/scda_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
