# Empty compiler generated dependencies file for scda_workload.
# This may be replaced when dependencies are built.
