file(REMOVE_RECURSE
  "libscda_workload.a"
)
