file(REMOVE_RECURSE
  "CMakeFiles/scda_workload.dir/driver.cpp.o"
  "CMakeFiles/scda_workload.dir/driver.cpp.o.d"
  "CMakeFiles/scda_workload.dir/generators.cpp.o"
  "CMakeFiles/scda_workload.dir/generators.cpp.o.d"
  "CMakeFiles/scda_workload.dir/trace.cpp.o"
  "CMakeFiles/scda_workload.dir/trace.cpp.o.d"
  "libscda_workload.a"
  "libscda_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scda_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
