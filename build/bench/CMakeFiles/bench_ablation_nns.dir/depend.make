# Empty dependencies file for bench_ablation_nns.
# This may be replaced when dependencies are built.
