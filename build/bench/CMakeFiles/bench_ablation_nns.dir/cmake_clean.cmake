file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nns.dir/bench_ablation_nns.cpp.o"
  "CMakeFiles/bench_ablation_nns.dir/bench_ablation_nns.cpp.o.d"
  "bench_ablation_nns"
  "bench_ablation_nns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
