# Empty compiler generated dependencies file for bench_fig07_09_video_ctrl.
# This may be replaced when dependencies are built.
