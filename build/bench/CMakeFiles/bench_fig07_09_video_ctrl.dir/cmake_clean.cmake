file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_09_video_ctrl.dir/bench_fig07_09_video_ctrl.cpp.o"
  "CMakeFiles/bench_fig07_09_video_ctrl.dir/bench_fig07_09_video_ctrl.cpp.o.d"
  "bench_fig07_09_video_ctrl"
  "bench_fig07_09_video_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_09_video_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
