# Empty compiler generated dependencies file for bench_fig17_18_pareto_poisson.
# This may be replaced when dependencies are built.
