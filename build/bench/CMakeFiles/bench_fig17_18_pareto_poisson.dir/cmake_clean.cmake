file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_pareto_poisson.dir/bench_fig17_18_pareto_poisson.cpp.o"
  "CMakeFiles/bench_fig17_18_pareto_poisson.dir/bench_fig17_18_pareto_poisson.cpp.o.d"
  "bench_fig17_18_pareto_poisson"
  "bench_fig17_18_pareto_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_pareto_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
