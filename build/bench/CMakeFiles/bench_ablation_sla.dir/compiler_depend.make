# Empty compiler generated dependencies file for bench_ablation_sla.
# This may be replaced when dependencies are built.
