file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sla.dir/bench_ablation_sla.cpp.o"
  "CMakeFiles/bench_ablation_sla.dir/bench_ablation_sla.cpp.o.d"
  "bench_ablation_sla"
  "bench_ablation_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
