# Empty dependencies file for bench_fig15_16_dc_k3.
# This may be replaced when dependencies are built.
