# Empty dependencies file for bench_fig13_14_dc_k1.
# This may be replaced when dependencies are built.
