file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_dc_k1.dir/bench_fig13_14_dc_k1.cpp.o"
  "CMakeFiles/bench_fig13_14_dc_k1.dir/bench_fig13_14_dc_k1.cpp.o.d"
  "bench_fig13_14_dc_k1"
  "bench_fig13_14_dc_k1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_dc_k1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
