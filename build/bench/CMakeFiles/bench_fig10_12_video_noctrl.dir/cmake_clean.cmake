file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_12_video_noctrl.dir/bench_fig10_12_video_noctrl.cpp.o"
  "CMakeFiles/bench_fig10_12_video_noctrl.dir/bench_fig10_12_video_noctrl.cpp.o.d"
  "bench_fig10_12_video_noctrl"
  "bench_fig10_12_video_noctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_12_video_noctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
