# Empty compiler generated dependencies file for bench_fig10_12_video_noctrl.
# This may be replaced when dependencies are built.
