# Empty dependencies file for test_sjf_queue.
# This may be replaced when dependencies are built.
