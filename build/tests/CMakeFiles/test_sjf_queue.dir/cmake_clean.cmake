file(REMOVE_RECURSE
  "CMakeFiles/test_sjf_queue.dir/test_sjf_queue.cpp.o"
  "CMakeFiles/test_sjf_queue.dir/test_sjf_queue.cpp.o.d"
  "test_sjf_queue"
  "test_sjf_queue.pdb"
  "test_sjf_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sjf_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
