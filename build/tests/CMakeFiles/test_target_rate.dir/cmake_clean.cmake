file(REMOVE_RECURSE
  "CMakeFiles/test_target_rate.dir/test_target_rate.cpp.o"
  "CMakeFiles/test_target_rate.dir/test_target_rate.cpp.o.d"
  "test_target_rate"
  "test_target_rate.pdb"
  "test_target_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_target_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
