# Empty dependencies file for test_target_rate.
# This may be replaced when dependencies are built.
