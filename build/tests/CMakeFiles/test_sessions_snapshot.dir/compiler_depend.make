# Empty compiler generated dependencies file for test_sessions_snapshot.
# This may be replaced when dependencies are built.
