file(REMOVE_RECURSE
  "CMakeFiles/test_sessions_snapshot.dir/test_sessions_snapshot.cpp.o"
  "CMakeFiles/test_sessions_snapshot.dir/test_sessions_snapshot.cpp.o.d"
  "test_sessions_snapshot"
  "test_sessions_snapshot.pdb"
  "test_sessions_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sessions_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
