# Empty dependencies file for test_general_topology.
# This may be replaced when dependencies are built.
