file(REMOVE_RECURSE
  "CMakeFiles/test_general_topology.dir/test_general_topology.cpp.o"
  "CMakeFiles/test_general_topology.dir/test_general_topology.cpp.o.d"
  "test_general_topology"
  "test_general_topology.pdb"
  "test_general_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_general_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
