# Empty compiler generated dependencies file for test_water_filling.
# This may be replaced when dependencies are built.
