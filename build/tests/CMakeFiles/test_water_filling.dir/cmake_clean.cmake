file(REMOVE_RECURSE
  "CMakeFiles/test_water_filling.dir/test_water_filling.cpp.o"
  "CMakeFiles/test_water_filling.dir/test_water_filling.cpp.o.d"
  "test_water_filling"
  "test_water_filling.pdb"
  "test_water_filling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_water_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
