file(REMOVE_RECURSE
  "CMakeFiles/test_name_node.dir/test_name_node.cpp.o"
  "CMakeFiles/test_name_node.dir/test_name_node.cpp.o.d"
  "test_name_node"
  "test_name_node.pdb"
  "test_name_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
