# Empty dependencies file for test_name_node.
# This may be replaced when dependencies are built.
