file(REMOVE_RECURSE
  "CMakeFiles/test_queue_sampler.dir/test_queue_sampler.cpp.o"
  "CMakeFiles/test_queue_sampler.dir/test_queue_sampler.cpp.o.d"
  "test_queue_sampler"
  "test_queue_sampler.pdb"
  "test_queue_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
