# Empty compiler generated dependencies file for test_queue_sampler.
# This may be replaced when dependencies are built.
