# Empty compiler generated dependencies file for test_server_resources.
# This may be replaced when dependencies are built.
