file(REMOVE_RECURSE
  "CMakeFiles/test_server_resources.dir/test_server_resources.cpp.o"
  "CMakeFiles/test_server_resources.dir/test_server_resources.cpp.o.d"
  "test_server_resources"
  "test_server_resources.pdb"
  "test_server_resources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
