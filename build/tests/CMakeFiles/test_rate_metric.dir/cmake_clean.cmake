file(REMOVE_RECURSE
  "CMakeFiles/test_rate_metric.dir/test_rate_metric.cpp.o"
  "CMakeFiles/test_rate_metric.dir/test_rate_metric.cpp.o.d"
  "test_rate_metric"
  "test_rate_metric.pdb"
  "test_rate_metric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
