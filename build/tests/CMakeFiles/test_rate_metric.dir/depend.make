# Empty dependencies file for test_rate_metric.
# This may be replaced when dependencies are built.
