file(REMOVE_RECURSE
  "CMakeFiles/test_sla.dir/test_sla.cpp.o"
  "CMakeFiles/test_sla.dir/test_sla.cpp.o.d"
  "test_sla"
  "test_sla.pdb"
  "test_sla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
