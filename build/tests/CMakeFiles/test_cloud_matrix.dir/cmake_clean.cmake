file(REMOVE_RECURSE
  "CMakeFiles/test_cloud_matrix.dir/test_cloud_matrix.cpp.o"
  "CMakeFiles/test_cloud_matrix.dir/test_cloud_matrix.cpp.o.d"
  "test_cloud_matrix"
  "test_cloud_matrix.pdb"
  "test_cloud_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
