# Empty dependencies file for test_cloud_matrix.
# This may be replaced when dependencies are built.
