# Empty dependencies file for test_protocol_timing.
# This may be replaced when dependencies are built.
