file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_timing.dir/test_protocol_timing.cpp.o"
  "CMakeFiles/test_protocol_timing.dir/test_protocol_timing.cpp.o.d"
  "test_protocol_timing"
  "test_protocol_timing.pdb"
  "test_protocol_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
