file(REMOVE_RECURSE
  "CMakeFiles/test_sender.dir/test_sender.cpp.o"
  "CMakeFiles/test_sender.dir/test_sender.cpp.o.d"
  "test_sender"
  "test_sender.pdb"
  "test_sender[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
