
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_maxmin_oracle.cpp" "tests/CMakeFiles/test_maxmin_oracle.dir/test_maxmin_oracle.cpp.o" "gcc" "tests/CMakeFiles/test_maxmin_oracle.dir/test_maxmin_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/scda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scda_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/scda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/scda_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
