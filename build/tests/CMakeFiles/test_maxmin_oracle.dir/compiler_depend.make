# Empty compiler generated dependencies file for test_maxmin_oracle.
# This may be replaced when dependencies are built.
