file(REMOVE_RECURSE
  "CMakeFiles/test_maxmin_oracle.dir/test_maxmin_oracle.cpp.o"
  "CMakeFiles/test_maxmin_oracle.dir/test_maxmin_oracle.cpp.o.d"
  "test_maxmin_oracle"
  "test_maxmin_oracle.pdb"
  "test_maxmin_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxmin_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
