# Empty dependencies file for test_control_traffic.
# This may be replaced when dependencies are built.
