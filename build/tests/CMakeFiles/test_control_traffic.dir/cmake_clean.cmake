file(REMOVE_RECURSE
  "CMakeFiles/test_control_traffic.dir/test_control_traffic.cpp.o"
  "CMakeFiles/test_control_traffic.dir/test_control_traffic.cpp.o.d"
  "test_control_traffic"
  "test_control_traffic.pdb"
  "test_control_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
