file(REMOVE_RECURSE
  "CMakeFiles/test_rate_allocator.dir/test_rate_allocator.cpp.o"
  "CMakeFiles/test_rate_allocator.dir/test_rate_allocator.cpp.o.d"
  "test_rate_allocator"
  "test_rate_allocator.pdb"
  "test_rate_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
