# Empty dependencies file for test_rate_allocator.
# This may be replaced when dependencies are built.
