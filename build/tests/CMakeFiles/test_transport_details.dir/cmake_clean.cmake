file(REMOVE_RECURSE
  "CMakeFiles/test_transport_details.dir/test_transport_details.cpp.o"
  "CMakeFiles/test_transport_details.dir/test_transport_details.cpp.o.d"
  "test_transport_details"
  "test_transport_details.pdb"
  "test_transport_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
