# Empty dependencies file for test_transport_details.
# This may be replaced when dependencies are built.
