file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_options.dir/test_tcp_options.cpp.o"
  "CMakeFiles/test_tcp_options.dir/test_tcp_options.cpp.o.d"
  "test_tcp_options"
  "test_tcp_options.pdb"
  "test_tcp_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
