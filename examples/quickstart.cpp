// Quickstart: build a small SCDA cloud, store and retrieve content, and
// print what the control plane saw.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/cloud.h"
#include "stats/collector.h"
#include "util/units.h"

int main() {
  using namespace scda;

  sim::Simulator sim(/*seed=*/42);

  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(500);
  cfg.topology.k_factor = 3.0;

  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector stats(cloud);

  // Store three pieces of content from different clients, then read them
  // back. The cloud picks servers via the RM/RA rate metrics and sets
  // transfer windows from the allocated rates.
  cloud.write(/*client=*/0, /*content=*/1, util::megabytes(8),
              transport::ContentClass::kSemiInteractive);
  cloud.write(/*client=*/1, /*content=*/2, util::megabytes(2),
              transport::ContentClass::kInteractive);
  cloud.write(/*client=*/2, /*content=*/3, util::kilobytes(64),
              transport::ContentClass::kPassive);

  sim.post_at(sim::secs(5.0), [&] {
    cloud.read(/*client=*/3, /*content=*/1);
    cloud.read(/*client=*/4, /*content=*/2);
  });

  sim.run_until(sim::secs(30.0));

  std::printf("=== quickstart: SCDA cloud ===\n");
  std::printf("servers: %zu  clients: %zu  links: %zu\n",
              cloud.servers().size(), cloud.topology().clients().size(),
              cloud.topology().net().link_count());
  std::printf("completed flows (client-visible): %zu\n", stats.count());
  for (const auto& r : stats.records()) {
    std::printf("  %-6s %8.1f KB  started %6.2fs  fct %6.3fs\n",
                r.kind == core::CloudOp::Kind::kWrite   ? "write"
                : r.kind == core::CloudOp::Kind::kRead  ? "read"
                                                        : "repl",
                static_cast<double>(r.size_bytes) / 1000.0, r.start_time,
                r.fct_s);
  }
  std::printf("SLA violations: %llu\n",
              static_cast<unsigned long long>(cloud.allocator().sla_violations()));
  std::printf("control messages: %llu (%.1f KB)\n",
              static_cast<unsigned long long>(cloud.control_messages()),
              static_cast<double>(cloud.control_bytes()) / 1000.0);
  std::printf("total server energy: %.1f kJ\n", cloud.total_energy_j() / 1e3);
  std::printf("failed reads: %llu  failed writes: %llu\n",
              static_cast<unsigned long long>(cloud.failed_reads()),
              static_cast<unsigned long long>(cloud.failed_writes()));
  return 0;
}
