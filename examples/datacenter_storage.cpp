// Example: mixed datacenter storage tenants with QoS.
//
// Three tenants share the cloud:
//   - "batch"    : large archives, best effort (priority 1)
//   - "realtime" : a telemetry stream with an explicit 40 Mbps reservation
//   - "premium"  : interactive documents with priority weight 4
//
// Demonstrates priority weights (section IV-A), explicit reservation
// (section IV-C) and per-class server selection (section VII) through the
// public Cloud API.
//
//   ./build/examples/datacenter_storage
#include <cstdio>
#include <string>
#include <unordered_map>

#include "core/cloud.h"
#include "util/units.h"

int main() {
  using namespace scda;

  sim::Simulator sim(7);

  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 12;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = true;

  core::Cloud cloud(sim, cfg);

  std::unordered_map<core::ContentId, std::string> tenant_of;
  std::unordered_map<std::string, std::pair<double, int>> fct_by_tenant;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const core::CloudOp& op) {
        if (op.kind == core::CloudOp::Kind::kReplication) return;
        const auto it = tenant_of.find(op.content);
        if (it == tenant_of.end()) return;
        auto& [sum, n] = fct_by_tenant[it->second];
        sum += rec.fct();
        ++n;
      });

  core::ContentId next_id = 1;
  const auto issue = [&](const std::string& tenant, std::size_t client,
                         std::int64_t bytes, transport::ContentClass cls,
                         double priority, sim::BitRate reserved) {
    tenant_of[next_id] = tenant;
    cloud.write(client, next_id++, bytes, cls, priority, reserved);
  };

  // Batch tenant: five 25 MB archives from clients 0-4 at t=0.
  for (int i = 0; i < 5; ++i)
    issue("batch", static_cast<std::size_t>(i), util::megabytes(25),
          transport::ContentClass::kPassive, 1.0, sim::BitRate{});

  // Realtime tenant: 8 MB telemetry chunks every 2 s with a reservation.
  for (int i = 0; i < 10; ++i) {
    sim.post_at(sim::secs(i * 2.0), [&issue, &cloud, i] {
      (void)cloud;
      issue("realtime", 5, util::megabytes(8),
            transport::ContentClass::kSemiInteractive, 1.0,
            util::mbps(40));
    });
  }

  // Premium tenant: 2 MB documents, priority 4, interactive class.
  for (int i = 0; i < 8; ++i) {
    sim.post_at(sim::secs(1.0 + i * 2.5), [&issue, i] {
      issue("premium", static_cast<std::size_t>(6 + (i % 4)),
            util::megabytes(2), transport::ContentClass::kInteractive, 4.0,
            sim::BitRate{});
    });
  }

  sim.run_until(sim::secs(120.0));

  std::printf("=== multi-tenant datacenter storage ===\n");
  std::printf("%-10s %-8s %-12s\n", "tenant", "ops", "mean FCT (s)");
  for (const auto& [tenant, agg] : fct_by_tenant) {
    std::printf("%-10s %-8d %-12.3f\n", tenant.c_str(), agg.second,
                agg.second ? agg.first / agg.second : 0.0);
  }
  std::printf("SLA violations detected: %llu\n",
              static_cast<unsigned long long>(
                  cloud.allocator().sla_violations()));
  std::printf("failed writes: %llu, failed reads: %llu\n",
              static_cast<unsigned long long>(cloud.failed_writes()),
              static_cast<unsigned long long>(cloud.failed_reads()));
  return 0;
}
