// Example: realtime SLA monitoring and automatic mitigation.
//
// The cloud runs normally until an aggressive tenant reserves more
// bandwidth than one path can carry. The RM/RA hierarchy detects the
// violation within a control interval; the SLA manager attributes it to a
// tree level and switches reserve capacity into the congested link
// (section IV-A). The example prints the live event log.
//
//   ./build/examples/sla_monitoring
#include <cstdio>

#include "core/cloud.h"
#include "util/units.h"

int main() {
  using namespace scda;

  sim::Simulator sim(99);

  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;

  core::Cloud cloud(sim, cfg);
  // Mitigation: after 5 violations on a link, switch in backup capacity.
  cloud.sla().enable_capacity_boost(/*threshold=*/5, /*boost=*/2.0);

  // Normal load.
  cloud.write(1, 1, util::megabytes(10));
  cloud.write(2, 2, util::megabytes(10));

  // At t=5 an aggressive tenant reserves 2 x 150 Mbps through one client
  // uplink of 200 Mbps.
  sim.post_at(sim::secs(5.0), [&cloud] {
    cloud.write(0, 10, util::megabytes(40),
                transport::ContentClass::kSemiInteractive, 1.0,
                util::mbps(150));
    cloud.write(0, 11, util::megabytes(40),
                transport::ContentClass::kSemiInteractive, 1.0,
                util::mbps(150));
  });

  sim.run_until(sim::secs(60.0));

  std::printf("=== SLA monitoring ===\n");
  const auto& events = cloud.sla().events();
  std::printf("violations detected: %zu (capacity boosts applied: %llu)\n",
              events.size(),
              static_cast<unsigned long long>(cloud.sla().boosts_applied()));
  std::printf("first 5 events (time, link, demand vs effective capacity):\n");
  for (std::size_t i = 0; i < events.size() && i < 5; ++i) {
    const auto& e = events[i];
    std::printf("  t=%.3fs  link=%d  %.1f Mbps > %.1f Mbps\n",
                e.time.seconds(), e.link.value(), e.demand.bps() / 1e6,
                e.capacity.bps() / 1e6);
  }

  const core::SlaLevelReport rep = cloud.hierarchy().sla_report();
  std::printf("violations by RM/RA tree level: L0=%llu L1=%llu L2=%llu "
              "L3=%llu\n",
              static_cast<unsigned long long>(rep.per_level[0]),
              static_cast<unsigned long long>(rep.per_level[1]),
              static_cast<unsigned long long>(rep.per_level[2]),
              static_cast<unsigned long long>(rep.per_level[3]));
  std::printf("note: client access links are outside the RM/RA tree; tree "
              "totals can be below the global count (%llu).\n",
              static_cast<unsigned long long>(
                  cloud.allocator().sla_violations()));
  return 0;
}
