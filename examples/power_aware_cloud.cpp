// Example: an energy-proportional archive tier.
//
// A cold-archive tenant uploads passive backups. With the dormant-server
// policy (R_scale) enabled, replicas land on idle machines that then scale
// down to standby power; with power-aware ranking the awake work is placed
// on the most efficient hardware. The example prints the per-server power
// ledger at the end of the run.
//
//   ./build/examples/power_aware_cloud
#include <cstdio>

#include "core/cloud.h"
#include "util/units.h"

int main() {
  using namespace scda;

  sim::Simulator sim(555);

  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.params.rscale = util::mbps(150);      // dormant policy on
  cfg.params.power_aware = true;            // rank by rate/power
  cfg.power_heterogeneity = 0.6;            // old + new hardware mix

  core::Cloud cloud(sim, cfg);

  // Nightly backups: 12 passive archives over two minutes.
  for (int i = 0; i < 12; ++i) {
    sim.post_at(sim::secs(i * 10.0), [&cloud, i] {
      cloud.write(static_cast<std::size_t>(i % 8), i + 1,
                  util::megabytes(5), transport::ContentClass::kPassive);
    });
  }
  // One hot document keeps a bit of active load around.
  cloud.write(0, 100, util::megabytes(2),
              transport::ContentClass::kInteractive);

  sim.run_until(sim::secs(180.0));

  std::printf("=== energy-proportional archive tier ===\n");
  std::printf("%-6s %-9s %-10s %-10s %-8s\n", "srv", "state", "energy_kJ",
              "ineff", "blocks");
  for (const auto& bs : cloud.servers()) {
    std::printf("bs%-4zu %-9s %-10.1f %-10.2f %-8zu\n", bs.index(),
                bs.dormant() ? "dormant" : "awake",
                bs.power().energy_j() / 1e3, bs.power().inefficiency(),
                bs.block_count());
  }
  std::printf("total energy: %.1f kJ, dormant servers: %zu/%zu\n",
              cloud.total_energy_j() / 1e3, cloud.dormant_servers(),
              cloud.servers().size());
  std::printf("(an always-on cluster of this size would burn ~%.0f kJ)\n",
              180.0 * 8 * 150.0 * 1.3 / 1e3);
  return 0;
}
