// Example: interactive content — a collaboratively edited document.
//
// Four collaborators write and read a shared document every couple of
// seconds (HWHR with tight interleaving: the paper's definition of
// interactive content). The cloud places the document by min(up, down)
// rate; the deadline API pushes a large "save-all" flush to land before a
// meeting starts; the classifier confirms the learned class.
//
//   ./build/examples/collaborative_editing
#include <cstdio>

#include "core/cloud.h"
#include "util/units.h"

int main() {
  using namespace scda;

  sim::Simulator sim(321);

  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;

  core::Cloud cloud(sim, cfg);

  int edits = 0, fetches = 0;
  double flush_done = -1;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const core::CloudOp& op) {
        if (op.kind == core::CloudOp::Kind::kAppend) ++edits;
        if (op.kind == core::CloudOp::Kind::kRead) ++fetches;
        if (op.content == 999) flush_done = rec.finish_time.seconds();
      });

  // The document itself (interactive class).
  cloud.write(0, 1, util::kilobytes(512),
              transport::ContentClass::kInteractive);

  // Edit sessions: each collaborator alternates small delta writes
  // (new content ids: deltas are distinct objects) and reads of the doc.
  for (int round = 0; round < 15; ++round) {
    const double t = 2.0 + round * 2.0;
    sim.post_at(sim::secs(t), [&cloud, round] {
      const auto who = static_cast<std::size_t>(round % 4);
      cloud.append(who, 1, util::kilobytes(32));  // edit the shared doc
      cloud.read(who, 1);
    });
  }

  // t=20: someone triggers a full export that must land by t=24 (before
  // the review meeting) despite background load.
  sim.post_at(sim::secs(20.0), [&cloud] {
    for (int i = 0; i < 4; ++i)
      cloud.write(static_cast<std::size_t>(4 + i), 200 + i,
                  util::megabytes(30));  // background bulk traffic
    cloud.write_with_deadline(0, 999, util::megabytes(25),
                              /*deadline=*/25.0);
  });

  sim.run_until(sim::secs(60.0));

  std::printf("=== collaborative editing on SCDA ===\n");
  std::printf("delta writes completed: %d, document fetches: %d\n", edits,
              fetches);
  std::printf("deadline flush (25 MB by t=25s): finished at t=%.2fs %s\n",
              flush_done,
              flush_done > 0 && flush_done <= 25.3 ? "[met]" : "[missed]");
  const auto cls = cloud.classifier().classify(1, sim.now());
  std::printf("learned class of the document: %s\n",
              transport::to_string(cls));
  std::printf("SLA violations observed: %llu\n",
              static_cast<unsigned long long>(
                  cloud.allocator().sla_violations()));
  return 0;
}
