// Example: a small video CDN on SCDA.
//
// Creators upload videos (semi-interactive: written once, read often); the
// cloud replicates each upload to the server with the best upload rate so
// subsequent viewer reads are fast. A popular video gets a burst of viewers
// and we show reads being served from the best replica.
//
//   ./build/examples/video_cdn
#include <cstdio>

#include "core/cloud.h"
#include "stats/collector.h"
#include "util/units.h"

int main() {
  using namespace scda;

  sim::Simulator sim(2013);

  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 3;
  cfg.topology.servers_per_tor = 4;  // 24 block servers
  cfg.topology.n_clients = 24;
  cfg.topology.base_bps = util::mbps(500);
  cfg.topology.k_factor = 3.0;

  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector collector(cloud);

  // Five creators upload videos of 4..20 MB.
  const std::int64_t sizes_mb[] = {4, 8, 12, 16, 20};
  for (int v = 0; v < 5; ++v) {
    cloud.write(static_cast<std::size_t>(v), /*content=*/v + 1,
                util::megabytes(static_cast<double>(sizes_mb[v])),
                transport::ContentClass::kSemiInteractive);
  }

  // Video 3 goes viral: 12 viewers read it over the next minute.
  for (int viewer = 0; viewer < 12; ++viewer) {
    sim.post_at(sim::secs(20.0 + viewer * 3.0), [&cloud, viewer] {
      cloud.read(static_cast<std::size_t>(8 + viewer), /*content=*/3);
    });
  }
  // The other videos get one or two casual viewers.
  sim.post_at(sim::secs(30.0), [&cloud] { cloud.read(20, 1); });
  sim.post_at(sim::secs(40.0), [&cloud] { cloud.read(21, 5); });

  sim.run_until(sim::secs(120.0));

  std::printf("=== video CDN on SCDA ===\n");
  std::printf("uploads + reads completed: %zu\n", collector.count());
  double upload_s = 0, read_s = 0;
  int nu = 0, nr = 0;
  for (const auto& r : collector.records()) {
    if (r.kind == core::CloudOp::Kind::kWrite) {
      upload_s += r.fct_s;
      ++nu;
    } else if (r.kind == core::CloudOp::Kind::kRead) {
      read_s += r.fct_s;
      ++nr;
    }
  }
  std::printf("mean upload time: %.2fs over %d uploads\n",
              nu ? upload_s / nu : 0.0, nu);
  std::printf("mean viewer fetch time: %.2fs over %d reads\n",
              nr ? read_s / nr : 0.0, nr);

  // Where did the viral video end up?
  const auto* meta = cloud.fes().dispatch_by_content(3).find(3);
  if (meta != nullptr) {
    std::printf("viral video replicas on servers:");
    for (const auto s : meta->replicas) std::printf(" bs%d", s);
    std::printf("  (reads served: %llu)\n",
                static_cast<unsigned long long>(meta->reads));
  }
  std::printf("failed reads: %llu\n",
              static_cast<unsigned long long>(cloud.failed_reads()));
  return 0;
}
