#!/usr/bin/env python3
"""Determinism linter: static checks for the project invariant that
identical seeds produce byte-identical metrics, traces and sweep JSON.

The compiler cannot see these bugs — they compile cleanly and only show
up as a wrong figure — so this linter enforces them as source rules:

  rand            C rand()/srand() (not seed-reproducible, global state).
                  Simulations draw from the per-instance sim::Rng.
  wall-clock      time(), clock(), gettimeofday(), std::chrono clock
                  now() — wall-clock reads make output depend on when a
                  run happened, not on the seed.
  random-device   std::random_device — hardware entropy is the definition
                  of a non-reproducible seed source.
  unordered-iter  range-for over a std::unordered_{map,set} whose body
                  accumulates (+=) or emits (printf/<<) — iteration order
                  is implementation-defined, so float accumulation order
                  and emission order drift between runs/platforms.
  map-hot-path    std::map/std::set in files listed under "## Hot-path
                  files" in docs/perf.md — red-black trees on the per-
                  event/per-packet path; use a dense table or a sorted
                  vector (see the water_fill rewrite).
  float-eq        == / != with a statically recognizable floating-point
                  operand (a float literal or a .seconds() unwrap).
                  Exact float equality is at best fragile and at worst
                  an iteration-order-sensitive branch; compare against
                  an epsilon or operate on the exact representation.
  units           a fresh raw `double` declaration whose name says it
                  carries a rate or a byte/bit count (`..._bps`,
                  `..._bytes`, `...rate...`, `...bytes...`) in a
                  docs/perf.md hot-path file. Rates are sim::BitRate and
                  counts are sim::ByteCount/BitCount (src/sim/types.h);
                  a raw double reintroduces the unit-confusion bug class
                  the Quantity layer removed. Unwrap only at documented
                  serialization boundaries (%.9g JSON/stats emission,
                  printf) with an explicit `.bps()`/`.bytes()` call, and
                  carry `// scda-lint: allow(units)` on the boundary
                  declaration itself (see docs/static_analysis.md).

Escape hatch: append `// scda-lint: allow(<rule>)` to the offending line
(or the line directly above it) with a justification, e.g.

    std::map<std::int64_t, std::int64_t> ooo_;  // scda-lint: allow(map-hot-path) ordered reassembly

Some rules no longer accept escapes outside the fixture suite: every
accumulation loop in src/ now iterates a deterministically ordered
container (the sorted flow-id index replaced the last unordered_map
walk), so a new `allow(unordered-iter)` would reintroduce exactly the
bug class this repo re-baselined to remove. Fix the iteration order
instead. The fixtures keep an escape so detection itself stays tested.

Usage:
  scripts/lint_determinism.py              # lint src/ (the default scope)
  scripts/lint_determinism.py FILE...      # lint specific files
  scripts/lint_determinism.py --self-test  # run the fixture suite

Exit status 0 when clean, 1 with a file:line listing otherwise.
"""
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "scripts", "lint_fixtures")
PERF_DOC = os.path.join(REPO_ROOT, "docs", "perf.md")
CXX_EXTS = (".h", ".cpp", ".cc", ".hpp")

ALLOW_RE = re.compile(r"//\s*scda-lint:\s*allow\(([a-z\-,\s]+)\)")
FLOAT_LIT = re.compile(r"(?<![\w.])(\d+\.\d*|\.\d+)(e[+-]?\d+)?[fF]?(?![\w.])|"
                       r"(?<![\w.])\d+e[+-]?\d+[fF]?(?![\w.])")

RULES = ("rand", "wall-clock", "random-device", "unordered-iter",
         "map-hot-path", "float-eq", "units")

# Rules whose allow() escape is itself a violation outside the fixture
# suite (see the docstring).
FORBIDDEN_ESCAPES = ("unordered-iter",)


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure so line numbers survive. Returns the stripped text."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw strings etc.) — bail out
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed_rules(raw_lines, lineno):
    """Rules allowed for `lineno` (1-based): same line or the line above."""
    rules = set()
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines):
            m = ALLOW_RE.search(raw_lines[ln - 1])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def hot_path_files():
    """Parse the '## Hot-path files' section of docs/perf.md: lines of the
    form `- \\`path\\`` until the next heading."""
    paths = set()
    try:
        with open(PERF_DOC) as f:
            doc = f.read()
    except OSError:
        return paths
    in_section = False
    for line in doc.splitlines():
        if line.startswith("## "):
            in_section = line.strip().lower() == "## hot-path files"
            continue
        if in_section:
            m = re.match(r"-\s+`([^`]+)`", line.strip())
            if m:
                paths.add(m.group(1))
    return paths


def collect_unordered_names(stripped_texts):
    """Identifiers declared anywhere in the scanned set with an unordered
    container type (covers members declared in a header and iterated in
    the matching .cpp)."""
    names = set()
    decl = re.compile(
        r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
    # After the closing '>': optional ref/pointer, the identifier, then a
    # declarator terminator (covers members, locals and parameters).
    ident = re.compile(r"[\s&*]*(\w+)\s*[=;{,)]")
    for text in stripped_texts.values():
        for m in decl.finditer(text):
            # Find the end of the template argument list, then the name.
            depth, i = 0, m.end() - 1
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            tail = text[i + 1:i + 80]
            nm = ident.match(tail)
            if nm:
                names.add(nm.group(1))
    return names


def body_extent(text, open_brace):
    depth = 0
    i = open_brace
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(text)


ACCUM_OR_EMIT = re.compile(
    r"\+=|-=|\*=|/=|\bprintf\b|\bfprintf\b|\bsnprintf\b|"
    r"<<|\.add\(|\bappend\b|\bto_json\b|\bemit\w*\(")
RANGE_FOR = re.compile(r"\bfor\s*\(")


def check_unordered_iter(stripped, unordered_names, report):
    """Flag range-fors over unordered containers whose body accumulates or
    emits. A body that only fills an intermediate and sorts it is fine —
    but the linter cannot prove that, so such loops carry an allow()."""
    for m in RANGE_FOR.finditer(stripped):
        close = body_extent(stripped, stripped.find("(", m.start()) )
        head_open = stripped.find("(", m.start())
        # extent of the for(...) header
        depth, i = 0, head_open
        while i < len(stripped):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        header = stripped[head_open:i + 1]
        if ":" not in header:
            continue  # classic for loop
        range_expr = header.rsplit(":", 1)[1]
        toks = set(re.findall(r"\w+", range_expr))
        if not (toks & unordered_names):
            continue
        brace = stripped.find("{", i)
        if brace < 0 or brace - i > 120:
            # brace-less single statement: treat the next line as the body
            body = stripped[i:stripped.find(";", i) + 1]
        else:
            body = stripped[brace:body_extent(stripped, brace) + 1]
        if ACCUM_OR_EMIT.search(body):
            lineno = stripped.count("\n", 0, m.start()) + 1
            report(lineno, "unordered-iter",
                   "iteration over unordered container feeds an "
                   "accumulation or emission (order-dependent)")


OPERAND_DELIMS = re.compile(r"[,;(){}?]|&&|\|\|")


def check_float_eq(stripped, report):
    for m in re.finditer(r"[=!]=(?!=)", stripped):
        if m.start() > 0 and stripped[m.start() - 1] in "=!<>+-*/%&|^":
            continue
        line_start = stripped.rfind("\n", 0, m.start()) + 1
        line_end = stripped.find("\n", m.end())
        if line_end < 0:
            line_end = len(stripped)
        lhs = stripped[line_start:m.start()]
        rhs = stripped[m.end():line_end]
        # Trim both sides at the nearest expression delimiter.
        parts = OPERAND_DELIMS.split(lhs)
        lhs_op = parts[-1] if parts else ""
        parts = OPERAND_DELIMS.split(rhs)
        rhs_op = parts[0] if parts else ""
        if (FLOAT_LIT.search(lhs_op) or FLOAT_LIT.search(rhs_op)
                or ".seconds()" in lhs_op or ".seconds()" in rhs_op):
            lineno = stripped.count("\n", 0, m.start()) + 1
            report(lineno, "float-eq",
                   "exact floating-point equality comparison")


# Snake-case name segments that mark a declaration as carrying a rate or
# a byte/bit count. Segment-wise matching keeps `separate_x` (contains
# "rate") and `byteswap` out of scope.
UNITS_SEGMENTS = {"bps", "bytes", "rate", "rates"}

# `double <name>` terminated like a parameter, member or local — but not
# `double name(`, which declares a function (e.g. the documented
# `capacity_bps()` unwrap accessor).
UNITS_DECL = re.compile(r"\bdouble\s+(\w+)\s*(?=[;,=)\[{])")


def check_units(stripped, report):
    for m in UNITS_DECL.finditer(stripped):
        name = m.group(1)
        if UNITS_SEGMENTS & set(name.lower().split("_")):
            report(stripped.count("\n", 0, m.start()) + 1, "units",
                   f"raw double '{name}' carries a rate/byte quantity in "
                   "a hot-path file; use sim::BitRate / sim::ByteCount / "
                   "sim::BitCount (src/sim/types.h)")


SIMPLE_RULES = (
    # (rule, regex, message)
    ("rand", re.compile(r"(?<![\w:.])s?rand\s*\(|std\s*::\s*s?rand\b"),
     "C rand()/srand(); use the per-instance sim::Rng"),
    ("wall-clock",
     re.compile(r"(?<![\w:.])(time|clock|gettimeofday|localtime|gmtime)"
                r"\s*\(|_clock\s*::\s*now\s*\(|\bClock::now\s*\("),
     "wall-clock read; simulation output must depend only on the seed"),
    ("random-device", re.compile(r"std\s*::\s*random_device\b"),
     "hardware entropy source; seeds must be explicit and logged"),
)


def lint_file(path, rel, stripped, unordered_names, hot_files, violations):
    with open(path) as f:
        raw_lines = f.read().splitlines()

    def report(lineno, rule, msg):
        if rule in allowed_rules(raw_lines, lineno):
            return
        violations.append((rel, lineno, rule, msg))

    for rule, rx, msg in SIMPLE_RULES:
        for m in rx.finditer(stripped):
            report(stripped.count("\n", 0, m.start()) + 1, rule, msg)

    if rel in hot_files:
        for m in re.finditer(r"std\s*::\s*(map|set|multimap|multiset)\s*<",
                             stripped):
            report(stripped.count("\n", 0, m.start()) + 1, "map-hot-path",
                   "ordered tree container in a hot-path file "
                   "(docs/perf.md); use a dense table or sorted vector")
        check_units(stripped, report)

    check_unordered_iter(stripped, unordered_names, report)
    check_float_eq(stripped, report)


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in sorted(os.walk(p)):
                for n in sorted(names):
                    if n.endswith(CXX_EXTS):
                        files.append(os.path.join(root, n))
        elif p.endswith(CXX_EXTS):
            files.append(p)
    return files


def find_forbidden_escapes(files):
    """allow() escapes for FORBIDDEN_ESCAPES rules, outside the fixture
    suite. Returns (rel, lineno, rule) tuples."""
    hits = []
    for f in files:
        if os.path.commonpath([os.path.abspath(f), FIXTURE_DIR]) == \
                FIXTURE_DIR:
            continue
        rel = os.path.relpath(f, REPO_ROOT)
        with open(f) as fh:
            for lineno, line in enumerate(fh, 1):
                m = ALLOW_RE.search(line)
                if not m:
                    continue
                for r in (x.strip() for x in m.group(1).split(",")):
                    if r in FORBIDDEN_ESCAPES:
                        hits.append((rel, lineno, r))
    return hits


def run_lint(paths, hot_files):
    files = gather_files(paths)
    stripped_texts = {}
    for f in files:
        try:
            with open(f) as fh:
                stripped_texts[f] = strip_code(fh.read())
        except OSError as e:
            print(f"{f}: unreadable ({e})", file=sys.stderr)
            return 2
    unordered_names = collect_unordered_names(stripped_texts)
    violations = []
    for f in files:
        rel = os.path.relpath(f, REPO_ROOT)
        lint_file(f, rel, stripped_texts[f], unordered_names, hot_files,
                  violations)
    for rel, lineno, rule in find_forbidden_escapes(files):
        violations.append(
            (rel, lineno, rule,
             f"allow({rule}) escapes are retired: fix the iteration "
             "order (sorted index / dense table) instead"))
    for rel, lineno, rule, msg in violations:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    return violations


def self_test():
    """Each fixture's first line declares its expected findings:
    `// expect: rule rule ...` (with multiplicity) or `// expect: none`.
    Fixtures are linted as if they lived in src/ and were hot-path."""
    failures = 0
    fixtures = sorted(
        os.path.join(FIXTURE_DIR, f) for f in os.listdir(FIXTURE_DIR)
        if f.endswith(CXX_EXTS))
    if not fixtures:
        print("self-test: no fixtures found", file=sys.stderr)
        return 1
    for fx in fixtures:
        with open(fx) as f:
            first = f.readline().strip()
        m = re.match(r"//\s*expect:\s*(.*)$", first)
        if not m:
            print(f"self-test: {fx}: missing '// expect:' header")
            failures += 1
            continue
        expected = sorted(m.group(1).split()) if m.group(1) != "none" else []
        rel = os.path.relpath(fx, REPO_ROOT)
        hot = {rel} if "hot_path" in os.path.basename(fx) else set()
        import io
        import contextlib
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            got = run_lint([fx], hot)
        got_rules = sorted(r for _f, _l, r, _m in got)
        name = os.path.basename(fx)
        if got_rules == expected:
            print(f"self-test: {name}: ok ({len(got_rules)} finding(s))")
        else:
            print(f"self-test: {name}: FAIL\n  expected {expected}\n"
                  f"  got      {got_rules}")
            for line in buf.getvalue().splitlines():
                print(f"    {line}")
            failures += 1
    # The fixture suite must keep exercising detection of every retired
    # rule (an escape inside fixtures is the sanctioned way to carry the
    # pattern), while src/ itself must be escape-free for those rules.
    fixture_escaped = set()
    for fx in fixtures:
        with open(fx) as f:
            for line in f:
                m = ALLOW_RE.search(line)
                if m:
                    fixture_escaped.update(
                        r.strip() for r in m.group(1).split(","))
    for rule in FORBIDDEN_ESCAPES:
        if rule not in fixture_escaped:
            print(f"self-test: no fixture carries an allow({rule}) escape "
                  "— detection of the retired rule is untested")
            failures += 1
    src_hits = find_forbidden_escapes(
        gather_files([os.path.join(REPO_ROOT, "src")]))
    if src_hits:
        for rel, lineno, rule in src_hits:
            print(f"self-test: {rel}:{lineno}: retired escape "
                  f"allow({rule}) present in src/")
        failures += 1
    else:
        print("self-test: src/ escape-free for retired rules: "
              + ", ".join(FORBIDDEN_ESCAPES))
    if failures:
        print(f"self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(fixtures)} fixtures pass")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    paths = [a for a in argv if not a.startswith("-")]
    if not paths:
        paths = [os.path.join(REPO_ROOT, "src")]
    violations = run_lint(paths, hot_path_files())
    if isinstance(violations, int):
        return violations
    if violations:
        print(f"\n{len(violations)} determinism violation(s) "
              "(see scripts/lint_determinism.py docstring; escape hatch: "
              "// scda-lint: allow(<rule>))", file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
