#!/usr/bin/env bash
# Tier-1 verification: lints + build + full test suite.
#
#   lint     scripts/lint.sh — whitespace, the determinism linter (with
#            its fixture self-test), and clang-tidy when installed. Runs
#            first because it fails in seconds.
#   release  RelWithDebInfo build + full ctest — what the benchmarks and
#            figure reproductions run as.
#   asan     AddressSanitizer + UndefinedBehaviorSanitizer build — catches
#            the class of bug the event-pool/packet-pool refactor could
#            introduce (use-after-free through recycled slots, OOB heap
#            positions).
#   tsan     ThreadSanitizer build of the multithreaded surface — the sweep
#            runner shards simulation runs across threads, so its worker
#            pool, the shared logger, and cross-instance Simulator isolation
#            are validated under TSan. Configured with
#            -DSCDA_RUNNER_TESTS_ONLY=ON so ctest in that tree runs exactly
#            test_runner plus the (multithreaded) scda-sweep smoke tests.
#
# Usage: scripts/check.sh [extra ctest args...]
#   CHECK_PASSES=lint,release,asan,tsan  comma-separated pass selector
#                                    (default: all four). CI shards each
#                                    pass onto its own job with this knob;
#                                    run locally with no env for the full
#                                    sequence.
#
# Builds live in build-check/, build-check-asan/ and build-check-tsan/ so
# they never disturb an existing build/ tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
PASSES="${CHECK_PASSES:-lint,release,asan,tsan}"

want() { case ",$PASSES," in *",$1,"*) return 0 ;; *) return 1 ;; esac; }

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

want lint && {
  echo "== pass: lint (whitespace + determinism + clang-tidy if present) =="
  scripts/lint.sh build-check
}

want release && {
  echo "== pass: release (RelWithDebInfo) =="
  run_suite build-check -DCMAKE_BUILD_TYPE=RelWithDebInfo
}

want asan && {
  echo "== pass: ASan + UBSan =="
  run_suite build-check-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
}

want tsan && {
  echo "== pass: TSan (runner + sweep tool tests) =="
  cmake -B build-check-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSCDA_RUNNER_TESTS_ONLY=ON \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" > /dev/null
  # Only the multithreaded targets: test_runner and the CLI tools the
  # smoke tests run (scda-sweep shards runs over a worker pool).
  cmake --build build-check-tsan -j "$JOBS" \
    --target test_runner scda_sim_cli scda_topo_cli scda_sweep_cli
  ctest --test-dir build-check-tsan --output-on-failure -j "$JOBS"
}

echo "All requested passes (${PASSES}) passed."
