#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, twice.
#
#   1. Release-style build (RelWithDebInfo, the default) — what the
#      benchmarks and figure reproductions run as.
#   2. AddressSanitizer + UndefinedBehaviorSanitizer build — catches the
#      class of bug the event-pool/packet-pool refactor could introduce
#      (use-after-free through recycled slots, OOB heap positions).
#
# Usage: scripts/check.sh [extra ctest args...]
# Builds live in build-check/ and build-check-asan/ so they never disturb
# an existing build/ tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== pass 1/2: RelWithDebInfo =="
run_suite build-check -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== pass 2/2: ASan + UBSan =="
run_suite build-check-asan \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

echo "All checks passed."
