#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, three times.
#
#   1. Release-style build (RelWithDebInfo, the default) — what the
#      benchmarks and figure reproductions run as.
#   2. AddressSanitizer + UndefinedBehaviorSanitizer build — catches the
#      class of bug the event-pool/packet-pool refactor could introduce
#      (use-after-free through recycled slots, OOB heap positions).
#   3. ThreadSanitizer build of the runner tests — the sweep runner shards
#      simulation runs across threads, so its worker pool, the shared
#      logger, and cross-instance Simulator isolation are validated under
#      TSan (test_runner only: the rest of the suite is single-threaded).
#
# Usage: scripts/check.sh [extra ctest args...]
# Builds live in build-check/, build-check-asan/ and build-check-tsan/ so
# they never disturb an existing build/ tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== pass 1/3: RelWithDebInfo =="
run_suite build-check -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== pass 2/3: ASan + UBSan =="
run_suite build-check-asan \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

echo "== pass 3/3: TSan (runner tests) =="
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" > /dev/null
cmake --build build-check-tsan -j "$JOBS" --target test_runner
./build-check-tsan/tests/test_runner

echo "All checks passed."
