#!/usr/bin/env bash
# Refresh BENCH_core.json's "current" column from a 3-repetition run of
# bench_micro_core (medians). Seed baselines already in BENCH_core.json are
# preserved; re-baseline them only when moving machines (check out the seed
# commit, build the same benchmark sources there, and fill seed_items_per_s
# from its medians).
#
# Usage: scripts/bench_core.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_micro_core"
[ -x "$BENCH" ] || {
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target bench_micro_core)" >&2
  exit 1
}

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
"$BENCH" --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$RAW"

python3 - "$RAW" <<'EOF'
import json, subprocess, sys
from datetime import date, timezone, datetime

raw = json.load(open(sys.argv[1]))
medians = {
    b["name"].removesuffix("_median"): b["items_per_second"]
    for b in raw["benchmarks"]
    if b["name"].endswith("_median") and "items_per_second" in b
}

try:
    doc = json.load(open("BENCH_core.json"))
except FileNotFoundError:
    doc = {"benchmarks": {}}

doc["date"] = datetime.now(timezone.utc).date().isoformat()
doc["toolchain"] = raw["context"].get("library_build_type", "") or "unknown"
for name, items in sorted(medians.items()):
    entry = doc["benchmarks"].setdefault(name, {"seed_items_per_s": None})
    entry["current_items_per_s"] = round(items)
    if entry.get("seed_items_per_s"):
        entry["speedup"] = round(items / entry["seed_items_per_s"], 2)

json.dump(doc, open("BENCH_core.json", "w"), indent=2)
print(json.dumps(doc, indent=2))
EOF
