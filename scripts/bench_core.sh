#!/usr/bin/env bash
# Refresh BENCH_core.json's "current" column from a 3-repetition run of
# bench_micro_core (medians). Seed baselines already in BENCH_core.json are
# preserved; re-baseline them only when moving machines (check out the seed
# commit, build the same benchmark sources there, and fill seed_items_per_s
# from its medians).
#
# The benchmark is built and measured in a dedicated Release tree
# (default: build-bench) so a Debug working build can never leak into the
# committed numbers; the recorded toolchain is asserted after the run.
#
# Usage: scripts/bench_core.sh [build-dir]   (default: build-bench)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD_DIR" --target bench_micro_core -j2
BENCH="$BUILD_DIR/bench/bench_micro_core"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
"$BENCH" --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$RAW"

python3 - "$RAW" <<'EOF'
import json, sys
from datetime import timezone, datetime

raw = json.load(open(sys.argv[1]))
# scda_toolchain is stamped by bench_micro_core itself from NDEBUG — the
# stock library_build_type only describes how libbenchmark was compiled.
toolchain = raw["context"].get("scda_toolchain", "unknown")
assert toolchain == "optimized", (
    f"refusing to record non-optimized numbers (toolchain={toolchain!r})")
medians = {
    b["name"].removesuffix("_median"): b["items_per_second"]
    for b in raw["benchmarks"]
    if b["name"].endswith("_median") and "items_per_second" in b
}

try:
    doc = json.load(open("BENCH_core.json"))
except FileNotFoundError:
    doc = {"benchmarks": {}}

doc["date"] = datetime.now(timezone.utc).date().isoformat()
doc["toolchain"] = toolchain
for name, items in sorted(medians.items()):
    entry = doc["benchmarks"].setdefault(name, {"seed_items_per_s": None})
    entry["current_items_per_s"] = round(items)
    if entry.get("seed_items_per_s"):
        entry["speedup"] = round(items / entry["seed_items_per_s"], 2)

json.dump(doc, open("BENCH_core.json", "w"), indent=2)
open("BENCH_core.json", "a").write("\n")
print(json.dumps(doc, indent=2))
EOF
