#!/usr/bin/env bash
# Refresh BENCH_scale.json: the fluid-engine k=32 fat-tree scale run
# (8192 servers, >= 1M completed flows; see docs/fluid_engine.md).
#
# Builds bench_scale in a dedicated Release tree (default: build-bench),
# runs the committed configuration (bench_scale's defaults), and asserts
# that the run was optimized, completed at least 1M flows, and drained
# fully before writing BENCH_scale.json at the repo root.
#
# Usage: scripts/bench_scale.sh [build-dir] [extra bench_scale args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
shift || true
cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD_DIR" --target bench_scale -j2
BENCH="$BUILD_DIR/bench/bench_scale"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
"$BENCH" "$@" > "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["toolchain"] == "optimized", (
    f"refusing to record non-optimized numbers ({doc['toolchain']!r})")
assert doc["flows_completed"] >= 1_000_000, (
    f"scale target missed: {doc['flows_completed']} flows completed")
assert doc["flows_completed"] == doc["flows_started"], "run did not drain"

json.dump(doc, open("BENCH_scale.json", "w"), indent=2)
open("BENCH_scale.json", "a").write("\n")
print(json.dumps(doc, indent=2))
EOF
