#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh bench_micro_core run
against the committed BENCH_core.json and fail on a real slowdown.

Raw items/s from a shared CI box are not comparable to the committed
numbers: docs/perf.md documents +/-15% swings between runs of the same
binary, and a different runner generation can shift every number 2x in
either direction. The committed file handles this by trusting ratios,
and this gate automates the same reading:

  1. ratio[b]    = current_run[b] / baseline[b]  for every benchmark
                   present in both the run and BENCH_core.json.
  2. drift       = median(ratio.values()).  Any one change touches a
                   minority of the suite, so the median ratio isolates
                   how much faster or slower the *host* is, exactly the
                   "estimate host drift from benchmarks the release did
                   not touch" step docs/perf.md performs by hand.
  3. adjusted[b] = ratio[b] / drift.  A benchmark fails the gate when
                   adjusted[b] < threshold (default 0.75, i.e. more
                   than a 25% regression beyond host drift).

The input is the google-benchmark JSON of a 3-repetition
aggregates-only run (the same invocation scripts/bench_core.sh uses to
refresh the baseline); only the *_median rows are read. The run must
carry scda_toolchain == "optimized" -- debug numbers are refused rather
than compared.

The churn ablation gate (--churn-input) is different in kind: the
bench_churn JSON's `checksum` folds the headline counters of every
ablation cell and is a pure function of arguments and seed, so it is
compared for *equality* against the committed BENCH_churn.json — any
divergence is a determinism leak (or an unacknowledged behaviour
change), never host noise. Wall time is deliberately not gated there.

Usage:
  bench_micro_core --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json > run.json
  scripts/bench_gate.py --input run.json            # gate vs BENCH_core.json
  scripts/bench_gate.py --input run.json --threshold 0.6
  bench_churn > churn.json
  scripts/bench_gate.py --churn-input churn.json    # vs BENCH_churn.json
  scripts/bench_gate.py --self-test                 # fixture suite (ctest)
"""

import argparse
import json
import statistics
import sys

DEFAULT_THRESHOLD = 0.75  # adjusted ratio below this => >25% regression
MIN_SHARED = 4  # fewer shared benchmarks than this makes the median drift
# estimate meaningless; refuse to gate instead of passing vacuously.


def load_run_medians(raw):
    """Extract {name: items_per_s} medians from google-benchmark JSON."""
    toolchain = raw.get("context", {}).get("scda_toolchain", "unknown")
    if toolchain != "optimized":
        raise SystemExit(
            f"bench_gate: refusing to gate non-optimized numbers "
            f"(scda_toolchain={toolchain!r}); build the benchmark in Release"
        )
    medians = {}
    for b in raw.get("benchmarks", []):
        name = b.get("name", "")
        if name.endswith("_median") and "items_per_second" in b:
            medians[name[: -len("_median")]] = b["items_per_second"]
    if not medians:
        raise SystemExit(
            "bench_gate: no *_median rows with items_per_second in the run; "
            "invoke with --benchmark_repetitions=3 "
            "--benchmark_report_aggregates_only=true --benchmark_format=json"
        )
    return medians


def gate(baseline, run_medians, threshold):
    """Return (report_rows, failures, drift).

    report_rows: [(name, base, cur, ratio, adjusted, ok)] sorted by name.
    failures:    subset of names whose adjusted ratio < threshold, plus
                 baseline benchmarks missing from the run (a silently
                 dropped benchmark must not silently pass the gate).
    """
    ratios = {}
    missing = []
    for name, entry in baseline.items():
        base = entry.get("current_items_per_s")
        if not base:
            continue  # baseline row never filled in; nothing to compare
        if name not in run_medians:
            missing.append(name)
            continue
        ratios[name] = run_medians[name] / base

    if len(ratios) < MIN_SHARED:
        raise SystemExit(
            f"bench_gate: only {len(ratios)} benchmark(s) shared with the "
            f"baseline (need >= {MIN_SHARED} for a drift estimate); "
            "benchmark names have diverged from BENCH_core.json"
        )

    drift = statistics.median(ratios.values())
    rows = []
    failures = list(missing)
    for name in sorted(ratios):
        base = baseline[name]["current_items_per_s"]
        cur = run_medians[name]
        ratio = ratios[name]
        adjusted = ratio / drift
        ok = adjusted >= threshold
        if not ok:
            failures.append(name)
        rows.append((name, base, cur, ratio, adjusted, ok))
    return rows, failures, drift


def run_gate(args):
    with open(args.input) as f:
        run_medians = load_run_medians(json.load(f))
    with open(args.baseline) as f:
        baseline = json.load(f).get("benchmarks", {})

    rows, failures, drift = gate(baseline, run_medians, args.threshold)

    print(
        f"bench_gate: {len(rows)} benchmarks vs {args.baseline}, "
        f"host drift x{drift:.2f} (median raw ratio), "
        f"threshold {args.threshold:.2f} adjusted"
    )
    width = max(len(r[0]) for r in rows)
    for name, base, cur, ratio, adjusted, ok in rows:
        flag = "ok  " if ok else "FAIL"
        print(
            f"  {flag} {name:<{width}}  base {base:>12,.0f}  "
            f"cur {cur:>12,.0f}  raw x{ratio:5.2f}  adj x{adjusted:5.2f}"
        )
    for name in failures:
        if name not in {r[0] for r in rows}:
            print(f"  FAIL {name:<{width}}  in baseline but absent from run")

    if failures:
        print(
            f"bench_gate: FAIL -- {len(failures)} benchmark(s) regressed "
            f">{(1 - args.threshold) * 100:.0f}% beyond host drift: "
            + ", ".join(sorted(failures))
        )
        return 1
    print("bench_gate: PASS")
    return 0


def gate_churn(run, baseline):
    """Return a list of failure strings comparing a bench_churn run to the
    committed baseline. Empty list = pass.

    The checksum is a pure function of (arguments, seed): equality is the
    whole contract. The argument echo fields are compared first so a run
    with different knobs fails as "wrong configuration", not as a scary
    determinism leak.
    """
    failures = []
    if run.get("toolchain") != "optimized":
        failures.append(
            f"toolchain is {run.get('toolchain')!r}, need 'optimized' "
            "(build bench_churn in Release)"
        )
        return failures
    for key in ("bench", "duration_s", "drain_s", "arrival_rate",
                "server_mtbf_s", "server_mttr_s", "seed"):
        if run.get(key) != baseline.get(key):
            failures.append(
                f"configuration mismatch: {key} = {run.get(key)!r}, "
                f"baseline has {baseline.get(key)!r}"
            )
    if failures:
        return failures
    if len(run.get("cells", [])) != len(baseline.get("cells", [])):
        failures.append(
            f"cell count {len(run.get('cells', []))} != baseline "
            f"{len(baseline.get('cells', []))}"
        )
    if run.get("checksum") != baseline.get("checksum"):
        failures.append(
            f"checksum {run.get('checksum')} != committed "
            f"{baseline.get('checksum')} -- determinism leak or "
            "unacknowledged behaviour change (refresh BENCH_churn.json "
            "only with an explanation in the PR)"
        )
    return failures


def run_churn_gate(args):
    with open(args.churn_input) as f:
        run = json.load(f)
    with open(args.churn_baseline) as f:
        baseline = json.load(f)
    failures = gate_churn(run, baseline)
    if failures:
        for msg in failures:
            print(f"  FAIL {msg}")
        print(f"bench_gate: FAIL -- churn ablation vs {args.churn_baseline}")
        return 1
    print(
        f"bench_gate: PASS -- churn checksum {run['checksum']} matches "
        f"{args.churn_baseline} ({len(run.get('cells', []))} cells)"
    )
    return 0


# --- self-test fixtures ----------------------------------------------------


def _fake_baseline(values):
    return {n: {"current_items_per_s": v} for n, v in values.items()}


def _expect(cond, label):
    if not cond:
        raise SystemExit(f"bench_gate --self-test: FAILED: {label}")
    print(f"  ok: {label}")


def self_test():
    base = _fake_baseline(
        {"BM_A": 100.0, "BM_B": 200.0, "BM_C": 400.0, "BM_D": 800.0, "BM_E": 50.0}
    )

    # Identical numbers: drift 1.0, everything passes.
    rows, failures, drift = gate(
        base, {"BM_A": 100, "BM_B": 200, "BM_C": 400, "BM_D": 800, "BM_E": 50}, 0.75
    )
    _expect(not failures and abs(drift - 1.0) < 1e-9, "identical run passes")

    # Uniformly slow host (0.5x everywhere): pure drift, still passes.
    rows, failures, drift = gate(
        base, {"BM_A": 50, "BM_B": 100, "BM_C": 200, "BM_D": 400, "BM_E": 25}, 0.75
    )
    _expect(not failures and abs(drift - 0.5) < 1e-9, "uniform 0.5x drift passes")

    # Fast host hiding a real regression: everything 2x except BM_C at
    # 1.0x raw = 0.5x adjusted. Raw comparison would call BM_C fine.
    rows, failures, drift = gate(
        base, {"BM_A": 200, "BM_B": 400, "BM_C": 400, "BM_D": 1600, "BM_E": 100}, 0.75
    )
    _expect(
        failures == ["BM_C"] and abs(drift - 2.0) < 1e-9,
        "regression behind 2x host drift caught",
    )

    # Borderline: exactly at threshold passes (>=), just below fails.
    rows, failures, _ = gate(
        base, {"BM_A": 75, "BM_B": 150, "BM_C": 300, "BM_D": 600, "BM_E": 37.5}, 0.75
    )
    _expect(not failures, "drift 0.75 with no outlier passes")
    rows, failures, _ = gate(
        base, {"BM_A": 100, "BM_B": 200, "BM_C": 400, "BM_D": 800, "BM_E": 37}, 0.75
    )
    _expect(failures == ["BM_E"], "single outlier below threshold fails")

    # A benchmark silently dropped from the run fails the gate.
    rows, failures, _ = gate(
        base, {"BM_A": 100, "BM_B": 200, "BM_C": 400, "BM_D": 800}, 0.75
    )
    _expect(failures == ["BM_E"], "baseline benchmark missing from run fails")

    # Too few shared benchmarks refuses to gate.
    try:
        gate(base, {"BM_A": 100, "BM_B": 200}, 0.75)
        _expect(False, "sparse overlap refused")
    except SystemExit as e:
        _expect("shared" in str(e), "sparse overlap refused")

    # Debug toolchain refused at ingestion.
    try:
        load_run_medians({"context": {"scda_toolchain": "debug"}, "benchmarks": []})
        _expect(False, "debug toolchain refused")
    except SystemExit as e:
        _expect("non-optimized" in str(e), "debug toolchain refused")

    # Median extraction ignores mean/stddev aggregate rows.
    medians = load_run_medians(
        {
            "context": {"scda_toolchain": "optimized"},
            "benchmarks": [
                {"name": "BM_A_mean", "items_per_second": 1.0},
                {"name": "BM_A_median", "items_per_second": 2.0},
                {"name": "BM_A_stddev", "items_per_second": 0.1},
            ],
        }
    )
    _expect(medians == {"BM_A": 2.0}, "only *_median rows ingested")

    # --- churn checksum gate fixtures -------------------------------------
    committed = {
        "bench": "churn", "duration_s": 30, "drain_s": 15,
        "arrival_rate": 30, "server_mtbf_s": 60, "server_mttr_s": 4,
        "seed": 1, "checksum": "abc123", "toolchain": "optimized",
        "cells": [{}, {}],
    }
    good = dict(committed, wall_s=9.9)  # wall time may differ freely
    _expect(gate_churn(good, committed) == [], "matching churn run passes")
    _expect(
        any("checksum" in m for m in
            gate_churn(dict(good, checksum="def456"), committed)),
        "churn checksum divergence fails",
    )
    _expect(
        any("toolchain" in m for m in
            gate_churn(dict(good, toolchain="debug"), committed)),
        "debug churn run refused",
    )
    mismatched = gate_churn(dict(good, seed=2, checksum="zzz"), committed)
    _expect(
        any("configuration mismatch" in m for m in mismatched)
        and not any("determinism" in m for m in mismatched),
        "wrong knobs reported as configuration, not determinism",
    )
    _expect(
        any("cell count" in m for m in
            gate_churn(dict(good, cells=[{}]), committed)),
        "missing ablation cell fails",
    )

    print("bench_gate --self-test: all fixtures passed")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--input", help="google-benchmark JSON of the fresh run")
    p.add_argument(
        "--baseline", default="BENCH_core.json", help="committed baseline file"
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="minimum drift-adjusted ratio (default 0.75 = fail on >25%% "
        "regression beyond host drift)",
    )
    p.add_argument(
        "--churn-input", help="bench_churn JSON to gate by checksum equality"
    )
    p.add_argument(
        "--churn-baseline",
        default="BENCH_churn.json",
        help="committed churn ablation baseline",
    )
    p.add_argument(
        "--self-test", action="store_true", help="run the fixture suite and exit"
    )
    args = p.parse_args()

    if args.self_test:
        return self_test()
    if args.churn_input:
        return run_churn_gate(args)
    if not args.input:
        p.error("--input or --churn-input is required (or use --self-test)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
