#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh bench_micro_core run
against the committed BENCH_core.json and fail on a real slowdown.

Raw items/s from a shared CI box are not comparable to the committed
numbers: docs/perf.md documents +/-15% swings between runs of the same
binary, and a different runner generation can shift every number 2x in
either direction. The committed file handles this by trusting ratios,
and this gate automates the same reading:

  1. ratio[b]    = current_run[b] / baseline[b]  for every benchmark
                   present in both the run and BENCH_core.json.
  2. drift       = median(ratio.values()).  Any one change touches a
                   minority of the suite, so the median ratio isolates
                   how much faster or slower the *host* is, exactly the
                   "estimate host drift from benchmarks the release did
                   not touch" step docs/perf.md performs by hand.
  3. adjusted[b] = ratio[b] / drift.  A benchmark fails the gate when
                   adjusted[b] < threshold (default 0.75, i.e. more
                   than a 25% regression beyond host drift).

The input is the google-benchmark JSON of a 3-repetition
aggregates-only run (the same invocation scripts/bench_core.sh uses to
refresh the baseline); only the *_median rows are read. The run must
carry scda_toolchain == "optimized" -- debug numbers are refused rather
than compared.

Usage:
  bench_micro_core --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json > run.json
  scripts/bench_gate.py --input run.json            # gate vs BENCH_core.json
  scripts/bench_gate.py --input run.json --threshold 0.6
  scripts/bench_gate.py --self-test                 # fixture suite (ctest)
"""

import argparse
import json
import statistics
import sys

DEFAULT_THRESHOLD = 0.75  # adjusted ratio below this => >25% regression
MIN_SHARED = 4  # fewer shared benchmarks than this makes the median drift
# estimate meaningless; refuse to gate instead of passing vacuously.


def load_run_medians(raw):
    """Extract {name: items_per_s} medians from google-benchmark JSON."""
    toolchain = raw.get("context", {}).get("scda_toolchain", "unknown")
    if toolchain != "optimized":
        raise SystemExit(
            f"bench_gate: refusing to gate non-optimized numbers "
            f"(scda_toolchain={toolchain!r}); build the benchmark in Release"
        )
    medians = {}
    for b in raw.get("benchmarks", []):
        name = b.get("name", "")
        if name.endswith("_median") and "items_per_second" in b:
            medians[name[: -len("_median")]] = b["items_per_second"]
    if not medians:
        raise SystemExit(
            "bench_gate: no *_median rows with items_per_second in the run; "
            "invoke with --benchmark_repetitions=3 "
            "--benchmark_report_aggregates_only=true --benchmark_format=json"
        )
    return medians


def gate(baseline, run_medians, threshold):
    """Return (report_rows, failures, drift).

    report_rows: [(name, base, cur, ratio, adjusted, ok)] sorted by name.
    failures:    subset of names whose adjusted ratio < threshold, plus
                 baseline benchmarks missing from the run (a silently
                 dropped benchmark must not silently pass the gate).
    """
    ratios = {}
    missing = []
    for name, entry in baseline.items():
        base = entry.get("current_items_per_s")
        if not base:
            continue  # baseline row never filled in; nothing to compare
        if name not in run_medians:
            missing.append(name)
            continue
        ratios[name] = run_medians[name] / base

    if len(ratios) < MIN_SHARED:
        raise SystemExit(
            f"bench_gate: only {len(ratios)} benchmark(s) shared with the "
            f"baseline (need >= {MIN_SHARED} for a drift estimate); "
            "benchmark names have diverged from BENCH_core.json"
        )

    drift = statistics.median(ratios.values())
    rows = []
    failures = list(missing)
    for name in sorted(ratios):
        base = baseline[name]["current_items_per_s"]
        cur = run_medians[name]
        ratio = ratios[name]
        adjusted = ratio / drift
        ok = adjusted >= threshold
        if not ok:
            failures.append(name)
        rows.append((name, base, cur, ratio, adjusted, ok))
    return rows, failures, drift


def run_gate(args):
    with open(args.input) as f:
        run_medians = load_run_medians(json.load(f))
    with open(args.baseline) as f:
        baseline = json.load(f).get("benchmarks", {})

    rows, failures, drift = gate(baseline, run_medians, args.threshold)

    print(
        f"bench_gate: {len(rows)} benchmarks vs {args.baseline}, "
        f"host drift x{drift:.2f} (median raw ratio), "
        f"threshold {args.threshold:.2f} adjusted"
    )
    width = max(len(r[0]) for r in rows)
    for name, base, cur, ratio, adjusted, ok in rows:
        flag = "ok  " if ok else "FAIL"
        print(
            f"  {flag} {name:<{width}}  base {base:>12,.0f}  "
            f"cur {cur:>12,.0f}  raw x{ratio:5.2f}  adj x{adjusted:5.2f}"
        )
    for name in failures:
        if name not in {r[0] for r in rows}:
            print(f"  FAIL {name:<{width}}  in baseline but absent from run")

    if failures:
        print(
            f"bench_gate: FAIL -- {len(failures)} benchmark(s) regressed "
            f">{(1 - args.threshold) * 100:.0f}% beyond host drift: "
            + ", ".join(sorted(failures))
        )
        return 1
    print("bench_gate: PASS")
    return 0


# --- self-test fixtures ----------------------------------------------------


def _fake_baseline(values):
    return {n: {"current_items_per_s": v} for n, v in values.items()}


def _expect(cond, label):
    if not cond:
        raise SystemExit(f"bench_gate --self-test: FAILED: {label}")
    print(f"  ok: {label}")


def self_test():
    base = _fake_baseline(
        {"BM_A": 100.0, "BM_B": 200.0, "BM_C": 400.0, "BM_D": 800.0, "BM_E": 50.0}
    )

    # Identical numbers: drift 1.0, everything passes.
    rows, failures, drift = gate(
        base, {"BM_A": 100, "BM_B": 200, "BM_C": 400, "BM_D": 800, "BM_E": 50}, 0.75
    )
    _expect(not failures and abs(drift - 1.0) < 1e-9, "identical run passes")

    # Uniformly slow host (0.5x everywhere): pure drift, still passes.
    rows, failures, drift = gate(
        base, {"BM_A": 50, "BM_B": 100, "BM_C": 200, "BM_D": 400, "BM_E": 25}, 0.75
    )
    _expect(not failures and abs(drift - 0.5) < 1e-9, "uniform 0.5x drift passes")

    # Fast host hiding a real regression: everything 2x except BM_C at
    # 1.0x raw = 0.5x adjusted. Raw comparison would call BM_C fine.
    rows, failures, drift = gate(
        base, {"BM_A": 200, "BM_B": 400, "BM_C": 400, "BM_D": 1600, "BM_E": 100}, 0.75
    )
    _expect(
        failures == ["BM_C"] and abs(drift - 2.0) < 1e-9,
        "regression behind 2x host drift caught",
    )

    # Borderline: exactly at threshold passes (>=), just below fails.
    rows, failures, _ = gate(
        base, {"BM_A": 75, "BM_B": 150, "BM_C": 300, "BM_D": 600, "BM_E": 37.5}, 0.75
    )
    _expect(not failures, "drift 0.75 with no outlier passes")
    rows, failures, _ = gate(
        base, {"BM_A": 100, "BM_B": 200, "BM_C": 400, "BM_D": 800, "BM_E": 37}, 0.75
    )
    _expect(failures == ["BM_E"], "single outlier below threshold fails")

    # A benchmark silently dropped from the run fails the gate.
    rows, failures, _ = gate(
        base, {"BM_A": 100, "BM_B": 200, "BM_C": 400, "BM_D": 800}, 0.75
    )
    _expect(failures == ["BM_E"], "baseline benchmark missing from run fails")

    # Too few shared benchmarks refuses to gate.
    try:
        gate(base, {"BM_A": 100, "BM_B": 200}, 0.75)
        _expect(False, "sparse overlap refused")
    except SystemExit as e:
        _expect("shared" in str(e), "sparse overlap refused")

    # Debug toolchain refused at ingestion.
    try:
        load_run_medians({"context": {"scda_toolchain": "debug"}, "benchmarks": []})
        _expect(False, "debug toolchain refused")
    except SystemExit as e:
        _expect("non-optimized" in str(e), "debug toolchain refused")

    # Median extraction ignores mean/stddev aggregate rows.
    medians = load_run_medians(
        {
            "context": {"scda_toolchain": "optimized"},
            "benchmarks": [
                {"name": "BM_A_mean", "items_per_second": 1.0},
                {"name": "BM_A_median", "items_per_second": 2.0},
                {"name": "BM_A_stddev", "items_per_second": 0.1},
            ],
        }
    )
    _expect(medians == {"BM_A": 2.0}, "only *_median rows ingested")

    print("bench_gate --self-test: all fixtures passed")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--input", help="google-benchmark JSON of the fresh run")
    p.add_argument(
        "--baseline", default="BENCH_core.json", help="committed baseline file"
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="minimum drift-adjusted ratio (default 0.75 = fail on >25%% "
        "regression beyond host drift)",
    )
    p.add_argument(
        "--self-test", action="store_true", help="run the fixture suite and exit"
    )
    args = p.parse_args()

    if args.self_test:
        return self_test()
    if not args.input:
        p.error("--input is required (or use --self-test)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
