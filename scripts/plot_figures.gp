# Gnuplot helper for the figure benches.
#
# The bench binaries print gnuplot-style blocks ("# title" then columns).
# Easiest path: run a bench through the CLI tool, which writes clean CSVs,
# then plot those:
#
#   ./build/tools/scda-sim --policy scda    --workload video --out scda
#   ./build/tools/scda-sim --policy randtcp --workload video --out rand
#   gnuplot -e "prefix_a='scda'; prefix_b='rand'" scripts/plot_figures.gp
#
# Produces figures.png with the three paper-style panels (throughput
# timeseries, FCT CDF, AFCT vs size).

if (!exists("prefix_a")) prefix_a = "scda"
if (!exists("prefix_b")) prefix_b = "rand"

set terminal pngcairo size 1400,420 font ",10"
set output "figures.png"
set datafile separator ","
set multiplot layout 1,3

set title "Instantaneous average throughput (cf. paper figs 7/10/17)"
set xlabel "time (s)"
set ylabel "KB/s"
set key bottom right
plot prefix_a."_thpt.csv" skip 1 using 1:2 with lines lw 2 title "SCDA", \
     prefix_b."_thpt.csv" skip 1 using 1:2 with lines lw 2 title "RandTCP"

set title "FCT CDF (cf. paper figs 8/11/14/16/18)"
set xlabel "FCT (s)"
set ylabel "CDF"
set yrange [0:1]
plot prefix_a."_cdf.csv" skip 1 using 1:2 with lines lw 2 title "SCDA", \
     prefix_b."_cdf.csv" skip 1 using 1:2 with lines lw 2 title "RandTCP"

set title "AFCT vs content size (cf. paper figs 9/12/13/15)"
set xlabel "size (MB)"
set ylabel "AFCT (s)"
set autoscale y
plot prefix_a."_afct.csv" skip 1 using ($1/1e6):2 with linespoints lw 2 title "SCDA", \
     prefix_b."_afct.csv" skip 1 using ($1/1e6):2 with linespoints lw 2 title "RandTCP"

unset multiplot
