#!/usr/bin/env bash
# Measure sweep-runner scaling: run the same 2-arm x N-seed sweep with 1
# worker and with N workers, verify the aggregated stdout is byte-identical
# (the runner's determinism contract), and record wall-clock times and the
# speedup into BENCH_sweep.json.
#
# Usage: scripts/bench_sweep.sh [build-dir] [seeds] [workers]
#   build-dir   default: build
#   seeds       replications per arm (default 4)
#   workers     parallel worker count (default: all cores)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SEEDS="${2:-4}"
WORKERS="${3:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}"
SWEEP="$BUILD_DIR/tools/scda-sweep"
[ -x "$SWEEP" ] || {
  echo "error: $SWEEP not built (cmake --build $BUILD_DIR --target scda_sweep_cli)" >&2
  exit 1
}

# A fig17-style Pareto/Poisson comparison, sized so a run takes seconds.
ARGS=(--workload pareto --arrival-rate 30 --duration 20 --drain 10
      --agg 2 --tors 2 --servers 4 --clients 16
      --seeds "$SEEDS" --json)

OUT1="$(mktemp)" OUTN="$(mktemp)"
trap 'rm -f "$OUT1" "$OUTN"' EXIT

t_run() {  # t_run <workers> <outfile> -> seconds
  local t0 t1
  t0=$(date +%s.%N)
  "$SWEEP" "${ARGS[@]}" --workers "$1" > "$2" 2>/dev/null
  t1=$(date +%s.%N)
  echo "$t0 $t1" | awk '{printf "%.3f", $2 - $1}'
}

echo "== scda-sweep: 2 arms x $SEEDS seeds, 1 vs $WORKERS workers =="
T1=$(t_run 1 "$OUT1")
echo "1 worker:  ${T1}s"
TN=$(t_run "$WORKERS" "$OUTN")
echo "$WORKERS workers: ${TN}s"

if cmp -s "$OUT1" "$OUTN"; then
  IDENTICAL=true
  echo "aggregated output: byte-identical across worker counts"
else
  IDENTICAL=false
  echo "ERROR: output differs between worker counts" >&2
  diff "$OUT1" "$OUTN" | head >&2
  exit 1
fi

python3 - "$T1" "$TN" "$SEEDS" "$WORKERS" "$IDENTICAL" <<'EOF'
import json, os, sys
from datetime import datetime, timezone

t1, tn = float(sys.argv[1]), float(sys.argv[2])
doc = {
    "date": datetime.now(timezone.utc).date().isoformat(),
    "host_cores": os.cpu_count(),
    "sweep": {
        "arms": 2,
        "seeds": int(sys.argv[3]),
        "runs": 2 * int(sys.argv[3]),
        "workload": "pareto arrival_rate=30 duration=20s, 2x2x4 topology",
    },
    "workers_1_wall_s": t1,
    "workers_n": int(sys.argv[4]),
    "workers_n_wall_s": tn,
    "speedup": round(t1 / tn, 2) if tn > 0 else None,
    "byte_identical_output": sys.argv[5] == "true",
}
if os.cpu_count() and os.cpu_count() < int(sys.argv[4]):
    doc["note"] = ("host has fewer cores than workers; speedup reflects "
                   "oversubscription, not the runner's scaling ceiling")
json.dump(doc, open("BENCH_sweep.json", "w"), indent=2)
print(json.dumps(doc, indent=2))
EOF
