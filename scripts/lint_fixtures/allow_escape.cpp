// expect: none
// Fixture: the escape hatch. Each would-be violation carries a
// `// scda-lint: allow(<rule>)` with a justification, on the same line
// or on the line directly above.
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Key {
  double v;
  // scda-lint: allow(float-eq) exact representation compare for map keys
  bool operator==(const Key& o) const { return v == o.v; }
};

int legacy_shuffle(int n) {
  return rand() % n;  // scda-lint: allow(rand) exercising the escape hatch
}

long count_all(const std::unordered_map<int, long>& m) {
  long n = 0;
  // scda-lint: allow(unordered-iter) integer sum is order-independent
  for (const auto& [k, v] : m) {
    n += v;
  }
  return n;
}
