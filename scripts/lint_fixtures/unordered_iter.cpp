// expect: unordered-iter
// Fixture: accumulating over unordered_map iteration order. Floating
// addition is not associative, so the sum depends on bucket order —
// which is implementation-defined and changes with rehashing.
#include <string>
#include <unordered_map>

double total_rate(const std::unordered_map<int, double>& rates) {
  double sum = 0.0;
  for (const auto& [id, r] : rates) {
    sum += r;
  }
  return sum;
}
