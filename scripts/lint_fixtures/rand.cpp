// expect: rand rand
// Fixture: C PRNG calls. Global-state rand() is not seed-reproducible
// across platforms; simulations must draw from the per-instance sim::Rng.
#include <cstdlib>

int pick_server(int n) {
  std::srand(42);
  return rand() % n;
}
