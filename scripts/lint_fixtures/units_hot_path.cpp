// expect: units units units
// Fixture: raw `double` rate/byte declarations in a file the perf doc
// lists as hot-path (the self-test injects this file into the hot
// list). Each name says the value carries a dimension — the declaration
// must use sim::BitRate / sim::ByteCount / sim::BitCount so the
// compiler rejects bit-vs-byte and rate-vs-count mixups.

struct FlowState {
  double rate_bps;        // should be sim::BitRate
  double queued_bytes{};  // should be sim::ByteCount
};

void advance(FlowState& f, double drain_rate) {  // should be sim::BitRate
  f.queued_bytes -= drain_rate;
}
