// expect: wall-clock wall-clock
// Fixture: wall-clock reads. Output stamped with real time differs
// between runs of the same seed.
#include <chrono>
#include <ctime>

double stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(time(nullptr)) +
         std::chrono::duration<double>(t0.time_since_epoch()).count();
}
