// expect: none
// Fixture: idiomatic project code — typed ids and times, explicit seed,
// ordered emission — triggers nothing. Mentions of rand()/time() inside
// comments and string literals are stripped before matching.
#include <cstdint>
#include <cstdio>
#include <vector>

// A comment saying rand() or time(nullptr) is not a violation.
const char* kHelp = "do not call rand() or std::random_device";

double mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

void emit(std::uint64_t seed, double v) {
  std::printf("# seed=%llu v=%.9g\n", static_cast<unsigned long long>(seed),
              v);
}
