// expect: random-device
// Fixture: hardware entropy. A random_device-seeded run can never be
// replayed; seeds must be explicit and logged.
#include <random>

unsigned fresh_seed() {
  std::random_device rd;
  return rd();
}
