// expect: none
// Fixture: the sanctioned shapes in a hot-path file. Typed Quantity
// declarations never trigger; names without a rate/byte segment
// (`separate_count`, `byteswap_tmp`) never trigger; `double name()` is
// an accessor-style unwrap declaration, not a stored raw double; and a
// genuine serialization boundary carries `// scda-lint: allow(units)`
// with a justification.

namespace sim {
struct BitRate {
  double v{};
  double bps() const { return v; }
};
struct ByteCount {
  long long v{};
  long long bytes() const { return v; }
};
}  // namespace sim

struct FlowState {
  sim::BitRate rate;        // dimension-checked: bit/byte mixups don't compile
  sim::ByteCount queued;
  double separate_count{};  // "rate" inside "separate" is not a segment
  int byteswap_tmp{};
  double capacity_bps() const { return rate.bps(); }  // unwrap accessor
};

// %.9g JSON emission is the documented unwrap boundary: the wire format
// stays a raw double, so the local carrying it is escaped.
double to_json_field(const FlowState& f) {
  // scda-lint: allow(units) %.9g serialization boundary, value leaves typed land here
  const double rate_bps = f.rate.bps();
  return rate_bps;
}
