// expect: map-hot-path map-hot-path
// Fixture: tree containers in a file the perf doc lists as hot-path
// (the self-test injects this file into the hot list). Every lookup is
// a pointer-chasing red-black-tree walk; hot paths use dense tables.
#include <map>
#include <set>

struct Queues {
  std::map<int, double> backlog;
  std::set<int> active;
};
