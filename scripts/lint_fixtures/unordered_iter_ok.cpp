// expect: none
// Fixture: unordered iteration that only collects into an intermediate
// which is then sorted is deterministic — and loops over *ordered*
// containers are always fine.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

std::vector<int> sorted_keys(const std::unordered_map<int, double>& m) {
  std::vector<int> keys;
  for (const auto& [id, r] : m) {
    keys.push_back(id);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

double total(const std::map<int, double>& ordered) {
  double sum = 0.0;
  for (const auto& [id, r] : ordered) sum += r;
  return sum;
}
