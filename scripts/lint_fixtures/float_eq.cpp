// expect: float-eq float-eq
// Fixture: exact floating-point equality. Branching on == against a
// computed double makes control flow sensitive to rounding, which is
// sensitive to accumulation order.
bool drained(double backlog_bytes) { return backlog_bytes == 0.0; }

bool deadline_hit(double t_s) { return t_s != 1.5e-3 && t_s > 0.0; }
