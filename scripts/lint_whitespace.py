#!/usr/bin/env python3
"""Repo-wide whitespace lint: the style gates clang-format cannot express
(and that run anywhere python3 runs, no LLVM install needed).

Checks every tracked source/text file for:
  - trailing whitespace
  - hard tabs in C++ sources (the tree indents with spaces)
  - CRLF line endings
  - missing newline at end of file

Exit status 0 when clean, 1 with a file:line listing otherwise.
"""
import subprocess
import sys

CXX_EXTS = (".h", ".cpp", ".cc", ".hpp")
TEXT_EXTS = CXX_EXTS + (".md", ".txt", ".cmake", ".sh", ".py", ".yml", ".json")


def tracked_files():
    out = subprocess.run(
        ["git", "ls-files"], capture_output=True, text=True, check=True
    ).stdout
    return [f for f in out.splitlines()
            if f.endswith(TEXT_EXTS) or f.endswith("CMakeLists.txt")]


def main():
    problems = []
    for path in tracked_files():
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as e:
            problems.append(f"{path}: unreadable ({e})")
            continue
        if not data:
            continue
        if b"\r\n" in data:
            problems.append(f"{path}: CRLF line endings")
        if not data.endswith(b"\n"):
            problems.append(f"{path}: missing newline at end of file")
        for i, line in enumerate(data.split(b"\n"), start=1):
            if line.rstrip(b"\r") != line.rstrip():
                problems.append(f"{path}:{i}: trailing whitespace")
            if b"\t" in line and path.endswith(CXX_EXTS):
                problems.append(f"{path}:{i}: hard tab")
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} whitespace problem(s)", file=sys.stderr)
        return 1
    print("whitespace lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
