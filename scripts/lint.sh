#!/usr/bin/env bash
# Single entry point for the repo's source-level lints (layer 3 of the
# static-analysis pass, docs/static_analysis.md):
#
#   1. whitespace lint       (scripts/lint_whitespace.py, whole tree)
#   2. determinism linter    self-test + src/ scan
#                            (scripts/lint_determinism.py)
#   3. clang-tidy            under the committed .clang-tidy, when the
#                            binary and a compile database are available
#                            (CI installs it; containers without LLVM
#                            skip with a notice, they still get layers
#                            1-2 plus the SCDA_STRICT warning gate).
#
# Usage: scripts/lint.sh [compile-db-dir]
#   SCDA_LINT_TIDY=0   skip clang-tidy even if installed
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: whitespace =="
python3 scripts/lint_whitespace.py

echo "== lint: determinism (self-test) =="
python3 scripts/lint_determinism.py --self-test

echo "== lint: determinism (src/) =="
python3 scripts/lint_determinism.py

if [[ "${SCDA_LINT_TIDY:-1}" != "0" ]] && command -v clang-tidy > /dev/null; then
  db_dir="${1:-build}"
  if [[ ! -f "$db_dir/compile_commands.json" ]]; then
    echo "== lint: clang-tidy: configuring $db_dir for a compile database =="
    cmake -B "$db_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  echo "== lint: clang-tidy (src/, .clang-tidy) =="
  # xargs -P: clang-tidy is single-threaded per TU.
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc 2>/dev/null || echo 4)" -n 4 \
      clang-tidy -p "$db_dir" --quiet
else
  echo "== lint: clang-tidy not available or disabled — skipped" \
       "(CI runs it; see docs/static_analysis.md) =="
fi

echo "All lints passed."
