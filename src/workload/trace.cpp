#include "workload/trace.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace scda::workload {

using transport::ContentClass;

namespace {

char class_code(ContentClass c) {
  switch (c) {
    case ContentClass::kInteractive: return 'i';
    case ContentClass::kSemiInteractive: return 's';
    case ContentClass::kPassive: return 'p';
  }
  return 's';
}

ContentClass class_of(char c, const std::string& path, std::size_t line) {
  switch (c) {
    case 'i': return ContentClass::kInteractive;
    case 's': return ContentClass::kSemiInteractive;
    case 'p': return ContentClass::kPassive;
    default:
      throw std::runtime_error(path + ":" + std::to_string(line) +
                               ": unknown content class '" +
                               std::string(1, c) + "'");
  }
}

}  // namespace

std::vector<TraceRecord> read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace: cannot open " + path);
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t lineno = 0;
  double prev_time = -std::numeric_limits<double>::infinity();
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    TraceRecord r;
    char comma1 = 0, comma2 = 0, comma3 = 0, cls = 0;
    std::string flags;
    if (!(ss >> r.time_s >> comma1 >> r.size_bytes >> comma2 >> cls) ||
        comma1 != ',' || comma2 != ',') {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": malformed trace line: " + line);
    }
    r.content_class = class_of(cls, path, lineno);
    if (ss >> comma3 && comma3 == ',') {
      ss >> flags;
      r.is_control = flags.find('c') != std::string::npos;
    }
    if (r.size_bytes <= 0)
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": non-positive size");
    if (r.time_s < prev_time)
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": timestamps not monotone");
    prev_time = r.time_s;
    out.push_back(r);
  }
  return out;
}

void write_trace(const std::string& path,
                 const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace: cannot open " + path);
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# SCDA workload trace: time_s,size_bytes,class,flags\n";
  for (const auto& r : records) {
    out << r.time_s << ',' << r.size_bytes << ','
        << class_code(r.content_class) << ',' << (r.is_control ? "c" : "")
        << '\n';
  }
  if (!out) throw std::runtime_error("write_trace: write failed: " + path);
}

std::vector<TraceRecord> sample_generator(Generator& gen, sim::Rng& rng,
                                          std::size_t n) {
  std::vector<TraceRecord> out;
  out.reserve(n);
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowRequest req = gen.next(rng);
    t += req.inter_arrival_s;
    out.push_back(TraceRecord{t, req.size_bytes, req.content_class,
                              req.is_control});
  }
  return out;
}

FlowRequest TraceWorkload::next(sim::Rng&) {
  FlowRequest req;
  if (cursor_ >= records_.size()) {
    // Exhausted: an effectively infinite gap stops the driver.
    req.inter_arrival_s = std::numeric_limits<double>::max();
    return req;
  }
  const TraceRecord& r = records_[cursor_++];
  req.inter_arrival_s = r.time_s - last_time_;
  last_time_ = r.time_s;
  req.size_bytes = r.size_bytes;
  req.content_class = r.content_class;
  req.is_control = r.is_control;
  return req;
}

}  // namespace scda::workload
