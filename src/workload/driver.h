// WorkloadDriver: turns a Generator's request stream into cloud traffic.
//
// Each arrival is issued by a uniformly chosen client; a configurable
// fraction of non-control arrivals are reads of content whose write already
// completed (so reads exercise replica selection), the rest are writes of
// new content. Arrivals stop at `end_time`, after which in-flight transfers
// drain.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cloud.h"
#include "workload/generators.h"

namespace scda::workload {

struct DriverConfig {
  double end_time_s = 100.0;  ///< stop issuing new arrivals after this
  double read_fraction = 0.3; ///< fraction of content ops that are reads
  double priority = 1.0;      ///< priority weight for issued flows

  // Interactive sessions (HWHR content, paper section II-B): a fraction of
  // writes become interactive content whose owner then alternates appends
  // and reads at sub-interactivity-interval gaps.
  double interactive_fraction = 0.0;
  std::int32_t session_ops = 6;     ///< follow-up ops per session
  double session_gap_s = 2.0;       ///< gap between session ops (< 5 s)
};

class WorkloadDriver {
 public:
  WorkloadDriver(core::Cloud& cloud, std::unique_ptr<Generator> gen,
                 DriverConfig cfg);

  /// Schedule the first arrival; subsequent arrivals self-schedule.
  void start();

  [[nodiscard]] std::uint64_t issued_writes() const noexcept {
    return issued_writes_;
  }
  [[nodiscard]] std::uint64_t issued_reads() const noexcept {
    return issued_reads_;
  }
  [[nodiscard]] std::uint64_t issued_control() const noexcept {
    return issued_control_;
  }
  [[nodiscard]] std::uint64_t sessions_started() const noexcept {
    return sessions_started_;
  }
  [[nodiscard]] std::uint64_t session_ops_issued() const noexcept {
    return session_ops_issued_;
  }

 private:
  void schedule_next();
  void issue(const FlowRequest& req);
  void run_session(core::ContentId id, std::size_t client,
                   std::int64_t delta_bytes, std::int32_t ops_left);

  core::Cloud& cloud_;
  std::unique_ptr<Generator> gen_;
  DriverConfig cfg_;
  core::ContentId next_content_ = 1;
  /// Content whose initial write completed (eligible for reads).
  std::vector<core::ContentId> readable_;
  std::uint64_t issued_writes_ = 0;
  std::uint64_t issued_reads_ = 0;
  std::uint64_t issued_control_ = 0;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t session_ops_issued_ = 0;
  /// Interactive writes awaiting completion, keyed by content id; value is
  /// the owning client.
  std::unordered_map<core::ContentId, std::size_t> pending_sessions_;
};

}  // namespace scda::workload
