// Workload generators standing in for the paper's traces (section X).
//
// Each generator produces a stream of flow requests — inter-arrival time,
// content size, content class and whether the flow is a small control
// exchange. Three laws are provided:
//
//   VideoWorkload       — YouTube-like CDN traffic (paper X-A1): control
//                         flows < 5 KB plus video flows 5 KB..30 MB with a
//                         heavy-tailed body (Torres et al. report a ~30 MB
//                         cap on most YouTube videos); Poisson arrivals
//                         scaled to 20 servers (Mori et al. stand-in).
//   DatacenterWorkload  — mice/elephant datacenter traffic (paper X-A2):
//                         most flows are small, a heavy tail reaches ~8 MB;
//                         lognormal inter-arrivals (Benson et al. stand-in).
//   ParetoPoissonWorkload — the closed-form law of section X-B: Pareto
//                         sizes (mean 500 KB, shape 1.6), Poisson arrivals
//                         (mean 200 flows/s).
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "transport/flow.h"

namespace scda::workload {

struct FlowRequest {
  double inter_arrival_s = 0;  ///< gap since the previous request
  std::int64_t size_bytes = 0;
  transport::ContentClass content_class =
      transport::ContentClass::kSemiInteractive;
  bool is_control = false;  ///< small protocol exchange, not content
};

class Generator {
 public:
  virtual ~Generator() = default;
  [[nodiscard]] virtual FlowRequest next(sim::Rng& rng) = 0;
};

// ---------------------------------------------------------------------------

struct VideoWorkloadConfig {
  bool include_control_flows = true;
  /// Mean arrival rate of *video* flows (flows/sec) across the cloud.
  double video_arrival_rate = 6.0;
  /// Control (HTTP) exchanges preceding each video flow, on average.
  double control_flows_per_video = 3.0;
  // size law: lognormal body truncated to [min, cap]
  std::int64_t min_video_bytes = 5 * 1000;        ///< 5 KB boundary (paper)
  std::int64_t cap_video_bytes = 30 * 1000 * 1000;///< 30 MB cap (paper)
  double mean_video_bytes = 8e6;
  double video_cv = 1.2;
  std::int64_t min_control_bytes = 400;
  std::int64_t max_control_bytes = 5 * 1000;
};

class VideoWorkload final : public Generator {
 public:
  explicit VideoWorkload(VideoWorkloadConfig cfg = {}) : cfg_(cfg) {}
  [[nodiscard]] FlowRequest next(sim::Rng& rng) override;
  [[nodiscard]] const VideoWorkloadConfig& config() const noexcept {
    return cfg_;
  }

 private:
  VideoWorkloadConfig cfg_;
};

// ---------------------------------------------------------------------------

struct DatacenterWorkloadConfig {
  /// Mean flow arrival rate (flows/sec).
  double arrival_rate = 40.0;
  /// Inter-arrival law: lognormal with this coefficient of variation
  /// (bursty, per Benson et al.); 0 selects exponential.
  double arrival_cv = 2.0;
  /// Mice fraction; the rest are heavy-tailed elephants.
  double mice_fraction = 0.8;
  double mean_mice_bytes = 20e3;
  double mice_cv = 1.0;
  /// Elephants: bounded Pareto [min, cap].
  std::int64_t elephant_min_bytes = 200 * 1000;
  std::int64_t elephant_cap_bytes = 8 * 1000 * 1000;
  double elephant_shape = 1.2;
};

class DatacenterWorkload final : public Generator {
 public:
  explicit DatacenterWorkload(DatacenterWorkloadConfig cfg = {}) : cfg_(cfg) {}
  [[nodiscard]] FlowRequest next(sim::Rng& rng) override;
  [[nodiscard]] const DatacenterWorkloadConfig& config() const noexcept {
    return cfg_;
  }

 private:
  DatacenterWorkloadConfig cfg_;
};

// ---------------------------------------------------------------------------

struct ParetoPoissonConfig {
  double arrival_rate = 200.0;    ///< flows/sec (paper X-B)
  double mean_bytes = 500e3;      ///< 500 KB mean (paper X-B)
  double shape = 1.6;             ///< Pareto shape (paper X-B)
  /// Truncation keeping single flows from dwarfing the 100 s experiment;
  /// ~1000x the mean keeps the tail heavy.
  std::int64_t cap_bytes = 500 * 1000 * 1000;
};

class ParetoPoissonWorkload final : public Generator {
 public:
  explicit ParetoPoissonWorkload(ParetoPoissonConfig cfg = {}) : cfg_(cfg) {}
  [[nodiscard]] FlowRequest next(sim::Rng& rng) override;
  [[nodiscard]] const ParetoPoissonConfig& config() const noexcept {
    return cfg_;
  }

 private:
  ParetoPoissonConfig cfg_;
};

// ---------------------------------------------------------------------------

struct ScaleWorkloadConfig {
  /// Aggregate flow arrival rate across the fabric (flows/sec). The scale
  /// bench uses ~1e4 to reach 1M flows in ~100 simulated seconds.
  double arrival_rate = 10000.0;
  /// Bounded-Pareto elephant sizes [min, cap] — every flow is above the
  /// default fluid threshold, so a fluid run is all-analytic.
  std::int64_t min_bytes = 2 * 1000 * 1000;
  std::int64_t cap_bytes = 200 * 1000 * 1000;
  double shape = 1.4;
};

/// Elephants-only server-to-server traffic for the k=32 scale bench
/// (BENCH_scale.json): Poisson arrivals at datacenter aggregate rates,
/// heavy-tailed transfer sizes sized for the fluid engine.
class ScaleWorkload final : public Generator {
 public:
  explicit ScaleWorkload(ScaleWorkloadConfig cfg = {}) : cfg_(cfg) {}
  [[nodiscard]] FlowRequest next(sim::Rng& rng) override;
  [[nodiscard]] const ScaleWorkloadConfig& config() const noexcept {
    return cfg_;
  }

 private:
  ScaleWorkloadConfig cfg_;
};

}  // namespace scda::workload
