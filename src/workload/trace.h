// Workload trace files: record synthetic workloads to CSV and replay
// external traces (e.g. the real YouTube/datacenter traces the paper used,
// for users who have access to them).
//
// Format — one record per line, comments with '#':
//
//     time_s,size_bytes,class,flags
//
// where class is one of  i  (interactive), s (semi-interactive),
// p (passive) and flags contains 'c' for control flows (may be empty).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/generators.h"

namespace scda::workload {

struct TraceRecord {
  double time_s = 0;
  std::int64_t size_bytes = 0;
  transport::ContentClass content_class =
      transport::ContentClass::kSemiInteractive;
  bool is_control = false;
};

/// Parse a trace file. Throws std::runtime_error on I/O or format errors.
[[nodiscard]] std::vector<TraceRecord> read_trace(const std::string& path);

/// Write records (sorted by time by the caller) to `path`.
void write_trace(const std::string& path,
                 const std::vector<TraceRecord>& records);

/// Sample `n` requests from a generator into an absolute-time trace.
[[nodiscard]] std::vector<TraceRecord> sample_generator(Generator& gen,
                                                        sim::Rng& rng,
                                                        std::size_t n);

/// Generator replaying a recorded trace; after the last record it reports
/// an infinite inter-arrival gap (the driver then stops issuing).
class TraceWorkload final : public Generator {
 public:
  explicit TraceWorkload(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  /// Convenience: load from file.
  static std::unique_ptr<TraceWorkload> from_file(const std::string& path) {
    return std::make_unique<TraceWorkload>(read_trace(path));
  }

  [[nodiscard]] FlowRequest next(sim::Rng&) override;

  [[nodiscard]] std::size_t remaining() const noexcept {
    return records_.size() - cursor_;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t cursor_ = 0;
  double last_time_ = 0;
};

}  // namespace scda::workload
