#include "workload/driver.h"

#include <algorithm>

namespace scda::workload {

WorkloadDriver::WorkloadDriver(core::Cloud& cloud,
                               std::unique_ptr<Generator> gen,
                               DriverConfig cfg)
    : cloud_(cloud), gen_(std::move(gen)), cfg_(cfg) {
  // Track completed external writes so reads target stored content only.
  cloud_.add_completion_callback(
      [this](const transport::FlowRecord& rec, const core::CloudOp& op) {
        if (op.kind == core::CloudOp::Kind::kWrite &&
            op.content != core::kInvalidContent) {
          readable_.push_back(op.content);
          // Interactive content: start the append/read session now that
          // the initial copy exists.
          const auto it = pending_sessions_.find(op.content);
          if (it != pending_sessions_.end()) {
            ++sessions_started_;
            const std::size_t client = it->second;
            pending_sessions_.erase(it);
            const std::int64_t delta =
                std::max<std::int64_t>(rec.size_bytes / 10, 10'000);
            run_session(op.content, client, delta, cfg_.session_ops);
          }
        }
      });
}

void WorkloadDriver::start() { schedule_next(); }

void WorkloadDriver::schedule_next() {
  sim::Simulator& sim = cloud_.sim();
  const FlowRequest req = gen_->next(sim.rng());
  const sim::Time at = sim.now() + sim::secs(req.inter_arrival_s);
  if (at > sim::secs(cfg_.end_time_s))
    return;  // stop issuing; in-flight flows drain
  sim.post_at(at, [this, req] {
    issue(req);
    schedule_next();
  });
}

void WorkloadDriver::issue(const FlowRequest& req) {
  sim::Rng& rng = cloud_.sim().rng();
  const auto n_clients =
      static_cast<std::int64_t>(cloud_.topology().clients().size());
  const auto client =
      static_cast<std::size_t>(rng.uniform_int(0, n_clients - 1));

  if (req.is_control) {
    ++issued_control_;
    cloud_.write(client, next_content_++, req.size_bytes, req.content_class,
                 cfg_.priority);
    return;
  }

  const bool do_read =
      !readable_.empty() && rng.bernoulli(cfg_.read_fraction);
  if (do_read) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(readable_.size()) - 1));
    ++issued_reads_;
    cloud_.read(client, readable_[idx], cfg_.priority);
  } else {
    ++issued_writes_;
    const core::ContentId id = next_content_++;
    auto content_class = req.content_class;
    if (cfg_.interactive_fraction > 0 &&
        rng.bernoulli(cfg_.interactive_fraction)) {
      content_class = transport::ContentClass::kInteractive;
      pending_sessions_[id] = client;
    }
    cloud_.write(client, id, req.size_bytes, content_class, cfg_.priority);
  }
}

void WorkloadDriver::run_session(core::ContentId id, std::size_t client,
                                 std::int64_t delta_bytes,
                                 std::int32_t ops_left) {
  if (ops_left <= 0) return;
  cloud_.sim().post_in(sim::secs(cfg_.session_gap_s),
                           [this, id, client, delta_bytes, ops_left] {
    ++session_ops_issued_;
    // Alternate edits (appends) and fetches (reads): HWHR interleaving.
    if (ops_left % 2 == 0) {
      cloud_.append(client, id, delta_bytes, cfg_.priority);
    } else {
      cloud_.read(client, id, cfg_.priority);
    }
    run_session(id, client, delta_bytes, ops_left - 1);
  });
}

}  // namespace scda::workload
