#include "workload/generators.h"

#include <algorithm>

namespace scda::workload {

using transport::ContentClass;

FlowRequest VideoWorkload::next(sim::Rng& rng) {
  FlowRequest r;
  // Total arrival rate = videos plus their control exchanges.
  const double ctrl_per_video =
      cfg_.include_control_flows ? cfg_.control_flows_per_video : 0.0;
  const double total_rate = cfg_.video_arrival_rate * (1.0 + ctrl_per_video);
  r.inter_arrival_s = rng.exponential(1.0 / total_rate);

  const double p_control = ctrl_per_video / (1.0 + ctrl_per_video);
  if (cfg_.include_control_flows && rng.bernoulli(p_control)) {
    r.is_control = true;
    r.size_bytes = rng.uniform_int(cfg_.min_control_bytes,
                                   cfg_.max_control_bytes - 1);
    r.content_class = ContentClass::kPassive;  // one-shot HTTP exchange
    return r;
  }

  double sz = rng.lognormal_mean_cv(cfg_.mean_video_bytes, cfg_.video_cv);
  sz = std::clamp(sz, static_cast<double>(cfg_.min_video_bytes),
                  static_cast<double>(cfg_.cap_video_bytes));
  r.size_bytes = static_cast<std::int64_t>(sz);
  r.content_class = ContentClass::kSemiInteractive;  // upload, then reads
  return r;
}

FlowRequest DatacenterWorkload::next(sim::Rng& rng) {
  FlowRequest r;
  const double mean_gap = 1.0 / cfg_.arrival_rate;
  r.inter_arrival_s = cfg_.arrival_cv > 0
                          ? rng.lognormal_mean_cv(mean_gap, cfg_.arrival_cv)
                          : rng.exponential(mean_gap);

  if (rng.bernoulli(cfg_.mice_fraction)) {
    const double sz =
        rng.lognormal_mean_cv(cfg_.mean_mice_bytes, cfg_.mice_cv);
    r.size_bytes = std::max<std::int64_t>(500, static_cast<std::int64_t>(sz));
  } else {
    r.size_bytes = static_cast<std::int64_t>(rng.bounded_pareto(
        static_cast<double>(cfg_.elephant_min_bytes), cfg_.elephant_shape,
        static_cast<double>(cfg_.elephant_cap_bytes)));
  }
  r.content_class = ContentClass::kSemiInteractive;
  return r;
}

FlowRequest ParetoPoissonWorkload::next(sim::Rng& rng) {
  FlowRequest r;
  r.inter_arrival_s = rng.exponential(1.0 / cfg_.arrival_rate);
  const double sz = std::min(rng.pareto_mean(cfg_.mean_bytes, cfg_.shape),
                             static_cast<double>(cfg_.cap_bytes));
  r.size_bytes = std::max<std::int64_t>(500, static_cast<std::int64_t>(sz));
  r.content_class = ContentClass::kSemiInteractive;
  return r;
}

FlowRequest ScaleWorkload::next(sim::Rng& rng) {
  FlowRequest r;
  r.inter_arrival_s = rng.exponential(1.0 / cfg_.arrival_rate);
  r.size_bytes = static_cast<std::int64_t>(
      rng.bounded_pareto(static_cast<double>(cfg_.min_bytes), cfg_.shape,
                         static_cast<double>(cfg_.cap_bytes)));
  r.content_class = ContentClass::kSemiInteractive;
  return r;
}

}  // namespace scda::workload
