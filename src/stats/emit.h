// Emitters: print the series the paper's figures plot as gnuplot-ready
// columns, plus side-by-side comparisons with headline ratios.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "stats/collector.h"
#include "stats/throughput.h"

namespace scda::stats {

/// "# <title>" header then "x y" rows.
inline void emit_cdf(std::FILE* out, const std::string& title,
                     const std::vector<CdfPoint>& cdf,
                     std::size_t max_rows = 60) {
  std::fprintf(out, "# %s  (FCT_s  CDF)\n", title.c_str());
  if (cdf.empty()) return;
  const std::size_t stride = cdf.size() > max_rows ? cdf.size() / max_rows : 1;
  for (std::size_t i = 0; i < cdf.size(); i += stride)
    std::fprintf(out, "%.4f %.4f\n", cdf[i].x, cdf[i].p);
  std::fprintf(out, "%.4f %.4f\n", cdf.back().x, cdf.back().p);
}

inline void emit_afct(std::FILE* out, const std::string& title,
                      const std::vector<AfctBin>& bins,
                      double size_unit = 1e6,
                      const char* unit_name = "MB") {
  std::fprintf(out, "# %s  (size_%s  AFCT_s  flows)\n", title.c_str(),
               unit_name);
  for (const auto& b : bins)
    std::fprintf(out, "%.2f %.4f %llu\n", b.size_mid / size_unit, b.afct_s,
                 static_cast<unsigned long long>(b.count));
}

inline void emit_throughput(std::FILE* out, const std::string& title,
                            const std::vector<ThroughputSample>& series) {
  std::fprintf(out, "# %s  (time_s  thpt_KB_s)\n", title.c_str());
  for (const auto& s : series)
    std::fprintf(out, "%.1f %.1f\n", s.time_s, s.kbytes_per_s);
}

inline void emit_summary(std::FILE* out, const std::string& name,
                         const Summary& s) {
  std::fprintf(out,
               "# %s: flows=%llu mean_fct=%.3fs median_fct=%.3fs "
               "p95_fct=%.3fs goodput=%.1fMbps\n",
               name.c_str(), static_cast<unsigned long long>(s.flows),
               s.mean_fct_s, s.median_fct_s, s.p95_fct_s,
               s.goodput_bps / 1e6);
}

/// Headline comparison in the paper's terms: AFCT reduction and throughput
/// gain of SCDA over the baseline.
inline void emit_comparison(std::FILE* out, const Summary& scda,
                            const Summary& rand_tcp, double scda_thpt_kbs,
                            double rand_thpt_kbs) {
  const double afct_reduction =
      rand_tcp.mean_fct_s > 0
          ? 100.0 * (rand_tcp.mean_fct_s - scda.mean_fct_s) /
                rand_tcp.mean_fct_s
          : 0.0;
  const double thpt_gain = rand_thpt_kbs > 0
                               ? 100.0 * (scda_thpt_kbs - rand_thpt_kbs) /
                                     rand_thpt_kbs
                               : 0.0;
  std::fprintf(out,
               "# SCDA vs RandTCP: AFCT %.1f%% lower, mean inst. throughput "
               "%.1f%% higher\n",
               afct_reduction, thpt_gain);
}

}  // namespace scda::stats
