// Replication aggregation: merge the RunResults of repeated runs (same
// configuration, different seeds) into mean/stddev/CI summaries and
// mean per-figure series.
//
// Determinism contract: every function here folds its inputs in the order
// given. Feeding the same runs in the same order produces byte-identical
// output regardless of how many worker threads produced them — the
// property the sweep runner's 1-vs-N-worker test locks down.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "stats/run_result.h"

namespace scda::stats {

/// Sample moments of one scalar metric across replications.
struct Moments {
  std::uint64_t n = 0;
  double mean = 0;
  double stddev = 0;     ///< sample stddev (n-1); 0 when n < 2
  double ci95_half = 0;  ///< 1.96 * stddev / sqrt(n); 0 when n < 2
  double min = 0;
  double max = 0;
};

[[nodiscard]] Moments compute_moments(const std::vector<double>& xs);

/// Aggregate of N replicated runs of one experiment cell (one arm, one
/// parameter setting, seeds varying).
struct RunAggregate {
  std::uint64_t runs = 0;

  // Scalar metrics across replications.
  Moments mean_fct_s;
  Moments median_fct_s;
  Moments p95_fct_s;
  Moments goodput_bps;
  Moments mean_throughput_kbs;
  Moments sla_violations;
  Moments failed_reads;
  Moments energy_j;
  Moments flows;
  Moments events;

  // Mean per-figure series.
  std::vector<ThroughputSample> throughput;  ///< pointwise mean over runs
  std::vector<CdfPoint> fct_cdf;  ///< quantile-averaged on a fixed p-grid
  std::vector<AfctBin> afct;      ///< per-bin pooled (keyed by size_mid)

  /// Per-metric-id moments over the runs that reported the id, in
  /// ascending id order (docs/observability.md catalog). Empty when no run
  /// carried a metrics snapshot.
  std::vector<std::pair<std::string, Moments>> metrics;
};

/// Merge runs (all replications of one cell) into a RunAggregate.
[[nodiscard]] RunAggregate aggregate_runs(
    const std::vector<const RunResult*>& runs);
[[nodiscard]] RunAggregate aggregate_runs(const std::vector<RunResult>& runs);

/// One `label: mean ± stddev [ci95] (n=..)` line per scalar metric.
void emit_aggregate_text(std::FILE* out, const std::string& label,
                         const RunAggregate& agg);

/// The whole aggregate as a single JSON object line (stable key order and
/// number formatting — the byte-identity anchor for determinism tests).
void emit_aggregate_json(std::FILE* out, const std::string& label,
                         const RunAggregate& agg);

/// Just the aggregated metric catalog as a `# metrics: {...}` comment line
/// (`"id":[mean,stddev,min,max]` per id) — what the bench harness prints in
/// replicated mode.
void emit_aggregate_metrics(std::FILE* out, const RunAggregate& agg);

}  // namespace scda::stats
