// QueueSampler: periodic samples of link queue occupancy.
//
// The beta*Q/tau term of eq. 2 is what keeps SCDA's switch queues near
// empty; this sampler provides the evidence (mean/max/percentile queue
// depth per monitored link over a run).
#pragma once

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "util/histogram.h"

namespace scda::stats {

class QueueSampler {
 public:
  QueueSampler(sim::Simulator& sim, net::Network& net,
               std::vector<net::LinkId> links, double interval_s = 0.01)
      : net_(net),
        links_(std::move(links)),
        per_link_(links_.size()),
        process_(std::make_unique<sim::PeriodicProcess>(
            sim, sim::secs(interval_s), [this] { sample(); })) {
    process_->start(sim::secs(interval_s));
  }

  void stop() { process_->stop(); }

  [[nodiscard]] const util::RunningStats& link_stats(std::size_t i) const {
    return per_link_.at(i);
  }

  /// Mean queue depth (bytes) across every sample of every monitored link.
  [[nodiscard]] double mean_queue_bytes() const {
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto& s : per_link_) {
      sum += s.mean() * static_cast<double>(s.count());
      n += s.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }

  /// Largest queue depth observed on any monitored link.
  [[nodiscard]] double max_queue_bytes() const {
    double m = 0;
    for (const auto& s : per_link_) m = std::max(m, s.max());
    return m;
  }

 private:
  void sample() {
    for (std::size_t i = 0; i < links_.size(); ++i) {
      per_link_[i].add(
          static_cast<double>(net_.link(links_[i]).queue_bytes()));
    }
  }

  net::Network& net_;
  std::vector<net::LinkId> links_;
  std::vector<util::RunningStats> per_link_;
  std::unique_ptr<sim::PeriodicProcess> process_;
};

}  // namespace scda::stats
