// RunResult: everything one simulation run produces that the figures,
// sweep aggregation and CLI tools consume. Lives in stats (not bench/) so
// the sweep runner and the aggregation layer can pass runs around without
// depending on the benchmark harness.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "stats/collector.h"
#include "stats/perf.h"
#include "stats/throughput.h"

namespace scda::stats {

struct RunResult {
  Summary summary;
  std::vector<ThroughputSample> throughput;
  std::vector<CdfPoint> fct_cdf;
  std::vector<AfctBin> afct;
  double mean_throughput_kbs = 0;
  std::uint64_t sla_violations = 0;
  std::uint64_t failed_reads = 0;
  double energy_j = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t events = 0;
  CorePerf perf;  ///< event-engine/link counters (docs/perf.md)
  /// Full-stack metric snapshot (docs/observability.md); empty when the
  /// run's ObsConfig disabled metrics collection.
  obs::MetricsSnapshot metrics;
};

}  // namespace scda::stats
