// Core perf counters: a snapshot of the event engine and packet-path
// bookkeeping, aggregated across a simulation. See docs/perf.md for the
// meaning of each field and the emitted format.
#pragma once

#include <cstdint>
#include <cstdio>

#include "net/network.h"
#include "sim/simulator.h"

namespace scda::stats {

struct CorePerf {
  // Event engine (sim::EventQueueStats).
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_popped = 0;
  std::uint64_t events_cancelled = 0;  ///< live events removed in O(log n)
  std::uint64_t stale_cancels = 0;     ///< cancel-after-fire O(1) no-ops
  std::uint64_t heap_hwm = 0;          ///< peak pending events
  std::uint64_t event_pool_slots = 0;  ///< event slots allocated (recycled)
  std::uint64_t callbacks_inline = 0;  ///< captures stored in-slot
  std::uint64_t callbacks_heap = 0;    ///< captures that hit the allocator

  // Packet path, summed over all links. (The delivery_clamps counter that
  // used to live here is gone: with integer-nanosecond SimTime a clamped
  // delivery delay is structurally impossible, so Link asserts instead of
  // counting — see Link::delivery_delay.)
  std::uint64_t link_pool_slots = 0;   ///< packet slots allocated
  std::uint64_t link_queue_hwm = 0;    ///< max of per-link queue peaks
  std::uint64_t sjf_selects = 0;       ///< SJF index selections served

  /// Events popped per second of wall-clock, when the caller timed the run.
  [[nodiscard]] double events_per_sec(double wall_s) const noexcept {
    return wall_s > 0 ? static_cast<double>(events_popped) / wall_s : 0.0;
  }
};

/// Snapshot the simulator's event-engine counters.
[[nodiscard]] CorePerf collect_core_perf(const sim::Simulator& sim);

/// Snapshot event-engine counters plus the packet-path counters of every
/// link in `net`.
[[nodiscard]] CorePerf collect_core_perf(const sim::Simulator& sim,
                                         const net::Network& net);

/// Emit the counters as a single JSON object line prefixed with
/// `# core-perf: ` (greppable from benchmark logs, parseable after the
/// prefix is stripped).
void emit_core_perf(std::FILE* out, const CorePerf& p);

}  // namespace scda::stats
