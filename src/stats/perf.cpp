#include "stats/perf.h"

#include <cinttypes>

namespace scda::stats {

CorePerf collect_core_perf(const sim::Simulator& sim) {
  const sim::EventQueueStats& q = sim.perf();
  CorePerf p;
  p.events_scheduled = q.scheduled;
  p.events_popped = q.popped;
  p.events_cancelled = q.cancelled;
  p.stale_cancels = q.stale_cancels;
  p.heap_hwm = q.heap_hwm;
  p.event_pool_slots = sim.queue().pool_capacity();
  p.callbacks_inline = q.callbacks_inline;
  p.callbacks_heap = q.callbacks_heap;
  return p;
}

CorePerf collect_core_perf(const sim::Simulator& sim,
                           const net::Network& net) {
  CorePerf p = collect_core_perf(sim);
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    const net::Link& l = net.link(net::LinkId::from_index(i));
    p.link_pool_slots += l.queue_pool_capacity();
    const auto& qp = l.queue_perf();
    if (qp.pool_hwm > p.link_queue_hwm) p.link_queue_hwm = qp.pool_hwm;
    p.sjf_selects += qp.sjf_selects;
  }
  return p;
}

void emit_core_perf(std::FILE* out, const CorePerf& p) {
  std::fprintf(
      out,
      "# core-perf: {\"events_scheduled\":%" PRIu64 ",\"events_popped\":%"
      PRIu64 ",\"events_cancelled\":%" PRIu64 ",\"stale_cancels\":%" PRIu64
      ",\"heap_hwm\":%" PRIu64 ",\"event_pool_slots\":%" PRIu64
      ",\"callbacks_inline\":%" PRIu64 ",\"callbacks_heap\":%" PRIu64
      ",\"link_pool_slots\":%" PRIu64 ",\"link_queue_hwm\":%" PRIu64
      ",\"sjf_selects\":%" PRIu64 "}\n",
      p.events_scheduled, p.events_popped, p.events_cancelled, p.stale_cancels,
      p.heap_hwm, p.event_pool_slots, p.callbacks_inline, p.callbacks_heap,
      p.link_pool_slots, p.link_queue_hwm, p.sjf_selects);
}

}  // namespace scda::stats
