#include "stats/collector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scda::stats {

FlowStatsCollector::FlowStatsCollector(core::Cloud& cloud,
                                       bool include_replication)
    : include_replication_(include_replication) {
  cloud.add_completion_callback(
      [this](const transport::FlowRecord& rec, const core::CloudOp& op) {
        record(rec, op);
      });
}

void FlowStatsCollector::record(const transport::FlowRecord& rec,
                                const core::CloudOp& op) {
  if (!include_replication_ && op.kind == core::CloudOp::Kind::kReplication)
    return;
  CompletionRecord r;
  r.size_bytes = rec.size_bytes;
  r.fct_s = rec.fct();
  r.start_time = rec.start_time.seconds();
  r.finish_time = rec.finish_time.seconds();
  r.kind = op.kind;
  r.content_class = op.content_class;
  r.control = rec.size_bytes < 5 * 1000;  // paper: control flows are < 5 KB
  records_.push_back(r);
}

std::vector<CdfPoint> FlowStatsCollector::fct_cdf() const {
  std::vector<double> fcts;
  fcts.reserve(records_.size());
  for (const auto& r : records_) fcts.push_back(r.fct_s);
  std::sort(fcts.begin(), fcts.end());
  std::vector<CdfPoint> out;
  out.reserve(fcts.size());
  const auto n = static_cast<double>(fcts.size());
  for (std::size_t i = 0; i < fcts.size(); ++i)
    out.push_back({fcts[i], static_cast<double>(i + 1) / n});
  return out;
}

std::vector<AfctBin> FlowStatsCollector::afct_by_size(double bin_bytes,
                                                      double max_bytes) const {
  const auto n_bins =
      static_cast<std::size_t>(std::ceil(max_bytes / bin_bytes));
  std::vector<double> sum(n_bins, 0.0);
  std::vector<std::uint64_t> cnt(n_bins, 0);
  for (const auto& r : records_) {
    auto b = static_cast<std::size_t>(static_cast<double>(r.size_bytes) /
                                      bin_bytes);
    if (b >= n_bins) b = n_bins - 1;
    sum[b] += r.fct_s;
    ++cnt[b];
  }
  std::vector<AfctBin> out;
  for (std::size_t b = 0; b < n_bins; ++b) {
    if (cnt[b] == 0) continue;
    out.push_back({(static_cast<double>(b) + 0.5) * bin_bytes,
                   sum[b] / static_cast<double>(cnt[b]), cnt[b]});
  }
  return out;
}

Summary FlowStatsCollector::summary() const {
  return summary_where([](const CompletionRecord&) { return true; });
}

Summary FlowStatsCollector::summary_where(
    const std::function<bool(const CompletionRecord&)>& keep) const {
  Summary s;
  std::vector<double> fcts;
  double first_start = std::numeric_limits<double>::infinity();
  double last_finish = 0;
  double bytes = 0;
  for (const auto& r : records_) {
    if (!keep(r)) continue;
    fcts.push_back(r.fct_s);
    s.mean_fct_s += r.fct_s;
    bytes += static_cast<double>(r.size_bytes);
    first_start = std::min(first_start, r.start_time);
    last_finish = std::max(last_finish, r.finish_time);
  }
  if (fcts.empty()) return Summary{};
  std::sort(fcts.begin(), fcts.end());
  s.flows = fcts.size();
  s.mean_fct_s /= static_cast<double>(s.flows);
  s.median_fct_s = fcts[fcts.size() / 2];
  s.p95_fct_s = fcts[static_cast<std::size_t>(
      std::min<double>(static_cast<double>(fcts.size()) - 1,
                       0.95 * static_cast<double>(fcts.size())))];
  s.mean_size_bytes = bytes / static_cast<double>(s.flows);
  const double span = last_finish - first_start;
  s.goodput_bps = span > 0 ? bytes * 8.0 / span : 0.0;
  return s;
}

}  // namespace scda::stats
