// Pull-based metric collection: walk the stack's existing cheap counters
// (EventQueueStats, LinkStats, SenderStats, RateAllocator::ControlStats,
// CloudSnapshot) at end of run and fold them into a MetricsRegistry. No
// component pays anything on its hot path for these — the counters already
// exist for the perf/figure machinery; this just gives them stable ids.
//
// The full metric catalog is documented in docs/observability.md. Every
// value is a pure function of the simulation state, so snapshots taken
// from identical-seed runs are identical — the determinism anchor the
// observability tests lock down.
#pragma once

#include "obs/metrics.h"

namespace scda::sim {
class Simulator;
}
namespace scda::core {
class Cloud;
}

namespace scda::stats {

/// Fold the whole stack's counters into `reg` under the catalog ids.
/// Walks sim + the cloud's network/transport/control/SLA state; uses
/// sim.now() (not wall clock) for rate-style metrics so the snapshot is
/// deterministic.
void collect_run_metrics(obs::MetricsRegistry& reg, const sim::Simulator& sim,
                         core::Cloud& cloud);

/// Emit a snapshot as a `# metrics: {...}` comment line (greppable from
/// bench logs, parseable after the prefix).
void emit_metrics(std::FILE* out, const obs::MetricsSnapshot& snap);

}  // namespace scda::stats
