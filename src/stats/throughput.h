// ThroughputSampler: periodic samples of cloud-wide delivered bytes,
// yielding the instantaneous average throughput series of figures 7/10/17.
#pragma once

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "transport/transport_manager.h"

namespace scda::stats {

struct ThroughputSample {
  double time_s = 0;
  double kbytes_per_s = 0;  ///< the paper's unit (KB/sec)
};

class ThroughputSampler {
 public:
  ThroughputSampler(sim::Simulator& sim,
                    const transport::TransportManager& transports,
                    double interval_s = 1.0)
      : transports_(transports),
        interval_s_(interval_s),
        process_(std::make_unique<sim::PeriodicProcess>(
            sim, sim::secs(interval_s),
            [this, &sim] { sample(sim.now()); })) {
    process_->start(sim::secs(interval_s));
  }

  [[nodiscard]] const std::vector<ThroughputSample>& series() const noexcept {
    return series_;
  }

  /// Mean of the non-zero span of the series (aggregate average
  /// instantaneous throughput).
  [[nodiscard]] double mean_kbytes_per_s() const {
    if (series_.empty()) return 0;
    double sum = 0;
    for (const auto& s : series_) sum += s.kbytes_per_s;
    return sum / static_cast<double>(series_.size());
  }

  void stop() { process_->stop(); }

 private:
  void sample(sim::Time now) {
    const std::int64_t delivered = transports_.total_delivered_bytes();
    const double kbps =
        static_cast<double>(delivered - last_delivered_) / 1000.0 /
        interval_s_;
    last_delivered_ = delivered;
    series_.push_back({now.seconds(), kbps});
  }

  const transport::TransportManager& transports_;
  double interval_s_;
  std::int64_t last_delivered_ = 0;
  std::vector<ThroughputSample> series_;
  std::unique_ptr<sim::PeriodicProcess> process_;
};

}  // namespace scda::stats
