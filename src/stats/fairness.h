// Fairness metrics.
//
// Jain's fairness index over allocations x_i:
//     J = (sum x)^2 / (n * sum x^2),  J in (0, 1],  J = 1 <=> all equal.
// For weighted max-min fairness, pass x_i / w_i so ideal weighted shares
// also score 1.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace scda::stats {

[[nodiscard]] inline double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0, sum2 = 0;
  for (const double x : xs) {
    sum += x;
    sum2 += x * x;
  }
  if (sum2 <= 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum2);
}

/// Exact empirical percentile (linear interpolation) of an unsorted sample.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace scda::stats
