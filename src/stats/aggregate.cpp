#include "stats/aggregate.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace scda::stats {

Moments compute_moments(const std::vector<double>& xs) {
  Moments m;
  m.n = xs.size();
  if (xs.empty()) return m;
  double sum = 0;
  m.min = xs.front();
  m.max = xs.front();
  for (const double x : xs) {
    sum += x;
    m.min = std::min(m.min, x);
    m.max = std::max(m.max, x);
  }
  m.mean = sum / static_cast<double>(m.n);
  if (m.n < 2) return m;
  double ss = 0;
  for (const double x : xs) ss += (x - m.mean) * (x - m.mean);
  m.stddev = std::sqrt(ss / static_cast<double>(m.n - 1));
  m.ci95_half = 1.96 * m.stddev / std::sqrt(static_cast<double>(m.n));
  return m;
}

namespace {

template <typename Get>
Moments metric(const std::vector<const RunResult*>& runs, Get get) {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const RunResult* r : runs) xs.push_back(get(*r));
  return compute_moments(xs);
}

/// Pointwise mean of the throughput series; samples are averaged per index
/// over the runs that reach that index (drain tails may differ in length).
std::vector<ThroughputSample> mean_throughput(
    const std::vector<const RunResult*>& runs) {
  std::size_t longest = 0;
  for (const RunResult* r : runs)
    longest = std::max(longest, r->throughput.size());
  std::vector<ThroughputSample> out;
  out.reserve(longest);
  for (std::size_t i = 0; i < longest; ++i) {
    double t = 0, v = 0;
    std::uint64_t n = 0;
    for (const RunResult* r : runs) {
      if (i >= r->throughput.size()) continue;
      t += r->throughput[i].time_s;
      v += r->throughput[i].kbytes_per_s;
      ++n;
    }
    out.push_back({t / static_cast<double>(n), v / static_cast<double>(n)});
  }
  return out;
}

/// Interpolated quantile x(p) on one empirical CDF (sorted x, p ascending).
double quantile(const std::vector<CdfPoint>& cdf, double p) {
  if (cdf.empty()) return 0;
  if (p <= cdf.front().p) return cdf.front().x;
  if (p >= cdf.back().p) return cdf.back().x;
  const auto it = std::lower_bound(
      cdf.begin(), cdf.end(), p,
      [](const CdfPoint& c, double pp) { return c.p < pp; });
  const auto lo = it - 1;
  const double span = it->p - lo->p;
  const double w = span > 0 ? (p - lo->p) / span : 0.0;
  return lo->x + w * (it->x - lo->x);
}

/// Quantile-average the per-run CDFs on a fixed percent grid: replications
/// complete different flow counts, so pointwise index alignment is
/// meaningless, but x(p) averages cleanly.
std::vector<CdfPoint> mean_cdf(const std::vector<const RunResult*>& runs) {
  std::vector<const RunResult*> with;
  for (const RunResult* r : runs)
    if (!r->fct_cdf.empty()) with.push_back(r);
  if (with.empty()) return {};
  std::vector<CdfPoint> out;
  out.reserve(100);
  for (int pc = 1; pc <= 100; ++pc) {
    const double p = static_cast<double>(pc) / 100.0;
    double x = 0;
    for (const RunResult* r : with) x += quantile(r->fct_cdf, p);
    out.push_back({x / static_cast<double>(with.size()), p});
  }
  return out;
}

/// Pool AFCT bins keyed by size_mid (runs share the binning, but empty
/// bins are elided per run, so align by key, not index).
std::vector<AfctBin> pooled_afct(const std::vector<const RunResult*>& runs) {
  std::map<double, std::pair<double, std::uint64_t>> bins;  // mid -> (sum, n)
  for (const RunResult* r : runs) {
    for (const AfctBin& b : r->afct) {
      auto& [sum, n] = bins[b.size_mid];
      sum += b.afct_s * static_cast<double>(b.count);
      n += b.count;
    }
  }
  std::vector<AfctBin> out;
  out.reserve(bins.size());
  for (const auto& [mid, acc] : bins)
    out.push_back({mid, acc.first / static_cast<double>(acc.second),
                   acc.second});
  return out;
}

/// Per-id moments over the runs' metric snapshots. Ids come pre-sorted
/// inside each snapshot; a std::map keyed by id keeps the merged order
/// deterministic even if some run lacks an id (e.g. a zero-flow run never
/// observed a histogram).
std::vector<std::pair<std::string, Moments>> metric_moments(
    const std::vector<const RunResult*>& runs) {
  std::map<std::string, std::vector<double>> by_id;
  for (const RunResult* r : runs)
    for (const obs::Metric& m : r->metrics.metrics)
      by_id[m.id].push_back(m.value);
  std::vector<std::pair<std::string, Moments>> out;
  out.reserve(by_id.size());
  for (const auto& [id, xs] : by_id)
    out.emplace_back(id, compute_moments(xs));
  return out;
}

}  // namespace

RunAggregate aggregate_runs(const std::vector<const RunResult*>& runs) {
  RunAggregate a;
  a.runs = runs.size();
  if (runs.empty()) return a;
  a.mean_fct_s = metric(runs, [](const RunResult& r) {
    return r.summary.mean_fct_s;
  });
  a.median_fct_s = metric(runs, [](const RunResult& r) {
    return r.summary.median_fct_s;
  });
  a.p95_fct_s = metric(runs, [](const RunResult& r) {
    return r.summary.p95_fct_s;
  });
  a.goodput_bps = metric(runs, [](const RunResult& r) {
    return r.summary.goodput_bps;
  });
  a.mean_throughput_kbs = metric(runs, [](const RunResult& r) {
    return r.mean_throughput_kbs;
  });
  a.sla_violations = metric(runs, [](const RunResult& r) {
    return static_cast<double>(r.sla_violations);
  });
  a.failed_reads = metric(runs, [](const RunResult& r) {
    return static_cast<double>(r.failed_reads);
  });
  a.energy_j = metric(runs, [](const RunResult& r) { return r.energy_j; });
  a.flows = metric(runs, [](const RunResult& r) {
    return static_cast<double>(r.flows_completed);
  });
  a.events = metric(runs, [](const RunResult& r) {
    return static_cast<double>(r.events);
  });
  a.throughput = mean_throughput(runs);
  a.fct_cdf = mean_cdf(runs);
  a.afct = pooled_afct(runs);
  a.metrics = metric_moments(runs);
  return a;
}

RunAggregate aggregate_runs(const std::vector<RunResult>& runs) {
  std::vector<const RunResult*> ptrs;
  ptrs.reserve(runs.size());
  for (const RunResult& r : runs) ptrs.push_back(&r);
  return aggregate_runs(ptrs);
}

namespace {

void text_line(std::FILE* out, const char* name, const Moments& m,
               const char* unit) {
  std::fprintf(out, "#   %-18s %.4g ± %.3g [±%.3g] %s (min %.4g, max %.4g)\n",
               name, m.mean, m.stddev, m.ci95_half, unit, m.min, m.max);
}

void json_moments(std::FILE* out, const char* name, const Moments& m,
                  bool trailing_comma) {
  std::fprintf(out,
               "\"%s\":{\"mean\":%.9g,\"stddev\":%.9g,\"ci95\":%.9g,"
               "\"min\":%.9g,\"max\":%.9g}%s",
               name, m.mean, m.stddev, m.ci95_half, m.min, m.max,
               trailing_comma ? "," : "");
}

}  // namespace

void emit_aggregate_text(std::FILE* out, const std::string& label,
                         const RunAggregate& agg) {
  std::fprintf(out, "# %s — %llu replications (mean ± stddev [CI95])\n",
               label.c_str(), static_cast<unsigned long long>(agg.runs));
  text_line(out, "mean FCT", agg.mean_fct_s, "s");
  text_line(out, "median FCT", agg.median_fct_s, "s");
  text_line(out, "p95 FCT", agg.p95_fct_s, "s");
  text_line(out, "goodput", agg.goodput_bps, "bps");
  text_line(out, "mean inst thpt", agg.mean_throughput_kbs, "KB/s");
  text_line(out, "SLA violations", agg.sla_violations, "");
  text_line(out, "flows", agg.flows, "");
}

void emit_aggregate_json(std::FILE* out, const std::string& label,
                         const RunAggregate& agg) {
  std::fprintf(out, "{\"label\":\"%s\",\"runs\":%llu,", label.c_str(),
               static_cast<unsigned long long>(agg.runs));
  json_moments(out, "mean_fct_s", agg.mean_fct_s, true);
  json_moments(out, "median_fct_s", agg.median_fct_s, true);
  json_moments(out, "p95_fct_s", agg.p95_fct_s, true);
  json_moments(out, "goodput_bps", agg.goodput_bps, true);
  json_moments(out, "mean_throughput_kbs", agg.mean_throughput_kbs, true);
  json_moments(out, "sla_violations", agg.sla_violations, true);
  json_moments(out, "failed_reads", agg.failed_reads, true);
  json_moments(out, "energy_j", agg.energy_j, true);
  json_moments(out, "flows", agg.flows, true);
  json_moments(out, "events", agg.events, true);
  std::fprintf(out, "\"throughput\":[");
  for (std::size_t i = 0; i < agg.throughput.size(); ++i)
    std::fprintf(out, "%s[%.9g,%.9g]", i ? "," : "", agg.throughput[i].time_s,
                 agg.throughput[i].kbytes_per_s);
  std::fprintf(out, "],\"fct_cdf\":[");
  for (std::size_t i = 0; i < agg.fct_cdf.size(); ++i)
    std::fprintf(out, "%s[%.9g,%.9g]", i ? "," : "", agg.fct_cdf[i].x,
                 agg.fct_cdf[i].p);
  std::fprintf(out, "],\"afct\":[");
  for (std::size_t i = 0; i < agg.afct.size(); ++i)
    std::fprintf(out, "%s[%.9g,%.9g,%llu]", i ? "," : "",
                 agg.afct[i].size_mid, agg.afct[i].afct_s,
                 static_cast<unsigned long long>(agg.afct[i].count));
  std::fprintf(out, "],\"metrics\":{");
  for (std::size_t i = 0; i < agg.metrics.size(); ++i)
    std::fprintf(out, "%s\"%s\":[%.9g,%.9g,%.9g,%.9g]", i ? "," : "",
                 agg.metrics[i].first.c_str(), agg.metrics[i].second.mean,
                 agg.metrics[i].second.stddev, agg.metrics[i].second.min,
                 agg.metrics[i].second.max);
  std::fprintf(out, "}}\n");
}

void emit_aggregate_metrics(std::FILE* out, const RunAggregate& agg) {
  std::fprintf(out, "# metrics: {");
  for (std::size_t i = 0; i < agg.metrics.size(); ++i)
    std::fprintf(out, "%s\"%s\":[%.9g,%.9g,%.9g,%.9g]", i ? "," : "",
                 agg.metrics[i].first.c_str(), agg.metrics[i].second.mean,
                 agg.metrics[i].second.stddev, agg.metrics[i].second.min,
                 agg.metrics[i].second.max);
  std::fprintf(out, "}\n");
}

}  // namespace scda::stats
