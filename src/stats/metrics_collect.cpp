#include "stats/metrics_collect.h"

#include <cstdio>

#include "core/churn.h"
#include "core/cloud.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace scda::stats {

void collect_run_metrics(obs::MetricsRegistry& reg, const sim::Simulator& sim,
                         core::Cloud& cloud) {
  const double now = sim.now().seconds();

  // --- event engine ---------------------------------------------------------
  const sim::EventQueueStats& q = sim.perf();
  reg.add("sim.events.scheduled", static_cast<double>(q.scheduled));
  reg.add("sim.events.popped", static_cast<double>(q.popped));
  reg.add("sim.events.cancelled", static_cast<double>(q.cancelled));
  reg.add("sim.events.stale_cancels", static_cast<double>(q.stale_cancels));
  reg.set("sim.events.heap_hwm", static_cast<double>(q.heap_hwm));
  reg.set("sim.events.pool_slots",
          static_cast<double>(sim.queue().pool_capacity()));
  reg.set("sim.time_s", now);

  // --- packet path, summed over all links ----------------------------------
  net::Network& net = cloud.topology().net();
  std::uint64_t tx_packets = 0, tx_bytes = 0, dropped_packets = 0,
                dropped_bytes = 0, enqueued = 0, queue_hwm = 0;
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    const net::Link& l = net.link(net::LinkId::from_index(i));
    const net::LinkStats& ls = l.stats();
    tx_packets += ls.tx_packets;
    tx_bytes += ls.tx_bytes;
    dropped_packets += ls.dropped_packets;
    dropped_bytes += ls.dropped_bytes;
    enqueued += ls.enqueued_packets;
    if (l.queue_perf().pool_hwm > queue_hwm)
      queue_hwm = l.queue_perf().pool_hwm;
    reg.observe("net.link.utilization", l.utilization(now));
  }
  reg.add("net.link.tx_packets", static_cast<double>(tx_packets));
  reg.add("net.link.tx_bytes", static_cast<double>(tx_bytes));
  reg.add("net.link.dropped_packets", static_cast<double>(dropped_packets));
  reg.add("net.link.dropped_bytes", static_cast<double>(dropped_bytes));
  reg.add("net.link.enqueued_packets", static_cast<double>(enqueued));
  reg.set("net.link.queue_hwm", static_cast<double>(queue_hwm));
  reg.set("net.link.count", static_cast<double>(net.link_count()));

  // --- transport, summed over all flows' senders ----------------------------
  transport::TransportManager& tm = cloud.transports();
  std::uint64_t data_sent = 0, retransmits = 0, timeouts = 0, fast_rtx = 0,
                completed = 0;
  for (const auto& rec : tm.records()) {
    if (rec->finished()) {
      ++completed;
      reg.observe("transport.fct_s", rec->fct());
    }
    if (const transport::WindowSender* s = tm.sender(rec->id)) {
      const transport::SenderStats& ss = s->stats();
      data_sent += ss.data_packets_sent;
      retransmits += ss.retransmits;
      timeouts += ss.timeouts;
      fast_rtx += ss.fast_retransmits;
      reg.observe("transport.cwnd_bytes", s->cwnd_bytes());
    }
  }
  reg.add("transport.data_packets_sent", static_cast<double>(data_sent));
  reg.add("transport.retransmits", static_cast<double>(retransmits));
  reg.add("transport.timeouts", static_cast<double>(timeouts));
  reg.add("transport.fast_retransmits", static_cast<double>(fast_rtx));
  reg.add("transport.flows_completed", static_cast<double>(completed));
  reg.add("transport.flows_started", static_cast<double>(tm.flow_count()));
  reg.add("transport.delivered_bytes",
          static_cast<double>(tm.total_delivered_bytes()));

  // --- hybrid fluid/packet engine --------------------------------------------
  // Registered only when the mode is on: runs without it keep the exact
  // historical metric set, so the committed expected/ artifacts stay
  // byte-identical.
  if (tm.fluid_config().enabled) {
    const transport::FluidStats& fs = tm.fluid().stats();
    reg.add("transport.fluid_flows_started", static_cast<double>(fs.started));
    reg.add("transport.fluid_flows_completed",
            static_cast<double>(fs.completed));
    reg.add("transport.fluid_epochs", static_cast<double>(fs.epochs));
    reg.add("transport.fluid_rerates", static_cast<double>(fs.rerates));
    reg.add("transport.mode_switches",
            static_cast<double>(tm.mode_switches()));
  }

  // --- churn / failure injection ---------------------------------------------
  // Same conditional-registration rule as the fluid block above: churn-off
  // runs keep the historical metric set byte-identical.
  if (cloud.config().churn.enabled) {
    const core::ChurnStats& ch = cloud.churn_stats();
    reg.add("churn.failovers", static_cast<double>(ch.failovers));
    reg.add("churn.aborted_flows", static_cast<double>(ch.aborted_flows));
    reg.add("churn.repair_flows_started",
            static_cast<double>(ch.repair_flows_started));
    reg.add("churn.repair_flows_completed",
            static_cast<double>(ch.repair_flows_completed));
    reg.add("churn.repair_bytes", static_cast<double>(ch.repair_bytes));
    reg.add("churn.repair_retries", static_cast<double>(ch.repair_retries));
    reg.add("churn.objects_lost", static_cast<double>(ch.objects_lost));
    reg.add("churn.sla_violations_during_repair",
            static_cast<double>(ch.sla_violations_during_repair));
    reg.set("churn.under_replicated_seconds",
            cloud.under_replicated_seconds());
    reg.set("churn.under_replicated_objects",
            static_cast<double>(cloud.under_replicated_objects()));
    reg.set("churn.repair_queue_depth",
            static_cast<double>(cloud.repair_queue_depth()));
    if (const core::ChurnInjector* inj = cloud.churn()) {
      const core::ChurnInjectorStats& is = inj->stats();
      reg.add("churn.events_scheduled", static_cast<double>(is.scheduled));
      reg.add("churn.server_failures", static_cast<double>(is.server_downs));
      reg.add("churn.server_recoveries", static_cast<double>(is.server_ups));
      reg.add("churn.link_failures", static_cast<double>(is.link_downs));
      reg.add("churn.link_recoveries", static_cast<double>(is.link_ups));
      if (cloud.nns_failover_enabled()) {
        reg.add("churn.nns_failures", static_cast<double>(is.nns_downs));
        reg.add("churn.nns_recoveries", static_cast<double>(is.nns_ups));
      }
    }
    // Metadata-plane fault tolerance: only present when NNS churn is
    // configured (the committed server/link churn artifacts predate these
    // ids and must stay byte-identical).
    if (cloud.nns_failover_enabled()) {
      const core::MetadataStats& ms = cloud.meta_stats();
      reg.add("metadata.requests_timed_out",
              static_cast<double>(ms.requests_timed_out));
      reg.add("metadata.retries", static_cast<double>(ms.retries));
      reg.add("metadata.failovers", static_cast<double>(ms.failovers));
      reg.add("metadata.unavailable", static_cast<double>(ms.unavailable));
      reg.add("metadata.requests_dropped",
              static_cast<double>(ms.requests_dropped));
      reg.add("metadata.mirror_updates",
              static_cast<double>(ms.mirror_updates));
      reg.add("metadata.resyncs_started",
              static_cast<double>(ms.resyncs_started));
      reg.add("metadata.resyncs_completed",
              static_cast<double>(ms.resyncs_completed));
      reg.add("metadata.resync_bytes", static_cast<double>(ms.resync_bytes));
    }
    reg.add("transport.flows_aborted",
            static_cast<double>(tm.aborted_flows()));
  }

  // --- proactive rebalancing -------------------------------------------------
  // Gated on its own knob (independent of churn), same artifact rule.
  if (cloud.rebalance_enabled()) {
    const core::RebalanceStats& rs = cloud.rebalance_stats();
    reg.add("rebalance.scans", static_cast<double>(rs.scans));
    reg.add("rebalance.flows_started",
            static_cast<double>(rs.flows_started));
    reg.add("rebalance.flows_completed",
            static_cast<double>(rs.flows_completed));
    reg.add("rebalance.bytes_moved", static_cast<double>(rs.bytes_moved));
    reg.add("rebalance.skipped", static_cast<double>(rs.skipped));
  }

  // --- control plane (RM/RA round cost) + SLA -------------------------------
  const core::RateAllocator::ControlStats& cs =
      cloud.allocator().control_stats();
  reg.add("core.control.ticks", static_cast<double>(cs.ticks));
  reg.add("core.control.flow_updates", static_cast<double>(cs.flow_updates));
  reg.add("core.control.link_updates", static_cast<double>(cs.link_updates));
  reg.add("core.sla.violations",
          static_cast<double>(cloud.allocator().sla_violations()));
  reg.add("core.sla.boosts",
          static_cast<double>(cloud.sla().boosts_applied()));

  // --- cloud-level snapshot --------------------------------------------------
  const core::CloudSnapshot snap = cloud.snapshot();
  reg.set("cloud.contents_stored", static_cast<double>(snap.contents_stored));
  reg.add("cloud.failed_reads", static_cast<double>(snap.failed_reads));
  reg.add("cloud.failed_writes", static_cast<double>(snap.failed_writes));
  reg.add("cloud.migrations", static_cast<double>(snap.migrations));
  reg.set("cloud.dormant_servers", static_cast<double>(snap.dormant_servers));
  reg.set("cloud.failed_servers", static_cast<double>(snap.failed_servers));
  reg.set("cloud.energy_j", snap.total_energy_j);
  reg.set("cloud.mean_nns_delay_s", snap.mean_nns_delay_s);
  reg.add("cloud.control_messages", static_cast<double>(snap.control_messages));
  reg.add("cloud.control_bytes", static_cast<double>(snap.control_bytes));

  // --- flight recorder self-accounting ---------------------------------------
  if (const obs::Observability* o = sim.observability()) {
    if (const obs::TraceRecorder* tr = o->tracer()) {
      reg.add("trace.events.recorded", static_cast<double>(tr->recorded()));
      reg.add("trace.events.dropped", static_cast<double>(tr->dropped()));
    }
  }
}

void emit_metrics(std::FILE* out, const obs::MetricsSnapshot& snap) {
  std::fprintf(out, "# metrics: ");
  snap.write_json(out);
  std::fprintf(out, "\n");
}

}  // namespace scda::stats
