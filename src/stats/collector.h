// FlowStatsCollector: per-flow completion records and the derived series
// the paper's figures plot — FCT CDFs (figs. 8/11/14/16/18), AFCT binned by
// file size (figs. 9/12/13/15) and summary statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cloud.h"
#include "transport/flow.h"
#include "util/histogram.h"

namespace scda::stats {

struct CompletionRecord {
  std::int64_t size_bytes = 0;
  double fct_s = 0;
  double start_time = 0;
  double finish_time = 0;
  core::CloudOp::Kind kind = core::CloudOp::Kind::kWrite;
  transport::ContentClass content_class =
      transport::ContentClass::kSemiInteractive;
  bool control = false;  ///< small control exchange (video workload)
};

struct CdfPoint {
  double x = 0;  ///< FCT in seconds
  double p = 0;  ///< cumulative fraction
};

struct AfctBin {
  double size_mid = 0;   ///< bin midpoint (bytes)
  double afct_s = 0;     ///< mean FCT of flows in the bin
  std::uint64_t count = 0;
};

struct Summary {
  std::uint64_t flows = 0;
  double mean_fct_s = 0;
  double median_fct_s = 0;
  double p95_fct_s = 0;
  double mean_size_bytes = 0;
  double goodput_bps = 0;  ///< total bytes / (last finish - first start)
};

class FlowStatsCollector {
 public:
  /// Subscribes to the cloud's completion stream. `include_replication`
  /// controls whether internal replication flows enter the figures (the
  /// paper plots client-visible transfers, so the default is off).
  explicit FlowStatsCollector(core::Cloud& cloud,
                              bool include_replication = false);

  /// Record a completion directly (for tests or custom pipelines).
  void record(const transport::FlowRecord& rec, const core::CloudOp& op);

  [[nodiscard]] const std::vector<CompletionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t count() const noexcept { return records_.size(); }

  /// Empirical FCT CDF over all recorded flows (sorted x, p ascending).
  [[nodiscard]] std::vector<CdfPoint> fct_cdf() const;

  /// AFCT vs size with fixed-width bins of `bin_bytes` (paper figs. 9/13).
  [[nodiscard]] std::vector<AfctBin> afct_by_size(double bin_bytes,
                                                  double max_bytes) const;

  [[nodiscard]] Summary summary() const;

  /// Summary over the subset matching a predicate (per-kind / per-class /
  /// control-vs-content breakdowns).
  [[nodiscard]] Summary summary_where(
      const std::function<bool(const CompletionRecord&)>& keep) const;
  [[nodiscard]] Summary summary_for(core::CloudOp::Kind kind) const {
    return summary_where(
        [kind](const CompletionRecord& r) { return r.kind == kind; });
  }
  [[nodiscard]] Summary summary_for(transport::ContentClass c) const {
    return summary_where(
        [c](const CompletionRecord& r) { return r.content_class == c; });
  }

 private:
  std::vector<CompletionRecord> records_;
  bool include_replication_;
};

}  // namespace scda::stats
