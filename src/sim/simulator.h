// Simulator: owns the clock, the event queue and the run loop.
//
// This is the NS2 substitute's kernel. Components hold a Simulator& and
// schedule callbacks; the run loop advances the clock monotonically.
#pragma once

#include <functional>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace scda::obs {
class Observability;
}  // namespace scda::obs

namespace scda::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x5cda2013ULL)
      : seed_(seed), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }
  /// The seed this simulator (and its RNG) was constructed with. Components
  /// that derive their own RNG streams (the failure schedule) mix it so one
  /// run seed determines every stream.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }
  /// Event-engine perf counters (events popped, cancels, heap high-water
  /// mark, callback allocation behaviour) — see docs/perf.md.
  [[nodiscard]] const EventQueueStats& perf() const noexcept {
    return queue_.perf();
  }

  /// Observability context (metrics registry + optional trace recorder),
  /// or nullptr when the run is uninstrumented. The simulator never
  /// dereferences it — components check and use it through
  /// obs/observability.h — so the run loop stays obs-free.
  [[nodiscard]] obs::Observability* observability() const noexcept {
    return obs_;
  }
  void set_observability(obs::Observability* o) noexcept { obs_ = o; }

  /// Schedule a callable `delay` seconds from now (delay >= 0). The
  /// callable is forwarded into the event pool without a temporary.
  /// The returned handle is the only way to cancel() the event — callers
  /// that mean fire-and-forget use post_in() instead.
  template <typename F>
  [[nodiscard]] EventHandle schedule_in(Time delay, F&& f) {
    if (delay < Time{}) {
      throw std::invalid_argument("schedule_in: negative delay");
    }
    return queue_.schedule(now_ + delay, std::forward<F>(f));
  }

  /// Schedule a callable at absolute time `t` (t >= now). See schedule_in
  /// for the handle contract.
  template <typename F>
  [[nodiscard]] EventHandle schedule_at(Time t, F&& f) {
    if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
    return queue_.schedule(t, std::forward<F>(f));
  }

  /// Fire-and-forget variants: schedule with no intent to cancel. Same
  /// semantics as schedule_in/schedule_at with the handle dropped, spelled
  /// so that an accidentally dropped *cancellable* handle is a compile
  /// error ([[nodiscard]] above).
  template <typename F>
  void post_in(Time delay, F&& f) {
    static_cast<void>(schedule_in(delay, std::forward<F>(f)));
  }
  template <typename F>
  void post_at(Time t, F&& f) {
    static_cast<void>(schedule_at(t, std::forward<F>(f)));
  }

  void cancel(EventHandle h) { queue_.cancel(h); }

  /// Cancel-and-rearm in one call: the moving-deadline idiom (fluid flow
  /// completions, RTO restarts). Cancelling a stale or invalid handle is a
  /// no-op, so callers can pass the previous handle unconditionally.
  template <typename F>
  [[nodiscard]] EventHandle reschedule_at(EventHandle h, Time t, F&& f) {
    queue_.cancel(h);
    return schedule_at(t, std::forward<F>(f));
  }

  /// Run until the queue drains or the clock passes `until`.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time until) {
    std::uint64_t executed = 0;
    EventQueue::Fired ev;
    while (!queue_.empty() && queue_.next_time() <= until) {
      if (!queue_.pop(ev)) break;
      now_ = ev.time;
      ev.cb();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

  /// Run until the queue fully drains. Returns the number of events executed.
  std::uint64_t run() {
    std::uint64_t executed = 0;
    EventQueue::Fired ev;
    while (queue_.pop(ev)) {
      now_ = ev.time;
      ev.cb();
      ++executed;
    }
    return executed;
  }

 private:
  Time now_{};
  EventQueue queue_;
  std::uint64_t seed_;
  Rng rng_;
  obs::Observability* obs_ = nullptr;
};

/// Re-arming periodic process: fires `tick` every `period` seconds starting
/// at `start`. Used for RM/RA control intervals and stats sampling.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, Time period, std::function<void()> tick)
      : sim_(sim), period_(period), tick_(std::move(tick)) {
    if (period <= Time{})
      throw std::invalid_argument("PeriodicProcess: period must be > 0");
  }

  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void start(Time first_delay = Time{}) {
    stop();
    running_ = true;
    handle_ = sim_.schedule_in(first_delay, [this] { fire(); });
  }

  void stop() {
    if (running_) {
      sim_.cancel(handle_);
      running_ = false;
    }
  }

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] Time period() const noexcept { return period_; }
  void set_period(Time p) {
    if (p <= Time{}) {
      throw std::invalid_argument("set_period: period must be > 0");
    }
    period_ = p;
  }

 private:
  void fire() {
    if (!running_) return;
    tick_();
    if (running_) handle_ = sim_.schedule_in(period_, [this] { fire(); });
  }

  Simulator& sim_;
  Time period_;
  std::function<void()> tick_;
  EventHandle handle_{};
  bool running_ = false;
};

}  // namespace scda::sim
