// Discrete-event queue: a binary heap of (time, sequence, callback).
//
// The sequence number guarantees deterministic FIFO ordering for events
// scheduled at identical timestamps, which keeps whole-simulation runs
// reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace scda::sim {

using Time = double;  ///< simulation time in seconds
using EventId = std::uint64_t;

/// Handle that allows cancelling a scheduled event.
struct EventHandle {
  EventId id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t`. Returns a cancellable handle.
  EventHandle schedule(Time t, Callback cb) {
    const EventId id = ++next_id_;
    heap_.push(Entry{t, id, std::move(cb)});
    return EventHandle{id};
  }

  /// Cancel a previously scheduled event. Cancelling an event that already
  /// fired is a no-op (the tombstone is garbage-collected lazily).
  void cancel(EventHandle h) {
    if (h.valid() && h.id <= next_id_) cancelled_.insert(h.id);
  }

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() {
    purge_cancelled_top();
    return heap_.empty();
  }

  [[nodiscard]] std::size_t scheduled() const noexcept { return heap_.size(); }

  struct Fired {
    Time time = 0;
    Callback cb;
  };

  /// Pop the next live event into `out`. Returns false when drained.
  [[nodiscard]] bool pop(Fired& out) {
    purge_cancelled_top();
    if (heap_.empty()) return false;
    // priority_queue::top() is const; moving the callback out is safe
    // because the entry is popped immediately afterwards.
    auto& top = const_cast<Entry&>(heap_.top());
    out.time = top.time;
    out.cb = std::move(top.cb);
    heap_.pop();
    return true;
  }

  /// Time of the next live event; only valid when !empty().
  [[nodiscard]] Time next_time() {
    purge_cancelled_top();
    return heap_.top().time;
  }

 private:
  struct Entry {
    Time time;
    EventId id;
    Callback cb;
    bool operator>(const Entry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return id > o.id;  // FIFO for equal timestamps
    }
  };

  void purge_cancelled_top() {
    while (!heap_.empty() && !cancelled_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 0;
};

}  // namespace scda::sim
