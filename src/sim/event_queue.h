// Discrete-event queue: an indexed binary min-heap over pool-allocated
// event slots.
//
// Ordering is (time, sequence); the sequence number guarantees
// deterministic FIFO ordering for events scheduled at identical
// timestamps, which keeps whole-simulation runs reproducible for a fixed
// seed. Heap entries carry their sort key inline, so sift comparisons
// stay within one contiguous array; the slot pool is only touched to
// move callbacks in and out and to maintain the position index that
// makes cancellation O(log n).
//
// Unlike the previous priority_queue + lazy-tombstone design, cancellation
// removes the event from the heap immediately: handles carry a
// (slot, generation) pair, so cancelling an event that already fired — the
// common RTO-after-ACK case — is an O(1) generation-mismatch no-op and
// leaves no residue. Slots are recycled through a free list, so steady
// schedule/fire churn performs no allocation once the pool has grown to
// the peak number of concurrently pending events.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/small_fn.h"
#include "sim/types.h"

namespace scda::sim {

using Time = SimTime;  ///< simulation time (strong wrapper over seconds)
using EventId = std::uint64_t;

/// Handle that allows cancelling a scheduled event. A default-constructed
/// handle is invalid; a handle to a fired or cancelled event is stale and
/// cancelling it is a harmless no-op (generation counters detect reuse).
struct EventHandle {
  static constexpr std::uint32_t kNullSlot = 0xFFFFFFFFu;
  std::uint32_t slot = kNullSlot;
  std::uint32_t gen = 0;
  [[nodiscard]] bool valid() const noexcept { return slot != kNullSlot; }
};

/// Lightweight perf counters maintained by the queue (see docs/perf.md).
struct EventQueueStats {
  std::uint64_t scheduled = 0;        ///< total schedule() calls
  std::uint64_t popped = 0;           ///< events fired
  std::uint64_t cancelled = 0;        ///< live events removed by cancel()
  std::uint64_t stale_cancels = 0;    ///< cancels of already-fired events
  std::uint64_t heap_hwm = 0;         ///< peak concurrently pending events
  std::uint64_t callbacks_inline = 0; ///< captures stored in-slot
  std::uint64_t callbacks_heap = 0;   ///< captures that spilled to the heap
};

class EventQueue {
 public:
  using Callback = SmallFn;

  /// Schedule `cb` at absolute time `t`. Returns a cancellable handle.
  [[nodiscard]] EventHandle schedule(Time t, Callback cb) {
    const std::uint32_t s = acquire_slot();
    cbs_[s] = std::move(cb);
    return finish_schedule(t, s);
  }

  /// Schedule a callable at absolute time `t`, constructing it directly in
  /// the event pool (no temporary SmallFn, no relocation).
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                 std::is_invocable_r_v<void, std::decay_t<F>&>,
                             int> = 0>
  [[nodiscard]] EventHandle schedule(Time t, F&& f) {
    const std::uint32_t s = acquire_slot();
    cbs_[s].emplace(std::forward<F>(f));
    return finish_schedule(t, s);
  }

  /// Fire-and-forget schedule: schedule() with the handle deliberately
  /// dropped (mirrors Simulator::post_in/post_at at the queue level).
  template <typename F>
  void post(Time t, F&& f) {
    static_cast<void>(schedule(t, std::forward<F>(f)));
  }

  /// Cancel a previously scheduled event in O(log n). Cancelling an event
  /// that already fired (or an invalid handle) is an O(1) no-op.
  void cancel(EventHandle h) {
    if (!h.valid() || h.slot >= meta_.size()) return;
    if (meta_[h.slot].gen != h.gen || pos_[h.slot] == kNull) {
      ++stats_.stale_cancels;
      return;
    }
    remove_at(pos_[h.slot]);
    release_slot(h.slot);
    ++stats_.cancelled;
  }

  /// True when no pending events remain. O(1): cancelled events are
  /// removed eagerly, so the heap never holds dead entries.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  [[nodiscard]] std::size_t scheduled() const noexcept { return heap_.size(); }

  struct Fired {
    Time time{};
    Callback cb;
  };

  /// Pop the next live event into `out`. Returns false when drained.
  [[nodiscard]] bool pop(Fired& out) {
    if (heap_.empty()) return false;
    const std::uint32_t s = heap_[0].slot;
    out.time = heap_[0].time;
    out.cb = std::move(cbs_[s]);
    remove_at(0);
    release_slot(s);
    ++stats_.popped;
    return true;
  }

  /// Time of the next live event; only valid when !empty().
  [[nodiscard]] Time next_time() const noexcept {
    assert(!heap_.empty());
    return heap_[0].time;
  }

  [[nodiscard]] const EventQueueStats& perf() const noexcept { return stats_; }

  /// Number of event slots ever allocated (the pool never shrinks; bounded
  /// by the peak number of concurrently pending events).
  [[nodiscard]] std::size_t pool_capacity() const noexcept {
    return meta_.size();
  }

 private:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;
  static constexpr std::size_t kArity = 2;

  EventHandle finish_schedule(Time t, std::uint32_t s) {
    if (cbs_[s].on_heap()) {
      ++stats_.callbacks_heap;
    } else {
      ++stats_.callbacks_inline;
    }
    const auto pos = static_cast<std::uint32_t>(heap_.size());
    pos_[s] = pos;
    heap_.push_back(Entry{t, ++next_seq_, s});
    sift_up(pos);
    ++stats_.scheduled;
    if (heap_.size() > stats_.heap_hwm) stats_.heap_hwm = heap_.size();
    return EventHandle{s, meta_[s].gen};
  }

  /// Heap entry: sort key inline (comparisons never leave the heap array).
  struct Entry {
    Time time;
    EventId seq;          ///< FIFO tie-break for equal timestamps
    std::uint32_t slot;
    [[nodiscard]] bool before(const Entry& o) const noexcept {
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  /// Slot metadata lives in parallel arrays (not alongside the 56-byte
  /// callback): sifts write the position index for every entry they move,
  /// and keeping those random stores inside a dense uint32 array is the
  /// difference between hitting L1 and dragging whole Slot cache lines in.
  struct SlotMeta {
    std::uint32_t gen = 0;      ///< bumped on release; stales old handles
    std::uint32_t next_free = kNull;
  };

  std::uint32_t acquire_slot() {
    if (free_head_ != kNull) {
      const std::uint32_t s = free_head_;
      free_head_ = meta_[s].next_free;
      meta_[s].next_free = kNull;
      return s;
    }
    meta_.emplace_back();
    pos_.push_back(kNull);
    cbs_.emplace_back();
    return static_cast<std::uint32_t>(meta_.size() - 1);
  }

  void release_slot(std::uint32_t s) noexcept {
    cbs_[s].reset();
    ++meta_[s].gen;
    pos_[s] = kNull;
    meta_[s].next_free = free_head_;
    free_head_ = s;
  }

  void place(std::size_t pos, const Entry& e) noexcept {
    heap_[pos] = e;
    pos_[e.slot] = static_cast<std::uint32_t>(pos);
  }

  /// Remove the heap entry at `pos`, restoring the heap invariant.
  ///
  /// Uses the hole strategy (as std::__adjust_heap does): sink the hole to
  /// a leaf promoting the smaller child — one comparison per level instead
  /// of two — then sift the displaced tail entry up from the leaf. The tail
  /// entry almost always belongs near the bottom, so the up-pass usually
  /// terminates on its first comparison.
  void remove_at(std::size_t pos) {
    const Entry moved = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (pos == n) return;  // removed the tail entry
    if (pos > 0 && moved.before(heap_[(pos - 1) / kArity])) {
      sift_up_from(pos, moved);
      return;
    }
    for (;;) {
      const std::size_t first = pos * kArity + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      const std::size_t next = best * kArity + 1;
      if (next < n) __builtin_prefetch(&heap_[next]);
      place(pos, heap_[best]);
      pos = best;
    }
    sift_up_from(pos, moved);
  }

  void sift_up(std::size_t pos) { sift_up_from(pos, heap_[pos]); }

  /// Sift `e` up starting from the hole at `pos` (heap_[pos] is not read).
  /// `e` is taken by value: callers may pass heap_[pos] itself, which the
  /// loop's place() calls would otherwise clobber through the reference.
  void sift_up_from(std::size_t pos, const Entry e) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!e.before(heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, e);
  }

  std::vector<SlotMeta> meta_;     ///< per-slot generation + free list
  std::vector<std::uint32_t> pos_; ///< slot -> heap position (kNull = free)
  std::vector<Callback> cbs_;      ///< pooled callback storage
  std::vector<Entry> heap_;        ///< indexed min-heap, keys inline
  std::uint32_t free_head_ = kNull;
  EventId next_seq_ = 0;
  EventQueueStats stats_;
};

}  // namespace scda::sim
