// Deterministic random number generation for the simulator.
//
// All randomness in a run flows through one seeded engine so experiments are
// reproducible. Distribution helpers cover the laws the SCDA evaluation
// needs: uniform, exponential (Poisson arrivals), Pareto, bounded Pareto,
// lognormal, and discrete empirical sampling.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace scda::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5cda2013ULL) : eng_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(eng_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// Exponential with given mean (= 1/lambda). Inter-arrival times of a
  /// Poisson process with rate lambda are exponential(mean = 1/lambda).
  double exponential(double mean) {
    if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean <= 0");
    return std::exponential_distribution<double>(1.0 / mean)(eng_);
  }

  /// Pareto with scale xm > 0 and shape a > 0:  P(X > x) = (xm/x)^a.
  double pareto(double xm, double shape) {
    if (xm <= 0 || shape <= 0)
      throw std::invalid_argument("Rng::pareto: xm and shape must be > 0");
    double u;
    // scda-lint: allow(float-eq) rejecting exactly-zero u (would div by 0)
    do { u = uniform(); } while (u == 0.0);
    return xm / std::pow(u, 1.0 / shape);
  }

  /// Pareto parametrized by its mean (requires shape > 1).
  /// mean = xm * shape / (shape - 1)  =>  xm = mean * (shape - 1) / shape.
  double pareto_mean(double mean, double shape) {
    if (shape <= 1)
      throw std::invalid_argument("Rng::pareto_mean: shape must be > 1");
    return pareto(mean * (shape - 1.0) / shape, shape);
  }

  /// Pareto truncated to [xm, cap] via rejection-free inverse transform.
  double bounded_pareto(double xm, double shape, double cap) {
    if (!(cap > xm))
      throw std::invalid_argument("Rng::bounded_pareto: cap must be > xm");
    const double ha = std::pow(xm / cap, shape);
    double u;
    // scda-lint: allow(float-eq) rejecting exactly-zero u (log/pow domain)
    do { u = uniform(); } while (u == 0.0);
    return xm / std::pow(1.0 - u * (1.0 - ha), 1.0 / shape);
  }

  /// Lognormal with the given *underlying normal* mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(eng_);
  }

  /// Lognormal parametrized by its own mean and coefficient of variation.
  double lognormal_mean_cv(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return lognormal(mu, std::sqrt(sigma2));
  }

  /// Sample an index from unnormalized weights.
  std::size_t discrete(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(eng_);
  }

  /// Bernoulli with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  std::mt19937_64& engine() noexcept { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace scda::sim
