// FailureSchedule: deterministic, seed-derived churn event plan.
//
// SPECI-2 (PAPERS.md) argues cloud-scale simulation must treat failure as
// the *normal* operating mode. This header turns that into a concrete,
// replayable artifact: given a churn configuration, an entity census and
// the run seed, build_failure_schedule() produces the complete list of
// server/link down+up transitions for the whole horizon — before the
// simulation starts. Injection is then trivial (post each event at its
// time) and the schedule itself is a pure function of (config, shape,
// seed), so identical seeds yield byte-identical runs at any worker count.
//
// Stochastic churn is an alternating renewal process per entity: up
// durations ~ Exp(MTBF), down durations ~ Exp(MTTR). Each entity draws
// from its own splitmix64-derived RNG stream, so adding servers or
// enabling link churn never perturbs another entity's timeline.
// Scripted entries ("kill pod 3 at t=30s") overlay the stochastic plan;
// overlapping outages are resolved by the injector's per-entity down
// counts (core/churn.h), not here — the schedule just lists transitions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace scda::sim {

enum class FailureKind : std::uint8_t {
  kServerDown,
  kServerUp,
  kLinkDown,
  kLinkUp,
  kNnsDown,
  kNnsUp,
};

[[nodiscard]] constexpr const char* to_string(FailureKind k) noexcept {
  switch (k) {
    case FailureKind::kServerDown: return "server_down";
    case FailureKind::kServerUp: return "server_up";
    case FailureKind::kLinkDown: return "link_down";
    case FailureKind::kLinkUp: return "link_up";
    case FailureKind::kNnsDown: return "nns_down";
    case FailureKind::kNnsUp: return "nns_up";
  }
  return "?";
}

/// One scheduled transition. `index` is a server index for the server
/// kinds, a trunk (ToR) index for the link kinds, and an NNS *instance*
/// index for the name-node kinds (shard primaries first, then their
/// standbys: instance i < n_shards is shard i's primary, instance
/// n_shards + i is shard i's standby).
struct FailureEvent {
  SimTime at{};
  FailureKind kind = FailureKind::kServerDown;
  std::int32_t index = 0;
};

/// Operator-scripted failure: "kill pod 3 at t=30s for 20s". A pod entry
/// expands to one event pair per server in the pod. duration_s <= 0 means
/// the outage lasts to the end of the run (no up event is emitted).
struct ScriptedFailure {
  enum class Target : std::uint8_t { kServer, kLink, kPod, kNns };
  double at_s = 0.0;
  Target target = Target::kServer;
  std::int32_t index = 0;
  double duration_s = 0.0;
};

[[nodiscard]] constexpr const char* to_string(
    ScriptedFailure::Target t) noexcept {
  switch (t) {
    case ScriptedFailure::Target::kServer: return "server";
    case ScriptedFailure::Target::kLink: return "link";
    case ScriptedFailure::Target::kPod: return "pod";
    case ScriptedFailure::Target::kNns: return "nns";
  }
  return "?";
}

/// Churn knobs (docs/scenarios.md). An MTBF of 0 disables the stochastic
/// process for that entity class; scripted entries always apply.
struct ChurnConfig {
  bool enabled = false;
  double server_mtbf_s = 0.0;  ///< mean up-time between server failures
  double server_mttr_s = 10.0; ///< mean server repair (down) time
  double link_mtbf_s = 0.0;    ///< mean up-time between trunk failures
  double link_mttr_s = 5.0;    ///< mean trunk repair time
  double nns_mtbf_s = 0.0;     ///< mean up-time between name-node failures
  double nns_mttr_s = 5.0;     ///< mean name-node repair time
  /// Stochastic processes are generated over [0, horizon_s); the runner
  /// sets this to the run's sim_time_s. <= 0 disables stochastic churn
  /// (scripted entries still apply).
  double horizon_s = 0.0;
  std::vector<ScriptedFailure> scripted;
};

/// Name-node churn is configured when the stochastic NNS stream is on or
/// any scripted entry targets an NNS instance. This is the gate for the
/// whole metadata fault-tolerance layer (standby mirroring, failover,
/// timeout/retry): runs without it keep the exact historical event
/// sequence, so committed churn artifacts stay byte-identical.
[[nodiscard]] inline bool nns_churn_configured(const ChurnConfig& cfg) {
  if (!cfg.enabled) return false;
  if (cfg.nns_mtbf_s > 0.0) return true;
  for (const ScriptedFailure& f : cfg.scripted)
    if (f.target == ScriptedFailure::Target::kNns) return true;
  return false;
}

/// Entity census the schedule is built over: how many servers, how many
/// ToR trunks (a "link failure" cuts one ToR's duplex uplink pair), the
/// pod size used to expand kPod scripted entries, and how many name-node
/// *instances* exist (primaries + standbys) for the NNS streams.
struct ChurnShape {
  std::int32_t n_servers = 0;
  std::int32_t n_links = 0;        ///< ToR trunk count
  std::int32_t servers_per_pod = 0;
  std::int32_t n_nns = 0;          ///< NNS instances (primaries + standbys)
};

/// splitmix64 — the repo's standard seed-mixing hash (same constants as
/// the workload dispatch hash); good avalanche, so per-entity streams
/// derived from (seed, tag, index) are effectively independent.
[[nodiscard]] constexpr std::uint64_t churn_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace detail {

/// Append one entity's alternating up/down renewal process over [0, horizon).
inline void append_renewal(std::vector<FailureEvent>& out, std::uint64_t seed,
                           std::uint64_t tag, std::int32_t index,
                           double mtbf_s, double mttr_s, double horizon_s,
                           FailureKind down, FailureKind up) {
  if (mtbf_s <= 0.0 || horizon_s <= 0.0) return;
  const std::uint64_t key =
      (tag << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(index));
  Rng rng(churn_mix(seed ^ churn_mix(key)));
  double t = rng.exponential(mtbf_s);
  while (t < horizon_s) {
    out.push_back({secs(t), down, index});
    t += mttr_s > 0.0 ? rng.exponential(mttr_s) : 0.0;
    if (t >= horizon_s) break;
    out.push_back({secs(t), up, index});
    t += rng.exponential(mtbf_s);
  }
}

}  // namespace detail

/// Build the full, sorted failure schedule for one run. Pure function of
/// its arguments; cfg.horizon_s <= 0 disables the stochastic processes but
/// still expands scripted entries.
[[nodiscard]] inline std::vector<FailureEvent> build_failure_schedule(
    const ChurnConfig& cfg, const ChurnShape& shape, std::uint64_t seed) {
  std::vector<FailureEvent> out;
  if (!cfg.enabled) return out;

  for (std::int32_t s = 0; s < shape.n_servers; ++s)
    detail::append_renewal(out, seed, /*tag=*/1, s, cfg.server_mtbf_s,
                           cfg.server_mttr_s, cfg.horizon_s,
                           FailureKind::kServerDown, FailureKind::kServerUp);
  for (std::int32_t l = 0; l < shape.n_links; ++l)
    detail::append_renewal(out, seed, /*tag=*/2, l, cfg.link_mtbf_s,
                           cfg.link_mttr_s, cfg.horizon_s,
                           FailureKind::kLinkDown, FailureKind::kLinkUp);
  for (std::int32_t m = 0; m < shape.n_nns; ++m)
    detail::append_renewal(out, seed, /*tag=*/3, m, cfg.nns_mtbf_s,
                           cfg.nns_mttr_s, cfg.horizon_s,
                           FailureKind::kNnsDown, FailureKind::kNnsUp);

  const auto push_pair = [&out](double at_s, double duration_s,
                                FailureKind down, FailureKind up,
                                std::int32_t index) {
    if (at_s < 0.0) return;
    out.push_back({secs(at_s), down, index});
    if (duration_s > 0.0) out.push_back({secs(at_s + duration_s), up, index});
  };
  for (const ScriptedFailure& f : cfg.scripted) {
    switch (f.target) {
      case ScriptedFailure::Target::kServer:
        if (f.index >= 0 && f.index < shape.n_servers)
          push_pair(f.at_s, f.duration_s, FailureKind::kServerDown,
                    FailureKind::kServerUp, f.index);
        break;
      case ScriptedFailure::Target::kLink:
        if (f.index >= 0 && f.index < shape.n_links)
          push_pair(f.at_s, f.duration_s, FailureKind::kLinkDown,
                    FailureKind::kLinkUp, f.index);
        break;
      case ScriptedFailure::Target::kPod: {
        // A pod is one aggregation subtree's worth of servers.
        const std::int32_t per = shape.servers_per_pod;
        if (per <= 0) break;
        const std::int32_t first = f.index * per;
        for (std::int32_t s = first; s < first + per; ++s)
          if (s >= 0 && s < shape.n_servers)
            push_pair(f.at_s, f.duration_s, FailureKind::kServerDown,
                      FailureKind::kServerUp, s);
        break;
      }
      case ScriptedFailure::Target::kNns:
        if (f.index >= 0 && f.index < shape.n_nns)
          push_pair(f.at_s, f.duration_s, FailureKind::kNnsDown,
                    FailureKind::kNnsUp, f.index);
        break;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.index < b.index;
            });
  return out;
}

namespace detail {

/// Strict non-negative number parse for kill specs: the whole token must
/// be consumed, so "3x" or "" fail loudly instead of silently truncating.
[[nodiscard]] inline double parse_kill_number(const std::string& token,
                                              const std::string& spec,
                                              const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("--kill: ") + what +
                                " is not a number in '" + spec + "'");
  }
  if (pos != token.size())
    throw std::invalid_argument(std::string("--kill: trailing junk after ") +
                                what + " in '" + spec + "'");
  if (v < 0.0)
    throw std::invalid_argument(std::string("--kill: ") + what +
                                " must be >= 0 in '" + spec + "'");
  return v;
}

}  // namespace detail

/// Parse "server:3@30+5,pod:0@30+20,nns:1@10" into scripted failures.
/// The duration suffix is optional; without it the outage is permanent.
/// Malformed specs (unknown target, non-numeric index/time, trailing
/// junk, negative values) throw std::invalid_argument with the offending
/// spec named — never an out-of-range index deep inside the run.
[[nodiscard]] inline std::vector<ScriptedFailure> parse_kill_specs(
    const std::string& specs) {
  std::vector<ScriptedFailure> out;
  std::size_t pos = 0;
  while (pos < specs.size()) {
    std::size_t end = specs.find(',', pos);
    if (end == std::string::npos) end = specs.size();
    const std::string spec = specs.substr(pos, end - pos);
    pos = end + 1;
    if (spec.empty()) continue;

    const std::size_t colon = spec.find(':');
    const std::size_t at = spec.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon)
      throw std::invalid_argument(
          "--kill: expected TARGET:IDX@AT[+DUR], got '" + spec + "'");
    ScriptedFailure f;
    const std::string target = spec.substr(0, colon);
    if (target == "server") {
      f.target = ScriptedFailure::Target::kServer;
    } else if (target == "link") {
      f.target = ScriptedFailure::Target::kLink;
    } else if (target == "pod") {
      f.target = ScriptedFailure::Target::kPod;
    } else if (target == "nns") {
      f.target = ScriptedFailure::Target::kNns;
    } else {
      throw std::invalid_argument(
          "--kill: unknown target '" + target +
          "' (expected server|link|pod|nns) in '" + spec + "'");
    }
    const double idx = detail::parse_kill_number(
        spec.substr(colon + 1, at - colon - 1), spec, "index");
    if (idx != static_cast<double>(static_cast<std::int32_t>(idx)))
      throw std::invalid_argument("--kill: index must be an integer in '" +
                                  spec + "'");
    f.index = static_cast<std::int32_t>(idx);
    const std::string when = spec.substr(at + 1);
    const std::size_t plus = when.find('+');
    f.at_s = detail::parse_kill_number(when.substr(0, plus), spec, "time");
    if (plus != std::string::npos)
      f.duration_s =
          detail::parse_kill_number(when.substr(plus + 1), spec, "duration");
    out.push_back(f);
  }
  return out;
}

/// Range-check scripted entries against the run's entity census, so an
/// out-of-range index is a clear CLI error instead of a silently dropped
/// schedule row. Throws std::invalid_argument naming the bad entry.
inline void validate_scripted(const std::vector<ScriptedFailure>& scripted,
                              const ChurnShape& shape) {
  const auto fail = [](const ScriptedFailure& f, std::int32_t limit) {
    throw std::invalid_argument(
        "--kill: " + std::string(to_string(f.target)) + " index " +
        std::to_string(f.index) + " out of range (have " +
        std::to_string(limit) + ")");
  };
  for (const ScriptedFailure& f : scripted) {
    switch (f.target) {
      case ScriptedFailure::Target::kServer:
        if (f.index >= shape.n_servers) fail(f, shape.n_servers);
        break;
      case ScriptedFailure::Target::kLink:
        if (f.index >= shape.n_links) fail(f, shape.n_links);
        break;
      case ScriptedFailure::Target::kPod: {
        const std::int32_t pods =
            shape.servers_per_pod > 0
                ? (shape.n_servers + shape.servers_per_pod - 1) /
                      shape.servers_per_pod
                : 0;
        if (f.index >= pods) fail(f, pods);
        break;
      }
      case ScriptedFailure::Target::kNns:
        if (f.index >= shape.n_nns) fail(f, shape.n_nns);
        break;
    }
  }
}

}  // namespace scda::sim
