// FailureSchedule: deterministic, seed-derived churn event plan.
//
// SPECI-2 (PAPERS.md) argues cloud-scale simulation must treat failure as
// the *normal* operating mode. This header turns that into a concrete,
// replayable artifact: given a churn configuration, an entity census and
// the run seed, build_failure_schedule() produces the complete list of
// server/link down+up transitions for the whole horizon — before the
// simulation starts. Injection is then trivial (post each event at its
// time) and the schedule itself is a pure function of (config, shape,
// seed), so identical seeds yield byte-identical runs at any worker count.
//
// Stochastic churn is an alternating renewal process per entity: up
// durations ~ Exp(MTBF), down durations ~ Exp(MTTR). Each entity draws
// from its own splitmix64-derived RNG stream, so adding servers or
// enabling link churn never perturbs another entity's timeline.
// Scripted entries ("kill pod 3 at t=30s") overlay the stochastic plan;
// overlapping outages are resolved by the injector's per-entity down
// counts (core/churn.h), not here — the schedule just lists transitions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace scda::sim {

enum class FailureKind : std::uint8_t {
  kServerDown,
  kServerUp,
  kLinkDown,
  kLinkUp,
};

[[nodiscard]] constexpr const char* to_string(FailureKind k) noexcept {
  switch (k) {
    case FailureKind::kServerDown: return "server_down";
    case FailureKind::kServerUp: return "server_up";
    case FailureKind::kLinkDown: return "link_down";
    case FailureKind::kLinkUp: return "link_up";
  }
  return "?";
}

/// One scheduled transition. `index` is a server index for the server
/// kinds and a trunk (ToR) index for the link kinds.
struct FailureEvent {
  SimTime at{};
  FailureKind kind = FailureKind::kServerDown;
  std::int32_t index = 0;
};

/// Operator-scripted failure: "kill pod 3 at t=30s for 20s". A pod entry
/// expands to one event pair per server in the pod. duration_s <= 0 means
/// the outage lasts to the end of the run (no up event is emitted).
struct ScriptedFailure {
  enum class Target : std::uint8_t { kServer, kLink, kPod };
  double at_s = 0.0;
  Target target = Target::kServer;
  std::int32_t index = 0;
  double duration_s = 0.0;
};

/// Churn knobs (docs/scenarios.md). An MTBF of 0 disables the stochastic
/// process for that entity class; scripted entries always apply.
struct ChurnConfig {
  bool enabled = false;
  double server_mtbf_s = 0.0;  ///< mean up-time between server failures
  double server_mttr_s = 10.0; ///< mean server repair (down) time
  double link_mtbf_s = 0.0;    ///< mean up-time between trunk failures
  double link_mttr_s = 5.0;    ///< mean trunk repair time
  /// Stochastic processes are generated over [0, horizon_s); the runner
  /// sets this to the run's sim_time_s. <= 0 disables stochastic churn
  /// (scripted entries still apply).
  double horizon_s = 0.0;
  std::vector<ScriptedFailure> scripted;
};

/// Entity census the schedule is built over: how many servers, how many
/// ToR trunks (a "link failure" cuts one ToR's duplex uplink pair), and
/// the pod size used to expand kPod scripted entries.
struct ChurnShape {
  std::int32_t n_servers = 0;
  std::int32_t n_links = 0;        ///< ToR trunk count
  std::int32_t servers_per_pod = 0;
};

/// splitmix64 — the repo's standard seed-mixing hash (same constants as
/// the workload dispatch hash); good avalanche, so per-entity streams
/// derived from (seed, tag, index) are effectively independent.
[[nodiscard]] constexpr std::uint64_t churn_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace detail {

/// Append one entity's alternating up/down renewal process over [0, horizon).
inline void append_renewal(std::vector<FailureEvent>& out, std::uint64_t seed,
                           std::uint64_t tag, std::int32_t index,
                           double mtbf_s, double mttr_s, double horizon_s,
                           FailureKind down, FailureKind up) {
  if (mtbf_s <= 0.0 || horizon_s <= 0.0) return;
  const std::uint64_t key =
      (tag << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(index));
  Rng rng(churn_mix(seed ^ churn_mix(key)));
  double t = rng.exponential(mtbf_s);
  while (t < horizon_s) {
    out.push_back({secs(t), down, index});
    t += mttr_s > 0.0 ? rng.exponential(mttr_s) : 0.0;
    if (t >= horizon_s) break;
    out.push_back({secs(t), up, index});
    t += rng.exponential(mtbf_s);
  }
}

}  // namespace detail

/// Build the full, sorted failure schedule for one run. Pure function of
/// its arguments; cfg.horizon_s <= 0 disables the stochastic processes but
/// still expands scripted entries.
[[nodiscard]] inline std::vector<FailureEvent> build_failure_schedule(
    const ChurnConfig& cfg, const ChurnShape& shape, std::uint64_t seed) {
  std::vector<FailureEvent> out;
  if (!cfg.enabled) return out;

  for (std::int32_t s = 0; s < shape.n_servers; ++s)
    detail::append_renewal(out, seed, /*tag=*/1, s, cfg.server_mtbf_s,
                           cfg.server_mttr_s, cfg.horizon_s,
                           FailureKind::kServerDown, FailureKind::kServerUp);
  for (std::int32_t l = 0; l < shape.n_links; ++l)
    detail::append_renewal(out, seed, /*tag=*/2, l, cfg.link_mtbf_s,
                           cfg.link_mttr_s, cfg.horizon_s,
                           FailureKind::kLinkDown, FailureKind::kLinkUp);

  const auto push_pair = [&out](double at_s, double duration_s,
                                FailureKind down, FailureKind up,
                                std::int32_t index) {
    if (at_s < 0.0) return;
    out.push_back({secs(at_s), down, index});
    if (duration_s > 0.0) out.push_back({secs(at_s + duration_s), up, index});
  };
  for (const ScriptedFailure& f : cfg.scripted) {
    switch (f.target) {
      case ScriptedFailure::Target::kServer:
        if (f.index >= 0 && f.index < shape.n_servers)
          push_pair(f.at_s, f.duration_s, FailureKind::kServerDown,
                    FailureKind::kServerUp, f.index);
        break;
      case ScriptedFailure::Target::kLink:
        if (f.index >= 0 && f.index < shape.n_links)
          push_pair(f.at_s, f.duration_s, FailureKind::kLinkDown,
                    FailureKind::kLinkUp, f.index);
        break;
      case ScriptedFailure::Target::kPod: {
        // A pod is one aggregation subtree's worth of servers.
        const std::int32_t per = shape.servers_per_pod;
        if (per <= 0) break;
        const std::int32_t first = f.index * per;
        for (std::int32_t s = first; s < first + per; ++s)
          if (s >= 0 && s < shape.n_servers)
            push_pair(f.at_s, f.duration_s, FailureKind::kServerDown,
                      FailureKind::kServerUp, s);
        break;
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.index < b.index;
            });
  return out;
}

}  // namespace scda::sim
