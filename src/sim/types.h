// Strong value types for the simulation kernel.
//
// The evaluation in the paper is only reproducible because the simulator
// is deterministic; a swapped NodeId/LinkId argument or a time passed
// where a rate was expected compiles silently with raw ints/doubles and
// only shows up as a wrong figure. These wrappers make that class of bug
// a compile error while generating the exact same machine code:
//
//   - StrongId<Tag, Rep>: a typed integer id. No implicit conversion to
//     or from the representation; ids with different tags do not mix.
//     Container indexing goes through index()/from_index so the (checked)
//     signed->size_t cast lives in exactly one place.
//   - SimTime: simulation time as a signed 64-bit integer count of
//     nanoseconds. Point/duration sums, differences and comparisons are
//     exact integer arithmetic, so equal-by-construction deadlines stay
//     equal no matter how they were accumulated — the class of
//     few-ulps-below-now drift that float time suffered is structurally
//     impossible. Construction from fractional seconds goes through
//     secs() / SimTime::from_seconds() (rounds to the nearest
//     nanosecond, ties away from zero); seconds() unwraps to double only
//     at the boundaries where time feeds rate math or %.9g JSON
//     emission.
//
// Both are structural wrappers over their representation: passing or
// returning them by value is byte-identical to passing the raw Rep, so
// the conversion is observably zero-cost (locked by bench budgets).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace scda::sim {

/// Typed integer identifier. `Tag` is any (possibly incomplete) type used
/// only to make distinct id spaces distinct types; `Rep` is the storage
/// representation. Value-initialises to Rep{} (matching the raw-int
/// behaviour this type replaced); invalid sentinels are Rep{-1} and are
/// defined next to each alias (e.g. net::kInvalidNode).
template <typename Tag, typename Rep = std::int32_t>
class StrongId {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>,
                "StrongId requires a signed integral representation");

 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep v) noexcept : v_(v) {}

  /// Underlying value (for arithmetic/printing at the representation
  /// boundary; prefer index() when subscripting containers).
  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }

  /// True for non-negative ids (all invalid sentinels are -1).
  [[nodiscard]] constexpr bool valid() const noexcept { return v_ >= Rep{0}; }

  /// Container subscript for this id. Asserts the id is valid.
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    assert(v_ >= Rep{0});
    return static_cast<std::size_t>(v_);
  }

  /// Build an id from a container index (the only sanctioned
  /// size_t -> id narrowing site).
  [[nodiscard]] static constexpr StrongId from_index(std::size_t i) noexcept {
    return StrongId{static_cast<Rep>(i)};
  }

  /// Sequential id generation (allocator counters).
  constexpr StrongId& operator++() noexcept {
    ++v_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    const StrongId old = *this;
    ++v_;
    return old;
  }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) noexcept {
    return a.v_ >= b.v_;
  }

 private:
  Rep v_ = Rep{};
};

/// Simulation time as an exact signed 64-bit nanosecond count. Named
/// factories (from_nanos / from_seconds) keep raw doubles (rates, sizes,
/// ratios) from silently becoming times and make every fractional-second
/// rounding site explicit; arithmetic is closed over the operations that
/// are meaningful for a time axis and is exact except where a double
/// scalar enters (* and / round to the nearest nanosecond).
///
/// Range: +-2^63 ns is roughly +-292 years of simulated time — far beyond
/// any run this simulator performs — and integer +/- within that range
/// never loses precision, unlike the double-of-seconds representation
/// this replaced (docs/perf.md, "delivery clamp" history).
class SimTime {
 public:
  using rep_type = std::int64_t;
  static constexpr rep_type kNanosPerSecond = 1'000'000'000;

  constexpr SimTime() noexcept = default;

  /// Exact construction from a nanosecond count.
  [[nodiscard]] static constexpr SimTime from_nanos(rep_type ns) noexcept {
    return SimTime{ns};
  }
  /// Construction from fractional seconds: rounds to the nearest
  /// nanosecond, ties away from zero. The only double -> time entry point.
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{round_to_ns(s * static_cast<double>(kNanosPerSecond))};
  }

  /// Underlying exact nanosecond count.
  [[nodiscard]] constexpr rep_type nanos() const noexcept { return ns_; }

  /// Unwrap to seconds (rate math, %.9g JSON emission). Exact for counts
  /// up to 2^53 ns (~104 simulated days); beyond that the double is the
  /// nearest representable value, deterministically.
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{}; }

  // --- typed arithmetic --------------------------------------------------
  // point + duration and duration + duration share one type; sums and
  // differences are exact integer arithmetic.
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a) noexcept {
    return SimTime{-a.ns_};
  }
  /// Scaling by a double rounds to the nearest nanosecond (ties away from
  /// zero) — scaling leaves the exact-integer domain and re-enters it.
  friend constexpr SimTime operator*(SimTime a, double k) noexcept {
    return SimTime{round_to_ns(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr SimTime operator*(double k, SimTime a) noexcept {
    return a * k;
  }
  friend constexpr SimTime operator/(SimTime a, double k) noexcept {
    return SimTime{round_to_ns(static_cast<double>(a.ns_) / k)};
  }
  /// Ratio of two times is a dimensionless scalar.
  friend constexpr double operator/(SimTime a, SimTime b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) noexcept {
    ns_ -= o.ns_;
    return *this;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) noexcept {
    return a.ns_ == b.ns_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(SimTime a, SimTime b) noexcept {
    return a.ns_ < b.ns_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) noexcept {
    return a.ns_ <= b.ns_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) noexcept {
    return a.ns_ > b.ns_;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) noexcept {
    return a.ns_ >= b.ns_;
  }

 private:
  constexpr explicit SimTime(rep_type ns) noexcept : ns_(ns) {}

  /// Round-to-nearest, ties away from zero (constexpr; llround is not).
  [[nodiscard]] static constexpr rep_type round_to_ns(double x) noexcept {
    return x >= 0.0 ? static_cast<rep_type>(x + 0.5)
                    : -static_cast<rep_type>(-x + 0.5);
  }

  rep_type ns_ = 0;
};

/// Self-documenting converter for literal times: secs(0.05). Rounds to
/// the nearest nanosecond like SimTime::from_seconds.
[[nodiscard]] constexpr SimTime secs(double s) noexcept {
  return SimTime::from_seconds(s);
}

/// Exact nanosecond literal: nanos(50) is 50 ns, no rounding involved.
[[nodiscard]] constexpr SimTime nanos(std::int64_t ns) noexcept {
  return SimTime::from_nanos(ns);
}

// --- dimensioned quantities --------------------------------------------------
// The last class of unit bug StrongId/SimTime left open: every rate and
// byte count was a raw double/int64, so bps-vs-Bps and bytes-vs-bits
// mixups compiled silently. Quantity<Unit, Rep> closes it the same way
// SimTime closed time: an explicit-construction structural wrapper whose
// arithmetic is closed over one dimension, with the cross-dimension
// algebra the hot paths actually use defined explicitly below. Unwrapping
// to the raw representation happens through one named member per unit
// (bps() / bytes() / bits(), mirroring SimTime::seconds()) and is reserved
// for the documented boundaries: %.9g JSON / stats emission and numeric
// kernels whose expression shape must stay bit-identical (the fluid
// engine's fractional-byte integration, rate_metric.h internals). See
// docs/static_analysis.md, "Dimensioned quantities".

namespace unit {
struct BitsPerSecond;  ///< rate dimension (double rep: allocator math)
struct Bytes;          ///< exact byte counts (int64 rep)
struct Bits;           ///< exact bit counts (int64 rep)
}  // namespace unit

/// Dimension-checked arithmetic wrapper. Same-unit quantities add,
/// subtract, scale by a dimensionless Rep scalar and compare; the ratio of
/// two same-unit quantities is a dimensionless double. Nothing converts
/// implicitly in or out, so a BitRate cannot be passed where a ByteCount
/// (or a raw double) is expected. Structural wrapper: passing a Quantity
/// by value is byte-identical to passing the raw Rep, and every closed
/// operator performs exactly the one Rep operation it replaces — the
/// tree-wide conversion is observably zero-cost and bit-identical.
template <typename Unit, typename Rep>
class Quantity {
  static_assert(std::is_arithmetic_v<Rep> && !std::is_same_v<Rep, bool>,
                "Quantity requires an arithmetic representation");

 public:
  using unit_type = Unit;
  using rep_type = Rep;

  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(Rep v) noexcept : v_(v) {}

  /// Raw representation (generic contexts; prefer the unit-named unwraps
  /// below so grep finds every boundary crossing).
  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }

  [[nodiscard]] static constexpr Quantity zero() noexcept {
    return Quantity{};
  }

  // --- unit-named unwraps (the documented raw-Rep boundaries) --------------
  /// Bits per second of a rate (JSON emission, fractional-byte kernels).
  [[nodiscard]] constexpr Rep bps() const noexcept
    requires std::is_same_v<Unit, unit::BitsPerSecond>
  {
    return v_;
  }
  /// Exact byte count (JSON emission, container sizing).
  [[nodiscard]] constexpr Rep bytes() const noexcept
    requires std::is_same_v<Unit, unit::Bytes>
  {
    return v_;
  }
  /// Exact bit count.
  [[nodiscard]] constexpr Rep bits() const noexcept
    requires std::is_same_v<Unit, unit::Bits>
  {
    return v_;
  }
  /// Bytes -> bits, exact (the only sanctioned x8 site).
  [[nodiscard]] constexpr Quantity<unit::Bits, Rep> bits() const noexcept
    requires std::is_same_v<Unit, unit::Bytes>
  {
    return Quantity<unit::Bits, Rep>{static_cast<Rep>(v_ * 8)};
  }

  // --- closed arithmetic ---------------------------------------------------
  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{static_cast<Rep>(a.v_ + b.v_)};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{static_cast<Rep>(a.v_ - b.v_)};
  }
  friend constexpr Quantity operator-(Quantity a) noexcept {
    return Quantity{static_cast<Rep>(-a.v_)};
  }
  /// Scaling by a dimensionless scalar of the representation type
  /// (priority weights, replica counts) stays within the dimension.
  friend constexpr Quantity operator*(Quantity a, Rep k) noexcept {
    return Quantity{static_cast<Rep>(a.v_ * k)};
  }
  friend constexpr Quantity operator*(Rep k, Quantity a) noexcept {
    return Quantity{static_cast<Rep>(k * a.v_)};
  }
  friend constexpr Quantity operator/(Quantity a, Rep k) noexcept {
    return Quantity{static_cast<Rep>(a.v_ / k)};
  }
  /// Ratio of two same-unit quantities is a dimensionless scalar
  /// (effective flow counts, utilization fractions).
  friend constexpr double operator/(Quantity a, Quantity b) noexcept {
    return static_cast<double>(a.v_) / static_cast<double>(b.v_);
  }
  constexpr Quantity& operator+=(Quantity o) noexcept {
    v_ = static_cast<Rep>(v_ + o.v_);
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    v_ = static_cast<Rep>(v_ - o.v_);
    return *this;
  }

  // --- comparisons (same unit only) ----------------------------------------
  friend constexpr bool operator==(Quantity a, Quantity b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) noexcept {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) noexcept {
    return a.v_ >= b.v_;
  }

 private:
  Rep v_ = Rep{};
};

// Value-semantics min/max/clamp for quantities, selecting on the raw
// representation. std::min/std::max/std::clamp take and return const
// references; on a class type that reference-select defeats the
// compiler's branchless lowering (double reps: minsd/maxsd become
// compare-and-branch — a measured ~30% hit on the hierarchy/allocator
// tick benches). Each mirrors the std tie-breaking exactly —
// min -> first argument on ties, max -> first, clamp -> v — so swapping
// a call site changes no result bit.
template <typename Unit, typename Rep>
[[nodiscard]] constexpr Quantity<Unit, Rep> min(Quantity<Unit, Rep> a,
                                                Quantity<Unit, Rep> b) noexcept {
  return Quantity<Unit, Rep>{b.value() < a.value() ? b.value() : a.value()};
}
template <typename Unit, typename Rep>
[[nodiscard]] constexpr Quantity<Unit, Rep> max(Quantity<Unit, Rep> a,
                                                Quantity<Unit, Rep> b) noexcept {
  return Quantity<Unit, Rep>{a.value() < b.value() ? b.value() : a.value()};
}
template <typename Unit, typename Rep>
[[nodiscard]] constexpr Quantity<Unit, Rep> clamp(
    Quantity<Unit, Rep> v, Quantity<Unit, Rep> lo,
    Quantity<Unit, Rep> hi) noexcept {
  // min(max(v, lo), hi) rather than std::clamp's nested ternary: for
  // lo <= hi the value is the same, and gcc lowers the composition to
  // maxsd+minsd where it compiles the ternary to compare-and-branch.
  return min(max(v, lo), hi);
}

/// Rate in bits per second. Double representation: rates are the output of
/// the allocator's floating-point fixed point, not exact counts.
using BitRate = Quantity<unit::BitsPerSecond, double>;
/// Exact byte count (sizes, counters). Signed so differences are closed.
using ByteCount = Quantity<unit::Bytes, std::int64_t>;
/// Exact bit count (queue occupancy x8, wire sizes).
using BitCount = Quantity<unit::Bits, std::int64_t>;

/// Self-documenting literal converters, mirroring secs()/nanos().
[[nodiscard]] constexpr BitRate bps(double v) noexcept { return BitRate{v}; }
[[nodiscard]] constexpr ByteCount bytes(std::int64_t v) noexcept {
  return ByteCount{v};
}
[[nodiscard]] constexpr BitCount bits(std::int64_t v) noexcept {
  return BitCount{v};
}

// --- cross-dimension algebra -------------------------------------------------
// Each operator is the one double expression the call sites previously
// wrote by hand, so converted code produces bit-identical results.

/// Transfer time of an exact bit count at a rate. (SimTime::from_seconds
/// rounds to the nearest nanosecond, ties away from zero.)
[[nodiscard]] constexpr SimTime operator/(BitCount b, BitRate r) noexcept {
  return SimTime::from_seconds(static_cast<double>(b.bits()) / r.bps());
}
/// Transfer time of an exact byte count at a rate (bytes * 8.0 / bps —
/// the serialization-delay expression used across the transport layer).
[[nodiscard]] constexpr SimTime operator/(ByteCount b, BitRate r) noexcept {
  return SimTime::from_seconds(static_cast<double>(b.bytes()) * 8.0 /
                               r.bps());
}
/// Bits transferred in a time window, rounded to the nearest whole bit
/// (ties away from zero, matching SimTime's double-scaling policy).
[[nodiscard]] constexpr BitCount operator*(BitRate r, SimTime t) noexcept {
  const double x = r.bps() * t.seconds();
  return BitCount{x >= 0.0 ? static_cast<std::int64_t>(x + 0.5)
                           : -static_cast<std::int64_t>(-x + 0.5)};
}
[[nodiscard]] constexpr BitCount operator*(SimTime t, BitRate r) noexcept {
  return r * t;
}
/// An exact bit count delivered every second, as a rate (named constants:
/// one MTU per second is the allocator's min-rate floor).
[[nodiscard]] constexpr BitRate per_second(BitCount b) noexcept {
  return BitRate{static_cast<double>(b.bits())};
}

}  // namespace scda::sim

template <typename Tag, typename Rep>
struct std::hash<scda::sim::StrongId<Tag, Rep>> {
  [[nodiscard]] std::size_t operator()(
      scda::sim::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

// Hash the exact integer representation. (The double-seconds predecessor
// hashed through std::hash<double>, where 0.0 and -0.0 compare equal but
// may hash differently — an unordered-container correctness bug. The
// integer representation has one encoding per value, so equal times hash
// equally by construction.)
template <>
struct std::hash<scda::sim::SimTime> {
  [[nodiscard]] std::size_t operator()(scda::sim::SimTime t) const noexcept {
    return std::hash<scda::sim::SimTime::rep_type>{}(t.nanos());
  }
};

// Hash the representation. Exact-count quantities (ByteCount/BitCount)
// inherit the one-encoding-per-value property of integers; BitRate hashes
// through std::hash<double> and keeps its caveats (0.0 vs -0.0), which is
// acceptable because rates key no unordered container in this tree — the
// specialization exists so generic code does not fall back to hashing a
// silently unwrapped raw double under a different type.
template <typename Unit, typename Rep>
struct std::hash<scda::sim::Quantity<Unit, Rep>> {
  [[nodiscard]] std::size_t operator()(
      scda::sim::Quantity<Unit, Rep> q) const noexcept {
    return std::hash<Rep>{}(q.value());
  }
};
