// Strong value types for the simulation kernel.
//
// The evaluation in the paper is only reproducible because the simulator
// is deterministic; a swapped NodeId/LinkId argument or a time passed
// where a rate was expected compiles silently with raw ints/doubles and
// only shows up as a wrong figure. These wrappers make that class of bug
// a compile error while generating the exact same machine code:
//
//   - StrongId<Tag, Rep>: a typed integer id. No implicit conversion to
//     or from the representation; ids with different tags do not mix.
//     Container indexing goes through index()/from_index so the (checked)
//     signed->size_t cast lives in exactly one place.
//   - SimTime: simulation time in seconds. Explicit construction from
//     double, typed arithmetic (time +- time, time * scalar, time/time
//     -> ratio), totally ordered, hashable. seconds() unwraps at the
//     boundaries where time feeds rate math or %.9g JSON emission.
//
// Both are structural wrappers over their representation: passing or
// returning them by value is byte-identical to passing the raw Rep, so
// the conversion is observably zero-cost (locked by bench budgets).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace scda::sim {

/// Typed integer identifier. `Tag` is any (possibly incomplete) type used
/// only to make distinct id spaces distinct types; `Rep` is the storage
/// representation. Value-initialises to Rep{} (matching the raw-int
/// behaviour this type replaced); invalid sentinels are Rep{-1} and are
/// defined next to each alias (e.g. net::kInvalidNode).
template <typename Tag, typename Rep = std::int32_t>
class StrongId {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>,
                "StrongId requires a signed integral representation");

 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep v) noexcept : v_(v) {}

  /// Underlying value (for arithmetic/printing at the representation
  /// boundary; prefer index() when subscripting containers).
  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }

  /// True for non-negative ids (all invalid sentinels are -1).
  [[nodiscard]] constexpr bool valid() const noexcept { return v_ >= Rep{0}; }

  /// Container subscript for this id. Asserts the id is valid.
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    assert(v_ >= Rep{0});
    return static_cast<std::size_t>(v_);
  }

  /// Build an id from a container index (the only sanctioned
  /// size_t -> id narrowing site).
  [[nodiscard]] static constexpr StrongId from_index(std::size_t i) noexcept {
    return StrongId{static_cast<Rep>(i)};
  }

  /// Sequential id generation (allocator counters).
  constexpr StrongId& operator++() noexcept {
    ++v_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    const StrongId old = *this;
    ++v_;
    return old;
  }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) noexcept {
    return a.v_ >= b.v_;
  }

 private:
  Rep v_ = Rep{};
};

/// Simulation time in seconds. Explicit construction keeps raw doubles
/// (rates, sizes, ratios) from silently becoming times; arithmetic is
/// closed over the operations that are meaningful for a time axis.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(double s) noexcept : s_(s) {}

  /// Unwrap to raw seconds (rate math, %.9g JSON emission).
  [[nodiscard]] constexpr double seconds() const noexcept { return s_; }

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{}; }

  // --- typed arithmetic --------------------------------------------------
  // point + duration and duration + duration share one type, exactly like
  // the raw double this replaced; the compiled arithmetic is identical.
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.s_ + b.s_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.s_ - b.s_};
  }
  friend constexpr SimTime operator-(SimTime a) noexcept {
    return SimTime{-a.s_};
  }
  friend constexpr SimTime operator*(SimTime a, double k) noexcept {
    return SimTime{a.s_ * k};
  }
  friend constexpr SimTime operator*(double k, SimTime a) noexcept {
    return SimTime{k * a.s_};
  }
  friend constexpr SimTime operator/(SimTime a, double k) noexcept {
    return SimTime{a.s_ / k};
  }
  /// Ratio of two times is a dimensionless scalar.
  friend constexpr double operator/(SimTime a, SimTime b) noexcept {
    return a.s_ / b.s_;
  }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    s_ += o.s_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) noexcept {
    s_ -= o.s_;
    return *this;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) noexcept {
    return a.s_ == b.s_;  // scda-lint: allow(float-eq) exact key comparison
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(SimTime a, SimTime b) noexcept {
    return a.s_ < b.s_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) noexcept {
    return a.s_ <= b.s_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) noexcept {
    return a.s_ > b.s_;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) noexcept {
    return a.s_ >= b.s_;
  }

 private:
  double s_ = 0.0;
};

/// Self-documenting constructor for literal times: secs(0.05).
[[nodiscard]] constexpr SimTime secs(double s) noexcept { return SimTime{s}; }

}  // namespace scda::sim

template <typename Tag, typename Rep>
struct std::hash<scda::sim::StrongId<Tag, Rep>> {
  [[nodiscard]] std::size_t operator()(
      scda::sim::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct std::hash<scda::sim::SimTime> {
  [[nodiscard]] std::size_t operator()(scda::sim::SimTime t) const noexcept {
    return std::hash<double>{}(t.seconds());
  }
};
