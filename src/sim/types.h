// Strong value types for the simulation kernel.
//
// The evaluation in the paper is only reproducible because the simulator
// is deterministic; a swapped NodeId/LinkId argument or a time passed
// where a rate was expected compiles silently with raw ints/doubles and
// only shows up as a wrong figure. These wrappers make that class of bug
// a compile error while generating the exact same machine code:
//
//   - StrongId<Tag, Rep>: a typed integer id. No implicit conversion to
//     or from the representation; ids with different tags do not mix.
//     Container indexing goes through index()/from_index so the (checked)
//     signed->size_t cast lives in exactly one place.
//   - SimTime: simulation time as a signed 64-bit integer count of
//     nanoseconds. Point/duration sums, differences and comparisons are
//     exact integer arithmetic, so equal-by-construction deadlines stay
//     equal no matter how they were accumulated — the class of
//     few-ulps-below-now drift that float time suffered is structurally
//     impossible. Construction from fractional seconds goes through
//     secs() / SimTime::from_seconds() (rounds to the nearest
//     nanosecond, ties away from zero); seconds() unwraps to double only
//     at the boundaries where time feeds rate math or %.9g JSON
//     emission.
//
// Both are structural wrappers over their representation: passing or
// returning them by value is byte-identical to passing the raw Rep, so
// the conversion is observably zero-cost (locked by bench budgets).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace scda::sim {

/// Typed integer identifier. `Tag` is any (possibly incomplete) type used
/// only to make distinct id spaces distinct types; `Rep` is the storage
/// representation. Value-initialises to Rep{} (matching the raw-int
/// behaviour this type replaced); invalid sentinels are Rep{-1} and are
/// defined next to each alias (e.g. net::kInvalidNode).
template <typename Tag, typename Rep = std::int32_t>
class StrongId {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>,
                "StrongId requires a signed integral representation");

 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep v) noexcept : v_(v) {}

  /// Underlying value (for arithmetic/printing at the representation
  /// boundary; prefer index() when subscripting containers).
  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }

  /// True for non-negative ids (all invalid sentinels are -1).
  [[nodiscard]] constexpr bool valid() const noexcept { return v_ >= Rep{0}; }

  /// Container subscript for this id. Asserts the id is valid.
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    assert(v_ >= Rep{0});
    return static_cast<std::size_t>(v_);
  }

  /// Build an id from a container index (the only sanctioned
  /// size_t -> id narrowing site).
  [[nodiscard]] static constexpr StrongId from_index(std::size_t i) noexcept {
    return StrongId{static_cast<Rep>(i)};
  }

  /// Sequential id generation (allocator counters).
  constexpr StrongId& operator++() noexcept {
    ++v_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    const StrongId old = *this;
    ++v_;
    return old;
  }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) noexcept {
    return a.v_ >= b.v_;
  }

 private:
  Rep v_ = Rep{};
};

/// Simulation time as an exact signed 64-bit nanosecond count. Named
/// factories (from_nanos / from_seconds) keep raw doubles (rates, sizes,
/// ratios) from silently becoming times and make every fractional-second
/// rounding site explicit; arithmetic is closed over the operations that
/// are meaningful for a time axis and is exact except where a double
/// scalar enters (* and / round to the nearest nanosecond).
///
/// Range: +-2^63 ns is roughly +-292 years of simulated time — far beyond
/// any run this simulator performs — and integer +/- within that range
/// never loses precision, unlike the double-of-seconds representation
/// this replaced (docs/perf.md, "delivery clamp" history).
class SimTime {
 public:
  using rep_type = std::int64_t;
  static constexpr rep_type kNanosPerSecond = 1'000'000'000;

  constexpr SimTime() noexcept = default;

  /// Exact construction from a nanosecond count.
  [[nodiscard]] static constexpr SimTime from_nanos(rep_type ns) noexcept {
    return SimTime{ns};
  }
  /// Construction from fractional seconds: rounds to the nearest
  /// nanosecond, ties away from zero. The only double -> time entry point.
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{round_to_ns(s * static_cast<double>(kNanosPerSecond))};
  }

  /// Underlying exact nanosecond count.
  [[nodiscard]] constexpr rep_type nanos() const noexcept { return ns_; }

  /// Unwrap to seconds (rate math, %.9g JSON emission). Exact for counts
  /// up to 2^53 ns (~104 simulated days); beyond that the double is the
  /// nearest representable value, deterministically.
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{}; }

  // --- typed arithmetic --------------------------------------------------
  // point + duration and duration + duration share one type; sums and
  // differences are exact integer arithmetic.
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a) noexcept {
    return SimTime{-a.ns_};
  }
  /// Scaling by a double rounds to the nearest nanosecond (ties away from
  /// zero) — scaling leaves the exact-integer domain and re-enters it.
  friend constexpr SimTime operator*(SimTime a, double k) noexcept {
    return SimTime{round_to_ns(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr SimTime operator*(double k, SimTime a) noexcept {
    return a * k;
  }
  friend constexpr SimTime operator/(SimTime a, double k) noexcept {
    return SimTime{round_to_ns(static_cast<double>(a.ns_) / k)};
  }
  /// Ratio of two times is a dimensionless scalar.
  friend constexpr double operator/(SimTime a, SimTime b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) noexcept {
    ns_ -= o.ns_;
    return *this;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) noexcept {
    return a.ns_ == b.ns_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(SimTime a, SimTime b) noexcept {
    return a.ns_ < b.ns_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) noexcept {
    return a.ns_ <= b.ns_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) noexcept {
    return a.ns_ > b.ns_;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) noexcept {
    return a.ns_ >= b.ns_;
  }

 private:
  constexpr explicit SimTime(rep_type ns) noexcept : ns_(ns) {}

  /// Round-to-nearest, ties away from zero (constexpr; llround is not).
  [[nodiscard]] static constexpr rep_type round_to_ns(double x) noexcept {
    return x >= 0.0 ? static_cast<rep_type>(x + 0.5)
                    : -static_cast<rep_type>(-x + 0.5);
  }

  rep_type ns_ = 0;
};

/// Self-documenting converter for literal times: secs(0.05). Rounds to
/// the nearest nanosecond like SimTime::from_seconds.
[[nodiscard]] constexpr SimTime secs(double s) noexcept {
  return SimTime::from_seconds(s);
}

/// Exact nanosecond literal: nanos(50) is 50 ns, no rounding involved.
[[nodiscard]] constexpr SimTime nanos(std::int64_t ns) noexcept {
  return SimTime::from_nanos(ns);
}

}  // namespace scda::sim

template <typename Tag, typename Rep>
struct std::hash<scda::sim::StrongId<Tag, Rep>> {
  [[nodiscard]] std::size_t operator()(
      scda::sim::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

// Hash the exact integer representation. (The double-seconds predecessor
// hashed through std::hash<double>, where 0.0 and -0.0 compare equal but
// may hash differently — an unordered-container correctness bug. The
// integer representation has one encoding per value, so equal times hash
// equally by construction.)
template <>
struct std::hash<scda::sim::SimTime> {
  [[nodiscard]] std::size_t operator()(scda::sim::SimTime t) const noexcept {
    return std::hash<scda::sim::SimTime::rep_type>{}(t.nanos());
  }
};
