// SmallFn: move-only type-erased `void()` callable with inline storage.
//
// The event queue schedules millions of short-lived callbacks per simulated
// second; std::function's semantics (copyability, target_type, RTTI) cost
// more than the hot path needs. SmallFn stores trivially-copyable captures
// up to kInlineBytes in place — every simulator hot-path lambda (a `this`
// pointer plus an epoch counter) qualifies — and falls back to the heap for
// large or non-trivial captures on cold control-plane paths. Restricting
// inline storage to trivially-copyable callables makes relocation a plain
// memcpy: moving a SmallFn never performs an indirect call, which matters
// when every scheduled event moves its callback into and out of the event
// pool. The event queue counts heap fallbacks so regressions show up in
// the perf counters.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace scda::sim {

class SmallFn {
 public:
  /// Inline capture budget. 48 bytes holds a `this` pointer plus five
  /// 8-byte captures; larger or non-trivial captures go to the heap.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    construct(std::forward<F>(f));
  }

  /// Destroy the current target (if any) and construct `f` in place —
  /// lets the event pool fill a recycled slot without a temporary SmallFn
  /// and the two relocations that come with it.
  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    // Inline payloads are trivially copyable and heap payloads are a raw
    // pointer, so relocation is one unconditional memcpy.
    std::memcpy(&storage_, &o.storage_, kInlineBytes);
    o.ops_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      std::memcpy(&storage_, &o.storage_, kInlineBytes);
      o.ops_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(&storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  /// True when the capture spilled to a heap allocation.
  [[nodiscard]] bool on_heap() const noexcept {
    return ops_ != nullptr && ops_->destroy != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &kOps<D, /*Heap=*/false>;
    } else {
      *reinterpret_cast<D**>(&storage_) = new D(std::forward<F>(f));
      ops_ = &kOps<D, /*Heap=*/true>;
    }
  }

  struct Ops {
    void (*invoke)(void* self);
    /// Heap deleter; nullptr for inline payloads (trivially destructible).
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<D>;
  }

  template <typename D, bool Heap>
  static constexpr Ops make_ops() noexcept {
    if constexpr (Heap) {
      return Ops{[](void* self) { (**reinterpret_cast<D**>(self))(); },
                 [](void* self) noexcept {
                   delete *reinterpret_cast<D**>(self);
                 }};
    } else {
      return Ops{
          [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
          nullptr};
    }
  }

  template <typename D, bool Heap>
  static constexpr Ops kOps = make_ops<D, Heap>();

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace scda::sim
