#include "obs/trace.h"

#include <cassert>

namespace scda::obs {

namespace {

constexpr double kUsPerSecond = 1e6;

void write_event_json(std::FILE* out, const char* ph, double ts_us,
                      double dur_us, std::uint32_t tid, const char* cat,
                      const char* name, std::uint64_t id, bool has_id,
                      const TraceArg* args, std::size_t n_args) {
  std::fprintf(out, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\"", name,
               cat, ph);
  std::fprintf(out, ",\"ts\":%.3f", ts_us);
  if (ph[0] == 'X') std::fprintf(out, ",\"dur\":%.3f", dur_us);
  std::fprintf(out, ",\"pid\":0,\"tid\":%u", tid);
  if (has_id) std::fprintf(out, ",\"id\":%llu,",
                           static_cast<unsigned long long>(id));
  else std::fputc(',', out);
  if (ph[0] == 'i') std::fprintf(out, "\"s\":\"g\",");
  std::fprintf(out, "\"args\":{");
  for (std::size_t i = 0; i < n_args; ++i)
    std::fprintf(out, "%s\"%s\":%.9g", i ? "," : "", args[i].key,
                 args[i].value);
  std::fprintf(out, "}}");
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.reserve(capacity);
}

void TraceRecorder::fill_args(Event& e,
                              std::initializer_list<TraceArg> args) {
  e.n_args = 0;
  for (const TraceArg& a : args) {
    if (e.n_args >= kMaxArgs) break;
    e.args[e.n_args++] = a;
  }
}

void TraceRecorder::push(const Event& e) {
  ++recorded_;
  if (ring_.size() < ring_.capacity()) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
}

void TraceRecorder::instant(sim::Time t, const char* cat, const char* name,
                            std::uint32_t tid,
                            std::initializer_list<TraceArg> args) {
  Event e;
  e.ph = 'i';
  e.ts_us = t.seconds() * kUsPerSecond;
  e.cat = cat;
  e.name = name;
  e.tid = tid;
  fill_args(e, args);
  push(e);
}

void TraceRecorder::async_begin(sim::Time t, const char* cat,
                                const char* name, std::uint64_t id,
                                std::initializer_list<TraceArg> args) {
  Event e;
  e.ph = 'b';
  e.ts_us = t.seconds() * kUsPerSecond;
  e.cat = cat;
  e.name = name;
  e.tid = kTrackFlows;
  e.id = id;
  fill_args(e, args);
  push(e);
}

void TraceRecorder::async_end(sim::Time t, const char* cat, const char* name,
                              std::uint64_t id,
                              std::initializer_list<TraceArg> args) {
  Event e;
  e.ph = 'e';
  e.ts_us = t.seconds() * kUsPerSecond;
  e.cat = cat;
  e.name = name;
  e.tid = kTrackFlows;
  e.id = id;
  fill_args(e, args);
  push(e);
}

void TraceRecorder::complete(sim::Time t, sim::Time dur, const char* cat,
                             const char* name, std::uint32_t tid,
                             std::initializer_list<TraceArg> args) {
  Event e;
  e.ph = 'X';
  e.ts_us = t.seconds() * kUsPerSecond;
  e.dur_us = dur.seconds() * kUsPerSecond;
  e.cat = cat;
  e.name = name;
  e.tid = tid;
  fill_args(e, args);
  push(e);
}

void TraceRecorder::counter(sim::Time t, const char* name, double value) {
  Event e;
  e.ph = 'C';
  e.ts_us = t.seconds() * kUsPerSecond;
  e.cat = "counter";
  e.name = name;
  e.tid = kTrackCounters;
  e.args[0] = {"value", value};
  e.n_args = 1;
  push(e);
}

void TraceRecorder::write_json(std::FILE* out) const {
  std::fprintf(out, "{\"traceEvents\":[\n");
  bool first = true;
  const auto emit = [&](const Event& e) {
    if (!first) std::fprintf(out, ",\n");
    first = false;
    const char ph[2] = {e.ph, '\0'};
    const bool has_id = e.ph == 'b' || e.ph == 'e';
    write_event_json(out, ph, e.ts_us, e.dur_us, e.tid, e.cat, e.name, e.id,
                     has_id, e.args.data(), e.n_args);
  };
  // Oldest first: once the ring has wrapped, `head_` is the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    emit(ring_[(head_ + i) % ring_.size()]);
  // Name the synthetic tracks so Perfetto shows readable lanes.
  struct TrackName {
    std::uint32_t tid;
    const char* name;
  };
  static constexpr TrackName kTracks[] = {
      {kTrackCounters, "counters"},  {kTrackFlows, "flows"},
      {kTrackNet, "network"},        {kTrackControl, "control-plane"},
      {kTrackTransport, "transport"},
  };
  for (const TrackName& tn : kTracks) {
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 tn.tid, tn.name);
  }
  std::fprintf(out,
               "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
               "\"recorded\":%llu,\"dropped\":%llu,\"capacity\":%zu}}\n",
               static_cast<unsigned long long>(recorded_),
               static_cast<unsigned long long>(dropped()),
               ring_.capacity());
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_json(f);
  std::fclose(f);
  return true;
}

}  // namespace scda::obs
