// MetricsRegistry: counters, gauges and histograms behind stable string
// ids, snapshotted once per run into a flat, sorted id -> value list.
//
// The registry is the pull side of the observability layer: components
// keep maintaining their own cheap counters (LinkStats, SenderStats,
// EventQueueStats, ...) exactly as before, and stats::collect_run_metrics
// reads them into the registry when the run ends. Nothing on the packet or
// event hot path touches the registry, so a run with metrics disabled is
// byte-for-byte the same machine code executing — the zero-overhead
// contract tests/test_obs.cpp locks down.
//
// Determinism contract: snapshot() emits entries sorted by id and
// histograms expanded into scalar sub-entries (.count/.mean/.min/.max), so
// two runs with the same seed produce byte-identical JSON.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace scda::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One snapshotted scalar. Histograms appear as several of these with
/// derived id suffixes (`<id>.count`, `<id>.mean`, `<id>.min`, `<id>.max`).
struct Metric {
  std::string id;
  double value = 0;
};

/// Flat, id-sorted view of a registry at one point in time.
struct MetricsSnapshot {
  std::vector<Metric> metrics;

  [[nodiscard]] bool empty() const noexcept { return metrics.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return metrics.size(); }

  /// Value of `id`, or `fallback` when absent.
  [[nodiscard]] double value(const std::string& id,
                             double fallback = 0) const;
  [[nodiscard]] bool has(const std::string& id) const;

  /// `{"id":value,...}` with %.9g numbers — stable key order and number
  /// formatting (the byte-identity anchor for determinism tests).
  void write_json(std::FILE* out) const;
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Counter: monotonically accumulated across the run.
  void add(const std::string& id, double delta = 1.0);
  /// Gauge: last write wins.
  void set(const std::string& id, double value);
  /// Histogram: running count/sum/min/max of observed samples.
  void observe(const std::string& id, double sample);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  void clear() { cells_.clear(); }

  /// Flatten into an id-sorted snapshot (histograms expand to scalars).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Cell {
    MetricKind kind = MetricKind::kGauge;
    double value = 0;  ///< counter total / gauge value / histogram sum
    std::uint64_t count = 0;
    double min = 0;
    double max = 0;
  };

  /// std::map keeps cells id-sorted so snapshot() needs no extra sort and
  /// iteration order is deterministic.
  std::map<std::string, Cell> cells_;
};

}  // namespace scda::obs
