// TraceRecorder: a bounded flight recorder emitting Chrome trace-event
// JSON (chrome://tracing / https://ui.perfetto.dev "Open trace file").
//
// Recording is allocation-free after construction: events are fixed-size
// PODs written into a preallocated ring, and every name/category/arg key
// must be a string literal (the recorder stores the pointer, not a copy).
// When the ring fills, the oldest events are overwritten — flight-recorder
// semantics — and the drop count is reported in the emitted metadata.
//
// Determinism contract: the serialized JSON is a pure function of the
// recorded events. Identical seeds produce identical simulation times and
// identical event sequences, so two runs of the same configuration write
// byte-identical trace files (tests/test_obs.cpp).
//
// Event vocabulary (see docs/observability.md for the full schema):
//   async_begin/async_end  flow lifecycle spans, keyed by flow id
//   instant                packet drops, SLA violations, retransmits
//   complete               RM/RA aggregation rounds (zero-duration in
//                          simulated time; args carry the round cost)
//   counter                sampled series (event-queue depth, active flows)
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace scda::obs {

/// One key/value pair attached to a trace event. `key` must outlive the
/// recorder (use string literals).
struct TraceArg {
  const char* key = nullptr;
  double value = 0;
};

/// Synthetic thread ids used to group events into Perfetto tracks.
enum TraceTrack : std::uint32_t {
  kTrackCounters = 0,
  kTrackFlows = 1,
  kTrackNet = 2,
  kTrackControl = 3,
  kTrackTransport = 4,
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // ~10 MB
  static constexpr std::size_t kMaxArgs = 4;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Point event ("ph":"i"): drops, SLA violations, retransmits.
  void instant(sim::Time t, const char* cat, const char* name,
               std::uint32_t tid, std::initializer_list<TraceArg> args = {});

  /// Async span ("ph":"b"/"e"): flow lifecycles, keyed by `id`.
  void async_begin(sim::Time t, const char* cat, const char* name,
                   std::uint64_t id,
                   std::initializer_list<TraceArg> args = {});
  void async_end(sim::Time t, const char* cat, const char* name,
                 std::uint64_t id,
                 std::initializer_list<TraceArg> args = {});

  /// Complete event ("ph":"X") with an explicit duration in seconds.
  void complete(sim::Time t, sim::Time dur, const char* cat, const char* name,
                std::uint32_t tid,
                std::initializer_list<TraceArg> args = {});

  /// Counter sample ("ph":"C"): one series point of `name` at time `t`.
  void counter(sim::Time t, const char* name, double value);

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.capacity();
  }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Events recorded over the whole run, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to ring overwrite.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - size();
  }

  /// Serialize as a Chrome trace-event JSON object. Events are emitted
  /// oldest-first; thread-name metadata and an `otherData` section with the
  /// recorded/dropped totals are appended.
  void write_json(std::FILE* out) const;
  /// write_json to `path`; returns false when the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    double ts_us = 0;
    double dur_us = 0;        ///< complete events only
    std::uint64_t id = 0;     ///< async events only
    const char* cat = nullptr;
    const char* name = nullptr;
    std::array<TraceArg, kMaxArgs> args{};
    std::uint32_t tid = 0;
    std::uint8_t n_args = 0;
    char ph = 'i';
  };

  void push(const Event& e);
  static void fill_args(Event& e, std::initializer_list<TraceArg> args);

  std::vector<Event> ring_;  ///< capacity reserved up front, never grows
  std::size_t head_ = 0;     ///< overwrite cursor once the ring is full
  std::uint64_t recorded_ = 0;
};

}  // namespace scda::obs
