#include "obs/metrics.h"

#include <algorithm>

namespace scda::obs {

double MetricsSnapshot::value(const std::string& id, double fallback) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), id,
      [](const Metric& m, const std::string& key) { return m.id < key; });
  if (it == metrics.end() || it->id != id) return fallback;
  return it->value;
}

bool MetricsSnapshot::has(const std::string& id) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), id,
      [](const Metric& m, const std::string& key) { return m.id < key; });
  return it != metrics.end() && it->id == id;
}

void MetricsSnapshot::write_json(std::FILE* out) const {
  std::fputc('{', out);
  for (std::size_t i = 0; i < metrics.size(); ++i)
    std::fprintf(out, "%s\"%s\":%.9g", i ? "," : "", metrics[i].id.c_str(),
                 metrics[i].value);
  std::fputc('}', out);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  char buf[64];
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.9g", metrics[i].value);
    if (i) out += ',';
    out += '"';
    out += metrics[i].id;
    out += "\":";
    out += buf;
  }
  out += '}';
  return out;
}

void MetricsRegistry::add(const std::string& id, double delta) {
  Cell& c = cells_[id];
  c.kind = MetricKind::kCounter;
  c.value += delta;
}

void MetricsRegistry::set(const std::string& id, double value) {
  Cell& c = cells_[id];
  c.kind = MetricKind::kGauge;
  c.value = value;
}

void MetricsRegistry::observe(const std::string& id, double sample) {
  Cell& c = cells_[id];
  c.kind = MetricKind::kHistogram;
  if (c.count == 0) {
    c.min = sample;
    c.max = sample;
  } else {
    c.min = std::min(c.min, sample);
    c.max = std::max(c.max, sample);
  }
  c.value += sample;
  ++c.count;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.metrics.reserve(cells_.size());
  for (const auto& [id, c] : cells_) {
    if (c.kind == MetricKind::kHistogram) {
      snap.metrics.push_back(
          {id + ".count", static_cast<double>(c.count)});
      snap.metrics.push_back(
          {id + ".mean",
           c.count ? c.value / static_cast<double>(c.count) : 0.0});
      snap.metrics.push_back({id + ".min", c.count ? c.min : 0.0});
      snap.metrics.push_back({id + ".max", c.count ? c.max : 0.0});
    } else {
      snap.metrics.push_back({id, c.value});
    }
  }
  // The map keeps parent ids sorted, but histogram expansion appends
  // suffixes, so re-sort the flat list to keep the lower_bound lookups and
  // the JSON key order exact.
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const Metric& a, const Metric& b) { return a.id < b.id; });
  return snap;
}

}  // namespace scda::obs
