// Observability: the per-run bundle of the metrics registry and the
// optional trace flight recorder, plus the configuration knob that travels
// with ExperimentConfig.
//
// A Simulator carries at most one `Observability*` (nullptr by default —
// see sim/simulator.h). Components reach their instruments through the
// simulator they already hold, so the disabled path costs a single pointer
// load on the cold paths that check it and nothing at all on the hot ones.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace scda::obs {

/// Per-run observability switches (defaults: metrics on, tracing off).
struct ObsConfig {
  /// Collect a MetricsRegistry snapshot into the RunResult when the run
  /// ends. Pull-based: nothing is sampled while the simulation executes.
  bool metrics = true;
  /// When non-empty, record a flight-recorder trace and write it to this
  /// path as Chrome trace-event JSON when the run ends.
  std::string trace_path;
  /// Ring capacity of the flight recorder (events kept).
  std::size_t trace_capacity = TraceRecorder::kDefaultCapacity;
};

class Observability {
 public:
  Observability() = default;

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// nullptr until enable_trace() is called.
  [[nodiscard]] TraceRecorder* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const TraceRecorder* tracer() const noexcept {
    return tracer_.get();
  }

  TraceRecorder& enable_trace(
      std::size_t capacity = TraceRecorder::kDefaultCapacity) {
    if (!tracer_) tracer_ = std::make_unique<TraceRecorder>(capacity);
    return *tracer_;
  }

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> tracer_;
};

/// The simulator's trace recorder, or nullptr when tracing is off — the
/// one-line guard every instrumentation site uses.
[[nodiscard]] inline TraceRecorder* tracer_of(sim::Simulator& sim) noexcept {
  Observability* o = sim.observability();
  return o != nullptr ? o->tracer() : nullptr;
}

}  // namespace scda::obs
