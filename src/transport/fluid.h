// FluidEngine: analytic flow advancement between rate-allocation epochs.
//
// SCDA's RM/RA control plane already computes an explicit end-to-end rate
// r_j for every flow each control interval tau (rate_allocator.h). Packet
// mode spends one event per packet enforcing that rate on the wire; for a
// long flow whose rate is constant between epochs that is pure overhead —
// the delivered-byte curve is a known piecewise-linear function of time.
// Fluid mode integrates it directly: a flow carries {size, delivered,
// rate, last_update} and advances by rate x elapsed whenever its rate
// changes (an RA epoch, an admission re-rate, or an explicit set_rate).
// Its completion is a single scheduled event at
//
//     t_done = now + remaining_bits / rate + one_way_path_latency
//
// rearmed through Simulator::reschedule_at each time the rate moves. A
// k=32 fat-tree run costs O(flows x epochs) events instead of O(bytes) —
// the flowsim idiom (replicant-opera's Link::GetRatePerFlow), upgraded to
// SCDA's water-filled allocations. See docs/fluid_engine.md for the
// semantics and the fluid-vs-packet tolerance model.
//
// Links are charged byte deltas at every advance (Link::add_fluid_bytes),
// so utilization, power integration and the RM/RA L(t) counter see fluid
// traffic; queues are never touched — fluid flows are queueless by
// construction, which is exactly the fidelity packet mode retains for
// mice below the threshold (transport_manager.h makes that call).
//
// State lives in the repo's dense SoA layout (sorted FlowId index over
// slot-parallel arrays with a free list, as RateAllocator): epoch re-rates
// stream contiguous doubles in ascending-id order — deterministic and
// allocation-free at steady churn.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"

namespace scda::transport {

/// Transport-layer fluid/packet mode decision knobs.
struct FluidConfig {
  bool enabled = false;
  /// Flows of at least this many bytes go fluid; smaller ones (mice) keep
  /// per-packet fidelity. 1 MiB splits the bounded-Pareto elephants from
  /// the interactive mice in every committed workload.
  std::int64_t threshold_bytes = std::int64_t{1} << 20;
};

/// Counters surfaced in the metrics catalog (transport.fluid_*).
struct FluidStats {
  std::uint64_t started = 0;    ///< flows admitted to fluid mode
  std::uint64_t completed = 0;  ///< fluid completions delivered
  std::uint64_t epochs = 0;     ///< RA-epoch re-rate rounds observed
  std::uint64_t rerates = 0;    ///< individual flow re-rate operations
  std::uint64_t aborted = 0;    ///< flows cut short by failure injection
};

class FluidEngine {
 public:
  using CompletionFn = std::function<void(net::FlowId)>;

  explicit FluidEngine(net::Network& net) : net_(net) {}

  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  /// Fired when a flow's last byte lands at the receiver (injection done +
  /// one-way path latency). The flow is already removed when this runs, so
  /// the callback may start new flows freely.
  void set_completion_callback(CompletionFn fn) {
    on_complete_ = std::move(fn);
  }

  /// Admit a flow: it advances at `rate` until re-rated. The path is
  /// copied into a recycled slot vector; each path link gets a
  /// fluid_flow_join and is charged byte deltas as the flow advances.
  void start(net::FlowId id, std::int64_t size_bytes, sim::BitRate rate,
             const std::vector<net::LinkId>& path);

  /// Integrate the flow up to now at its old rate, then continue at
  /// `rate`. Zero (or negative) rate parks the flow: its completion
  /// event is cancelled until a later re-rate revives it.
  void set_rate(net::FlowId id, sim::BitRate rate);

  /// Re-rate every active flow in ascending-id order from `rate_of`
  /// (typically RateAllocator::flow_rate). `epoch` marks RA-epoch rounds
  /// in the stats; admission re-rates pass false.
  void rerate_all(const std::function<sim::BitRate(net::FlowId)>& rate_of,
                  bool epoch);

  /// Tear a flow down mid-transfer (failure injection): bytes delivered so
  /// far stay charged to the links, the completion event is cancelled, and
  /// the completion callback is NOT fired — the control plane that asked
  /// for the abort owns the aftermath (retry, failover, repair).
  void abort(net::FlowId id);

  [[nodiscard]] bool has_flow(net::FlowId id) const {
    return find_row(id) != kNoRow;
  }
  [[nodiscard]] std::size_t active_flows() const noexcept {
    return by_id_.size();
  }
  /// Bytes integrated as of the flow's last advance (start / re-rate).
  [[nodiscard]] std::int64_t delivered_bytes(net::FlowId id) const;
  [[nodiscard]] sim::BitRate rate(net::FlowId id) const;
  [[nodiscard]] const FluidStats& stats() const noexcept { return stats_; }
  /// Slots ever allocated (bounded by peak concurrent fluid flows — the
  /// churn test asserts this stays flat under steady start/complete load).
  [[nodiscard]] std::size_t pool_slots() const noexcept {
    return size_.size();
  }

 private:
  struct IndexEntry {
    net::FlowId id;
    std::uint32_t slot;
  };
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t find_row(net::FlowId id) const noexcept;
  [[nodiscard]] std::uint32_t acquire_slot();
  /// Integrate delivered bytes up to now at the current rate and push the
  /// integer byte delta to every path link.
  void advance(std::uint32_t slot);
  /// (Re)schedule the completion event from the current remaining bytes
  /// and rate; cancels it when the rate is zero.
  void arm_completion(net::FlowId id, std::uint32_t slot);
  void complete(net::FlowId id);

  net::Network& net_;
  CompletionFn on_complete_;

  std::vector<IndexEntry> by_id_;          ///< sorted ascending by flow id
  std::vector<std::uint32_t> free_slots_;  ///< recycled table rows
  // Slot-parallel flow state (indexed by IndexEntry::slot).
  std::vector<std::int64_t> size_;        ///< total bytes to deliver
  /// Fractional bytes integrated so far: continuous integration state, not
  /// a wire byte count, so it stays a raw double by design.
  std::vector<double> delivered_;
  std::vector<std::int64_t> accounted_;   ///< bytes already charged to links
  std::vector<sim::BitRate> rate_;        ///< current allocated rate
  std::vector<sim::Time> last_update_;    ///< integration frontier
  std::vector<sim::Time> latency_;        ///< one-way path propagation
  std::vector<sim::EventHandle> completion_;
  std::vector<std::vector<net::LinkId>> path_;

  FluidStats stats_;
};

}  // namespace scda::transport
