#include "transport/transport_manager.h"

#include "obs/observability.h"

namespace scda::transport {

Host& TransportManager::host(net::NodeId n) {
  auto it = hosts_.find(n);
  if (it == hosts_.end()) {
    it = hosts_.emplace(n, std::make_unique<Host>(net_, n)).first;
  }
  return *it->second;
}

double TransportManager::base_rtt(net::NodeId a, net::NodeId b) const {
  double one_way = 0;
  for (const net::LinkId lid : net_.path(a, b))
    one_way += net_.link(lid).prop_delay_s();
  return 2.0 * one_way;
}

FlowRecord& TransportManager::new_record(net::NodeId src, net::NodeId dst,
                                         std::int64_t size_bytes,
                                         TransportKind kind,
                                         ContentClass content) {
  auto rec = std::make_unique<FlowRecord>();
  rec->id = net::FlowId::from_index(records_.size());
  rec->src = src;
  rec->dst = dst;
  rec->size_bytes = size_bytes;
  rec->start_time = net_.sim().now();
  rec->transport = kind;
  rec->content = content;
  records_.push_back(std::move(rec));
  FlowRecord& r = *records_.back();
  if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
    tr->async_begin(r.start_time, "flow",
                    kind == TransportKind::kTcp ? "tcp_flow" : "scda_flow",
                    static_cast<std::uint64_t>(r.id.value()),
                    {{"src", static_cast<double>(r.src.value())},
                     {"dst", static_cast<double>(r.dst.value())},
                     {"bytes", static_cast<double>(r.size_bytes)}});
  }
  return r;
}

void TransportManager::finish_flow(const FlowRecord& r) {
  if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
    tr->async_end(r.finish_time, "flow",
                  r.transport == TransportKind::kTcp ? "tcp_flow"
                                                     : "scda_flow",
                  static_cast<std::uint64_t>(r.id.value()),
                  {{"fct_s", r.fct()},
                   {"bytes", static_cast<double>(r.size_bytes)}});
  }
  if (on_complete_) on_complete_(r);
}

bool TransportManager::abort_flow(net::FlowId id) {
  FlowRecord& rec = *records_.at(id.index());
  if (rec.finished() || rec.aborted) return false;
  rec.aborted = true;
  ++aborted_flows_;

  if (rec.fluid) {
    fluid_.abort(id);
  } else {
    // Agents stay alive (stray packets for dead flows are dropped by the
    // agents themselves), but the sender must stop emitting and the hosts
    // stop routing this flow's packets up the stack.
    if (WindowSender* s = sender(id)) s->stop();
    host(rec.src).detach(id);
    host(rec.dst).detach(id);
  }

  if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
    tr->async_end(net_.sim().now(), "flow",
                  rec.transport == TransportKind::kTcp ? "tcp_flow"
                                                       : "scda_flow",
                  static_cast<std::uint64_t>(rec.id.value()),
                  {{"aborted", 1.0},
                   {"bytes", static_cast<double>(rec.size_bytes)}});
  }
  return true;
}

net::FlowId TransportManager::start_tcp_flow(net::NodeId src, net::NodeId dst,
                                             std::int64_t size_bytes,
                                             ContentClass content) {
  FlowRecord& rec = new_record(src, dst, size_bytes, TransportKind::kTcp,
                               content);
  const double rtt = base_rtt(src, dst);

  auto recv = std::make_unique<Receiver>(
      net_, rec,
      [this](const FlowRecord& r) { finish_flow(r); },
      tcp_rcvw_bytes_);
  recv->set_delivered_counter(&total_delivered_bytes_);
  if (tcp_config_.delayed_ack)
    recv->set_delayed_ack(true, tcp_config_.ack_delay_s);
  auto send = std::make_unique<TcpSender>(net_, rec, rtt);
  send->set_initial_window_segments(tcp_config_.init_cwnd_segments);

  host(dst).attach(rec.id, recv.get());
  host(src).attach(rec.id, send.get());
  send->start();

  receivers_.emplace(rec.id, std::move(recv));
  senders_.emplace(rec.id, std::move(send));
  return rec.id;
}

ScdaFlowHandles TransportManager::start_scda_flow(
    net::NodeId src, net::NodeId dst, std::int64_t size_bytes,
    sim::BitRate initial_rate, sim::BitRate initial_rcvw_rate,
    ContentClass content, double priority) {
  FlowRecord& rec = new_record(src, dst, size_bytes, TransportKind::kScda,
                               content);
  rec.priority = priority;

  // Mode decision (docs/fluid_engine.md): elephants at or above the
  // threshold advance analytically in the fluid engine; mice keep packet
  // fidelity (counted as mode switches — the hybrid actually hybridized).
  if (fluid_config_.enabled) {
    if (size_bytes >= fluid_config_.threshold_bytes) {
      rec.fluid = true;
      fluid_.start(rec.id, size_bytes, initial_rate, net_.path(src, dst));
      ScdaFlowHandles out;
      out.id = rec.id;
      out.fluid = true;
      return out;
    }
    ++mode_switches_;
  }

  const double rtt = base_rtt(src, dst);

  // rcvw = downlink rate x RTT (paper Fig. 3, step 8): window-sizing
  // boundary, unwrapped once to keep the rate*rtt/8 expression exact.
  const auto rcvw =
      static_cast<std::int64_t>(initial_rcvw_rate.bps() * rtt / 8.0);
  auto recv = std::make_unique<Receiver>(
      net_, rec,
      [this](const FlowRecord& r) { finish_flow(r); },
      rcvw);
  recv->set_delivered_counter(&total_delivered_bytes_);
  auto send = std::make_unique<ScdaSender>(net_, rec, rtt, initial_rate);

  ScdaFlowHandles out;
  out.id = rec.id;
  out.sender = send.get();
  out.receiver = recv.get();

  host(dst).attach(rec.id, recv.get());
  host(src).attach(rec.id, send.get());
  send->start();

  receivers_.emplace(rec.id, std::move(recv));
  senders_.emplace(rec.id, std::move(send));
  return out;
}

}  // namespace scda::transport
