// Host: per-node packet demultiplexer.
//
// Endpoints (servers and clients) attach a Host to their network node; the
// Host routes inbound packets to the per-flow agent (sender agents consume
// ACKs, receiver agents consume DATA).
#pragma once

#include <unordered_map>

#include "net/network.h"
#include "net/packet.h"

namespace scda::transport {

/// Anything that consumes packets addressed to a (node, flow) pair.
class Agent {
 public:
  virtual ~Agent() = default;
  virtual void handle(net::Packet&& p) = 0;
};

class Host {
 public:
  Host(net::Network& net, net::NodeId node) : net_(net), node_(node) {
    net_.node(node_).set_sink(
        [this](net::Packet&& p) { dispatch(std::move(p)); });
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  void attach(net::FlowId flow, Agent* agent) { agents_[flow] = agent; }
  void detach(net::FlowId flow) { agents_.erase(flow); }

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] net::Network& net() noexcept { return net_; }
  [[nodiscard]] std::size_t attached() const noexcept { return agents_.size(); }

 private:
  void dispatch(net::Packet&& p) {
    const auto it = agents_.find(p.flow);
    if (it != agents_.end()) it->second->handle(std::move(p));
    // Packets for unknown flows (e.g. stray ACKs after teardown) are dropped.
  }

  net::Network& net_;
  net::NodeId node_;
  std::unordered_map<net::FlowId, Agent*> agents_;
};

}  // namespace scda::transport
