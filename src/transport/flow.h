// Flow bookkeeping shared by transports, the SCDA control plane, and stats.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/event_queue.h"

namespace scda::transport {

/// Content classes from paper section II-B. The server-selection strategy
/// (section VII) keys off this classification.
enum class ContentClass : std::uint8_t {
  kInteractive,      ///< HWHR — high write, high read (chat, collab editing)
  kSemiInteractive,  ///< HWLR or LWHR (video upload/popular download)
  kPassive,          ///< LWLR — rarely accessed after initial storage
};

[[nodiscard]] constexpr const char* to_string(ContentClass c) noexcept {
  switch (c) {
    case ContentClass::kInteractive: return "interactive";
    case ContentClass::kSemiInteractive: return "semi-interactive";
    case ContentClass::kPassive: return "passive";
  }
  return "?";
}

enum class TransportKind : std::uint8_t { kTcp, kScda };

struct FlowRecord {
  net::FlowId id = net::kInvalidFlow;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  std::int64_t size_bytes = 0;
  sim::Time start_time{};
  sim::Time finish_time = sim::secs(-1.0);  ///< set once all bytes delivered
  TransportKind transport = TransportKind::kTcp;
  ContentClass content = ContentClass::kSemiInteractive;
  /// Priority weight (paper eq. 6); 1.0 = unweighted max-min share.
  double priority = 1.0;
  /// Reserved minimum rate M_j (paper section IV-C); zero = none.
  sim::BitRate reserved{};
  /// Advanced analytically by the fluid engine (no sender/receiver agents,
  /// no packets); see fluid.h for the mode decision.
  bool fluid = false;
  /// Cut short by a failure (docs/scenarios.md): never finished, never
  /// counted as a completion, and ignored by FCT statistics.
  bool aborted = false;

  [[nodiscard]] bool finished() const noexcept {
    return finish_time >= sim::Time{};
  }
  [[nodiscard]] double fct() const noexcept {
    return finished() ? (finish_time - start_time).seconds() : -1.0;
  }
};

/// Fired when the receiver holds the complete content.
using FlowCompletionFn = std::function<void(const FlowRecord&)>;

}  // namespace scda::transport
