// Window-based senders.
//
// WindowSender implements the machinery both transports share: sliding
// window in bytes, segmentation at the MSS, cumulative-ACK processing,
// duplicate-ACK fast retransmit, RTO with exponential backoff, and
// RFC6298-style RTT estimation from echoed timestamps.
//
// TcpSender layers NewReno congestion control on top (the RandTCP
// baseline). ScdaSender sets its window from the rate its resource monitor
// allocates: cwnd = rate x RTT, send window = min(cwnd, rcvw) — paper
// section VIII, steps 8-12.
#pragma once

#include <algorithm>
#include <cstdint>

#include "net/network.h"
#include "transport/flow.h"
#include "transport/host.h"

namespace scda::transport {

struct SenderStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
};

class WindowSender : public Agent {
 public:
  WindowSender(net::Network& net, FlowRecord& rec, double base_rtt_s,
               std::int32_t mss_bytes = net::kDefaultMtuBytes -
                                        net::kHeaderBytes);
  ~WindowSender() override;

  WindowSender(const WindowSender&) = delete;
  WindowSender& operator=(const WindowSender&) = delete;

  /// Begin transmitting (schedules the first window immediately).
  void start();

  /// Stop transmitting for good (flow aborted by failure injection): the
  /// RTO is disarmed and any in-flight paced-send event is invalidated via
  /// the epoch guard. The agent object stays alive — stray ACKs for dead
  /// flows are ignored, same as after normal completion.
  void stop() noexcept {
    disarm_rto();
    ++pace_epoch_;
    pace_armed_ = false;
    stopped_ = true;
  }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  void handle(net::Packet&& p) override;

  [[nodiscard]] bool fully_acked() const noexcept {
    return acked_ >= rec_.size_bytes;
  }
  [[nodiscard]] std::int64_t acked_bytes() const noexcept { return acked_; }
  [[nodiscard]] double srtt() const noexcept { return srtt_; }
  [[nodiscard]] double cwnd_bytes() const noexcept { return cwnd_; }
  [[nodiscard]] std::int64_t peer_rcvw_bytes() const noexcept {
    return peer_rcvw_;
  }
  [[nodiscard]] const SenderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FlowRecord& record() const noexcept { return rec_; }

 protected:
  /// How the sender repairs losses signalled by duplicate ACKs.
  ///   kNewReno  — fast retransmit + fast recovery (one hole per RTT);
  ///   kGoBackN  — rewind next_seq to the ack point and resend; with
  ///               pacing this repairs arbitrarily many holes in one paced
  ///               pass (the SCDA transport's choice — the allocator, not
  ///               the loss signal, owns the rate).
  enum class LossRecovery : std::uint8_t { kNewReno, kGoBackN };

  // --- congestion-control hooks -------------------------------------------
  /// Called once before the first segment goes out; must set cwnd_.
  virtual void on_start() = 0;
  /// New cumulative ACK advanced the window by `newly_acked` bytes.
  virtual void on_new_ack(std::int64_t newly_acked) = 0;
  /// Third duplicate ACK observed (loss signal). Return true to retransmit
  /// the segment at the ack point.
  virtual bool on_dup_ack_loss() = 0;
  /// Retransmission timer fired.
  virtual void on_timeout() = 0;
  /// Partial ACK while in recovery (NewReno hook); default no-op.
  virtual void on_partial_ack() {}

  /// Pump: send new segments while window and data allow. When pacing is
  /// enabled, emits one segment and schedules the next at the paced rate so
  /// a large window never bursts into a drop-tail queue.
  void maybe_send();
  void retransmit_at(std::int64_t seq);
  /// `w` is a fractional byte window (NewReno grows cwnd by mss*mss/cwnd),
  /// so the window stays a raw double rather than an exact ByteCount.
  void set_cwnd(double w) noexcept {
    cwnd_ = std::max<double>(w, mss_);
  }
  /// Space segment emissions at `rate` (zero disables pacing). The SCDA
  /// transport paces at its allocated rate; TCP relies on ack clocking.
  void set_pacing_rate(sim::BitRate rate) noexcept {
    pacing_rate_ = rate;
  }

  net::Network& net_;
  FlowRecord& rec_;
  double base_rtt_s_;
  std::int32_t mss_;

  std::int64_t next_seq_ = 0;   ///< next new byte to transmit
  std::int64_t acked_ = 0;      ///< cumulative bytes acknowledged
  /// Congestion window in fractional bytes (see set_cwnd).
  double cwnd_ = 0;
  std::int64_t peer_rcvw_;      ///< last advertised receive window

  // recovery state
  LossRecovery loss_recovery_ = LossRecovery::kNewReno;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_seq_ = 0;
  /// Partial ACKs seen in the current GBN recovery. The first loss signal
  /// retransmits one segment (cheap for the common lone drop); the first
  /// partial ACK proves there are more holes and the sender rewinds —
  /// poking holes one RTT apiece is what made NewReno collapse here.
  int recovery_partials_ = 0;
  static constexpr int kGbnEscalationHoles = 1;

  // RTT estimation / RTO (RFC 6298)
  double srtt_ = 0;
  double rttvar_ = 0;
  double rto_ = 1.0;
  bool rtt_seeded_ = false;

  SenderStats stats_;

 private:
  void send_segment(std::int64_t seq, bool is_retransmit);
  void pump_unpaced();
  void pump_paced();
  void arm_rto();
  void disarm_rto();
  void handle_timeout();
  void update_rtt(double sample);

  sim::EventHandle rto_handle_{};
  bool rto_armed_ = false;
  std::uint64_t rto_epoch_ = 0;  ///< invalidates stale timer callbacks

  sim::BitRate pacing_rate_{};
  bool pace_armed_ = false;
  std::uint64_t pace_epoch_ = 0;
  bool stopped_ = false;
};

/// TCP NewReno — the rate control of the RandTCP baseline.
class TcpSender final : public WindowSender {
 public:
  using WindowSender::WindowSender;

  /// Initial congestion window in segments (default 2; RFC 6928 allows 10).
  void set_initial_window_segments(int n) noexcept {
    init_cwnd_segments_ = n > 0 ? n : 1;
  }

 protected:
  void on_start() override;
  void on_new_ack(std::int64_t newly_acked) override;
  bool on_dup_ack_loss() override;
  void on_timeout() override;
  void on_partial_ack() override;

 private:
  double ssthresh_ = 1e18;  ///< effectively infinite until first loss
  int init_cwnd_segments_ = 2;
};

/// SCDA window transport: the window tracks the allocated rate.
///
/// The sender's RM pushes the flow's current uplink allocation every control
/// interval; cwnd = rate x RTT. Loss (rare under correct allocation) is
/// repaired by plain retransmission without any rate back-off — the
/// allocator, not the loss signal, owns the rate.
class ScdaSender final : public WindowSender {
 public:
  ScdaSender(net::Network& net, FlowRecord& rec, double base_rtt_s,
             sim::BitRate initial_rate,
             std::int32_t mss_bytes = net::kDefaultMtuBytes -
                                      net::kHeaderBytes)
      : WindowSender(net, rec, base_rtt_s, mss_bytes),
        rate_(initial_rate) {
    loss_recovery_ = LossRecovery::kGoBackN;
  }

  /// Called by the resource monitor every control interval (section VIII-D).
  void set_rate(sim::BitRate rate) {
    rate_ = sim::max(rate, min_rate_);
    apply_rate();
    maybe_send();
  }
  [[nodiscard]] sim::BitRate rate() const noexcept { return rate_; }

 protected:
  void on_start() override {
    apply_rate();
  }
  void on_new_ack(std::int64_t) override { apply_rate(); }
  bool on_dup_ack_loss() override { return true; }
  void on_timeout() override {}

 private:
  void apply_rate() {
    const double rtt = rtt_seeded_ ? srtt_ : base_rtt_s_;
    // cwnd = rate x RTT, as fractional bytes (window-sizing boundary).
    set_cwnd(rate_.bps() * rtt / 8.0);
    set_pacing_rate(rate_);
  }

  sim::BitRate rate_;
  /// Floor keeping a flow alive while the allocator converges:
  /// one MTU per second, derived from the named MTU constant.
  sim::BitRate min_rate_ =
      sim::per_second(sim::ByteCount{net::kDefaultMtuBytes}.bits());
};

}  // namespace scda::transport
