#include "transport/sender.h"

#include <cmath>
#include <limits>

#include "obs/observability.h"
#include "util/log.h"

namespace scda::transport {

namespace {
constexpr double kMinRto = 0.2;   // 200 ms floor, as in common stacks
constexpr double kMaxRto = 60.0;
constexpr double kInitialRto = 1.0;
}  // namespace

WindowSender::WindowSender(net::Network& net, FlowRecord& rec,
                           double base_rtt_s, std::int32_t mss_bytes)
    : net_(net),
      rec_(rec),
      base_rtt_s_(base_rtt_s),
      mss_(mss_bytes),
      peer_rcvw_(std::numeric_limits<std::int64_t>::max()),
      rto_(kInitialRto) {}

WindowSender::~WindowSender() { disarm_rto(); }

void WindowSender::start() {
  on_start();
  maybe_send();
}

void WindowSender::handle(net::Packet&& p) {
  if (p.type != net::PacketType::kAck) return;
  if (fully_acked()) return;  // stray ACKs after completion
  if (stopped_) return;       // flow aborted; late ACKs must not revive it

  peer_rcvw_ = p.rcvw_bytes;

  if (p.seq > acked_) {
    const std::int64_t newly = p.seq - acked_;
    acked_ = p.seq;
    dup_acks_ = 0;
    if (p.echo_ts > sim::SimTime{})
      update_rtt((net_.sim().now() - p.echo_ts).seconds());

    if (in_recovery_) {
      if (acked_ >= recover_seq_) {
        in_recovery_ = false;
      } else if (loss_recovery_ == LossRecovery::kGoBackN) {
        // Partial ACK: another hole. Repair the first few one segment at
        // a time (cheap for sparse drops); a burst of holes escalates to
        // a full rewind, which the paced window repairs in one pass.
        if (++recovery_partials_ <= kGbnEscalationHoles) {
          retransmit_at(acked_);
        } else {
          next_seq_ = acked_;
          ++stats_.retransmits;
        }
      } else {
        // NewReno partial ACK: retransmit the next hole immediately.
        on_partial_ack();
        retransmit_at(acked_);
      }
    }
    on_new_ack(newly);

    if (fully_acked()) {
      disarm_rto();
      return;
    }
    arm_rto();  // restart timer on forward progress
    maybe_send();
  } else if (p.seq == acked_ && next_seq_ > acked_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_ && acked_ >= recover_seq_) {
      if (loss_recovery_ == LossRecovery::kGoBackN) {
        // Enter recovery with a single retransmission; partial ACKs
        // decide whether this is a lone hole or a burst (see above).
        in_recovery_ = true;
        recover_seq_ = next_seq_;
        recovery_partials_ = 0;
        ++stats_.fast_retransmits;
        on_dup_ack_loss();
        retransmit_at(acked_);
      } else if (on_dup_ack_loss()) {
        in_recovery_ = true;
        recover_seq_ = next_seq_;
        ++stats_.fast_retransmits;
        retransmit_at(acked_);
      }
    } else if (dup_acks_ > 3) {
      // Window inflation is folded into cwnd by the TCP subclass; for SCDA
      // the allocator-set window already permits continued sending.
      maybe_send();
    }
  }
}

void WindowSender::maybe_send() {
  if (stopped_) return;
  if (pacing_rate_ > sim::BitRate{}) {
    pump_paced();
  } else {
    pump_unpaced();
  }
  if (next_seq_ > acked_ && !rto_armed_) arm_rto();
}

void WindowSender::pump_unpaced() {
  const std::int64_t wnd =
      std::min<std::int64_t>(static_cast<std::int64_t>(cwnd_), peer_rcvw_);
  while (next_seq_ < rec_.size_bytes && next_seq_ - acked_ < wnd) {
    const auto payload = static_cast<std::int32_t>(
        std::min<std::int64_t>(mss_, rec_.size_bytes - next_seq_));
    // Respect the window for the full segment unless nothing is in flight
    // (always allowed to send at least one segment).
    if (next_seq_ - acked_ + payload > wnd && next_seq_ > acked_) break;
    send_segment(next_seq_, /*is_retransmit=*/false);
    next_seq_ += payload;
  }
}

void WindowSender::pump_paced() {
  if (pace_armed_) return;  // next emission already scheduled
  const std::int64_t wnd =
      std::min<std::int64_t>(static_cast<std::int64_t>(cwnd_), peer_rcvw_);
  if (next_seq_ >= rec_.size_bytes) return;
  if (next_seq_ - acked_ >= wnd && next_seq_ > acked_) return;

  const auto payload = static_cast<std::int32_t>(
      std::min<std::int64_t>(mss_, rec_.size_bytes - next_seq_));
  send_segment(next_seq_, /*is_retransmit=*/false);
  next_seq_ += payload;

  // Schedule the next emission one segment-time later at the paced rate
  // (ByteCount / BitRate -> SimTime, the dimensional form of the old
  // bytes * 8 / rate expression).
  const sim::Time gap =
      sim::ByteCount{payload + net::kHeaderBytes} / pacing_rate_;
  pace_armed_ = true;
  const auto epoch = ++pace_epoch_;
  net_.sim().post_in(gap, [this, epoch] {
    if (epoch != pace_epoch_) return;
    pace_armed_ = false;
    maybe_send();
  });
}

void WindowSender::retransmit_at(std::int64_t seq) {
  if (seq >= rec_.size_bytes) return;
  ++stats_.retransmits;
  if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
    tr->instant(net_.sim().now(), "transport", "retransmit",
                obs::kTrackTransport,
                {{"flow", static_cast<double>(rec_.id.value())},
                 {"seq", static_cast<double>(seq)},
                 {"cwnd_bytes", cwnd_}});
  }
  send_segment(seq, /*is_retransmit=*/true);
}

void WindowSender::send_segment(std::int64_t seq, bool is_retransmit) {
  const auto payload = static_cast<std::int32_t>(
      std::min<std::int64_t>(mss_, rec_.size_bytes - seq));
  net::Packet p =
      net::make_data(rec_.id, rec_.src, rec_.dst, seq, payload,
                     net_.sim().now());
  if (is_retransmit)
    p.ts = sim::SimTime{};  // Karn's rule: no RTT sample on retransmits
  ++stats_.data_packets_sent;
  net_.send(std::move(p));
}

void WindowSender::arm_rto() {
  disarm_rto();
  rto_armed_ = true;
  const auto epoch = ++rto_epoch_;
  rto_handle_ = net_.sim().schedule_in(sim::secs(rto_), [this, epoch] {
    if (epoch == rto_epoch_ && rto_armed_) handle_timeout();
  });
}

void WindowSender::disarm_rto() {
  if (rto_armed_) {
    net_.sim().cancel(rto_handle_);
    rto_armed_ = false;
  }
}

void WindowSender::handle_timeout() {
  rto_armed_ = false;
  if (fully_acked()) return;
  ++stats_.timeouts;
  in_recovery_ = false;
  dup_acks_ = 0;
  on_timeout();
  rto_ = std::min(rto_ * 2.0, kMaxRto);  // exponential backoff
  // Go-back-N: resend from the cumulative ack point (what NS2's TCP does
  // after an RTO); segments the receiver already buffered are re-acked
  // immediately and the cumulative point jumps forward.
  ++stats_.retransmits;
  next_seq_ = acked_;
  maybe_send();
  arm_rto();
}

void WindowSender::update_rtt(double sample) {
  if (sample <= 0) return;
  if (!rtt_seeded_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    rtt_seeded_ = true;
  } else {
    constexpr double kAlpha = 1.0 / 8.0;
    constexpr double kBeta = 1.0 / 4.0;
    rttvar_ = (1 - kBeta) * rttvar_ + kBeta * std::abs(srtt_ - sample);
    srtt_ = (1 - kAlpha) * srtt_ + kAlpha * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, kMinRto, kMaxRto);
}

// --- TcpSender (NewReno) -----------------------------------------------------

void TcpSender::on_start() {
  ssthresh_ = 1e18;
  set_cwnd(static_cast<double>(init_cwnd_segments_) * mss_);
}

void TcpSender::on_new_ack(std::int64_t newly_acked) {
  if (in_recovery_) return;  // window frozen during recovery (deflation)
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per ACKed segment (byte counting).
    set_cwnd(cwnd_ +
             static_cast<double>(std::min<std::int64_t>(newly_acked, mss_)));
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    set_cwnd(cwnd_ + static_cast<double>(mss_) * mss_ / cwnd_);
  }
}

bool TcpSender::on_dup_ack_loss() {
  const double flight = static_cast<double>(next_seq_ - acked_);
  ssthresh_ = std::max(flight / 2.0, 2.0 * mss_);
  set_cwnd(ssthresh_ + 3.0 * mss_);  // fast recovery inflation
  return true;
}

void TcpSender::on_partial_ack() {
  // Deflate on partial ACK per NewReno; keep at ssthresh.
  set_cwnd(ssthresh_);
}

void TcpSender::on_timeout() {
  const double flight = static_cast<double>(next_seq_ - acked_);
  ssthresh_ = std::max(flight / 2.0, 2.0 * mss_);
  set_cwnd(mss_);  // back to slow start
}

}  // namespace scda::transport
