#include "transport/receiver.h"

namespace scda::transport {

Receiver::~Receiver() { ++ack_timer_epoch_; }  // invalidate pending timer

void Receiver::handle(net::Packet&& p) {
  if (p.type != net::PacketType::kData) return;

  const std::int64_t before = next_expected_;
  merge(p.seq, p.seq_end());
  if (delivered_counter_) *delivered_counter_ += next_expected_ - before;

  // Plain in-order advance: the segment starts exactly at the cumulative
  // point and extends it by its own payload. Gap fills (jumps across
  // buffered data) are acked immediately, per RFC 5681.
  const bool in_order_advance =
      p.seq == before && next_expected_ - before == p.payload_bytes;
  const bool finished_now = !completed_ && complete();

  if (!delayed_ack_ || !in_order_advance || finished_now) {
    // Immediate ACK: per-packet mode, out-of-order/duplicate segments
    // (the sender needs the dupACK loss signal), and the final segment.
    send_ack(p.ts);
    unacked_segments_ = 0;
    ++ack_timer_epoch_;  // cancel any pending delayed ack
    ack_timer_armed_ = false;
  } else {
    pending_echo_ts_ = p.ts;
    if (++unacked_segments_ >= 2) {
      send_ack(p.ts);
      unacked_segments_ = 0;
      ++ack_timer_epoch_;
      ack_timer_armed_ = false;
    } else if (!ack_timer_armed_) {
      ack_timer_armed_ = true;
      const auto epoch = ++ack_timer_epoch_;
      net_.sim().post_in(sim::secs(ack_delay_s_), [this, epoch] {
        if (epoch != ack_timer_epoch_ || !ack_timer_armed_) return;
        ack_timer_armed_ = false;
        if (unacked_segments_ > 0) {
          send_ack(pending_echo_ts_);
          unacked_segments_ = 0;
        }
      });
    }
  }

  if (finished_now) {
    completed_ = true;
    rec_.finish_time = net_.sim().now();
    if (on_complete_) on_complete_(rec_);
  }
}

void Receiver::send_ack(sim::SimTime echo_ts) {
  const sim::SimTime now = net_.sim().now();
  net::Packet ack = net::make_ack(rec_.id, /*src=*/rec_.dst, /*dst=*/rec_.src,
                                  next_expected_, now, echo_ts, rcvw_bytes_);
  net_.send(std::move(ack));
}

void Receiver::merge(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return;
  if (lo <= next_expected_) {
    if (hi > next_expected_) next_expected_ = hi;
  } else {
    // Insert/merge into the out-of-order interval map.
    auto it = ooo_.lower_bound(lo);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo) {
        lo = prev->first;
        hi = std::max(hi, prev->second);
        ooo_.erase(prev);
      }
    }
    while (it != ooo_.end() && it->first <= hi) {
      hi = std::max(hi, it->second);
      it = ooo_.erase(it);
    }
    ooo_[lo] = hi;
  }
  // Drain any ranges now contiguous with the cumulative point.
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= next_expected_) {
    next_expected_ = std::max(next_expected_, it->second);
    it = ooo_.erase(it);
  }
}

}  // namespace scda::transport
