#include "transport/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace scda::transport {

std::size_t FluidEngine::find_row(net::FlowId id) const noexcept {
  const auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), id,
      [](const IndexEntry& e, net::FlowId v) { return e.id < v; });
  if (it == by_id_.end() || it->id != id) return kNoRow;
  return static_cast<std::size_t>(it - by_id_.begin());
}

std::uint32_t FluidEngine::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  size_.push_back(0);
  delivered_.push_back(0);
  accounted_.push_back(0);
  rate_.push_back(sim::BitRate{});
  last_update_.emplace_back();
  latency_.emplace_back();
  completion_.emplace_back();
  path_.emplace_back();
  return static_cast<std::uint32_t>(size_.size() - 1);
}

void FluidEngine::start(net::FlowId id, std::int64_t size_bytes,
                        sim::BitRate rate,
                        const std::vector<net::LinkId>& path) {
  if (size_bytes < 0)
    throw std::invalid_argument("FluidEngine::start: negative size");
  const std::size_t row = find_row(id);
  if (row != kNoRow)
    throw std::invalid_argument("FluidEngine::start: duplicate flow id");

  const std::uint32_t slot = acquire_slot();
  size_[slot] = size_bytes;
  delivered_[slot] = 0;
  accounted_[slot] = 0;
  rate_[slot] = sim::max(rate, sim::BitRate{});
  last_update_[slot] = net_.sim().now();
  completion_[slot] = sim::EventHandle{};
  path_[slot].assign(path.begin(), path.end());

  sim::Time lat{};
  for (const net::LinkId l : path) {
    lat = lat + net_.link(l).prop_delay();
    net_.link(l).fluid_flow_join();
  }
  latency_[slot] = lat;

  // Ids are issued monotonically, so the common insert is a push_back.
  const auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), id,
      [](const IndexEntry& e, net::FlowId v) { return e.id < v; });
  by_id_.insert(it, IndexEntry{id, slot});

  ++stats_.started;
  arm_completion(id, slot);
}

void FluidEngine::advance(std::uint32_t slot) {
  const sim::Time now = net_.sim().now();
  const sim::Time dt = now - last_update_[slot];
  last_update_[slot] = now;
  if (dt <= sim::Time{} || rate_[slot] <= sim::BitRate{}) return;

  // Fractional-byte integration boundary: unwrap once, keeping the exact
  // rate * seconds / 8 expression of the committed baselines.
  delivered_[slot] =
      std::min(static_cast<double>(size_[slot]),
               delivered_[slot] + rate_[slot].bps() * dt.seconds() / 8.0);
  const auto whole = static_cast<std::int64_t>(delivered_[slot]);
  const std::int64_t newly = whole - accounted_[slot];
  if (newly > 0) {
    for (const net::LinkId l : path_[slot]) net_.link(l).add_fluid_bytes(newly);
    accounted_[slot] = whole;
  }
}

void FluidEngine::arm_completion(net::FlowId id, std::uint32_t slot) {
  const double remaining =
      static_cast<double>(size_[slot]) - delivered_[slot];
  if (remaining <= 0) {
    // Injection already finished under an earlier rate; the completion
    // event armed then (inject time + latency) is still correct. A
    // zero-byte flow has no such event yet — complete it after latency.
    if (!completion_[slot].valid()) {
      completion_[slot] = net_.sim().schedule_at(
          net_.sim().now() + latency_[slot], [this, id] { complete(id); });
    }
    return;
  }
  if (rate_[slot] <= sim::BitRate{}) {
    // Parked: no progress until a re-rate revives the flow.
    net_.sim().cancel(completion_[slot]);
    completion_[slot] = sim::EventHandle{};
    return;
  }
  const sim::Time t =
      net_.sim().now() + sim::secs(remaining * 8.0 / rate_[slot].bps()) +
      latency_[slot];
  completion_[slot] = net_.sim().reschedule_at(completion_[slot], t,
                                               [this, id] { complete(id); });
}

void FluidEngine::set_rate(net::FlowId id, sim::BitRate rate) {
  const std::size_t row = find_row(id);
  if (row == kNoRow)
    throw std::invalid_argument("FluidEngine::set_rate: unknown flow");
  const std::uint32_t slot = by_id_[row].slot;
  advance(slot);
  rate_[slot] = sim::max(rate, sim::BitRate{});
  ++stats_.rerates;
  arm_completion(id, slot);
}

void FluidEngine::rerate_all(
    const std::function<sim::BitRate(net::FlowId)>& rate_of, bool epoch) {
  if (epoch) ++stats_.epochs;
  // Ascending-id order; set_rate never mutates the index, so plain
  // iteration is safe (completions only run from scheduled events).
  for (std::size_t row = 0; row < by_id_.size(); ++row) {
    const net::FlowId id = by_id_[row].id;
    const std::uint32_t slot = by_id_[row].slot;
    advance(slot);
    rate_[slot] = sim::max(rate_of(id), sim::BitRate{});
    ++stats_.rerates;
    arm_completion(id, slot);
  }
}

void FluidEngine::complete(net::FlowId id) {
  const std::size_t row = find_row(id);
  assert(row != kNoRow && "fluid completion for unknown flow");
  const std::uint32_t slot = by_id_[row].slot;

  // Force the exact byte total: the event time was computed from the same
  // remaining/rate pair, so any difference is float residue, not model
  // error. Charge the tail to the links before they lose the flow.
  const std::int64_t tail = size_[slot] - accounted_[slot];
  for (const net::LinkId l : path_[slot]) {
    if (tail > 0) net_.link(l).add_fluid_bytes(tail);
    net_.link(l).fluid_flow_leave();
  }
  delivered_[slot] = static_cast<double>(size_[slot]);
  accounted_[slot] = size_[slot];
  completion_[slot] = sim::EventHandle{};  // fired; nothing to cancel

  by_id_.erase(by_id_.begin() + static_cast<std::ptrdiff_t>(row));
  free_slots_.push_back(slot);
  ++stats_.completed;

  if (on_complete_) on_complete_(id);
}

void FluidEngine::abort(net::FlowId id) {
  const std::size_t row = find_row(id);
  if (row == kNoRow)
    throw std::invalid_argument("FluidEngine::abort: unknown flow");
  const std::uint32_t slot = by_id_[row].slot;

  // Charge what actually made it onto the wire, then detach from the path.
  advance(slot);
  for (const net::LinkId l : path_[slot]) net_.link(l).fluid_flow_leave();
  net_.sim().cancel(completion_[slot]);
  completion_[slot] = sim::EventHandle{};

  by_id_.erase(by_id_.begin() + static_cast<std::ptrdiff_t>(row));
  free_slots_.push_back(slot);
  ++stats_.aborted;
}

std::int64_t FluidEngine::delivered_bytes(net::FlowId id) const {
  const std::size_t row = find_row(id);
  if (row == kNoRow)
    throw std::invalid_argument("FluidEngine::delivered_bytes: unknown flow");
  return static_cast<std::int64_t>(delivered_[by_id_[row].slot]);
}

sim::BitRate FluidEngine::rate(net::FlowId id) const {
  const std::size_t row = find_row(id);
  if (row == kNoRow)
    throw std::invalid_argument("FluidEngine::rate: unknown flow");
  return rate_[by_id_[row].slot];
}

}  // namespace scda::transport
