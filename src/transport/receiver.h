// Receiver agent: reassembles a flow, sends cumulative ACKs, advertises the
// receive window.
//
// For TCP flows the advertised window is a large static buffer (standard
// behaviour). For SCDA flows the receiver's resource monitor periodically
// sets rcvw = downlink_rate x RTT (paper section VIII, step 8).
#pragma once

#include <cstdint>
#include <map>

#include "net/network.h"
#include "transport/flow.h"
#include "transport/host.h"

namespace scda::transport {

class Receiver final : public Agent {
 public:
  /// `on_complete` fires once, when the last payload byte arrives.
  Receiver(net::Network& net, FlowRecord& rec, FlowCompletionFn on_complete,
           std::int64_t rcvw_bytes)
      : net_(net),
        rec_(rec),
        on_complete_(std::move(on_complete)),
        rcvw_bytes_(rcvw_bytes) {}

  ~Receiver() override;

  void handle(net::Packet&& p) override;

  /// RFC1122-style delayed ACKs: acknowledge every second in-order segment
  /// or after `delay_s`; out-of-order segments are acked immediately (the
  /// sender needs the duplicate ACKs). Off by default — the SCDA window
  /// transport wants per-packet acks, and NS2's base TCP sink acks every
  /// packet too.
  void set_delayed_ack(bool enabled, double delay_s = 0.04) {
    delayed_ack_ = enabled;
    ack_delay_s_ = delay_s;
  }

  /// Optional global counter bumped by every newly delivered payload byte
  /// (drives the instantaneous-throughput series of figures 7/10/17).
  void set_delivered_counter(std::int64_t* counter) noexcept {
    delivered_counter_ = counter;
  }

  /// SCDA: the local RM updates the advertised window every control interval.
  void set_rcvw_bytes(std::int64_t w) noexcept {
    rcvw_bytes_ = w > min_rcvw_bytes_ ? w : min_rcvw_bytes_;
  }
  [[nodiscard]] std::int64_t rcvw_bytes() const noexcept { return rcvw_bytes_; }

  [[nodiscard]] std::int64_t next_expected() const noexcept {
    return next_expected_;
  }
  [[nodiscard]] bool complete() const noexcept {
    return next_expected_ >= rec_.size_bytes;
  }

 private:
  void merge(std::int64_t lo, std::int64_t hi);
  void send_ack(sim::SimTime echo_ts);

  net::Network& net_;
  FlowRecord& rec_;
  FlowCompletionFn on_complete_;
  std::int64_t rcvw_bytes_;
  /// Never advertise less than one segment or the connection stalls.
  std::int64_t min_rcvw_bytes_ = net::kDefaultMtuBytes;

  std::int64_t* delivered_counter_ = nullptr;
  std::int64_t next_expected_ = 0;
  /// Out-of-order byte ranges [lo, hi) not yet contiguous with
  /// next_expected_. Reassembly needs the ranges key-sorted to merge the
  /// contiguous prefix, and the map is empty except under loss.
  // scda-lint: allow(map-hot-path)
  std::map<std::int64_t, std::int64_t> ooo_;
  bool completed_ = false;

  // delayed-ACK state
  bool delayed_ack_ = false;
  double ack_delay_s_ = 0.04;
  int unacked_segments_ = 0;
  sim::SimTime pending_echo_ts_{};
  bool ack_timer_armed_ = false;
  std::uint64_t ack_timer_epoch_ = 0;
};

}  // namespace scda::transport
