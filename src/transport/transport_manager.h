// TransportManager: creates flows, owns their sender/receiver agents and
// per-node Hosts, and reports completions.
//
// Agents live for the whole simulation (flows are cheap); stray packets for
// finished flows are ignored by the agents themselves.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "transport/flow.h"
#include "transport/fluid.h"
#include "transport/host.h"
#include "transport/receiver.h"
#include "transport/sender.h"

namespace scda::transport {

/// Live handles for an SCDA flow so the control plane can drive rate and
/// window updates each control interval (paper section VIII-D). Fluid-mode
/// flows have no agents: sender/receiver stay null and `fluid` is set —
/// their rate updates go through TransportManager::fluid() instead.
struct ScdaFlowHandles {
  net::FlowId id = net::kInvalidFlow;
  ScdaSender* sender = nullptr;
  Receiver* receiver = nullptr;
  bool fluid = false;
};

class TransportManager {
 public:
  explicit TransportManager(net::Network& net) : net_(net), fluid_(net) {
    fluid_.set_completion_callback([this](net::FlowId id) {
      FlowRecord& rec = *records_.at(id.index());
      rec.finish_time = net_.sim().now();
      total_delivered_bytes_ += rec.size_bytes;
      finish_flow(rec);
    });
  }

  TransportManager(const TransportManager&) = delete;
  TransportManager& operator=(const TransportManager&) = delete;

  /// Completion callback applied to every flow (stats collection).
  void set_completion_callback(FlowCompletionFn fn) {
    on_complete_ = std::move(fn);
  }

  /// Default receive window advertised by TCP receivers.
  void set_tcp_rcvw_bytes(std::int64_t w) noexcept { tcp_rcvw_bytes_ = w; }

  /// Baseline TCP tuning applied to subsequently started TCP flows.
  struct TcpConfig {
    int init_cwnd_segments = 2;  ///< RFC 6928 allows up to 10
    bool delayed_ack = false;    ///< RFC 1122 delayed ACKs at the sink
    double ack_delay_s = 0.04;
  };
  void set_tcp_config(const TcpConfig& c) noexcept { tcp_config_ = c; }
  [[nodiscard]] const TcpConfig& tcp_config() const noexcept {
    return tcp_config_;
  }

  /// Enable/tune the hybrid fluid/packet mode for SCDA flows: flows of at
  /// least `threshold_bytes` advance analytically between RA epochs, mice
  /// keep per-packet fidelity (docs/fluid_engine.md). TCP flows are never
  /// fluid — their rate comes from congestion control, not the allocator.
  void set_fluid_config(const FluidConfig& c) noexcept { fluid_config_ = c; }
  [[nodiscard]] const FluidConfig& fluid_config() const noexcept {
    return fluid_config_;
  }
  [[nodiscard]] FluidEngine& fluid() noexcept { return fluid_; }
  [[nodiscard]] const FluidEngine& fluid() const noexcept { return fluid_; }
  /// Flows that fell below the fluid threshold and took the packet path
  /// while fluid mode was enabled (the mice half of the mode decision).
  [[nodiscard]] std::uint64_t mode_switches() const noexcept {
    return mode_switches_;
  }

  /// Start a TCP flow (RandTCP baseline). Returns its id.
  net::FlowId start_tcp_flow(
      net::NodeId src, net::NodeId dst, std::int64_t size_bytes,
      ContentClass content = ContentClass::kSemiInteractive);

  /// Start an SCDA flow with the given initial rate allocation.
  ScdaFlowHandles start_scda_flow(net::NodeId src, net::NodeId dst,
                                  std::int64_t size_bytes,
                                  sim::BitRate initial_rate,
                                  sim::BitRate initial_rcvw_rate,
                                  ContentClass content =
                                      ContentClass::kSemiInteractive,
                                  double priority = 1.0);

  /// Tear a live flow down mid-transfer (failure injection). The record is
  /// marked aborted, never finished; the completion callback is NOT fired.
  /// Packet flows keep their (stopped) agents alive so in-flight packets
  /// and timer events drain harmlessly; fluid flows leave the engine.
  /// Returns false if the flow is already finished or aborted.
  bool abort_flow(net::FlowId id);
  /// Flows torn down by abort_flow over the run.
  [[nodiscard]] std::uint64_t aborted_flows() const noexcept {
    return aborted_flows_;
  }

  [[nodiscard]] const FlowRecord& record(net::FlowId id) const {
    return *records_.at(id.index());
  }
  [[nodiscard]] FlowRecord& record(net::FlowId id) {
    return *records_.at(id.index());
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return records_.size();
  }
  /// Id the next started flow will receive — lets callers pin a source
  /// route in the Network before starting the flow (section IX).
  [[nodiscard]] net::FlowId next_flow_id() const noexcept {
    return net::FlowId::from_index(records_.size());
  }
  [[nodiscard]] const std::vector<std::unique_ptr<FlowRecord>>& records()
      const noexcept {
    return records_;
  }

  [[nodiscard]] WindowSender* sender(net::FlowId id) {
    const auto it = senders_.find(id);
    return it == senders_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] Receiver* receiver(net::FlowId id) {
    const auto it = receivers_.find(id);
    return it == receivers_.end() ? nullptr : it->second.get();
  }

  /// Total payload bytes delivered in order across all flows so far.
  [[nodiscard]] std::int64_t total_delivered_bytes() const noexcept {
    return total_delivered_bytes_;
  }

  /// Base RTT (2x propagation) between two nodes — used to seed windows.
  [[nodiscard]] double base_rtt(net::NodeId a, net::NodeId b) const;

  [[nodiscard]] Host& host(net::NodeId n);

 private:
  FlowRecord& new_record(net::NodeId src, net::NodeId dst,
                         std::int64_t size_bytes, TransportKind kind,
                         ContentClass content);
  /// Completion fan-in: closes the flow's trace span, then notifies the
  /// registered completion callback.
  void finish_flow(const FlowRecord& rec);

  net::Network& net_;
  FlowCompletionFn on_complete_;
  std::int64_t tcp_rcvw_bytes_ = std::int64_t{1} << 24;  // 16 MB
  TcpConfig tcp_config_;
  FluidEngine fluid_;
  FluidConfig fluid_config_;
  std::uint64_t mode_switches_ = 0;
  std::uint64_t aborted_flows_ = 0;
  std::int64_t total_delivered_bytes_ = 0;

  std::unordered_map<net::NodeId, std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<FlowRecord>> records_;
  std::unordered_map<net::FlowId, std::unique_ptr<WindowSender>> senders_;
  std::unordered_map<net::FlowId, std::unique_ptr<Receiver>> receivers_;
};

}  // namespace scda::transport
