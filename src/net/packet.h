// Packet model for the NS2-substitute network substrate.
//
// Packets are small value types; the hot path moves them through link
// queues by value. Header fields cover what both TCP and the SCDA window
// transport need: sequence/ack numbers, a sender timestamp echoed by the
// receiver for RTT estimation, and a receive-window advertisement
// (step 9 of the external-write protocol, paper Fig. 3).
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace scda::net {

// Tag types give each id space its own C++ type: a NodeId handed to a
// parameter expecting a LinkId (or a FlowId truncated into an int32
// parameter) is now a compile error instead of a wrong figure.
using NodeId = sim::StrongId<struct NodeIdTag, std::int32_t>;
using LinkId = sim::StrongId<struct LinkIdTag, std::int32_t>;
using FlowId = sim::StrongId<struct FlowIdTag, std::int64_t>;

constexpr NodeId kInvalidNode{-1};
constexpr LinkId kInvalidLink{-1};
constexpr FlowId kInvalidFlow{-1};

enum class PacketType : std::uint8_t {
  kData = 0,  ///< payload-carrying segment
  kAck = 1,   ///< cumulative acknowledgement
  kCtrl = 2,  ///< small control message (request/metadata exchange)
};

/// Default maximum transmission unit, matching Ethernet.
constexpr std::int32_t kDefaultMtuBytes = 1500;
/// Header overhead accounted on data packets (IP+TCP-equivalent).
constexpr std::int32_t kHeaderBytes = 40;
/// Wire size of a pure ACK.
constexpr std::int32_t kAckBytes = 40;

struct Packet {
  FlowId flow = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kData;

  /// DATA: index of the first payload byte. ACK: cumulative ack (next byte
  /// expected by the receiver).
  std::int64_t seq = 0;
  /// Payload bytes carried (0 for ACK/CTRL).
  std::int32_t payload_bytes = 0;
  /// Total wire size in bytes (payload + header).
  std::int32_t size_bytes = 0;

  /// Sender timestamp; the receiver echoes it back in `echo_ts` so the
  /// sender can measure RTT without per-packet state.
  sim::SimTime ts{};
  sim::SimTime echo_ts{};

  /// Receive-window advertisement in bytes (rcvw, paper section VIII).
  std::int64_t rcvw_bytes = 0;

  [[nodiscard]] std::int64_t seq_end() const noexcept {
    return seq + payload_bytes;
  }
};

/// Build a data segment with standard header accounting.
[[nodiscard]] inline Packet make_data(FlowId flow, NodeId src, NodeId dst,
                                      std::int64_t seq,
                                      std::int32_t payload_bytes,
                                      sim::SimTime now) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.type = PacketType::kData;
  p.seq = seq;
  p.payload_bytes = payload_bytes;
  p.size_bytes = payload_bytes + kHeaderBytes;
  p.ts = now;
  return p;
}

/// Build a cumulative ACK for `ack_seq` (next byte expected).
[[nodiscard]] inline Packet make_ack(FlowId flow, NodeId src, NodeId dst,
                                     std::int64_t ack_seq, sim::SimTime now,
                                     sim::SimTime echo_ts,
                                     std::int64_t rcvw_bytes) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.type = PacketType::kAck;
  p.seq = ack_seq;
  p.size_bytes = kAckBytes;
  p.ts = now;
  p.echo_ts = echo_ts;
  p.rcvw_bytes = rcvw_bytes;
  return p;
}

}  // namespace scda::net
