#include "net/link.h"

#include <utility>

#include "obs/observability.h"
#include "util/log.h"

namespace scda::net {

void Link::trace_drop(const Packet& p, const char* reason) {
  if (obs::TraceRecorder* tr = obs::tracer_of(sim_)) {
    tr->instant(sim_.now(), "net", reason, obs::kTrackNet,
                {{"link", static_cast<double>(id_.value())},
                 {"flow", static_cast<double>(p.flow.value())},
                 {"seq", static_cast<double>(p.seq)},
                 {"queue_bytes", static_cast<double>(queued_bytes_)}});
  }
}

bool Link::enqueue(Packet&& p) {
  if (!up_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += static_cast<std::uint64_t>(p.size_bytes);
    trace_drop(p, "drop_link_down");
    return false;
  }
  interval_arrived_bytes_ += p.size_bytes;
  if (loss_probability_ > 0 && loss_rng_ != nullptr &&
      loss_rng_->bernoulli(loss_probability_)) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += static_cast<std::uint64_t>(p.size_bytes);
    trace_drop(p, "drop_error_model");
    return false;
  }
  if (queued_bytes_ + p.size_bytes > queue_limit_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += static_cast<std::uint64_t>(p.size_bytes);
    SCDA_LOG_TRACE("link %d drop flow=%lld seq=%lld q=%lld", id_.value(),
                   static_cast<long long>(p.flow.value()),
                   static_cast<long long>(p.seq),
                   static_cast<long long>(queued_bytes_));
    trace_drop(p, "drop_tail");
    return false;
  }
  queued_bytes_ += p.size_bytes;
  ++stats_.enqueued_packets;
  queue_.push(std::move(p));
  if (!transmitting_) start_transmission();
  return true;
}

void Link::start_transmission() {
  transmitting_ = true;
  // SJF selection (section IV-B) commits to the packet now; it is taken
  // out of the queue when the transmission completes.
  cur_node_ = queue_.select_next();
  const Packet& head = queue_.packet(cur_node_);
  // Serialization time rounds to the nearest nanosecond once, here; from
  // this point on every timestamp derived from it is exact integer time
  // (ByteCount / BitRate is the same bytes * 8.0 / bps expression the
  // raw-double code wrote by hand).
  const sim::Time tx_time = sim::ByteCount{head.size_bytes} / capacity_;
  sim_.post_in(tx_time, [this] { on_tx_complete(); });
}

void Link::on_tx_complete() {
  Packet p = queue_.take(cur_node_);
  cur_node_ = PacketQueue::kNull;
  queued_bytes_ -= p.size_bytes;
  ++stats_.tx_packets;
  stats_.tx_bytes += static_cast<std::uint64_t>(p.size_bytes);
  queue_.note_transmitted(p.flow);  // SJF Cnt_j bookkeeping; no-op for FIFO

  // Propagation: park the packet on the in-flight ring; the single armed
  // delivery timer walks the ring head-by-head (constant delay => FIFO).
  // The parked deadline and the armed timer are the same exact integer
  // sum, so deliver_head always finds the head due at or after now.
  inflight_.emplace_back(sim_.now() + prop_delay_, std::move(p));
  if (!delivery_armed_) {
    delivery_armed_ = true;
    sim_.post_in(prop_delay_, [this] { deliver_head(); });
  }

  if (!queue_.empty()) {
    start_transmission();
  } else {
    transmitting_ = false;
  }
}

void Link::deliver_head() {
  Packet p = std::move(inflight_.front().second);
  inflight_.pop_front();
  if (!inflight_.empty()) {
    sim_.post_in(delivery_delay(inflight_.front().first, sim_.now()),
                 [this] { deliver_head(); });
  } else {
    delivery_armed_ = false;
  }
  if (deliver_) deliver_(std::move(p));
}

}  // namespace scda::net
