#include "net/link.h"

#include <utility>

#include "util/log.h"

namespace scda::net {

bool Link::enqueue(Packet&& p) {
  interval_arrived_bytes_ += p.size_bytes;
  if (loss_probability_ > 0 && loss_rng_ != nullptr &&
      loss_rng_->bernoulli(loss_probability_)) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += static_cast<std::uint64_t>(p.size_bytes);
    return false;
  }
  if (queued_bytes_ + p.size_bytes > queue_limit_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += static_cast<std::uint64_t>(p.size_bytes);
    SCDA_LOG_TRACE("link %d drop flow=%lld seq=%lld q=%lld", id_,
                   static_cast<long long>(p.flow),
                   static_cast<long long>(p.seq),
                   static_cast<long long>(queued_bytes_));
    return false;
  }
  queued_bytes_ += p.size_bytes;
  ++stats_.enqueued_packets;
  queue_.push_back(std::move(p));
  if (!transmitting_) start_transmission();
  return true;
}

void Link::start_transmission() {
  transmitting_ = true;
  if (discipline_ == QueueDiscipline::kSjf) select_next_packet();
  const Packet& head = queue_.front();
  const double tx_time =
      static_cast<double>(head.size_bytes) * 8.0 / capacity_bps_;
  sim_.schedule_in(tx_time, [this] { on_tx_complete(); });
}

void Link::select_next_packet() {
  // OpenFlow SJF approximation (section IV-B): serve the queued packet
  // whose flow has transmitted the fewest packets on this link. Control
  // traffic (ACKs flowing the other way are on the reverse link) competes
  // like any young flow. Linear scan: queues are bounded (drop-tail).
  if (queue_.size() <= 1) return;
  std::size_t best = 0;
  std::uint64_t best_count = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const auto it = flow_tx_count_.find(queue_[i].flow);
    const std::uint64_t c = it == flow_tx_count_.end() ? 0 : it->second;
    if (c < best_count) {
      best_count = c;
      best = i;
    }
  }
  if (best != 0) std::swap(queue_[0], queue_[best]);
}

void Link::on_tx_complete() {
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.size_bytes;
  ++stats_.tx_packets;
  stats_.tx_bytes += static_cast<std::uint64_t>(p.size_bytes);
  if (discipline_ == QueueDiscipline::kSjf) ++flow_tx_count_[p.flow];

  // Propagation: park the packet on the in-flight queue; the single armed
  // delivery timer walks the queue head-by-head (constant delay => FIFO).
  inflight_.emplace_back(sim_.now() + prop_delay_s_, std::move(p));
  if (!delivery_armed_) {
    delivery_armed_ = true;
    sim_.schedule_in(prop_delay_s_, [this] { deliver_head(); });
  }

  if (!queue_.empty()) {
    start_transmission();
  } else {
    transmitting_ = false;
  }
}

void Link::deliver_head() {
  Packet p = std::move(inflight_.front().second);
  inflight_.pop_front();
  if (!inflight_.empty()) {
    sim_.schedule_in(inflight_.front().first - sim_.now(),
                     [this] { deliver_head(); });
  } else {
    delivery_armed_ = false;
  }
  if (deliver_) deliver_(std::move(p));
}

}  // namespace scda::net
