#include "net/fat_tree.h"

#include <deque>
#include <stdexcept>
#include <string>

namespace scda::net {

FatTree::FatTree(sim::Simulator& sim, const FatTreeConfig& cfg)
    : cfg_(cfg), net_(sim) {
  if (cfg.k < 2 || cfg.k % 2 != 0)
    throw std::invalid_argument("FatTree: k must be even and >= 2");
  const auto half = static_cast<std::size_t>(cfg.k / 2);
  const auto q = cfg.queue_limit_bytes;

  gateway_ = net_.add_node(NodeRole::kGateway, "gw");

  for (std::int32_t c = 0; c < cfg.cores(); ++c) {
    const NodeId core =
        net_.add_node(NodeRole::kCoreSwitch, "core" + std::to_string(c));
    cores_.push_back(core);
    net_.add_duplex(core, gateway_, cfg.gw_bps, cfg.dc_delay_s, q);
  }

  for (std::int32_t p = 0; p < cfg.pods(); ++p) {
    // Aggregation switches: agg a connects to cores [a*k/2, (a+1)*k/2).
    for (std::size_t a = 0; a < half; ++a) {
      const NodeId agg = net_.add_node(
          NodeRole::kAggSwitch,
          "agg" + std::to_string(p) + "_" + std::to_string(a));
      aggs_.push_back(agg);
      for (std::size_t i = 0; i < half; ++i) {
        const NodeId core = cores_[a * half + i];
        auto [up, down] =
            net_.add_duplex(agg, core, cfg.link_bps, cfg.dc_delay_s, q);
        agg_core_up_.push_back(up);
        core_agg_down_.push_back(down);
      }
    }
    // Edge switches: each connects to every agg in the pod.
    for (std::size_t e = 0; e < half; ++e) {
      const NodeId edge = net_.add_node(
          NodeRole::kTorSwitch,
          "edge" + std::to_string(p) + "_" + std::to_string(e));
      edges_.push_back(edge);
      for (std::size_t a = 0; a < half; ++a) {
        auto [up, down] =
            net_.add_duplex(edge, agg(static_cast<std::size_t>(p), a),
                            cfg.link_bps, cfg.dc_delay_s, q);
        edge_agg_up_.push_back(up);
        agg_edge_down_.push_back(down);
      }
      for (std::size_t s = 0; s < half; ++s) {
        const std::size_t si = servers_.size();
        const NodeId srv =
            net_.add_node(NodeRole::kServer, "bs" + std::to_string(si));
        servers_.push_back(srv);
        auto [up, down] =
            net_.add_duplex(srv, edge, cfg.link_bps, cfg.dc_delay_s, q);
        server_up_.push_back(up);
        server_down_.push_back(down);
      }
    }
  }

  for (std::int32_t c = 0; c < cfg.n_clients; ++c) {
    const NodeId cl =
        net_.add_node(NodeRole::kClient, "ucl" + std::to_string(c));
    clients_.push_back(cl);
    net_.add_duplex(cl, gateway_, cfg.link_bps, cfg.wan_delay_s, q);
  }

  if (cfg.build_routes) net_.build_routes();
}

namespace {
/// splitmix64 finalizer — the same per-flow hash ecmp_path() applies, so
/// analytic and table-driven ECMP agree on "deterministic per flow id".
std::uint64_t flow_hash(FlowId flow) {
  std::uint64_t x =
      static_cast<std::uint64_t>(flow.value()) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

std::vector<LinkId> FatTree::server_path(std::size_t src, std::size_t dst,
                                         FlowId flow) const {
  if (src >= servers_.size() || dst >= servers_.size())
    throw std::out_of_range("FatTree::server_path: bad server index");
  if (src == dst) return {};

  const auto half = static_cast<std::size_t>(cfg_.k / 2);
  const std::size_t p_s = pod_of_server(src), p_d = pod_of_server(dst);
  const std::size_t e_s = edge_index_of_server(src);
  const std::size_t e_d = edge_index_of_server(dst);

  // Same edge switch: two hops, no choice to hash over.
  if (p_s == p_d && e_s == e_d)
    return {server_up_[src], server_down_[dst]};

  const std::uint64_t h = flow_hash(flow);
  if (p_s == p_d) {
    // Intra-pod: k/2 equal-cost paths, one per aggregation switch.
    const std::size_t a = h % half;
    return {server_up_[src], edge_agg_up_[(p_s * half + e_s) * half + a],
            agg_edge_down_[(p_d * half + e_d) * half + a], server_down_[dst]};
  }
  // Inter-pod: (k/2)^2 equal-cost paths, one per core. Core c = a*half+i
  // attaches to agg a in every pod.
  const std::size_t c = h % (half * half);
  const std::size_t a = c / half, i = c % half;
  return {server_up_[src],
          edge_agg_up_[(p_s * half + e_s) * half + a],
          agg_core_up_[(p_s * half + a) * half + i],
          core_agg_down_[(p_d * half + a) * half + i],
          agg_edge_down_[(p_d * half + e_d) * half + a],
          server_down_[dst]};
}

std::vector<std::vector<LinkId>> all_shortest_paths(const Network& net,
                                                    NodeId src, NodeId dst) {
  std::vector<std::vector<LinkId>> out;
  if (src == dst) return out;

  // BFS computing distances from src, then DFS over links that decrease
  // the distance-to-dst (computed by reverse BFS from dst over in-edges ==
  // forward BFS from dst because every link here is paired).
  const auto n = net.node_count();
  std::vector<std::int32_t> dist_to_dst(n, -1);
  {
    std::deque<NodeId> q;
    dist_to_dst[dst.index()] = 0;
    q.push_back(dst);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (const LinkId l : net.out_links(u)) {
        const NodeId v = net.link(l).to();
        if (dist_to_dst[v.index()] == -1) {
          dist_to_dst[v.index()] =
              dist_to_dst[u.index()] + 1;
          q.push_back(v);
        }
      }
    }
  }
  if (dist_to_dst[src.index()] == -1) return out;

  std::vector<LinkId> cur;
  // Iterative DFS with an explicit stack of (node, next out-link index).
  struct Frame {
    NodeId node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{src, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.node == dst) {
      out.push_back(cur);
      stack.pop_back();
      if (!cur.empty()) cur.pop_back();
      continue;
    }
    const auto& links = net.out_links(f.node);
    bool descended = false;
    while (f.next < links.size()) {
      const LinkId l = links[f.next++];
      const NodeId v = net.link(l).to();
      if (dist_to_dst[v.index()] ==
          dist_to_dst[f.node.index()] - 1) {
        cur.push_back(l);
        stack.push_back({v, 0});
        descended = true;
        break;
      }
    }
    if (!descended && f.next >= links.size()) {
      stack.pop_back();
      if (!cur.empty()) cur.pop_back();
    }
  }
  return out;
}

std::vector<LinkId> ecmp_path(const Network& net, NodeId src, NodeId dst,
                              FlowId flow) {
  auto paths = all_shortest_paths(net, src, dst);
  if (paths.empty()) return {};
  // splitmix64 of the flow id picks the path, like a 5-tuple hash would.
  std::uint64_t x =
      static_cast<std::uint64_t>(flow.value()) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return paths[x % paths.size()];
}

}  // namespace scda::net
