#include "net/network.h"

#include <deque>
#include <utility>

#include "util/log.h"

namespace scda::net {

NodeId Network::add_node(NodeRole role, std::string name) {
  if (routes_built_)
    throw std::logic_error("Network::add_node after build_routes");
  const auto id = NodeId::from_index(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, role, std::move(name)));
  out_links_.emplace_back();
  return id;
}

LinkId Network::add_link(NodeId a, NodeId b, sim::BitRate capacity,
                         double prop_delay_s,
                         std::int64_t queue_limit_bytes) {
  if (routes_built_)
    throw std::logic_error("Network::add_link after build_routes");
  checked(a);
  checked(b);
  if (a == b) throw std::invalid_argument("Network::add_link: self loop");
  if (capacity <= sim::BitRate{})
    throw std::invalid_argument("Network::add_link: capacity must be > 0");
  const auto id = LinkId::from_index(links_.size());
  links_.push_back(std::make_unique<Link>(sim_, id, a, b, capacity,
                                          prop_delay_s, queue_limit_bytes));
  Link* raw = links_.back().get();
  raw->set_deliver([this, to = b](Packet&& p) { forward(std::move(p), to); });
  out_links_[a.index()].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Network::add_duplex(NodeId a, NodeId b,
                                              sim::BitRate capacity,
                                              double prop_delay_s,
                                              std::int64_t queue_limit_bytes) {
  const LinkId ab = add_link(a, b, capacity, prop_delay_s,
                             queue_limit_bytes);
  const LinkId ba = add_link(b, a, capacity, prop_delay_s,
                             queue_limit_bytes);
  return {ab, ba};
}

void Network::build_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<NodeId>(n, kInvalidNode));

  // BFS from every node over the out-link adjacency. For tree topologies
  // this is exact; for general graphs it yields deterministic shortest
  // hop-count paths (lowest link id explored first).
  std::vector<std::int32_t> dist(n);
  std::vector<NodeId> first_hop(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(first_hop.begin(), first_hop.end(), kInvalidNode);
    std::deque<NodeId> q;
    const auto src = NodeId::from_index(s);
    dist[s] = 0;
    q.push_back(src);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (const LinkId lid : out_links_[u.index()]) {
        const NodeId v = links_[lid.index()]->to();
        if (dist[v.index()] != -1) continue;
        dist[v.index()] =
            dist[u.index()] + 1;
        first_hop[v.index()] =
            (u == src) ? v : first_hop[u.index()];
        q.push_back(v);
      }
    }
    for (std::size_t d = 0; d < n; ++d)
      next_hop_[s][d] = (d == s) ? src : first_hop[d];
  }
  routes_built_ = true;
}

LinkId Network::link_between(NodeId a, NodeId b) const {
  for (const LinkId lid : out_links_.at(checked(a))) {
    if (links_[lid.index()]->to() == b) return lid;
  }
  return kInvalidLink;
}

std::vector<LinkId> Network::path(NodeId src, NodeId dst) const {
  if (!routes_built_) throw std::logic_error("Network::path: routes not built");
  std::vector<LinkId> out;
  NodeId at = src;
  while (at != dst) {
    const NodeId nh = next_hop(at, dst);
    if (nh == kInvalidNode)
      throw std::runtime_error("Network::path: unreachable destination");
    const LinkId lid = link_between(at, nh);
    out.push_back(lid);
    at = nh;
  }
  return out;
}

void Network::pin_flow_route(FlowId flow, const std::vector<LinkId>& path) {
  if (path.empty())
    throw std::invalid_argument("pin_flow_route: empty path");
  std::unordered_map<NodeId, LinkId> hops;
  NodeId at = links_[path.front().index()]->from();
  for (const LinkId lid : path) {
    const Link& l = *links_.at(lid.index());
    if (l.from() != at)
      throw std::invalid_argument("pin_flow_route: path not contiguous");
    hops[at] = lid;
    at = l.to();
  }
  pinned_[flow] = std::move(hops);
}

void Network::unpin_flow_route(FlowId flow) { pinned_.erase(flow); }

void Network::send(Packet&& p) {
  if (!routes_built_) throw std::logic_error("Network::send: routes not built");
  forward(std::move(p), p.src);
}

void Network::forward(Packet&& p, NodeId at) {
  if (at == p.dst) {
    nodes_[checked(at)]->deliver_local(std::move(p));
    return;
  }
  // Source-routed flows follow their pinned path (data direction only;
  // the reverse direction has no entry at these nodes and falls through).
  if (!pinned_.empty() && p.type == PacketType::kData) {
    const auto fit = pinned_.find(p.flow);
    if (fit != pinned_.end()) {
      const auto hit = fit->second.find(at);
      if (hit != fit->second.end()) {
        (void)links_[hit->second.index()]->enqueue(
            std::move(p));
        return;
      }
    }
  }
  const NodeId nh = next_hop(at, p.dst);
  if (nh == kInvalidNode) {
    SCDA_LOG_WARN("network: no route from %d to %d, packet dropped",
                  at.value(), p.dst.value());
    return;
  }
  const LinkId lid = link_between(at, nh);
  // Drop-tail: enqueue may refuse the packet; loss is recovered by the
  // transport layer, exactly as in the real network.
  (void)links_[lid.index()]->enqueue(std::move(p));
}

}  // namespace scda::net
