// Network node: endpoint or switch.
//
// A node forwards packets that are not addressed to it (switch behaviour)
// and hands packets addressed to it to the attached sink (transport demux).
// Forwarding uses the Network's precomputed next-hop tables.
#pragma once

#include <functional>
#include <string>

#include "net/packet.h"

namespace scda::net {

enum class NodeRole : std::uint8_t {
  kClient,      ///< UCL — user client outside the datacenter
  kGateway,     ///< entry point / WAN gateway switch
  kCoreSwitch,  ///< level-3 switch
  kAggSwitch,   ///< level-2 switch
  kTorSwitch,   ///< level-1 top-of-rack switch
  kServer,      ///< BS — block server
  kOther,
};

[[nodiscard]] constexpr const char* to_string(NodeRole r) noexcept {
  switch (r) {
    case NodeRole::kClient: return "client";
    case NodeRole::kGateway: return "gateway";
    case NodeRole::kCoreSwitch: return "core";
    case NodeRole::kAggSwitch: return "agg";
    case NodeRole::kTorSwitch: return "tor";
    case NodeRole::kServer: return "server";
    case NodeRole::kOther: return "other";
  }
  return "?";
}

class Node {
 public:
  using Sink = std::function<void(Packet&&)>;

  Node(NodeId id, NodeRole role, std::string name)
      : id_(id), role_(role), name_(std::move(name)) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] NodeRole role() const noexcept { return role_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Attach the local packet sink (transport demux). A node without a sink
  /// silently discards packets addressed to it.
  void set_sink(Sink s) { sink_ = std::move(s); }
  [[nodiscard]] bool has_sink() const noexcept {
    return static_cast<bool>(sink_);
  }

  void deliver_local(Packet&& p) {
    if (sink_) sink_(std::move(p));
  }

 private:
  NodeId id_;
  NodeRole role_;
  std::string name_;
  Sink sink_;
};

}  // namespace scda::net
