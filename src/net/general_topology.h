// General (non-tree) datacenter topologies — paper section IX.
//
// The evaluation topology is a tree (unique paths), but SCDA's allocation
// mechanism extends to arbitrary graphs: RMs/RAs group flows by path and a
// max/min (widest-path) computation picks routes. This builder provides a
// leaf-spine fabric (the "figure 8 of [2]" style folded Clos):
//
//   servers -- leaf switches -- (all) spine switches -- gateway -- clients
//
// Every leaf connects to every spine, so server-to-server and
// client-to-server traffic has one path choice per spine. Combined with
// Network::pin_flow_route and the widest-path selector
// (core/path_selector.h) this exercises SCDA's cross-layer routing.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace scda::net {

struct LeafSpineConfig {
  std::int32_t n_spines = 4;
  std::int32_t n_leaves = 8;
  std::int32_t servers_per_leaf = 8;
  std::int32_t n_clients = 32;

  sim::BitRate server_bps{500e6};  ///< server <-> leaf
  sim::BitRate fabric_bps{500e6};  ///< leaf <-> spine
  sim::BitRate gw_bps{1e9};        ///< spine <-> gateway
  sim::BitRate client_bps{500e6};  ///< client <-> gateway

  double dc_delay_s = 10e-3;
  double wan_delay_s = 50e-3;
  std::int64_t queue_limit_bytes = 256 * 1500;

  [[nodiscard]] std::int32_t n_servers() const noexcept {
    return n_leaves * servers_per_leaf;
  }
};

class LeafSpine {
 public:
  LeafSpine(sim::Simulator& sim, const LeafSpineConfig& cfg);

  [[nodiscard]] Network& net() noexcept { return net_; }
  [[nodiscard]] const LeafSpineConfig& config() const noexcept {
    return cfg_;
  }

  [[nodiscard]] NodeId gateway() const noexcept { return gateway_; }
  [[nodiscard]] const std::vector<NodeId>& spines() const noexcept {
    return spines_;
  }
  [[nodiscard]] const std::vector<NodeId>& leaves() const noexcept {
    return leaves_;
  }
  [[nodiscard]] const std::vector<NodeId>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] const std::vector<NodeId>& clients() const noexcept {
    return clients_;
  }

  [[nodiscard]] std::size_t leaf_of_server(std::size_t s) const {
    return s / static_cast<std::size_t>(cfg_.servers_per_leaf);
  }

  // access links per server index
  [[nodiscard]] LinkId server_uplink(std::size_t s) const {
    return server_up_.at(s);
  }
  [[nodiscard]] LinkId server_downlink(std::size_t s) const {
    return server_down_.at(s);
  }
  // fabric links: leaf <-> spine
  [[nodiscard]] LinkId leaf_to_spine(std::size_t leaf,
                                     std::size_t spine) const {
    return leaf_up_.at(leaf * static_cast<std::size_t>(cfg_.n_spines) +
                       spine);
  }
  [[nodiscard]] LinkId spine_to_leaf(std::size_t leaf,
                                     std::size_t spine) const {
    return leaf_down_.at(leaf * static_cast<std::size_t>(cfg_.n_spines) +
                         spine);
  }

 private:
  LeafSpineConfig cfg_;
  Network net_;
  NodeId gateway_ = kInvalidNode;
  std::vector<NodeId> spines_, leaves_, servers_, clients_;
  std::vector<LinkId> server_up_, server_down_;
  std::vector<LinkId> leaf_up_, leaf_down_;  // indexed leaf * n_spines + spine
};

}  // namespace scda::net
