// k-ary fat-tree (Al-Fares et al., SIGCOMM'08 — the paper's reference [1];
// PortLand [24] uses the same fabric).
//
//   k pods; each pod has k/2 edge and k/2 aggregation switches;
//   (k/2)^2 core switches; each edge switch hosts k/2 servers.
//   Full bisection bandwidth with equal-capacity links.
//
// Between any two servers in different pods there are (k/2)^2 equal-cost
// paths — the multipath fabric ECMP/VLB randomize over and SCDA's
// widest-path selection routes deliberately (sections IX and XI).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace scda::net {

struct FatTreeConfig {
  std::int32_t k = 4;  ///< pod arity (even); 4 -> 16 servers, 20 switches
  std::int32_t n_clients = 8;

  sim::BitRate link_bps{500e6};  ///< uniform capacity (definitionally)
  sim::BitRate gw_bps{2e9};      ///< core <-> gateway
  double dc_delay_s = 10e-3;
  double wan_delay_s = 50e-3;
  std::int64_t queue_limit_bytes = 256 * 1500;

  /// Build the dense O(N^2) next-hop tables. Packet-mode traffic needs
  /// them; fluid-only scale runs (k=32 -> ~9.5k nodes, ~360 MB of tables)
  /// turn this off and use FatTree::server_path() instead.
  bool build_routes = true;

  [[nodiscard]] std::int32_t pods() const noexcept { return k; }
  [[nodiscard]] std::int32_t edge_per_pod() const noexcept { return k / 2; }
  [[nodiscard]] std::int32_t agg_per_pod() const noexcept { return k / 2; }
  [[nodiscard]] std::int32_t cores() const noexcept {
    return (k / 2) * (k / 2);
  }
  [[nodiscard]] std::int32_t servers_per_edge() const noexcept {
    return k / 2;
  }
  [[nodiscard]] std::int32_t n_servers() const noexcept {
    return k * edge_per_pod() * servers_per_edge();
  }
};

class FatTree {
 public:
  FatTree(sim::Simulator& sim, const FatTreeConfig& cfg);

  [[nodiscard]] Network& net() noexcept { return net_; }
  [[nodiscard]] const FatTreeConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] NodeId gateway() const noexcept { return gateway_; }
  [[nodiscard]] const std::vector<NodeId>& cores() const noexcept {
    return cores_;
  }
  /// Aggregation switch `a` (0..k/2-1) of pod `p`.
  [[nodiscard]] NodeId agg(std::size_t p, std::size_t a) const {
    return aggs_.at(p * static_cast<std::size_t>(cfg_.agg_per_pod()) + a);
  }
  /// Edge switch `e` (0..k/2-1) of pod `p`.
  [[nodiscard]] NodeId edge(std::size_t p, std::size_t e) const {
    return edges_.at(p * static_cast<std::size_t>(cfg_.edge_per_pod()) + e);
  }
  [[nodiscard]] const std::vector<NodeId>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] const std::vector<NodeId>& clients() const noexcept {
    return clients_;
  }

  [[nodiscard]] std::size_t pod_of_server(std::size_t s) const {
    return s / static_cast<std::size_t>(cfg_.edge_per_pod() *
                                        cfg_.servers_per_edge());
  }
  [[nodiscard]] std::size_t edge_index_of_server(std::size_t s) const {
    return (s / static_cast<std::size_t>(cfg_.servers_per_edge())) %
           static_cast<std::size_t>(cfg_.edge_per_pod());
  }

  [[nodiscard]] LinkId server_uplink(std::size_t s) const {
    return server_up_.at(s);
  }
  [[nodiscard]] LinkId server_downlink(std::size_t s) const {
    return server_down_.at(s);
  }

  /// Analytic server-to-server path (ordered link ids), independent of the
  /// dense routing tables: the regular fat-tree wiring makes every shortest
  /// path enumerable in O(1) from the stored link arrays. Among the
  /// equal-cost choices the aggregation/core hop is picked by splitmix64 of
  /// the flow id — the same ECMP hash ecmp_path() uses — so paths are
  /// deterministic per flow. src == dst returns an empty path.
  [[nodiscard]] std::vector<LinkId> server_path(std::size_t src,
                                                std::size_t dst,
                                                FlowId flow) const;

 private:
  FatTreeConfig cfg_;
  Network net_;
  NodeId gateway_ = kInvalidNode;
  std::vector<NodeId> cores_, aggs_, edges_, servers_, clients_;
  std::vector<LinkId> server_up_, server_down_;
  /// Fabric links indexed for analytic routing:
  ///   edge_agg_up_[(p*half + e)*half + a]   edge e of pod p -> agg a
  ///   agg_edge_down_[(p*half + e)*half + a] agg a -> edge e of pod p
  ///   agg_core_up_[(p*half + a)*half + i]   agg a of pod p -> core a*half+i
  ///   core_agg_down_[(p*half + a)*half + i] core a*half+i -> agg a of pod p
  std::vector<LinkId> edge_agg_up_, agg_edge_down_;
  std::vector<LinkId> agg_core_up_, core_agg_down_;
};

/// Enumerate every shortest path between two nodes (deterministic order).
/// Feasible for datacenter fabrics where the count is small; used by the
/// ECMP baseline (hash-pick) and exhaustive-search tests.
[[nodiscard]] std::vector<std::vector<LinkId>> all_shortest_paths(
    const Network& net, NodeId src, NodeId dst);

/// ECMP: pick among the equal-cost shortest paths by flow-id hash
/// (VL2 / Hedera's per-flow randomization, paper section XI).
[[nodiscard]] std::vector<LinkId> ecmp_path(const Network& net, NodeId src,
                                            NodeId dst, FlowId flow);

}  // namespace scda::net
