#include "net/packet_queue.h"

#include <utility>

namespace scda::net {

void PacketQueue::set_discipline(QueueDiscipline d) {
  if (d == discipline_) return;
  discipline_ = d;
  if (d == QueueDiscipline::kSjf) {
    rebuild_sjf_state();
  } else {
    sjf_order_.clear();  // chains are rebuilt on the next switch to SJF
  }
}

void PacketQueue::push(Packet&& p) {
  const NodeIndex n = acquire(std::move(p));
  Node& node = pool_[n];
  node.arrival = ++arrival_seq_;
  node.prev = tail_;
  node.next = kNull;
  node.flow_next = kNull;
  if (tail_ != kNull) {
    pool_[tail_].next = n;
  } else {
    head_ = n;
  }
  tail_ = n;
  ++size_;
  if (size_ > perf_.pool_hwm) perf_.pool_hwm = size_;

  if (discipline_ == QueueDiscipline::kSjf) {
    FlowState& st = flows_[node.pkt.flow];
    if (st.queued == 0) {
      st.head = st.tail = n;
      st.queued = 1;
      // The flow (re)joins the index keyed by its new oldest packet.
      index_insert(node.pkt.flow, st);
    } else {
      pool_[st.tail].flow_next = n;
      st.tail = n;
      ++st.queued;
    }
  }
}

PacketQueue::NodeIndex PacketQueue::select_next() {
  assert(size_ > 0);
  if (discipline_ != QueueDiscipline::kSjf || size_ == 1) return head_;
  assert(!sjf_order_.empty());
  ++perf_.sjf_selects;
  const FlowId flow = sjf_order_.begin()->flow;
  const auto it = flows_.find(flow);
  assert(it != flows_.end() && it->second.head != kNull);
  return it->second.head;
}

Packet PacketQueue::take(NodeIndex n) {
  Node& node = pool_[n];
  if (discipline_ == QueueDiscipline::kSjf) {
    const auto it = flows_.find(node.pkt.flow);
    assert(it != flows_.end());
    FlowState& st = it->second;
    // Service is always the flow's oldest packet, so unlinking the chain
    // head is O(1).
    assert(st.head == n);
    index_erase(node.pkt.flow, st);
    st.head = node.flow_next;
    if (st.head == kNull) st.tail = kNull;
    --st.queued;
    if (st.queued > 0) index_insert(node.pkt.flow, st);
  }
  unlink_global(n);
  --size_;
  Packet out = std::move(node.pkt);
  release(n);
  return out;
}

void PacketQueue::note_transmitted(FlowId flow) {
  if (discipline_ != QueueDiscipline::kSjf) return;
  FlowState& st = flows_[flow];
  if (st.queued > 0) index_erase(flow, st);
  ++st.tx_count;
  if (st.queued > 0) index_insert(flow, st);
}

PacketQueue::NodeIndex PacketQueue::acquire(Packet&& p) {
  if (free_head_ != kNull) {
    const NodeIndex n = free_head_;
    free_head_ = pool_[n].next;
    pool_[n].pkt = std::move(p);
    return n;
  }
  pool_.push_back(Node{std::move(p), kNull, kNull, kNull, 0});
  return static_cast<NodeIndex>(pool_.size() - 1);
}

void PacketQueue::release(NodeIndex n) noexcept {
  pool_[n].next = free_head_;
  free_head_ = n;
}

void PacketQueue::unlink_global(NodeIndex n) noexcept {
  Node& node = pool_[n];
  if (node.prev != kNull) {
    pool_[node.prev].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != kNull) {
    pool_[node.next].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
}

void PacketQueue::index_insert(FlowId flow, const FlowState& st) {
  assert(st.queued > 0 || st.head != kNull);
  sjf_order_.insert(SjfKey{st.tx_count, pool_[st.head].arrival, flow});
}

void PacketQueue::index_erase(FlowId flow, const FlowState& st) {
  const auto it =
      sjf_order_.find(SjfKey{st.tx_count, pool_[st.head].arrival, flow});
  assert(it != sjf_order_.end());
  sjf_order_.erase(it);
}

void PacketQueue::rebuild_sjf_state() {
  sjf_order_.clear();
  for (auto& [flow, st] : flows_) {
    st.head = st.tail = kNull;
    st.queued = 0;
  }
  // Walk the arrival-order list so per-flow chains stay FIFO.
  for (NodeIndex n = head_; n != kNull; n = pool_[n].next) {
    Node& node = pool_[n];
    node.flow_next = kNull;
    FlowState& st = flows_[node.pkt.flow];
    if (st.queued == 0) {
      st.head = st.tail = n;
      st.queued = 1;
    } else {
      pool_[st.tail].flow_next = n;
      st.tail = n;
      ++st.queued;
    }
  }
  for (const auto& [flow, st] : flows_) {
    if (st.queued > 0) index_insert(flow, st);
  }
}

}  // namespace scda::net
