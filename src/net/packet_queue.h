// PacketQueue: pool-backed link queue with O(1) FIFO service and
// O(log F) SJF service (F = flows currently queued).
//
// Packets live in recycled pool slots threaded onto two lists: a global
// doubly-linked arrival-order list (FIFO service, middle removal for SJF)
// and a per-flow singly-linked chain. The SJF discipline (paper section
// IV-B: serve the queued packet whose flow has transmitted the fewest
// packets on this link) keeps an ordered index of queued flows keyed by
// (tx-count, arrival of the flow's oldest packet), replacing the seed's
// O(n) whole-queue scan per transmitted packet. Ties on tx-count go to
// the flow that has waited longest, and within a flow service is strictly
// FIFO — so SJF can no longer reorder packets of the same flow, which the
// seed's swap-to-front scan could.
#pragma once

#include <cassert>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/packet.h"

namespace scda::net {

/// Queueing discipline (paper section IV-B).
///   kFifo — classic drop-tail FIFO (default, what the evaluation uses)
///   kSjf  — OpenFlow-switch SJF approximation: the switch keeps a packet
///           count per flow and always serves the queued packet whose flow
///           has sent the fewest packets so far; flows that already sent a
///           lot are implicitly de-prioritized (their ACKs are delayed).
enum class QueueDiscipline : std::uint8_t { kFifo, kSjf };

class PacketQueue {
 public:
  using NodeIndex = std::uint32_t;
  static constexpr NodeIndex kNull = 0xFFFFFFFFu;

  struct Perf {
    std::uint64_t pool_hwm = 0;    ///< peak concurrently queued packets
    std::uint64_t sjf_selects = 0; ///< SJF selections served from the index
  };

  PacketQueue() = default;
  PacketQueue(const PacketQueue&) = delete;
  PacketQueue& operator=(const PacketQueue&) = delete;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Pool slots ever allocated (recycled; bounded by peak queue depth).
  [[nodiscard]] std::size_t pool_capacity() const noexcept {
    return pool_.size();
  }
  [[nodiscard]] const Perf& perf() const noexcept { return perf_; }

  [[nodiscard]] QueueDiscipline discipline() const noexcept {
    return discipline_;
  }
  /// Switch discipline; safe with packets queued (the SJF index is rebuilt
  /// from the arrival-order list). Flow tx-counts persist across switches
  /// and start from zero the first time SJF is enabled.
  void set_discipline(QueueDiscipline d);

  /// Append a packet (arrival order). O(1) for FIFO; O(log F) when the
  /// packet's flow joins the SJF index.
  void push(Packet&& p);

  /// Pick the packet to serve next per the discipline, without removing
  /// it. The returned handle stays valid until take() — pushes never move
  /// pooled packets.
  [[nodiscard]] NodeIndex select_next();

  [[nodiscard]] const Packet& packet(NodeIndex n) const noexcept {
    return pool_[n].pkt;
  }

  /// Remove a previously selected packet from the queue.
  Packet take(NodeIndex n);

  /// Account one transmitted packet against `flow` (SJF bookkeeping;
  /// counts only advance while the SJF discipline is active, matching the
  /// OpenFlow Cnt_j counter that exists only on SJF switches).
  void note_transmitted(FlowId flow);

  /// Peak tx-count bookkeeping, exposed for tests.
  [[nodiscard]] std::uint64_t tx_count(FlowId flow) const {
    const auto it = flows_.find(flow);
    return it == flows_.end() ? 0 : it->second.tx_count;
  }

 private:
  struct Node {
    Packet pkt;
    NodeIndex prev = kNull;       ///< global arrival-order list
    NodeIndex next = kNull;
    NodeIndex flow_next = kNull;  ///< per-flow FIFO chain
    std::uint64_t arrival = 0;
  };

  struct FlowState {
    std::uint64_t tx_count = 0;
    NodeIndex head = kNull;  ///< oldest queued packet of the flow
    NodeIndex tail = kNull;
    std::uint32_t queued = 0;
  };

  /// SJF service order: lowest tx-count first, then longest-waiting flow.
  struct SjfKey {
    std::uint64_t count;
    std::uint64_t arrival;  ///< arrival of the flow's oldest queued packet
    FlowId flow;
    bool operator<(const SjfKey& o) const noexcept {
      if (count != o.count) return count < o.count;
      if (arrival != o.arrival) return arrival < o.arrival;
      return flow < o.flow;
    }
  };

  NodeIndex acquire(Packet&& p);
  void release(NodeIndex n) noexcept;
  void unlink_global(NodeIndex n) noexcept;
  void index_insert(FlowId flow, const FlowState& st);
  void index_erase(FlowId flow, const FlowState& st);
  void rebuild_sjf_state();

  std::vector<Node> pool_;
  NodeIndex free_head_ = kNull;
  NodeIndex head_ = kNull;  ///< global arrival-order list
  NodeIndex tail_ = kNull;
  std::size_t size_ = 0;
  std::uint64_t arrival_seq_ = 0;

  QueueDiscipline discipline_ = QueueDiscipline::kFifo;
  /// Per-flow state; chains/index only maintained while SJF is active.
  std::unordered_map<FlowId, FlowState> flows_;
  /// SJF needs min-remaining-size selection with arbitrary removal; an
  /// ordered index is the data structure, and it is only populated while
  /// the SJF discipline is active (see `sjf_selects` in docs/perf.md).
  // scda-lint: allow(map-hot-path)
  std::set<SjfKey> sjf_order_;

  Perf perf_;
};

}  // namespace scda::net
