#include "net/general_topology.h"

#include <string>

namespace scda::net {

LeafSpine::LeafSpine(sim::Simulator& sim, const LeafSpineConfig& cfg)
    : cfg_(cfg), net_(sim) {
  gateway_ = net_.add_node(NodeRole::kGateway, "gw");

  for (std::int32_t s = 0; s < cfg.n_spines; ++s) {
    const NodeId spine =
        net_.add_node(NodeRole::kCoreSwitch, "spine" + std::to_string(s));
    spines_.push_back(spine);
    net_.add_duplex(spine, gateway_, cfg.gw_bps, cfg.dc_delay_s,
                    cfg.queue_limit_bytes);
  }

  for (std::int32_t l = 0; l < cfg.n_leaves; ++l) {
    const NodeId leaf =
        net_.add_node(NodeRole::kTorSwitch, "leaf" + std::to_string(l));
    leaves_.push_back(leaf);
    for (std::int32_t s = 0; s < cfg.n_spines; ++s) {
      auto [up, down] = net_.add_duplex(
          leaf, spines_[static_cast<std::size_t>(s)], cfg.fabric_bps,
          cfg.dc_delay_s, cfg.queue_limit_bytes);
      leaf_up_.push_back(up);
      leaf_down_.push_back(down);
    }
    for (std::int32_t s = 0; s < cfg.servers_per_leaf; ++s) {
      const std::size_t si = servers_.size();
      const NodeId srv =
          net_.add_node(NodeRole::kServer, "bs" + std::to_string(si));
      servers_.push_back(srv);
      auto [up, down] = net_.add_duplex(srv, leaf, cfg.server_bps,
                                        cfg.dc_delay_s,
                                        cfg.queue_limit_bytes);
      server_up_.push_back(up);
      server_down_.push_back(down);
    }
  }

  for (std::int32_t c = 0; c < cfg.n_clients; ++c) {
    const NodeId cl =
        net_.add_node(NodeRole::kClient, "ucl" + std::to_string(c));
    clients_.push_back(cl);
    net_.add_duplex(cl, gateway_, cfg.client_bps, cfg.wan_delay_s,
                    cfg.queue_limit_bytes);
  }

  net_.build_routes();
}

}  // namespace scda::net
