// Network: owns nodes and links, computes routes, moves packets.
//
// Routing is static shortest-path (BFS over hop count), computed once after
// the topology is built — appropriate for the tree topologies of the paper
// (unique paths) and deterministic for general graphs (lowest node id wins
// ties). Packets are forwarded hop-by-hop through drop-tail links.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace scda::net {

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- construction -------------------------------------------------------
  NodeId add_node(NodeRole role, std::string name);

  /// Add a unidirectional link from `a` to `b`. Returns its LinkId.
  LinkId add_link(NodeId a, NodeId b, sim::BitRate capacity,
                  double prop_delay_s, std::int64_t queue_limit_bytes);

  /// Add a full-duplex link (two unidirectional links with equal parameters).
  /// Returns {a->b id, b->a id}.
  std::pair<LinkId, LinkId> add_duplex(NodeId a, NodeId b,
                                       sim::BitRate capacity,
                                       double prop_delay_s,
                                       std::int64_t queue_limit_bytes);

  /// Compute next-hop tables. Must be called after the topology is final and
  /// before any traffic is injected.
  void build_routes();

  /// Whether the dense next-hop tables exist. Large fluid-only topologies
  /// (k=32 fat-tree: ~9.5k nodes -> ~90M table entries) skip build_routes()
  /// and compute paths analytically instead.
  [[nodiscard]] bool routes_built() const noexcept { return routes_built_; }
  /// Total next-hop table entries (0 when routes were never built). The
  /// scale guard tests assert this stays 0 for analytic-route topologies so
  /// builder memory remains O(links).
  [[nodiscard]] std::size_t route_table_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& row : next_hop_) n += row.size();
    return n;
  }

  // --- access ---------------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(checked(id)); }
  [[nodiscard]] const Node& node(NodeId id) const {
    return *nodes_.at(checked(id));
  }
  [[nodiscard]] Link& link(LinkId id) {
    return *links_.at(id.index());
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    return *links_.at(id.index());
  }

  /// The link leaving `a` towards neighbour `b`; kInvalidLink if none.
  [[nodiscard]] LinkId link_between(NodeId a, NodeId b) const;

  /// Next hop from `at` towards `dst`; kInvalidNode when unreachable.
  [[nodiscard]] NodeId next_hop(NodeId at, NodeId dst) const {
    return next_hop_.at(checked(at)).at(checked(dst));
  }

  /// Ordered link ids on the path src -> dst (empty when src == dst).
  /// Throws when dst is unreachable.
  [[nodiscard]] std::vector<LinkId> path(NodeId src, NodeId dst) const;

  /// Links leaving a node (adjacency view for custom route computation,
  /// e.g. the widest-path selector of paper section IX).
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId n) const {
    return out_links_.at(checked(n));
  }

  // --- per-flow source routing (general topologies, paper section IX) ----
  /// Pin a flow to an explicit path (ordered link ids). Packets of the
  /// flow follow the pinned path instead of the destination-based tables;
  /// ACKs and reverse traffic still use the default routes. The path must
  /// be contiguous.
  void pin_flow_route(FlowId flow, const std::vector<LinkId>& path);
  void unpin_flow_route(FlowId flow);
  [[nodiscard]] bool has_pinned_route(FlowId flow) const {
    return pinned_.count(flow) != 0;
  }

  // --- traffic --------------------------------------------------------------
  /// Inject a packet at its source node; it is forwarded hop-by-hop until it
  /// reaches `p.dst` (or is dropped at a full queue).
  void send(Packet&& p);

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }

 private:
  std::size_t checked(NodeId id) const {
    if (!id.valid() || id.index() >= nodes_.size())
      throw std::out_of_range("Network: bad node id");
    return id.index();
  }

  void forward(Packet&& p, NodeId at);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  /// adjacency: out_links_[node] = link ids leaving the node
  std::vector<std::vector<LinkId>> out_links_;
  /// next_hop_[src][dst] = neighbour node towards dst
  std::vector<std::vector<NodeId>> next_hop_;
  /// pinned_[flow][at-node] = outgoing link (source-routed flows)
  std::unordered_map<FlowId, std::unordered_map<NodeId, LinkId>> pinned_;
  bool routes_built_ = false;
};

}  // namespace scda::net
