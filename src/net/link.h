// Unidirectional link with a drop-tail queue.
//
// Models transmission (size/capacity) followed by propagation (fixed delay),
// exactly like an NS2 SimpleLink + DropTail queue. Links expose the two
// counters the SCDA paper reads from real switches (section IV): the
// instantaneous queue length Q(t) and the bytes that arrived during the
// current control interval L(t). Resource monitors/allocators sample both.
//
// The queue is a pool-backed PacketQueue (FIFO or OpenFlow-SJF service) and
// the propagation stage is a ring buffer, so the steady-state packet path
// performs no heap allocation.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>

#include "net/packet.h"
#include "net/packet_queue.h"
#include "sim/simulator.h"
#include "util/ring.h"

namespace scda::net {

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t enqueued_packets = 0;
  /// Bytes advanced analytically by fluid-mode flows (also counted in
  /// tx_bytes so utilization/power see one unified byte stream).
  std::uint64_t fluid_bytes = 0;
};

class Link {
 public:
  /// `deliver` is invoked at the downstream node after propagation.
  using DeliverFn = std::function<void(Packet&&)>;

  Link(sim::Simulator& sim, LinkId id, NodeId from, NodeId to,
       sim::BitRate capacity, double prop_delay_s,
       std::int64_t queue_limit_bytes)
      : sim_(sim),
        id_(id),
        from_(from),
        to_(to),
        capacity_(capacity),
        prop_delay_(sim::secs(prop_delay_s)),
        queue_limit_bytes_(queue_limit_bytes) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Select the queueing discipline. Safe to call at any time; kSjf starts
  /// counting flow packets from the moment it is enabled.
  void set_discipline(QueueDiscipline d) { queue_.set_discipline(d); }
  [[nodiscard]] QueueDiscipline discipline() const noexcept {
    return queue_.discipline();
  }

  /// NS2-style error model: drop each offered packet with probability `p`
  /// (in addition to drop-tail losses). Pass the simulation RNG so runs
  /// stay reproducible.
  void set_error_model(double p, sim::Rng* rng) {
    loss_probability_ = p;
    loss_rng_ = rng;
  }
  [[nodiscard]] double loss_probability() const noexcept {
    return loss_probability_;
  }

  /// Offer a packet to the link. Drop-tail if the queue is full.
  /// Returns false when dropped.
  bool enqueue(Packet&& p);

  // --- identification ----------------------------------------------------
  [[nodiscard]] LinkId id() const noexcept { return id_; }
  [[nodiscard]] NodeId from() const noexcept { return from_; }
  [[nodiscard]] NodeId to() const noexcept { return to_; }
  [[nodiscard]] sim::BitRate capacity() const noexcept { return capacity_; }
  /// Raw bits-per-second unwrap (JSON/trace emission boundary only).
  [[nodiscard]] double capacity_bps() const noexcept {
    return capacity_.bps();
  }
  /// Raise/lower the link capacity at runtime; models switching reserve or
  /// backup capacity into a congested path (paper section IV-A mitigation).
  void set_capacity(sim::BitRate c) noexcept {
    if (c > sim::BitRate{}) capacity_ = c;
  }
  // --- up/down state (failure injection; docs/scenarios.md) ---------------
  /// A down link refuses all offered packets (counted as drops) and is
  /// treated as zero-capacity by the rate allocator, parking fluid flows.
  /// Packets already transmitted keep propagating: a physical cut loses
  /// what is on the wire *behind* the cut, and the queue is behind it.
  void set_up(bool up) noexcept { up_ = up; }
  [[nodiscard]] bool up() const noexcept { return up_; }

  /// Propagation delay as exact simulation time (the value every delivery
  /// deadline is built from; rounded once, at construction).
  [[nodiscard]] sim::Time prop_delay() const noexcept { return prop_delay_; }
  [[nodiscard]] double prop_delay_s() const noexcept {
    return prop_delay_.seconds();
  }
  [[nodiscard]] std::int64_t queue_limit_bytes() const noexcept {
    return queue_limit_bytes_;
  }

  // --- switch counters read by RM/RA (paper section IV) -------------------
  /// Current queue occupancy in bytes, Q(t).
  [[nodiscard]] std::int64_t queue_bytes() const noexcept {
    return queued_bytes_;
  }
  /// Bytes that arrived (were offered) since the counter was last taken;
  /// L(t) in the simplified rate metric (eq. 5). Resets the counter.
  [[nodiscard]] std::int64_t take_interval_arrived_bytes() noexcept {
    const auto v = interval_arrived_bytes_;
    interval_arrived_bytes_ = 0;
    return v;
  }
  /// Non-destructive view of the interval byte counter.
  [[nodiscard]] std::int64_t interval_arrived_bytes() const noexcept {
    return interval_arrived_bytes_;
  }

  // --- fluid-mode accounting (docs/fluid_engine.md) -----------------------
  // Fluid flows never enqueue packets; they charge the link in byte deltas
  // at each rate-allocation epoch. The bytes land in tx_bytes (utilization,
  // power) and in the L(t) interval counter (so the simplified rate metric
  // sees fluid load), but never in Q(t) — a fluid-only link is queueless by
  // construction.
  /// Charge `bytes` of analytically-advanced fluid traffic to the link.
  void add_fluid_bytes(std::int64_t bytes) noexcept {
    stats_.fluid_bytes += static_cast<std::uint64_t>(bytes);
    stats_.tx_bytes += static_cast<std::uint64_t>(bytes);
    interval_arrived_bytes_ += bytes;
  }
  /// A fluid flow starts/stops crossing the link (no queue entry).
  void fluid_flow_join() noexcept { ++fluid_flows_; }
  void fluid_flow_leave() noexcept {
    assert(fluid_flows_ > 0 && "fluid flow count underflow");
    --fluid_flows_;
  }
  /// Fluid flows currently crossing the link.
  [[nodiscard]] std::int32_t fluid_flows() const noexcept {
    return fluid_flows_;
  }

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  /// Queue-structure perf counters (pool high-water mark, SJF index use).
  [[nodiscard]] const PacketQueue::Perf& queue_perf() const noexcept {
    return queue_.perf();
  }
  [[nodiscard]] std::size_t queue_pool_capacity() const noexcept {
    return queue_.pool_capacity();
  }

  /// Long-run utilization in [0,1]: transmitted bits / (capacity * elapsed).
  [[nodiscard]] double utilization(double elapsed_s) const noexcept {
    if (elapsed_s <= 0) return 0;
    return static_cast<double>(stats_.tx_bytes) * 8.0 /
           (capacity_.bps() * elapsed_s);
  }

  /// Delay until the head of the propagation queue is due. Deadlines are
  /// exact integer-nanosecond sums of the same now + prop_delay values the
  /// timers were armed with, so a head that is past due is a scheduling
  /// bug, full stop — there is no floating-point drift to forgive. (The
  /// double-seconds era clamped few-ulp negatives here and counted them
  /// as `delivery_clamps`; that counter is gone because the condition is
  /// now structurally impossible.)
  [[nodiscard]] static sim::Time delivery_delay(sim::Time due,
                                                sim::Time now) noexcept {
    assert(due >= now && "propagation deadline in the past: scheduling bug");
    return due - now;
  }

 private:
  void start_transmission();
  void on_tx_complete();
  void deliver_head();
  /// Flight-recorder instant for a dropped packet (no-op when the
  /// simulator carries no trace recorder).
  void trace_drop(const Packet& p, const char* reason);

  sim::Simulator& sim_;
  LinkId id_;
  NodeId from_;
  NodeId to_;
  sim::BitRate capacity_;
  sim::Time prop_delay_;
  std::int64_t queue_limit_bytes_;

  PacketQueue queue_;
  /// Packet selected for the transmission in progress (owned by queue_
  /// until the tx-complete event takes it).
  PacketQueue::NodeIndex cur_node_ = PacketQueue::kNull;
  /// Packets transmitted and propagating: (arrival time, packet). FIFO
  /// because the propagation delay is constant, so one timer (for the head)
  /// suffices and the per-packet closure never captures the packet itself.
  util::Ring<std::pair<sim::Time, Packet>> inflight_;
  bool delivery_armed_ = false;
  std::int64_t queued_bytes_ = 0;
  std::int64_t interval_arrived_bytes_ = 0;
  std::int32_t fluid_flows_ = 0;
  bool transmitting_ = false;
  bool up_ = true;

  DeliverFn deliver_;
  LinkStats stats_;
  double loss_probability_ = 0.0;
  sim::Rng* loss_rng_ = nullptr;
};

}  // namespace scda::net
