// Unidirectional link with a drop-tail FIFO queue.
//
// Models transmission (size/capacity) followed by propagation (fixed delay),
// exactly like an NS2 SimpleLink + DropTail queue. Links expose the two
// counters the SCDA paper reads from real switches (section IV): the
// instantaneous queue length Q(t) and the bytes that arrived during the
// current control interval L(t). Resource monitors/allocators sample both.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <unordered_map>
#include <functional>
#include <utility>

#include "net/packet.h"
#include "sim/simulator.h"

namespace scda::net {

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t enqueued_packets = 0;
};

/// Queueing discipline (paper section IV-B).
///   kFifo — classic drop-tail FIFO (default, what the evaluation uses)
///   kSjf  — OpenFlow-switch SJF approximation: the switch keeps a packet
///           count per flow and always serves the queued packet whose flow
///           has sent the fewest packets so far; flows that already sent a
///           lot are implicitly de-prioritized (their ACKs are delayed).
enum class QueueDiscipline : std::uint8_t { kFifo, kSjf };

class Link {
 public:
  /// `deliver` is invoked at the downstream node after propagation.
  using DeliverFn = std::function<void(Packet&&)>;

  Link(sim::Simulator& sim, LinkId id, NodeId from, NodeId to,
       double capacity_bps, double prop_delay_s, std::int64_t queue_limit_bytes)
      : sim_(sim),
        id_(id),
        from_(from),
        to_(to),
        capacity_bps_(capacity_bps),
        prop_delay_s_(prop_delay_s),
        queue_limit_bytes_(queue_limit_bytes) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Select the queueing discipline. Safe to call at any time; kSjf starts
  /// counting flow packets from the moment it is enabled.
  void set_discipline(QueueDiscipline d) noexcept { discipline_ = d; }
  [[nodiscard]] QueueDiscipline discipline() const noexcept {
    return discipline_;
  }

  /// NS2-style error model: drop each offered packet with probability `p`
  /// (in addition to drop-tail losses). Pass the simulation RNG so runs
  /// stay reproducible.
  void set_error_model(double p, sim::Rng* rng) {
    loss_probability_ = p;
    loss_rng_ = rng;
  }
  [[nodiscard]] double loss_probability() const noexcept {
    return loss_probability_;
  }

  /// Offer a packet to the link. Drop-tail if the queue is full.
  /// Returns false when dropped.
  bool enqueue(Packet&& p);

  // --- identification ----------------------------------------------------
  [[nodiscard]] LinkId id() const noexcept { return id_; }
  [[nodiscard]] NodeId from() const noexcept { return from_; }
  [[nodiscard]] NodeId to() const noexcept { return to_; }
  [[nodiscard]] double capacity_bps() const noexcept { return capacity_bps_; }
  /// Raise/lower the link capacity at runtime; models switching reserve or
  /// backup capacity into a congested path (paper section IV-A mitigation).
  void set_capacity_bps(double c) noexcept {
    if (c > 0) capacity_bps_ = c;
  }
  [[nodiscard]] double prop_delay_s() const noexcept { return prop_delay_s_; }
  [[nodiscard]] std::int64_t queue_limit_bytes() const noexcept {
    return queue_limit_bytes_;
  }

  // --- switch counters read by RM/RA (paper section IV) -------------------
  /// Current queue occupancy in bytes, Q(t).
  [[nodiscard]] std::int64_t queue_bytes() const noexcept {
    return queued_bytes_;
  }
  /// Bytes that arrived (were offered) since the counter was last taken;
  /// L(t) in the simplified rate metric (eq. 5). Resets the counter.
  [[nodiscard]] std::int64_t take_interval_arrived_bytes() noexcept {
    const auto v = interval_arrived_bytes_;
    interval_arrived_bytes_ = 0;
    return v;
  }
  /// Non-destructive view of the interval byte counter.
  [[nodiscard]] std::int64_t interval_arrived_bytes() const noexcept {
    return interval_arrived_bytes_;
  }

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }

  /// Long-run utilization in [0,1]: transmitted bits / (capacity * elapsed).
  [[nodiscard]] double utilization(double elapsed_s) const noexcept {
    if (elapsed_s <= 0) return 0;
    return static_cast<double>(stats_.tx_bytes) * 8.0 /
           (capacity_bps_ * elapsed_s);
  }

 private:
  void start_transmission();
  void on_tx_complete();
  void deliver_head();
  /// Move the next packet to serve (per the discipline) to queue_.front().
  void select_next_packet();

  sim::Simulator& sim_;
  LinkId id_;
  NodeId from_;
  NodeId to_;
  double capacity_bps_;
  double prop_delay_s_;
  std::int64_t queue_limit_bytes_;

  std::deque<Packet> queue_;
  /// Packets transmitted and propagating: (arrival time, packet). FIFO
  /// because the propagation delay is constant, so one timer (for the head)
  /// suffices and the per-packet closure never captures the packet itself.
  std::deque<std::pair<sim::Time, Packet>> inflight_;
  bool delivery_armed_ = false;
  std::int64_t queued_bytes_ = 0;
  std::int64_t interval_arrived_bytes_ = 0;
  bool transmitting_ = false;

  DeliverFn deliver_;
  LinkStats stats_;
  QueueDiscipline discipline_ = QueueDiscipline::kFifo;
  double loss_probability_ = 0.0;
  sim::Rng* loss_rng_ = nullptr;
  /// Per-flow packets transmitted (the OpenFlow Cnt_j counter, sec IV-B);
  /// only maintained while the SJF discipline is active.
  std::unordered_map<FlowId, std::uint64_t> flow_tx_count_;
};

}  // namespace scda::net
