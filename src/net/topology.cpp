#include "net/topology.h"

#include <string>

namespace scda::net {

ThreeTierTree::ThreeTierTree(sim::Simulator& sim, const TopologyConfig& cfg)
    : cfg_(cfg), net_(sim) {
  gateway_ = net_.add_node(NodeRole::kGateway, "gw");
  core_ = net_.add_node(NodeRole::kCoreSwitch, "core");

  const auto q = cfg.queue_limit_bytes;
  const sim::BitRate x = cfg.base_bps;

  // Core <-> Gateway at 6X (level 3).
  {
    auto [up, down] = net_.add_duplex(core_, gateway_, cfg.core_gw_mult * x,
                                      cfg.dc_delay_s, q);
    core_up_ = up;
    core_down_ = down;
  }

  for (std::int32_t a = 0; a < cfg.n_agg; ++a) {
    const NodeId agg =
        net_.add_node(NodeRole::kAggSwitch, "agg" + std::to_string(a));
    aggs_.push_back(agg);
    auto [up, down] =
        net_.add_duplex(agg, core_, cfg.k_factor * x, cfg.dc_delay_s, q);
    agg_up_.push_back(up);
    agg_down_.push_back(down);

    for (std::int32_t t = 0; t < cfg.tors_per_agg; ++t) {
      const std::size_t ti = tors_.size();
      const NodeId tor =
          net_.add_node(NodeRole::kTorSwitch, "tor" + std::to_string(ti));
      tors_.push_back(tor);
      auto [tup, tdown] = net_.add_duplex(tor, agg, x, cfg.dc_delay_s, q);
      tor_up_.push_back(tup);
      tor_down_.push_back(tdown);

      for (std::int32_t s = 0; s < cfg.servers_per_tor; ++s) {
        const std::size_t si = servers_.size();
        const NodeId srv =
            net_.add_node(NodeRole::kServer, "bs" + std::to_string(si));
        servers_.push_back(srv);
        auto [sup, sdown] = net_.add_duplex(srv, tor, x, cfg.dc_delay_s, q);
        server_up_.push_back(sup);
        server_down_.push_back(sdown);
      }
    }
  }

  for (std::int32_t c = 0; c < cfg.n_clients; ++c) {
    const NodeId cl =
        net_.add_node(NodeRole::kClient, "ucl" + std::to_string(c));
    clients_.push_back(cl);
    net_.add_duplex(cl, gateway_, x, cfg.wan_delay_s, q);
  }

  net_.build_routes();
}

}  // namespace scda::net
