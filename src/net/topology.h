// Datacenter topologies (paper figures 1 and 6).
//
// The evaluation topology is a three-tier tree: block servers under
// top-of-rack switches, ToRs under aggregation switches, aggregation
// switches under one core switch, and a WAN gateway where the user clients
// (UCLs) attach over 50 ms links. Link capacities follow figure 6:
//
//   server <-> ToR      : X
//   ToR    <-> Agg      : X
//   Agg    <-> Core     : K * X        (the "bandwidth factor" K <= 6)
//   Core   <-> Gateway  : 6 * X
//   Client <-> Gateway  : X, 50 ms propagation
//
// Levels for the RM/RA hierarchy (hmax = 3):
//   level 0: server access links (monitored by RMs)
//   level 1: ToR uplinks/downlinks (level-1 RAs)
//   level 2: Agg uplinks/downlinks (level-2 RAs)
//   level 3: Core<->Gateway links (the top RA)
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace scda::net {

struct TopologyConfig {
  // shape
  std::int32_t n_agg = 4;             ///< aggregation switches
  std::int32_t tors_per_agg = 5;      ///< ToR switches per aggregation
  std::int32_t servers_per_tor = 8;   ///< block servers per ToR
  std::int32_t n_clients = 64;        ///< UCL clients on the WAN side

  // capacities (dimension-checked; k_factor/core_gw_mult are unitless)
  sim::BitRate base_bps{500e6};  ///< X in figure 6
  double k_factor = 3.0;    ///< K, multiplier on Agg<->Core links
  double core_gw_mult = 6.0;

  // propagation delays (seconds)
  double dc_delay_s = 10e-3;   ///< every intra-datacenter hop (figure 6)
  double wan_delay_s = 50e-3;  ///< client <-> gateway

  // drop-tail queue limit per link
  std::int64_t queue_limit_bytes = 256 * 1500;

  [[nodiscard]] std::int32_t n_tors() const noexcept {
    return n_agg * tors_per_agg;
  }
  [[nodiscard]] std::int32_t n_servers() const noexcept {
    return n_tors() * servers_per_tor;
  }
};

/// A built three-tier tree plus the level metadata the SCDA control plane
/// (RM/RA hierarchy) attaches to.
class ThreeTierTree {
 public:
  ThreeTierTree(sim::Simulator& sim, const TopologyConfig& cfg);

  [[nodiscard]] Network& net() noexcept { return net_; }
  [[nodiscard]] const Network& net() const noexcept { return net_; }
  [[nodiscard]] const TopologyConfig& config() const noexcept { return cfg_; }

  // node groups
  [[nodiscard]] NodeId gateway() const noexcept { return gateway_; }
  [[nodiscard]] NodeId core() const noexcept { return core_; }
  [[nodiscard]] const std::vector<NodeId>& aggs() const noexcept {
    return aggs_;
  }
  [[nodiscard]] const std::vector<NodeId>& tors() const noexcept {
    return tors_;
  }
  [[nodiscard]] const std::vector<NodeId>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] const std::vector<NodeId>& clients() const noexcept {
    return clients_;
  }

  // level-0 links: per server index
  //   uplink   = server -> ToR (data read out of the server)
  //   downlink = ToR -> server (data written into the server)
  [[nodiscard]] LinkId server_uplink(std::size_t s) const {
    return server_up_.at(s);
  }
  [[nodiscard]] LinkId server_downlink(std::size_t s) const {
    return server_down_.at(s);
  }

  // level-1 links: per ToR index (up = ToR->Agg, down = Agg->ToR)
  [[nodiscard]] LinkId tor_uplink(std::size_t t) const { return tor_up_.at(t); }
  [[nodiscard]] LinkId tor_downlink(std::size_t t) const {
    return tor_down_.at(t);
  }

  // level-2 links: per Agg index (up = Agg->Core, down = Core->Agg)
  [[nodiscard]] LinkId agg_uplink(std::size_t a) const { return agg_up_.at(a); }
  [[nodiscard]] LinkId agg_downlink(std::size_t a) const {
    return agg_down_.at(a);
  }

  // level-3 links (up = Core->Gateway, down = Gateway->Core)
  [[nodiscard]] LinkId core_uplink() const noexcept { return core_up_; }
  [[nodiscard]] LinkId core_downlink() const noexcept { return core_down_; }

  // structure
  [[nodiscard]] std::size_t tor_of_server(std::size_t s) const {
    return s / static_cast<std::size_t>(cfg_.servers_per_tor);
  }
  [[nodiscard]] std::size_t agg_of_tor(std::size_t t) const {
    return t / static_cast<std::size_t>(cfg_.tors_per_agg);
  }

 private:
  TopologyConfig cfg_;
  Network net_;
  NodeId gateway_ = kInvalidNode;
  NodeId core_ = kInvalidNode;
  std::vector<NodeId> aggs_;
  std::vector<NodeId> tors_;
  std::vector<NodeId> servers_;
  std::vector<NodeId> clients_;
  std::vector<LinkId> server_up_, server_down_;
  std::vector<LinkId> tor_up_, tor_down_;
  std::vector<LinkId> agg_up_, agg_down_;
  LinkId core_up_ = kInvalidLink;
  LinkId core_down_ = kInvalidLink;
};

}  // namespace scda::net
