#include "runner/experiment.h"

#include "sim/simulator.h"
#include "stats/collector.h"
#include "stats/metrics_collect.h"
#include "stats/perf.h"
#include "stats/throughput.h"
#include "util/log.h"

namespace scda::runner {

stats::RunResult run_once(const ExperimentConfig& cfg,
                          core::PlacementPolicy placement,
                          transport::TransportKind transport,
                          const AfctBinning& binning) {
  sim::Simulator sim(cfg.seed);

  // Attach observability before the Cloud is built so construction-time
  // activity is visible to the flight recorder. The bundle lives on this
  // stack frame: it dies with the run, and the simulator only ever holds a
  // borrowed pointer.
  obs::Observability observ;
  const bool want_obs = cfg.obs.metrics || !cfg.obs.trace_path.empty();
  if (want_obs) {
    if (!cfg.obs.trace_path.empty()) {
      observ.enable_trace(cfg.obs.trace_capacity);
    }
    sim.set_observability(&observ);
  }

  core::CloudConfig cc;
  cc.topology = cfg.topology;
  cc.params = cfg.params;
  cc.placement = placement;
  cc.transport = transport;
  cc.enable_replication = cfg.enable_replication;
  cc.fluid = cfg.fluid;
  cc.churn = cfg.churn;
  if (cc.churn.enabled && cc.churn.horizon_s <= 0.0)
    cc.churn.horizon_s = cfg.sim_time_s;

  core::Cloud cloud(sim, cc);
  stats::FlowStatsCollector collector(cloud);
  stats::ThroughputSampler thpt(sim, cloud.transports(),
                                cfg.throughput_interval_s);

  workload::WorkloadDriver driver(cloud, cfg.make_generator(), cfg.driver);
  driver.start();

  stats::RunResult r;
  r.events = sim.run_until(sim::secs(cfg.sim_time_s));
  thpt.stop();

  r.summary = collector.summary();
  r.throughput = thpt.series();
  r.fct_cdf = collector.fct_cdf();
  r.afct = collector.afct_by_size(binning.bin_bytes, binning.max_bytes);
  // Mean instantaneous throughput over the arrival window (the paper's
  // figures span the 100 s of arrivals); the drain tail would otherwise
  // penalize the system that finishes its backlog *earlier*.
  {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& s : r.throughput) {
      if (s.time_s <= cfg.driver.end_time_s) {
        sum += s.kbytes_per_s;
        ++n;
      }
    }
    r.mean_throughput_kbs = n ? sum / static_cast<double>(n) : 0.0;
  }
  r.sla_violations = cloud.allocator().sla_violations();
  r.failed_reads = cloud.failed_reads();
  r.energy_j = cloud.total_energy_j();
  r.flows_completed = collector.count();
  r.perf = stats::collect_core_perf(sim, cloud.topology().net());

  if (cfg.obs.metrics) {
    stats::collect_run_metrics(observ.metrics(), sim, cloud);
    r.metrics = observ.metrics().snapshot();
  }
  if (obs::TraceRecorder* tr = observ.tracer()) {
    if (!tr->write_file(cfg.obs.trace_path))
      SCDA_LOG_ERROR("obs: cannot write trace file %s",
                     cfg.obs.trace_path.c_str());
  }
  sim.set_observability(nullptr);
  return r;
}

}  // namespace scda::runner
