#include "runner/worker_pool.h"

#include <cstdlib>

namespace scda::runner {

WorkerPool::WorkerPool(unsigned workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(std::size_t n_jobs,
                     const std::function<void(std::size_t)>& job) {
  if (n_jobs == 0) return;
  if (threads_.empty()) {
    // Single-worker pool: plain inline loop, no synchronization.
    for (std::size_t i = 0; i < n_jobs; ++i) job(i);
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    // A worker that woke late for the previous batch may still be inside
    // work_through() (it will claim an out-of-range index and park). Wait
    // for it before touching batch state.
    cv_done_.wait(lk, [&] { return busy_ == 0; });
    job_ = &job;
    n_jobs_ = n_jobs;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
    first_error_ = nullptr;
    first_error_index_ = 0;
    ++epoch_;
  }
  cv_start_.notify_all();

  work_through();  // the calling thread is a worker too

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return done_ == n_jobs_; });
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      ++busy_;
    }
    work_through();
    bool idle = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      idle = --busy_ == 0;
    }
    if (idle) cv_done_.notify_all();
  }
}

void WorkerPool::work_through() {
  std::size_t finished = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_jobs_) break;
    std::exception_ptr err;
    try {
      (*job_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      std::lock_guard<std::mutex> lk(mu_);
      // Keep the exception from the lowest job index so the rethrown
      // error is deterministic regardless of thread interleaving.
      if (!first_error_ || i < first_error_index_) {
        first_error_ = err;
        first_error_index_ = i;
      }
    }
    ++finished;
  }
  if (finished > 0) {
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_ += finished;
      all_done = done_ == n_jobs_;
    }
    if (all_done) cv_done_.notify_all();
  }
}

unsigned default_workers() {
  if (const char* env = std::getenv("SCDA_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace scda::runner
