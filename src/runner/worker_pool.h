// Fixed-size worker pool for sharding independent simulation runs across
// cores.
//
// The pool owns n-1 background threads; the thread that calls run()
// participates as the n-th worker, so WorkerPool(1) degenerates to a plain
// inline loop with zero synchronization overhead. Jobs are claimed from an
// atomic counter, which keeps dispatch deterministic-friendly: the *set* of
// jobs executed is always exactly {0..n_jobs-1} each exactly once, and
// callers that write results into a pre-sized slot per job index get
// output independent of scheduling order.
//
// Exception policy: a throwing job never short-circuits the batch (other
// workers finish their claimed jobs), and the exception rethrown to the
// run() caller is the one from the *lowest job index* that threw — again a
// pure function of the job set, not of thread interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scda::runner {

class WorkerPool {
 public:
  /// `workers` is the total parallelism (threads doing work), including the
  /// caller of run(); the pool spawns workers-1 background threads.
  /// 0 is clamped to 1.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Run job(i) for every i in [0, n_jobs), sharded across the workers.
  /// Blocks until all jobs completed. If any job threw, rethrows the
  /// exception of the lowest-index throwing job after the batch finishes.
  /// Not reentrant: one run() at a time per pool.
  void run(std::size_t n_jobs, const std::function<void(std::size_t)>& job);

 private:
  void worker_loop();
  void work_through();  ///< claim and execute jobs until the batch is empty

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;     ///< bumped per run(); wakes the workers
  std::size_t busy_ = 0;        ///< background workers inside work_through()
  bool stopping_ = false;

  // Per-batch state. Written by run() only while busy_ == 0 (no background
  // worker can be touching it), read by workers between wake and re-park.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t n_jobs_ = 0;
  std::atomic<std::size_t> next_{0};     ///< next unclaimed job index
  std::size_t done_ = 0;                 ///< finished jobs (under mu_)
  std::size_t first_error_index_ = 0;    ///< lowest job index that threw
  std::exception_ptr first_error_;       ///< its exception (under mu_)
};

/// Worker count from the environment (`SCDA_WORKERS`), falling back to
/// std::thread::hardware_concurrency(), falling back to 1.
[[nodiscard]] unsigned default_workers();

/// Map `items` through `fn` on `pool`, preserving order: out[i] = fn(in[i]).
/// Out must be default-constructible and movable.
template <typename Out, typename In, typename Fn>
std::vector<Out> parallel_map(WorkerPool& pool, const std::vector<In>& items,
                              Fn&& fn) {
  std::vector<Out> out(items.size());
  pool.run(items.size(),
           [&](std::size_t i) { out[i] = fn(items[i], i); });
  return out;
}

}  // namespace scda::runner
