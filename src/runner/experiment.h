// One simulated experiment run: configuration in, stats::RunResult out.
//
// Moved out of bench/harness.h so the sweep runner, the CLI tools and the
// benchmarks all execute runs through the same code path. Each run_once()
// call builds a private sim::Simulator and Cloud, so concurrent calls from
// different threads are fully isolated — the only requirement on the
// caller is that `make_generator` is safe to invoke concurrently (it is a
// pure factory in every workload we ship).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/cloud.h"
#include "obs/observability.h"
#include "stats/run_result.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace scda::runner {

struct ExperimentConfig {
  std::string name;
  net::TopologyConfig topology;
  core::ScdaParams params;
  workload::DriverConfig driver;
  std::function<std::unique_ptr<workload::Generator>()> make_generator;
  /// Simulated span: arrivals stop at driver.end_time_s; the run continues
  /// to drain in-flight transfers until this time.
  double sim_time_s = 120.0;
  double throughput_interval_s = 1.0;
  std::uint64_t seed = 0x5cda2013ULL;
  /// The paper's figures measure client-visible transfers; internal
  /// replication traffic is left off by default in the figure benches and
  /// exercised by the ablation benches instead.
  bool enable_replication = false;
  /// Metrics snapshot + optional flight-recorder trace (docs/observability.md).
  obs::ObsConfig obs;
  /// Hybrid fluid/packet mode (docs/fluid_engine.md).
  transport::FluidConfig fluid;
  /// Failure injection (docs/scenarios.md). run_once() fills horizon_s with
  /// sim_time_s when the caller leaves it at 0.
  sim::ChurnConfig churn;
};

struct AfctBinning {
  double bin_bytes = 1e6;   ///< paper figs 9/12 bin by MB; 13/15 by ~KB
  double max_bytes = 90e6;
};

/// Execute one run on a fresh Simulator seeded with cfg.seed.
[[nodiscard]] stats::RunResult run_once(const ExperimentConfig& cfg,
                                        core::PlacementPolicy placement,
                                        transport::TransportKind transport,
                                        const AfctBinning& binning);

}  // namespace scda::runner
