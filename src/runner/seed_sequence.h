// Deterministic per-run seed derivation for replicated sweeps.
//
// Every run of a sweep derives its RNG seed from (base seed, replication
// index) through a splitmix64 mix, so the seed of replication r is a pure
// function of the spec — independent of worker count, completion order or
// which other runs exist. Replication 0 uses the base seed verbatim, which
// keeps single-seed sweeps byte-identical to the historical single-run
// benches.
#pragma once

#include <cstdint>

namespace scda::runner {

/// The splitmix64 finalizer (Steele, Lea & Flood; the mix java.util
/// .SplittableRandom uses): bijective, passes BigCrush when driven by a
/// Weyl sequence, and cheap enough to call per run.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed of replication `index` under `base`. Index 0 is the base seed
/// itself (single-seed back-compat); later indices step a Weyl sequence
/// through the splitmix64 mix.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t base, std::uint64_t index) noexcept {
  if (index == 0) return base;
  return splitmix64(base + index * 0x9E3779B97F4A7C15ULL);
}

}  // namespace scda::runner
