// SweepSpec: the declarative description of an experiment sweep — a base
// configuration, the arms to compare (placement x transport), an optional
// parameter grid, and a replication count — expanded into named runs with
// deterministically derived seeds.
//
// Determinism contract: expand_runs() is a pure function of the spec. Every
// RunSpec carries its expansion index, and run_sweep() writes results into
// a slot per index, so the SweepResult (and anything aggregated from it in
// run order) is byte-identical no matter how many workers executed it or in
// what order runs completed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runner/experiment.h"
#include "runner/worker_pool.h"
#include "stats/aggregate.h"

namespace scda::runner {

/// One system under comparison (e.g. SCDA vs the RandTCP baseline).
struct Arm {
  std::string label;
  core::PlacementPolicy placement = core::PlacementPolicy::kScda;
  transport::TransportKind transport = transport::TransportKind::kScda;
};

/// One swept parameter and the values it takes. Multiple axes form the
/// cross product; the first axis varies slowest.
struct GridAxis {
  std::string param;
  std::vector<double> values;
};

/// Hook for sweeping knobs apply_param() does not know (generator-specific
/// rates, enum choices, ...). Return true when the parameter was handled;
/// unhandled parameters fall through to the built-ins.
using ParamFn = std::function<bool(ExperimentConfig&, const std::string&,
                                   double)>;

struct SweepSpec {
  ExperimentConfig base;
  AfctBinning binning;
  std::vector<Arm> arms;
  std::vector<GridAxis> grid;   ///< empty = a single cell
  std::uint64_t seeds = 1;      ///< replications per (cell, arm)
  ParamFn custom_param;         ///< tried before the built-in knobs
  /// When non-empty, run index 0 (first cell, first arm, seed 0 — benches
  /// list the SCDA arm first) records a flight-recorder trace to this path
  /// (docs/observability.md). One run only: a sweep-wide recorder would
  /// interleave nondeterministically across workers.
  std::string trace_path;
};

/// One expanded run. Replication `seed_index` of every arm shares the same
/// derived seed, so arm comparisons are paired (common random numbers).
struct RunSpec {
  std::size_t index = 0;       ///< position in expansion order
  std::size_t cell_index = 0;  ///< grid cell (0 when the grid is empty)
  std::size_t arm_index = 0;
  std::uint64_t seed_index = 0;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> params;  ///< grid cell values
  std::string name;
};

struct SweepResult {
  std::vector<RunSpec> runs;               ///< expansion order
  std::vector<stats::RunResult> results;   ///< results[i] belongs to runs[i]
};

/// Replications of one (cell, arm) pair, ready for aggregation.
struct ArmSummary {
  std::size_t cell_index = 0;
  std::size_t arm_index = 0;
  std::string label;  ///< arm label, plus the cell's params when gridded
  std::vector<std::pair<std::string, double>> params;
  stats::RunAggregate agg;
};

/// Set `cfg`'s knob `name` to `value`. Covers the common topology, control
/// plane, and workload knobs; throws std::invalid_argument for unknown
/// names (extend via SweepSpec::custom_param instead).
void apply_param(ExperimentConfig& cfg, const std::string& name, double value);

/// Expand spec into runs: cells (first axis slowest) x arms x seeds, seeds
/// innermost. Pure function of the spec.
[[nodiscard]] std::vector<RunSpec> expand_runs(const SweepSpec& spec);

/// The concrete configuration run `run` executes: base with the cell's
/// parameters and the derived seed applied.
[[nodiscard]] ExperimentConfig make_run_config(const SweepSpec& spec,
                                               const RunSpec& run);

/// Execute every expanded run on `pool`. Results land in expansion order.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec, WorkerPool& pool);

/// Group a sweep's results by (cell, arm) — in expansion order — and
/// aggregate each group's replications.
[[nodiscard]] std::vector<ArmSummary> aggregate_sweep(const SweepSpec& spec,
                                                      const SweepResult& res);

}  // namespace scda::runner
