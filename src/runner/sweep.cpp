#include "runner/sweep.h"

#include <cstdio>
#include <stdexcept>

#include "runner/seed_sequence.h"

namespace scda::runner {

void apply_param(ExperimentConfig& cfg, const std::string& name,
                 double value) {
  // Control plane (core::ScdaParams).
  if (name == "tau") { cfg.params.tau = value; return; }
  if (name == "alpha") { cfg.params.alpha = value; return; }
  if (name == "beta") { cfg.params.beta = value; return; }
  if (name == "rscale_bps") { cfg.params.rscale = sim::BitRate{value}; return; }
  if (name == "rcvw_headroom") { cfg.params.rcvw_headroom = value; return; }
  if (name == "min_rate_bps") {
    cfg.params.min_rate = sim::BitRate{value};
    return;
  }
  if (name == "replicas") {
    cfg.params.replicas = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "n_name_nodes") {
    cfg.params.n_name_nodes = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "nns_service_time_s") {
    cfg.params.nns_service_time_s = value;
    return;
  }
  if (name == "migration_interval_s") {
    cfg.params.migration_interval_s = value;
    return;
  }
  // Topology (net::TopologyConfig).
  if (name == "base_bps") { cfg.topology.base_bps = sim::BitRate{value}; return; }
  if (name == "k_factor") { cfg.topology.k_factor = value; return; }
  if (name == "n_agg") {
    cfg.topology.n_agg = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "tors_per_agg") {
    cfg.topology.tors_per_agg = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "servers_per_tor") {
    cfg.topology.servers_per_tor = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "n_clients") {
    cfg.topology.n_clients = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "queue_limit_bytes") {
    cfg.topology.queue_limit_bytes = static_cast<std::int64_t>(value);
    return;
  }
  if (name == "dc_delay_s") { cfg.topology.dc_delay_s = value; return; }
  if (name == "wan_delay_s") { cfg.topology.wan_delay_s = value; return; }
  // Workload driver / run length.
  if (name == "end_time_s") { cfg.driver.end_time_s = value; return; }
  if (name == "sim_time_s") { cfg.sim_time_s = value; return; }
  if (name == "read_fraction") { cfg.driver.read_fraction = value; return; }
  if (name == "interactive_fraction") {
    cfg.driver.interactive_fraction = value;
    return;
  }
  if (name == "priority") { cfg.driver.priority = value; return; }
  if (name == "throughput_interval_s") {
    cfg.throughput_interval_s = value;
    return;
  }
  // Hybrid fluid/packet mode (docs/fluid_engine.md).
  if (name == "fluid") { cfg.fluid.enabled = value != 0; return; }
  if (name == "fluid_threshold_bytes") {
    cfg.fluid.threshold_bytes = static_cast<std::int64_t>(value);
    return;
  }
  if (name == "replicate") { cfg.enable_replication = value != 0; return; }
  // Failure injection (docs/scenarios.md).
  if (name == "churn") { cfg.churn.enabled = value != 0; return; }
  if (name == "server_mtbf_s") { cfg.churn.server_mtbf_s = value; return; }
  if (name == "server_mttr_s") { cfg.churn.server_mttr_s = value; return; }
  if (name == "link_mtbf_s") { cfg.churn.link_mtbf_s = value; return; }
  if (name == "link_mttr_s") { cfg.churn.link_mttr_s = value; return; }
  if (name == "churn_horizon_s") { cfg.churn.horizon_s = value; return; }
  if (name == "repair_priority") {
    cfg.params.repair_priority = value;
    return;
  }
  if (name == "max_concurrent_repairs") {
    cfg.params.max_concurrent_repairs = static_cast<std::int32_t>(value);
    return;
  }
  // Metadata-plane fault tolerance + rebalancing (docs/scenarios.md).
  if (name == "nns_mtbf_s") { cfg.churn.nns_mtbf_s = value; return; }
  if (name == "nns_mttr_s") { cfg.churn.nns_mttr_s = value; return; }
  if (name == "metadata_timeout_s") {
    cfg.params.metadata_timeout_s = value;
    return;
  }
  if (name == "metadata_max_attempts") {
    cfg.params.metadata_max_attempts = static_cast<std::int32_t>(value);
    return;
  }
  if (name == "rebalance_interval_s") {
    cfg.params.rebalance_interval_s = value;
    return;
  }
  if (name == "rebalance_priority") {
    cfg.params.rebalance_priority = value;
    return;
  }
  throw std::invalid_argument("apply_param: unknown parameter '" + name +
                              "' (use SweepSpec::custom_param)");
}

namespace {

std::size_t cell_count(const SweepSpec& spec) {
  std::size_t n = 1;
  for (const GridAxis& a : spec.grid) n *= a.values.size();
  return n;
}

/// The (param, value) pairs of grid cell `cell` (first axis slowest).
std::vector<std::pair<std::string, double>> cell_params(const SweepSpec& spec,
                                                        std::size_t cell) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(spec.grid.size());
  std::size_t stride = cell_count(spec);
  for (const GridAxis& a : spec.grid) {
    stride /= a.values.size();
    out.emplace_back(a.param, a.values[(cell / stride) % a.values.size()]);
  }
  return out;
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string run_name(const SweepSpec& spec, const RunSpec& r) {
  std::string n = spec.base.name;
  for (const auto& [param, value] : r.params)
    n += " " + param + "=" + format_value(value);
  n += " " + spec.arms[r.arm_index].label;
  if (spec.seeds > 1) n += " r" + std::to_string(r.seed_index);
  return n;
}

}  // namespace

std::vector<RunSpec> expand_runs(const SweepSpec& spec) {
  if (spec.arms.empty())
    throw std::invalid_argument("expand_runs: spec has no arms");
  const std::uint64_t seeds = spec.seeds ? spec.seeds : 1;
  std::vector<RunSpec> runs;
  runs.reserve(cell_count(spec) * spec.arms.size() * seeds);
  for (std::size_t cell = 0; cell < cell_count(spec); ++cell) {
    const auto params = cell_params(spec, cell);
    for (std::size_t arm = 0; arm < spec.arms.size(); ++arm) {
      for (std::uint64_t s = 0; s < seeds; ++s) {
        RunSpec r;
        r.index = runs.size();
        r.cell_index = cell;
        r.arm_index = arm;
        r.seed_index = s;
        r.seed = derive_seed(spec.base.seed, s);
        r.params = params;
        r.name = run_name(spec, r);
        runs.push_back(std::move(r));
      }
    }
  }
  return runs;
}

ExperimentConfig make_run_config(const SweepSpec& spec, const RunSpec& run) {
  ExperimentConfig cfg = spec.base;
  for (const auto& [param, value] : run.params) {
    if (spec.custom_param && spec.custom_param(cfg, param, value)) continue;
    apply_param(cfg, param, value);
  }
  cfg.seed = run.seed;
  cfg.name = run.name;
  if (!spec.trace_path.empty() && run.index == 0)
    cfg.obs.trace_path = spec.trace_path;
  return cfg;
}

SweepResult run_sweep(const SweepSpec& spec, WorkerPool& pool) {
  SweepResult out;
  out.runs = expand_runs(spec);
  out.results.resize(out.runs.size());
  pool.run(out.runs.size(), [&](std::size_t i) {
    const RunSpec& r = out.runs[i];
    const Arm& arm = spec.arms[r.arm_index];
    out.results[i] = run_once(make_run_config(spec, r), arm.placement,
                              arm.transport, spec.binning);
  });
  return out;
}

std::vector<ArmSummary> aggregate_sweep(const SweepSpec& spec,
                                        const SweepResult& res) {
  const std::uint64_t seeds = spec.seeds ? spec.seeds : 1;
  std::vector<ArmSummary> out;
  const std::size_t cells = cell_count(spec);
  out.reserve(cells * spec.arms.size());
  std::size_t i = 0;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    for (std::size_t arm = 0; arm < spec.arms.size(); ++arm) {
      ArmSummary s;
      s.cell_index = cell;
      s.arm_index = arm;
      s.params = cell_params(spec, cell);
      s.label = spec.arms[arm].label;
      for (const auto& [param, value] : s.params)
        s.label += " " + param + "=" + format_value(value);
      std::vector<const stats::RunResult*> group;
      group.reserve(seeds);
      for (std::uint64_t r = 0; r < seeds; ++r) {
        group.push_back(&res.results[i++]);
      }
      s.agg = stats::aggregate_runs(group);
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace scda::runner
