// SCDA logging: tiny leveled logger with compile-time cheap call sites.
//
// Intentionally minimal: the simulator is single-threaded per run, so no
// locking is needed.  Benchmarks run with the logger silenced (kWarn).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

namespace scda::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are skipped.
class Log {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel lv) noexcept { level_ = lv; }

  /// Redirect output (defaults to stderr). Not owned.
  static void set_sink(std::FILE* sink) noexcept { sink_ = sink; }

  static bool enabled(LogLevel lv) noexcept {
    return static_cast<int>(lv) >= static_cast<int>(level_);
  }

  template <typename... Args>
  static void write(LogLevel lv, const char* fmt, Args&&... args) {
    if (!enabled(lv)) return;
    std::fprintf(sink_, "[%s] ", name(lv));
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, sink_);
    } else {
      std::fprintf(sink_, fmt, std::forward<Args>(args)...);
    }
    std::fputc('\n', sink_);
  }

 private:
  static const char* name(LogLevel lv) noexcept {
    switch (lv) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  inline static LogLevel level_ = LogLevel::kWarn;
  inline static std::FILE* sink_ = stderr;
};

}  // namespace scda::util

#define SCDA_LOG_TRACE(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kTrace, __VA_ARGS__)
#define SCDA_LOG_DEBUG(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kDebug, __VA_ARGS__)
#define SCDA_LOG_INFO(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kInfo, __VA_ARGS__)
#define SCDA_LOG_WARN(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kWarn, __VA_ARGS__)
#define SCDA_LOG_ERROR(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kError, __VA_ARGS__)
