// SCDA logging: tiny leveled logger with compile-time cheap call sites.
//
// Thread-safe: the sweep runner executes simulations on several threads,
// and all of them share this global logger. The level and sink are
// atomics (relaxed — a level change becoming visible a few messages late
// is fine), and each message is formatted into a local buffer and handed
// to the sink in a single fwrite, so concurrent writers can interleave
// *lines* but never the bytes within one line.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scda::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are skipped.
class Log {
 public:
  static LogLevel level() noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel lv) noexcept {
    level_.store(lv, std::memory_order_relaxed);
  }

  /// Redirect output (defaults to stderr). Not owned. Swapping the sink
  /// while other threads log is safe (they finish their line into the old
  /// or new sink, never a torn one); the caller is responsible for the old
  /// FILE* outliving in-flight writes.
  static void set_sink(std::FILE* sink) noexcept {
    sink_.store(sink, std::memory_order_relaxed);
  }

  static bool enabled(LogLevel lv) noexcept {
    return static_cast<int>(lv) >= static_cast<int>(level());
  }

  template <typename... Args>
  static void write(LogLevel lv, const char* fmt, Args&&... args) {
    if (!enabled(lv)) return;
    char stack_buf[512];
    int body;
    if constexpr (sizeof...(Args) == 0) {
      body = std::snprintf(stack_buf, sizeof stack_buf, "[%s] %s\n", name(lv),
                           fmt);
    } else {
      char head[16];
      std::snprintf(head, sizeof head, "[%s] ", name(lv));
      std::memcpy(stack_buf, head, 8);
      body = std::snprintf(stack_buf + 8, sizeof stack_buf - 9, fmt,
                           std::forward<Args>(args)...);
      if (body >= 0) {
        const int used =
            body < static_cast<int>(sizeof stack_buf) - 9
                ? body
                : static_cast<int>(sizeof stack_buf) - 10;
        stack_buf[8 + used] = '\n';
        stack_buf[8 + used + 1] = '\0';
        body = 8 + used + 1;
      }
    }
    if (body < 0) return;  // encoding error: drop the message
    std::size_t len = static_cast<std::size_t>(body);
    if (len >= sizeof stack_buf) {  // truncated: keep the line terminated
      len = sizeof stack_buf - 1;
      stack_buf[len - 1] = '\n';
    }
    // One fwrite per line keeps concurrent writers' lines intact (POSIX
    // stdio locks the stream per call).
    std::fwrite(stack_buf, 1, len, sink_.load(std::memory_order_relaxed));
  }

 private:
  static const char* name(LogLevel lv) noexcept {
    switch (lv) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  inline static std::atomic<LogLevel> level_{LogLevel::kWarn};
  inline static std::atomic<std::FILE*> sink_{stderr};
};

}  // namespace scda::util

#define SCDA_LOG_TRACE(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kTrace, __VA_ARGS__)
#define SCDA_LOG_DEBUG(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kDebug, __VA_ARGS__)
#define SCDA_LOG_INFO(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kInfo, __VA_ARGS__)
#define SCDA_LOG_WARN(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kWarn, __VA_ARGS__)
#define SCDA_LOG_ERROR(...) \
  ::scda::util::Log::write(::scda::util::LogLevel::kError, __VA_ARGS__)
