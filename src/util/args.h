// Minimal command-line flag parser for the tools/ binaries.
//
// Supports:  --name value   --name=value   --flag   and positionals.
// Typed getters fall back to defaults when the flag is absent and throw
// std::invalid_argument on malformed values, so tools fail loudly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace scda::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(std::move(a));
        continue;
      }
      a = a.substr(2);
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        flags_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[a] = argv[++i];
      } else {
        flags_[a] = "";  // bare boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return flags_.count(name) != 0;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def = "") const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }

  [[nodiscard]] double get_double(const std::string& name, double def) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    try {
      std::size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                  it->second + "'");
    }
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + name +
                                  ": expected an integer, got '" +
                                  it->second + "'");
    }
  }

  [[nodiscard]] bool get_bool(const std::string& name, bool def) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    const std::string& v = it->second;
    if (v.empty() || v == "1" || v == "true" || v == "on") return true;
    if (v == "0" || v == "false" || v == "off") return false;
    throw std::invalid_argument("--" + name + ": expected a boolean, got '" +
                                v + "'");
  }

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names seen on the command line (for unknown-flag checks).
  [[nodiscard]] std::vector<std::string> flag_names() const {
    std::vector<std::string> out;
    out.reserve(flags_.size());
    for (const auto& [k, v] : flags_) out.push_back(k);
    return out;
  }

 private:
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace scda::util
