// Ring: a growable power-of-two ring buffer (FIFO).
//
// std::deque cycles chunk allocations under sustained push_back/pop_front
// (a new chunk every ~512 bytes of traffic); a link saturated at millions
// of packets per simulated second turns that into steady allocator churn.
// Ring reaches a steady state after warm-up: pushes and pops reuse the
// same storage and never touch the allocator again.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

namespace scda::util {

template <typename T>
class Ring {
 public:
  Ring() = default;

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  Ring(Ring&& o) noexcept
      : buf_(o.buf_), cap_(o.cap_), head_(o.head_), size_(o.size_) {
    o.buf_ = nullptr;
    o.cap_ = o.head_ = o.size_ = 0;
  }

  ~Ring() {
    clear();
    deallocate(buf_, cap_);
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Slots currently allocated (never shrinks; bounded by peak occupancy).
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  [[nodiscard]] T& front() noexcept {
    assert(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(size_ > 0);
    return buf_[head_];
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* slot = buf_ + ((head_ + size_) & (cap_ - 1));
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_front() noexcept {
    assert(size_ > 0);
    buf_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  void clear() noexcept {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  static T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
  }
  static void deallocate(T* p, std::size_t n) noexcept {
    if (p != nullptr)
      ::operator delete(p, n * sizeof(T), std::align_val_t(alignof(T)));
  }

  void grow() {
    const std::size_t ncap = cap_ == 0 ? kInitialCapacity : cap_ * 2;
    T* nbuf = allocate(ncap);
    for (std::size_t i = 0; i < size_; ++i) {
      T* src = buf_ + ((head_ + i) & (cap_ - 1));
      ::new (static_cast<void*>(nbuf + i)) T(std::move(*src));
      src->~T();
    }
    deallocate(buf_, cap_);
    buf_ = nbuf;
    cap_ = ncap;
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  T* buf_ = nullptr;
  std::size_t cap_ = 0;   ///< always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace scda::util
