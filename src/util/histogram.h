// Fixed-width and dynamic histograms used by the stats module and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace scda::util {

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so no sample is silently lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
    if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  }

  void add(double v, std::uint64_t weight = 1) {
    counts_[index(v)] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::size_t index(double v) const noexcept {
    if (v <= lo_) return 0;
    if (v >= hi_) return counts_.size() - 1;
    auto i = static_cast<std::size_t>((v - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
    return std::min(i, counts_.size() - 1);
  }

  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept {
    return bin_lo(i + 1);
  }
  [[nodiscard]] double bin_mid(std::size_t i) const noexcept {
    return 0.5 * (bin_lo(i) + bin_hi(i));
  }

  [[nodiscard]] std::uint64_t count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

  /// p in [0,1]; returns bin midpoint of the quantile bin. Total must be > 0.
  [[nodiscard]] double quantile(double p) const {
    if (total_ == 0) throw std::logic_error("Histogram::quantile: empty");
    const double target = p * static_cast<double>(total_);
    double acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      acc += static_cast<double>(counts_[i]);
      if (acc >= target) return bin_mid(i);
    }
    return bin_mid(counts_.size() - 1);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace scda::util
