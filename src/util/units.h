// Unit helpers: the simulator internally uses
//   time    -> seconds (double)
//   rates   -> bits per second (double)
//   sizes   -> bytes (int64) for content, bits (double) where rates apply
//
// These constexpr helpers make call sites self-documenting and keep the
// multipliers in one place.
#pragma once

#include <cstdint>

namespace scda::util {

// --- time -------------------------------------------------------------
constexpr double seconds(double s) noexcept { return s; }
constexpr double milliseconds(double ms) noexcept { return ms * 1e-3; }
constexpr double microseconds(double us) noexcept { return us * 1e-6; }

// --- rate (bits/second) -----------------------------------------------
constexpr double bps(double v) noexcept { return v; }
constexpr double kbps(double v) noexcept { return v * 1e3; }
constexpr double mbps(double v) noexcept { return v * 1e6; }
constexpr double gbps(double v) noexcept { return v * 1e9; }

// --- sizes --------------------------------------------------------------
constexpr std::int64_t kilobytes(double v) noexcept {
  return static_cast<std::int64_t>(v * 1e3);
}
constexpr std::int64_t megabytes(double v) noexcept {
  return static_cast<std::int64_t>(v * 1e6);
}
constexpr double bits_of_bytes(std::int64_t bytes) noexcept {
  return static_cast<double>(bytes) * 8.0;
}
constexpr std::int64_t bytes_of_bits(double bits) noexcept {
  return static_cast<std::int64_t>(bits / 8.0);
}

}  // namespace scda::util
