// Unit helpers: the simulator internally uses
//   time    -> sim::SimTime (integer nanoseconds; seconds at boundaries)
//   rates   -> sim::BitRate (bits per second, double rep)
//   sizes   -> bytes (int64) for content, sim::ByteCount where typed
//
// These constexpr helpers make call sites self-documenting and keep the
// multipliers in one place. The rate helpers return the dimension-checked
// sim::BitRate, so `cfg.base_rate = util::mbps(500)` type-checks while
// `double r = util::mbps(500)` no longer compiles without an explicit
// .bps() unwrap.
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace scda::util {

// --- time -------------------------------------------------------------
constexpr double seconds(double s) noexcept { return s; }
constexpr double milliseconds(double ms) noexcept { return ms * 1e-3; }
constexpr double microseconds(double us) noexcept { return us * 1e-6; }

// --- rate (bits/second) -----------------------------------------------
constexpr sim::BitRate bps(double v) noexcept { return sim::BitRate{v}; }
constexpr sim::BitRate kbps(double v) noexcept {
  return sim::BitRate{v * 1e3};
}
constexpr sim::BitRate mbps(double v) noexcept {
  return sim::BitRate{v * 1e6};
}
constexpr sim::BitRate gbps(double v) noexcept {
  return sim::BitRate{v * 1e9};
}

// --- sizes --------------------------------------------------------------
// Content sizes stay raw int64 across the workload plumbing; use
// sim::ByteCount at the typed interfaces.
constexpr std::int64_t kilobytes(double v) noexcept {
  return static_cast<std::int64_t>(v * 1e3);
}
constexpr std::int64_t megabytes(double v) noexcept {
  return static_cast<std::int64_t>(v * 1e6);
}
constexpr double bits_of_bytes(std::int64_t bytes) noexcept {
  return static_cast<double>(bytes) * 8.0;
}
constexpr std::int64_t bytes_of_bits(double bits) noexcept {
  return static_cast<std::int64_t>(bits / 8.0);
}

}  // namespace scda::util
