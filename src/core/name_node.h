// Name node server (NNS): content metadata plus a request-service queue.
//
// Each NNS keeps, per content id, the block locations and access statistics.
// Metadata requests are served sequentially with a fixed service time; with
// a single NNS (the GFS/HDFS design the paper criticizes) the queue grows
// under load and every request pays the queueing delay — the effect the
// multi-NNS + FES design removes (paper sections I and III).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/block_server.h"
#include "sim/simulator.h"
#include "transport/flow.h"

namespace scda::core {

struct ContentMeta {
  ContentId id = kInvalidContent;
  std::int64_t size_bytes = 0;
  transport::ContentClass content_class =
      transport::ContentClass::kSemiInteractive;
  /// Server indices holding a full copy, primary first.
  std::vector<std::int32_t> replicas;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  sim::Time last_access_time{};
  /// Durability tracking (docs/scenarios.md): set once the object first
  /// reaches its target replica count; under-replication time only
  /// accumulates for objects that were fully protected at some point.
  bool reached_target = false;
  /// Currently below the target count (maintained by Cloud churn logic).
  bool under_replicated = false;
};

class NameNode {
 public:
  NameNode(sim::Simulator& sim, std::int32_t index, double service_time_s)
      : sim_(sim), index_(index), service_time_s_(service_time_s) {}

  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  /// Enqueue a metadata request; `handler` runs after the queueing +
  /// service delay. Returns the delay the request will experience, or a
  /// negative value when the node is down (the request is dropped — the
  /// client-side timeout in Cloud recovers it). Requests queued when the
  /// node crashes die with it: the crash bumps the generation and stale
  /// handlers become no-ops when their service event fires.
  double submit(std::function<void()> handler) {
    if (!alive_) return -1.0;
    const sim::Time now = sim_.now();
    const sim::Time start = std::max(now, busy_until_);
    busy_until_ = start + sim::secs(service_time_s_);
    const sim::Time delay = busy_until_ - now;
    max_delay_ = std::max(max_delay_, delay.seconds());
    total_delay_ += delay.seconds();
    ++served_;
    sim_.post_in(delay, [this, gen = generation_,
                         h = std::move(handler)] {
      if (gen == generation_) h();
    });
    return delay.seconds();
  }

  // --- liveness (metadata-plane churn, docs/scenarios.md) --------------------
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void set_alive(bool alive) {
    if (alive_ == alive) return;
    alive_ = alive;
    if (!alive) {
      // The machine died: everything sitting in its service queue is lost
      // (clients recover via timeout + retry) and the queue drains empty,
      // so a recovered node starts idle instead of paying ghost backlog.
      ++generation_;
      busy_until_ = sim::Time{};
    }
  }

  // --- metadata --------------------------------------------------------------
  [[nodiscard]] ContentMeta& upsert(ContentId id) {
    auto& m = meta_[id];
    m.id = id;
    return m;
  }
  [[nodiscard]] ContentMeta* find(ContentId id) {
    const auto it = meta_.find(id);
    return it == meta_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const ContentMeta* find(ContentId id) const {
    const auto it = meta_.find(id);
    return it == meta_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t content_count() const noexcept {
    return meta_.size();
  }
  /// Snapshot of all content ids this NNS tracks, sorted — the ids feed
  /// migration/rebalance scans, so handing out unordered_map iteration
  /// order would be a latent determinism bug under the byte-identical
  /// output contract.
  [[nodiscard]] std::vector<ContentId> content_ids() const {
    std::vector<ContentId> out;
    out.reserve(meta_.size());
    for (const auto& [id, m] : meta_) out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Apply a mirrored metadata record (primary->standby consistency
  /// traffic): the copy that was put on the wire replaces whatever this
  /// node had for that id.
  void apply_mirror(const ContentMeta& m) { meta_[m.id] = m; }
  /// Bulk re-sync on recovery: adopt the peer's entire metadata map (the
  /// background sync flow carried it; docs/scenarios.md).
  void adopt_meta_from(const NameNode& peer) { meta_ = peer.meta_; }

  // --- service-queue statistics ----------------------------------------------
  [[nodiscard]] std::int32_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] double mean_delay() const noexcept {
    return served_ ? total_delay_ / static_cast<double>(served_) : 0.0;
  }
  [[nodiscard]] double max_delay() const noexcept { return max_delay_; }

 private:
  sim::Simulator& sim_;
  std::int32_t index_;
  double service_time_s_;
  sim::Time busy_until_{};
  bool alive_ = true;
  std::uint64_t generation_ = 0;
  std::uint64_t served_ = 0;
  double total_delay_ = 0;
  double max_delay_ = 0;
  std::unordered_map<ContentId, ContentMeta> meta_;
};

/// Front-end server (FES): stateless hash dispatch of requests onto the
/// name nodes — `hash(key) mod N_NNS` (paper section VIII-A, step 2).
class FrontEnd {
 public:
  explicit FrontEnd(std::vector<NameNode*> nodes)
      : nodes_(std::move(nodes)) {}

  [[nodiscard]] NameNode& dispatch_by_client(std::int64_t client_key) {
    return *nodes_[mix(static_cast<std::uint64_t>(client_key)) %
                   nodes_.size()];
  }
  [[nodiscard]] NameNode& dispatch_by_content(ContentId content) {
    return *nodes_[mix(static_cast<std::uint64_t>(content)) % nodes_.size()];
  }
  /// Shard index a key hashes to — the failover-aware paths in Cloud need
  /// the index (to consult liveness and pick primary vs standby), not the
  /// node reference. Same hash as dispatch_by_*, so the mapping is stable
  /// across runs and worker counts.
  [[nodiscard]] std::size_t dispatch_index(std::uint64_t key) const {
    return mix(key) % nodes_.size();
  }
  [[nodiscard]] std::size_t nns_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] NameNode& node(std::size_t i) { return *nodes_.at(i); }

 private:
  /// splitmix64 finalizer — cheap, well-mixed, deterministic across runs.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::vector<NameNode*> nodes_;
};

}  // namespace scda::core
