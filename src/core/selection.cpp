#include "core/selection.h"

#include <algorithm>

namespace scda::core {

using transport::ContentClass;

bool ServerSelector::admit_active(std::size_t s) const {
  if (!admit(s)) return false;
  if (servers_[s].dormant()) return false;
  if (params_.rscale > sim::BitRate{} &&
      hier_.rm_rhat_up(s) > params_.rscale) {
    // Least-loaded servers (uplink allocation above R_scale) are kept for
    // passive content so they can stay dormant (section VII-C).
    return false;
  }
  return true;
}

std::int32_t ServerSelector::random_server(std::int32_t exclude) {
  const auto n = static_cast<std::int64_t>(servers_.size());
  if (n == 0) return -1;
  if (n == 1) return exclude == 0 ? -1 : 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto s = static_cast<std::int32_t>(rng_.uniform_int(0, n - 1));
    if (s != exclude && admit(static_cast<std::size_t>(s))) return s;
  }
  return -1;
}

BestServer ServerSelector::pick(
    SelectionMetric m, const std::function<bool(std::size_t)>& ok) const {
  if (params_.power_aware) {
    // Rank by rate-to-power ratio (section VII-D); the reweight keeps the
    // returned value in bps-per-watt space, which only affects ordering.
    return hier_.best_server_filtered(
        m, kMaxLevel, ok, [this](std::size_t s, sim::BitRate v) {
          return v / std::max(servers_[s].power().average_w(), 1.0);
        });
  }
  return hier_.best_server_filtered(m, kMaxLevel, ok);
}

std::int32_t ServerSelector::select_write_target(ContentClass content_class) {
  if (policy_ == PlacementPolicy::kRandom) return random_server();

  const auto active_ok = [this](std::size_t s) { return admit_active(s); };
  const auto any_ok = [this](std::size_t s) { return admit(s); };

  BestServer best;
  switch (content_class) {
    case ContentClass::kInteractive:
      // Interaction rate is limited by min(uplink, downlink) (VII-A).
      best = pick(SelectionMetric::kMinUpDown, active_ok);
      break;
    case ContentClass::kSemiInteractive:
    case ContentClass::kPassive:
      // First stage for both: the server data can be *written to* fastest
      // (VII-B, VII-C). Passive content lands on an active server first and
      // is replicated/moved to a dormant one afterwards.
      best = pick(SelectionMetric::kDown, active_ok);
      break;
  }
  if (best.server < 0) {
    // Fallback 1: drop the R_scale restriction but still prefer awake
    // servers (keeps dormant machines asleep whenever possible).
    const auto awake_ok = [this](std::size_t s) {
      return admit(s) && !servers_[s].dormant();
    };
    const SelectionMetric m = content_class == ContentClass::kInteractive
                                  ? SelectionMetric::kMinUpDown
                                  : SelectionMetric::kDown;
    best = pick(m, awake_ok);
    // Fallback 2: wake a dormant server rather than reject the write.
    if (best.server < 0) best = pick(m, any_ok);
  }
  return best.server;
}

std::int32_t ServerSelector::select_replica_target(ContentClass content_class,
                                                   std::int32_t exclude) {
  if (policy_ == PlacementPolicy::kRandom) return random_server(exclude);

  const auto not_excluded = [exclude](std::size_t s) {
    return static_cast<std::int32_t>(s) != exclude;
  };

  if (content_class == ContentClass::kPassive &&
      params_.rscale > sim::BitRate{}) {
    // Replicate passive data to a dormant-eligible server: uplink
    // allocation above R_scale, i.e. a nearly idle machine (VII-C).
    const auto dormant_ok = [&](std::size_t s) {
      return not_excluded(s) && admit(s) &&
             hier_.rm_rhat_up(s) > params_.rscale;
    };
    const BestServer b = pick(SelectionMetric::kUp, dormant_ok);
    if (b.server >= 0) return b.server;
    // else fall through to the generic best-uplink choice
  }

  const auto active_ok = [&](std::size_t s) {
    return not_excluded(s) && admit_active(s);
  };
  // Replica server is where *reads* will come from: best uplink (VII-B).
  BestServer b = pick(SelectionMetric::kUp, active_ok);
  if (b.server < 0) {
    const auto any_ok = [&](std::size_t s) {
      return not_excluded(s) && admit(s);
    };
    b = pick(SelectionMetric::kUp, any_ok);
  }
  return b.server;
}

std::int32_t ServerSelector::random_server(
    const std::vector<std::int32_t>& exclude) {
  const auto n = static_cast<std::int64_t>(servers_.size());
  if (n == 0) return -1;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto s = static_cast<std::int32_t>(rng_.uniform_int(0, n - 1));
    if (std::find(exclude.begin(), exclude.end(), s) == exclude.end() &&
        admit(static_cast<std::size_t>(s)))
      return s;
  }
  return -1;
}

std::int32_t ServerSelector::select_replica_target(
    ContentClass content_class, const std::vector<std::int32_t>& exclude) {
  if (policy_ == PlacementPolicy::kRandom) return random_server(exclude);

  const auto not_excluded = [&exclude](std::size_t s) {
    return std::find(exclude.begin(), exclude.end(),
                     static_cast<std::int32_t>(s)) == exclude.end();
  };

  if (content_class == ContentClass::kPassive &&
      params_.rscale > sim::BitRate{}) {
    const auto dormant_ok = [&](std::size_t s) {
      return not_excluded(s) && admit(s) &&
             hier_.rm_rhat_up(s) > params_.rscale;
    };
    const BestServer b = pick(SelectionMetric::kUp, dormant_ok);
    if (b.server >= 0) return b.server;
  }

  const auto active_ok = [&](std::size_t s) {
    return not_excluded(s) && admit_active(s);
  };
  BestServer b = pick(SelectionMetric::kUp, active_ok);
  if (b.server < 0) {
    const auto any_ok = [&](std::size_t s) {
      return not_excluded(s) && admit(s);
    };
    b = pick(SelectionMetric::kUp, any_ok);
  }
  return b.server;
}

std::int32_t ServerSelector::select_read_replica(
    const std::vector<std::int32_t>& replicas) {
  if (replicas.empty()) return -1;
  if (policy_ == PlacementPolicy::kRandom) {
    std::vector<std::int32_t> alive;
    for (const std::int32_t s : replicas)
      if (!servers_[static_cast<std::size_t>(s)].failed()) alive.push_back(s);
    if (alive.empty()) return -1;
    return alive[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(alive.size()) - 1))];
  }
  std::int32_t best = -1;
  sim::BitRate best_v{-1};
  for (const std::int32_t s : replicas) {
    if (servers_[static_cast<std::size_t>(s)].failed()) continue;
    const sim::BitRate v =
        hier_.server_value_up(static_cast<std::size_t>(s), kMaxLevel);
    if (v > best_v) {
      best_v = v;
      best = s;
    }
  }
  return best;  // -1 when every replica is on a failed server
}

}  // namespace scda::core
