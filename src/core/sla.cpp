#include "core/sla.h"

#include "obs/observability.h"
#include "util/log.h"

namespace scda::core {

void SlaManager::on_violation(net::LinkId link, sim::BitRate demand,
                              sim::BitRate gamma, sim::Time time) {
  events_.push_back(SlaEvent{time, link, demand, gamma});
  last_violation_[link] = time;

  if (boost_threshold_ == 0 || boosted_[link]) return;
  if (++consecutive_[link] >= boost_threshold_) {
    net::Link& l = net_.link(link);
    l.set_capacity(l.capacity() * boost_factor_);
    boosted_[link] = true;
    ++boosts_applied_;
    if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
      tr->instant(time, "control", "sla_capacity_boost", obs::kTrackControl,
                  {{"link", static_cast<double>(link.value())},
                   {"boost_factor", boost_factor_},
                   {"capacity_bps", l.capacity_bps()}});
    }
    SCDA_LOG_INFO("sla: boosted link %d capacity x%.2f at t=%.3f",
                  link.value(), boost_factor_, time.seconds());
  }
}

}  // namespace scda::core
