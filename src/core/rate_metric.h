// Pure rate-metric math of paper section IV (equations 2-6).
//
// Free functions with no simulator dependencies so the numerics are unit-
// testable in isolation. All rates are bits/sec, queue sizes are bits,
// intervals are seconds.
#pragma once

#include <algorithm>

namespace scda::core {

/// Effective capacity gamma = alpha*C - beta*Q/tau (the numerator of
/// eqs. 2 and 5; also the SLA threshold of section IV-A). The queue term
/// drains standing queues within ~one control interval.
[[nodiscard]] inline double effective_capacity(double capacity_bps,
                                               double queue_bits, double tau,
                                               double alpha,
                                               double beta) noexcept {
  return alpha * capacity_bps - beta * queue_bits / tau;
}

/// Effective number of flows N-hat = S / R(t - tau)  (eq. 3). A flow
/// bottlenecked elsewhere counts as R_j/R < 1 flow, which is what makes the
/// allocation max-min fair.
[[nodiscard]] inline double effective_flows(double rate_sum_bps,
                                            double prev_rate_bps) noexcept {
  if (prev_rate_bps <= 0) return 0.0;
  return rate_sum_bps / prev_rate_bps;
}

/// Exact per-flow rate (eq. 2): R(t) = gamma / N-hat, clamped to
/// [min_rate, gamma_cap]. `gamma_cap` bounds the advertised per-flow rate by
/// the link's effective capacity (an idle link offers the whole capacity,
/// never more).
[[nodiscard]] inline double exact_rate(double gamma_bps, double rate_sum_bps,
                                       double prev_rate_bps,
                                       double min_rate_bps) noexcept {
  const double gamma = std::max(gamma_bps, min_rate_bps);
  const double nhat = effective_flows(rate_sum_bps, prev_rate_bps);
  if (nhat <= 1e-12) return gamma;  // idle link: full effective capacity
  return std::clamp(gamma / nhat, min_rate_bps, gamma);
}

/// Simplified rate (eq. 5): R(t) = gamma * R(t - tau) / Lambda(t) where
/// Lambda = L/tau is the measured arrival rate. Needs only switch byte
/// counters ("stateless" variant).
[[nodiscard]] inline double simplified_rate(double gamma_bps,
                                            double interval_bits, double tau,
                                            double prev_rate_bps,
                                            double min_rate_bps) noexcept {
  const double gamma = std::max(gamma_bps, min_rate_bps);
  const double lambda = interval_bits / tau;
  if (lambda <= 1e-12) return gamma;  // idle link: full effective capacity
  return std::clamp(gamma * prev_rate_bps / lambda, min_rate_bps, gamma);
}

/// SLA violation test (section IV-A): the sum of flow rates wanting to cross
/// the link exceeds its effective capacity.
[[nodiscard]] inline bool sla_violated(double rate_sum_bps,
                                       double gamma_bps) noexcept {
  return rate_sum_bps > gamma_bps;
}

}  // namespace scda::core
