// Pure rate-metric math of paper section IV (equations 2-6).
//
// Free functions with no simulator dependencies so the numerics are unit-
// testable in isolation. Quantities are dimension-checked (sim/types.h):
// rates are sim::BitRate, queue occupancy and interval arrivals are exact
// sim::BitCount, intervals are seconds. Internally each function unwraps
// to the raw representation once — these are the documented numeric-
// kernel boundaries where the expression shape (operand order, grouping)
// must stay bit-identical to the committed baselines.
#pragma once

#include <algorithm>

#include "sim/types.h"

namespace scda::core {

/// Effective capacity gamma = alpha*C - beta*Q/tau (the numerator of
/// eqs. 2 and 5; also the SLA threshold of section IV-A). The queue term
/// drains standing queues within ~one control interval.
[[nodiscard]] inline sim::BitRate effective_capacity(
    sim::BitRate capacity, sim::BitCount queue, double tau, double alpha,
    double beta) noexcept {
  return sim::BitRate{alpha * capacity.bps() -
                      beta * static_cast<double>(queue.bits()) / tau};
}

/// Effective number of flows N-hat = S / R(t - tau)  (eq. 3). A flow
/// bottlenecked elsewhere counts as R_j/R < 1 flow, which is what makes the
/// allocation max-min fair.
[[nodiscard]] inline double effective_flows(sim::BitRate rate_sum,
                                            sim::BitRate prev_rate) noexcept {
  if (prev_rate <= sim::BitRate{}) return 0.0;
  return rate_sum / prev_rate;  // same-unit ratio: dimensionless
}

/// Exact per-flow rate (eq. 2): R(t) = gamma / N-hat, clamped to
/// [min_rate, gamma_cap]. `gamma_cap` bounds the advertised per-flow rate by
/// the link's effective capacity (an idle link offers the whole capacity,
/// never more).
[[nodiscard]] inline sim::BitRate exact_rate(sim::BitRate gamma_in,
                                             sim::BitRate rate_sum,
                                             sim::BitRate prev_rate,
                                             sim::BitRate min_rate) noexcept {
  const sim::BitRate gamma = sim::max(gamma_in, min_rate);
  const double nhat = effective_flows(rate_sum, prev_rate);
  if (nhat <= 1e-12) return gamma;  // idle link: full effective capacity
  return sim::clamp(gamma / nhat, min_rate, gamma);
}

/// Simplified rate (eq. 5): R(t) = gamma * R(t - tau) / Lambda(t) where
/// Lambda = L/tau is the measured arrival rate. Needs only switch byte
/// counters ("stateless" variant).
[[nodiscard]] inline sim::BitRate simplified_rate(
    sim::BitRate gamma_in, sim::BitCount interval, double tau,
    sim::BitRate prev_rate, sim::BitRate min_rate) noexcept {
  const sim::BitRate gamma = sim::max(gamma_in, min_rate);
  const double lambda = static_cast<double>(interval.bits()) / tau;
  if (lambda <= 1e-12) return gamma;  // idle link: full effective capacity
  return sim::clamp(sim::BitRate{gamma.bps() * prev_rate.bps() / lambda},
                    min_rate, gamma);
}

/// SLA violation test (section IV-A): the sum of flow rates wanting to cross
/// the link exceeds its effective capacity.
[[nodiscard]] inline bool sla_violated(sim::BitRate rate_sum,
                                       sim::BitRate gamma) noexcept {
  return rate_sum > gamma;
}

}  // namespace scda::core
