// Block server (BS): stores content blocks, hosts a resource monitor, and
// carries the server-local resource and power models (paper section III-A).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/power.h"
#include "core/server_resources.h"
#include "net/packet.h"

namespace scda::core {

using ContentId = std::int64_t;
constexpr ContentId kInvalidContent = -1;

class BlockServer {
 public:
  BlockServer(std::size_t index, net::NodeId node)
      : index_(index), node_(node) {}

  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }

  [[nodiscard]] ServerResources& resources() noexcept { return resources_; }
  [[nodiscard]] const ServerResources& resources() const noexcept {
    return resources_;
  }
  [[nodiscard]] PowerModel& power() noexcept { return power_; }
  [[nodiscard]] const PowerModel& power() const noexcept { return power_; }

  // --- block storage ---------------------------------------------------------
  /// Store (or grow) a content block. Returns false if disk space is
  /// exhausted; the NNS then picks a different server.
  [[nodiscard]] bool store(ContentId id, std::int64_t bytes) {
    if (!resources_.reserve_bytes(bytes)) return false;
    blocks_[id] += bytes;
    stored_total_ += bytes;
    return true;
  }
  void remove(ContentId id) {
    const auto it = blocks_.find(id);
    if (it == blocks_.end()) return;
    resources_.release_bytes(it->second);
    stored_total_ -= it->second;
    blocks_.erase(it);
  }
  /// Wipe every stored block and learned access count (server recovery
  /// after a failure, docs/scenarios.md): the machine comes back empty and
  /// refills through normal placement, so stale blocks never leak disk
  /// across churn cycles.
  void scrub() {
    resources_.release_bytes(stored_total_);
    stored_total_ = 0;
    blocks_.clear();
    access_counts_.clear();
  }
  [[nodiscard]] bool has(ContentId id) const { return blocks_.count(id) != 0; }
  [[nodiscard]] std::int64_t stored_bytes(ContentId id) const {
    const auto it = blocks_.find(id);
    return it == blocks_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  // --- access-frequency learning (section VII-C) -----------------------------
  /// The RM counts content accesses to learn popularity; the cloud uses it
  /// to migrate cold content to dormant servers.
  void record_access(ContentId id) { ++access_counts_[id]; }
  [[nodiscard]] std::uint64_t access_count(ContentId id) const {
    const auto it = access_counts_.find(id);
    return it == access_counts_.end() ? 0 : it->second;
  }

  // --- activity tracking (dormancy policy) -----------------------------------
  void flow_started() noexcept { ++active_flows_; }
  void flow_finished() noexcept {
    if (active_flows_ > 0) --active_flows_;
  }
  [[nodiscard]] std::int32_t active_flows() const noexcept {
    return active_flows_;
  }

  [[nodiscard]] bool dormant() const noexcept { return power_.dormant(); }
  void set_dormant(bool d) noexcept { power_.set_dormant(d); }

  // --- failure state (RM health monitoring, section I/III) -------------------
  /// A failed server serves nothing; its blocks are unavailable until
  /// recovery. The RM/RA hierarchy sees its R_other as zero, so selection
  /// never routes new work to it.
  void set_failed(bool f) noexcept { failed_ = f; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  std::size_t index_;
  net::NodeId node_;
  ServerResources resources_;
  PowerModel power_;
  std::unordered_map<ContentId, std::int64_t> blocks_;
  std::unordered_map<ContentId, std::uint64_t> access_counts_;
  std::int64_t stored_total_ = 0;  ///< sum over blocks_ (scrub in O(1))
  std::int32_t active_flows_ = 0;
  bool failed_ = false;
};

}  // namespace scda::core
