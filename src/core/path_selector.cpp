#include "core/path_selector.h"

#include <limits>
#include <queue>

namespace scda::core {

WidestPathResult widest_path(const net::Network& net, net::NodeId src,
                             net::NodeId dst, const LinkRateFn& rate) {
  WidestPathResult out;
  if (src == dst) return out;

  const auto n = net.node_count();
  constexpr sim::BitRate kInf{std::numeric_limits<double>::infinity()};
  // best bottleneck to each node; negative sentinel = unvisited
  std::vector<sim::BitRate> width(n, sim::BitRate{-1.0});
  std::vector<std::int32_t> hops(n, 0);
  std::vector<net::LinkId> via(n, net::kInvalidLink);

  struct Entry {
    sim::BitRate width;
    std::int32_t hops;
    net::NodeId node;
    bool operator<(const Entry& o) const noexcept {
      if (width != o.width) return width < o.width;      // max-heap on width
      if (hops != o.hops) return hops > o.hops;          // then fewer hops
      return node > o.node;                              // then lowest id
    }
  };

  std::priority_queue<Entry> pq;
  width[src.index()] = kInf;
  pq.push({kInf, 0, src});

  while (!pq.empty()) {
    const Entry e = pq.top();
    pq.pop();
    const auto u = e.node.index();
    if (e.width < width[u] || (e.width == width[u] && e.hops > hops[u]))
      continue;  // stale entry
    if (e.node == dst) break;
    for (const net::LinkId lid : net.out_links(e.node)) {
      const net::Link& l = net.link(lid);
      const sim::BitRate w = sim::min(e.width, rate(lid));
      const auto v = l.to().index();
      if (w > width[v] ||
          (w == width[v] && e.hops + 1 < hops[v])) {
        width[v] = w;
        hops[v] = e.hops + 1;
        via[v] = lid;
        pq.push({w, e.hops + 1, l.to()});
      }
    }
  }

  const auto d = dst.index();
  if (width[d] < sim::BitRate{}) return out;  // unreachable

  // Walk back from dst via the predecessor links.
  std::vector<net::LinkId> rev;
  net::NodeId at = dst;
  while (at != src) {
    const net::LinkId lid = via[at.index()];
    rev.push_back(lid);
    at = net.link(lid).from();
  }
  out.path.assign(rev.rbegin(), rev.rend());
  out.bottleneck = width[d];
  return out;
}

}  // namespace scda::core
