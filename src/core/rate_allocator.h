// RateAllocator: the per-link allocation engine behind the RM/RA hierarchy.
//
// Every control interval tau it recomputes, for every link, the per-flow
// fair rate R_l(t) (eq. 2 exact, or eq. 5 simplified) and, for every
// registered flow, its end-to-end allocation
//
//     r_j = min(M_j + p_j * min_{l in path} R_l, R_other_send, R_other_recv)
//
// which is exactly the distributed fixed point the RM/RA message exchanges
// of paper section VI compute: a link where a flow is bottlenecked elsewhere
// counts it as r_j / R < 1 effective flows (eq. 3), so the residual
// bandwidth flows to the flows that can use it — weighted max-min fairness.
//
// The engine is topology-agnostic (section IX): it only needs each flow's
// path, which the tree RM/RA hierarchy (hierarchy.h) derives from routing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/params.h"
#include "net/network.h"

namespace scda::core {

/// Callback invoked when a link's demand exceeds its effective capacity
/// (SLA violation, section IV-A): (link, S, gamma, time).
using SlaViolationFn =
    std::function<void(net::LinkId, sim::BitRate, sim::BitRate, sim::Time)>;

class RateAllocator {
 public:
  RateAllocator(net::Network& net, const ScdaParams& params);

  RateAllocator(const RateAllocator&) = delete;
  RateAllocator& operator=(const RateAllocator&) = delete;

  // --- flow registry --------------------------------------------------------
  /// Provider of a flow's non-network bottleneck (CPU/disk) rate; nullptr
  /// means unconstrained.
  using RateProviderFn = std::function<sim::BitRate()>;

  void register_flow(net::FlowId id, net::NodeId src, net::NodeId dst,
                     double priority = 1.0, sim::BitRate reserved = {},
                     RateProviderFn r_other_send = nullptr,
                     RateProviderFn r_other_recv = nullptr);

  /// Register a flow on an explicit path (source-routed flows on general
  /// topologies, paper section IX).
  void register_flow_on_path(net::FlowId id, std::vector<net::LinkId> path,
                             double priority = 1.0, sim::BitRate reserved = {},
                             RateProviderFn r_other_send = nullptr,
                             RateProviderFn r_other_recv = nullptr);
  void unregister_flow(net::FlowId id);
  [[nodiscard]] bool has_flow(net::FlowId id) const {
    return find_row(id) != kNoRow;
  }
  [[nodiscard]] std::size_t active_flows() const noexcept {
    return by_id_.size();
  }

  /// Change a flow's priority weight (adaptive policies, section IV-A).
  void set_priority(net::FlowId id, double priority);
  [[nodiscard]] double priority(net::FlowId id) const;

  // --- control interval -----------------------------------------------------
  /// Recompute gamma, per-flow rates, S and the new per-link rates.
  void tick();

  /// Recompute only the per-flow rates from the current link rates (no
  /// link-state updates, no SLA checks). Used right after an admission so
  /// existing senders drop to their post-admission shares immediately
  /// instead of overdriving the path until the next tick.
  void refresh_flow_rates();

  // --- queries ---------------------------------------------------------------
  /// Per-flow fair rate currently advertised by a link (R_l).
  [[nodiscard]] sim::BitRate link_rate(net::LinkId l) const {
    return links_.at(l.index()).rate;
  }
  /// Effective capacity gamma of a link from the last tick.
  [[nodiscard]] sim::BitRate link_gamma(net::LinkId l) const {
    return links_.at(l.index()).gamma;
  }
  /// Sum of flow rates S crossing the link in the last tick.
  [[nodiscard]] sim::BitRate link_rate_sum(net::LinkId l) const {
    return links_.at(l.index()).rate_sum;
  }
  /// Rate a prospective new flow of the given weight would get on the link:
  /// gamma_share / (N-hat + priority). This is the link weight route
  /// selection should compare (section IX) — unlike link_rate it
  /// distinguishes an idle link from one whose single flow uses it fully.
  [[nodiscard]] sim::BitRate prospective_link_rate(net::LinkId l,
                                                   double priority = 1.0) const {
    const auto& st = links_.at(l.index());
    if (st.down) return sim::BitRate{};
    const sim::BitRate shareable =
        sim::max(st.gamma - st.reserved, params_.min_rate);
    return sim::clamp(shareable / std::max(st.nhat + priority, 1.0),
                      params_.min_rate, shareable);
  }

  // --- link failure state ----------------------------------------------------
  /// Mark a link down/up for allocation purposes (failure injection,
  /// docs/scenarios.md). A down link advertises zero per-flow rate and zero
  /// effective capacity, and every flow whose path crosses it is allocated
  /// exactly 0 — bypassing the min-rate floor — so fluid flows park instead
  /// of stranding their completion events. tick() also re-reads Link::up()
  /// each round, so direct Link toggles converge within one interval.
  void set_link_up(net::LinkId l, bool up);
  /// The flow's current end-to-end allocation r_j.
  [[nodiscard]] sim::BitRate flow_rate(net::FlowId id) const;

  /// Rate a *new* unit-weight flow would get along src->dst right now:
  /// min over the path of the per-link rates (the value the NNS asks the
  /// RA/RM hierarchy for, paper Figs. 3-5).
  [[nodiscard]] sim::BitRate path_rate(net::NodeId src, net::NodeId dst) const;
  /// Same, over an explicit link sequence.
  [[nodiscard]] sim::BitRate path_rate(
      const std::vector<net::LinkId>& path) const;

  // --- control-plane cost counters -------------------------------------------
  /// Cumulative RM/RA round cost: how many control ticks ran and how much
  /// per-flow / per-link work each round performed (paper section VI's
  /// message-exchange volume). Read by the observability layer at end of
  /// run; maintained with plain increments so it costs nothing measurable.
  struct ControlStats {
    std::uint64_t ticks = 0;          ///< RM/RA rounds executed
    std::uint64_t flow_updates = 0;   ///< per-flow rate recomputations
    std::uint64_t link_updates = 0;   ///< per-link R_l recomputations
  };
  [[nodiscard]] const ControlStats& control_stats() const noexcept {
    return control_stats_;
  }

  // --- epoch notification ----------------------------------------------------
  /// Invoked at the end of every tick(), after all link rates and per-flow
  /// allocations have settled. The fluid engine hooks this to re-rate its
  /// analytic flows from the fresh allocations (docs/fluid_engine.md).
  void set_epoch_callback(std::function<void()> fn) {
    on_epoch_ = std::move(fn);
  }

  // --- SLA -------------------------------------------------------------------
  void set_sla_callback(SlaViolationFn fn) { on_sla_ = std::move(fn); }
  [[nodiscard]] std::uint64_t sla_violations() const noexcept {
    return total_sla_violations_;
  }
  [[nodiscard]] std::uint64_t sla_violations(net::LinkId l) const {
    return links_.at(l.index()).sla_violations;
  }

  [[nodiscard]] const ScdaParams& params() const noexcept { return params_; }

 private:
  struct LinkState {
    sim::BitRate rate{};      ///< R_l(t), per-flow fair share
    sim::BitRate gamma{};     ///< effective capacity this tick
    sim::BitRate rate_sum{};  ///< S_l(t), total flow demand
    sim::BitRate share_sum{}; ///< S minus reserved portions (shared demand)
    sim::BitRate reserved{};  ///< sum of M_j over flows crossing the link
    double nhat = 0;          ///< effective flow count (dimensionless)
    bool down = false;        ///< link failed: rate/gamma pinned to zero
    std::uint64_t sla_violations = 0;
  };

  // --- dense struct-of-arrays flow table -------------------------------------
  // Flow state lives in slot-parallel arrays (the dense-table layout that
  // made water_fill ~8x, docs/perf.md): the per-tick passes stream through
  // contiguous doubles instead of chasing unordered_map nodes. Slots are
  // recycled through a free list — a recycled slot keeps its path vector's
  // capacity, so steady register/unregister churn stops allocating once the
  // pool reaches the peak concurrent flow count.
  //
  // Iteration order is the sorted (FlowId -> slot) index `by_id_`, which
  // makes every accumulation pass ascending-id deterministic — portable
  // across standard libraries, unlike the unordered_map iteration order the
  // previous implementation (and every pre-integer-time baseline) depended
  // on. Ids are issued monotonically, so the common insert is a push_back
  // and the index rarely memmoves.
  struct IndexEntry {
    net::FlowId id;
    std::uint32_t slot;
  };
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  /// Position of `id` in by_id_, or kNoRow (binary search).
  [[nodiscard]] std::size_t find_row(net::FlowId id) const noexcept;
  /// Take a slot from the free list or grow every parallel array by one.
  [[nodiscard]] std::uint32_t acquire_slot();

  net::Network& net_;
  ScdaParams params_;
  std::vector<LinkState> links_;

  std::vector<IndexEntry> by_id_;          ///< sorted ascending by flow id
  std::vector<std::uint32_t> free_slots_;  ///< recycled table rows
  // Slot-parallel flow state (indexed by IndexEntry::slot).
  std::vector<double> priority_;            ///< weights (dimensionless)
  std::vector<sim::BitRate> reserved_;      ///< M_j reservations
  std::vector<sim::BitRate> rate_;          ///< r_j from the last tick
  std::vector<std::vector<net::LinkId>> path_;
  std::vector<RateProviderFn> r_other_send_;
  std::vector<RateProviderFn> r_other_recv_;

  SlaViolationFn on_sla_;
  std::function<void()> on_epoch_;
  std::uint64_t total_sla_violations_ = 0;
  ControlStats control_stats_;
};

}  // namespace scda::core
