// Reference weighted max-min allocation by progressive water-filling.
//
// This is the textbook bottleneck-ordering algorithm: repeatedly find the
// link whose residual capacity divided by the weight-sum of its unfrozen
// flows is smallest, freeze those flows at weight * level, subtract their
// consumption everywhere, repeat. It is exact but centralized and O(L*F)
// per round — SCDA's RM/RA iteration converges to the same fixed point
// distributively (eqs. 2-4), which the test suite verifies on randomized
// scenarios.
//
// Exposed publicly so users can compute reference allocations for their
// own scenarios (capacity planning, regression baselines). Supports the
// paper's explicit reservations (section IV-C): a flow's reservation M_j
// is granted off the top and only the remainder competes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.h"
#include "sim/types.h"

namespace scda::core {

struct ReferenceFlow {
  std::vector<net::LinkId> path;
  double weight = 1.0;
  sim::BitRate reserved{};
  /// Output: the max-min fair allocation (reservation included). Negative
  /// while unfrozen (sentinel), never in a returned allocation.
  sim::BitRate rate{-1.0};
};

/// Compute allocations in place. `capacity` must cover every link any
/// flow crosses. Flows on links with no capacity entry are an error.
void water_fill(std::vector<ReferenceFlow>& flows,
                const std::map<net::LinkId, sim::BitRate>& capacity);

/// Pure variant: the allocation for each flow, in input order, without
/// mutating `flows`. [[nodiscard]] because the return value is the whole
/// point — a dropped result means the call did nothing observable.
[[nodiscard]] std::vector<sim::BitRate> water_fill_rates(
    std::vector<ReferenceFlow> flows,
    const std::map<net::LinkId, sim::BitRate>& capacity);

}  // namespace scda::core
