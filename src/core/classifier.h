// Content-class learning (paper sections II-B and VII).
//
// "The client applications can specify the type of content or the RMs of
//  the servers can learn the type of content from the server access
//  frequencies (of writes and reads) by the content."
//
// The classifier keeps sliding-window write/read counters per content and
// maps observed frequencies onto the paper's taxonomy:
//
//   writes high  & reads high  -> interactive       (HWHR)
//   exactly one high           -> semi-interactive  (HWLR / LWHR)
//   both low                   -> passive           (LWLR)
//
// "High" means at least `high_accesses_per_window` accesses within the
// sliding window; interactive additionally requires the write/read
// interleaving gap to stay under the interactivity interval (5 s default).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "sim/types.h"
#include "transport/flow.h"

namespace scda::core {

struct ClassifierConfig {
  double window_s = 60.0;             ///< sliding-window span
  std::uint32_t high_accesses_per_window = 4;
  double interactivity_interval_s = 5.0;  ///< paper section VII
};

class ContentClassifier {
 public:
  explicit ContentClassifier(ClassifierConfig cfg = {}) : cfg_(cfg) {}

  void record_write(std::int64_t content, sim::SimTime now) {
    auto& h = history_[content];
    trim(h, now);
    h.writes.push_back(now);
    update_interleave(h, now);
  }

  void record_read(std::int64_t content, sim::SimTime now) {
    auto& h = history_[content];
    trim(h, now);
    h.reads.push_back(now);
    update_interleave(h, now);
  }

  /// Learned class from the access pattern observed so far.
  [[nodiscard]] transport::ContentClass classify(std::int64_t content,
                                                 sim::SimTime now) {
    const auto it = history_.find(content);
    if (it == history_.end()) return transport::ContentClass::kPassive;
    auto& h = it->second;
    trim(h, now);
    const bool hw = h.writes.size() >= cfg_.high_accesses_per_window;
    const bool hr = h.reads.size() >= cfg_.high_accesses_per_window;
    if (hw && hr && h.tight_interleaving)
      return transport::ContentClass::kInteractive;
    if (hw || hr) return transport::ContentClass::kSemiInteractive;
    return transport::ContentClass::kPassive;
  }

  /// Accesses of either kind within the window.
  [[nodiscard]] std::size_t accesses_in_window(std::int64_t content,
                                               sim::SimTime now) {
    const auto it = history_.find(content);
    if (it == history_.end()) return 0;
    trim(it->second, now);
    return it->second.writes.size() + it->second.reads.size();
  }

  [[nodiscard]] const ClassifierConfig& config() const noexcept {
    return cfg_;
  }

 private:
  struct History {
    std::deque<sim::SimTime> writes;
    std::deque<sim::SimTime> reads;
    sim::SimTime last_access = sim::secs(-1.0);
    /// True while consecutive accesses interleave within the
    /// interactivity interval.
    bool tight_interleaving = false;
  };

  void trim(History& h, sim::SimTime now) const {
    const sim::SimTime cutoff = now - sim::secs(cfg_.window_s);
    while (!h.writes.empty() && h.writes.front() < cutoff)
      h.writes.pop_front();
    while (!h.reads.empty() && h.reads.front() < cutoff)
      h.reads.pop_front();
  }

  void update_interleave(History& h, sim::SimTime now) {
    if (h.last_access >= sim::SimTime{}) {
      h.tight_interleaving =
          now - h.last_access <= sim::secs(cfg_.interactivity_interval_s);
    }
    h.last_access = now;
  }

  ClassifierConfig cfg_;
  std::unordered_map<std::int64_t, History> history_;
};

}  // namespace scda::core
