// Packet-based control-plane traffic model (paper section IV).
//
// By default the Cloud models RM/RA exchanges as latency-delayed RPCs and
// only counts their bytes. This optional component puts the reporting
// traffic on the wire: every control interval each RM (block server) sends
// its S_d/S_u report one hop up to its level-1 RA, each level-1 RA
// forwards its aggregate to level 2, and so on to the top — exactly the
// bottom-up pass of section VI. The packets are ordinary kCtrl datagrams
// that compete with data in the drop-tail queues, so the overhead and its
// effect on data flows become measurable instead of assumed.
//
// The paper's Delta-encoding ("send the difference... if there is a change
// in the rate values") is modelled by skipping a report when the RM's rate
// value moved less than `delta_threshold` relatively since its last send.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/rate_allocator.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace scda::core {

class ControlTraffic {
 public:
  /// Wire size of one RM/RA report (ids + two rate sums + level).
  static constexpr std::int32_t kReportBytes = 64;

  ControlTraffic(net::ThreeTierTree& topo, RateAllocator& alloc,
                 double interval_s, double delta_threshold = 0.0)
      : topo_(topo),
        alloc_(alloc),
        delta_threshold_(delta_threshold),
        last_sent_rate_(topo.servers().size(), sim::BitRate{-1.0}),
        process_(std::make_unique<sim::PeriodicProcess>(
            topo.net().sim(), sim::secs(interval_s), [this] { tick(); })) {
    // Count reports arriving at each aggregation point.
    hook_sink(topo_.core());
    for (const auto agg : topo_.aggs()) hook_sink(agg);
    for (const auto tor : topo_.tors()) hook_sink(tor);
    process_->start(sim::secs(interval_s));
  }

  void stop() { process_->stop(); }

  [[nodiscard]] std::uint64_t reports_sent() const noexcept {
    return reports_sent_;
  }
  [[nodiscard]] std::uint64_t reports_received() const noexcept {
    return reports_received_;
  }
  [[nodiscard]] std::uint64_t reports_suppressed() const noexcept {
    return reports_suppressed_;
  }
  [[nodiscard]] std::uint64_t bytes_on_wire() const noexcept {
    return reports_sent_ * static_cast<std::uint64_t>(kReportBytes);
  }

 private:
  void hook_sink(net::NodeId n) {
    topo_.net().node(n).set_sink([this](net::Packet&& p) {
      if (p.type == net::PacketType::kCtrl) ++reports_received_;
    });
  }

  void send_report(net::NodeId from, net::NodeId to) {
    net::Packet p;
    p.flow = kCtrlFlowId;
    p.src = from;
    p.dst = to;
    p.type = net::PacketType::kCtrl;
    p.size_bytes = kReportBytes;
    p.ts = topo_.net().sim().now();
    topo_.net().send(std::move(p));
    ++reports_sent_;
  }

  void tick() {
    // RM -> level-1 RA (one hop to the ToR switch), with Delta suppression.
    for (std::size_t s = 0; s < topo_.servers().size(); ++s) {
      const sim::BitRate rate = alloc_.link_rate(topo_.server_uplink(s));
      if (delta_threshold_ > 0 && last_sent_rate_[s] > sim::BitRate{}) {
        // Relative change is dimensionless: unwrap once for the |.| ratio.
        const double change =
            std::abs(rate.bps() - last_sent_rate_[s].bps()) /
            last_sent_rate_[s].bps();
        if (change < delta_threshold_) {
          ++reports_suppressed_;
          continue;
        }
      }
      last_sent_rate_[s] = rate;
      send_report(topo_.servers()[s],
                  topo_.tors()[topo_.tor_of_server(s)]);
    }
    // RA level 1 -> level 2 -> level 3 (aggregated sums move upward).
    for (std::size_t t = 0; t < topo_.tors().size(); ++t)
      send_report(topo_.tors()[t], topo_.aggs()[topo_.agg_of_tor(t)]);
    for (const auto agg : topo_.aggs()) send_report(agg, topo_.core());
  }

  /// Reserved flow id for control datagrams (never collides with data
  /// flows, whose ids are non-negative).
  static constexpr net::FlowId kCtrlFlowId = scda::net::FlowId{-2};

  net::ThreeTierTree& topo_;
  RateAllocator& alloc_;
  double delta_threshold_;
  std::vector<sim::BitRate> last_sent_rate_;
  std::uint64_t reports_sent_ = 0;
  std::uint64_t reports_received_ = 0;
  std::uint64_t reports_suppressed_ = 0;
  std::unique_ptr<sim::PeriodicProcess> process_;
};

}  // namespace scda::core
