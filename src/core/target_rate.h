// Adaptive priority control (paper section IV-A).
//
//   "If the source j gets the bottleneck rate R_j(t) ... and if it wants to
//    set its rate in the next round to R_j(t+tau), it sets its priority as
//    p_j = R_j(t+tau) / R_j(t). ... This approach can adaptively and
//    implicitly implement many scheduling policies in a distributed manner
//    [e.g.] shortest file first and early deadline first."
//
// TargetRateController tracks flows with a target rate (fixed, or derived
// from a deadline: remaining bytes / remaining time) and rewrites their
// priority weight every control interval:
//
//     p_new = target / base_share,   base_share = (r_j - M_j) / p_old
//
// i.e. exactly the paper's ratio rule expressed against the flow's
// unit-weight share, clamped to keep the allocator stable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "core/rate_allocator.h"

namespace scda::core {

class TargetRateController {
 public:
  explicit TargetRateController(RateAllocator& alloc) : alloc_(alloc) {}

  /// Drive the flow towards a fixed rate.
  void set_target_rate(net::FlowId id, sim::BitRate target) {
    targets_[id] = Goal{target, -1.0, 0};
  }

  /// Drive the flow to finish `remaining_bytes` by absolute `deadline`
  /// (EDF-style: the target rate grows as the deadline nears).
  void set_deadline(net::FlowId id, std::int64_t total_bytes,
                    double deadline_s) {
    targets_[id] = Goal{sim::BitRate{}, deadline_s, total_bytes};
  }

  void clear(net::FlowId id) { targets_.erase(id); }
  [[nodiscard]] bool has_target(net::FlowId id) const {
    return targets_.count(id) != 0;
  }
  [[nodiscard]] std::size_t active() const noexcept {
    return targets_.size();
  }

  /// Recompute priorities; call once per control interval, after the
  /// allocator tick. `remaining_bytes_of` reports a flow's unsent bytes
  /// (deadline targets); `now` is the current simulation time.
  template <typename RemainingFn>
  void update(sim::Time now, RemainingFn&& remaining_bytes_of) {
    for (auto it = targets_.begin(); it != targets_.end();) {
      const net::FlowId id = it->first;
      if (!alloc_.has_flow(id)) {
        it = targets_.erase(it);
        continue;
      }
      Goal& g = it->second;

      sim::BitRate target = g.target;
      if (g.deadline_s >= 0) {
        const double remaining =
            static_cast<double>(remaining_bytes_of(id)) * 8.0;
        // Aim to finish a little early: window quantization, control
        // latency and the tick cadence all eat into the budget.
        const double time_left =
            (g.deadline_s - now.seconds()) * deadline_safety_;
        // Past-deadline flows push as hard as the clamp allows.
        target = sim::BitRate{time_left > 1e-3 ? remaining / time_left
                                               : remaining / 1e-3};
      }
      if (target <= sim::BitRate{}) {
        ++it;
        continue;
      }

      const double p_old = alloc_.priority(id);
      const sim::BitRate r = alloc_.flow_rate(id);
      // Unit-weight share this flow currently maps onto.
      const sim::BitRate base = p_old > 0 ? r / p_old : r;
      if (base > sim::BitRate{}) {
        // target/base is a same-unit ratio: the dimensionless priority.
        const double p_new =
            std::clamp(target / base, kMinPriority, kMaxPriority);
        alloc_.set_priority(id, p_new);
      }
      ++it;
    }
  }

  static constexpr double kMinPriority = 0.05;
  static constexpr double kMaxPriority = 64.0;

  /// Fraction of the remaining time budget deadline targets aim for
  /// (finish early rather than exactly on time).
  void set_deadline_safety(double f) noexcept {
    deadline_safety_ = std::clamp(f, 0.1, 1.0);
  }

 private:
  struct Goal {
    sim::BitRate target{};   ///< fixed-rate goal (when deadline_s < 0)
    double deadline_s = -1;  ///< absolute deadline (EDF mode) or -1
    std::int64_t total_bytes = 0;
  };

  RateAllocator& alloc_;
  std::unordered_map<net::FlowId, Goal> targets_;
  double deadline_safety_ = 0.8;
};

}  // namespace scda::core
