// Per-server power model (paper section VII-D).
//
// The paper derives P(t) from temperature sensors; we synthesize an
// equivalent heterogeneous signal: P = idle + span * load, scaled by a
// per-server inefficiency factor (rack position, age, background tasks).
// A dormant server draws only standby power. Energy is integrated by the
// control plane every control interval.
#pragma once

#include <algorithm>

namespace scda::core {

class PowerModel {
 public:
  PowerModel() = default;
  PowerModel(double idle_w, double peak_w, double inefficiency = 1.0)
      : idle_w_(idle_w), peak_w_(peak_w), inefficiency_(inefficiency) {}

  /// Instantaneous power draw given utilization in [0,1].
  [[nodiscard]] double power_w(double utilization) const noexcept {
    if (dormant_) return standby_w_;
    const double u = std::clamp(utilization, 0.0, 1.0);
    return inefficiency_ * (idle_w_ + (peak_w_ - idle_w_) * u);
  }

  /// Running average used for selection ranking; new samples weighted by
  /// `w_new` (paper: "running average or more weight to the latest").
  void record_sample(double power_w_sample, double w_new = 0.3) noexcept {
    if (avg_w_ <= 0) {
      avg_w_ = power_w_sample;
    } else {
      avg_w_ = (1.0 - w_new) * avg_w_ + w_new * power_w_sample;
    }
  }
  [[nodiscard]] double average_w() const noexcept {
    return avg_w_ > 0 ? avg_w_ : inefficiency_ * idle_w_;
  }

  void integrate_energy(double power_w_sample, double dt_s) noexcept {
    energy_j_ += power_w_sample * dt_s;
  }
  [[nodiscard]] double energy_j() const noexcept { return energy_j_; }

  void set_dormant(bool d) noexcept { dormant_ = d; }
  [[nodiscard]] bool dormant() const noexcept { return dormant_; }

  void set_inefficiency(double f) noexcept { inefficiency_ = f; }
  [[nodiscard]] double inefficiency() const noexcept { return inefficiency_; }
  [[nodiscard]] double idle_w() const noexcept { return idle_w_; }
  [[nodiscard]] double peak_w() const noexcept { return peak_w_; }
  void set_standby_w(double w) noexcept { standby_w_ = w; }
  [[nodiscard]] double standby_w() const noexcept { return standby_w_; }

 private:
  double idle_w_ = 150.0;
  double peak_w_ = 300.0;
  double standby_w_ = 15.0;
  double inefficiency_ = 1.0;
  bool dormant_ = false;
  double avg_w_ = 0.0;
  double energy_j_ = 0.0;
};

}  // namespace scda::core
