// Cloud: the top-level SCDA system façade and public API.
//
// Owns the three-tier datacenter (figure 6), the transports, the RM/RA
// allocation hierarchy, the FES + name nodes, the block servers with their
// power/resource models, and the SLA manager. Client write/read requests
// follow the message sequences of paper figures 3-5, with control-plane
// hops modelled as latency-delayed RPCs.
//
// The same class also runs the RandTCP baseline (random placement + TCP),
// selected through CloudConfig, so SCDA-vs-RandTCP comparisons share every
// other piece of the stack.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/block_server.h"
#include "core/classifier.h"
#include "core/hierarchy.h"
#include "core/name_node.h"
#include "core/params.h"
#include "core/rate_allocator.h"
#include "core/selection.h"
#include "core/sla.h"
#include "core/target_rate.h"
#include "net/topology.h"
#include "sim/failure_schedule.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"

namespace scda::core {

class ChurnInjector;

struct CloudConfig {
  net::TopologyConfig topology;
  ScdaParams params;
  PlacementPolicy placement = PlacementPolicy::kScda;
  transport::TransportKind transport = transport::TransportKind::kScda;
  /// Replicate each written content once after the initial write
  /// (section VIII-B); both policies replicate so comparisons are fair.
  bool enable_replication = true;
  /// Latency penalty when a read wakes a dormant server (power-state
  /// transition, section VII-C).
  double dormant_wake_latency_s = 0.3;
  /// Power-model heterogeneity: per-server inefficiency factor drawn
  /// uniformly from [1, 1 + power_heterogeneity] (section VII-D).
  double power_heterogeneity = 0.4;
  /// Hybrid fluid/packet mode for SCDA data flows (docs/fluid_engine.md):
  /// elephants advance analytically between RA epochs, mice stay packets.
  transport::FluidConfig fluid;
  /// Failure injection: seed-derived server/link churn plus scripted
  /// outages, driven by a ChurnInjector the Cloud owns (docs/scenarios.md).
  sim::ChurnConfig churn;
};

/// What a completed flow was doing, reported alongside the flow record.
struct CloudOp {
  ContentId content = kInvalidContent;
  transport::ContentClass content_class =
      transport::ContentClass::kSemiInteractive;
  enum class Kind : std::uint8_t {
    kWrite,
    kRead,
    kReplication,
    kMigration,  ///< cold-content move to a dormant-eligible server (VII-C)
    kAppend,     ///< in-place update of existing content (HWHR traffic)
    kRebalance,  ///< proactive hot/overfull move (docs/scenarios.md)
    kNnsSync,    ///< recovering name node re-syncing from its peer
  } kind = Kind::kWrite;
  std::int32_t server = -1;   ///< block server index serving the op
  std::int64_t client = -1;   ///< client index (-1 for internal ops)
  std::int32_t source_server = -1;  ///< replication/migration: copy source
  /// Background re-replication flow (docs/scenarios.md): runs at
  /// ScdaParams::repair_priority and feeds the repair accounting.
  bool repair = false;
};

/// Failure/replication scenario counters (docs/scenarios.md). Maintained
/// unconditionally (plain increments); surfaced as metric ids only when
/// churn is enabled so historical artifacts stay byte-identical.
struct ChurnStats {
  std::uint64_t failovers = 0;       ///< reads re-driven to another replica
  std::uint64_t aborted_flows = 0;   ///< in-flight flows cut by a failure
  std::uint64_t repair_flows_started = 0;
  std::uint64_t repair_flows_completed = 0;
  std::uint64_t repair_bytes = 0;    ///< payload re-protected by repair
  std::uint64_t repair_retries = 0;  ///< repair flows aborted or re-queued
  std::uint64_t sla_violations_during_repair = 0;
  std::uint64_t objects_lost = 0;    ///< every replica gone (unreadable)
};

/// Metadata-plane fault-tolerance counters (docs/scenarios.md). Surfaced
/// as `metadata.*` metric ids only when NNS churn is configured, so
/// committed churn artifacts stay byte-identical.
struct MetadataStats {
  std::uint64_t requests_timed_out = 0;  ///< client deadline expiries
  std::uint64_t retries = 0;             ///< re-dispatches (backoff path)
  std::uint64_t failovers = 0;           ///< requests served by a standby
  std::uint64_t unavailable = 0;   ///< dispatches finding no live replica
  std::uint64_t requests_dropped = 0;  ///< attempts exhausted (failed op)
  std::uint64_t mirror_updates = 0;    ///< primary->standby record copies
  std::uint64_t resyncs_started = 0;   ///< recovery sync flows launched
  std::uint64_t resyncs_completed = 0;
  std::uint64_t resync_bytes = 0;      ///< payload moved by sync flows
};

/// Proactive-rebalancing counters (docs/scenarios.md). Surfaced as
/// `rebalance.*` metric ids only when rebalancing is enabled.
struct RebalanceStats {
  std::uint64_t scans = 0;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t skipped = 0;  ///< overloaded server with no viable move
};

using CloudCompletionFn =
    std::function<void(const transport::FlowRecord&, const CloudOp&)>;

/// Point-in-time operational summary of the whole cloud (monitoring /
/// off-line diagnosis — the paper's "aggregated and monitored traffic
/// metrics can be offloaded to an external server").
struct CloudSnapshot {
  double time_s = 0;
  std::size_t active_flows = 0;
  std::size_t contents_stored = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t sla_violations = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t failed_writes = 0;
  std::uint64_t migrations = 0;
  std::size_t dormant_servers = 0;
  std::size_t failed_servers = 0;
  double total_energy_j = 0;
  double mean_nns_delay_s = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;

  /// Human-readable one-block dump.
  void print(std::FILE* out) const;
};

class Cloud {
 public:
  Cloud(sim::Simulator& sim, CloudConfig cfg);
  ~Cloud();

  Cloud(const Cloud&) = delete;
  Cloud& operator=(const Cloud&) = delete;

  // --- public request API (what a UCL sees) ----------------------------------
  /// Store `bytes` of content under `id`; follows Fig. 3 then replicates
  /// per Fig. 4. Returns false if the content id is already stored.
  bool write(std::size_t client_idx, ContentId id, std::int64_t bytes,
             transport::ContentClass content_class =
                 transport::ContentClass::kSemiInteractive,
             double priority = 1.0, sim::BitRate reserved = {});

  /// Retrieve previously stored content (Fig. 5). Unknown content ids are
  /// counted in failed_reads(). Returns false when rejected immediately.
  bool read(std::size_t client_idx, ContentId id, double priority = 1.0);

  /// Update existing content in place: write `bytes` more to its primary
  /// replica (the high-write path of active HWHR/HWLR content, section
  /// II-B — chat logs, collaborative documents, database tables). Fails
  /// for unknown content.
  bool append(std::size_t client_idx, ContentId id, std::int64_t bytes,
              double priority = 1.0);

  /// Subscribe to completions of every data flow (writes, reads,
  /// replications). Multiple subscribers are invoked in add order.
  void add_completion_callback(CloudCompletionFn fn) {
    on_complete_.push_back(std::move(fn));
  }

  // --- component access ------------------------------------------------------
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] net::ThreeTierTree& topology() noexcept { return topo_; }
  [[nodiscard]] transport::TransportManager& transports() noexcept {
    return transports_;
  }
  [[nodiscard]] RateAllocator& allocator() noexcept { return allocator_; }
  [[nodiscard]] Hierarchy& hierarchy() noexcept { return hierarchy_; }
  [[nodiscard]] SlaManager& sla() noexcept { return sla_; }
  [[nodiscard]] ServerSelector& selector() noexcept { return *selector_; }
  [[nodiscard]] FrontEnd& fes() noexcept { return *fes_; }
  [[nodiscard]] std::vector<BlockServer>& servers() noexcept {
    return servers_;
  }
  [[nodiscard]] const CloudConfig& config() const noexcept { return cfg_; }

  // --- aggregate statistics --------------------------------------------------
  [[nodiscard]] std::uint64_t failed_reads() const noexcept {
    return failed_reads_;
  }
  [[nodiscard]] std::uint64_t failed_writes() const noexcept {
    return failed_writes_;
  }
  /// Total energy consumed by all block servers so far (joules).
  [[nodiscard]] double total_energy_j() const;
  /// Count of servers currently dormant.
  [[nodiscard]] std::size_t dormant_servers() const;
  /// Control-plane overhead accounting (messages modelled as RPCs).
  [[nodiscard]] std::uint64_t control_messages() const noexcept {
    return ctrl_messages_;
  }
  [[nodiscard]] std::uint64_t control_bytes() const noexcept {
    return ctrl_bytes_;
  }

  /// Adjust a flow's priority weight; takes effect next control interval
  /// (adaptive QoS, section IV-A). No-op for TCP flows.
  void set_flow_priority(net::FlowId id, double priority);

  /// Adaptive QoS (section IV-A): the control loop retunes the flow's
  /// priority every interval so its allocation tracks `target`.
  void set_flow_target_rate(net::FlowId id, sim::BitRate target);
  /// EDF-style deadline: the target rate is remaining bytes / time left.
  void set_flow_deadline(net::FlowId id, double deadline_s);

  /// Like write(), but the resulting upload flow is driven to finish by
  /// `deadline_s` (absolute simulation time) via adaptive priorities.
  bool write_with_deadline(std::size_t client_idx, ContentId id,
                           std::int64_t bytes, double deadline_s,
                           transport::ContentClass content_class =
                               transport::ContentClass::kSemiInteractive);

  [[nodiscard]] TargetRateController& target_rates() noexcept {
    return target_ctrl_;
  }

  /// Operational summary for monitoring/diagnosis.
  [[nodiscard]] CloudSnapshot snapshot() const;

  // --- failure injection -----------------------------------------------------
  /// Take a block server down. In-flight flows touching it are aborted
  /// (reads fail over, writes are failed back to the client), its blocks
  /// become unavailable, selection skips it, and (by default) every content
  /// it held is queued for background re-replication from a surviving copy
  /// so the replication factor recovers.
  void fail_server(std::size_t server_idx, bool re_replicate = true);
  /// Bring a failed server back. Its disk is scrubbed (stale blocks were
  /// dropped from metadata at failure time); it fills up again through
  /// normal placement.
  void recover_server(std::size_t server_idx);

  /// Cut or restore a link (failure injection, docs/scenarios.md). The
  /// link refuses packets and the allocator pins every flow crossing it to
  /// zero. `propagate` pushes the new rates to senders and the fluid
  /// engine immediately; batch callers toggle several links with
  /// propagate=false and finish with one propagating call.
  void set_link_up(net::LinkId l, bool up, bool propagate = true);

  /// Abort one in-flight flow (replica failure): unregisters it, rolls
  /// back partial placement state and triggers the per-kind retry policy
  /// (read failover, write failure, repair re-queue). Returns false for
  /// unknown/finished flows.
  bool abort_flow(net::FlowId id);

  // --- metadata-plane fault tolerance (docs/scenarios.md) --------------------
  /// Whether the NNS failover layer (standby mirroring, liveness-aware
  /// dispatch, timeout/retry) is active for this run.
  [[nodiscard]] bool nns_failover_enabled() const noexcept {
    return nns_failover_;
  }
  /// NNS instances: shard primaries first, then standbys (instance
  /// n_shards + i is shard i's standby). Without failover there are only
  /// the primaries.
  [[nodiscard]] std::size_t nns_instance_count() const noexcept {
    return name_nodes_.size() + standby_nodes_.size();
  }
  [[nodiscard]] NameNode& nns_instance(std::size_t instance) {
    return instance < name_nodes_.size()
               ? *name_nodes_[instance]
               : *standby_nodes_.at(instance - name_nodes_.size());
  }
  /// Take an NNS instance down: it stops serving, its queued requests die
  /// with it (clients recover via timeout + retry), and dispatch fails
  /// over to the shard's surviving peer.
  void fail_nns(std::size_t instance);
  /// Bring an NNS instance back: it re-syncs its metadata from the live
  /// peer as a low-priority background flow before rejoining; with no
  /// live peer it rejoins immediately with whatever state it kept.
  void recover_nns(std::size_t instance);
  [[nodiscard]] const MetadataStats& meta_stats() const noexcept {
    return meta_stats_;
  }

  // --- proactive rebalancing -------------------------------------------------
  [[nodiscard]] bool rebalance_enabled() const noexcept {
    return cfg_.params.rebalance_interval_s > 0;
  }
  [[nodiscard]] const RebalanceStats& rebalance_stats() const noexcept {
    return rebalance_stats_;
  }

  // --- churn / repair accounting ---------------------------------------------
  [[nodiscard]] const ChurnStats& churn_stats() const noexcept {
    return churn_;
  }
  /// Object-seconds spent under-replicated (only objects that reached the
  /// target replica count once; integrated exactly on transitions).
  [[nodiscard]] double under_replicated_seconds() const;
  /// Objects currently below their target replica count.
  [[nodiscard]] std::int64_t under_replicated_objects() const noexcept {
    return under_replicated_count_;
  }
  [[nodiscard]] std::int32_t repairs_in_flight() const noexcept {
    return repairs_in_flight_;
  }
  [[nodiscard]] std::size_t repair_queue_depth() const noexcept {
    return repair_queue_.size();
  }
  /// The failure injector driving scheduled churn, or nullptr when churn
  /// is disabled.
  [[nodiscard]] const ChurnInjector* churn() const noexcept {
    return churn_injector_.get();
  }

  /// Learned access classes (section VII-C); fed by completed operations.
  [[nodiscard]] ContentClassifier& classifier() noexcept {
    return classifier_;
  }
  [[nodiscard]] std::uint64_t migrations_completed() const noexcept {
    return migrations_completed_;
  }

 private:
  void control_tick();
  void update_ongoing_flows();
  void integrate_power();
  void dormancy_housekeeping();
  void migration_scan();
  void rebalance_scan();
  void count_ctrl(std::uint64_t messages, std::uint64_t bytes) {
    ctrl_messages_ += messages;
    ctrl_bytes_ += bytes;
  }

  // --- metadata-plane machinery (docs/scenarios.md) --------------------------
  /// One client-side metadata request: the handler runs on whichever NNS
  /// instance ends up serving it; on_give_up fires when every attempt is
  /// exhausted (the request is surfaced as a failed operation).
  struct MetaRequest {
    std::function<void(NameNode&)> fn;
    std::function<void()> on_give_up;
    bool done = false;
  };
  /// Liveness + recovery state of one metadata shard (primary/standby).
  struct NnsShardState {
    bool primary_alive = true;
    bool standby_alive = true;
    bool primary_syncing = false;  ///< recovering, not yet rejoined
    bool standby_syncing = false;
    net::FlowId sync_flow = net::kInvalidFlow;  ///< in-flight resync
    bool sync_pending = false;  ///< resync setup RPC posted, flow not yet up
  };

  [[nodiscard]] std::size_t shard_of_key(std::uint64_t key) const;
  /// The shard's serving node: primary unless down/syncing, else standby,
  /// else nullptr (degraded window — requests queue and retry).
  [[nodiscard]] NameNode* serving_nns(std::size_t shard);
  /// Submit a metadata request keyed by `key` through the FES, with
  /// failover + timeout/retry when the metadata plane can churn; reduces
  /// to the historical direct submit otherwise.
  void submit_metadata_request(std::uint64_t key,
                               std::function<void(NameNode&)> fn,
                               std::function<void()> on_give_up);
  void dispatch_metadata(std::size_t shard, std::int32_t attempt,
                         const std::shared_ptr<MetaRequest>& req);
  void schedule_metadata_retry(std::size_t shard, std::int32_t attempt,
                               const std::shared_ptr<MetaRequest>& req);
  /// Mirror one record from the node that just mutated it to the shard's
  /// peer (intra-DC consistency hop; the peer applies the copy one
  /// ctrl_dc latency later).
  void mirror_meta(NameNode& from, ContentId id);
  /// Launch queued standby/primary re-sync flows (control tick; deferred
  /// while the peer or a host server is down).
  void drain_resync_queue();
  void finish_resync(std::size_t instance);
  /// Host server an NNS instance's sync traffic terminates on (the
  /// control plane is consolidated on a few servers, paper section III).
  [[nodiscard]] std::size_t nns_host_server(std::size_t instance) const;

  net::FlowId start_data_flow(net::NodeId src, net::NodeId dst,
                              std::int64_t bytes, const CloudOp& op,
                              double priority, sim::BitRate reserved);
  void on_flow_complete(const transport::FlowRecord& rec);
  /// Start one replication hop from op.server; `repair` flows run at
  /// params.repair_priority and feed the repair accounting.
  void begin_replication(const CloudOp& op, std::int64_t bytes,
                         double priority = 1.0, bool repair = false);

  // --- churn / repair machinery (docs/scenarios.md) --------------------------
  /// Queue `id` for background re-replication (deduplicated).
  void enqueue_repair(ContentId id);
  /// Start queued repairs up to params.max_concurrent_repairs (control tick).
  void drain_repair_queue();
  /// Re-check an object's replica count against the target and move the
  /// under-replicated clock (exact event-time integration).
  void note_replicas_changed(ContentMeta& meta);
  void update_under_replicated_clock();
  /// Abort every in-flight flow whose op touches the failed server.
  void abort_flows_touching_server(std::int32_t idx);
  /// Undo the eager BlockServer::store of a flow that never completed.
  void rollback_partial_store(const CloudOp& op);
  /// Push refreshed allocations to senders and the fluid engine.
  void propagate_rate_changes();

  /// The authoritative metadata map for `id`: the shard's primary unless
  /// failover handed authority to the standby. Falls back to the primary
  /// when the whole shard is down (bookkeeping continues on the durable
  /// map; *serving* requests is gated separately by serving_nns()).
  [[nodiscard]] NameNode& meta_owner(ContentId id);
  /// Per-shard version of meta_owner (same authority rule).
  [[nodiscard]] NameNode& authority_nns(std::size_t shard);
  [[nodiscard]] const NameNode& authority_nns(std::size_t shard) const;

  /// Server index of a server node id (node ids are not contiguous).
  [[nodiscard]] std::size_t server_index_of(net::NodeId node) const {
    return server_index_by_node_.at(node);
  }

  sim::Simulator& sim_;
  CloudConfig cfg_;
  net::ThreeTierTree topo_;
  transport::TransportManager transports_;
  RateAllocator allocator_;
  Hierarchy hierarchy_;
  SlaManager sla_;
  std::vector<std::unique_ptr<NameNode>> name_nodes_;
  /// Shard standbys (same order as name_nodes_); populated only when NNS
  /// churn is configured, so churn-free runs carry zero extra state.
  std::vector<std::unique_ptr<NameNode>> standby_nodes_;
  bool nns_failover_ = false;
  std::vector<NnsShardState> nns_state_;
  /// NNS instances waiting for a recovery sync (drained on control ticks).
  std::deque<std::size_t> resync_queue_;
  MetadataStats meta_stats_;
  RebalanceStats rebalance_stats_;
  std::unique_ptr<FrontEnd> fes_;
  std::unique_ptr<ServerSelector> selector_;
  std::vector<BlockServer> servers_;
  std::unique_ptr<sim::PeriodicProcess> control_loop_;
  std::unique_ptr<sim::PeriodicProcess> migration_loop_;
  std::unique_ptr<sim::PeriodicProcess> rebalance_loop_;
  ContentClassifier classifier_;
  TargetRateController target_ctrl_{allocator_};
  /// Deadlines requested before the upload flow exists, keyed by content.
  std::unordered_map<ContentId, double> pending_deadline_;
  std::uint64_t migrations_completed_ = 0;
  /// Content with a move already in flight (avoid duplicate migrations).
  std::unordered_map<ContentId, bool> migrating_;

  std::vector<CloudCompletionFn> on_complete_;
  std::unordered_map<net::FlowId, CloudOp> ops_;
  std::unordered_map<net::FlowId, transport::ScdaFlowHandles> active_scda_;
  /// Non-passive content blocks per server (dormancy eligibility).
  std::vector<std::int32_t> active_content_count_;
  std::unordered_map<net::NodeId, std::size_t> server_index_by_node_;
  /// Previous access-link tx bytes per server (power utilization estimate).
  std::vector<std::uint64_t> prev_tx_bytes_;

  /// Content ids accepted for writing (pending or stored); duplicate write
  /// requests are rejected synchronously.
  std::unordered_map<ContentId, bool> known_content_;
  std::uint64_t failed_reads_ = 0;
  std::uint64_t failed_writes_ = 0;
  std::uint64_t ctrl_messages_ = 0;
  std::uint64_t ctrl_bytes_ = 0;

  // --- churn / repair state (docs/scenarios.md) ------------------------------
  ChurnStats churn_;
  std::unique_ptr<ChurnInjector> churn_injector_;
  std::deque<ContentId> repair_queue_;
  /// Content queued or repairing (deduplicates repair requests).
  std::unordered_map<ContentId, bool> repair_pending_;
  std::int32_t repairs_in_flight_ = 0;
  /// Exact integration of object-seconds under-replicated.
  std::int64_t under_replicated_count_ = 0;
  double under_replicated_seconds_ = 0.0;
  sim::Time under_last_update_{};
};

}  // namespace scda::core
