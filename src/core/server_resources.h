// Per-server non-network resources (CPU, disk) — the R_other inputs of the
// multi-resource allocation path (paper section VI-A).
//
// Real deployments profile "what CPU/disk usage can serve what link rate";
// here each server exposes effective service rates as dimension-checked
// sim::BitRate values that may be reduced by synthetic background load.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/types.h"

namespace scda::core {

class ServerResources {
 public:
  ServerResources() = default;
  ServerResources(sim::BitRate cpu, sim::BitRate disk)
      : cpu_(cpu), disk_(disk) {}

  /// R_other: the rate the server can sustain beyond the network —
  /// min(available CPU service rate, available disk service rate).
  [[nodiscard]] sim::BitRate r_other() const noexcept {
    const sim::BitRate cpu = cpu_ * (1.0 - cpu_background_);
    const sim::BitRate disk = disk_ * (1.0 - disk_background_);
    return sim::max(sim::BitRate{}, sim::min(cpu, disk));
  }

  void set_cpu(sim::BitRate v) noexcept { cpu_ = v; }
  void set_disk(sim::BitRate v) noexcept { disk_ = v; }
  /// Fraction [0,1) of the CPU consumed by internal computation.
  void set_cpu_background(double f) noexcept {
    cpu_background_ = std::clamp(f, 0.0, 1.0);
  }
  /// Fraction [0,1) of disk bandwidth consumed by background tasks.
  void set_disk_background(double f) noexcept {
    disk_background_ = std::clamp(f, 0.0, 1.0);
  }

  [[nodiscard]] sim::BitRate cpu() const noexcept { return cpu_; }
  [[nodiscard]] sim::BitRate disk() const noexcept { return disk_; }

  // --- storage accounting ---------------------------------------------------
  [[nodiscard]] std::int64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }
  [[nodiscard]] std::int64_t used_bytes() const noexcept { return used_bytes_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept {
    return capacity_bytes_ - used_bytes_;
  }
  void set_capacity_bytes(std::int64_t b) noexcept { capacity_bytes_ = b; }
  /// Returns false when the server lacks space.
  [[nodiscard]] bool reserve_bytes(std::int64_t b) noexcept {
    if (used_bytes_ + b > capacity_bytes_) return false;
    used_bytes_ += b;
    return true;
  }
  void release_bytes(std::int64_t b) noexcept {
    used_bytes_ = std::max<std::int64_t>(0, used_bytes_ - b);
  }

 private:
  // Defaults: a 10G-capable server backed by ~6.4 Gbps of disk bandwidth,
  // far above the figure-6 link rates so the network is the bottleneck
  // unless an experiment injects background load.
  sim::BitRate cpu_{10e9};
  sim::BitRate disk_{6.4e9};
  double cpu_background_ = 0.0;
  double disk_background_ = 0.0;
  std::int64_t capacity_bytes_ = std::int64_t{4} * 1000 * 1000 * 1000 * 1000;
  std::int64_t used_bytes_ = 0;
};

}  // namespace scda::core
