// Per-server non-network resources (CPU, disk) — the R_other inputs of the
// multi-resource allocation path (paper section VI-A).
//
// Real deployments profile "what CPU/disk usage can serve what link rate";
// here each server exposes effective service rates in bits/sec that may be
// reduced by synthetic background load.
#pragma once

#include <algorithm>
#include <cstdint>

namespace scda::core {

class ServerResources {
 public:
  ServerResources() = default;
  ServerResources(double cpu_bps, double disk_bps)
      : cpu_bps_(cpu_bps), disk_bps_(disk_bps) {}

  /// R_other: the rate the server can sustain beyond the network —
  /// min(available CPU service rate, available disk service rate).
  [[nodiscard]] double r_other_bps() const noexcept {
    const double cpu = cpu_bps_ * (1.0 - cpu_background_);
    const double disk = disk_bps_ * (1.0 - disk_background_);
    return std::max(0.0, std::min(cpu, disk));
  }

  void set_cpu_bps(double v) noexcept { cpu_bps_ = v; }
  void set_disk_bps(double v) noexcept { disk_bps_ = v; }
  /// Fraction [0,1) of the CPU consumed by internal computation.
  void set_cpu_background(double f) noexcept {
    cpu_background_ = std::clamp(f, 0.0, 1.0);
  }
  /// Fraction [0,1) of disk bandwidth consumed by background tasks.
  void set_disk_background(double f) noexcept {
    disk_background_ = std::clamp(f, 0.0, 1.0);
  }

  [[nodiscard]] double cpu_bps() const noexcept { return cpu_bps_; }
  [[nodiscard]] double disk_bps() const noexcept { return disk_bps_; }

  // --- storage accounting ---------------------------------------------------
  [[nodiscard]] std::int64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }
  [[nodiscard]] std::int64_t used_bytes() const noexcept { return used_bytes_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept {
    return capacity_bytes_ - used_bytes_;
  }
  void set_capacity_bytes(std::int64_t b) noexcept { capacity_bytes_ = b; }
  /// Returns false when the server lacks space.
  [[nodiscard]] bool reserve_bytes(std::int64_t b) noexcept {
    if (used_bytes_ + b > capacity_bytes_) return false;
    used_bytes_ += b;
    return true;
  }
  void release_bytes(std::int64_t b) noexcept {
    used_bytes_ = std::max<std::int64_t>(0, used_bytes_ - b);
  }

 private:
  // Defaults: a 10G-capable server backed by ~6.4 Gbps of disk bandwidth,
  // far above the figure-6 link rates so the network is the bottleneck
  // unless an experiment injects background load.
  double cpu_bps_ = 10e9;
  double disk_bps_ = 6.4e9;
  double cpu_background_ = 0.0;
  double disk_background_ = 0.0;
  std::int64_t capacity_bytes_ = std::int64_t{4} * 1000 * 1000 * 1000 * 1000;
  std::int64_t used_bytes_ = 0;
};

}  // namespace scda::core
