// The RM/RA hierarchy over the three-tier tree (paper sections III and VI,
// figure 2).
//
// Each block server has a resource monitor (RM) watching its access links;
// each switch level has a resource allocator (RA). Every control interval
// the hierarchy runs:
//
//   bottom-up:  R-hat^0 = min(link rate, R_other)          (at each RM)
//               R-hat^h = min(max over children R-hat^{h-1}, own link rate)
//               ... carrying the id of the best block server upward, for
//               the downlink, uplink and min(up,down) metrics;
//
//   top-down:   each RM learns the best h-level rates R-check^h = min of the
//               link rates from level h down to itself, which the NNS uses
//               to size windows of ongoing flows and to pick replicas.
//
// The per-link rates themselves come from the RateAllocator; this class is
// the tree-structured aggregation that the paper distributes across RM/RA
// message exchanges. All values are dimension-checked sim::BitRate.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/rate_allocator.h"
#include "net/topology.h"

namespace scda::core {

/// hmax for the three-tier topology (paper: "for such three tier topology,
/// hmax = 3"; block servers are level 0).
constexpr int kMaxLevel = 3;

/// Ranking metric for server selection (paper section VII).
enum class SelectionMetric : std::uint8_t {
  kDown,       ///< best downlink rate (fast writes)
  kUp,         ///< best uplink rate (fast reads)
  kMinUpDown,  ///< best min(up, down) (interactive content)
};

struct BestServer {
  std::int32_t server = -1;  ///< server index in the topology (not NodeId)
  /// Ranking value. A plain best_server query reports the winning R-hat;
  /// a reweighted query (power-aware bps-per-watt) reports the reweighted
  /// score, which only the ordering of matters.
  sim::BitRate value{};
};

struct SlaLevelReport {
  /// violations attributed to RMs (level 0) and RAs (levels 1..3),
  /// summed over both directions.
  std::uint64_t per_level[kMaxLevel + 1] = {0, 0, 0, 0};
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto v : per_level) t += v;
    return t;
  }
};

class Hierarchy {
 public:
  Hierarchy(net::ThreeTierTree& topo, RateAllocator& alloc);

  /// Per-server R_other provider (CPU/disk constraint at the RM,
  /// section VI-A); nullptr means link-bandwidth-only allocation.
  void set_r_other_provider(std::function<sim::BitRate(std::size_t)> fn) {
    r_other_ = std::move(fn);
  }

  /// Recompute all R-hat / R-check values from the allocator's current
  /// per-link rates. Call once per control interval, after
  /// RateAllocator::tick().
  void update();

  // --- bottom-up results (kept at the RAs) ----------------------------------
  /// Value of server `s` at tree level `h`: min of its R-hat^0 and the link
  /// rates on its upward path through level h.
  [[nodiscard]] sim::BitRate server_value_up(std::size_t s, int level) const {
    return val_up_.at(idx(s, level));
  }
  [[nodiscard]] sim::BitRate server_value_down(std::size_t s, int level) const {
    return val_down_.at(idx(s, level));
  }

  /// Best block server across the whole datacenter at level `level`
  /// (the answer the level-hmax RA gives the NNS).
  [[nodiscard]] BestServer best_server(SelectionMetric m,
                                       int level = kMaxLevel) const;

  /// Best server restricted to one rack (the level-1 RA's answer).
  [[nodiscard]] BestServer best_server_in_rack(std::size_t tor_idx,
                                               SelectionMetric m) const;

  /// Best server satisfying an arbitrary predicate (used by the dormant /
  /// power-aware policies which filter or re-weight candidates). The
  /// reweight maps (server, R-hat) to the ranking score; the power-aware
  /// policy divides by watts, so the score is bps-per-watt reinterpreted
  /// in rate space — only its ordering is consumed.
  [[nodiscard]] BestServer best_server_filtered(
      SelectionMetric m, int level,
      const std::function<bool(std::size_t)>& admit,
      const std::function<sim::BitRate(std::size_t, sim::BitRate)>& reweight =
          nullptr) const;

  // --- top-down results (kept at the RMs) ------------------------------------
  /// R-check: rate from level `h` down to server `s` (downlink direction).
  [[nodiscard]] sim::BitRate rm_level_rate_down(std::size_t s,
                                                int level) const {
    return rcheck_down_.at(idx(s, level));
  }
  /// R-check for the uplink direction (server s up through level h).
  [[nodiscard]] sim::BitRate rm_level_rate_up(std::size_t s, int level) const {
    return rcheck_up_.at(idx(s, level));
  }

  /// R-hat^0 at the RM: min(access link rate, R_other).
  [[nodiscard]] sim::BitRate rm_rhat_up(std::size_t s) const {
    return val_up_.at(idx(s, 0));
  }
  [[nodiscard]] sim::BitRate rm_rhat_down(std::size_t s) const {
    return val_down_.at(idx(s, 0));
  }

  /// SLA violations attributed to each level of the RM/RA tree.
  [[nodiscard]] SlaLevelReport sla_report() const;

  [[nodiscard]] std::size_t server_count() const noexcept { return n_; }
  [[nodiscard]] net::ThreeTierTree& topology() noexcept { return topo_; }

 private:
  /// Flat level-major index: level h's values for all servers are the
  /// contiguous row [h*n_, (h+1)*n_), so best_server scans one cache-friendly
  /// row instead of striding across per-server vectors.
  [[nodiscard]] std::size_t idx(std::size_t s, int level) const {
    if (s >= n_) throw std::out_of_range("Hierarchy: server index");
    return static_cast<std::size_t>(level) * n_ + s;
  }

  net::ThreeTierTree& topo_;
  RateAllocator& alloc_;
  std::function<sim::BitRate(std::size_t)> r_other_;
  std::size_t n_ = 0;  ///< server count (row stride)

  // Level-major (kMaxLevel+1) x n_ tables.
  // val_*: bottom-up server values (R-hat chain).
  std::vector<sim::BitRate> val_up_;
  std::vector<sim::BitRate> val_down_;
  // rcheck_*: top-down per-RM level rates.
  std::vector<sim::BitRate> rcheck_up_;
  std::vector<sim::BitRate> rcheck_down_;
  // Per-ToR cumulative upward-path mins (levels 1..3), recomputed each
  // update(); min is associative so hoisting them out of the server loop
  // yields bit-identical values.
  struct TorCums {
    sim::BitRate up1, up2, up3;
    sim::BitRate dn1, dn2, dn3;
  };
  std::vector<TorCums> tor_cums_;
};

}  // namespace scda::core
