// Widest-path (max/min) route selection for general topologies — paper
// section IX:
//
//   "The weight of each link is the value of R_{d,u}(t) of that link ...
//    a max/min algorithm has to be used to find the best path and the rate
//    in that path. This is done by first finding the minimum rate of each
//    path and then taking the path with the maximum such rate."
//
// `widest_path` runs a Dijkstra variant maximizing the bottleneck link
// rate (ties broken by fewer hops, then by node id for determinism). The
// rate lookup is a callback so callers can plug the RateAllocator's
// current per-link rates or any other metric.
#pragma once

#include <functional>
#include <vector>

#include "net/network.h"

namespace scda::core {

struct WidestPathResult {
  std::vector<net::LinkId> path;  ///< empty when dst is unreachable/src==dst
  sim::BitRate bottleneck{};      ///< min link rate along the path
};

/// Rate (weight) of a link; larger is better.
using LinkRateFn = std::function<sim::BitRate(net::LinkId)>;

[[nodiscard]] WidestPathResult widest_path(const net::Network& net,
                                           net::NodeId src, net::NodeId dst,
                                           const LinkRateFn& rate);

}  // namespace scda::core
