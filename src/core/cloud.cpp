#include "core/cloud.h"

#include <algorithm>

#include "core/churn.h"
#include "obs/observability.h"
#include "util/log.h"

namespace scda::core {

using transport::ContentClass;
using transport::TransportKind;

namespace {
/// Approximate wire size of one control RPC (request id + addresses + rate).
constexpr std::uint64_t kCtrlMsgBytes = 64;
}  // namespace

Cloud::Cloud(sim::Simulator& sim, CloudConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      topo_(sim, cfg_.topology),
      transports_(topo_.net()),
      allocator_(topo_.net(), cfg_.params),
      hierarchy_(topo_, allocator_),
      sla_(topo_.net()) {
  const auto n_servers = static_cast<std::size_t>(cfg_.topology.n_servers());

  // Block servers with heterogeneous power profiles (section VII-D).
  servers_.reserve(n_servers);
  for (std::size_t s = 0; s < n_servers; ++s) {
    servers_.emplace_back(s, topo_.servers()[s]);
    const double ineff =
        1.0 + sim_.rng().uniform() * cfg_.power_heterogeneity;
    servers_.back().power().set_inefficiency(ineff);
  }
  active_content_count_.assign(n_servers, 0);
  prev_tx_bytes_.assign(n_servers, 0);
  for (std::size_t s = 0; s < n_servers; ++s)
    server_index_by_node_.emplace(topo_.servers()[s], s);

  // Name nodes behind the FES (section III-A).
  const auto n_nns = std::max<std::int32_t>(1, cfg_.params.n_name_nodes);
  for (std::int32_t i = 0; i < n_nns; ++i) {
    name_nodes_.push_back(std::make_unique<NameNode>(
        sim_, i, cfg_.params.nns_service_time_s));
  }
  std::vector<NameNode*> nns_ptrs;
  for (auto& n : name_nodes_) nns_ptrs.push_back(n.get());
  fes_ = std::make_unique<FrontEnd>(std::move(nns_ptrs));

  // Metadata-plane fault tolerance (docs/scenarios.md): when NNS churn is
  // configured, every shard gets a standby mirror and the request paths
  // grow failover + timeout/retry. Gated so that runs without NNS churn
  // execute the exact historical event sequence.
  nns_failover_ = sim::nns_churn_configured(cfg_.churn);
  if (nns_failover_) {
    for (std::int32_t i = 0; i < n_nns; ++i) {
      standby_nodes_.push_back(std::make_unique<NameNode>(
          sim_, n_nns + i, cfg_.params.nns_service_time_s));
    }
    nns_state_.assign(static_cast<std::size_t>(n_nns), NnsShardState{});
  }

  selector_ = std::make_unique<ServerSelector>(
      hierarchy_, servers_, cfg_.params, sim_.rng(), cfg_.placement);
  // Admission: the server needs disk space, and for SCDA placements the NNS
  // avoids servers behind links with recent SLA violations (section IV-A).
  selector_->set_admit_filter([this](std::size_t s) {
    if (servers_[s].failed()) return false;
    if (servers_[s].resources().free_bytes() <= 0) return false;
    if (cfg_.placement == PlacementPolicy::kScda) {
      const sim::Time now = sim_.now();
      if (sla_.recently_violated(topo_.server_uplink(s), now) ||
          sla_.recently_violated(topo_.server_downlink(s), now))
        return false;
    }
    return true;
  });

  hierarchy_.set_r_other_provider([this](std::size_t s) {
    // A failed server offers no service rate at all (RM health signal).
    return servers_[s].failed() ? sim::BitRate{}
                                : servers_[s].resources().r_other();
  });

  allocator_.set_sla_callback(
      [this](net::LinkId l, sim::BitRate demand, sim::BitRate gamma,
             sim::Time t) {
        // SLA pressure attributable to repair traffic (docs/scenarios.md):
        // violations while background re-replication is in flight.
        if (repairs_in_flight_ > 0) ++churn_.sla_violations_during_repair;
        sla_.on_violation(l, demand, gamma, t);
      });

  transports_.set_completion_callback(
      [this](const transport::FlowRecord& rec) { on_flow_complete(rec); });

  transports_.set_fluid_config(cfg_.fluid);
  if (cfg_.fluid.enabled) {
    // Fluid re-rate on every RA epoch: the allocator's end-of-tick hook
    // fires after all allocations settle, so fluid flows integrate their
    // old rate up to the epoch and continue at the fresh r_j.
    allocator_.set_epoch_callback([this] {
      transports_.fluid().rerate_all(
          [this](net::FlowId id) { return allocator_.flow_rate(id); },
          /*epoch=*/true);
    });
  }

  // Control loop: RM/RA computation every tau (sections IV and VI).
  control_loop_ = std::make_unique<sim::PeriodicProcess>(
      sim_, sim::secs(cfg_.params.tau), [this] { control_tick(); });
  control_loop_->start(sim::secs(cfg_.params.tau));

  if (cfg_.params.migration_interval_s > 0) {
    migration_loop_ = std::make_unique<sim::PeriodicProcess>(
        sim_, sim::secs(cfg_.params.migration_interval_s),
        [this] { migration_scan(); });
    migration_loop_->start(sim::secs(cfg_.params.migration_interval_s));
  }

  if (cfg_.params.rebalance_interval_s > 0) {
    rebalance_loop_ = std::make_unique<sim::PeriodicProcess>(
        sim_, sim::secs(cfg_.params.rebalance_interval_s),
        [this] { rebalance_scan(); });
    rebalance_loop_->start(sim::secs(cfg_.params.rebalance_interval_s));
  }

  hierarchy_.update();

  // Failure injection last: the schedule is a pure function of (config,
  // topology shape, sim seed), posted up-front through the simulator.
  if (cfg_.churn.enabled)
    churn_injector_ = std::make_unique<ChurnInjector>(*this, cfg_.churn);
}

Cloud::~Cloud() = default;

// --------------------------------------------------------------------------
// control loop
// --------------------------------------------------------------------------

void Cloud::control_tick() {
  allocator_.tick();
  // Adaptive priority control (section IV-A): retune weights of flows with
  // rate targets or deadlines before windows are refreshed below.
  target_ctrl_.update(sim_.now(), [this](net::FlowId id) {
    const transport::FlowRecord& rec = transports_.record(id);
    if (rec.fluid && transports_.fluid().has_flow(id))
      return rec.size_bytes - transports_.fluid().delivered_bytes(id);
    const transport::WindowSender* s = transports_.sender(id);
    return s ? rec.size_bytes - s->acked_bytes() : std::int64_t{0};
  });
  hierarchy_.update();
  if (cfg_.transport == TransportKind::kScda) update_ongoing_flows();
  drain_repair_queue();
  if (nns_failover_) drain_resync_queue();
  integrate_power();
  dormancy_housekeeping();
  // Overhead: each RM and RA reports (or forwards) its rate sums once per
  // interval (the Delta-encoding of section IV would shrink this further).
  const std::uint64_t reporters =
      servers_.size() + topo_.tors().size() + topo_.aggs().size() + 1;
  count_ctrl(reporters, reporters * kCtrlMsgBytes);

  if (obs::TraceRecorder* tr = obs::tracer_of(sim_)) {
    const sim::Time now = sim_.now();
    tr->counter(now, "active_flows", static_cast<double>(ops_.size()));
    tr->counter(now, "eventq_pending",
                static_cast<double>(sim_.queue().scheduled()));
    tr->counter(now, "dormant_servers",
                static_cast<double>(dormant_servers()));
  }
}

void Cloud::update_ongoing_flows() {
  // Paper section VIII-D: every control interval, each RM re-derives the
  // windows of its ongoing flows from the current allocation.
  for (auto& [id, handles] : active_scda_) {
    const sim::BitRate r = allocator_.flow_rate(id);
    handles.sender->set_rate(r);
    const double rtt =
        handles.sender->srtt() > 0
            ? handles.sender->srtt()
            : transports_.base_rtt(handles.sender->record().src,
                                   handles.sender->record().dst);
    // Window-sizing boundary: rate*rtt/8*headroom, unwrapped once.
    handles.receiver->set_rcvw_bytes(static_cast<std::int64_t>(
        r.bps() * rtt / 8.0 * cfg_.params.rcvw_headroom));
  }
}

void Cloud::integrate_power() {
  const double tau = cfg_.params.tau;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const net::Link& up = topo_.net().link(topo_.server_uplink(s));
    const net::Link& down = topo_.net().link(topo_.server_downlink(s));
    const std::uint64_t tx = up.stats().tx_bytes + down.stats().tx_bytes;
    const double bits = static_cast<double>(tx - prev_tx_bytes_[s]) * 8.0;
    prev_tx_bytes_[s] = tx;
    const sim::BitRate cap = up.capacity() + down.capacity();
    // Utilization is dimensionless: bits / (rate * tau) unwraps once.
    const double util =
        cap > sim::BitRate{} ? std::min(1.0, bits / (cap.bps() * tau)) : 0.0;
    const double p = servers_[s].power().power_w(util);
    servers_[s].power().record_sample(p);
    servers_[s].power().integrate_energy(p, tau);
  }
}

void Cloud::dormancy_housekeeping() {
  if (cfg_.params.rscale <= sim::BitRate{}) return;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    BlockServer& bs = servers_[s];
    if (!bs.dormant() && bs.active_flows() == 0 &&
        active_content_count_[s] == 0) {
      // Idle server holding no active content (only passive blocks, or
      // nothing at all): scale it down. It is woken when active content is
      // placed on it or a read hits one of its passive blocks.
      bs.set_dormant(true);
    }
  }
}

void Cloud::migration_scan() {
  // Section VII-C: content whose learned access pattern is passive is
  // moved off active servers onto dormant-eligible ones, so those active
  // servers' load shrinks and the dormant pool grows.
  if (cfg_.params.rscale <= sim::BitRate{}) return;
  std::int32_t started = 0;
  const sim::Time now = sim_.now();
  for (std::size_t shard = 0; shard < name_nodes_.size(); ++shard) {
    if (started >= cfg_.params.max_migrations_per_scan) break;
    NameNode& nns = authority_nns(shard);
    for (const ContentId id : nns.content_ids()) {
      if (started >= cfg_.params.max_migrations_per_scan) break;
      ContentMeta* meta = nns.find(id);
      if (meta == nullptr || meta->replicas.empty()) continue;
      if (meta->content_class == ContentClass::kPassive) continue;
      if (migrating_.count(id)) continue;
      // Only migrate content the classifier has actually cooled down on:
      // it must have been accessed at least once and be quiet since.
      if (classifier_.classify(id, now) != ContentClass::kPassive) continue;
      if (now - meta->last_access_time <
          sim::secs(classifier_.config().interactivity_interval_s))
        continue;

      const std::int32_t source = meta->replicas.front();
      const std::int32_t target = selector_->select_replica_target(
          ContentClass::kPassive, source);
      if (target < 0 || target == source) continue;
      BlockServer& dst = servers_[static_cast<std::size_t>(target)];
      if (std::find(meta->replicas.begin(), meta->replicas.end(), target) !=
          meta->replicas.end())
        continue;  // already replicated there
      if (!dst.store(id, meta->size_bytes)) continue;

      CloudOp op;
      op.content = id;
      op.content_class = ContentClass::kPassive;
      op.kind = CloudOp::Kind::kMigration;
      op.server = target;
      op.source_server = source;
      migrating_[id] = true;
      ++started;
      count_ctrl(4, 4 * kCtrlMsgBytes);
      const net::NodeId src_node =
          topo_.servers()[static_cast<std::size_t>(source)];
      const net::NodeId dst_node =
          topo_.servers()[static_cast<std::size_t>(target)];
      const std::int64_t bytes = meta->size_bytes;
      sim_.post_in(sim::secs(2 * cfg_.params.ctrl_dc_latency_s),
                       [this, op, bytes, src_node, dst_node] {
                         start_data_flow(src_node, dst_node, bytes, op,
                                         /*priority=*/1.0,
                                         /*reserved=*/sim::BitRate{});
                       });
    }
  }
}

void Cloud::rebalance_scan() {
  // Proactive rebalancing (docs/scenarios.md): compute per-server load
  // (metadata access counts summed over replicas) and stored-byte skew,
  // then move the hottest object off each overloaded server to a cooler
  // one as a background flow. Everything iterates sorted ids / dense
  // vectors, so the scan is deterministic.
  ++rebalance_stats_.scans;
  const std::size_t n = servers_.size();
  std::vector<double> load(n, 0.0);
  std::vector<double> stored(n, 0.0);
  struct Candidate {
    double score = -1.0;
    ContentId id = kInvalidContent;
  };
  std::vector<Candidate> hottest(n);
  for (std::size_t shard = 0; shard < name_nodes_.size(); ++shard) {
    NameNode& nns = authority_nns(shard);
    for (const ContentId id : nns.content_ids()) {
      const ContentMeta* meta = nns.find(id);
      if (meta == nullptr || meta->replicas.empty()) continue;
      const double score = static_cast<double>(meta->reads + meta->writes);
      for (const std::int32_t r : meta->replicas) {
        if (r < 0 || static_cast<std::size_t>(r) >= n) continue;
        const auto ri = static_cast<std::size_t>(r);
        load[ri] += score;
        stored[ri] += static_cast<double>(meta->size_bytes);
        if (migrating_.count(id)) continue;
        Candidate& c = hottest[ri];
        if (score > c.score ||
            (score == c.score && (c.id == kInvalidContent || id < c.id)))
          c = Candidate{score, id};
      }
    }
  }

  double sum_load = 0.0;
  double sum_stored = 0.0;
  std::size_t up = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (servers_[s].failed()) continue;
    sum_load += load[s];
    sum_stored += stored[s];
    ++up;
  }
  if (up == 0) return;
  const double mean_load = sum_load / static_cast<double>(up);
  const double mean_stored = sum_stored / static_cast<double>(up);
  const double thr = 1.0 + cfg_.params.rebalance_skew_threshold;

  // Visit the most loaded servers first (deterministic tie-break on index).
  std::vector<std::size_t> order(n);
  for (std::size_t s = 0; s < n; ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (load[a] != load[b]) return load[a] > load[b];
    return a < b;
  });

  std::int32_t started = 0;
  for (const std::size_t s : order) {
    if (started >= cfg_.params.max_rebalances_per_scan) break;
    if (servers_[s].failed()) continue;
    const bool hot = mean_load > 0 && load[s] > thr * mean_load;
    const bool full = mean_stored > 0 && stored[s] > thr * mean_stored;
    if (!hot && !full) continue;
    const Candidate& c = hottest[s];
    if (c.id == kInvalidContent) {
      ++rebalance_stats_.skipped;
      continue;
    }
    NameNode& nns = meta_owner(c.id);
    ContentMeta* meta = nns.find(c.id);
    if (meta == nullptr ||
        std::find(meta->replicas.begin(), meta->replicas.end(),
                  static_cast<std::int32_t>(s)) == meta->replicas.end()) {
      ++rebalance_stats_.skipped;
      continue;
    }
    const std::int32_t target =
        selector_->select_replica_target(meta->content_class, meta->replicas);
    if (target < 0 ||
        load[static_cast<std::size_t>(target)] > mean_load) {
      ++rebalance_stats_.skipped;  // no strictly cooler home available
      continue;
    }
    BlockServer& dst = servers_[static_cast<std::size_t>(target)];
    if (!dst.store(c.id, meta->size_bytes)) {
      ++rebalance_stats_.skipped;
      continue;
    }
    if (meta->content_class != ContentClass::kPassive) {
      ++active_content_count_[static_cast<std::size_t>(target)];
      if (dst.dormant()) dst.set_dormant(false);
    }

    CloudOp op;
    op.content = c.id;
    op.content_class = meta->content_class;
    op.kind = CloudOp::Kind::kRebalance;
    op.server = target;
    op.source_server = static_cast<std::int32_t>(s);
    migrating_[c.id] = true;
    ++started;
    ++rebalance_stats_.flows_started;
    count_ctrl(4, 4 * kCtrlMsgBytes);
    const net::NodeId src_node = topo_.servers()[s];
    const net::NodeId dst_node =
        topo_.servers()[static_cast<std::size_t>(target)];
    const std::int64_t bytes = meta->size_bytes;
    sim_.post_in(sim::secs(2 * cfg_.params.ctrl_dc_latency_s),
                 [this, op, bytes, src_node, dst_node] {
                   start_data_flow(src_node, dst_node, bytes, op,
                                   cfg_.params.rebalance_priority,
                                   /*reserved=*/sim::BitRate{});
                 });
  }
}

// --------------------------------------------------------------------------
// request protocols (Figs. 3-5)
// --------------------------------------------------------------------------

bool Cloud::write(std::size_t client_idx, ContentId id, std::int64_t bytes,
                  ContentClass content_class, double priority,
                  sim::BitRate reserved) {
  if (client_idx >= topo_.clients().size() || bytes <= 0) return false;
  if (!known_content_.emplace(id, true).second) return false;  // duplicate

  // Steps 1-2 (Fig. 3): UCL -> FES (WAN) -> NNS (intra-DC), then the NNS
  // service queue. Steps 3-7 happen inside the NNS handler; the data
  // connection opens after the BS contacts the UCL (one more WAN hop).
  const double to_nns =
      cfg_.params.ctrl_wan_latency_s + cfg_.params.ctrl_dc_latency_s;
  count_ctrl(2, 2 * kCtrlMsgBytes);

  auto handler = [this, client_idx, id, bytes, content_class, priority,
                  reserved](NameNode& serving) {
    // Steps 3-4: NNS asks the RA for the best BS (here: level hmax).
    count_ctrl(2, 2 * kCtrlMsgBytes);
    const std::int32_t target = selector_->select_write_target(content_class);
    if (target < 0) {
      ++failed_writes_;
      known_content_.erase(id);  // allow a retry
      return;
    }
    BlockServer& bs = servers_[static_cast<std::size_t>(target)];
    if (!bs.store(id, bytes)) {
      ++failed_writes_;
      known_content_.erase(id);
      return;
    }
    if (content_class != ContentClass::kPassive) {
      ++active_content_count_[static_cast<std::size_t>(target)];
      if (bs.dormant()) bs.set_dormant(false);  // active content wakes it
    }

    ContentMeta& meta = serving.upsert(id);
    meta.size_bytes = bytes;
    meta.content_class = content_class;
    meta.last_access_time = sim_.now();
    mirror_meta(serving, id);

    // Steps 5-9: RA forwards the UCL id to the BS; BS derives rcvw from
    // its RM and greets the UCL (WAN hop); then the UCL starts writing.
    count_ctrl(4, 4 * kCtrlMsgBytes);
    const double setup =
        2 * cfg_.params.ctrl_dc_latency_s + cfg_.params.ctrl_wan_latency_s;
    CloudOp op;
    op.content = id;
    op.content_class = content_class;
    op.kind = CloudOp::Kind::kWrite;
    op.server = target;
    op.client = static_cast<std::int64_t>(client_idx);
    sim_.post_in(sim::secs(setup), [this, op, bytes, priority, reserved,
                                    client_idx, target] {
      start_data_flow(topo_.clients()[client_idx],
                      topo_.servers()[static_cast<std::size_t>(target)],
                      bytes, op, priority, reserved);
    });
  };
  sim_.post_in(sim::secs(to_nns), [this, id, h = std::move(handler)] {
    submit_metadata_request(static_cast<std::uint64_t>(id), h, [this, id] {
      ++failed_writes_;
      known_content_.erase(id);
      pending_deadline_.erase(id);
    });
  });
  return true;
}

bool Cloud::read(std::size_t client_idx, ContentId id, double priority) {
  if (client_idx >= topo_.clients().size()) return false;

  const double to_nns =
      cfg_.params.ctrl_wan_latency_s + cfg_.params.ctrl_dc_latency_s;
  count_ctrl(2, 2 * kCtrlMsgBytes);

  auto handler = [this, client_idx, id, priority](NameNode& serving) {
    ContentMeta* meta = serving.find(id);
    if (meta == nullptr || meta->replicas.empty()) {
      ++failed_reads_;
      return;
    }
    // Step 3 (Fig. 5): choose the replica with the best upload rate.
    count_ctrl(2, 2 * kCtrlMsgBytes);
    const std::int32_t source = selector_->select_read_replica(meta->replicas);
    if (source < 0) {
      ++failed_reads_;
      return;
    }
    BlockServer& bs = servers_[static_cast<std::size_t>(source)];
    double setup = cfg_.params.ctrl_dc_latency_s;
    if (bs.dormant()) {
      bs.set_dormant(false);  // power-state transition penalty
      setup += cfg_.dormant_wake_latency_s;
    }
    meta->last_access_time = sim_.now();
    mirror_meta(serving, id);

    CloudOp op;
    op.content = id;
    op.content_class = meta->content_class;
    op.kind = CloudOp::Kind::kRead;
    op.server = source;
    op.client = static_cast<std::int64_t>(client_idx);
    const std::int64_t bytes = meta->size_bytes;
    sim_.post_in(sim::secs(setup),
                 [this, op, bytes, priority, client_idx, source] {
      start_data_flow(topo_.servers()[static_cast<std::size_t>(source)],
                      topo_.clients()[client_idx], bytes, op, priority,
                      /*reserved=*/sim::BitRate{});
    });
  };
  sim_.post_in(sim::secs(to_nns), [this, id, h = std::move(handler)] {
    submit_metadata_request(static_cast<std::uint64_t>(id), h,
                            [this] { ++failed_reads_; });
  });
  return true;
}

bool Cloud::append(std::size_t client_idx, ContentId id, std::int64_t bytes,
                   double priority) {
  if (client_idx >= topo_.clients().size() || bytes <= 0) return false;

  const double to_nns =
      cfg_.params.ctrl_wan_latency_s + cfg_.params.ctrl_dc_latency_s;
  count_ctrl(2, 2 * kCtrlMsgBytes);

  auto handler = [this, client_idx, id, bytes, priority](NameNode& serving) {
    ContentMeta* meta = serving.find(id);
    if (meta == nullptr || meta->replicas.empty()) {
      ++failed_writes_;
      return;
    }
    // Updates land on the primary replica (where the content lives).
    const std::int32_t target = meta->replicas.front();
    BlockServer& bs = servers_[static_cast<std::size_t>(target)];
    if (bs.failed() || !bs.store(id, bytes)) {
      ++failed_writes_;
      return;
    }
    meta->last_access_time = sim_.now();
    mirror_meta(serving, id);
    count_ctrl(4, 4 * kCtrlMsgBytes);
    CloudOp op;
    op.content = id;
    op.content_class = meta->content_class;
    op.kind = CloudOp::Kind::kAppend;
    op.server = target;
    op.client = static_cast<std::int64_t>(client_idx);
    const double setup =
        2 * cfg_.params.ctrl_dc_latency_s + cfg_.params.ctrl_wan_latency_s;
    sim_.post_in(sim::secs(setup),
                 [this, op, bytes, priority, client_idx, target] {
      start_data_flow(topo_.clients()[client_idx],
                      topo_.servers()[static_cast<std::size_t>(target)],
                      bytes, op, priority, /*reserved=*/sim::BitRate{});
    });
  };
  sim_.post_in(sim::secs(to_nns), [this, id, h = std::move(handler)] {
    submit_metadata_request(static_cast<std::uint64_t>(id), h,
                            [this] { ++failed_writes_; });
  });
  return true;
}

void Cloud::begin_replication(const CloudOp& write_op, std::int64_t bytes,
                              double priority, bool repair) {
  // Fig. 4: the BS holding the fresh copy asks the content's NNS for a
  // replication target offering the best upload rate for future reads.
  count_ctrl(2, 2 * kCtrlMsgBytes);
  auto handler = [this, write_op, bytes, priority, repair](NameNode& serving) {
    // k-way placement: exclude every server already holding a copy plus
    // the source, so chained replication never doubles up.
    std::vector<std::int32_t> exclude;
    if (const ContentMeta* meta = serving.find(write_op.content))
      exclude = meta->replicas;
    if (std::find(exclude.begin(), exclude.end(), write_op.server) ==
        exclude.end())
      exclude.push_back(write_op.server);

    // Repair flows that cannot start (no admissible target, disk full) go
    // back to the queue for a later control tick.
    const auto requeue = [this, &write_op, repair] {
      if (!repair) return;
      --repairs_in_flight_;
      ++churn_.repair_retries;
      repair_pending_.erase(write_op.content);
      enqueue_repair(write_op.content);
    };

    const std::int32_t target =
        selector_->select_replica_target(write_op.content_class, exclude);
    if (target < 0 || target == write_op.server) return requeue();
    BlockServer& bs = servers_[static_cast<std::size_t>(target)];
    if (!bs.store(write_op.content, bytes)) return requeue();
    if (write_op.content_class != ContentClass::kPassive) {
      ++active_content_count_[static_cast<std::size_t>(target)];
      if (bs.dormant()) bs.set_dormant(false);
    }
    // Passive replicas land on dormant-eligible servers *without* waking
    // them (section VII-C keeps dormant servers dormant).

    CloudOp op;
    op.content = write_op.content;
    op.content_class = write_op.content_class;
    op.kind = CloudOp::Kind::kReplication;
    op.server = target;
    op.client = -1;
    op.source_server = write_op.server;
    op.repair = repair;
    if (repair) ++churn_.repair_flows_started;
    count_ctrl(4, 4 * kCtrlMsgBytes);
    const double setup = 3 * cfg_.params.ctrl_dc_latency_s;
    const net::NodeId src =
        topo_.servers()[static_cast<std::size_t>(write_op.server)];
    const net::NodeId dst = topo_.servers()[static_cast<std::size_t>(target)];
    sim_.post_in(sim::secs(setup), [this, op, bytes, priority, src, dst] {
      start_data_flow(src, dst, bytes, op, priority,
                      /*reserved=*/sim::BitRate{});
    });
  };
  submit_metadata_request(
      static_cast<std::uint64_t>(write_op.content), std::move(handler),
      [this, content = write_op.content, repair] {
        // The metadata plane never answered: release the repair slot (if
        // any) and leave the object to the background repair queue.
        if (repair) {
          --repairs_in_flight_;
          ++churn_.repair_retries;
          repair_pending_.erase(content);
        }
        enqueue_repair(content);
      });
}

// --------------------------------------------------------------------------
// metadata plane: sharding, failover, timeout/retry, mirroring, resync
// --------------------------------------------------------------------------

std::size_t Cloud::shard_of_key(std::uint64_t key) const {
  return fes_->dispatch_index(key);
}

NameNode& Cloud::authority_nns(std::size_t shard) {
  if (!nns_failover_) return *name_nodes_[shard];
  const NnsShardState& st = nns_state_[shard];
  if (st.primary_alive && !st.primary_syncing) return *name_nodes_[shard];
  if (st.standby_alive && !st.standby_syncing) return *standby_nodes_[shard];
  return *name_nodes_[shard];
}

const NameNode& Cloud::authority_nns(std::size_t shard) const {
  return const_cast<Cloud*>(this)->authority_nns(shard);
}

NameNode& Cloud::meta_owner(ContentId id) {
  return authority_nns(shard_of_key(static_cast<std::uint64_t>(id)));
}

NameNode* Cloud::serving_nns(std::size_t shard) {
  if (!nns_failover_) return name_nodes_[shard].get();
  const NnsShardState& st = nns_state_[shard];
  if (st.primary_alive && !st.primary_syncing) return name_nodes_[shard].get();
  if (st.standby_alive && !st.standby_syncing)
    return standby_nodes_[shard].get();
  return nullptr;
}

void Cloud::submit_metadata_request(std::uint64_t key,
                                    std::function<void(NameNode&)> fn,
                                    std::function<void()> on_give_up) {
  const std::size_t shard = shard_of_key(key);
  if (!nns_failover_) {
    // Historical path: direct submit, no timeout machinery, no rng draws —
    // byte-identical event sequence for churn-free runs.
    NameNode* node = &fes_->node(shard);
    node->submit([node, f = std::move(fn)] { f(*node); });
    return;
  }
  auto req = std::make_shared<MetaRequest>();
  req->fn = std::move(fn);
  req->on_give_up = std::move(on_give_up);
  dispatch_metadata(shard, 1, req);
}

void Cloud::dispatch_metadata(std::size_t shard, std::int32_t attempt,
                              const std::shared_ptr<MetaRequest>& req) {
  if (req->done) return;
  // Re-dispatches pay the FES hop again (client -> FES -> NNS RPC pair).
  if (attempt > 1) count_ctrl(2, 2 * kCtrlMsgBytes);
  NameNode* node = serving_nns(shard);
  if (node == nullptr) {
    // Degraded window: both shard instances down (or resyncing). The
    // request is queued behind the backoff timer, never lost.
    ++meta_stats_.unavailable;
    schedule_metadata_retry(shard, attempt, req);
    return;
  }
  if (node != name_nodes_[shard].get()) ++meta_stats_.failovers;
  const double delay = node->submit([req, node] {
    if (req->done) return;
    req->done = true;
    req->fn(*node);
  });
  if (delay < 0) {  // raced a same-timestamp failure
    ++meta_stats_.unavailable;
    schedule_metadata_retry(shard, attempt, req);
    return;
  }
  // Client-side deadline: if the NNS dies with the request queued, the
  // handler never fires and this timer re-drives the request.
  sim_.post_in(sim::secs(cfg_.params.metadata_timeout_s),
               [this, shard, attempt, req] {
                 if (req->done) return;
                 ++meta_stats_.requests_timed_out;
                 schedule_metadata_retry(shard, attempt, req);
               });
}

void Cloud::schedule_metadata_retry(std::size_t shard, std::int32_t attempt,
                                    const std::shared_ptr<MetaRequest>& req) {
  if (req->done) return;
  if (attempt >= cfg_.params.metadata_max_attempts) {
    req->done = true;
    ++meta_stats_.requests_dropped;
    if (req->on_give_up) req->on_give_up();
    return;
  }
  ++meta_stats_.retries;
  // Exponential backoff with jitter from the run's seeded RNG: the draw
  // happens in event order, so runs stay deterministic per seed.
  double backoff = cfg_.params.metadata_backoff_base_s;
  for (std::int32_t i = 1; i < attempt; ++i) backoff *= 2.0;
  backoff *= 1.0 + cfg_.params.metadata_backoff_jitter * sim_.rng().uniform();
  sim_.post_in(sim::secs(backoff), [this, shard, attempt, req] {
    dispatch_metadata(shard, attempt + 1, req);
  });
}

void Cloud::mirror_meta(NameNode& from, ContentId id) {
  if (!nns_failover_ || id == kInvalidContent) return;
  const std::size_t shard = shard_of_key(static_cast<std::uint64_t>(id));
  const NnsShardState& st = nns_state_[shard];
  const bool from_primary = &from == name_nodes_[shard].get();
  if (!from_primary && &from != standby_nodes_[shard].get()) return;
  const bool peer_ready = from_primary
                              ? (st.standby_alive && !st.standby_syncing)
                              : (st.primary_alive && !st.primary_syncing);
  if (!peer_ready) return;  // a dead/resyncing peer catches up via resync
  const ContentMeta* m = from.find(id);
  if (m == nullptr) return;
  ++meta_stats_.mirror_updates;
  count_ctrl(1, kCtrlMsgBytes + static_cast<std::uint64_t>(
                                    cfg_.params.nns_meta_entry.bytes()));
  NameNode* peer =
      from_primary ? standby_nodes_[shard].get() : name_nodes_[shard].get();
  // The record copy rides one intra-DC control hop; the peer applies
  // whatever was on the wire (by value) when it arrives.
  sim_.post_in(sim::secs(cfg_.params.ctrl_dc_latency_s),
               [peer, copy = *m] {
                 if (peer->alive()) peer->apply_mirror(copy);
               });
}

void Cloud::fail_nns(std::size_t instance) {
  if (!nns_failover_ || instance >= nns_instance_count()) return;
  const std::size_t n = name_nodes_.size();
  const std::size_t shard = instance % n;
  const bool is_standby = instance >= n;
  NnsShardState& st = nns_state_[shard];
  bool& alive = is_standby ? st.standby_alive : st.primary_alive;
  bool& syncing = is_standby ? st.standby_syncing : st.primary_syncing;
  if (!alive) return;
  alive = false;
  syncing = false;
  nns_instance(instance).set_alive(false);
  // Any in-flight resync in this shard involves the dead instance either
  // as the recovering node or as the sync source: cut it.
  if (st.sync_flow != net::kInvalidFlow) {
    const net::FlowId f = st.sync_flow;
    st.sync_flow = net::kInvalidFlow;
    abort_flow(f);
  }
}

void Cloud::recover_nns(std::size_t instance) {
  if (!nns_failover_ || instance >= nns_instance_count()) return;
  const std::size_t n = name_nodes_.size();
  const std::size_t shard = instance % n;
  const bool is_standby = instance >= n;
  NnsShardState& st = nns_state_[shard];
  bool& alive = is_standby ? st.standby_alive : st.primary_alive;
  bool& syncing = is_standby ? st.standby_syncing : st.primary_syncing;
  if (alive) return;
  alive = true;
  const bool peer_serving = is_standby
                                ? (st.primary_alive && !st.primary_syncing)
                                : (st.standby_alive && !st.standby_syncing);
  if (!peer_serving) {
    // No live source to sync from: rejoin immediately with whatever map
    // survived (possibly stale; mirrors resume from here).
    syncing = false;
    nns_instance(instance).set_alive(true);
    return;
  }
  syncing = true;
  resync_queue_.push_back(instance);
}

void Cloud::drain_resync_queue() {
  if (resync_queue_.empty()) return;
  const std::size_t n = name_nodes_.size();
  std::deque<std::size_t> retry;
  while (!resync_queue_.empty()) {
    const std::size_t instance = resync_queue_.front();
    resync_queue_.pop_front();
    const std::size_t shard = instance % n;
    const bool is_standby = instance >= n;
    NnsShardState& st = nns_state_[shard];
    const bool alive = is_standby ? st.standby_alive : st.primary_alive;
    const bool syncing =
        is_standby ? st.standby_syncing : st.primary_syncing;
    if (!alive || !syncing) continue;  // stale entry (died or rejoined)
    if (st.sync_flow != net::kInvalidFlow || st.sync_pending)
      continue;  // duplicate entry; the running sync covers it
    const std::size_t peer_instance = is_standby ? shard : shard + n;
    const bool peer_serving = is_standby
                                  ? (st.primary_alive && !st.primary_syncing)
                                  : (st.standby_alive && !st.standby_syncing);
    if (!peer_serving) {
      retry.push_back(instance);  // wait for a live source
      continue;
    }
    const std::size_t src_host = nns_host_server(peer_instance);
    const std::size_t dst_host = nns_host_server(instance);
    if (servers_[src_host].failed() || servers_[dst_host].failed()) {
      retry.push_back(instance);  // wait for the hosts to come back
      continue;
    }
    const NameNode& peer = nns_instance(peer_instance);
    const std::int64_t bytes = std::max<std::int64_t>(
        1500, static_cast<std::int64_t>(peer.content_count()) *
                  cfg_.params.nns_meta_entry.bytes());
    st.sync_pending = true;
    ++meta_stats_.resyncs_started;
    count_ctrl(2, 2 * kCtrlMsgBytes);
    CloudOp op;
    op.content = kInvalidContent;
    op.content_class = ContentClass::kPassive;
    op.kind = CloudOp::Kind::kNnsSync;
    op.server = static_cast<std::int32_t>(dst_host);
    op.source_server = static_cast<std::int32_t>(src_host);
    op.client = static_cast<std::int64_t>(instance);
    const net::NodeId src_node = topo_.servers()[src_host];
    const net::NodeId dst_node = topo_.servers()[dst_host];
    sim_.post_in(
        sim::secs(2 * cfg_.params.ctrl_dc_latency_s),
        [this, op, bytes, src_node, dst_node, shard, instance, is_standby] {
          // Conditions may have changed during the setup RPC window.
          NnsShardState& st2 = nns_state_[shard];
          st2.sync_pending = false;
          const bool alive2 =
              is_standby ? st2.standby_alive : st2.primary_alive;
          const bool syncing2 =
              is_standby ? st2.standby_syncing : st2.primary_syncing;
          if (!alive2 || !syncing2) return;  // died again during setup
          const bool peer_ok =
              is_standby ? (st2.primary_alive && !st2.primary_syncing)
                         : (st2.standby_alive && !st2.standby_syncing);
          if (!peer_ok ||
              servers_[static_cast<std::size_t>(op.source_server)].failed() ||
              servers_[static_cast<std::size_t>(op.server)].failed()) {
            resync_queue_.push_back(instance);
            return;
          }
          st2.sync_flow =
              start_data_flow(src_node, dst_node, bytes, op,
                              cfg_.params.repair_priority,
                              /*reserved=*/sim::BitRate{});
        });
  }
  for (const std::size_t i : retry) resync_queue_.push_back(i);
}

void Cloud::finish_resync(std::size_t instance) {
  const std::size_t n = name_nodes_.size();
  const std::size_t shard = instance % n;
  const bool is_standby = instance >= n;
  NnsShardState& st = nns_state_[shard];
  st.sync_flow = net::kInvalidFlow;
  bool& alive = is_standby ? st.standby_alive : st.primary_alive;
  bool& syncing = is_standby ? st.standby_syncing : st.primary_syncing;
  if (!alive || !syncing) return;
  const std::size_t peer_instance = is_standby ? shard : shard + n;
  NameNode& me = nns_instance(instance);
  me.adopt_meta_from(nns_instance(peer_instance));
  syncing = false;
  me.set_alive(true);
  ++meta_stats_.resyncs_completed;
}

std::size_t Cloud::nns_host_server(std::size_t instance) const {
  // The control plane is consolidated on a few servers (paper section
  // III); model each NNS instance as hosted on a fixed server so sync
  // traffic crosses the real fabric.
  return instance % servers_.size();
}

// --------------------------------------------------------------------------
// data plane
// --------------------------------------------------------------------------

net::FlowId Cloud::start_data_flow(net::NodeId src, net::NodeId dst,
                                   std::int64_t bytes, const CloudOp& op,
                                   double priority, sim::BitRate reserved) {
  if (op.server >= 0)
    servers_[static_cast<std::size_t>(op.server)].flow_started();

  if (cfg_.transport == TransportKind::kTcp) {
    const net::FlowId id = transports_.start_tcp_flow(
        src, dst, bytes,
        op.kind == CloudOp::Kind::kRead ? ContentClass::kSemiInteractive
                                        : op.content_class);
    ops_.emplace(id, op);
    return id;
  }

  // SCDA: the initial rate is what the RM/RA hierarchy currently offers on
  // the path (Fig. 3 steps 6-12); the flow is registered with the
  // allocator so subsequent intervals account for it.
  const sim::BitRate init_rate =
      reserved + priority * allocator_.path_rate(src, dst);

  RateAllocator::RateProviderFn other_send;
  RateAllocator::RateProviderFn other_recv;
  const bool src_is_server =
      topo_.net().node(src).role() == net::NodeRole::kServer;
  const bool dst_is_server =
      topo_.net().node(dst).role() == net::NodeRole::kServer;
  if (src_is_server) {
    BlockServer& s = servers_[server_index_of(src)];
    other_send = [&s] { return s.resources().r_other(); };
  }
  if (dst_is_server) {
    BlockServer& s = servers_[server_index_of(dst)];
    other_recv = [&s] { return s.resources().r_other(); };
  }

  auto handles = transports_.start_scda_flow(
      src, dst, bytes, init_rate, init_rate,
      op.kind == CloudOp::Kind::kRead ? ContentClass::kSemiInteractive
                                      : op.content_class,
      priority);
  allocator_.register_flow(handles.id, src, dst, priority, reserved,
                           std::move(other_send), std::move(other_recv));
  // Registration lowers the advertised link rates; refresh every active
  // flow's allocation and push the new windows immediately so the admitted
  // flow does not ride on top of stale (higher) sender rates until the
  // next control interval.
  allocator_.refresh_flow_rates();
  if (handles.sender != nullptr)
    handles.sender->set_rate(allocator_.flow_rate(handles.id));
  if (cfg_.fluid.enabled) {
    // Post-admission re-rate for fluid flows (covers the new flow too):
    // the non-epoch analogue of update_ongoing_flows() below.
    transports_.fluid().rerate_all(
        [this](net::FlowId id) { return allocator_.flow_rate(id); },
        /*epoch=*/false);
  }
  transports_.record(handles.id).reserved = reserved;
  update_ongoing_flows();

  // Deadline requested at write() time: arm the adaptive controller now
  // that the upload flow exists (section IV-A EDF emulation).
  if (op.kind == CloudOp::Kind::kWrite) {
    const auto dit = pending_deadline_.find(op.content);
    if (dit != pending_deadline_.end()) {
      target_ctrl_.set_deadline(handles.id, bytes, dit->second);
      pending_deadline_.erase(dit);
    }
  }
  // Fluid flows have no sender/receiver to re-window each interval; the
  // allocator's epoch callback drives their rates instead.
  if (!handles.fluid) active_scda_.emplace(handles.id, handles);
  ops_.emplace(handles.id, op);
  return handles.id;
}

void Cloud::on_flow_complete(const transport::FlowRecord& rec) {
  const auto it = ops_.find(rec.id);
  CloudOp op;
  if (it != ops_.end()) op = it->second;

  if (op.server >= 0)
    servers_[static_cast<std::size_t>(op.server)].flow_finished();
  allocator_.unregister_flow(rec.id);
  active_scda_.erase(rec.id);

  if (op.kind == CloudOp::Kind::kNnsSync) {
    // A recovering NNS instance finished pulling its peer's metadata map;
    // it adopts the map and rejoins (docs/scenarios.md).
    meta_stats_.resync_bytes += static_cast<std::uint64_t>(rec.size_bytes);
    finish_resync(static_cast<std::size_t>(op.client));
    for (const auto& fn : on_complete_) fn(rec, op);
    if (it != ops_.end()) ops_.erase(it);
    return;
  }

  NameNode& nns = meta_owner(op.content);
  ContentMeta* meta = nns.find(op.content);
  // A flow can land on a server that failed after the NNS picked it (the
  // selection-to-start control window, or a mid-transfer crash in packet
  // mode): the delivered bytes are gone with the machine, so nothing may
  // be registered against it.
  const bool target_alive =
      op.server >= 0 && !servers_[static_cast<std::size_t>(op.server)].failed();
  if (meta != nullptr && target_alive) {
    BlockServer& bs = servers_[static_cast<std::size_t>(op.server)];
    switch (op.kind) {
      case CloudOp::Kind::kWrite:
        ++meta->writes;
        meta->replicas.push_back(op.server);
        note_replicas_changed(*meta);
        bs.record_access(op.content);
        classifier_.record_write(op.content, sim_.now());
        if (cfg_.enable_replication &&
            static_cast<std::int32_t>(meta->replicas.size()) <
                cfg_.params.replicas)
          begin_replication(op, rec.size_bytes);
        break;
      case CloudOp::Kind::kReplication:
        meta->replicas.push_back(op.server);
        note_replicas_changed(*meta);
        if (op.repair) {
          --repairs_in_flight_;
          ++churn_.repair_flows_completed;
          churn_.repair_bytes += static_cast<std::uint64_t>(rec.size_bytes);
          repair_pending_.erase(op.content);
          if (static_cast<std::int32_t>(meta->replicas.size()) <
              cfg_.params.replicas)
            enqueue_repair(op.content);
        } else if (cfg_.enable_replication &&
                   static_cast<std::int32_t>(meta->replicas.size()) <
                       cfg_.params.replicas) {
          // Chain the next hop of k-way replication from the copy that just
          // landed (closest source to the new target's rate metric).
          CloudOp next = op;
          next.kind = CloudOp::Kind::kWrite;  // source role
          begin_replication(next, rec.size_bytes);
        }
        break;
      case CloudOp::Kind::kRead:
        ++meta->reads;
        bs.record_access(op.content);
        classifier_.record_read(op.content, sim_.now());
        break;
      case CloudOp::Kind::kAppend:
        ++meta->writes;
        meta->size_bytes += rec.size_bytes;
        bs.record_access(op.content);
        classifier_.record_write(op.content, sim_.now());
        break;
      case CloudOp::Kind::kMigration: {
        // The cold copy now lives on the target; vacate the source and
        // downgrade the stored class to passive (section VII-C).
        meta->replicas.push_back(op.server);
        if (op.source_server >= 0) {
          const auto src = static_cast<std::size_t>(op.source_server);
          if (servers_[src].has(op.content)) {
            servers_[src].remove(op.content);
            if (meta->content_class != ContentClass::kPassive &&
                active_content_count_[src] > 0)
              --active_content_count_[src];
          }
          std::erase(meta->replicas, op.source_server);
        }
        meta->content_class = ContentClass::kPassive;
        ++migrations_completed_;
        migrating_.erase(op.content);
        break;
      }
      case CloudOp::Kind::kRebalance: {
        // The hot/overfull copy now lives on the cooler target; vacate the
        // source (docs/scenarios.md proactive rebalancing).
        meta->replicas.push_back(op.server);
        if (op.source_server >= 0) {
          const auto src = static_cast<std::size_t>(op.source_server);
          if (servers_[src].has(op.content)) {
            servers_[src].remove(op.content);
            if (meta->content_class != ContentClass::kPassive &&
                active_content_count_[src] > 0)
              --active_content_count_[src];
          }
          std::erase(meta->replicas, op.source_server);
        }
        note_replicas_changed(*meta);
        ++rebalance_stats_.flows_completed;
        rebalance_stats_.bytes_moved +=
            static_cast<std::uint64_t>(rec.size_bytes);
        migrating_.erase(op.content);
        break;
      }
      case CloudOp::Kind::kNnsSync:
        break;  // handled above (early return)
    }
    mirror_meta(nns, op.content);
  } else if (op.kind == CloudOp::Kind::kMigration ||
             op.kind == CloudOp::Kind::kRebalance) {
    migrating_.erase(op.content);
  } else if (op.kind == CloudOp::Kind::kReplication && op.repair) {
    // Metadata vanished (or the target failed) while the repair flow ran;
    // release the in-flight slot so the queue keeps draining, and requeue
    // if the object still exists under-replicated.
    --repairs_in_flight_;
    repair_pending_.erase(op.content);
    if (meta != nullptr && !meta->replicas.empty() &&
        static_cast<std::int32_t>(meta->replicas.size()) <
            std::max<std::int32_t>(1, cfg_.params.replicas))
      enqueue_repair(op.content);
  } else if (op.kind == CloudOp::Kind::kWrite && meta != nullptr &&
             !target_alive) {
    // The write's bytes arrived at a machine that is now dead: the client
    // sees a failed write and may retry under the same content id.
    ++failed_writes_;
    known_content_.erase(op.content);
    pending_deadline_.erase(op.content);
  }

  for (const auto& fn : on_complete_) fn(rec, op);
  if (it != ops_.end()) ops_.erase(it);
}

// --------------------------------------------------------------------------
// statistics
// --------------------------------------------------------------------------

void CloudSnapshot::print(std::FILE* out) const {
  std::fprintf(out,
               "cloud @ t=%.2fs: active_flows=%zu contents=%zu "
               "completed=%llu\n"
               "  sla_violations=%llu failed_reads=%llu failed_writes=%llu "
               "migrations=%llu\n"
               "  dormant=%zu failed=%zu energy=%.1fkJ "
               "mean_nns_delay=%.3fms ctrl=%llu msgs (%.1f KB)\n",
               time_s, active_flows, contents_stored,
               static_cast<unsigned long long>(flows_completed),
               static_cast<unsigned long long>(sla_violations),
               static_cast<unsigned long long>(failed_reads),
               static_cast<unsigned long long>(failed_writes),
               static_cast<unsigned long long>(migrations), dormant_servers,
               failed_servers, total_energy_j / 1e3,
               mean_nns_delay_s * 1e3,
               static_cast<unsigned long long>(control_messages),
               static_cast<double>(control_bytes) / 1e3);
}

CloudSnapshot Cloud::snapshot() const {
  CloudSnapshot s;
  s.time_s = sim_.now().seconds();
  s.active_flows = ops_.size();

  // Content is counted on each shard's authority map (primary unless
  // failover moved authority); service stats aggregate every instance,
  // standbys included, since requests they served are real requests.
  std::uint64_t served = 0;
  for (std::size_t shard = 0; shard < name_nodes_.size(); ++shard)
    s.contents_stored += authority_nns(shard).content_count();
  for (const auto& nn : name_nodes_) {
    s.mean_nns_delay_s += nn->mean_delay() * static_cast<double>(nn->served());
    served += nn->served();
  }
  for (const auto& nn : standby_nodes_) {
    s.mean_nns_delay_s += nn->mean_delay() * static_cast<double>(nn->served());
    served += nn->served();
  }
  if (served > 0) s.mean_nns_delay_s /= static_cast<double>(served);

  for (const auto& rec : transports_.records())
    if (rec->finished()) ++s.flows_completed;

  s.sla_violations = allocator_.sla_violations();
  s.failed_reads = failed_reads_;
  s.failed_writes = failed_writes_;
  s.migrations = migrations_completed_;
  s.dormant_servers = dormant_servers();
  for (const auto& bs : servers_)
    if (bs.failed()) ++s.failed_servers;
  s.total_energy_j = total_energy_j();
  s.control_messages = ctrl_messages_;
  s.control_bytes = ctrl_bytes_;
  return s;
}

double Cloud::total_energy_j() const {
  double e = 0;
  for (const auto& s : servers_) e += s.power().energy_j();
  return e;
}

std::size_t Cloud::dormant_servers() const {
  std::size_t n = 0;
  for (const auto& s : servers_)
    if (s.dormant()) ++n;
  return n;
}

void Cloud::fail_server(std::size_t server_idx, bool re_replicate) {
  BlockServer& bs = servers_.at(server_idx);
  if (bs.failed()) return;
  bs.set_failed(true);
  const auto idx = static_cast<std::int32_t>(server_idx);

  // Everything in flight that touches the dead machine is cut short; reads
  // fail over to a surviving replica inside abort_flow.
  abort_flows_touching_server(idx);

  // Scrub metadata: drop the failed replica everywhere and queue the
  // restoration of the replication factor from a surviving copy (what
  // HDFS/GFS do on datanode loss; the paper's RM health monitoring
  // provides the signal). Repairs go through the background queue so a
  // correlated failure cannot stampede the fabric. Durability accounting
  // runs on the authority map only; the standby mirror is scrubbed without
  // accounting so the clock is not double-counted.
  for (std::size_t shard = 0; shard < name_nodes_.size(); ++shard) {
    NameNode& auth = authority_nns(shard);
    for (const ContentId id : auth.content_ids()) {
      ContentMeta* meta = auth.find(id);
      if (meta == nullptr) continue;
      const auto before = meta->replicas.size();
      std::erase(meta->replicas, idx);
      if (meta->replicas.size() == before) continue;
      note_replicas_changed(*meta);
      if (re_replicate && !meta->replicas.empty() &&
          static_cast<std::int32_t>(meta->replicas.size()) <
              std::max<std::int32_t>(1, cfg_.params.replicas))
        enqueue_repair(id);
    }
    if (!nns_failover_) continue;
    NameNode& peer = &auth == name_nodes_[shard].get()
                         ? *standby_nodes_[shard]
                         : *name_nodes_[shard];
    for (const ContentId id : peer.content_ids()) {
      if (ContentMeta* meta = peer.find(id)) std::erase(meta->replicas, idx);
    }
  }
  propagate_rate_changes();
}

void Cloud::recover_server(std::size_t server_idx) {
  BlockServer& bs = servers_.at(server_idx);
  if (!bs.failed()) return;
  bs.set_failed(false);
  // A recovered machine comes back empty (disk replaced / re-imaged): its
  // metadata entries were scrubbed at failure time, so any blocks still on
  // disk are orphans.
  bs.scrub();
  active_content_count_.at(server_idx) = 0;
}

// --------------------------------------------------------------------------
// churn: flow aborts, failover, background repair
// --------------------------------------------------------------------------

bool Cloud::abort_flow(net::FlowId id) {
  const auto it = ops_.find(id);
  if (it == ops_.end()) return false;
  const CloudOp op = it->second;
  const transport::FlowRecord& rec = transports_.record(id);
  const double priority = rec.priority;
  const auto client = op.client;

  if (!transports_.abort_flow(id)) return false;
  ++churn_.aborted_flows;
  allocator_.unregister_flow(id);
  target_ctrl_.clear(id);
  active_scda_.erase(id);
  ops_.erase(it);
  if (op.server >= 0)
    servers_[static_cast<std::size_t>(op.server)].flow_finished();

  switch (op.kind) {
    case CloudOp::Kind::kRead:
      // Failover: re-issue the read against the surviving replicas. The
      // NNS lookup inside read() picks the next-best source (Fig. 5).
      ++churn_.failovers;
      if (client >= 0)
        read(static_cast<std::size_t>(client), op.content, priority);
      break;
    case CloudOp::Kind::kWrite:
      ++failed_writes_;
      rollback_partial_store(op);
      known_content_.erase(op.content);  // allow a retry
      pending_deadline_.erase(op.content);
      break;
    case CloudOp::Kind::kAppend:
      ++failed_writes_;
      break;
    case CloudOp::Kind::kReplication:
      rollback_partial_store(op);
      if (op.repair) {
        --repairs_in_flight_;
        ++churn_.repair_retries;
        repair_pending_.erase(op.content);
      }
      enqueue_repair(op.content);
      break;
    case CloudOp::Kind::kMigration:
      rollback_partial_store(op);
      migrating_.erase(op.content);
      break;
    case CloudOp::Kind::kRebalance:
      // The move never landed; the source copy was untouched (it is only
      // vacated on completion), so just roll back the target reservation.
      rollback_partial_store(op);
      migrating_.erase(op.content);
      break;
    case CloudOp::Kind::kNnsSync: {
      // The sync source or a host died mid-transfer. If the recovering
      // instance is still up and waiting, queue a fresh attempt.
      const auto instance = static_cast<std::size_t>(client);
      const std::size_t n = name_nodes_.size();
      NnsShardState& st = nns_state_[instance % n];
      st.sync_flow = net::kInvalidFlow;
      const bool is_standby = instance >= n;
      const bool alive = is_standby ? st.standby_alive : st.primary_alive;
      const bool syncing =
          is_standby ? st.standby_syncing : st.primary_syncing;
      if (alive && syncing) resync_queue_.push_back(instance);
      break;
    }
  }
  return true;
}

void Cloud::rollback_partial_store(const CloudOp& op) {
  // The target reserved disk for the incoming copy at setup time; an abort
  // means the bytes never fully arrived. A failed target is scrubbed
  // wholesale on recovery instead.
  if (op.server < 0) return;
  BlockServer& bs = servers_[static_cast<std::size_t>(op.server)];
  if (bs.failed()) return;
  if (!bs.has(op.content)) return;
  bs.remove(op.content);
  if (op.content_class != ContentClass::kPassive &&
      active_content_count_[static_cast<std::size_t>(op.server)] > 0)
    --active_content_count_[static_cast<std::size_t>(op.server)];
}

void Cloud::abort_flows_touching_server(std::int32_t server_idx) {
  // Collect first (abort_flow mutates ops_), iterating the dense record
  // table in flow-id order for determinism.
  std::vector<net::FlowId> victims;
  for (const auto& rec : transports_.records()) {
    if (rec->finished() || rec->aborted) continue;
    const auto oit = ops_.find(rec->id);
    if (oit == ops_.end()) continue;
    const CloudOp& op = oit->second;
    if (op.server == server_idx || op.source_server == server_idx)
      victims.push_back(rec->id);
  }
  for (const net::FlowId id : victims) abort_flow(id);
}

void Cloud::set_link_up(net::LinkId l, bool up, bool propagate) {
  topo_.net().link(l).set_up(up);
  allocator_.set_link_up(l, up);
  if (propagate) propagate_rate_changes();
}

void Cloud::propagate_rate_changes() {
  // After a topology change (server/link down or up) every surviving flow
  // must re-rate immediately — fluid flows would otherwise integrate a
  // stale rate across a dead link until the next RA epoch.
  allocator_.refresh_flow_rates();
  if (cfg_.fluid.enabled)
    transports_.fluid().rerate_all(
        [this](net::FlowId id) { return allocator_.flow_rate(id); },
        /*epoch=*/false);
  if (cfg_.transport == TransportKind::kScda) update_ongoing_flows();
}

void Cloud::enqueue_repair(ContentId id) {
  if (repair_pending_.count(id)) return;
  repair_pending_[id] = true;
  repair_queue_.push_back(id);
}

void Cloud::drain_repair_queue() {
  if (repair_queue_.empty()) return;
  std::deque<ContentId> retry;
  while (!repair_queue_.empty() &&
         repairs_in_flight_ < cfg_.params.max_concurrent_repairs) {
    const ContentId id = repair_queue_.front();
    repair_queue_.pop_front();
    ContentMeta* meta = meta_owner(id).find(id);
    if (meta == nullptr || meta->replicas.empty() ||
        static_cast<std::int32_t>(meta->replicas.size()) >=
            std::max<std::int32_t>(1, cfg_.params.replicas)) {
      repair_pending_.erase(id);  // lost, deleted, or already healthy
      continue;
    }
    const std::int32_t source = selector_->select_read_replica(meta->replicas);
    if (source < 0) {
      retry.push_back(id);  // sources exist but are all down right now
      continue;
    }
    CloudOp op;
    op.content = id;
    op.content_class = meta->content_class;
    op.kind = CloudOp::Kind::kWrite;  // source role for replication
    op.server = source;
    ++repairs_in_flight_;
    begin_replication(op, meta->size_bytes, cfg_.params.repair_priority,
                      /*repair=*/true);
  }
  for (const ContentId id : retry) repair_queue_.push_back(id);
}

void Cloud::note_replicas_changed(ContentMeta& meta) {
  const auto n = static_cast<std::int32_t>(meta.replicas.size());
  const std::int32_t target = std::max<std::int32_t>(1, cfg_.params.replicas);
  if (!meta.reached_target) {
    // Durability accounting only starts once the object is fully
    // replicated; the initial fill is not an under-replication episode.
    if (n < target) return;
    meta.reached_target = true;
  }
  const bool under = n < target;
  if (under != meta.under_replicated) {
    update_under_replicated_clock();
    meta.under_replicated = under;
    under_replicated_count_ += under ? 1 : -1;
  }
  // n == 0 is absorbing (fail_server only scrubs replicas it actually
  // erased), so each object is counted lost at most once.
  if (n == 0) ++churn_.objects_lost;
}

void Cloud::update_under_replicated_clock() {
  const sim::Time now = sim_.now();
  if (under_replicated_count_ > 0)
    under_replicated_seconds_ += (now - under_last_update_).seconds() *
                                 static_cast<double>(under_replicated_count_);
  under_last_update_ = now;
}

double Cloud::under_replicated_seconds() const {
  double total = under_replicated_seconds_;
  if (under_replicated_count_ > 0)
    total += (sim_.now() - under_last_update_).seconds() *
             static_cast<double>(under_replicated_count_);
  return total;
}

void Cloud::set_flow_priority(net::FlowId id, double priority) {
  if (allocator_.has_flow(id)) allocator_.set_priority(id, priority);
}

void Cloud::set_flow_target_rate(net::FlowId id, sim::BitRate target) {
  if (allocator_.has_flow(id)) target_ctrl_.set_target_rate(id, target);
}

void Cloud::set_flow_deadline(net::FlowId id, double deadline_s) {
  if (!allocator_.has_flow(id)) return;
  const transport::FlowRecord& rec = transports_.record(id);
  target_ctrl_.set_deadline(id, rec.size_bytes, deadline_s);
}

bool Cloud::write_with_deadline(std::size_t client_idx, ContentId id,
                                std::int64_t bytes, double deadline_s,
                                transport::ContentClass content_class) {
  if (!write(client_idx, id, bytes, content_class)) return false;
  pending_deadline_[id] = deadline_s;
  return true;
}

}  // namespace scda::core
