// Tunable parameters of the SCDA control plane (paper Table I and text).
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace scda::core {

/// Ethernet MTU as a typed byte count: the unit behind the allocator's
/// min-rate floor (one MTU per second) and the per-packet payload ceiling
/// (net::kDefaultMtuBytes carries the same value on the packet path).
inline constexpr sim::ByteCount kMtu{1500};

/// Which rate metric the RM/RA computes each control interval.
enum class RateMetricKind : std::uint8_t {
  kExact,       ///< eqs. 2-4: needs per-flow rate sums S(t)
  kSimplified,  ///< eq. 5: only needs the switch byte counter L(t)
};

struct ScdaParams {
  /// Stability parameters of eq. 2 (same role as in RCP/XCP).
  double alpha = 0.95;
  double beta = 0.5;

  /// Control interval tau in seconds. The paper suggests the average or
  /// maximum RTT of the flows; 50 ms sits between the intra-DC (~80 ms) and
  /// WAN-client (~200 ms) RTTs of the figure-6 topology.
  double tau = 0.05;

  RateMetricKind metric = RateMetricKind::kExact;

  /// Scale-down threshold rate R_scale for passive-content replication
  /// (section VII-C). Servers with uplink allocation above this are
  /// considered dormant-eligible. 0 disables the dormant-server policy.
  sim::BitRate rscale{};

  /// Maximum write/read interleaving gap that still counts as interactive
  /// (section VII: "maximum interactivity interval of 5 seconds").
  double interactivity_interval_s = 5.0;

  /// Headroom multiplier applied to the receive-window advertisement so the
  /// sender-side cwnd (not rcvw) is normally the binding constraint.
  double rcvw_headroom = 1.2;

  /// One-way latency of a control-plane RPC hop inside the datacenter
  /// (UCL->FES->NNS->RA->BS message exchanges, Figs. 3-5). The paper
  /// consolidates RM/RA "in a few powerful servers close to each other".
  double ctrl_dc_latency_s = 0.5e-3;
  /// One-way latency of a client-to-cloud control hop (WAN).
  double ctrl_wan_latency_s = 50e-3;

  /// Lower clamp on any per-flow link rate to keep flows alive while the
  /// allocator converges: one MTU per second (12 kbit/s — the same value
  /// the former magic constant 8.0 * 1500 encoded, now derived from the
  /// named MTU).
  sim::BitRate min_rate = sim::per_second(kMtu.bits());

  /// Enable power-aware selection: rank servers by rate/power instead of
  /// raw rate (section VII-D).
  bool power_aware = false;

  /// Number of name node servers behind the FES.
  std::int32_t n_name_nodes = 4;

  /// NNS metadata-request service time (seconds per request); models the
  /// single-NNS bottleneck of GFS/HDFS when n_name_nodes == 1.
  double nns_service_time_s = 20e-6;

  /// Replication factor for stored content (initial copy + replicas - 1).
  std::int32_t replicas = 2;

  /// Priority weight of background re-replication (repair) flows relative
  /// to foreground traffic (weight 1.0). Repair competes through the same
  /// RateAllocator weights as everything else (docs/scenarios.md).
  double repair_priority = 0.2;
  /// At most this many repair flows in flight at once (repair-storm
  /// control, as in HDFS's replication work limits).
  std::int32_t max_concurrent_repairs = 4;

  /// Cold-content migration (section VII-C): every this many seconds the
  /// cloud scans for content whose *learned* access class is passive and
  /// moves it from active servers to dormant-eligible ones. 0 disables.
  double migration_interval_s = 0.0;
  /// At most this many migrations are started per scan (storm control).
  std::int32_t max_migrations_per_scan = 2;

  // --- metadata-plane fault tolerance (docs/scenarios.md) --------------------
  /// Client-side deadline for a metadata request (FES hop + NNS queueing +
  /// service). On expiry the client re-dispatches; only active when NNS
  /// churn is configured, so churn-free runs keep the historical paths.
  double metadata_timeout_s = 0.25;
  /// First retry backoff; doubles per attempt (exponential backoff).
  double metadata_backoff_base_s = 0.05;
  /// Jitter fraction: each backoff is scaled by 1 + U[0,1) * jitter drawn
  /// from the run's seeded RNG (deterministic for a fixed seed).
  double metadata_backoff_jitter = 0.5;
  /// Total attempts (first try + retries) before the request is dropped
  /// and surfaced as a failed read/write.
  std::int32_t metadata_max_attempts = 5;
  /// Modelled wire size of one metadata record, used to size the
  /// standby-resync background flow (entries * bytes).
  sim::ByteCount nns_meta_entry{256};

  // --- proactive rebalancing (docs/scenarios.md) -----------------------------
  /// Every this many seconds, scan per-server load/capacity skew from the
  /// NNS access stats and move hot/overfull objects to cooler servers as
  /// background flows. 0 disables.
  double rebalance_interval_s = 0.0;
  /// Priority weight of rebalance flows in the RateAllocator's weighted
  /// max-min (foreground traffic is 1.0).
  double rebalance_priority = 0.3;
  /// A server is a move source when its load or stored bytes exceed the
  /// fleet mean by this fraction.
  double rebalance_skew_threshold = 0.5;
  /// At most this many rebalance moves are started per scan.
  std::int32_t max_rebalances_per_scan = 2;
};

}  // namespace scda::core
