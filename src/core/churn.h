// ChurnInjector: drives a pre-built FailureSchedule through the Cloud.
//
// The schedule (sim/failure_schedule.h) is a pure function of (config,
// topology shape, run seed), computed once at construction; the injector
// posts each transition through the simulator and translates it into the
// Cloud's failure API:
//
//   server down/up -> Cloud::fail_server / recover_server
//   link   down/up -> Cloud::set_link_up on the ToR's duplex trunk pair
//   nns    down/up -> Cloud::fail_nns / recover_nns (metadata plane)
//
// Scripted and stochastic outages can overlap (a pod kill while a renewal
// process already has a server down). Per-entity down *counts* resolve
// that: only the 0 -> 1 edge fails the entity and only the 1 -> 0 edge
// recovers it, so nested outages never double-fail or early-recover.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/failure_schedule.h"

namespace scda::core {

class Cloud;

/// Injection counters, exported under churn_* metrics when churn is on.
struct ChurnInjectorStats {
  std::uint64_t scheduled = 0;  ///< schedule size (events posted up-front)
  std::uint64_t server_downs = 0;
  std::uint64_t server_ups = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t link_ups = 0;
  std::uint64_t nns_downs = 0;
  std::uint64_t nns_ups = 0;
};

class ChurnInjector {
 public:
  ChurnInjector(Cloud& cloud, const sim::ChurnConfig& cfg);

  [[nodiscard]] const std::vector<sim::FailureEvent>& schedule()
      const noexcept {
    return schedule_;
  }
  [[nodiscard]] const ChurnInjectorStats& stats() const noexcept {
    return stats_;
  }

 private:
  void apply(const sim::FailureEvent& ev);

  Cloud& cloud_;
  std::vector<sim::FailureEvent> schedule_;
  std::vector<std::int32_t> server_down_count_;
  std::vector<std::int32_t> link_down_count_;
  std::vector<std::int32_t> nns_down_count_;
  ChurnInjectorStats stats_;
};

}  // namespace scda::core
