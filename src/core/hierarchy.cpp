#include "core/hierarchy.h"

#include <algorithm>

namespace scda::core {

Hierarchy::Hierarchy(net::ThreeTierTree& topo, RateAllocator& alloc)
    : topo_(topo), alloc_(alloc) {
  const auto n = static_cast<std::size_t>(topo_.config().n_servers());
  const std::vector<double> zero(kMaxLevel + 1, 0.0);
  val_up_.assign(n, zero);
  val_down_.assign(n, zero);
  rcheck_up_.assign(n, zero);
  rcheck_down_.assign(n, zero);
}

void Hierarchy::update() {
  const auto n = val_up_.size();
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t tor = topo_.tor_of_server(s);
    const std::size_t agg = topo_.agg_of_tor(tor);

    // Level-h link rates along this server's up and down paths.
    const double up0 = alloc_.link_rate(topo_.server_uplink(s));
    const double up1 = alloc_.link_rate(topo_.tor_uplink(tor));
    const double up2 = alloc_.link_rate(topo_.agg_uplink(agg));
    const double up3 = alloc_.link_rate(topo_.core_uplink());
    const double dn0 = alloc_.link_rate(topo_.server_downlink(s));
    const double dn1 = alloc_.link_rate(topo_.tor_downlink(tor));
    const double dn2 = alloc_.link_rate(topo_.agg_downlink(agg));
    const double dn3 = alloc_.link_rate(topo_.core_downlink());

    const double other = r_other_ ? r_other_(s)
                                  : std::numeric_limits<double>::infinity();

    // Bottom-up R-hat chain: the server's value at level h is the min of
    // its level-0 value and every link rate on the way up through level h.
    val_up_[s][0] = std::min(up0, other);
    val_up_[s][1] = std::min(val_up_[s][0], up1);
    val_up_[s][2] = std::min(val_up_[s][1], up2);
    val_up_[s][3] = std::min(val_up_[s][2], up3);

    val_down_[s][0] = std::min(dn0, other);
    val_down_[s][1] = std::min(val_down_[s][0], dn1);
    val_down_[s][2] = std::min(val_down_[s][1], dn2);
    val_down_[s][3] = std::min(val_down_[s][2], dn3);

    // Top-down R-check chain: min of the link rates from level h to the RM
    // (figure 2, "kept at RM").
    rcheck_up_[s][0] = up0;
    rcheck_up_[s][1] = std::min(up0, up1);
    rcheck_up_[s][2] = std::min(rcheck_up_[s][1], up2);
    rcheck_up_[s][3] = std::min(rcheck_up_[s][2], up3);

    rcheck_down_[s][0] = dn0;
    rcheck_down_[s][1] = std::min(dn0, dn1);
    rcheck_down_[s][2] = std::min(rcheck_down_[s][1], dn2);
    rcheck_down_[s][3] = std::min(rcheck_down_[s][2], dn3);
  }
}

namespace {
double metric_value(const std::vector<std::vector<double>>& up,
                    const std::vector<std::vector<double>>& down,
                    std::size_t s, int level, SelectionMetric m) {
  const auto h = static_cast<std::size_t>(level);
  switch (m) {
    case SelectionMetric::kDown: return down[s][h];
    case SelectionMetric::kUp: return up[s][h];
    case SelectionMetric::kMinUpDown: return std::min(up[s][h], down[s][h]);
  }
  return 0;
}
}  // namespace

BestServer Hierarchy::best_server(SelectionMetric m, int level) const {
  BestServer best;
  for (std::size_t s = 0; s < val_up_.size(); ++s) {
    const double v = metric_value(val_up_, val_down_, s, level, m);
    if (v > best.value_bps) {
      best.value_bps = v;
      best.server = static_cast<std::int32_t>(s);
    }
  }
  return best;
}

BestServer Hierarchy::best_server_in_rack(std::size_t tor_idx,
                                          SelectionMetric m) const {
  BestServer best;
  const auto per_tor =
      static_cast<std::size_t>(topo_.config().servers_per_tor);
  const std::size_t lo = tor_idx * per_tor;
  const std::size_t hi = std::min(lo + per_tor, val_up_.size());
  for (std::size_t s = lo; s < hi; ++s) {
    const double v = metric_value(val_up_, val_down_, s, /*level=*/0, m);
    if (v > best.value_bps) {
      best.value_bps = v;
      best.server = static_cast<std::int32_t>(s);
    }
  }
  return best;
}

BestServer Hierarchy::best_server_filtered(
    SelectionMetric m, int level,
    const std::function<bool(std::size_t)>& admit,
    const std::function<double(std::size_t, double)>& reweight) const {
  BestServer best;
  for (std::size_t s = 0; s < val_up_.size(); ++s) {
    if (admit && !admit(s)) continue;
    double v = metric_value(val_up_, val_down_, s, level, m);
    if (reweight) v = reweight(s, v);
    if (v > best.value_bps) {
      best.value_bps = v;
      best.server = static_cast<std::int32_t>(s);
    }
  }
  return best;
}

SlaLevelReport Hierarchy::sla_report() const {
  SlaLevelReport rep;
  const auto n = val_up_.size();
  for (std::size_t s = 0; s < n; ++s) {
    rep.per_level[0] += alloc_.sla_violations(topo_.server_uplink(s)) +
                        alloc_.sla_violations(topo_.server_downlink(s));
  }
  for (std::size_t t = 0; t < topo_.tors().size(); ++t) {
    rep.per_level[1] += alloc_.sla_violations(topo_.tor_uplink(t)) +
                        alloc_.sla_violations(topo_.tor_downlink(t));
  }
  for (std::size_t a = 0; a < topo_.aggs().size(); ++a) {
    rep.per_level[2] += alloc_.sla_violations(topo_.agg_uplink(a)) +
                        alloc_.sla_violations(topo_.agg_downlink(a));
  }
  rep.per_level[3] = alloc_.sla_violations(topo_.core_uplink()) +
                     alloc_.sla_violations(topo_.core_downlink());
  return rep;
}

}  // namespace scda::core
