#include "core/hierarchy.h"

#include <algorithm>
#include <limits>

namespace scda::core {

Hierarchy::Hierarchy(net::ThreeTierTree& topo, RateAllocator& alloc)
    : topo_(topo), alloc_(alloc) {
  n_ = static_cast<std::size_t>(topo_.config().n_servers());
  const std::size_t rows = static_cast<std::size_t>(kMaxLevel + 1) * n_;
  val_up_.assign(rows, sim::BitRate{});
  val_down_.assign(rows, sim::BitRate{});
  rcheck_up_.assign(rows, sim::BitRate{});
  rcheck_down_.assign(rows, sim::BitRate{});
  tor_cums_.resize(topo_.tors().size());
}

void Hierarchy::update() {
  const sim::BitRate up3 = alloc_.link_rate(topo_.core_uplink());
  const sim::BitRate dn3 = alloc_.link_rate(topo_.core_downlink());

  // Hoist the per-ToR part of every chain: all servers under one ToR share
  // the level-1..3 links, so the cumulative mins up the tree are computed
  // once per ToR instead of once per server.
  for (std::size_t t = 0; t < tor_cums_.size(); ++t) {
    const std::size_t agg = topo_.agg_of_tor(t);
    TorCums& c = tor_cums_[t];
    c.up1 = alloc_.link_rate(topo_.tor_uplink(t));
    c.up2 = sim::min(c.up1, alloc_.link_rate(topo_.agg_uplink(agg)));
    c.up3 = sim::min(c.up2, up3);
    c.dn1 = alloc_.link_rate(topo_.tor_downlink(t));
    c.dn2 = sim::min(c.dn1, alloc_.link_rate(topo_.agg_downlink(agg)));
    c.dn3 = sim::min(c.dn2, dn3);
  }

  sim::BitRate* const vu = val_up_.data();
  sim::BitRate* const vd = val_down_.data();
  sim::BitRate* const cu = rcheck_up_.data();
  sim::BitRate* const cd = rcheck_down_.data();
  const std::size_t n = n_;
  for (std::size_t s = 0; s < n; ++s) {
    const TorCums& c = tor_cums_[topo_.tor_of_server(s)];
    const sim::BitRate up0 = alloc_.link_rate(topo_.server_uplink(s));
    const sim::BitRate dn0 = alloc_.link_rate(topo_.server_downlink(s));
    const sim::BitRate other =
        r_other_ ? r_other_(s)
                 : sim::BitRate{std::numeric_limits<double>::infinity()};

    // Bottom-up R-hat chain: the server's value at level h is the min of
    // its level-0 value and every link rate on the way up through level h.
    const sim::BitRate u0 = sim::min(up0, other);
    vu[s] = u0;
    vu[n + s] = sim::min(u0, c.up1);
    vu[2 * n + s] = sim::min(u0, c.up2);
    vu[3 * n + s] = sim::min(u0, c.up3);

    const sim::BitRate d0 = sim::min(dn0, other);
    vd[s] = d0;
    vd[n + s] = sim::min(d0, c.dn1);
    vd[2 * n + s] = sim::min(d0, c.dn2);
    vd[3 * n + s] = sim::min(d0, c.dn3);

    // Top-down R-check chain: min of the link rates from level h to the RM
    // (figure 2, "kept at RM").
    cu[s] = up0;
    cu[n + s] = sim::min(up0, c.up1);
    cu[2 * n + s] = sim::min(up0, c.up2);
    cu[3 * n + s] = sim::min(up0, c.up3);

    cd[s] = dn0;
    cd[n + s] = sim::min(dn0, c.dn1);
    cd[2 * n + s] = sim::min(dn0, c.dn2);
    cd[3 * n + s] = sim::min(dn0, c.dn3);
  }
}

namespace {
sim::BitRate metric_value(const sim::BitRate* up_row,
                          const sim::BitRate* down_row, std::size_t s,
                          SelectionMetric m) {
  switch (m) {
    case SelectionMetric::kDown: return down_row[s];
    case SelectionMetric::kUp: return up_row[s];
    case SelectionMetric::kMinUpDown: return sim::min(up_row[s], down_row[s]);
  }
  return sim::BitRate{};
}
}  // namespace

BestServer Hierarchy::best_server(SelectionMetric m, int level) const {
  BestServer best;
  const sim::BitRate* up =
      val_up_.data() + static_cast<std::size_t>(level) * n_;
  const sim::BitRate* down =
      val_down_.data() + static_cast<std::size_t>(level) * n_;
  for (std::size_t s = 0; s < n_; ++s) {
    const sim::BitRate v = metric_value(up, down, s, m);
    if (v > best.value) {
      best.value = v;
      best.server = static_cast<std::int32_t>(s);
    }
  }
  return best;
}

BestServer Hierarchy::best_server_in_rack(std::size_t tor_idx,
                                          SelectionMetric m) const {
  BestServer best;
  const auto per_tor =
      static_cast<std::size_t>(topo_.config().servers_per_tor);
  const std::size_t lo = tor_idx * per_tor;
  const std::size_t hi = std::min(lo + per_tor, n_);
  const sim::BitRate* up = val_up_.data();  // level-0 row
  const sim::BitRate* down = val_down_.data();
  for (std::size_t s = lo; s < hi; ++s) {
    const sim::BitRate v = metric_value(up, down, s, m);
    if (v > best.value) {
      best.value = v;
      best.server = static_cast<std::int32_t>(s);
    }
  }
  return best;
}

BestServer Hierarchy::best_server_filtered(
    SelectionMetric m, int level,
    const std::function<bool(std::size_t)>& admit,
    const std::function<sim::BitRate(std::size_t, sim::BitRate)>& reweight)
    const {
  BestServer best;
  const sim::BitRate* up =
      val_up_.data() + static_cast<std::size_t>(level) * n_;
  const sim::BitRate* down =
      val_down_.data() + static_cast<std::size_t>(level) * n_;
  for (std::size_t s = 0; s < n_; ++s) {
    if (admit && !admit(s)) continue;
    sim::BitRate v = metric_value(up, down, s, m);
    if (reweight) v = reweight(s, v);
    if (v > best.value) {
      best.value = v;
      best.server = static_cast<std::int32_t>(s);
    }
  }
  return best;
}

SlaLevelReport Hierarchy::sla_report() const {
  SlaLevelReport rep;
  for (std::size_t s = 0; s < n_; ++s) {
    rep.per_level[0] += alloc_.sla_violations(topo_.server_uplink(s)) +
                        alloc_.sla_violations(topo_.server_downlink(s));
  }
  for (std::size_t t = 0; t < topo_.tors().size(); ++t) {
    rep.per_level[1] += alloc_.sla_violations(topo_.tor_uplink(t)) +
                        alloc_.sla_violations(topo_.tor_downlink(t));
  }
  for (std::size_t a = 0; a < topo_.aggs().size(); ++a) {
    rep.per_level[2] += alloc_.sla_violations(topo_.agg_uplink(a)) +
                        alloc_.sla_violations(topo_.agg_downlink(a));
  }
  rep.per_level[3] = alloc_.sla_violations(topo_.core_uplink()) +
                     alloc_.sla_violations(topo_.core_downlink());
  return rep;
}

}  // namespace scda::core
