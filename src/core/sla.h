// SLA violation bookkeeping and mitigation (paper section IV-A).
//
// The RateAllocator detects violations (S > alpha*C - beta*Q/tau) in
// realtime; this manager records them, keeps a per-link recency view used
// to steer new requests away from violating subtrees, and can trigger the
// "add more resources" mitigation by activating reserve capacity on a link.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace scda::core {

struct SlaEvent {
  sim::Time time{};
  net::LinkId link = net::kInvalidLink;
  sim::BitRate demand{};    ///< S at detection
  sim::BitRate capacity{};  ///< effective capacity gamma at detection
};

class SlaManager {
 public:
  explicit SlaManager(net::Network& net) : net_(net) {}

  /// How long (seconds) a link stays on the avoid list after a violation.
  void set_cooldown(double s) noexcept { cooldown_s_ = s; }

  /// Reserve-capacity mitigation: after `threshold` consecutive violations
  /// on a link, its capacity is scaled by `boost` once (models switching in
  /// a backup/recovery link, section IV-A). 0 disables.
  void enable_capacity_boost(std::uint32_t threshold, double boost) {
    boost_threshold_ = threshold;
    boost_factor_ = boost;
  }

  void on_violation(net::LinkId link, sim::BitRate demand, sim::BitRate gamma,
                    sim::Time time);

  /// True when the link violated its SLA within the cooldown window —
  /// the NNS avoids servers behind such links when placing new content.
  [[nodiscard]] bool recently_violated(net::LinkId link,
                                       sim::Time now) const {
    const auto it = last_violation_.find(link);
    return it != last_violation_.end() &&
           now - it->second < sim::secs(cooldown_s_);
  }

  [[nodiscard]] const std::vector<SlaEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t boosts_applied() const noexcept {
    return boosts_applied_;
  }

 private:
  net::Network& net_;
  double cooldown_s_ = 1.0;
  std::uint32_t boost_threshold_ = 0;
  double boost_factor_ = 1.0;
  std::vector<SlaEvent> events_;
  std::unordered_map<net::LinkId, sim::Time> last_violation_;
  std::unordered_map<net::LinkId, std::uint32_t> consecutive_;
  std::unordered_map<net::LinkId, bool> boosted_;
  std::uint64_t boosts_applied_ = 0;
};

}  // namespace scda::core
