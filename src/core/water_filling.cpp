#include "core/water_filling.h"

#include <algorithm>
#include <stdexcept>

namespace scda::core {

namespace {

[[noreturn]] void missing_capacity() {
  throw std::invalid_argument("water_fill: missing link capacity");
}

}  // namespace

void water_fill(std::vector<ReferenceFlow>& flows,
                const std::map<net::LinkId, sim::BitRate>& capacity) {
  // LinkIds are small sequential integers, so the capacity map flattens
  // into dense LinkId-indexed tables: every per-link lookup in the O(L*F)
  // inner loops becomes an array index instead of a red-black-tree walk.
  net::LinkId max_id{-1};
  for (const auto& [l, c] : capacity) max_id = std::max(max_id, l);
  const std::size_t n = static_cast<std::size_t>(max_id.value() + 1);
  std::vector<sim::BitRate> residual(n, sim::BitRate{});
  std::vector<char> has_cap(n, 0);
  for (const auto& [l, c] : capacity) {
    residual[l.index()] = c;
    has_cap[l.index()] = 1;
  }
  const auto check = [&](net::LinkId l) -> std::size_t {
    const auto i = l.index();
    if (!l.valid() || i >= n || !has_cap[i]) missing_capacity();
    return i;
  };

  // Grant reservations off the top (section IV-C).
  for (auto& f : flows) {
    f.rate = sim::BitRate{-1.0};
    if (f.reserved <= sim::BitRate{}) continue;
    for (const auto l : f.path)
      residual[check(l)] -= f.reserved;  // may go negative: oversub
  }

  std::vector<double> wsum(n, 0.0);
  std::vector<char> is_touched(n, 0);
  std::vector<net::LinkId> touched;  // links with unfrozen flows, unsorted
  std::size_t unfrozen = flows.size();
  while (unfrozen > 0) {
    // Weight sums of unfrozen flows per link.
    for (const auto l : touched) {
      wsum[l.index()] = 0.0;
      is_touched[l.index()] = 0;
    }
    touched.clear();
    for (const auto& f : flows) {
      if (f.rate >= sim::BitRate{}) continue;
      for (const auto l : f.path) {
        const std::size_t i = check(l);
        wsum[i] += f.weight;
        if (!is_touched[i]) {
          is_touched[i] = 1;
          touched.push_back(l);
        }
      }
    }
    // Tightest link: minimum residual-per-weight level (floored at 0 for
    // links oversubscribed by reservations). Iterate in ascending LinkId
    // order — as the std::map-based version did — so ties freeze the same
    // link and results stay bit-identical.
    std::sort(touched.begin(), touched.end());
    double level = -1;
    net::LinkId arg = net::kInvalidLink;
    for (const auto l : touched) {
      const std::size_t i = l.index();
      if (wsum[i] <= 0) continue;
      const double lv = sim::max(residual[i], sim::BitRate{}).bps() / wsum[i];
      if (level < 0 || lv < level) {
        level = lv;
        arg = l;
      }
    }
    if (arg == net::kInvalidLink) {
      // Remaining flows cross no capacitated link (e.g. zero-length
      // paths): they are unconstrained; report their reservation only.
      for (auto& f : flows)
        if (f.rate < sim::BitRate{}) f.rate = f.reserved;
      break;
    }
    for (auto& f : flows) {
      if (f.rate >= sim::BitRate{}) continue;
      bool crosses = false;
      for (const auto l : f.path) crosses |= (l == arg);
      if (!crosses) continue;
      const sim::BitRate share = f.weight * sim::BitRate{level};
      f.rate = f.reserved + share;
      --unfrozen;
      for (const auto l : f.path)
        residual[l.index()] -= share;
    }
  }
}

std::vector<sim::BitRate> water_fill_rates(
    std::vector<ReferenceFlow> flows,
    const std::map<net::LinkId, sim::BitRate>& capacity) {
  water_fill(flows, capacity);
  std::vector<sim::BitRate> rates;
  rates.reserve(flows.size());
  for (const auto& f : flows) rates.push_back(f.rate);
  return rates;
}

}  // namespace scda::core
