#include "core/water_filling.h"

#include <algorithm>
#include <stdexcept>

namespace scda::core {

void water_fill(std::vector<ReferenceFlow>& flows,
                const std::map<net::LinkId, double>& capacity_bps) {
  std::map<net::LinkId, double> residual = capacity_bps;

  // Grant reservations off the top (section IV-C).
  for (auto& f : flows) {
    f.rate_bps = -1.0;
    if (f.reserved_bps <= 0) continue;
    for (const auto l : f.path) {
      const auto it = residual.find(l);
      if (it == residual.end())
        throw std::invalid_argument("water_fill: missing link capacity");
      it->second -= f.reserved_bps;  // may go negative: oversubscription
    }
  }

  std::size_t unfrozen = flows.size();
  while (unfrozen > 0) {
    // Weight sums of unfrozen flows per link.
    std::map<net::LinkId, double> wsum;
    for (const auto& f : flows) {
      if (f.rate_bps >= 0) continue;
      for (const auto l : f.path) {
        if (!capacity_bps.count(l))
          throw std::invalid_argument("water_fill: missing link capacity");
        wsum[l] += f.weight;
      }
    }
    // Tightest link: minimum residual-per-weight level (floored at 0 for
    // links oversubscribed by reservations).
    double level = -1;
    net::LinkId arg = net::kInvalidLink;
    for (const auto& [l, w] : wsum) {
      if (w <= 0) continue;
      const double lv = std::max(residual.at(l), 0.0) / w;
      if (level < 0 || lv < level) {
        level = lv;
        arg = l;
      }
    }
    if (arg == net::kInvalidLink) {
      // Remaining flows cross no capacitated link (e.g. zero-length
      // paths): they are unconstrained; report their reservation only.
      for (auto& f : flows)
        if (f.rate_bps < 0) f.rate_bps = f.reserved_bps;
      break;
    }
    for (auto& f : flows) {
      if (f.rate_bps >= 0) continue;
      bool crosses = false;
      for (const auto l : f.path) crosses |= (l == arg);
      if (!crosses) continue;
      const double share = f.weight * level;
      f.rate_bps = f.reserved_bps + share;
      --unfrozen;
      for (const auto l : f.path) residual.at(l) -= share;
    }
  }
}

}  // namespace scda::core
