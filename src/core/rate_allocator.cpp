#include "core/rate_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rate_metric.h"
#include "obs/observability.h"
#include "util/log.h"

namespace scda::core {

RateAllocator::RateAllocator(net::Network& net, const ScdaParams& params)
    : net_(net), params_(params) {
  links_.resize(net_.link_count());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    // An idle link initially offers its full effective capacity.
    const sim::BitRate c = net_.link(net::LinkId::from_index(l)).capacity();
    links_[l].rate = params_.alpha * c;
    links_[l].gamma = params_.alpha * c;
  }
}

std::size_t RateAllocator::find_row(net::FlowId id) const noexcept {
  const auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), id,
      [](const IndexEntry& e, net::FlowId v) { return e.id < v; });
  if (it == by_id_.end() || it->id != id) return kNoRow;
  return static_cast<std::size_t>(it - by_id_.begin());
}

std::uint32_t RateAllocator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  priority_.push_back(0.0);
  reserved_.push_back(sim::BitRate{});
  rate_.push_back(sim::BitRate{});
  path_.emplace_back();
  r_other_send_.emplace_back();
  r_other_recv_.emplace_back();
  return static_cast<std::uint32_t>(priority_.size() - 1);
}

void RateAllocator::register_flow(net::FlowId id, net::NodeId src,
                                  net::NodeId dst, double priority,
                                  sim::BitRate reserved,
                                  RateProviderFn r_other_send,
                                  RateProviderFn r_other_recv) {
  register_flow_on_path(id, net_.path(src, dst), priority, reserved,
                        std::move(r_other_send), std::move(r_other_recv));
}

void RateAllocator::register_flow_on_path(net::FlowId id,
                                          std::vector<net::LinkId> path,
                                          double priority,
                                          sim::BitRate reserved,
                                          RateProviderFn r_other_send,
                                          RateProviderFn r_other_recv) {
  const auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), id,
      [](const IndexEntry& e, net::FlowId v) { return e.id < v; });
  if (it != by_id_.end() && it->id == id)
    throw std::logic_error("RateAllocator: flow already registered");

  const std::uint32_t s = acquire_slot();
  priority_[s] = priority;
  reserved_[s] = reserved;
  // Reuse the recycled slot's path capacity instead of adopting the
  // caller's buffer: steady churn then allocates nothing.
  path_[s].assign(path.begin(), path.end());
  r_other_send_[s] = std::move(r_other_send);
  r_other_recv_[s] = std::move(r_other_recv);
  by_id_.insert(it, IndexEntry{id, s});  // ids are monotonic: usually a push

  // Immediate feedback: each RA counts the new flow into its effective
  // flow total and lowers its advertised per-flow rate accordingly, so
  // several flows admitted within the same control interval are quoted
  // gamma/(N-hat + 1), gamma/(N-hat + 2), ... instead of all receiving the
  // full link rate. The next tick recomputes the exact values. Down links
  // keep their pinned zero rate.
  for (const net::LinkId l : path_[s]) {
    auto& st = links_[l.index()];
    st.reserved += reserved;
    st.nhat += priority;
    if (st.down) continue;
    const sim::BitRate shareable =
        sim::max(st.gamma - st.reserved, params_.min_rate);
    st.rate = sim::clamp(shareable / std::max(st.nhat, 1.0),
                         params_.min_rate, shareable);
  }
  // Seed the flow's rate with the post-admission quote so the first
  // interval's S already accounts for it (the NNS hands this same value to
  // the sender as the initial allocation).
  rate_[s] = reserved + priority * path_rate(path_[s]);
}

void RateAllocator::unregister_flow(net::FlowId id) {
  const std::size_t row = find_row(id);
  if (row == kNoRow) return;
  const std::uint32_t s = by_id_[row].slot;
  for (const net::LinkId l : path_[s])
    links_[l.index()].reserved -= reserved_[s];
  path_[s].clear();  // keeps capacity for the next flow on this slot
  r_other_send_[s] = nullptr;  // release captured state eagerly
  r_other_recv_[s] = nullptr;
  by_id_.erase(by_id_.begin() + static_cast<std::ptrdiff_t>(row));
  free_slots_.push_back(s);
}

void RateAllocator::set_priority(net::FlowId id, double priority) {
  const std::size_t row = find_row(id);
  if (row == kNoRow) throw std::out_of_range("RateAllocator: unknown flow");
  priority_[by_id_[row].slot] = std::max(priority, 0.0);
}

double RateAllocator::priority(net::FlowId id) const {
  const std::size_t row = find_row(id);
  if (row == kNoRow) throw std::out_of_range("RateAllocator: unknown flow");
  return priority_[by_id_[row].slot];
}

sim::BitRate RateAllocator::flow_rate(net::FlowId id) const {
  const std::size_t row = find_row(id);
  return row == kNoRow ? sim::BitRate{} : rate_[by_id_[row].slot];
}

sim::BitRate RateAllocator::path_rate(net::NodeId src, net::NodeId dst) const {
  return path_rate(net_.path(src, dst));
}

sim::BitRate RateAllocator::path_rate(
    const std::vector<net::LinkId>& path) const {
  sim::BitRate r{std::numeric_limits<double>::infinity()};
  for (const net::LinkId l : path)
    r = sim::min(r, links_[l.index()].rate);
  return std::isfinite(r.bps()) ? r : sim::BitRate{};
}

void RateAllocator::set_link_up(net::LinkId l, bool up) {
  auto& st = links_.at(l.index());
  st.down = !up;
  if (!up) {
    st.rate = sim::BitRate{};
    st.gamma = sim::BitRate{};
  } else {
    // Recovered link: quote its idle rate (same seed as construction);
    // the next tick recomputes the exact value from the counters.
    const sim::BitRate c = net_.link(l).capacity();
    st.rate = params_.alpha * c;
    st.gamma = params_.alpha * c;
  }
}

void RateAllocator::refresh_flow_rates() {
  for (const IndexEntry& e : by_id_) {
    const std::uint32_t s = e.slot;
    sim::BitRate base{std::numeric_limits<double>::infinity()};
    bool down = false;
    for (const net::LinkId l : path_[s]) {
      const auto& st = links_[l.index()];
      down = down || st.down;
      base = sim::min(base, st.rate);
    }
    if (!std::isfinite(base.bps())) base = sim::BitRate{};
    if (down) {
      rate_[s] = sim::BitRate{};
      continue;
    }
    sim::BitRate r = reserved_[s] + priority_[s] * base;
    if (r_other_send_[s]) r = sim::min(r, r_other_send_[s]());
    if (r_other_recv_[s]) r = sim::min(r, r_other_recv_[s]());
    rate_[s] = sim::max(r, params_.min_rate);
  }
}

void RateAllocator::tick() {
  const double tau = params_.tau;
  const sim::Time now = net_.sim().now();
  ++control_stats_.ticks;
  control_stats_.flow_updates += by_id_.size();
  control_stats_.link_updates += links_.size();

  // Pass 1: effective capacity per link from the switch counters Q(t)
  // (and L(t) for the simplified metric).
  for (std::size_t l = 0; l < links_.size(); ++l) {
    auto& st = links_[l];
    net::Link& link = net_.link(net::LinkId::from_index(l));
    st.down = !link.up();
    if (st.down) {
      st.gamma = sim::BitRate{};
      st.rate = sim::BitRate{};
      st.rate_sum = sim::BitRate{};
      st.share_sum = sim::BitRate{};
      continue;
    }
    st.gamma = effective_capacity(link.capacity(),
                                  sim::ByteCount{link.queue_bytes()}.bits(),
                                  tau, params_.alpha, params_.beta);
    st.rate_sum = sim::BitRate{};
    st.share_sum = sim::BitRate{};
  }

  // Pass 2: per-flow end-to-end allocation from the *previous* interval's
  // link rates (this is the information the top-down RA pass delivered to
  // each RM), accumulated into each crossed link's S.
  //
  // The walk follows the sorted flow-id index, so the floating-point
  // accumulation order into S is ascending-id — a pure function of the
  // registered flow set, portable across standard libraries. (Until the
  // integer-time re-baselining this loop walked unordered_map iteration
  // order and every committed figure depended on libstdc++'s hashing.)
  for (const IndexEntry& e : by_id_) {
    const std::uint32_t s = e.slot;
    sim::BitRate base{std::numeric_limits<double>::infinity()};
    bool down = false;
    for (const net::LinkId l : path_[s]) {
      const auto& lst = links_[l.index()];
      down = down || lst.down;
      base = sim::min(base, lst.rate);
    }
    if (!std::isfinite(base.bps())) base = sim::BitRate{};

    sim::BitRate r = reserved_[s] + priority_[s] * base;
    if (r_other_send_[s]) r = sim::min(r, r_other_send_[s]());
    if (r_other_recv_[s]) r = sim::min(r, r_other_recv_[s]());
    // A path crossing a down link is allocated exactly 0 (not the min-rate
    // floor): the fluid engine parks such flows and packet senders stall
    // until recovery re-rates them.
    const sim::BitRate rate =
        down ? sim::BitRate{} : sim::max(r, params_.min_rate);
    rate_[s] = rate;

    const sim::BitRate share = sim::max(sim::BitRate{}, rate - reserved_[s]);
    // The empty asm pins the two addends as plain register defs. Both are
    // PHIs (of the down/min-rate branches above), and gcc's SLP refuses to
    // pack a PHI pair spanning blocks — without the pin the accumulation
    // below compiles to two scalar addsd per link instead of the single
    // packed addpd the pre-Quantity code got. Value-preserving: the asm
    // has no code, it only blocks the PHI lookthrough.
    // scda-lint: allow(units) numeric-kernel boundary: SLP-packed accumulate
    double rate_v = rate.bps(), share_v = share.bps();
    asm("" : "+x"(rate_v), "+x"(share_v));
    for (const net::LinkId l : path_[s]) {
      auto& lk = links_[l.index()];
      lk.rate_sum = sim::BitRate{lk.rate_sum.bps() + rate_v};
      lk.share_sum = sim::BitRate{lk.share_sum.bps() + share_v};
    }
  }

  // Pass 3: new per-link rates (eq. 2 or eq. 5) over the shareable capacity
  // (capacity minus explicit reservations, section IV-C), plus SLA checks
  // against the full effective capacity (section IV-A).
  for (std::size_t l = 0; l < links_.size(); ++l) {
    auto& st = links_[l];
    net::Link& link = net_.link(net::LinkId::from_index(l));
    if (st.down) {
      // Pinned at zero while down; drain the interval counter so stale
      // pre-failure arrivals don't distort the first post-recovery round.
      st.nhat = 0;
      (void)link.take_interval_arrived_bytes();
      continue;
    }
    const sim::BitRate shareable =
        sim::max(st.gamma - st.reserved, params_.min_rate);

    if (params_.metric == RateMetricKind::kExact) {
      st.nhat = effective_flows(st.share_sum, st.rate);
      st.rate = exact_rate(shareable, st.share_sum, st.rate,
                           params_.min_rate);
    } else {
      const sim::BitCount l_bits =
          sim::ByteCount{link.take_interval_arrived_bytes()}.bits();
      st.nhat = effective_flows(
          sim::BitRate{static_cast<double>(l_bits.bits()) / tau}, st.rate);
      st.rate =
          simplified_rate(shareable, l_bits, tau, st.rate,
                          params_.min_rate);
    }

    if (sla_violated(st.rate_sum, st.gamma)) {
      ++st.sla_violations;
      ++total_sla_violations_;
      if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
        tr->instant(now, "control", "sla_violation", obs::kTrackControl,
                    {{"link", static_cast<double>(l)},
                     {"rate_sum_bps", st.rate_sum.bps()},
                     {"gamma_bps", st.gamma.bps()}});
      }
      if (on_sla_)
        on_sla_(net::LinkId::from_index(l), st.rate_sum, st.gamma, now);
    }
  }

  if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
    tr->instant(now, "control", "ra_round", obs::kTrackControl,
                {{"flows", static_cast<double>(by_id_.size())},
                 {"links", static_cast<double>(links_.size())},
                 {"violations", static_cast<double>(total_sla_violations_)}});
  }

  // Epoch notification last: subscribers (the fluid engine) see the fully
  // settled allocations of this round.
  if (on_epoch_) on_epoch_();
}

}  // namespace scda::core
