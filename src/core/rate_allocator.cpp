#include "core/rate_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rate_metric.h"
#include "obs/observability.h"
#include "util/log.h"

namespace scda::core {

RateAllocator::RateAllocator(net::Network& net, const ScdaParams& params)
    : net_(net), params_(params) {
  links_.resize(net_.link_count());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    // An idle link initially offers its full effective capacity.
    const double c = net_.link(net::LinkId::from_index(l)).capacity_bps();
    links_[l].rate = params_.alpha * c;
    links_[l].gamma = params_.alpha * c;
  }
}

void RateAllocator::register_flow(net::FlowId id, net::NodeId src,
                                  net::NodeId dst, double priority,
                                  double reserved_bps,
                                  RateProviderFn r_other_send,
                                  RateProviderFn r_other_recv) {
  register_flow_on_path(id, net_.path(src, dst), priority, reserved_bps,
                        std::move(r_other_send), std::move(r_other_recv));
}

void RateAllocator::register_flow_on_path(net::FlowId id,
                                          std::vector<net::LinkId> path,
                                          double priority,
                                          double reserved_bps,
                                          RateProviderFn r_other_send,
                                          RateProviderFn r_other_recv) {
  if (flows_.count(id))
    throw std::logic_error("RateAllocator: flow already registered");
  FlowState fs;
  fs.id = id;
  fs.path = std::move(path);
  fs.priority = priority;
  fs.reserved_bps = reserved_bps;
  fs.r_other_send = std::move(r_other_send);
  fs.r_other_recv = std::move(r_other_recv);
  // Immediate feedback: each RA counts the new flow into its effective
  // flow total and lowers its advertised per-flow rate accordingly, so
  // several flows admitted within the same control interval are quoted
  // gamma/(N-hat + 1), gamma/(N-hat + 2), ... instead of all receiving the
  // full link rate. The next tick recomputes the exact values.
  for (const net::LinkId l : fs.path) {
    auto& st = links_[l.index()];
    st.reserved += reserved_bps;
    st.nhat += priority;
    const double shareable =
        std::max(st.gamma - st.reserved, params_.min_rate_bps);
    st.rate = std::clamp(shareable / std::max(st.nhat, 1.0),
                         params_.min_rate_bps, shareable);
  }
  // Seed the flow's rate with the post-admission quote so the first
  // interval's S already accounts for it (the NNS hands this same value to
  // the sender as the initial allocation).
  fs.rate = reserved_bps + priority * path_rate(fs.path);
  flows_.emplace(id, std::move(fs));
}

void RateAllocator::unregister_flow(net::FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  for (const net::LinkId l : it->second.path)
    links_[l.index()].reserved -= it->second.reserved_bps;
  flows_.erase(it);
}

void RateAllocator::set_priority(net::FlowId id, double priority) {
  flows_.at(id).priority = std::max(priority, 0.0);
}

double RateAllocator::priority(net::FlowId id) const {
  return flows_.at(id).priority;
}

double RateAllocator::flow_rate(net::FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double RateAllocator::path_rate(net::NodeId src, net::NodeId dst) const {
  return path_rate(net_.path(src, dst));
}

double RateAllocator::path_rate(const std::vector<net::LinkId>& path) const {
  double r = std::numeric_limits<double>::infinity();
  for (const net::LinkId l : path)
    r = std::min(r, links_[l.index()].rate);
  return std::isfinite(r) ? r : 0.0;
}

void RateAllocator::refresh_flow_rates() {
  for (auto& [id, fs] : flows_) {
    double base = std::numeric_limits<double>::infinity();
    for (const net::LinkId l : fs.path)
      base = std::min(base, links_[l.index()].rate);
    if (!std::isfinite(base)) base = 0.0;
    double r = fs.reserved_bps + fs.priority * base;
    if (fs.r_other_send) r = std::min(r, fs.r_other_send());
    if (fs.r_other_recv) r = std::min(r, fs.r_other_recv());
    fs.rate = std::max(r, params_.min_rate_bps);
  }
}

void RateAllocator::tick() {
  const double tau = params_.tau;
  const sim::Time now = net_.sim().now();
  ++control_stats_.ticks;
  control_stats_.flow_updates += flows_.size();
  control_stats_.link_updates += links_.size();

  // Pass 1: effective capacity per link from the switch counters Q(t)
  // (and L(t) for the simplified metric).
  for (std::size_t l = 0; l < links_.size(); ++l) {
    auto& st = links_[l];
    net::Link& link = net_.link(net::LinkId::from_index(l));
    const double q_bits = static_cast<double>(link.queue_bytes()) * 8.0;
    st.gamma = effective_capacity(link.capacity_bps(), q_bits, tau,
                                  params_.alpha, params_.beta);
    st.rate_sum = 0;
    st.share_sum = 0;
  }

  // Pass 2: per-flow end-to-end allocation from the *previous* interval's
  // link rates (this is the information the top-down RA pass delivered to
  // each RM), accumulated into each crossed link's S.
  //
  // The accumulation order is the unordered_map's iteration order, which
  // for a fixed libstdc++ and insertion sequence is stable (all committed
  // baselines depend on it) but is not portable across standard-library
  // implementations. Switching to sorted-id order would change every
  // committed figure by float-rounding noise, so it is deferred — see
  // ROADMAP "Open items".
  // scda-lint: allow(unordered-iter)
  for (auto& [id, fs] : flows_) {
    double base = std::numeric_limits<double>::infinity();
    for (const net::LinkId l : fs.path)
      base = std::min(base, links_[l.index()].rate);
    if (!std::isfinite(base)) base = 0.0;

    double r = fs.reserved_bps + fs.priority * base;
    if (fs.r_other_send) r = std::min(r, fs.r_other_send());
    if (fs.r_other_recv) r = std::min(r, fs.r_other_recv());
    fs.rate = std::max(r, params_.min_rate_bps);

    const double share = std::max(0.0, fs.rate - fs.reserved_bps);
    for (const net::LinkId l : fs.path) {
      links_[l.index()].rate_sum += fs.rate;
      links_[l.index()].share_sum += share;
    }
  }

  // Pass 3: new per-link rates (eq. 2 or eq. 5) over the shareable capacity
  // (capacity minus explicit reservations, section IV-C), plus SLA checks
  // against the full effective capacity (section IV-A).
  for (std::size_t l = 0; l < links_.size(); ++l) {
    auto& st = links_[l];
    net::Link& link = net_.link(net::LinkId::from_index(l));
    const double shareable =
        std::max(st.gamma - st.reserved, params_.min_rate_bps);

    if (params_.metric == RateMetricKind::kExact) {
      st.nhat = effective_flows(st.share_sum, st.rate);
      st.rate = exact_rate(shareable, st.share_sum, st.rate,
                           params_.min_rate_bps);
    } else {
      const double l_bits =
          static_cast<double>(link.take_interval_arrived_bytes()) * 8.0;
      st.nhat = effective_flows(l_bits / tau, st.rate);
      st.rate =
          simplified_rate(shareable, l_bits, tau, st.rate,
                          params_.min_rate_bps);
    }

    if (sla_violated(st.rate_sum, st.gamma)) {
      ++st.sla_violations;
      ++total_sla_violations_;
      if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
        tr->instant(now, "control", "sla_violation", obs::kTrackControl,
                    {{"link", static_cast<double>(l)},
                     {"rate_sum_bps", st.rate_sum},
                     {"gamma_bps", st.gamma}});
      }
      if (on_sla_)
        on_sla_(net::LinkId::from_index(l), st.rate_sum, st.gamma, now);
    }
  }

  if (obs::TraceRecorder* tr = obs::tracer_of(net_.sim())) {
    tr->instant(now, "control", "ra_round", obs::kTrackControl,
                {{"flows", static_cast<double>(flows_.size())},
                 {"links", static_cast<double>(links_.size())},
                 {"violations", static_cast<double>(total_sla_violations_)}});
  }
}

}  // namespace scda::core
