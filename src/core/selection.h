// Server selection strategies (paper section VII).
//
// Selection consumes the R-hat metrics maintained by the RM/RA hierarchy:
//   interactive       -> argmax min(R-hat_d, R-hat_u)            (VII-A)
//   semi-interactive  -> write: argmax R-hat_d; replica: argmax R-hat_u (VII-B)
//   passive           -> write: argmax R-hat_d; replica: a dormant-eligible
//                        server with R-hat_u > R_scale            (VII-C)
//   power-aware       -> rank by R-hat / P(t) instead of R-hat    (VII-D)
//
// While passive content exists and the dormant policy is enabled, active
// content avoids servers whose uplink allocation exceeds R_scale, keeping
// the least-loaded (dormant) servers free for passive data.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/block_server.h"
#include "core/hierarchy.h"
#include "core/params.h"
#include "core/sla.h"
#include "sim/rng.h"
#include "transport/flow.h"

namespace scda::core {

/// How the cloud picks block servers for requests.
enum class PlacementPolicy : std::uint8_t {
  kScda,    ///< rate-metric based (the paper's contribution)
  kRandom,  ///< uniform random (the RandTCP baseline / VL2 / Hedera)
};

class ServerSelector {
 public:
  ServerSelector(Hierarchy& hierarchy, std::vector<BlockServer>& servers,
                 const ScdaParams& params, sim::Rng& rng,
                 PlacementPolicy policy)
      : hier_(hierarchy),
        servers_(servers),
        params_(params),
        rng_(rng),
        policy_(policy) {}

  /// Optional admission filter (e.g. exclude servers behind links with
  /// recent SLA violations, or without disk space).
  void set_admit_filter(std::function<bool(std::size_t)> f) {
    admit_ = std::move(f);
  }

  /// Server for the initial write of `content_class` content (steps 3-4 of
  /// Fig. 3); -1 if no server qualifies.
  [[nodiscard]] std::int32_t select_write_target(
      transport::ContentClass content_class);

  /// Replication target after a write (section VIII-B), excluding the
  /// server already holding the data.
  [[nodiscard]] std::int32_t select_replica_target(
      transport::ContentClass content_class, std::int32_t exclude);

  /// k-way variant: excludes every server already holding a copy (plus the
  /// repair source). Used by chained replication and background repair
  /// (docs/scenarios.md).
  [[nodiscard]] std::int32_t select_replica_target(
      transport::ContentClass content_class,
      const std::vector<std::int32_t>& exclude);

  /// Replica to read from: the one with the best uplink value (Fig. 5,
  /// step 3).
  [[nodiscard]] std::int32_t select_read_replica(
      const std::vector<std::int32_t>& replicas);

  [[nodiscard]] PlacementPolicy policy() const noexcept { return policy_; }

 private:
  [[nodiscard]] bool admit(std::size_t s) const {
    return !admit_ || admit_(s);
  }
  /// Active content must not use dormant-reserved servers while the dormant
  /// policy is on (R_scale > 0).
  [[nodiscard]] bool admit_active(std::size_t s) const;
  [[nodiscard]] std::int32_t random_server(std::int32_t exclude = -1);
  [[nodiscard]] std::int32_t random_server(
      const std::vector<std::int32_t>& exclude);
  [[nodiscard]] BestServer pick(SelectionMetric m,
                                const std::function<bool(std::size_t)>& ok)
      const;

  Hierarchy& hier_;
  std::vector<BlockServer>& servers_;
  const ScdaParams& params_;
  sim::Rng& rng_;
  PlacementPolicy policy_;
  std::function<bool(std::size_t)> admit_;
};

}  // namespace scda::core
