#include "core/churn.h"

#include "core/cloud.h"

namespace scda::core {

ChurnInjector::ChurnInjector(Cloud& cloud, const sim::ChurnConfig& cfg)
    : cloud_(cloud) {
  const net::TopologyConfig& topo = cloud_.topology().config();
  sim::ChurnShape shape;
  shape.n_servers = topo.n_servers();
  shape.n_links = topo.n_tors();
  shape.servers_per_pod = topo.tors_per_agg * topo.servers_per_tor;
  shape.n_nns = static_cast<std::int32_t>(cloud_.nns_instance_count());

  schedule_ = sim::build_failure_schedule(cfg, shape, cloud_.sim().seed());
  stats_.scheduled = schedule_.size();
  server_down_count_.assign(static_cast<std::size_t>(shape.n_servers), 0);
  link_down_count_.assign(static_cast<std::size_t>(shape.n_links), 0);
  nns_down_count_.assign(static_cast<std::size_t>(shape.n_nns), 0);

  for (const sim::FailureEvent& ev : schedule_)
    cloud_.sim().post_at(ev.at, [this, ev] { apply(ev); });
}

void ChurnInjector::apply(const sim::FailureEvent& ev) {
  const auto idx = static_cast<std::size_t>(ev.index);
  switch (ev.kind) {
    case sim::FailureKind::kServerDown:
      if (++server_down_count_.at(idx) == 1) {
        ++stats_.server_downs;
        cloud_.fail_server(idx);
      }
      break;
    case sim::FailureKind::kServerUp:
      if (--server_down_count_.at(idx) == 0) {
        ++stats_.server_ups;
        cloud_.recover_server(idx);
      }
      break;
    case sim::FailureKind::kLinkDown:
      if (++link_down_count_.at(idx) == 1) {
        ++stats_.link_downs;
        net::ThreeTierTree& topo = cloud_.topology();
        cloud_.set_link_up(topo.tor_uplink(idx), false, /*propagate=*/false);
        cloud_.set_link_up(topo.tor_downlink(idx), false, /*propagate=*/true);
      }
      break;
    case sim::FailureKind::kLinkUp:
      if (--link_down_count_.at(idx) == 0) {
        ++stats_.link_ups;
        net::ThreeTierTree& topo = cloud_.topology();
        cloud_.set_link_up(topo.tor_uplink(idx), true, /*propagate=*/false);
        cloud_.set_link_up(topo.tor_downlink(idx), true, /*propagate=*/true);
      }
      break;
    case sim::FailureKind::kNnsDown:
      if (++nns_down_count_.at(idx) == 1) {
        ++stats_.nns_downs;
        cloud_.fail_nns(idx);
      }
      break;
    case sim::FailureKind::kNnsUp:
      if (--nns_down_count_.at(idx) == 0) {
        ++stats_.nns_ups;
        cloud_.recover_nns(idx);
      }
      break;
  }
}

}  // namespace scda::core
