#include "net/topology.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "util/units.h"

namespace scda::net {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() {
    cfg_.n_agg = 2;
    cfg_.tors_per_agg = 3;
    cfg_.servers_per_tor = 4;
    cfg_.n_clients = 5;
    cfg_.base_bps = util::mbps(500);
    cfg_.k_factor = 3.0;
  }
  sim::Simulator sim_;
  TopologyConfig cfg_;
};

TEST_F(TopologyTest, ShapeCounts) {
  ThreeTierTree t(sim_, cfg_);
  EXPECT_EQ(t.aggs().size(), 2u);
  EXPECT_EQ(t.tors().size(), 6u);
  EXPECT_EQ(t.servers().size(), 24u);
  EXPECT_EQ(t.clients().size(), 5u);
  EXPECT_EQ(cfg_.n_servers(), 24);
  EXPECT_EQ(cfg_.n_tors(), 6);
  // nodes: gw + core + 2 agg + 6 tor + 24 srv + 5 clients = 39
  EXPECT_EQ(t.net().node_count(), 39u);
  // duplex links: core-gw + 2 agg + 6 tor + 24 srv + 5 clients = 38 -> 76
  EXPECT_EQ(t.net().link_count(), 76u);
}

TEST_F(TopologyTest, CapacitiesFollowFigure6) {
  ThreeTierTree t(sim_, cfg_);
  const double x = cfg_.base_bps.bps();
  EXPECT_DOUBLE_EQ(t.net().link(t.server_uplink(0)).capacity_bps(), x);
  EXPECT_DOUBLE_EQ(t.net().link(t.tor_uplink(0)).capacity_bps(), x);
  EXPECT_DOUBLE_EQ(t.net().link(t.agg_uplink(0)).capacity_bps(), 3.0 * x);
  EXPECT_DOUBLE_EQ(t.net().link(t.core_uplink()).capacity_bps(), 6.0 * x);
}

TEST_F(TopologyTest, LevelLinksHaveCorrectEndpoints) {
  ThreeTierTree t(sim_, cfg_);
  // server 5 is under ToR 1 (4 servers per ToR)
  EXPECT_EQ(t.net().link(t.server_uplink(5)).from(), t.servers()[5]);
  EXPECT_EQ(t.net().link(t.server_uplink(5)).to(), t.tors()[1]);
  EXPECT_EQ(t.net().link(t.server_downlink(5)).from(), t.tors()[1]);
  EXPECT_EQ(t.net().link(t.server_downlink(5)).to(), t.servers()[5]);
  // ToR 4 is under agg 1 (3 ToRs per agg)
  EXPECT_EQ(t.net().link(t.tor_uplink(4)).from(), t.tors()[4]);
  EXPECT_EQ(t.net().link(t.tor_uplink(4)).to(), t.aggs()[1]);
  EXPECT_EQ(t.net().link(t.agg_uplink(1)).to(), t.core());
  EXPECT_EQ(t.net().link(t.core_uplink()).to(), t.gateway());
}

TEST_F(TopologyTest, ParentMapping) {
  ThreeTierTree t(sim_, cfg_);
  EXPECT_EQ(t.tor_of_server(0), 0u);
  EXPECT_EQ(t.tor_of_server(4), 1u);
  EXPECT_EQ(t.tor_of_server(23), 5u);
  EXPECT_EQ(t.agg_of_tor(0), 0u);
  EXPECT_EQ(t.agg_of_tor(3), 1u);
}

TEST_F(TopologyTest, ClientLinksUseWanDelay) {
  ThreeTierTree t(sim_, cfg_);
  const LinkId l = t.net().link_between(t.clients()[0], t.gateway());
  ASSERT_NE(l, kInvalidLink);
  EXPECT_DOUBLE_EQ(t.net().link(l).prop_delay_s(), cfg_.wan_delay_s);
  EXPECT_DOUBLE_EQ(t.net().link(t.server_uplink(0)).prop_delay_s(),
                   cfg_.dc_delay_s);
}

TEST_F(TopologyTest, ClientToServerPathTraversesAllTiers) {
  ThreeTierTree t(sim_, cfg_);
  const auto path = t.net().path(t.clients()[0], t.servers()[0]);
  // client->gw->core->agg->tor->server = 5 links
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(t.net().link(path[1]).from(), t.gateway());
  EXPECT_EQ(t.net().link(path[4]).to(), t.servers()[0]);
}

TEST_F(TopologyTest, IntraRackPathStaysLocal) {
  ThreeTierTree t(sim_, cfg_);
  const auto path = t.net().path(t.servers()[0], t.servers()[1]);
  EXPECT_EQ(path.size(), 2u);  // server->tor->server
}

TEST_F(TopologyTest, CrossRackPathGoesThroughAgg) {
  ThreeTierTree t(sim_, cfg_);
  // servers 0 and 4 are in different racks under the same agg
  const auto path = t.net().path(t.servers()[0], t.servers()[4]);
  EXPECT_EQ(path.size(), 4u);  // srv->tor->agg->tor->srv
}

TEST_F(TopologyTest, CrossAggPathGoesThroughCore) {
  ThreeTierTree t(sim_, cfg_);
  // server 0 under agg 0; server 23 under agg 1
  const auto path = t.net().path(t.servers()[0], t.servers()[23]);
  EXPECT_EQ(path.size(), 6u);  // srv->tor->agg->core->agg->tor->srv
}

TEST_F(TopologyTest, DefaultConfigMatchesPaperScale) {
  TopologyConfig def;
  EXPECT_EQ(def.n_servers(), 160);  // ~163 leaves in paper figure 6
  EXPECT_DOUBLE_EQ(def.base_bps.bps(), 500e6);
  EXPECT_DOUBLE_EQ(def.core_gw_mult, 6.0);
  EXPECT_DOUBLE_EQ(def.wan_delay_s, 50e-3);
  EXPECT_DOUBLE_EQ(def.dc_delay_s, 10e-3);
}

}  // namespace
}  // namespace scda::net
