#include "core/control_traffic.h"

#include <gtest/gtest.h>

#include "core/rate_allocator.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"

namespace scda::core {
namespace {

class ControlTrafficTest : public ::testing::Test {
 protected:
  ControlTrafficTest() {
    cfg_.n_agg = 2;
    cfg_.tors_per_agg = 2;
    cfg_.servers_per_tor = 2;  // 8 servers, 4 tors, 2 aggs
    cfg_.n_clients = 2;
    cfg_.base_bps = sim::BitRate{100e6};
    topo_ = std::make_unique<net::ThreeTierTree>(sim_, cfg_);
    alloc_ = std::make_unique<RateAllocator>(topo_->net(), params_);
  }

  sim::Simulator sim_;
  net::TopologyConfig cfg_;
  ScdaParams params_;
  std::unique_ptr<net::ThreeTierTree> topo_;
  std::unique_ptr<RateAllocator> alloc_;
};

TEST_F(ControlTrafficTest, OneReportPerReporterPerInterval) {
  ControlTraffic ctrl(*topo_, *alloc_, /*interval=*/0.05);
  sim_.run_until(scda::sim::secs(0.26));  // 5 ticks
  ctrl.stop();
  // Reporters per tick: 8 RMs + 4 ToR RAs + 2 Agg RAs = 14.
  EXPECT_EQ(ctrl.reports_sent(), 5u * 14u);
  EXPECT_EQ(ctrl.reports_suppressed(), 0u);
}

TEST_F(ControlTrafficTest, ReportsAreDelivered) {
  ControlTraffic ctrl(*topo_, *alloc_, 0.05);
  sim_.run_until(scda::sim::secs(1.0));
  ctrl.stop();
  sim_.run_until(scda::sim::secs(1.5));  // drain in-flight reports
  EXPECT_EQ(ctrl.reports_received(), ctrl.reports_sent());
  EXPECT_EQ(ctrl.bytes_on_wire(),
            ctrl.reports_sent() * ControlTraffic::kReportBytes);
}

TEST_F(ControlTrafficTest, DeltaEncodingSuppressesStableReports) {
  // Rates never change on an idle network: after the first report per RM,
  // every subsequent one is suppressed (RA forwarding still flows).
  ControlTraffic ctrl(*topo_, *alloc_, 0.05, /*delta_threshold=*/0.01);
  sim_.run_until(scda::sim::secs(0.51));  // 10 ticks
  ctrl.stop();
  // RM reports: 8 on the first tick, then suppressed; RA reports: 6/tick.
  EXPECT_EQ(ctrl.reports_suppressed(), 9u * 8u);
  EXPECT_EQ(ctrl.reports_sent(), 8u + 10u * 6u);
}

TEST_F(ControlTrafficTest, RateChangeTriggersNewReport) {
  ControlTraffic ctrl(*topo_, *alloc_, 0.05, 0.01);
  sim_.run_until(scda::sim::secs(0.26));
  const auto before = ctrl.reports_sent();
  // A new flow halves the advertised rate on server 0's uplink.
  alloc_->register_flow(scda::net::FlowId{1}, topo_->servers()[0],
                        topo_->tors()[0]);
  alloc_->register_flow(scda::net::FlowId{2}, topo_->servers()[0],
                        topo_->tors()[0]);
  for (int i = 0; i < 3; ++i) alloc_->tick();
  sim_.run_until(scda::sim::secs(0.31));  // one more control tick
  ctrl.stop();
  EXPECT_GT(ctrl.reports_sent(), before + 6u);  // RA reports + RM 0's
}

TEST_F(ControlTrafficTest, DataFlowsCompleteAlongsideControlTraffic) {
  ControlTraffic ctrl(*topo_, *alloc_, 0.01);  // aggressive reporting
  transport::TransportManager tm(topo_->net());
  int done = 0;
  tm.set_completion_callback([&](const transport::FlowRecord&) { ++done; });
  tm.start_scda_flow(topo_->clients()[0], topo_->servers()[0], 2'000'000,
                     sim::BitRate{50e6}, sim::BitRate{50e6});
  sim_.run_until(scda::sim::secs(10.0));
  ctrl.stop();
  EXPECT_EQ(done, 1);
  EXPECT_GT(ctrl.reports_received(), 0u);
}

TEST_F(ControlTrafficTest, OverheadIsTinyVersusLinkCapacity) {
  ControlTraffic ctrl(*topo_, *alloc_, 0.05);
  sim_.run_until(scda::sim::secs(10.0));
  ctrl.stop();
  // 14 reporters * 64 B / 50 ms ~ 18 KB/s of control traffic for the whole
  // 8-server cloud — far below one link's 100 Mbps.
  const double bps =
      static_cast<double>(ctrl.bytes_on_wire()) * 8.0 / 10.0;
  EXPECT_LT(bps, 0.01 * cfg_.base_bps.bps());
}

}  // namespace
}  // namespace scda::core
