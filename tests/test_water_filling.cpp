// Unit tests for the public water-filling reference allocator, plus
// allocator-vs-reference comparisons for reservation scenarios.
#include "core/water_filling.h"

#include <gtest/gtest.h>

#include "core/rate_allocator.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace scda::core {
namespace {

std::vector<net::LinkId> links(std::initializer_list<int> ids) {
  std::vector<net::LinkId> v;
  for (const int i : ids) v.emplace_back(i);
  return v;
}

std::map<net::LinkId, sim::BitRate> caps_of(
    std::initializer_list<std::pair<int, double>> caps) {
  std::map<net::LinkId, sim::BitRate> m;
  for (const auto& [l, c] : caps) m.emplace(net::LinkId{l}, sim::BitRate{c});
  return m;
}


TEST(WaterFill, SingleLinkEqualSplit) {
  std::vector<ReferenceFlow> flows(4);
  for (auto& f : flows) f.path = links({0});
  water_fill(flows, caps_of({{0, 100.0}}));
  for (const auto& f : flows) EXPECT_DOUBLE_EQ(f.rate.bps(), 25.0);
}

TEST(WaterFill, WeightedSplit) {
  std::vector<ReferenceFlow> flows(2);
  flows[0].path = links({0});
  flows[0].weight = 3.0;
  flows[1].path = links({0});
  water_fill(flows, caps_of({{0, 100.0}}));
  EXPECT_DOUBLE_EQ(flows[0].rate.bps(), 75.0);
  EXPECT_DOUBLE_EQ(flows[1].rate.bps(), 25.0);
}

TEST(WaterFill, ParkingLot) {
  // Long flow over links 0 and 1; one short flow on each.
  std::vector<ReferenceFlow> flows(3);
  flows[0].path = links({0, 1});
  flows[1].path = links({0});
  flows[2].path = links({1});
  water_fill(flows, caps_of({{0, 100.0}, {1, 60.0}}));
  // Link 1 is tighter: level 30 freezes flows 0 and 2; flow 1 then gets
  // the rest of link 0.
  EXPECT_DOUBLE_EQ(flows[0].rate.bps(), 30.0);
  EXPECT_DOUBLE_EQ(flows[2].rate.bps(), 30.0);
  EXPECT_DOUBLE_EQ(flows[1].rate.bps(), 70.0);
}

TEST(WaterFill, ReservationGrantedOffTheTop) {
  std::vector<ReferenceFlow> flows(2);
  flows[0].path = links({0});
  flows[0].reserved = sim::BitRate{60.0};
  flows[1].path = links({0});
  water_fill(flows, caps_of({{0, 100.0}}));
  // 40 shareable, split equally: 20 each; reserved flow adds its 60.
  EXPECT_DOUBLE_EQ(flows[0].rate.bps(), 80.0);
  EXPECT_DOUBLE_EQ(flows[1].rate.bps(), 20.0);
}

TEST(WaterFill, OversubscribedReservationsFloorShares) {
  std::vector<ReferenceFlow> flows(2);
  flows[0].path = links({0});
  flows[0].reserved = sim::BitRate{80.0};
  flows[1].path = links({0});
  flows[1].reserved = sim::BitRate{50.0};
  water_fill(flows, caps_of({{0, 100.0}}));
  // Residual is negative: the shared level is 0; each keeps only M_j.
  EXPECT_DOUBLE_EQ(flows[0].rate.bps(), 80.0);
  EXPECT_DOUBLE_EQ(flows[1].rate.bps(), 50.0);
}

TEST(WaterFill, PureVariantMatchesInPlaceAndLeavesInputAlone) {
  std::vector<ReferenceFlow> flows(3);
  flows[0].path = links({0, 1});
  flows[1].path = links({0});
  flows[2].path = links({1});
  const auto rates =
      water_fill_rates(flows, caps_of({{0, 100.0}, {1, 60.0}}));
  for (const auto& f : flows) EXPECT_DOUBLE_EQ(f.rate.bps(), -1.0);
  water_fill(flows, caps_of({{0, 100.0}, {1, 60.0}}));
  ASSERT_EQ(rates.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_DOUBLE_EQ(rates[i].bps(), flows[i].rate.bps());
}

TEST(WaterFill, MissingCapacityThrows) {
  std::vector<ReferenceFlow> flows(1);
  flows[0].path = links({7});
  std::map<net::LinkId, sim::BitRate> caps{{net::LinkId{0},
                                            sim::BitRate{10.0}}};
  EXPECT_THROW(water_fill(flows, caps), std::invalid_argument);
}

TEST(WaterFill, EmptyPathUnconstrained) {
  std::vector<ReferenceFlow> flows(1);
  flows[0].reserved = sim::BitRate{5.0};
  water_fill(flows, {});
  EXPECT_DOUBLE_EQ(flows[0].rate.bps(), 5.0);
}

// --- allocator vs reference with reservations ------------------------------

TEST(WaterFillVsAllocator, ReservationScenarioMatches) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto m = net.add_node(net::NodeRole::kOther, "m");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  net.add_duplex(a, m, sim::BitRate{100e6}, 0.001, 1 << 20);
  net.add_duplex(m, b, sim::BitRate{60e6}, 0.001, 1 << 20);
  net.build_routes();

  ScdaParams params;
  params.alpha = 1.0;
  params.min_rate = sim::BitRate{1.0};
  RateAllocator alloc(net, params);
  alloc.register_flow(scda::net::FlowId{0}, a, b, 1.0,
                      /*reserved=*/sim::BitRate{30e6});
  alloc.register_flow(scda::net::FlowId{1}, a, b, 2.0);
  alloc.register_flow(scda::net::FlowId{2}, a, m, 1.0);
  for (int i = 0; i < 400; ++i) alloc.tick();

  std::vector<ReferenceFlow> ref(3);
  ref[0].path = net.path(a, b);
  ref[0].reserved = sim::BitRate{30e6};
  ref[1].path = net.path(a, b);
  ref[1].weight = 2.0;
  ref[2].path = net.path(a, m);
  std::map<net::LinkId, sim::BitRate> caps;
  for (const auto& f : ref)
    for (const auto l : f.path) caps[l] = net.link(l).capacity();
  water_fill(ref, caps);

  for (net::FlowId f{0}; f < net::FlowId{3}; ++f) {
    // same-unit Quantity ratio: dimensionless closeness check
    EXPECT_NEAR(alloc.flow_rate(f) / ref[f.index()].rate,
                1.0, 0.03)
        << "flow " << f.value();
  }
}

}  // namespace
}  // namespace scda::core
