// Churn subsystem tests: the deterministic failure schedule, the injector's
// nested-outage semantics, and the failure-window edge cases from
// docs/scenarios.md — a flow landing on a server that died inside the
// selection-to-start control window, a trunk failing mid-flow in fluid
// mode (must re-rate, not strand the completion), and repair completions
// coinciding with an RA epoch boundary.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/churn.h"
#include "core/cloud.h"
#include "sim/failure_schedule.h"
#include "util/units.h"

namespace scda::core {
namespace {

using transport::FlowRecord;

// ---------------------------------------------------------------------------
// failure schedule (pure function)
// ---------------------------------------------------------------------------

sim::ChurnConfig stochastic_cfg() {
  sim::ChurnConfig cfg;
  cfg.enabled = true;
  cfg.server_mtbf_s = 20.0;
  cfg.server_mttr_s = 4.0;
  cfg.link_mtbf_s = 50.0;
  cfg.link_mttr_s = 2.0;
  cfg.horizon_s = 120.0;
  return cfg;
}

TEST(FailureSchedule, DeterministicSortedAndSeedSensitive) {
  const sim::ChurnConfig cfg = stochastic_cfg();
  const sim::ChurnShape shape{16, 4, 8};
  const auto a = sim::build_failure_schedule(cfg, shape, 42);
  const auto b = sim::build_failure_schedule(cfg, shape, 42);
  const auto c = sim::build_failure_schedule(cfg, shape, 43);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].index, b[i].index);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const sim::FailureEvent& x,
                                const sim::FailureEvent& y) {
                               return x.at < y.at;
                             }));
  // A different seed shifts at least one transition time.
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].at != c[i].at || a[i].index != c[i].index;
  EXPECT_TRUE(differs);
}

TEST(FailureSchedule, PerEntityRenewalAlternatesDownUp) {
  const sim::ChurnConfig cfg = stochastic_cfg();
  const auto events = sim::build_failure_schedule(cfg, {8, 0, 8}, 7);
  for (std::int32_t s = 0; s < 8; ++s) {
    bool down = false;
    for (const sim::FailureEvent& ev : events) {
      if (ev.index != s) continue;
      if (ev.kind == sim::FailureKind::kServerDown) {
        EXPECT_FALSE(down) << "double down for server " << s;
        down = true;
      } else {
        EXPECT_TRUE(down) << "up before down for server " << s;
        down = false;
      }
      EXPECT_LT(ev.at.seconds(), cfg.horizon_s);
    }
  }
}

TEST(FailureSchedule, EntityStreamsAreIndependent) {
  // Adding link churn must not perturb the server timelines (per-entity
  // RNG streams): the server events of both schedules are identical.
  sim::ChurnConfig no_links = stochastic_cfg();
  no_links.link_mtbf_s = 0.0;
  const auto with = sim::build_failure_schedule(stochastic_cfg(), {8, 4, 8}, 9);
  const auto without = sim::build_failure_schedule(no_links, {8, 4, 8}, 9);
  std::vector<sim::FailureEvent> sa, sb;
  for (const auto& e : with)
    if (e.kind == sim::FailureKind::kServerDown ||
        e.kind == sim::FailureKind::kServerUp)
      sa.push_back(e);
  for (const auto& e : without)
    if (e.kind == sim::FailureKind::kServerDown ||
        e.kind == sim::FailureKind::kServerUp)
      sb.push_back(e);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].at, sb[i].at);
    EXPECT_EQ(sa[i].index, sb[i].index);
  }
}

TEST(FailureSchedule, ScriptedPodExpandsToItsServers) {
  sim::ChurnConfig cfg;
  cfg.enabled = true;  // stochastic processes off: only the script
  cfg.scripted.push_back({30.0, sim::ScriptedFailure::Target::kPod, 1, 20.0});
  const auto events = sim::build_failure_schedule(cfg, {32, 4, 8}, 1);
  // Pod 1 = servers 8..15, one down+up pair each.
  ASSERT_EQ(events.size(), 16u);
  for (const auto& ev : events) {
    EXPECT_GE(ev.index, 8);
    EXPECT_LT(ev.index, 16);
    if (ev.kind == sim::FailureKind::kServerDown)
      EXPECT_DOUBLE_EQ(ev.at.seconds(), 30.0);
    else
      EXPECT_DOUBLE_EQ(ev.at.seconds(), 50.0);
  }
}

TEST(FailureSchedule, PermanentAndOutOfRangeScripts) {
  sim::ChurnConfig cfg;
  cfg.enabled = true;
  cfg.scripted.push_back(
      {10.0, sim::ScriptedFailure::Target::kServer, 3, 0.0});  // permanent
  cfg.scripted.push_back(
      {10.0, sim::ScriptedFailure::Target::kServer, 99, 5.0});  // out of range
  const auto events = sim::build_failure_schedule(cfg, {8, 0, 8}, 1);
  ASSERT_EQ(events.size(), 1u);  // no up event, invalid index dropped
  EXPECT_EQ(events[0].kind, sim::FailureKind::kServerDown);
  EXPECT_EQ(events[0].index, 3);
}

// ---------------------------------------------------------------------------
// cloud-level churn
// ---------------------------------------------------------------------------

class ChurnTest : public ::testing::Test {
 protected:
  void build(CloudConfig cfg, std::uint64_t seed = 5) {
    cfg.topology.n_agg = 2;
    cfg.topology.tors_per_agg = 2;
    cfg.topology.servers_per_tor = 4;
    cfg.topology.n_clients = 8;
    cfg.topology.base_bps = util::mbps(200);
    sim_ = std::make_unique<sim::Simulator>(seed);
    cloud_ = std::make_unique<Cloud>(*sim_, cfg);
    cloud_->add_completion_callback(
        [this](const FlowRecord& rec, const CloudOp& op) {
          done_.push_back({rec, op});
        });
  }

  [[nodiscard]] std::size_t completed(CloudOp::Kind kind) const {
    std::size_t n = 0;
    for (const auto& [rec, op] : done_)
      if (op.kind == kind) ++n;
    return n;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cloud> cloud_;
  std::vector<std::pair<FlowRecord, CloudOp>> done_;
};

TEST_F(ChurnTest, InjectorAppliesScriptedOutageAndRecovers) {
  CloudConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.scripted.push_back(
      {1.0, sim::ScriptedFailure::Target::kServer, 2, 2.0});
  build(cfg);
  ASSERT_NE(cloud_->churn(), nullptr);
  EXPECT_EQ(cloud_->churn()->schedule().size(), 2u);

  sim_->run_until(sim::secs(2.0));
  EXPECT_TRUE(cloud_->servers()[2].failed());
  sim_->run_until(sim::secs(4.0));
  EXPECT_FALSE(cloud_->servers()[2].failed());
  EXPECT_EQ(cloud_->churn()->stats().server_downs, 1u);
  EXPECT_EQ(cloud_->churn()->stats().server_ups, 1u);
}

TEST_F(ChurnTest, NestedOutagesNeverDoubleFailOrEarlyRecover) {
  CloudConfig cfg;
  cfg.churn.enabled = true;
  // Overlapping scripted outages of the same server: [1, 5) and [2, 3).
  cfg.churn.scripted.push_back(
      {1.0, sim::ScriptedFailure::Target::kServer, 0, 4.0});
  cfg.churn.scripted.push_back(
      {2.0, sim::ScriptedFailure::Target::kServer, 0, 1.0});
  build(cfg);

  sim_->run_until(sim::secs(3.5));
  // Inner outage ended at t=3 but the outer one holds the server down.
  EXPECT_TRUE(cloud_->servers()[0].failed());
  sim_->run_until(sim::secs(6.0));
  EXPECT_FALSE(cloud_->servers()[0].failed());
  EXPECT_EQ(cloud_->churn()->stats().server_downs, 1u);
  EXPECT_EQ(cloud_->churn()->stats().server_ups, 1u);
}

TEST_F(ChurnTest, FlowArrivingOnDownServerRegistersNoReplica) {
  // The NNS picks a write target, then the target dies inside the
  // selection-to-start control window. The data flow still runs (packet
  // arrival at a dead block server), but nothing may be registered: no
  // replica entry, and the client sees a failed write.
  build(CloudConfig{});
  cloud_->write(0, 1, util::megabytes(1));

  // Step until the decision happened (the target stored the block) but the
  // data flow has not started yet, then kill the chosen server.
  std::int32_t target = -1;
  for (int step = 1; step <= 500 && target < 0; ++step) {
    sim_->run_until(sim::secs(step * 1e-3));
    for (std::size_t s = 0; s < cloud_->servers().size(); ++s)
      if (cloud_->servers()[s].has(1)) target = static_cast<std::int32_t>(s);
  }
  ASSERT_GE(target, 0);
  ASSERT_EQ(cloud_->transports().records().size(), 0u)
      << "data flow started before the control window closed";
  cloud_->fail_server(static_cast<std::size_t>(target), false);

  sim_->run_until(sim::secs(20.0));
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->replicas.empty());
  EXPECT_EQ(cloud_->failed_writes(), 1u);
  EXPECT_EQ(completed(CloudOp::Kind::kReplication), 0u);
  // The failed write released the content id: a retry succeeds.
  EXPECT_TRUE(cloud_->write(1, 1, util::megabytes(1)));
  sim_->run_until(sim::secs(40.0));
  meta = cloud_->fes().dispatch_by_content(1).find(1);
  EXPECT_FALSE(meta->replicas.empty());
}

TEST_F(ChurnTest, ServerFailureMidReadFailsOverToSurvivor) {
  build(CloudConfig{});
  cloud_->write(0, 1, util::megabytes(4));
  sim_->run_until(sim::secs(10.0));
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  ASSERT_EQ(meta->replicas.size(), 2u);

  cloud_->read(1, 1);
  sim_->run_until(sim::secs(10.2));  // read flow in flight
  ASSERT_EQ(completed(CloudOp::Kind::kRead), 0u);
  // Find the read's source server and kill it mid-flow.
  std::int32_t source = -1;
  for (const auto r : meta->replicas)
    if (cloud_->servers()[static_cast<std::size_t>(r)].active_flows() > 0)
      source = r;
  ASSERT_GE(source, 0);
  cloud_->fail_server(static_cast<std::size_t>(source), false);

  sim_->run_until(sim::secs(30.0));
  EXPECT_EQ(completed(CloudOp::Kind::kRead), 1u);
  EXPECT_EQ(cloud_->failed_reads(), 0u);
  EXPECT_GE(cloud_->churn_stats().failovers, 1u);
  EXPECT_GE(cloud_->churn_stats().aborted_flows, 1u);
}

TEST_F(ChurnTest, LinkFailureMidFluidFlowParksThenCompletes) {
  CloudConfig cfg;
  cfg.fluid.enabled = true;
  cfg.fluid.threshold_bytes = 1000;  // everything runs on the fluid engine
  cfg.enable_replication = false;
  build(cfg);
  cloud_->write(0, 1, util::megabytes(8));
  sim_->run_until(sim::secs(0.3));  // control window over, flow in flight
  ASSERT_EQ(cloud_->transports().records().size(), 1u);
  ASSERT_EQ(completed(CloudOp::Kind::kWrite), 0u);

  // Cut the target server's ToR trunk (both directions, like the injector).
  const auto* meta_none = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta_none, nullptr);  // metadata exists; replicas still empty
  std::int32_t target = -1;
  for (std::size_t s = 0; s < cloud_->servers().size(); ++s)
    if (cloud_->servers()[s].has(1)) target = static_cast<std::int32_t>(s);
  ASSERT_GE(target, 0);
  const auto tor = static_cast<std::size_t>(
      target / cloud_->topology().config().servers_per_tor);
  cloud_->set_link_up(cloud_->topology().tor_uplink(tor), false,
                      /*propagate=*/false);
  cloud_->set_link_up(cloud_->topology().tor_downlink(tor), false,
                      /*propagate=*/true);

  // The fluid flow must park (no completion while the trunk is down) —
  // a stranded stale completion event would fire in here.
  sim_->run_until(sim::secs(5.0));
  EXPECT_EQ(completed(CloudOp::Kind::kWrite), 0u);

  cloud_->set_link_up(cloud_->topology().tor_uplink(tor), true,
                      /*propagate=*/false);
  cloud_->set_link_up(cloud_->topology().tor_downlink(tor), true,
                      /*propagate=*/true);
  sim_->run_until(sim::secs(30.0));
  EXPECT_EQ(completed(CloudOp::Kind::kWrite), 1u);
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->replicas.size(), 1u);
}

TEST_F(ChurnTest, RepairCompletingOnEpochBoundaryKeepsAccounting) {
  // Zero control latencies pin the whole repair pipeline to RA epoch
  // boundaries: drain_repair_queue() runs inside control_tick(), the NNS
  // decision and the flow start are immediate, and the fluid engine
  // computes the completion analytically — so repair starts land exactly
  // on k*tau and completions land on (or within 1 ns of) an epoch edge.
  // The accounting must survive the coincidence: slots freed by the
  // completion are visible to the drain pass of the same instant or the
  // next one, never double-started, never leaked.
  CloudConfig cfg;
  cfg.fluid.enabled = true;
  cfg.fluid.threshold_bytes = 1000;
  cfg.enable_replication = true;
  cfg.params.replicas = 2;
  cfg.params.max_concurrent_repairs = 1;  // force queueing behind the slot
  cfg.params.ctrl_dc_latency_s = 0.0;
  cfg.params.ctrl_wan_latency_s = 0.0;
  cfg.params.nns_service_time_s = 0.0;
  build(cfg);

  cloud_->write(0, 1, util::megabytes(2));
  cloud_->write(1, 2, util::megabytes(2));
  sim_->run_until(sim::secs(10.0));
  ASSERT_EQ(completed(CloudOp::Kind::kReplication), 2u);

  // Fail one server holding copies: its contents queue for repair and
  // drain one at a time through the single slot.
  const auto* m1 = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(m1, nullptr);
  cloud_->fail_server(static_cast<std::size_t>(m1->replicas.front()), true);
  sim_->run_until(sim::secs(40.0));

  EXPECT_EQ(cloud_->repairs_in_flight(), 0);
  EXPECT_EQ(cloud_->repair_queue_depth(), 0u);
  const ChurnStats& ch = cloud_->churn_stats();
  EXPECT_GE(ch.repair_flows_completed, 1u);
  EXPECT_EQ(ch.repair_flows_started,
            ch.repair_flows_completed + ch.repair_retries);
  // Replication factor restored everywhere on live servers.
  for (const ContentId id : {ContentId{1}, ContentId{2}}) {
    const auto* meta = cloud_->fes().dispatch_by_content(id).find(id);
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->replicas.size(), 2u);
    for (const auto r : meta->replicas)
      EXPECT_FALSE(cloud_->servers()[static_cast<std::size_t>(r)].failed());
  }
}

TEST_F(ChurnTest, UnderReplicatedClockIntegratesOutageWindow) {
  CloudConfig cfg;
  cfg.enable_replication = true;
  cfg.params.replicas = 2;
  build(cfg);
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(sim::secs(10.0));
  ASSERT_EQ(completed(CloudOp::Kind::kReplication), 1u);
  EXPECT_DOUBLE_EQ(cloud_->under_replicated_seconds(), 0.0);

  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  cloud_->fail_server(static_cast<std::size_t>(meta->replicas.front()), true);
  EXPECT_EQ(cloud_->under_replicated_objects(), 1);
  sim_->run_until(sim::secs(40.0));  // repair restores k=2
  meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_EQ(meta->replicas.size(), 2u);
  EXPECT_EQ(cloud_->under_replicated_objects(), 0);
  const double under = cloud_->under_replicated_seconds();
  EXPECT_GT(under, 0.0);
  EXPECT_LT(under, 30.0);
  // The clock is frozen once the object is healthy again.
  sim_->run_until(sim::secs(50.0));
  EXPECT_DOUBLE_EQ(cloud_->under_replicated_seconds(), under);
}

TEST_F(ChurnTest, StochasticChurnRunIsDeterministic) {
  // Same seed, same config -> byte-identical churn accounting; this is the
  // unit-level form of the replay_sweep_churn_matches_artifact check.
  auto run = [](std::uint64_t seed) {
    CloudConfig cfg;
    cfg.enable_replication = true;
    cfg.churn.enabled = true;
    cfg.churn.server_mtbf_s = 10.0;
    cfg.churn.server_mttr_s = 2.0;
    cfg.churn.horizon_s = 30.0;
    cfg.topology.n_agg = 2;
    cfg.topology.tors_per_agg = 2;
    cfg.topology.servers_per_tor = 4;
    cfg.topology.n_clients = 8;
    cfg.topology.base_bps = util::mbps(200);
    sim::Simulator sim(seed);
    Cloud cloud(sim, cfg);
    for (int i = 0; i < 10; ++i)
      cloud.write(static_cast<std::size_t>(i % 8), i + 1,
                  util::kilobytes(256));
    sim.run_until(sim::secs(30.0));
    const ChurnStats& ch = cloud.churn_stats();
    return std::tuple{ch.aborted_flows, ch.repair_flows_completed,
                      ch.failovers, cloud.under_replicated_seconds(),
                      cloud.churn()->stats().server_downs};
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(std::get<4>(run(11)), 0u);
}

}  // namespace
}  // namespace scda::core
