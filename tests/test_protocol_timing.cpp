// Message-sequence timing tests for the request-serving protocols of paper
// figures 3-5: data flows must start only after the control exchanges
// (UCL -> FES -> NNS -> RA -> BS -> UCL) have run their latency course.
#include <gtest/gtest.h>

#include "core/cloud.h"
#include "util/units.h"

namespace scda::core {
namespace {

class ProtocolTimingTest : public ::testing::Test {
 protected:
  ProtocolTimingTest() {
    cfg_.topology.n_agg = 2;
    cfg_.topology.tors_per_agg = 2;
    cfg_.topology.servers_per_tor = 2;
    cfg_.topology.n_clients = 4;
    cfg_.topology.base_bps = util::mbps(500);
    cfg_.enable_replication = false;
    cfg_.params.ctrl_wan_latency_s = 50e-3;
    cfg_.params.ctrl_dc_latency_s = 1e-3;
    cfg_.params.nns_service_time_s = 0.5e-3;
  }

  void build() {
    sim_ = std::make_unique<sim::Simulator>(3);
    cloud_ = std::make_unique<Cloud>(*sim_, cfg_);
  }

  /// Start time of the first flow (set when the sender's record is made).
  [[nodiscard]] double first_flow_start() const {
    return cloud_->transports().records().empty()
               ? -1.0
               : cloud_->transports().records().front()->start_time.seconds();
  }

  CloudConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cloud> cloud_;
};

TEST_F(ProtocolTimingTest, ExternalWriteFollowsFigure3Sequence) {
  build();
  // Steps 1-2: UCL->FES (WAN 50 ms) + FES->NNS (DC 1 ms) + NNS service
  // (0.5 ms). Steps 3-9: NNS<->RA (2 x 1 ms) + BS->UCL greeting (50 ms).
  // Expected flow start: 50 + 1 + 0.5 + 2 + 50 = 103.5 ms.
  cloud_->write(0, 1, util::kilobytes(100));
  sim_->run_until(scda::sim::secs(1.0));
  EXPECT_NEAR(first_flow_start(), 0.1035, 1e-9);
}

TEST_F(ProtocolTimingTest, ExternalReadFollowsFigure5Sequence) {
  build();
  cloud_->write(0, 1, util::kilobytes(100));
  sim_->run_until(scda::sim::secs(5.0));
  const auto flows_before = cloud_->transports().records().size();
  const double t0 = sim_->now().seconds();
  cloud_->read(1, 1);
  sim_->run_until(scda::sim::secs(t0 + 1.0));
  ASSERT_GT(cloud_->transports().records().size(), flows_before);
  const auto& rec = *cloud_->transports().records()[flows_before];
  // Steps 1-2: WAN + DC + NNS service; step 3: NNS->BS (DC).
  // Expected: 50 + 1 + 0.5 + 1 = 52.5 ms after the read request.
  EXPECT_NEAR((rec.start_time - scda::sim::secs(t0)).seconds(), 0.0525, 1e-9);
  // The read flow runs server -> client.
  EXPECT_EQ(cloud_->topology().net().node(rec.src).role(),
            net::NodeRole::kServer);
  EXPECT_EQ(cloud_->topology().net().node(rec.dst).role(),
            net::NodeRole::kClient);
}

TEST_F(ProtocolTimingTest, ReplicationStartsOnlyAfterPrimaryWrite) {
  cfg_.enable_replication = true;
  build();
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(scda::sim::secs(10.0));
  const auto& recs = cloud_->transports().records();
  ASSERT_EQ(recs.size(), 2u);  // upload + replication
  const auto& upload = *recs[0];
  const auto& repl = *recs[1];
  EXPECT_TRUE(upload.finished());
  // Fig. 4: replication begins after the upload completes plus the
  // NNS/RA/BS control exchanges.
  EXPECT_GT(repl.start_time, upload.finish_time);
  // Both endpoints of the replication flow are block servers.
  EXPECT_EQ(cloud_->topology().net().node(repl.src).role(),
            net::NodeRole::kServer);
  EXPECT_EQ(cloud_->topology().net().node(repl.dst).role(),
            net::NodeRole::kServer);
}

TEST_F(ProtocolTimingTest, NnsQueueDelaysSecondConcurrentRequest) {
  cfg_.params.n_name_nodes = 1;
  cfg_.params.nns_service_time_s = 5e-3;
  build();
  cloud_->write(0, 1, util::kilobytes(10));
  cloud_->write(1, 2, util::kilobytes(10));
  sim_->run_until(scda::sim::secs(1.0));
  const auto& recs = cloud_->transports().records();
  ASSERT_EQ(recs.size(), 2u);
  // Same arrival instant, one NNS: the second flow starts one service
  // time after the first.
  EXPECT_NEAR((recs[1]->start_time - recs[0]->start_time).seconds(), 5e-3,
              1e-9);
}

TEST_F(ProtocolTimingTest, ControlLatencyConfigurable) {
  cfg_.params.ctrl_wan_latency_s = 10e-3;
  cfg_.params.ctrl_dc_latency_s = 0.2e-3;
  build();
  cloud_->write(0, 1, util::kilobytes(100));
  sim_->run_until(scda::sim::secs(1.0));
  // 10 + 0.2 + 0.5 + 0.4 + 10 = 21.1 ms
  EXPECT_NEAR(first_flow_start(), 0.0211, 1e-9);
}

}  // namespace
}  // namespace scda::core
