#include "transport/sender.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/receiver.h"
#include "transport/transport_manager.h"

namespace scda::transport {
namespace {

/// Sender tests run against a real two-node network with a live receiver,
/// via the TransportManager, so window, ack and retransmission behaviour is
/// exercised end to end.
class SenderTest : public ::testing::Test {
 protected:
  static constexpr sim::BitRate kCap{10e6};  // 10 Mbps
  static constexpr double kDelay = 0.005;  // 5 ms per direction

  SenderTest() { build(1 << 20); }

  void build(std::int64_t queue_limit) {
    sim_ = std::make_unique<sim::Simulator>(1);
    net_ = std::make_unique<net::Network>(*sim_);
    a_ = net_->add_node(net::NodeRole::kClient, "a");
    b_ = net_->add_node(net::NodeRole::kServer, "b");
    net_->add_duplex(a_, b_, kCap, kDelay, queue_limit);
    net_->build_routes();
    tm_ = std::make_unique<TransportManager>(*net_);
    tm_->set_completion_callback(
        [this](const FlowRecord& r) { completed_.push_back(r.id); });
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<TransportManager> tm_;
  net::NodeId a_{}, b_{};
  std::vector<net::FlowId> completed_;
};

TEST_F(SenderTest, TcpFlowCompletes) {
  const auto id = tm_->start_tcp_flow(a_, b_, 100000);
  sim_->run_until(scda::sim::secs(30.0));
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(completed_[0], id);
  EXPECT_TRUE(tm_->record(id).finished());
  auto* s = tm_->sender(id);
  EXPECT_TRUE(s->fully_acked());
}

TEST_F(SenderTest, TcpSlowStartDoublesWindowEachRtt) {
  const auto id = tm_->start_tcp_flow(a_, b_, 10'000'000);
  auto* s = tm_->sender(id);
  const double w0 = s->cwnd_bytes();
  sim_->run_until(scda::sim::secs(0.012));  // one RTT (10 ms) in
  const double w1 = s->cwnd_bytes();
  EXPECT_NEAR(w1, 2 * w0, static_cast<double>(net::kDefaultMtuBytes));
}

TEST_F(SenderTest, TcpMeasuresRtt) {
  const auto id = tm_->start_tcp_flow(a_, b_, 50000);
  sim_->run_until(scda::sim::secs(5.0));
  auto* s = tm_->sender(id);
  // base RTT 10 ms plus serialization
  EXPECT_GT(s->srtt(), 0.009);
  EXPECT_LT(s->srtt(), 0.1);
}

TEST_F(SenderTest, TcpRecoversFromHeavyLoss) {
  build(5 * 1500);  // tiny buffer forces drops
  const auto id = tm_->start_tcp_flow(a_, b_, 500'000);
  sim_->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(completed_.size(), 1u);
  auto* s = tm_->sender(id);
  EXPECT_GT(s->stats().retransmits, 0u);
}

TEST_F(SenderTest, TcpThroughputApproachesCapacityOnCleanLink) {
  const std::int64_t size = 2'000'000;
  tm_->start_tcp_flow(a_, b_, size);
  sim_->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(completed_.size(), 1u);
  const auto& rec = tm_->record(net::FlowId{0});
  const double rate = static_cast<double>(size) * 8 / rec.fct();
  EXPECT_GT(rate, 0.5 * kCap.bps());  // at least half capacity incl. slow start
}

TEST_F(SenderTest, ScdaFlowCompletesAtAllocatedRate) {
  const std::int64_t size = 1'000'000;
  auto h = tm_->start_scda_flow(a_, b_, size, sim::BitRate{8e6},
                              sim::BitRate{8e6});
  sim_->run_until(scda::sim::secs(30.0));
  ASSERT_EQ(completed_.size(), 1u);
  const double fct = tm_->record(h.id).fct();
  // 1 MB at 8 Mbps ~ 1.0 s + RTT overheads; pacing keeps it close
  EXPECT_NEAR(fct, 1.05, 0.15);
}

TEST_F(SenderTest, ScdaPacingSpacesPackets) {
  // At 1 Mbps a 1500 B packet takes 12 ms; with pacing the link queue
  // should never hold more than a couple of packets.
  auto h = tm_->start_scda_flow(a_, b_, 200'000, sim::BitRate{1e6},
                              sim::BitRate{1e6});
  (void)h;
  double max_queue = 0;
  const net::LinkId l = net_->link_between(a_, b_);
  for (int i = 1; i < 200; ++i) {
    sim_->run_until(scda::sim::secs(i * 0.01));
    max_queue = std::max(
        max_queue, static_cast<double>(net_->link(l).queue_bytes()));
  }
  EXPECT_LE(max_queue, 3 * 1500.0);
}

TEST_F(SenderTest, ScdaRateIncreaseSpeedsUpTransfer) {
  auto h = tm_->start_scda_flow(a_, b_, 2'000'000, sim::BitRate{1e6},
                              sim::BitRate{1e7});
  sim_->post_at(scda::sim::secs(0.5), [h] { h.sender->set_rate(sim::BitRate{9e6}); });
  sim_->run_until(scda::sim::secs(30.0));
  ASSERT_EQ(completed_.size(), 1u);
  const double fct = tm_->record(h.id).fct();
  // all at 1 Mbps would be ~16 s; the boost must cut it under 3.5 s
  EXPECT_LT(fct, 3.5);
}

TEST_F(SenderTest, ScdaRateFloorPreventsStall) {
  auto h = tm_->start_scda_flow(a_, b_, 30000, sim::BitRate{1e6},
                              sim::BitRate{1e6});
  h.sender->set_rate(sim::BitRate{});  // floored internally, must not deadlock
  sim_->run_until(scda::sim::secs(60.0));
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(SenderTest, ScdaRecoversFromBurstLossViaGoBackN) {
  build(4 * 1500);
  // Initial rate far above capacity: the first window overruns the queue.
  auto h = tm_->start_scda_flow(a_, b_, 400'000, sim::BitRate{50e6},
                              sim::BitRate{50e6});
  sim_->post_at(scda::sim::secs(0.3), [h] { h.sender->set_rate(sim::BitRate{8e6}); });
  sim_->run_until(scda::sim::secs(30.0));
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_GT(h.sender->stats().retransmits, 0u);
}

TEST_F(SenderTest, ReceiverWindowLimitsSender) {
  // rcvw of one segment on a 10 ms RTT path caps the rate at roughly
  // 1500 B per RTT ~ 150 KB/s, so 300 KB needs ~2 s.
  auto h = tm_->start_scda_flow(a_, b_, 300'000, sim::BitRate{10e6},
                              sim::BitRate{10e6});
  h.receiver->set_rcvw_bytes(1500);
  sim_->run_until(scda::sim::secs(1.0));
  EXPECT_FALSE(h.sender->fully_acked());
  EXPECT_EQ(h.sender->peer_rcvw_bytes(), 1500);
  sim_->run_until(scda::sim::secs(10.0));
  EXPECT_TRUE(h.sender->fully_acked());
}

TEST_F(SenderTest, SenderStatsCountDataPackets) {
  tm_->start_tcp_flow(a_, b_, 14600);  // exactly 10 MSS
  sim_->run_until(scda::sim::secs(10.0));
  auto* s = tm_->sender(scda::net::FlowId{0});
  EXPECT_GE(s->stats().data_packets_sent, 10u);
}

TEST_F(SenderTest, ZeroByteFlowEdgeCase) {
  // A 1-byte flow must complete (empty flows are not created by the cloud).
  tm_->start_tcp_flow(a_, b_, 1);
  sim_->run_until(scda::sim::secs(5.0));
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(SenderTest, ManyParallelFlowsAllComplete) {
  for (int i = 0; i < 20; ++i) tm_->start_tcp_flow(a_, b_, 50'000);
  sim_->run_until(scda::sim::secs(120.0));
  EXPECT_EQ(completed_.size(), 20u);
}

TEST_F(SenderTest, BaseRttMatchesTopology) {
  EXPECT_NEAR(tm_->base_rtt(a_, b_), 2 * kDelay, 1e-12);
}

}  // namespace
}  // namespace scda::transport
