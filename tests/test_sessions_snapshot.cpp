// Tests for interactive sessions in the workload driver and the Cloud
// snapshot API.
#include <gtest/gtest.h>

#include "core/cloud.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace scda {
namespace {

core::CloudConfig small_cloud() {
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 2;
  cfg.topology.n_clients = 4;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  return cfg;
}

TEST(InteractiveSessions, SessionsIssueAppendsAndReads) {
  sim::Simulator sim(5);
  core::Cloud cloud(sim, small_cloud());
  std::uint64_t appends = 0, reads = 0;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord&, const core::CloudOp& op) {
        if (op.kind == core::CloudOp::Kind::kAppend) ++appends;
        if (op.kind == core::CloudOp::Kind::kRead) ++reads;
      });

  workload::DriverConfig dc;
  dc.end_time_s = 10.0;
  dc.read_fraction = 0.0;
  dc.interactive_fraction = 1.0;  // every write starts a session
  dc.session_ops = 4;
  dc.session_gap_s = 1.0;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 1.0;
  pc.cap_bytes = 500 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(60.0));

  EXPECT_GT(driver.sessions_started(), 0u);
  EXPECT_EQ(driver.session_ops_issued(),
            driver.sessions_started() * 4u);
  EXPECT_GT(appends, 0u);
  EXPECT_GT(reads, 0u);
  // Sessions alternate evenly: half appends, half reads.
  EXPECT_EQ(appends, reads);
}

TEST(InteractiveSessions, SessionContentLearnsInteractiveClass) {
  sim::Simulator sim(7);
  core::Cloud cloud(sim, small_cloud());
  workload::DriverConfig dc;
  dc.end_time_s = 3.0;
  dc.read_fraction = 0.0;
  dc.interactive_fraction = 1.0;
  dc.session_ops = 8;
  dc.session_gap_s = 2.0;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 0.5;
  pc.cap_bytes = 200 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(40.0));
  ASSERT_GT(driver.sessions_started(), 0u);
  // Content 1 was session-driven: the classifier must see HWHR.
  EXPECT_EQ(cloud.classifier().classify(1, sim.now()),
            transport::ContentClass::kInteractive);
}

TEST(Snapshot, ReflectsCloudState) {
  sim::Simulator sim(11);
  core::Cloud cloud(sim, small_cloud());
  cloud.write(0, 1, util::megabytes(1));
  cloud.write(1, 2, util::megabytes(1));
  sim.run_until(scda::sim::secs(20.0));
  cloud.read(2, 1);
  sim.run_until(scda::sim::secs(40.0));
  cloud.fail_server(0, false);

  const core::CloudSnapshot s = cloud.snapshot();
  EXPECT_DOUBLE_EQ(s.time_s, 40.0);
  EXPECT_EQ(s.contents_stored, 2u);
  EXPECT_EQ(s.flows_completed, 3u);  // 2 writes + 1 read (no replication)
  EXPECT_EQ(s.failed_servers, 1u);
  EXPECT_EQ(s.failed_reads, 0u);
  EXPECT_GT(s.total_energy_j, 0.0);
  EXPECT_GT(s.control_messages, 0u);
  EXPECT_GE(s.mean_nns_delay_s, 0.0);
}

TEST(Snapshot, PrintProducesOutput) {
  sim::Simulator sim(13);
  core::Cloud cloud(sim, small_cloud());
  sim.run_until(scda::sim::secs(1.0));
  char buf[2048];
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  cloud.snapshot().print(f);
  std::fclose(f);
  const std::string out(buf);
  EXPECT_NE(out.find("cloud @ t=1.00s"), std::string::npos);
  EXPECT_NE(out.find("sla_violations="), std::string::npos);
}

}  // namespace
}  // namespace scda
