#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace scda::workload {
namespace {

using transport::ContentClass;

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    path_ = ::testing::TempDir() + "scda_trace_test.csv";
  }
  ~TraceTest() override { std::remove(path_.c_str()); }

  void write_file(const std::string& body) {
    std::ofstream out(path_);
    out << body;
  }

  std::string path_;
};

TEST_F(TraceTest, RoundTripPreservesRecords) {
  std::vector<TraceRecord> recs{
      {0.5, 1000, ContentClass::kSemiInteractive, false},
      {1.25, 5'000'000, ContentClass::kInteractive, false},
      {2.0, 400, ContentClass::kPassive, true},
  };
  write_trace(path_, recs);
  const auto got = read_trace(path_);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(got[i].time_s, recs[i].time_s);
    EXPECT_EQ(got[i].size_bytes, recs[i].size_bytes);
    EXPECT_EQ(got[i].content_class, recs[i].content_class);
    EXPECT_EQ(got[i].is_control, recs[i].is_control);
  }
}

TEST_F(TraceTest, CommentsAndBlankLinesSkipped) {
  write_file("# header\n\n1.0,100,s,\n# mid comment\n2.0,200,p,c\n");
  const auto got = read_trace(path_);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[1].is_control);
}

TEST_F(TraceTest, MalformedLineThrows) {
  write_file("1.0,100\n");
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, UnknownClassThrows) {
  write_file("1.0,100,x,\n");
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, NonMonotoneTimestampsThrow) {
  write_file("2.0,100,s,\n1.0,100,s,\n");
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, NonPositiveSizeThrows) {
  write_file("1.0,0,s,\n");
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, MissingFileThrows) {
  EXPECT_THROW(read_trace("/nonexistent/path.csv"), std::runtime_error);
}

TEST_F(TraceTest, SampleGeneratorProducesMonotoneTimes) {
  sim::Rng rng(1);
  ParetoPoissonWorkload gen;
  const auto recs = sample_generator(gen, rng, 500);
  ASSERT_EQ(recs.size(), 500u);
  for (std::size_t i = 1; i < recs.size(); ++i)
    EXPECT_GE(recs[i].time_s, recs[i - 1].time_s);
}

TEST_F(TraceTest, TraceWorkloadReplaysGaps) {
  std::vector<TraceRecord> recs{
      {1.0, 100, ContentClass::kSemiInteractive, false},
      {1.5, 200, ContentClass::kPassive, false},
      {4.0, 300, ContentClass::kInteractive, false},
  };
  TraceWorkload wl(recs);
  sim::Rng rng(1);
  auto r1 = wl.next(rng);
  EXPECT_DOUBLE_EQ(r1.inter_arrival_s, 1.0);
  EXPECT_EQ(r1.size_bytes, 100);
  auto r2 = wl.next(rng);
  EXPECT_DOUBLE_EQ(r2.inter_arrival_s, 0.5);
  auto r3 = wl.next(rng);
  EXPECT_DOUBLE_EQ(r3.inter_arrival_s, 2.5);
  EXPECT_EQ(r3.content_class, ContentClass::kInteractive);
  EXPECT_EQ(wl.remaining(), 0u);
  // Exhausted: effectively-infinite gap.
  EXPECT_GT(wl.next(rng).inter_arrival_s, 1e100);
}

TEST_F(TraceTest, RecordedWorkloadReplaysIdentically) {
  sim::Rng rng(7);
  VideoWorkload gen;
  const auto recs = sample_generator(gen, rng, 200);
  write_trace(path_, recs);
  auto replay = TraceWorkload::from_file(path_);
  sim::Rng unused(1);
  double t = 0;
  for (const auto& expected : recs) {
    const FlowRequest got = replay->next(unused);
    t += got.inter_arrival_s;
    EXPECT_NEAR(t, expected.time_s, 1e-6);
    EXPECT_EQ(got.size_bytes, expected.size_bytes);
    EXPECT_EQ(got.is_control, expected.is_control);
  }
}

}  // namespace
}  // namespace scda::workload
