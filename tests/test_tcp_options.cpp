// Tests for the TCP baseline tuning knobs: delayed ACKs (RFC 1122) and the
// initial congestion window (RFC 6928).
#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/receiver.h"
#include "transport/transport_manager.h"

namespace scda::transport {
namespace {

/// Standalone two-node rig (also instantiable inside a test body).
struct Rig {
  Rig() {
    sim_ = std::make_unique<sim::Simulator>(1);
    net_ = std::make_unique<net::Network>(*sim_);
    a_ = net_->add_node(net::NodeRole::kClient, "a");
    b_ = net_->add_node(net::NodeRole::kServer, "b");
    auto [ab, ba] = net_->add_duplex(a_, b_, sim::BitRate{10e6}, 0.005, 1 << 20);
    ab_ = ab;
    ba_ = ba;
    net_->build_routes();
    tm_ = std::make_unique<TransportManager>(*net_);
    tm_->set_completion_callback(
        [this](const FlowRecord& r) { completed_.push_back(r.id); });
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<TransportManager> tm_;
  net::NodeId a_{}, b_{};
  net::LinkId ab_{}, ba_{};
  std::vector<net::FlowId> completed_;
};

class TcpOptionsTest : public ::testing::Test, protected Rig {};

TEST_F(TcpOptionsTest, LargerInitialWindowSpeedsShortFlows) {
  TransportManager::TcpConfig c;
  c.init_cwnd_segments = 10;
  tm_->set_tcp_config(c);
  tm_->start_tcp_flow(a_, b_, 14600);  // 10 MSS: one RTT with IW10
  sim_->run_until(scda::sim::secs(10.0));
  ASSERT_EQ(completed_.size(), 1u);
  const double fct_iw10 = tm_->record(net::FlowId{0}).fct();

  Rig fresh;
  TransportManager::TcpConfig c2;
  c2.init_cwnd_segments = 2;
  fresh.tm_->set_tcp_config(c2);
  fresh.tm_->start_tcp_flow(fresh.a_, fresh.b_, 14600);
  fresh.sim_->run_until(scda::sim::secs(10.0));
  ASSERT_EQ(fresh.completed_.size(), 1u);
  const double fct_iw2 = fresh.tm_->record(net::FlowId{0}).fct();

  EXPECT_LT(fct_iw10, fct_iw2);
}

TEST_F(TcpOptionsTest, DelayedAckHalvesAckTraffic) {
  TransportManager::TcpConfig c;
  c.delayed_ack = true;
  tm_->set_tcp_config(c);
  tm_->start_tcp_flow(a_, b_, 1'000'000);
  sim_->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(completed_.size(), 1u);
  const auto acks = net_->link(ba_).stats().tx_packets;
  const auto data = net_->link(ab_).stats().tx_packets;
  // Roughly one ACK per two data segments (plus timer/edge acks).
  EXPECT_LT(acks, data * 3 / 4);
  EXPECT_GT(acks, data / 3);
}

TEST_F(TcpOptionsTest, PerPacketAcksByDefault) {
  tm_->start_tcp_flow(a_, b_, 1'000'000);
  sim_->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(completed_.size(), 1u);
  const auto acks = net_->link(ba_).stats().tx_packets;
  const auto data = net_->link(ab_).stats().tx_packets;
  EXPECT_GE(acks + 5, data);  // one ack per data packet
}

TEST_F(TcpOptionsTest, DelayedAckFlowStillCompletesUnderLoss) {
  net_->link(ab_).set_error_model(0.02, &sim_->rng());
  TransportManager::TcpConfig c;
  c.delayed_ack = true;
  tm_->set_tcp_config(c);
  tm_->start_tcp_flow(a_, b_, 400'000);
  sim_->run_until(scda::sim::secs(300.0));
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(TcpOptionsTest, AckTimerFlushesTailSegment) {
  // An odd number of segments leaves one unacked; the 40 ms timer (or the
  // completion ack) must flush it so the sender never stalls.
  TransportManager::TcpConfig c;
  c.delayed_ack = true;
  tm_->set_tcp_config(c);
  tm_->start_tcp_flow(a_, b_, 1460 * 7);
  sim_->run_until(scda::sim::secs(10.0));
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(TcpOptionsTest, ScdaFlowsUnaffectedByTcpConfig) {
  TransportManager::TcpConfig c;
  c.delayed_ack = true;
  tm_->set_tcp_config(c);
  auto h = tm_->start_scda_flow(a_, b_, 500'000, sim::BitRate{8e6}, sim::BitRate{8e6});
  sim_->run_until(scda::sim::secs(10.0));
  EXPECT_EQ(completed_.size(), 1u);
  (void)h;
  // SCDA sink acks every packet: ack count tracks data count.
  const auto acks = net_->link(ba_).stats().tx_packets;
  const auto data = net_->link(ab_).stats().tx_packets;
  EXPECT_GE(acks + 5, data);
}

}  // namespace
}  // namespace scda::transport
