#include "transport/receiver.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/host.h"

namespace scda::transport {
namespace {

/// Two directly connected nodes; the receiver under test sits on node 1 and
/// its ACKs flow back to a capture sink on node 0.
class ReceiverTest : public ::testing::Test {
 protected:
  ReceiverTest() : net_(sim_) {
    a_ = net_.add_node(net::NodeRole::kClient, "a");
    b_ = net_.add_node(net::NodeRole::kServer, "b");
    net_.add_duplex(a_, b_, sim::BitRate{100e6}, 0.001, 1 << 20);
    net_.build_routes();

    rec_.id = net::FlowId{1};
    rec_.src = a_;
    rec_.dst = b_;
    rec_.size_bytes = 4000;
    rec_.start_time = sim::Time{};

    net_.node(a_).set_sink([this](net::Packet&& p) { acks_.push_back(p); });
  }

  Receiver make_receiver(std::int64_t rcvw = 1 << 20) {
    return Receiver(
        net_, rec_, [this](const FlowRecord&) { ++completions_; }, rcvw);
  }

  net::Packet data(std::int64_t seq, std::int32_t n) {
    return net::make_data(scda::net::FlowId{1}, a_, b_, seq, n, sim_.now());
  }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId a_{}, b_{};
  FlowRecord rec_;
  std::vector<net::Packet> acks_;
  int completions_ = 0;
};

TEST_F(ReceiverTest, InOrderDataAdvancesCumulativeAck) {
  auto r = make_receiver();
  r.handle(data(0, 1000));
  EXPECT_EQ(r.next_expected(), 1000);
  r.handle(data(1000, 1000));
  EXPECT_EQ(r.next_expected(), 2000);
}

TEST_F(ReceiverTest, AcksAreSentPerDataPacket) {
  auto r = make_receiver();
  r.handle(data(0, 1000));
  r.handle(data(1000, 1000));
  sim_.run();
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[0].type, net::PacketType::kAck);
  EXPECT_EQ(acks_[0].seq, 1000);
  EXPECT_EQ(acks_[1].seq, 2000);
}

TEST_F(ReceiverTest, OutOfOrderDataBuffersThenDrains) {
  auto r = make_receiver();
  r.handle(data(1000, 1000));  // hole at [0,1000)
  EXPECT_EQ(r.next_expected(), 0);
  r.handle(data(2000, 1000));
  EXPECT_EQ(r.next_expected(), 0);
  r.handle(data(0, 1000));  // fills the hole; cumulative point jumps
  EXPECT_EQ(r.next_expected(), 3000);
}

TEST_F(ReceiverTest, DuplicateDataDoesNotRegress) {
  auto r = make_receiver();
  r.handle(data(0, 1000));
  r.handle(data(0, 1000));
  EXPECT_EQ(r.next_expected(), 1000);
  sim_.run();
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[1].seq, 1000);  // duplicate ack, same cumulative point
}

TEST_F(ReceiverTest, OverlappingRangesMergeCorrectly) {
  auto r = make_receiver();
  r.handle(data(1000, 1000));
  r.handle(data(1500, 1000));  // overlaps previous
  r.handle(data(0, 1000));
  EXPECT_EQ(r.next_expected(), 2500);
}

TEST_F(ReceiverTest, CompletionFiresExactlyOnce) {
  auto r = make_receiver();
  r.handle(data(0, 2000));
  r.handle(data(2000, 2000));
  EXPECT_EQ(completions_, 1);
  EXPECT_TRUE(r.complete());
  r.handle(data(2000, 2000));  // stray duplicate after completion
  EXPECT_EQ(completions_, 1);
}

TEST_F(ReceiverTest, CompletionRecordsFinishTime) {
  auto r = make_receiver();
  sim_.post_at(scda::sim::secs(2.0), [&] {
    r.handle(data(0, 4000));
  });
  sim_.run();
  EXPECT_DOUBLE_EQ(rec_.finish_time.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(rec_.fct(), 2.0);
}

TEST_F(ReceiverTest, AckEchoesSenderTimestamp) {
  auto r = make_receiver();
  auto p = data(0, 1000);
  p.ts = sim::secs(1.75);
  r.handle(std::move(p));
  sim_.run();
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_DOUBLE_EQ(acks_[0].echo_ts.seconds(), 1.75);
}

TEST_F(ReceiverTest, AckCarriesAdvertisedWindow) {
  auto r = make_receiver(50000);
  r.handle(data(0, 1000));
  sim_.run();
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0].rcvw_bytes, 50000);
}

TEST_F(ReceiverTest, RcvwUpdateAppliesToNextAck) {
  auto r = make_receiver(50000);
  r.set_rcvw_bytes(90000);
  r.handle(data(0, 1000));
  sim_.run();
  EXPECT_EQ(acks_[0].rcvw_bytes, 90000);
}

TEST_F(ReceiverTest, RcvwFlooredAtOneSegment) {
  auto r = make_receiver(50000);
  r.set_rcvw_bytes(10);  // would stall the sender
  EXPECT_GE(r.rcvw_bytes(), net::kDefaultMtuBytes);
}

TEST_F(ReceiverTest, NonDataPacketsIgnored) {
  auto r = make_receiver();
  auto ack = net::make_ack(scda::net::FlowId{1}, a_, b_, 500,
                           scda::sim::secs(0.0), scda::sim::secs(0.0), 0);
  r.handle(std::move(ack));
  EXPECT_EQ(r.next_expected(), 0);
  EXPECT_TRUE(acks_.empty());
}

TEST_F(ReceiverTest, DeliveredCounterTracksNewBytesOnly) {
  std::int64_t counter = 0;
  auto r = make_receiver();
  r.set_delivered_counter(&counter);
  r.handle(data(0, 1000));
  EXPECT_EQ(counter, 1000);
  r.handle(data(0, 1000));  // duplicate adds nothing
  EXPECT_EQ(counter, 1000);
  r.handle(data(2000, 1000));  // out of order adds nothing yet
  EXPECT_EQ(counter, 1000);
  r.handle(data(1000, 1000));  // fills hole -> +2000
  EXPECT_EQ(counter, 3000);
}

}  // namespace
}  // namespace scda::transport
