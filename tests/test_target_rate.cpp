// Tests for the adaptive priority controller (paper section IV-A):
// fixed-rate targets and EDF-style deadlines via weight adjustment.
#include <gtest/gtest.h>

#include "core/cloud.h"
#include "core/rate_allocator.h"
#include "core/target_rate.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace scda::core {
namespace {

/// Controller unit tests against a bare allocator on one bottleneck link.
class TargetRateTest : public ::testing::Test {
 protected:
  TargetRateTest() : net_(sim_) {
    a_ = net_.add_node(net::NodeRole::kClient, "a");
    b_ = net_.add_node(net::NodeRole::kServer, "b");
    net_.add_duplex(a_, b_, sim::BitRate{100e6}, 0.001, 1 << 20);
    net_.build_routes();
    params_.alpha = 1.0;
    alloc_ = std::make_unique<RateAllocator>(net_, params_);
    ctrl_ = std::make_unique<TargetRateController>(*alloc_);
  }

  /// One allocator+controller round; flows never drain in these tests.
  void settle(int rounds, double dt = 0.05) {
    for (int i = 0; i < rounds; ++i) {
      alloc_->tick();
      now_ += dt;
      ctrl_->update(sim::secs(now_),
                    [](net::FlowId) { return std::int64_t{1 << 30}; });
    }
  }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId a_{}, b_{};
  ScdaParams params_;
  std::unique_ptr<RateAllocator> alloc_;
  std::unique_ptr<TargetRateController> ctrl_;
  double now_ = 0;
};

TEST_F(TargetRateTest, FlowReachesFixedTargetUnderContention) {
  // 4 competing unit flows; the target flow wants 60 Mbps of the 100.
  for (net::FlowId f{1}; f <= net::FlowId{4}; ++f) {
    alloc_->register_flow(f, a_, b_);
  }
  ctrl_->set_target_rate(scda::net::FlowId{1}, sim::BitRate{60e6});
  settle(200);
  EXPECT_NEAR(alloc_->flow_rate(scda::net::FlowId{1}).bps(), 60e6, 3e6);
  // The rest share the remainder equally.
  EXPECT_NEAR(alloc_->flow_rate(scda::net::FlowId{2}).bps(), 40e6 / 3, 2e6);
}

TEST_F(TargetRateTest, InfeasibleTargetIsClampedNotDivergent) {
  for (net::FlowId f{1}; f <= net::FlowId{3}; ++f) {
    alloc_->register_flow(f, a_, b_);
  }
  ctrl_->set_target_rate(scda::net::FlowId{1}, sim::BitRate{500e6});  // above link capacity
  settle(300);
  // Priority is clamped; the flow gets the max-weight share, others the
  // floor share — and the allocator stays finite and positive.
  EXPECT_GT(alloc_->flow_rate(scda::net::FlowId{1}).bps(), 50e6);
  EXPECT_GT(alloc_->flow_rate(scda::net::FlowId{2}).bps(), 0.0);
  EXPECT_LE(alloc_->priority(scda::net::FlowId{1}),
            TargetRateController::kMaxPriority);
}

TEST_F(TargetRateTest, ClearStopsAdjusting) {
  alloc_->register_flow(scda::net::FlowId{1}, a_, b_);
  alloc_->register_flow(scda::net::FlowId{2}, a_, b_);
  ctrl_->set_target_rate(scda::net::FlowId{1}, sim::BitRate{80e6});
  settle(100);
  EXPECT_GT(alloc_->flow_rate(scda::net::FlowId{1}).bps(), 70e6);
  ctrl_->clear(scda::net::FlowId{1});
  EXPECT_FALSE(ctrl_->has_target(scda::net::FlowId{1}));
  alloc_->set_priority(scda::net::FlowId{1}, 1.0);
  settle(100);
  EXPECT_NEAR(alloc_->flow_rate(scda::net::FlowId{1}).bps(), 50e6, 2e6);
}

TEST_F(TargetRateTest, UnregisteredFlowsAreDropped) {
  alloc_->register_flow(scda::net::FlowId{1}, a_, b_);
  ctrl_->set_target_rate(scda::net::FlowId{1}, sim::BitRate{50e6});
  EXPECT_EQ(ctrl_->active(), 1u);
  alloc_->unregister_flow(scda::net::FlowId{1});
  settle(1);
  EXPECT_EQ(ctrl_->active(), 0u);
}

TEST_F(TargetRateTest, DeadlineTargetGrowsAsTimeShrinks) {
  alloc_->register_flow(scda::net::FlowId{1}, a_, b_);
  for (net::FlowId f{2}; f <= net::FlowId{6}; ++f) {
    alloc_->register_flow(f, a_, b_);
  }
  // 100 Mbit to move in 2 seconds -> needs ~50 Mbps on average.
  const std::int64_t total = util::bytes_of_bits(100e6);
  ctrl_->set_deadline(scda::net::FlowId{1}, total, 2.0);
  // Remaining bytes stay fixed in this unit test (flow never drains), so
  // the implied target rate must rise as the deadline approaches.
  alloc_->tick();
  ctrl_->update(sim::secs(0.1), [&](net::FlowId) { return total; });
  alloc_->tick();
  const double p_early = alloc_->priority(scda::net::FlowId{1});
  ctrl_->update(sim::secs(1.8), [&](net::FlowId) { return total; });
  alloc_->tick();
  const double p_late = alloc_->priority(scda::net::FlowId{1});
  EXPECT_GT(p_late, p_early);
}

TEST(CloudDeadline, WriteWithDeadlineFinishesOnTime) {
  sim::Simulator sim(3);
  CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  Cloud cloud(sim, cfg);

  double deadline_fct = -1, besteffort_fct = -1;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const CloudOp& op) {
        if (op.content == 1) deadline_fct = rec.finish_time.seconds();
        if (op.content == 2) besteffort_fct = rec.finish_time.seconds();
      });

  // Heavy background from the same client; the deadline write must finish
  // by t=3 although fair sharing alone would miss it.
  for (int i = 0; i < 6; ++i)
    cloud.write(0, 10 + i, util::megabytes(20));
  cloud.write_with_deadline(0, 1, util::megabytes(20), /*deadline=*/3.0);
  cloud.write(0, 2, util::megabytes(20));
  sim.run_until(scda::sim::secs(60.0));

  ASSERT_GT(deadline_fct, 0);
  ASSERT_GT(besteffort_fct, 0);
  EXPECT_LE(deadline_fct, 3.3);  // small slack for control latency
  EXPECT_LT(deadline_fct, besteffort_fct);
}

}  // namespace
}  // namespace scda::core
