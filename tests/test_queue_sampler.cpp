#include "stats/queue_sampler.h"

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "transport/transport_manager.h"
#include "util/units.h"

namespace scda::stats {
namespace {

TEST(QueueSampler, MeasuresStandingQueue) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  auto [ab, ba] = net.add_duplex(a, b, sim::BitRate{1e6}, 0.001, 1 << 20);
  (void)ba;
  net.build_routes();

  QueueSampler sampler(sim, net, {ab}, 0.001);
  // Dump 100 packets instantly into a 1 Mbps link: a queue must build and
  // drain over ~1.2 s.
  for (int i = 0; i < 100; ++i)
    net.send(net::make_data(scda::net::FlowId{1}, a, b, i * 1460, 1460,
                            scda::sim::secs(0.0)));
  sim.run_until(scda::sim::secs(2.0));
  sampler.stop();
  EXPECT_GT(sampler.max_queue_bytes(), 50 * 1500.0);
  EXPECT_GT(sampler.mean_queue_bytes(), 0.0);
  EXPECT_GT(sampler.link_stats(0).count(), 100u);
}

TEST(QueueSampler, IdleLinkShowsZero) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  auto [ab, ba] = net.add_duplex(a, b, sim::BitRate{1e6}, 0.001, 1 << 20);
  (void)ba;
  net.build_routes();
  QueueSampler sampler(sim, net, {ab}, 0.01);
  sim.run_until(scda::sim::secs(1.0));
  EXPECT_DOUBLE_EQ(sampler.max_queue_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.mean_queue_bytes(), 0.0);
}

TEST(QueueSampler, ScdaKeepsQueuesNearEmptyUnderLoad) {
  // The paper's eq. 2 drains standing queues: with several concurrent
  // SCDA flows through one bottleneck the mean queue must stay far below
  // the drop-tail limit.
  sim::Simulator sim(3);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);

  // Monitor the client-0 uplink (shared bottleneck of 4 uploads).
  const net::LinkId up = cloud.topology().net().link_between(
      cloud.topology().clients()[0], cloud.topology().gateway());
  QueueSampler sampler(sim, cloud.topology().net(), {up}, 0.01);

  for (int i = 0; i < 4; ++i)
    cloud.write(0, i + 1, util::megabytes(20));
  sim.run_until(scda::sim::secs(8.0));
  sampler.stop();

  const double limit =
      static_cast<double>(cfg.topology.queue_limit_bytes);
  EXPECT_LT(sampler.mean_queue_bytes(), 0.15 * limit);
  EXPECT_LT(sampler.max_queue_bytes(), limit);
}

}  // namespace
}  // namespace scda::stats
