#include "core/server_resources.h"

#include <gtest/gtest.h>

#include "core/block_server.h"

namespace scda::core {
namespace {

TEST(ServerResources, ROtherIsMinOfCpuAndDisk) {
  ServerResources r(sim::BitRate{10e9}, sim::BitRate{6e9});
  EXPECT_DOUBLE_EQ(r.r_other().bps(), 6e9);
  r.set_disk(sim::BitRate{20e9});
  EXPECT_DOUBLE_EQ(r.r_other().bps(), 10e9);
}

TEST(ServerResources, BackgroundLoadReducesRate) {
  ServerResources r(sim::BitRate{10e9}, sim::BitRate{10e9});
  r.set_cpu_background(0.5);
  EXPECT_DOUBLE_EQ(r.r_other().bps(), 5e9);
  r.set_disk_background(0.9);
  EXPECT_DOUBLE_EQ(r.r_other().bps(), 1e9);
}

TEST(ServerResources, BackgroundClamped) {
  ServerResources r(sim::BitRate{10e9}, sim::BitRate{10e9});
  r.set_cpu_background(2.0);
  EXPECT_DOUBLE_EQ(r.r_other().bps(), 0.0);
  r.set_cpu_background(-1.0);
  EXPECT_DOUBLE_EQ(r.r_other().bps(), 10e9);
}

TEST(ServerResources, StorageReserveAndRelease) {
  ServerResources r;
  r.set_capacity_bytes(1000);
  EXPECT_TRUE(r.reserve_bytes(600));
  EXPECT_EQ(r.used_bytes(), 600);
  EXPECT_EQ(r.free_bytes(), 400);
  EXPECT_FALSE(r.reserve_bytes(500));  // would exceed
  EXPECT_EQ(r.used_bytes(), 600);      // unchanged on failure
  r.release_bytes(600);
  EXPECT_EQ(r.used_bytes(), 0);
  r.release_bytes(100);  // over-release clamps at zero
  EXPECT_EQ(r.used_bytes(), 0);
}

TEST(BlockServer, StoreTracksBlocksAndSpace) {
  BlockServer bs(0, net::NodeId{100});
  bs.resources().set_capacity_bytes(10000);
  EXPECT_TRUE(bs.store(1, 4000));
  EXPECT_TRUE(bs.store(2, 4000));
  EXPECT_FALSE(bs.store(3, 4000));  // out of space
  EXPECT_TRUE(bs.has(1));
  EXPECT_FALSE(bs.has(3));
  EXPECT_EQ(bs.stored_bytes(1), 4000);
  EXPECT_EQ(bs.block_count(), 2u);
}

TEST(BlockServer, RemoveFreesSpace) {
  BlockServer bs(0, net::NodeId{100});
  bs.resources().set_capacity_bytes(10000);
  ASSERT_TRUE(bs.store(1, 8000));
  bs.remove(1);
  EXPECT_FALSE(bs.has(1));
  EXPECT_TRUE(bs.store(2, 8000));
}

TEST(BlockServer, GrowingExistingBlockAccumulates) {
  BlockServer bs(0, net::NodeId{100});
  ASSERT_TRUE(bs.store(1, 100));
  ASSERT_TRUE(bs.store(1, 200));
  EXPECT_EQ(bs.stored_bytes(1), 300);
}

TEST(BlockServer, AccessCountingLearnsPopularity) {
  BlockServer bs(0, net::NodeId{100});
  EXPECT_EQ(bs.access_count(5), 0u);
  bs.record_access(5);
  bs.record_access(5);
  bs.record_access(6);
  EXPECT_EQ(bs.access_count(5), 2u);
  EXPECT_EQ(bs.access_count(6), 1u);
}

TEST(BlockServer, FlowActivityTracking) {
  BlockServer bs(0, net::NodeId{100});
  EXPECT_EQ(bs.active_flows(), 0);
  bs.flow_started();
  bs.flow_started();
  bs.flow_finished();
  EXPECT_EQ(bs.active_flows(), 1);
  bs.flow_finished();
  bs.flow_finished();  // underflow guard
  EXPECT_EQ(bs.active_flows(), 0);
}

TEST(BlockServer, DormancyDelegatesToPowerModel) {
  BlockServer bs(0, net::NodeId{100});
  EXPECT_FALSE(bs.dormant());
  bs.set_dormant(true);
  EXPECT_TRUE(bs.dormant());
  EXPECT_TRUE(bs.power().dormant());
}

}  // namespace
}  // namespace scda::core
