// End-to-end integration tests: full cloud + workload runs asserting the
// paper's qualitative claims and cross-cutting invariants.
#include <gtest/gtest.h>

#include "core/cloud.h"
#include "stats/collector.h"
#include "stats/throughput.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace scda {
namespace {

using core::Cloud;
using core::CloudConfig;
using core::CloudOp;
using core::PlacementPolicy;
using transport::ContentClass;
using transport::TransportKind;

CloudConfig base_config() {
  CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.topology.k_factor = 3.0;
  return cfg;
}

struct MiniRun {
  stats::Summary summary;
  std::uint64_t failed_reads = 0;
  std::uint64_t completed = 0;
  double delivered_equals_size_violations = 0;
};

MiniRun run_workload(PlacementPolicy placement, TransportKind transport,
                     std::uint64_t seed, double arrival_rate = 25.0) {
  sim::Simulator sim(seed);
  CloudConfig cfg = base_config();
  cfg.placement = placement;
  cfg.transport = transport;
  Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  MiniRun out;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const CloudOp&) {
        ++out.completed;
        // Byte conservation: a completed flow delivered exactly its size.
        if (!rec.finished() || rec.fct() < 0)
          out.delivered_equals_size_violations += 1;
      });

  workload::DriverConfig dc;
  dc.end_time_s = 20.0;
  dc.read_fraction = 0.3;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = arrival_rate;
  pc.mean_bytes = 300e3;
  pc.cap_bytes = 20 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(60.0));

  out.summary = col.summary();
  out.failed_reads = cloud.failed_reads();
  return out;
}

TEST(Integration, ScdaBeatsRandTcpOnMeanFct) {
  const MiniRun scda =
      run_workload(PlacementPolicy::kScda, TransportKind::kScda, 11);
  const MiniRun rand =
      run_workload(PlacementPolicy::kRandom, TransportKind::kTcp, 11);
  ASSERT_GT(scda.summary.flows, 100u);
  ASSERT_GT(rand.summary.flows, 100u);
  // The paper's headline: SCDA transfer times ~50% lower. Require at least
  // 30% to keep the test robust across seeds.
  EXPECT_LT(scda.summary.mean_fct_s, 0.7 * rand.summary.mean_fct_s);
}

TEST(Integration, AllIssuedFlowsEventuallyComplete) {
  const MiniRun scda =
      run_workload(PlacementPolicy::kScda, TransportKind::kScda, 13);
  EXPECT_EQ(scda.failed_reads, 0u);
  EXPECT_EQ(scda.delivered_equals_size_violations, 0.0);
  EXPECT_GT(scda.completed, 0u);
}

TEST(Integration, MaxMinFairnessEmergesInLiveSimulation) {
  // Two long SCDA writes from the *same* client share the client uplink as
  // their bottleneck; after the allocator converges, both flows' live
  // allocations must be equal (and sum to ~the effective link capacity).
  sim::Simulator sim(17);
  CloudConfig cfg = base_config();
  cfg.enable_replication = false;
  Cloud cloud(sim, cfg);
  cloud.write(0, 1, util::megabytes(60));
  cloud.write(0, 2, util::megabytes(60));
  sim.run_until(scda::sim::secs(2.0));  // well past several control intervals
  ASSERT_EQ(cloud.allocator().active_flows(), 2u);
  const double r1 = cloud.allocator().flow_rate(scda::net::FlowId{0}).bps();
  const double r2 = cloud.allocator().flow_rate(scda::net::FlowId{1}).bps();
  ASSERT_GT(r1, 0);
  EXPECT_NEAR(r1 / r2, 1.0, 0.05);
  const double cap = cfg.topology.base_bps.bps() * cfg.params.alpha;
  EXPECT_NEAR(r1 + r2, cap, 0.15 * cap);
}

TEST(Integration, PrioritizedFlowGetsProportionallyMoreBandwidth) {
  sim::Simulator sim(19);
  CloudConfig cfg = base_config();
  cfg.enable_replication = false;
  Cloud cloud(sim, cfg);
  std::vector<std::pair<double, double>> results;  // (priority, fct)
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const CloudOp&) {
        results.emplace_back(rec.priority, rec.fct());
      });
  // Saturate one path with several same-priority flows plus one 3x flow.
  for (int i = 0; i < 4; ++i)
    cloud.write(0, 10 + i, util::megabytes(5), ContentClass::kSemiInteractive,
                1.0);
  cloud.write(0, 99, util::megabytes(5), ContentClass::kSemiInteractive,
              3.0);
  sim.run_until(scda::sim::secs(120.0));
  ASSERT_EQ(results.size(), 5u);
  double hi = 0, lo_sum = 0;
  int lo_n = 0;
  for (const auto& [prio, fct] : results) {
    if (prio == 3.0) {
      hi = fct;
    } else {
      lo_sum += fct;
      ++lo_n;
    }
  }
  ASSERT_GT(hi, 0);
  EXPECT_LT(hi, lo_sum / lo_n);  // prioritized flow finished faster
}

TEST(Integration, SlaDetectionFiresUnderReservationOverload) {
  sim::Simulator sim(23);
  CloudConfig cfg = base_config();
  Cloud cloud(sim, cfg);
  // Reserve more than any access link can carry across several writes.
  for (int i = 0; i < 6; ++i)
    cloud.write(static_cast<std::size_t>(i % 8), i + 1, util::megabytes(3),
                ContentClass::kSemiInteractive, 1.0,
                /*reserved_bps=*/util::mbps(80));
  sim.run_until(scda::sim::secs(30.0));
  EXPECT_GT(cloud.allocator().sla_violations(), 0u);
  EXPECT_FALSE(cloud.sla().events().empty());
}

TEST(Integration, DormantPolicySavesEnergy) {
  // Same passive-heavy workload with and without the dormant policy; total
  // server energy must drop when scale-down is enabled (section VII-C).
  const auto run = [](double rscale) {
    sim::Simulator sim(29);
    CloudConfig cfg = base_config();
    cfg.params.rscale = sim::BitRate{rscale};
    Cloud cloud(sim, cfg);
    for (int i = 0; i < 8; ++i)
      cloud.write(static_cast<std::size_t>(i % 8), i + 1,
                  util::kilobytes(200), ContentClass::kPassive);
    sim.run_until(scda::sim::secs(120.0));
    return cloud.total_energy_j();
  };
  const double without = run(0.0);
  const double with = run(util::mbps(150).bps());
  EXPECT_LT(with, 0.95 * without);
}

TEST(Integration, SimplifiedMetricAlsoOutperformsBaseline) {
  sim::Simulator sim(31);
  CloudConfig cfg = base_config();
  cfg.params.metric = core::RateMetricKind::kSimplified;
  Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);
  workload::DriverConfig dc;
  dc.end_time_s = 15.0;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 20.0;
  pc.cap_bytes = 10 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(60.0));
  ASSERT_GT(col.count(), 50u);
  const MiniRun rand =
      run_workload(PlacementPolicy::kRandom, TransportKind::kTcp, 31, 20.0);
  EXPECT_LT(col.summary().mean_fct_s, rand.summary.mean_fct_s);
}

TEST(Integration, DeterministicAcrossRuns) {
  const MiniRun a =
      run_workload(PlacementPolicy::kScda, TransportKind::kScda, 37);
  const MiniRun b =
      run_workload(PlacementPolicy::kScda, TransportKind::kScda, 37);
  EXPECT_EQ(a.summary.flows, b.summary.flows);
  EXPECT_DOUBLE_EQ(a.summary.mean_fct_s, b.summary.mean_fct_s);
  EXPECT_DOUBLE_EQ(a.summary.goodput_bps, b.summary.goodput_bps);
}

// --- seed sweep: invariants hold across random seeds -----------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CompletionsAreSaneUnderScda) {
  const MiniRun r =
      run_workload(PlacementPolicy::kScda, TransportKind::kScda, GetParam());
  EXPECT_GT(r.summary.flows, 0u);
  EXPECT_GT(r.summary.mean_fct_s, 0.0);
  EXPECT_EQ(r.failed_reads, 0u);
  EXPECT_EQ(r.delivered_equals_size_violations, 0.0);
  EXPECT_GT(r.summary.goodput_bps, 0.0);
}

TEST_P(SeedSweep, CompletionsAreSaneUnderRandTcp) {
  const MiniRun r =
      run_workload(PlacementPolicy::kRandom, TransportKind::kTcp, GetParam());
  EXPECT_GT(r.summary.flows, 0u);
  EXPECT_EQ(r.delivered_equals_size_violations, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace scda
