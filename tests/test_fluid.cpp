// FluidEngine semantics (docs/fluid_engine.md): analytic advancement,
// zero-rate parking, epoch-boundary completions, link byte accounting,
// the transport-layer mice/elephant mode decision, slot recycling under
// churn, and the fluid-vs-packet cross-validation of a full experiment.
#include "transport/fluid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "net/network.h"
#include "runner/experiment.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"
#include "util/units.h"
#include "workload/generators.h"

namespace scda::transport {
namespace {

// 8 Mbps => 1e6 bytes/s: sizes in whole bytes give exact second marks.
constexpr sim::BitRate kRate{8e6};
constexpr double kDelay = 1e-3;

class FluidEngineTest : public ::testing::Test {
 protected:
  FluidEngineTest() : net_(sim_) {
    a_ = net_.add_node(net::NodeRole::kServer, "a");
    b_ = net_.add_node(net::NodeRole::kServer, "b");
    auto [ab, ba] = net_.add_duplex(a_, b_, kRate, kDelay, 256 * 1500);
    link_ = ab;
    (void)ba;
    engine_ = std::make_unique<FluidEngine>(net_);
    engine_->set_completion_callback(
        [this](net::FlowId id) { completed_.push_back(id); });
  }

  [[nodiscard]] std::vector<net::LinkId> path() const { return {link_}; }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId a_, b_;
  net::LinkId link_;
  std::unique_ptr<FluidEngine> engine_;
  std::vector<net::FlowId> completed_;
};

TEST_F(FluidEngineTest, DeliversAtConstantRate) {
  const net::FlowId id = net::FlowId::from_index(0);
  engine_->start(id, 1'000'000, kRate, path());
  EXPECT_TRUE(engine_->has_flow(id));
  EXPECT_EQ(engine_->active_flows(), 1u);

  sim_.run_until(sim::secs(10.0));

  // 1e6 bytes at 1e6 B/s: injection 1 s, plus 1 ms one-way latency.
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(completed_[0], id);
  EXPECT_FALSE(engine_->has_flow(id));
  EXPECT_EQ(engine_->stats().completed, 1u);
  // Every byte was charged to the path link, exactly once.
  EXPECT_EQ(net_.link(link_).stats().fluid_bytes, 1'000'000u);
  EXPECT_EQ(net_.link(link_).stats().tx_bytes, 1'000'000u);
  EXPECT_EQ(net_.link(link_).fluid_flows(), 0);
}

TEST_F(FluidEngineTest, CompletionTimeIsAnalytic) {
  const net::FlowId id = net::FlowId::from_index(0);
  sim::Time done{};
  engine_->set_completion_callback(
      [&](net::FlowId) { done = sim_.now(); });
  engine_->start(id, 500'000, kRate, path());
  sim_.run_until(sim::secs(10.0));
  EXPECT_EQ(done, sim::secs(0.5) + sim::secs(kDelay));
}

TEST_F(FluidEngineTest, ZeroRateParksFlowUntilRevived) {
  const net::FlowId id = net::FlowId::from_index(0);
  engine_->start(id, 1'000'000, kRate, path());

  // Park at t=0.5 s (half delivered), then idle across several would-be
  // completion times: the flow must not finish and must not advance.
  sim_.post_at(sim::secs(0.5), [&] { engine_->set_rate(id, sim::BitRate{}); });
  sim_.run_until(sim::secs(20.0));
  ASSERT_TRUE(completed_.empty());
  ASSERT_TRUE(engine_->has_flow(id));
  EXPECT_NEAR(static_cast<double>(engine_->delivered_bytes(id)), 500'000, 1);
  EXPECT_EQ(engine_->rate(id).bps(), 0.0);

  // Revive: the remaining half takes another 0.5 s.
  sim_.post_at(sim::secs(20.0), [&] { engine_->set_rate(id, kRate); });
  sim_.run_until(sim::secs(20.4));
  EXPECT_TRUE(completed_.empty());  // still injecting
  sim_.run_until(sim::secs(25.0));
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(net_.link(link_).stats().fluid_bytes, 1'000'000u);
}

TEST_F(FluidEngineTest, RepeatedZeroRateEpochsAreStable) {
  const net::FlowId id = net::FlowId::from_index(0);
  engine_->start(id, 1'000'000, sim::BitRate{}, path());  // admitted parked

  // Many zero-rate epochs in a row: no progress, no events, no underflow.
  sim::PeriodicProcess epochs(sim_, sim::secs(0.05), [&] {
    engine_->rerate_all([](net::FlowId) { return sim::BitRate{}; },
                        /*epoch=*/true);
  });
  epochs.start(sim::secs(0.05));
  sim_.run_until(sim::secs(2.0));
  epochs.stop();

  EXPECT_TRUE(completed_.empty());
  EXPECT_EQ(engine_->delivered_bytes(id), 0);
  EXPECT_EQ(net_.link(link_).stats().fluid_bytes, 0u);
  EXPECT_GE(engine_->stats().epochs, 30u);
}

TEST_F(FluidEngineTest, CompletionExactlyOnEpochBoundaryFiresOnce) {
  // 100'000 bytes at 1e6 B/s finish injecting at exactly t=0.1 s — the
  // same instant as the first epoch tick. The tick's re-rate must observe
  // remaining == 0 and leave the already-armed completion event alone
  // (zero-delay link so both land on the same nanosecond).
  net::Network flat(sim_);
  const net::NodeId x = flat.add_node(net::NodeRole::kServer, "x");
  const net::NodeId y = flat.add_node(net::NodeRole::kServer, "y");
  auto [xy, yx] = flat.add_duplex(x, y, kRate, 0.0, 256 * 1500);
  (void)yx;
  FluidEngine eng(flat);
  int done = 0;
  sim::Time done_at{};
  eng.set_completion_callback([&](net::FlowId) {
    ++done;
    done_at = sim_.now();
  });

  sim::PeriodicProcess epochs(sim_, sim::secs(0.1), [&] {
    eng.rerate_all([](net::FlowId) { return kRate; }, /*epoch=*/true);
  });
  epochs.start(sim::secs(0.1));  // tick scheduled before the flow starts
  eng.start(net::FlowId::from_index(0), 100'000, kRate, {xy});
  sim_.run_until(sim::secs(1.0));
  epochs.stop();

  EXPECT_EQ(done, 1);
  EXPECT_EQ(done_at, sim::secs(0.1));
  EXPECT_EQ(flat.link(xy).stats().fluid_bytes, 100'000u);
  EXPECT_EQ(eng.active_flows(), 0u);
}

TEST_F(FluidEngineTest, ReRateMovesCompletionAnalytically) {
  const net::FlowId id = net::FlowId::from_index(0);
  sim::Time done{};
  engine_->set_completion_callback([&](net::FlowId) { done = sim_.now(); });
  engine_->start(id, 1'000'000, kRate, path());
  // Halve the rate at t=0.5: 500k bytes remain at 0.5e6 B/s -> 1 more s.
  sim_.post_at(sim::secs(0.5), [&] { engine_->set_rate(id, kRate / 2); });
  sim_.run_until(sim::secs(10.0));
  EXPECT_EQ(done, sim::secs(1.5) + sim::secs(kDelay));
  EXPECT_EQ(net_.link(link_).stats().fluid_bytes, 1'000'000u);
}

TEST_F(FluidEngineTest, ZeroByteFlowCompletesAfterLatency) {
  const net::FlowId id = net::FlowId::from_index(7);
  sim::Time done{};
  engine_->set_completion_callback([&](net::FlowId) { done = sim_.now(); });
  engine_->start(id, 0, kRate, path());
  sim_.run_until(sim::secs(1.0));
  EXPECT_EQ(done, sim::secs(kDelay));
  EXPECT_EQ(engine_->stats().completed, 1u);
}

TEST_F(FluidEngineTest, RejectsBadStarts) {
  const net::FlowId id = net::FlowId::from_index(0);
  engine_->start(id, 1000, kRate, path());
  EXPECT_THROW(engine_->start(id, 1000, kRate, path()),
               std::invalid_argument);
  EXPECT_THROW(
      engine_->start(net::FlowId::from_index(1), -1, kRate, path()),
      std::invalid_argument);
  EXPECT_THROW(engine_->set_rate(net::FlowId::from_index(9), kRate),
               std::invalid_argument);
  EXPECT_THROW((void)engine_->delivered_bytes(net::FlowId::from_index(9)),
               std::invalid_argument);
}

TEST_F(FluidEngineTest, SlotPoolStaysFlatUnderChurn) {
  // 50 waves of 4 concurrent flows: the pool must level off at the peak
  // concurrency, proving completed rows are recycled, not leaked.
  std::size_t next = 0;
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 4; ++i)
      engine_->start(net::FlowId::from_index(next++), 100'000, kRate,
                     path());
    sim_.run_until(sim_.now() + sim::secs(1.0));
    ASSERT_EQ(engine_->active_flows(), 0u);
  }
  EXPECT_EQ(engine_->stats().completed, 200u);
  EXPECT_LE(engine_->pool_slots(), 4u);
  EXPECT_EQ(net_.link(link_).fluid_flows(), 0);
  EXPECT_EQ(net_.link(link_).stats().fluid_bytes, 200u * 100'000u);
}

// ------------------------------------------------- transport decision ----

class FluidTransportTest : public ::testing::Test {
 protected:
  FluidTransportTest() : net_(sim_) {
    a_ = net_.add_node(net::NodeRole::kServer, "a");
    b_ = net_.add_node(net::NodeRole::kServer, "b");
    net_.add_duplex(a_, b_, util::mbps(100), kDelay, 256 * 1500);
    net_.build_routes();
    tm_ = std::make_unique<TransportManager>(net_);
    FluidConfig fc;
    fc.enabled = true;
    fc.threshold_bytes = 1000;
    tm_->set_fluid_config(fc);
    tm_->set_completion_callback(
        [this](const FlowRecord& rec) { finished_.push_back(rec.id); });
  }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId a_, b_;
  std::unique_ptr<TransportManager> tm_;
  std::vector<net::FlowId> finished_;
};

TEST_F(FluidTransportTest, ThresholdSplitsMiceFromElephants) {
  // Exactly at the threshold -> fluid; one byte below -> packet mode.
  const auto big = tm_->start_scda_flow(a_, b_, 1000, util::mbps(10),
                                        util::mbps(10));
  EXPECT_TRUE(big.fluid);
  EXPECT_EQ(big.sender, nullptr);
  EXPECT_TRUE(tm_->record(big.id).fluid);
  EXPECT_EQ(tm_->mode_switches(), 0u);

  const auto small = tm_->start_scda_flow(a_, b_, 999, util::mbps(10),
                                          util::mbps(10));
  EXPECT_FALSE(small.fluid);
  ASSERT_NE(small.sender, nullptr);
  EXPECT_FALSE(tm_->record(small.id).fluid);
  EXPECT_EQ(tm_->mode_switches(), 1u);

  sim_.run_until(sim::secs(30.0));
  EXPECT_EQ(finished_.size(), 2u);
  EXPECT_EQ(tm_->fluid().stats().completed, 1u);
}

TEST_F(FluidTransportTest, DisabledConfigKeepsEveryFlowPacket) {
  FluidConfig off;
  tm_->set_fluid_config(off);
  const auto h = tm_->start_scda_flow(a_, b_, 1'000'000, util::mbps(10),
                                      util::mbps(10));
  EXPECT_FALSE(h.fluid);
  EXPECT_NE(h.sender, nullptr);
  EXPECT_EQ(tm_->mode_switches(), 0u);
  EXPECT_EQ(tm_->fluid().stats().started, 0u);
}

TEST_F(FluidTransportTest, FluidFlowRecordGetsFinishTimeAndBytes) {
  const auto h = tm_->start_scda_flow(a_, b_, 100'000, util::mbps(8),
                                      util::mbps(8));
  ASSERT_TRUE(h.fluid);
  sim_.run_until(sim::secs(30.0));
  const FlowRecord& rec = tm_->record(h.id);
  EXPECT_TRUE(rec.finished());
  // 100 ms injection at 1e6 B/s plus the 1 ms path latency.
  EXPECT_EQ(rec.finish_time, sim::secs(0.1) + sim::secs(kDelay));
  EXPECT_EQ(tm_->total_delivered_bytes(), 100'000);
}

// --------------------------------------- fluid vs packet cross-check ----

runner::ExperimentConfig fluid_xval_config(bool fluid) {
  runner::ExperimentConfig cfg;
  cfg.name = fluid ? "xval-fluid" : "xval-packet";
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.driver.end_time_s = 5.0;
  cfg.sim_time_s = 60.0;  // drain everything: both modes finish all flows
  cfg.seed = 7;
  cfg.fluid.enabled = fluid;
  cfg.make_generator = [] {
    workload::ParetoPoissonConfig w;
    w.arrival_rate = 30.0;
    return std::make_unique<workload::ParetoPoissonWorkload>(w);
  };
  return cfg;
}

TEST(FluidCrossValidation, MatchesPacketModeWithinTolerance) {
  const runner::AfctBinning bins;
  const auto packet =
      runner::run_once(fluid_xval_config(false), core::PlacementPolicy::kScda,
                       TransportKind::kScda, bins);
  const auto fluid =
      runner::run_once(fluid_xval_config(true), core::PlacementPolicy::kScda,
                       TransportKind::kScda, bins);

  // Same seed, same arrivals: both runs admit and drain the same flows.
  EXPECT_EQ(fluid.flows_completed, packet.flows_completed);
  EXPECT_GT(fluid.flows_completed, 100u);

  // The fluid run must actually have exercised fluid mode (elephants above
  // the 1 MiB default threshold) while keeping packet fidelity for mice.
  EXPECT_GT(fluid.metrics.value("transport.fluid_flows_completed"), 0.0);
  EXPECT_GT(fluid.metrics.value("transport.mode_switches"), 0.0);
  EXPECT_FALSE(packet.metrics.has("transport.fluid_flows_completed"));

  // Tolerances (documented in docs/fluid_engine.md): fluid flows skip
  // slow-start, queueing and loss recovery, so their FCTs sit slightly
  // below packet mode's. Empirically this config agrees to a few percent;
  // 10% bounds the model gap without masking real regressions.
  EXPECT_NEAR(fluid.summary.mean_fct_s, packet.summary.mean_fct_s,
              0.10 * packet.summary.mean_fct_s);
  EXPECT_NEAR(fluid.summary.goodput_bps, packet.summary.goodput_bps,
              0.10 * packet.summary.goodput_bps);
  EXPECT_EQ(fluid.summary.mean_size_bytes, packet.summary.mean_size_bytes);

  // And it must be cheaper: analytic elephants schedule O(epochs) events,
  // not O(packets).
  EXPECT_LT(fluid.events, packet.events);
}

}  // namespace
}  // namespace scda::transport
