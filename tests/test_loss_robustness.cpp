// Robustness under random loss (NS2-style error model) and reassembly
// fuzzing: both transports must deliver every byte exactly once no matter
// how the network drops, reorders or duplicates segments.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/receiver.h"
#include "transport/transport_manager.h"

namespace scda {
namespace {

class LossyPath : public ::testing::TestWithParam<double> {
 protected:
  void build(double loss) {
    sim_ = std::make_unique<sim::Simulator>(13);
    net_ = std::make_unique<net::Network>(*sim_);
    a_ = net_->add_node(net::NodeRole::kClient, "a");
    b_ = net_->add_node(net::NodeRole::kServer, "b");
    auto [ab, ba] = net_->add_duplex(a_, b_, sim::BitRate{20e6}, 0.005, 1 << 20);
    net_->build_routes();
    // Lossy data direction; ACK path stays clean so the loss signal is
    // unambiguous (drop ACKs too in the Bidirectional test below).
    net_->link(ab).set_error_model(loss, &sim_->rng());
    (void)ba;
    tm_ = std::make_unique<transport::TransportManager>(*net_);
    tm_->set_completion_callback(
        [this](const transport::FlowRecord& r) { completed_.push_back(r.id); });
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<transport::TransportManager> tm_;
  net::NodeId a_{}, b_{};
  std::vector<net::FlowId> completed_;
};

TEST_P(LossyPath, TcpDeliversEverythingUnderLoss) {
  build(GetParam());
  tm_->start_tcp_flow(a_, b_, 600'000);
  sim_->run_until(scda::sim::secs(300.0));
  ASSERT_EQ(completed_.size(), 1u);
  auto* r = tm_->receiver(scda::net::FlowId{0});
  EXPECT_EQ(r->next_expected(), 600'000);
}

TEST_P(LossyPath, ScdaDeliversEverythingUnderLoss) {
  build(GetParam());
  auto h = tm_->start_scda_flow(a_, b_, 600'000, sim::BitRate{10e6}, sim::BitRate{10e6});
  sim_->run_until(scda::sim::secs(300.0));
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(h.receiver->next_expected(), 600'000);
  // At 0.1% loss a ~400-packet flow often sees no drop at all; only the
  // heavier rates are guaranteed to exercise the repair path.
  if (GetParam() >= 0.01) {
    EXPECT_GT(h.sender->stats().retransmits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyPath,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05));

TEST(BidirectionalLoss, AckLossIsSurvivable) {
  sim::Simulator sim(29);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  auto [ab, ba] = net.add_duplex(a, b, sim::BitRate{20e6}, 0.005, 1 << 20);
  net.build_routes();
  net.link(ab).set_error_model(0.02, &sim.rng());
  net.link(ba).set_error_model(0.02, &sim.rng());  // ACKs dropped too
  transport::TransportManager tm(net);
  int done = 0;
  tm.set_completion_callback([&](const transport::FlowRecord&) { ++done; });
  tm.start_tcp_flow(a, b, 300'000);
  tm.start_scda_flow(a, b, 300'000, sim::BitRate{8e6}, sim::BitRate{8e6});
  sim.run_until(scda::sim::secs(300.0));
  EXPECT_EQ(done, 2);
}

// --- reassembly fuzz ---------------------------------------------------------

class ReassemblyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReassemblyFuzz, RandomOrderDuplicatesAndOverlaps) {
  sim::Simulator sim(GetParam());
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  net.add_duplex(a, b, sim::BitRate{1e9}, 0.0001, 1 << 24);
  net.build_routes();

  constexpr std::int64_t kSize = 200'000;
  transport::FlowRecord rec;
  rec.id = net::FlowId{1};
  rec.src = a;
  rec.dst = b;
  rec.size_bytes = kSize;
  int completions = 0;
  std::int64_t delivered = 0;
  transport::Receiver recv(
      net, rec, [&](const transport::FlowRecord&) { ++completions; },
      1 << 20);
  recv.set_delivered_counter(&delivered);

  // Chop the content into random segments; shuffle; duplicate some;
  // add random overlapping ranges.
  sim::Rng& rng = sim.rng();
  std::vector<std::pair<std::int64_t, std::int32_t>> segs;
  std::int64_t at = 0;
  while (at < kSize) {
    const auto len = static_cast<std::int32_t>(std::min<std::int64_t>(
        rng.uniform_int(1, 1460), kSize - at));
    segs.emplace_back(at, len);
    at += len;
  }
  const auto original = segs.size();
  for (std::size_t i = 0; i < original / 4; ++i) {
    segs.push_back(segs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(original) - 1))]);
    const std::int64_t lo = rng.uniform_int(0, kSize - 2);
    const auto len = static_cast<std::int32_t>(std::min<std::int64_t>(
        rng.uniform_int(1, 2000), kSize - lo));
    segs.emplace_back(lo, len);
  }
  std::shuffle(segs.begin(), segs.end(), rng.engine());

  for (const auto& [seq, len] : segs)
    recv.handle(
        net::make_data(scda::net::FlowId{1}, a, b, seq, len, sim.now()));

  EXPECT_EQ(recv.next_expected(), kSize);
  EXPECT_EQ(delivered, kSize);  // every byte delivered exactly once
  EXPECT_EQ(completions, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblyFuzz,
                         ::testing::Values(1, 7, 42, 1337, 9999));

}  // namespace
}  // namespace scda
