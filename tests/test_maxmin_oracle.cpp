// Property test: the RateAllocator's iterative equilibrium must match an
// independent reference implementation of weighted max-min fairness
// (progressive water-filling) on randomized scenarios.
//
// The oracle: repeatedly find the link that, with its unfrozen flows
// sharing its residual capacity in proportion to their weights, gives the
// smallest per-weight level; freeze those flows at weight*level; remove
// the frozen flows' consumption everywhere; repeat. This is the textbook
// bottleneck-ordering algorithm, entirely unrelated to the allocator's
// RCP-style iteration — agreement is strong evidence of correctness.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/rate_allocator.h"
#include "core/water_filling.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace scda::core {
namespace {


class MaxMinOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinOracle, AllocatorMatchesWaterFilling) {
  sim::Simulator sim(GetParam());
  sim::Rng& rng = sim.rng();

  net::TopologyConfig tc;
  tc.n_agg = 2;
  tc.tors_per_agg = 2;
  tc.servers_per_tor = static_cast<std::int32_t>(rng.uniform_int(2, 4));
  tc.n_clients = 6;
  tc.base_bps = sim::BitRate{100e6};
  tc.k_factor = rng.uniform(1.0, 3.0);
  net::ThreeTierTree topo(sim, tc);

  ScdaParams params;
  params.alpha = 1.0;  // gamma == capacity with empty queues
  params.beta = 0.5;
  params.min_rate = sim::BitRate{1.0};
  RateAllocator alloc(topo.net(), params);

  // Random flow set: client<->server pairs, random directions and weights.
  const auto n_flows = static_cast<std::size_t>(rng.uniform_int(3, 14));
  std::vector<ReferenceFlow> flows(n_flows);
  for (std::size_t f = 0; f < n_flows; ++f) {
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               topo.clients().size()) - 1));
    const auto s = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               topo.servers().size()) - 1));
    const bool up = rng.bernoulli(0.5);
    const net::NodeId src = up ? topo.servers()[s] : topo.clients()[c];
    const net::NodeId dst = up ? topo.clients()[c] : topo.servers()[s];
    const double w = static_cast<double>(rng.uniform_int(1, 4));
    flows[f].path = topo.net().path(src, dst);
    flows[f].weight = w;
    alloc.register_flow(net::FlowId::from_index(f), src, dst, w);
  }

  // Oracle capacities (alpha * C, no queues in a traffic-free network).
  std::map<net::LinkId, sim::BitRate> capacity;
  for (const auto& f : flows)
    for (const auto l : f.path)
      capacity[l] = topo.net().link(l).capacity();

  water_fill(flows, capacity);

  for (int i = 0; i < 400; ++i) alloc.tick();

  for (std::size_t f = 0; f < n_flows; ++f) {
    const double got = alloc.flow_rate(net::FlowId::from_index(f)).bps();
    const double want = flows[f].rate.bps();
    ASSERT_GT(want, 0) << "oracle failed to freeze flow " << f;
    EXPECT_NEAR(got / want, 1.0, 0.03)
        << "flow " << f << " weight " << flows[f].weight << " got "
        << got / 1e6 << " Mbps, oracle " << want / 1e6 << " Mbps";
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, MaxMinOracle,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace scda::core
