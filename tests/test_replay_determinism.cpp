// Deterministic replay: two runs of the same seeded experiment must be
// bit-identical. The simulator's reproducibility contract rests on the
// event queue's (time, sequence) FIFO tie-break; a regression there (or any
// hidden iteration-order dependence on the packet path) shows up here as a
// diverging completion-time vector long before it corrupts a figure.
//
// The workload is a scaled-down version of the figure-13 datacenter
// experiment (three-tier tree, mice/elephant arrivals), run for both the
// SCDA and RandTCP systems.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/cloud.h"
#include "sim/simulator.h"
#include "stats/collector.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace scda {
namespace {

struct ReplayResult {
  std::vector<stats::CompletionRecord> records;
  std::uint64_t events = 0;
  double final_time = 0;
};

ReplayResult run_datacenter_once(core::PlacementPolicy placement,
                                 transport::TransportKind transport) {
  sim::Simulator sim(0x5cda2013ULL);

  core::CloudConfig cc;
  cc.topology.base_bps = sim::BitRate{500e6};
  cc.topology.k_factor = 1.0;
  cc.topology.n_agg = 4;
  cc.topology.tors_per_agg = 5;
  cc.topology.servers_per_tor = 8;
  cc.topology.n_clients = 64;
  cc.placement = placement;
  cc.transport = transport;

  core::Cloud cloud(sim, cc);
  stats::FlowStatsCollector collector(cloud);

  workload::DriverConfig dc;
  dc.end_time_s = 5.0;
  dc.read_fraction = 0.3;
  workload::DatacenterWorkloadConfig wc;
  wc.arrival_rate = 60.0;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::DatacenterWorkload>(wc), dc);
  driver.start();

  ReplayResult r;
  r.events = sim.run_until(scda::sim::secs(8.0));
  r.final_time = sim.now().seconds();
  r.records = collector.records();
  return r;
}

void expect_identical_runs(core::PlacementPolicy placement,
                           transport::TransportKind transport) {
  const ReplayResult a = run_datacenter_once(placement, transport);
  const ReplayResult b = run_datacenter_once(placement, transport);

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_time, b.final_time);
  ASSERT_GT(a.records.size(), 0u) << "workload produced no completions";
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    // Bit-exact, not approximately equal: memcmp the double fields so even
    // a one-ulp divergence (e.g. from reordered FP additions) fails.
    EXPECT_EQ(ra.size_bytes, rb.size_bytes) << "record " << i;
    EXPECT_EQ(std::memcmp(&ra.fct_s, &rb.fct_s, sizeof ra.fct_s), 0)
        << "record " << i << ": " << ra.fct_s << " vs " << rb.fct_s;
    EXPECT_EQ(std::memcmp(&ra.start_time, &rb.start_time, sizeof ra.start_time),
              0)
        << "record " << i;
    EXPECT_EQ(
        std::memcmp(&ra.finish_time, &rb.finish_time, sizeof ra.finish_time), 0)
        << "record " << i;
    EXPECT_EQ(ra.kind, rb.kind) << "record " << i;
    EXPECT_EQ(ra.content_class, rb.content_class) << "record " << i;
  }
}

TEST(ReplayDeterminism, ScdaRunsAreByteIdentical) {
  expect_identical_runs(core::PlacementPolicy::kScda,
                        transport::TransportKind::kScda);
}

TEST(ReplayDeterminism, RandTcpRunsAreByteIdentical) {
  expect_identical_runs(core::PlacementPolicy::kRandom,
                        transport::TransportKind::kTcp);
}

}  // namespace
}  // namespace scda
