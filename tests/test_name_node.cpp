#include "core/name_node.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.h"

namespace scda::core {
namespace {

TEST(NameNode, ServesRequestAfterServiceTime) {
  sim::Simulator sim;
  NameNode nns(sim, 0, /*service_time=*/0.001);
  double served_at = -1;
  nns.submit([&] { served_at = sim.now().seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(served_at, 0.001);
  EXPECT_EQ(nns.served(), 1u);
}

TEST(NameNode, ConcurrentRequestsQueue) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  std::vector<double> times;
  for (int i = 0; i < 5; ++i)
    nns.submit([&] { times.push_back(sim.now().seconds()); });
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_NEAR(times[static_cast<size_t>(i)], 0.001 * (i + 1), 1e-12);
  EXPECT_NEAR(nns.max_delay(), 0.005, 1e-12);
  EXPECT_NEAR(nns.mean_delay(), 0.003, 1e-12);
}

TEST(NameNode, QueueDrainsBetweenBursts) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  std::vector<double> times;
  nns.submit([&] { times.push_back(sim.now().seconds()); });
  sim.post_at(scda::sim::secs(1.0), [&] {
    nns.submit([&] { times.push_back(sim.now().seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[1], 1.001, 1e-12);  // no residual queueing
}

TEST(NameNode, MetadataUpsertAndFind) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  EXPECT_EQ(nns.find(7), nullptr);
  ContentMeta& m = nns.upsert(7);
  m.size_bytes = 1234;
  m.replicas.push_back(3);
  ASSERT_NE(nns.find(7), nullptr);
  EXPECT_EQ(nns.find(7)->size_bytes, 1234);
  EXPECT_EQ(nns.find(7)->replicas.size(), 1u);
  EXPECT_EQ(nns.content_count(), 1u);
  // Upsert again returns the same record.
  nns.upsert(7).reads = 5;
  EXPECT_EQ(nns.find(7)->size_bytes, 1234);
  EXPECT_EQ(nns.find(7)->reads, 5u);
}

TEST(FrontEnd, DispatchIsDeterministic) {
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001), n1(sim, 1, 0.001), n2(sim, 2, 0.001);
  FrontEnd fes({&n0, &n1, &n2});
  EXPECT_EQ(fes.nns_count(), 3u);
  for (std::int64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(&fes.dispatch_by_content(k), &fes.dispatch_by_content(k));
    EXPECT_EQ(&fes.dispatch_by_client(k), &fes.dispatch_by_client(k));
  }
}

TEST(FrontEnd, DispatchSpreadsLoad) {
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001), n1(sim, 1, 0.001), n2(sim, 2, 0.001),
      n3(sim, 3, 0.001);
  FrontEnd fes({&n0, &n1, &n2, &n3});
  int counts[4] = {0, 0, 0, 0};
  for (std::int64_t k = 0; k < 4000; ++k)
    ++counts[fes.dispatch_by_content(k).index()];
  for (int c : counts) {
    EXPECT_GT(c, 800);   // roughly balanced (1000 +- 20%)
    EXPECT_LT(c, 1200);
  }
}

TEST(FrontEnd, SingleNodeGetsEverything) {
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001);
  FrontEnd fes({&n0});
  for (std::int64_t k = 0; k < 20; ++k)
    EXPECT_EQ(&fes.dispatch_by_content(k), &n0);
}

TEST(FrontEnd, SingleNnsBottleneckDelaysGrowWithLoad) {
  // The GFS/HDFS weakness the paper targets: one NNS under a burst of
  // requests builds a queue; four NNS behind an FES split it.
  sim::Simulator sim;
  NameNode single(sim, 0, 0.001);
  FrontEnd fes1({&single});
  for (std::int64_t k = 0; k < 400; ++k)
    fes1.dispatch_by_content(k).submit([] {});
  sim.run();

  sim::Simulator sim2;
  NameNode a(sim2, 0, 0.001), b(sim2, 1, 0.001), c(sim2, 2, 0.001),
      d(sim2, 3, 0.001);
  FrontEnd fes4({&a, &b, &c, &d});
  for (std::int64_t k = 0; k < 400; ++k)
    fes4.dispatch_by_content(k).submit([] {});
  sim2.run();

  const double multi_max = std::max(
      std::max(a.max_delay(), b.max_delay()),
      std::max(c.max_delay(), d.max_delay()));
  EXPECT_GT(single.max_delay(), 2.5 * multi_max);
}

}  // namespace
}  // namespace scda::core
