#include "core/name_node.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.h"

namespace scda::core {
namespace {

TEST(NameNode, ServesRequestAfterServiceTime) {
  sim::Simulator sim;
  NameNode nns(sim, 0, /*service_time=*/0.001);
  double served_at = -1;
  nns.submit([&] { served_at = sim.now().seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(served_at, 0.001);
  EXPECT_EQ(nns.served(), 1u);
}

TEST(NameNode, ConcurrentRequestsQueue) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  std::vector<double> times;
  for (int i = 0; i < 5; ++i)
    nns.submit([&] { times.push_back(sim.now().seconds()); });
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_NEAR(times[static_cast<size_t>(i)], 0.001 * (i + 1), 1e-12);
  EXPECT_NEAR(nns.max_delay(), 0.005, 1e-12);
  EXPECT_NEAR(nns.mean_delay(), 0.003, 1e-12);
}

TEST(NameNode, QueueDrainsBetweenBursts) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  std::vector<double> times;
  nns.submit([&] { times.push_back(sim.now().seconds()); });
  sim.post_at(scda::sim::secs(1.0), [&] {
    nns.submit([&] { times.push_back(sim.now().seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[1], 1.001, 1e-12);  // no residual queueing
}

TEST(NameNode, MetadataUpsertAndFind) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  EXPECT_EQ(nns.find(7), nullptr);
  ContentMeta& m = nns.upsert(7);
  m.size_bytes = 1234;
  m.replicas.push_back(3);
  ASSERT_NE(nns.find(7), nullptr);
  EXPECT_EQ(nns.find(7)->size_bytes, 1234);
  EXPECT_EQ(nns.find(7)->replicas.size(), 1u);
  EXPECT_EQ(nns.content_count(), 1u);
  // Upsert again returns the same record.
  nns.upsert(7).reads = 5;
  EXPECT_EQ(nns.find(7)->size_bytes, 1234);
  EXPECT_EQ(nns.find(7)->reads, 5u);
}

TEST(NameNode, ServiceQueueStatsExactArithmetic) {
  // served / mean_delay / max_delay feed the cloud.mean_nns_delay_s metric
  // and the FES-vs-single-NNS comparison; pin the exact arithmetic.
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.002);
  for (int i = 0; i < 3; ++i) nns.submit([] {});
  sim.run();
  EXPECT_EQ(nns.served(), 3u);
  // Delays at submit time: 0.002, 0.004, 0.006.
  EXPECT_NEAR(nns.mean_delay(), 0.004, 1e-12);
  EXPECT_NEAR(nns.max_delay(), 0.006, 1e-12);
  // A later lone request adds only one service time to the running mean.
  sim.post_at(scda::sim::secs(1.0), [&] { nns.submit([] {}); });
  sim.run();
  EXPECT_EQ(nns.served(), 4u);
  EXPECT_NEAR(nns.mean_delay(), (0.002 + 0.004 + 0.006 + 0.002) / 4, 1e-12);
  EXPECT_NEAR(nns.max_delay(), 0.006, 1e-12);
}

TEST(NameNode, ContentIdsSortedAscending) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  for (const ContentId id : {ContentId{42}, ContentId{7}, ContentId{1000},
                             ContentId{3}, ContentId{77}})
    (void)nns.upsert(id);
  const std::vector<ContentId> ids = nns.content_ids();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids.front(), 3);
  EXPECT_EQ(ids.back(), 1000);
}

TEST(NameNode, DeadNodeRejectsSubmit) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 0.001);
  nns.set_alive(false);
  EXPECT_FALSE(nns.alive());
  bool ran = false;
  EXPECT_LT(nns.submit([&] { ran = true; }), 0.0);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(nns.served(), 0u);
  // Revived, it serves normally again.
  nns.set_alive(true);
  EXPECT_GE(nns.submit([&] { ran = true; }), 0.0);
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(NameNode, CrashVoidsQueuedHandlersAndClearsBacklog) {
  sim::Simulator sim;
  NameNode nns(sim, 0, 1.0);
  int fired = 0;
  for (int i = 0; i < 3; ++i) nns.submit([&] { ++fired; });
  // Crash before any service completes: the queued handlers must die with
  // the node instead of firing against the recovered instance.
  sim.post_at(scda::sim::secs(0.5), [&] { nns.set_alive(false); });
  sim.run();
  EXPECT_EQ(fired, 0);
  // Recovery starts from an empty queue (no ghost backlog): a fresh
  // request is served after exactly one service time.
  nns.set_alive(true);
  double served_at = -1;
  sim.post_at(scda::sim::secs(10.0),
              [&] { nns.submit([&] { served_at = sim.now().seconds(); }); });
  sim.run();
  EXPECT_NEAR(served_at, 11.0, 1e-9);
}

TEST(NameNode, MirrorAndAdoptCopyMetadata) {
  sim::Simulator sim;
  NameNode a(sim, 0, 0.001), b(sim, 1, 0.001);
  ContentMeta& m = a.upsert(5);
  m.size_bytes = 999;
  m.replicas = {2, 7};
  b.apply_mirror(*a.find(5));
  ASSERT_NE(b.find(5), nullptr);
  EXPECT_EQ(b.find(5)->size_bytes, 999);
  EXPECT_EQ(b.find(5)->replicas, (std::vector<std::int32_t>{2, 7}));
  (void)a.upsert(6);
  NameNode c(sim, 2, 0.001);
  c.adopt_meta_from(a);
  EXPECT_EQ(c.content_count(), 2u);
  EXPECT_NE(c.find(6), nullptr);
}

TEST(FrontEnd, DispatchIsDeterministic) {
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001), n1(sim, 1, 0.001), n2(sim, 2, 0.001);
  FrontEnd fes({&n0, &n1, &n2});
  EXPECT_EQ(fes.nns_count(), 3u);
  for (std::int64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(&fes.dispatch_by_content(k), &fes.dispatch_by_content(k));
    EXPECT_EQ(&fes.dispatch_by_client(k), &fes.dispatch_by_client(k));
  }
}

TEST(FrontEnd, DispatchSpreadsLoad) {
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001), n1(sim, 1, 0.001), n2(sim, 2, 0.001),
      n3(sim, 3, 0.001);
  FrontEnd fes({&n0, &n1, &n2, &n3});
  int counts[4] = {0, 0, 0, 0};
  for (std::int64_t k = 0; k < 4000; ++k)
    ++counts[fes.dispatch_by_content(k).index()];
  for (int c : counts) {
    EXPECT_GT(c, 800);   // roughly balanced (1000 +- 20%)
    EXPECT_LT(c, 1200);
  }
}

TEST(FrontEnd, DispatchIndexMatchesNodeDispatchGolden) {
  // dispatch_index() is the failover layer's shard function; it must agree
  // with dispatch_by_content() forever (content placed under one mapping
  // must be found under the other). The golden values pin the splitmix64
  // dispatch so an accidental hash change fails loudly — it would silently
  // re-shard every committed artifact.
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001), n1(sim, 1, 0.001), n2(sim, 2, 0.001),
      n3(sim, 3, 0.001);
  FrontEnd fes({&n0, &n1, &n2, &n3});
  for (std::int64_t k = 0; k < 64; ++k) {
    const std::size_t shard = fes.dispatch_index(static_cast<std::uint64_t>(k));
    EXPECT_EQ(&fes.node(shard), &fes.dispatch_by_content(k));
  }
  const std::size_t golden[8] = {3, 1, 2, 1, 2, 2, 0, 3};
  for (std::uint64_t k = 0; k < 8; ++k)
    EXPECT_EQ(fes.dispatch_index(k), golden[k]) << "key " << k;
}

TEST(FrontEnd, SingleNodeGetsEverything) {
  sim::Simulator sim;
  NameNode n0(sim, 0, 0.001);
  FrontEnd fes({&n0});
  for (std::int64_t k = 0; k < 20; ++k)
    EXPECT_EQ(&fes.dispatch_by_content(k), &n0);
}

TEST(FrontEnd, SingleNnsBottleneckDelaysGrowWithLoad) {
  // The GFS/HDFS weakness the paper targets: one NNS under a burst of
  // requests builds a queue; four NNS behind an FES split it.
  sim::Simulator sim;
  NameNode single(sim, 0, 0.001);
  FrontEnd fes1({&single});
  for (std::int64_t k = 0; k < 400; ++k)
    fes1.dispatch_by_content(k).submit([] {});
  sim.run();

  sim::Simulator sim2;
  NameNode a(sim2, 0, 0.001), b(sim2, 1, 0.001), c(sim2, 2, 0.001),
      d(sim2, 3, 0.001);
  FrontEnd fes4({&a, &b, &c, &d});
  for (std::int64_t k = 0; k < 400; ++k)
    fes4.dispatch_by_content(k).submit([] {});
  sim2.run();

  const double multi_max = std::max(
      std::max(a.max_delay(), b.max_delay()),
      std::max(c.max_delay(), d.max_delay()));
  EXPECT_GT(single.max_delay(), 2.5 * multi_max);
}

}  // namespace
}  // namespace scda::core
