// Tests for general (non-tree) topology support: the leaf-spine builder,
// per-flow route pinning, and the widest-path (max/min) route selector of
// paper section IX.
#include <gtest/gtest.h>

#include "core/path_selector.h"
#include "core/rate_allocator.h"
#include "net/general_topology.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"

namespace scda {
namespace {

using core::widest_path;
using core::WidestPathResult;

net::LeafSpineConfig small_cfg() {
  net::LeafSpineConfig cfg;
  cfg.n_spines = 2;
  cfg.n_leaves = 3;
  cfg.servers_per_leaf = 2;
  cfg.n_clients = 2;
  cfg.server_bps = sim::BitRate{100e6};
  cfg.fabric_bps = sim::BitRate{100e6};
  cfg.gw_bps = sim::BitRate{400e6};
  return cfg;
}

TEST(LeafSpine, ShapeCounts) {
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  EXPECT_EQ(ls.spines().size(), 2u);
  EXPECT_EQ(ls.leaves().size(), 3u);
  EXPECT_EQ(ls.servers().size(), 6u);
  EXPECT_EQ(ls.clients().size(), 2u);
  // nodes: gw + 2 spines + 3 leaves + 6 servers + 2 clients = 14
  EXPECT_EQ(ls.net().node_count(), 14u);
  // duplex links: 2 (spine-gw) + 6 (leaf-spine) + 6 (server) + 2 (client)
  EXPECT_EQ(ls.net().link_count(), 32u);
}

TEST(LeafSpine, EveryLeafReachesEverySpine) {
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t s = 0; s < 2; ++s) {
      const net::LinkId up = ls.leaf_to_spine(l, s);
      EXPECT_EQ(ls.net().link(up).from(), ls.leaves()[l]);
      EXPECT_EQ(ls.net().link(up).to(), ls.spines()[s]);
      const net::LinkId down = ls.spine_to_leaf(l, s);
      EXPECT_EQ(ls.net().link(down).from(), ls.spines()[s]);
      EXPECT_EQ(ls.net().link(down).to(), ls.leaves()[l]);
    }
  }
}

TEST(LeafSpine, CrossLeafPathsExist) {
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  // server 0 (leaf 0) to server 5 (leaf 2): srv->leaf->spine->leaf->srv
  const auto path = ls.net().path(ls.servers()[0], ls.servers()[5]);
  EXPECT_EQ(path.size(), 4u);
}

TEST(WidestPath, PicksLessLoadedSpine) {
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  core::ScdaParams params;
  params.alpha = 1.0;
  core::RateAllocator alloc(ls.net(), params);

  // Congest spine 0 on the leaf0->spine0 segment.
  for (net::FlowId f{100}; f < net::FlowId{104}; ++f) {
    alloc.register_flow_on_path(
        f, {ls.leaf_to_spine(0, 0)}, 1.0);
  }
  for (int i = 0; i < 30; ++i) alloc.tick();

  const auto rate = [&](net::LinkId l) { return alloc.link_rate(l); };
  const WidestPathResult r =
      widest_path(ls.net(), ls.servers()[0], ls.servers()[5], rate);
  ASSERT_EQ(r.path.size(), 4u);
  // The second hop must be via spine 1 (spine 0's uplink is congested).
  EXPECT_EQ(ls.net().link(r.path[1]).to(), ls.spines()[1]);
  EXPECT_NEAR(r.bottleneck.bps(), 100e6, 1e6);
}

TEST(WidestPath, SrcEqualsDstIsEmpty) {
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  const auto rate = [](net::LinkId) { return sim::BitRate{1.0}; };
  const auto r = widest_path(ls.net(), ls.servers()[0], ls.servers()[0], rate);
  EXPECT_TRUE(r.path.empty());
}

TEST(WidestPath, UnreachableReturnsEmpty) {
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kOther, "a");
  const auto b = net.add_node(net::NodeRole::kOther, "b");
  net.build_routes();
  const auto r = widest_path(net, a, b,
                             [](net::LinkId) { return sim::BitRate{1.0}; });
  EXPECT_TRUE(r.path.empty());
  EXPECT_DOUBLE_EQ(r.bottleneck.bps(), 0.0);
}

TEST(WidestPath, PrefersFewerHopsOnTies) {
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kOther, "a");
  const auto m = net.add_node(net::NodeRole::kOther, "m");
  const auto b = net.add_node(net::NodeRole::kOther, "b");
  net.add_duplex(a, b, sim::BitRate{100e6}, 0.001, 1 << 20);   // direct
  net.add_duplex(a, m, sim::BitRate{100e6}, 0.001, 1 << 20);   // detour, same width
  net.add_duplex(m, b, sim::BitRate{100e6}, 0.001, 1 << 20);
  net.build_routes();
  const auto r = widest_path(net, a, b,
                             [](net::LinkId) { return sim::BitRate{50e6}; });
  EXPECT_EQ(r.path.size(), 1u);
}

TEST(RoutePinning, PinnedDataFollowsExplicitPath) {
  sim::Simulator sim(1);
  net::LeafSpine ls(sim, small_cfg());
  // Default BFS route for server0->server5 uses spine 0 (lowest ids).
  // Pin the flow through spine 1 and verify traffic on its links.
  std::vector<net::LinkId> via_spine1 = {
      ls.server_uplink(0), ls.leaf_to_spine(0, 1), ls.spine_to_leaf(2, 1),
      ls.server_downlink(5)};
  transport::TransportManager tm(ls.net());
  int done = 0;
  tm.set_completion_callback([&](const transport::FlowRecord&) { ++done; });
  const net::FlowId id = tm.next_flow_id();
  ls.net().pin_flow_route(id, via_spine1);
  tm.start_scda_flow(ls.servers()[0], ls.servers()[5], 500'000, sim::BitRate{50e6},
                    sim::BitRate{50e6});
  sim.run_until(scda::sim::secs(30.0));
  EXPECT_EQ(done, 1);
  EXPECT_GT(ls.net().link(ls.leaf_to_spine(0, 1)).stats().tx_bytes, 400'000u);
  EXPECT_EQ(ls.net().link(ls.leaf_to_spine(0, 0)).stats().tx_packets, 0u);
}

TEST(RoutePinning, BadPathsRejected) {
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  EXPECT_THROW(ls.net().pin_flow_route(scda::net::FlowId{1}, {}),
               std::invalid_argument);
  // Non-contiguous: server uplink then an unrelated spine-gw link.
  EXPECT_THROW(
      ls.net().pin_flow_route(scda::net::FlowId{1},
                              {ls.server_uplink(0), ls.server_uplink(3)}),
      std::invalid_argument);
}

TEST(RoutePinning, UnpinRestoresDefaultRouting) {
  sim::Simulator sim(1);
  net::LeafSpine ls(sim, small_cfg());
  std::vector<net::LinkId> via_spine1 = {
      ls.server_uplink(0), ls.leaf_to_spine(0, 1), ls.spine_to_leaf(2, 1),
      ls.server_downlink(5)};
  ls.net().pin_flow_route(scda::net::FlowId{7}, via_spine1);
  EXPECT_TRUE(ls.net().has_pinned_route(scda::net::FlowId{7}));
  ls.net().unpin_flow_route(scda::net::FlowId{7});
  EXPECT_FALSE(ls.net().has_pinned_route(scda::net::FlowId{7}));
}

TEST(GeneralTopologyAllocation, FairSharesOnLeafSpine) {
  // The allocator is topology-agnostic: two pinned flows sharing one
  // fabric link converge to half its capacity each.
  sim::Simulator sim;
  net::LeafSpine ls(sim, small_cfg());
  core::ScdaParams params;
  params.alpha = 1.0;
  core::RateAllocator alloc(ls.net(), params);
  std::vector<net::LinkId> shared = {ls.server_uplink(0),
                                     ls.leaf_to_spine(0, 0)};
  alloc.register_flow_on_path(scda::net::FlowId{1}, shared);
  alloc.register_flow_on_path(scda::net::FlowId{2}, {ls.server_uplink(1),
                                  ls.leaf_to_spine(0, 0)});
  for (int i = 0; i < 50; ++i) alloc.tick();
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 50e6, 1e5);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 50e6, 1e5);
}

}  // namespace
}  // namespace scda
