// Tests for the OpenFlow-style SJF queue discipline (paper section IV-B).
#include <gtest/gtest.h>

#include "net/link.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"

namespace scda::net {
namespace {

class SjfQueueTest : public ::testing::Test {
 protected:
  SjfQueueTest()
      : link_(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.001,
              1 << 20) {
    link_.set_discipline(QueueDiscipline::kSjf);
    link_.set_deliver([this](Packet&& p) { order_.push_back(p.flow); });
  }

  Packet pkt(FlowId flow) {
    return make_data(flow, scda::net::NodeId{0}, scda::net::NodeId{1}, 0, 1000,
                     scda::sim::secs(0.0));
  }

  sim::Simulator sim_;
  Link link_;
  std::vector<FlowId> order_;
};

TEST_F(SjfQueueTest, YoungFlowOvertakesQueuedElder) {
  // Flow 1 fills the queue; flow 2's first packet arrives later but must
  // be served before flow 1's backlog (flow 2 has sent 0 packets).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{1})));
  }
  ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{2})));
  sim_.run();
  ASSERT_EQ(order_.size(), 6u);
  // The first packet (already in transmission) is flow 1; the second
  // served packet must be flow 2.
  EXPECT_EQ(order_[0], FlowId{1});
  EXPECT_EQ(order_[1], FlowId{2});
}

TEST_F(SjfQueueTest, AlternatesBetweenEqualCountFlows) {
  // Two flows with equal backlogs are served in near round-robin, because
  // serving one increments its count and hands the next slot to the other.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{1})));
    ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{2})));
  }
  sim_.run();
  ASSERT_EQ(order_.size(), 8u);
  int alternations = 0;
  for (std::size_t i = 1; i < order_.size(); ++i)
    if (order_[i] != order_[i - 1]) ++alternations;
  EXPECT_GE(alternations, 5);
}

TEST_F(SjfQueueTest, FifoDisciplinePreservesArrivalOrder) {
  link_.set_discipline(QueueDiscipline::kFifo);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{1})));
  }
  ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{2})));
  ASSERT_TRUE(link_.enqueue(pkt(scda::net::FlowId{1})));
  sim_.run();
  EXPECT_EQ(order_, (std::vector<FlowId>{FlowId{1}, FlowId{1}, FlowId{1},
                                         FlowId{2}, FlowId{1}}));
}

TEST(SjfEndToEnd, ShortTcpFlowFinishesFasterUnderSjf) {
  // A long TCP flow saturates a shared link; a short flow starts late.
  // With SJF switches the short flow's packets jump the elder's queue, so
  // its FCT improves versus FIFO.
  const auto run = [](QueueDiscipline d) {
    sim::Simulator sim(3);
    Network net(sim);
    const auto a = net.add_node(NodeRole::kClient, "a");
    const auto b = net.add_node(NodeRole::kServer, "b");
    net.add_duplex(a, b, sim::BitRate{20e6}, 0.005, 64 * 1500);
    net.build_routes();
    net.link(net.link_between(a, b)).set_discipline(d);
    transport::TransportManager tm(net);
    double short_fct = -1;
    tm.set_completion_callback(
        [&](const transport::FlowRecord& r) {
          if (r.size_bytes < 1'000'000) short_fct = r.fct();
        });
    tm.start_tcp_flow(a, b, 30'000'000);  // elephant
    sim.post_at(scda::sim::secs(3.0),
                [&] { tm.start_tcp_flow(a, b, 150'000); });
    sim.run_until(scda::sim::secs(60.0));
    return short_fct;
  };
  const double fifo = run(QueueDiscipline::kFifo);
  const double sjf = run(QueueDiscipline::kSjf);
  ASSERT_GT(fifo, 0);
  ASSERT_GT(sjf, 0);
  EXPECT_LT(sjf, fifo);
}

}  // namespace
}  // namespace scda::net
