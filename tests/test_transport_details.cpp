// Focused transport-internals tests: RTO arming/backoff, Karn's rule,
// SRTT convergence, window accounting and completion edge cases.
#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/receiver.h"
#include "transport/transport_manager.h"

namespace scda::transport {
namespace {

struct Rig {
  explicit Rig(double cap = 10e6, double delay = 0.005,
               std::int64_t qlim = 1 << 20) {
    sim = std::make_unique<sim::Simulator>(1);
    net = std::make_unique<net::Network>(*sim);
    a = net->add_node(net::NodeRole::kClient, "a");
    b = net->add_node(net::NodeRole::kServer, "b");
    auto [f, r] = net->add_duplex(a, b, sim::BitRate{cap}, delay, qlim);
    ab = f;
    ba = r;
    net->build_routes();
    tm = std::make_unique<TransportManager>(*net);
    tm->set_completion_callback(
        [this](const FlowRecord& rec) { completed.push_back(rec.id); });
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<TransportManager> tm;
  net::NodeId a{}, b{};
  net::LinkId ab{}, ba{};
  std::vector<net::FlowId> completed;
};

TEST(TransportDetails, SrttConvergesToPathRtt) {
  Rig rig;
  auto h = rig.tm->start_scda_flow(rig.a, rig.b, 2'000'000, sim::BitRate{5e6},
                               sim::BitRate{5e6});
  rig.sim->run_until(scda::sim::secs(10.0));
  // Path RTT: 2*5ms propagation + serialization (1500B @ 10M ~ 1.2 ms)
  // + ack serialization. Converged SRTT must be close to that.
  EXPECT_GT(h.sender->srtt(), 0.010);
  EXPECT_LT(h.sender->srtt(), 0.016);
}

TEST(TransportDetails, KarnsRuleNoRttFromRetransmits) {
  // 100% loss for a while: every packet retransmitted after the blackout
  // carries ts=0 for the first (Karn-suppressed) copies. The SRTT after
  // recovery must still be sane (not contaminated by the blackout span).
  Rig rig;
  rig.net->link(rig.ab).set_error_model(1.0, &rig.sim->rng());
  auto h = rig.tm->start_scda_flow(rig.a, rig.b, 100'000, sim::BitRate{5e6},
                               sim::BitRate{5e6});
  rig.sim->post_at(scda::sim::secs(3.0), [&] {
    rig.net->link(rig.ab).set_error_model(0.0, nullptr);
  });
  rig.sim->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(rig.completed.size(), 1u);
  EXPECT_GT(h.sender->stats().timeouts, 0u);
  // A contaminated sample would push SRTT towards seconds.
  EXPECT_LT(h.sender->srtt(), 0.5);
}

TEST(TransportDetails, RtoBacksOffExponentially) {
  // Total blackout: timeouts fire with doubling intervals, so over 10
  // simulated seconds only a handful of timeouts occur (1+2+4+... pattern)
  // rather than one per initial RTO.
  Rig rig;
  rig.net->link(rig.ab).set_error_model(1.0, &rig.sim->rng());
  auto h = rig.tm->start_scda_flow(rig.a, rig.b, 50'000, sim::BitRate{5e6},
                               sim::BitRate{5e6});
  rig.sim->run_until(scda::sim::secs(15.0));
  EXPECT_FALSE(h.sender->fully_acked());
  EXPECT_GE(h.sender->stats().timeouts, 2u);
  EXPECT_LE(h.sender->stats().timeouts, 6u);  // backoff caps the count
}

TEST(TransportDetails, SenderStopsAfterFullAck) {
  Rig rig;
  auto h = rig.tm->start_scda_flow(rig.a, rig.b, 100'000, sim::BitRate{8e6},
                               sim::BitRate{8e6});
  rig.sim->run_until(scda::sim::secs(10.0));
  ASSERT_TRUE(h.sender->fully_acked());
  const auto sent = h.sender->stats().data_packets_sent;
  rig.sim->run_until(scda::sim::secs(30.0));  // nothing further should happen
  EXPECT_EQ(h.sender->stats().data_packets_sent, sent);
  EXPECT_EQ(rig.net->link(rig.ab).queue_bytes(), 0);
}

TEST(TransportDetails, CompletionReportedExactlyOncePerFlow) {
  Rig rig;
  for (int i = 0; i < 10; ++i)
    rig.tm->start_scda_flow(rig.a, rig.b, 50'000, sim::BitRate{2e6},
                               sim::BitRate{2e6});
  rig.sim->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(rig.completed.size(), 10u);
  std::set<net::FlowId> unique(rig.completed.begin(), rig.completed.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(TransportDetails, FlowRecordsTrackLifecycle) {
  Rig rig;
  const auto id = rig.tm->start_tcp_flow(rig.a, rig.b, 30'000);
  const FlowRecord& rec = rig.tm->record(id);
  EXPECT_FALSE(rec.finished());
  EXPECT_DOUBLE_EQ(rec.fct(), -1.0);
  rig.sim->run_until(scda::sim::secs(10.0));
  EXPECT_TRUE(rec.finished());
  EXPECT_GT(rec.fct(), 0.0);
  EXPECT_EQ(rec.transport, TransportKind::kTcp);
}

TEST(TransportDetails, MinRcvwNeverStallsScdaFlow) {
  // Receiver window floored at one MTU: even a zero-rate advertisement
  // keeps one segment per RTT moving and the flow finishes.
  Rig rig;
  auto h = rig.tm->start_scda_flow(rig.a, rig.b, 30'000, sim::BitRate{5e6},
                               sim::BitRate{5e6});
  h.receiver->set_rcvw_bytes(0);
  rig.sim->run_until(scda::sim::secs(30.0));
  EXPECT_EQ(rig.completed.size(), 1u);
}

TEST(TransportDetails, TwoCompetingScdaFlowsShareFairlyWhenRatesSay) {
  Rig rig;
  auto h1 = rig.tm->start_scda_flow(rig.a, rig.b, 4'000'000, sim::BitRate{5e6},
                               sim::BitRate{5e6});
  auto h2 = rig.tm->start_scda_flow(rig.a, rig.b, 4'000'000, sim::BitRate{5e6},
                               sim::BitRate{5e6});
  (void)h1;
  (void)h2;
  rig.sim->run_until(scda::sim::secs(60.0));
  ASSERT_EQ(rig.completed.size(), 2u);
  const double f1 = rig.tm->record(net::FlowId{0}).fct();
  const double f2 = rig.tm->record(net::FlowId{1}).fct();
  EXPECT_NEAR(f1 / f2, 1.0, 0.1);  // both paced at 5M on a 10M link
}

}  // namespace
}  // namespace scda::transport
