#include "core/sla.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace scda::core {
namespace {

class SlaTest : public ::testing::Test {
 protected:
  SlaTest() : net_(sim_) {
    a_ = net_.add_node(net::NodeRole::kOther, "a");
    b_ = net_.add_node(net::NodeRole::kOther, "b");
    auto [ab, ba] = net_.add_duplex(a_, b_, sim::BitRate{100e6}, 0.001, 1 << 20);
    link_ = ab;
    (void)ba;
    net_.build_routes();
  }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId a_{}, b_{};
  net::LinkId link_{};
};

TEST_F(SlaTest, EventsAreRecorded) {
  SlaManager sla(net_);
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(1.5));
  ASSERT_EQ(sla.events().size(), 1u);
  EXPECT_EQ(sla.events()[0].link, link_);
  EXPECT_DOUBLE_EQ(sla.events()[0].demand.bps(), 120e6);
  EXPECT_DOUBLE_EQ(sla.events()[0].capacity.bps(), 95e6);
  EXPECT_DOUBLE_EQ(sla.events()[0].time.seconds(), 1.5);
}

TEST_F(SlaTest, RecentlyViolatedWithinCooldown) {
  SlaManager sla(net_);
  sla.set_cooldown(1.0);
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(5.0));
  EXPECT_TRUE(sla.recently_violated(link_, scda::sim::secs(5.5)));
  EXPECT_FALSE(sla.recently_violated(link_, scda::sim::secs(6.5)));
}

TEST_F(SlaTest, OtherLinksUnaffected) {
  SlaManager sla(net_);
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(5.0));
  EXPECT_FALSE(
      sla.recently_violated(net::LinkId{link_.value() + 1}, sim::secs(5.1)));
}

TEST_F(SlaTest, CapacityBoostAfterThreshold) {
  SlaManager sla(net_);
  sla.enable_capacity_boost(/*threshold=*/3, /*boost=*/2.0);
  const double c0 = net_.link(link_).capacity_bps();
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(1.0));
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(1.1));
  EXPECT_DOUBLE_EQ(net_.link(link_).capacity_bps(), c0);
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(1.2));
  EXPECT_DOUBLE_EQ(net_.link(link_).capacity_bps(), 2.0 * c0);
  EXPECT_EQ(sla.boosts_applied(), 1u);
}

TEST_F(SlaTest, BoostAppliedAtMostOncePerLink) {
  SlaManager sla(net_);
  sla.enable_capacity_boost(1, 2.0);
  sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(1.0));
  sla.on_violation(link_, sim::BitRate{300e6}, sim::BitRate{95e6}, scda::sim::secs(2.0));
  EXPECT_DOUBLE_EQ(net_.link(link_).capacity_bps(), 200e6);
  EXPECT_EQ(sla.boosts_applied(), 1u);
}

TEST_F(SlaTest, BoostDisabledByDefault) {
  SlaManager sla(net_);
  const double c0 = net_.link(link_).capacity_bps();
  for (int i = 0; i < 10; ++i) {
    sla.on_violation(link_, sim::BitRate{120e6}, sim::BitRate{95e6}, scda::sim::secs(i));
  }
  EXPECT_DOUBLE_EQ(net_.link(link_).capacity_bps(), c0);
  EXPECT_EQ(sla.boosts_applied(), 0u);
}

}  // namespace
}  // namespace scda::core
