#include "util/histogram.h"

#include <gtest/gtest.h>

namespace scda::util {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinIndexing) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.index(0.5), 0u);
  EXPECT_EQ(h.index(9.5), 9u);
  EXPECT_EQ(h.index(5.0), 5u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdgesAndMidpoints) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_mid(2), 5.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0, 5);
  EXPECT_EQ(h.count(1), 5u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileOnUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, QuantileOnEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

}  // namespace
}  // namespace scda::util
