// Assorted edge-case coverage across modules: units, hierarchy level
// queries, cloud append failures, SJF-with-loss interaction, and priority
// reads.
#include <gtest/gtest.h>

#include "core/cloud.h"
#include "core/hierarchy.h"
#include "net/link.h"
#include "util/units.h"

namespace scda {
namespace {

using transport::ContentClass;

// --- units -------------------------------------------------------------------

TEST(Units, ConversionsAreExact) {
  static_assert(util::milliseconds(10) == 0.01);
  static_assert(util::mbps(500).bps() == 500e6);
  static_assert(util::gbps(1.5).bps() == 1.5e9);
  EXPECT_EQ(util::megabytes(8), 8'000'000);
  EXPECT_EQ(util::kilobytes(2.5), 2'500);
  EXPECT_DOUBLE_EQ(util::bits_of_bytes(1000), 8000.0);
  EXPECT_EQ(util::bytes_of_bits(8000.0), 1000);
}

// --- hierarchy level queries -------------------------------------------------

TEST(HierarchyLevels, LowerLevelIgnoresCoreCongestion) {
  sim::Simulator sim(1);
  net::TopologyConfig tc;
  tc.n_agg = 2;
  tc.tors_per_agg = 2;
  tc.servers_per_tor = 2;
  tc.n_clients = 2;
  tc.base_bps = sim::BitRate{100e6};
  tc.core_gw_mult = 1.0;  // make the core-gw link the tight spot
  net::ThreeTierTree topo(sim, tc);
  core::ScdaParams params;
  params.alpha = 1.0;
  core::RateAllocator alloc(topo.net(), params);
  core::Hierarchy hier(topo, alloc);

  // Saturate the core->gw uplink with many flows.
  for (net::FlowId f{1}; f <= net::FlowId{8}; ++f)
    alloc.register_flow(f, topo.servers()[f.index() % 8],
                        topo.clients()[0]);
  for (int i = 0; i < 60; ++i) alloc.tick();
  hier.update();

  // At level 3 every server's uplink value is capped by the core link;
  // at level 0 the access links still advertise their full rate.
  EXPECT_LT(hier.server_value_up(0, 3).bps(), 40e6);
  EXPECT_GT(hier.server_value_up(0, 0).bps(), 80e6);
  const core::BestServer lvl0 =
      hier.best_server(core::SelectionMetric::kUp, /*level=*/0);
  EXPECT_GT(lvl0.value.bps(), 80e6);
}

// --- cloud append edge cases -------------------------------------------------

core::CloudConfig tiny_cloud() {
  core::CloudConfig cfg;
  cfg.topology.n_agg = 1;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 2;
  cfg.topology.n_clients = 2;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  return cfg;
}

TEST(CloudAppend, UnknownContentCountsAsFailedWrite) {
  sim::Simulator sim(2);
  core::Cloud cloud(sim, tiny_cloud());
  EXPECT_TRUE(cloud.append(0, /*content=*/99, 1000));  // accepted async...
  sim.run_until(scda::sim::secs(5.0));
  EXPECT_EQ(cloud.failed_writes(), 1u);  // ...but fails at the NNS
}

TEST(CloudAppend, InvalidArgumentsRejectedSynchronously) {
  sim::Simulator sim(2);
  core::Cloud cloud(sim, tiny_cloud());
  EXPECT_FALSE(cloud.append(999, 1, 1000));
  EXPECT_FALSE(cloud.append(0, 1, 0));
}

TEST(CloudAppend, GrowsStoredSizeAndMetadata) {
  sim::Simulator sim(3);
  core::Cloud cloud(sim, tiny_cloud());
  cloud.write(0, 1, util::kilobytes(100));
  sim.run_until(scda::sim::secs(5.0));
  cloud.append(1, 1, util::kilobytes(50));
  sim.run_until(scda::sim::secs(10.0));
  const auto* meta = cloud.fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->size_bytes, util::kilobytes(150));
  EXPECT_EQ(meta->writes, 2u);
  const auto primary = static_cast<std::size_t>(meta->replicas.front());
  EXPECT_EQ(cloud.servers()[primary].stored_bytes(1),
            util::kilobytes(150));
}

TEST(CloudRead, PriorityReadsFinishFasterUnderContention) {
  sim::Simulator sim(4);
  auto cfg = tiny_cloud();
  core::Cloud cloud(sim, cfg);
  cloud.write(0, 1, util::megabytes(5));
  sim.run_until(scda::sim::secs(10.0));
  double hi = -1, lo = -1;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const core::CloudOp& op) {
        if (op.kind != core::CloudOp::Kind::kRead) return;
        if (rec.priority > 1.0) {
          hi = rec.fct();
        } else {
          lo = rec.fct();
        }
      });
  // Two concurrent reads of the same 5 MB content from the same client:
  // the prioritized one must finish first.
  cloud.read(1, 1, /*priority=*/4.0);
  cloud.read(1, 1, /*priority=*/1.0);
  sim.run_until(scda::sim::secs(60.0));
  ASSERT_GT(hi, 0);
  ASSERT_GT(lo, 0);
  EXPECT_LT(hi, lo);
}

// --- SJF discipline under loss -----------------------------------------------

TEST(SjfWithLoss, FlowsCompleteWithBothFeaturesActive) {
  sim::Simulator sim(5);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  auto [ab, ba] = net.add_duplex(a, b, sim::BitRate{20e6}, 0.005, 64 * 1500);
  (void)ba;
  net.build_routes();
  net.link(ab).set_discipline(net::QueueDiscipline::kSjf);
  net.link(ab).set_error_model(0.01, &sim.rng());
  transport::TransportManager tm(net);
  int done = 0;
  tm.set_completion_callback([&](const transport::FlowRecord&) { ++done; });
  tm.start_tcp_flow(a, b, 2'000'000);
  tm.start_tcp_flow(a, b, 100'000);
  tm.start_scda_flow(a, b, 500'000, sim::BitRate{5e6}, sim::BitRate{5e6});
  sim.run_until(scda::sim::secs(300.0));
  EXPECT_EQ(done, 3);
}

}  // namespace
}  // namespace scda
