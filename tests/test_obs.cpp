// Tests for the observability layer: MetricsRegistry semantics and JSON
// stability, the TraceRecorder flight-recorder ring, the run-level
// determinism contracts (identical seeds -> identical metrics snapshot and
// byte-identical trace files), and the zero-overhead contract (metrics
// disabled -> zero heap allocations on the event hot path).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "runner/experiment.h"
#include "sim/simulator.h"
#include "stats/run_result.h"
#include "util/units.h"
#include "workload/generators.h"

// ------------------------------------------- global allocation counter --
// Counts every route through the (replaced) global operator new. The
// zero-allocation test samples it around a warmed-up event loop; everything
// else ignores it. Replacement operators must have external linkage, so
// only the counter itself is file-static.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace scda;

// ------------------------------------------------------ MetricsRegistry --

TEST(Metrics, CounterGaugeHistogramSemantics) {
  obs::MetricsRegistry reg;
  reg.add("a.counter", 2);
  reg.add("a.counter", 3);
  reg.set("b.gauge", 7.0);
  reg.set("b.gauge", 1.5);  // last write wins
  reg.observe("c.hist", 4.0);
  reg.observe("c.hist", 2.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("a.counter"), 5.0);
  EXPECT_EQ(snap.value("b.gauge"), 1.5);
  // Histograms expand into scalar sub-entries.
  EXPECT_EQ(snap.value("c.hist.count"), 2.0);
  EXPECT_EQ(snap.value("c.hist.mean"), 3.0);
  EXPECT_EQ(snap.value("c.hist.min"), 2.0);
  EXPECT_EQ(snap.value("c.hist.max"), 4.0);
  EXPECT_TRUE(snap.has("a.counter"));
  EXPECT_FALSE(snap.has("c.hist"));  // parent id replaced by sub-entries
  EXPECT_EQ(snap.value("absent", -1.0), -1.0);
}

TEST(Metrics, SnapshotIsIdSortedWithStableJson) {
  obs::MetricsRegistry reg;
  reg.set("zz.last", 1.0);
  reg.add("aa.first", 1.0);
  reg.observe("mm.hist", 3.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 6u);
  for (std::size_t i = 1; i < snap.metrics.size(); ++i)
    EXPECT_LT(snap.metrics[i - 1].id, snap.metrics[i].id);
  EXPECT_EQ(snap.to_json(),
            "{\"aa.first\":1,\"mm.hist.count\":1,\"mm.hist.max\":3,"
            "\"mm.hist.mean\":3,\"mm.hist.min\":3,\"zz.last\":1}");
}

TEST(Metrics, EmptyRegistrySnapshotsToEmptyObject) {
  const obs::MetricsRegistry reg;
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.to_json(), "{}");
}

// -------------------------------------------------------- TraceRecorder --

std::string trace_json(const obs::TraceRecorder& tr) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  tr.write_json(f);
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(Trace, RecordsAllPhases) {
  obs::TraceRecorder tr(64);
  tr.async_begin(scda::sim::secs(0.5), "flow", "tcp_flow", 7,
                 {{"bytes", 1000.0}});
  tr.instant(scda::sim::secs(1.0), "net", "packet_drop", obs::kTrackNet,
             {{"link", 3.0}});
  tr.complete(scda::sim::secs(1.5), scda::sim::secs(0.0), "control",
              "ra_round", obs::kTrackControl);
  tr.counter(scda::sim::secs(2.0), "active_flows", 5.0);
  tr.async_end(scda::sim::secs(2.5), "flow", "tcp_flow", 7, {{"fct_s", 2.0}});
  EXPECT_EQ(tr.recorded(), 5u);
  EXPECT_EQ(tr.dropped(), 0u);

  const std::string json = trace_json(tr);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"packet_drop\""), std::string::npos);
  // Timestamps are microseconds: 0.5 s -> 500000.
  EXPECT_NE(json.find("\"ts\":500000.000"), std::string::npos);
  // Track metadata and the flight-recorder totals are appended.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  obs::TraceRecorder tr(8);
  for (int i = 0; i < 20; ++i)
    tr.instant(scda::sim::secs(static_cast<double>(i)), "net", "tick",
               obs::kTrackNet);
  EXPECT_EQ(tr.capacity(), 8u);
  EXPECT_EQ(tr.size(), 8u);
  EXPECT_EQ(tr.recorded(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);

  // Flight-recorder semantics: the 8 newest survive (indices 12..19) and
  // serialization walks them oldest-first.
  const std::string json = trace_json(tr);
  EXPECT_EQ(json.find("\"ts\":11000000.000"), std::string::npos);
  const std::size_t oldest = json.find("\"ts\":12000000.000");
  const std::size_t newest = json.find("\"ts\":19000000.000");
  ASSERT_NE(oldest, std::string::npos);
  ASSERT_NE(newest, std::string::npos);
  EXPECT_LT(oldest, newest);
}

// ------------------------------------------------ run-level determinism --

runner::ExperimentConfig tiny_experiment(std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.name = "obs-tiny";
  cfg.topology.n_agg = 1;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 2;
  cfg.topology.n_clients = 4;
  cfg.topology.base_bps = util::mbps(100);
  cfg.driver.end_time_s = 3.0;
  cfg.sim_time_s = 6.0;
  cfg.seed = seed;
  cfg.make_generator = [] {
    workload::ParetoPoissonConfig w;
    w.arrival_rate = 10.0;
    return std::make_unique<workload::ParetoPoissonWorkload>(w);
  };
  return cfg;
}

stats::RunResult run_tiny(const runner::ExperimentConfig& cfg) {
  return runner::run_once(cfg, core::PlacementPolicy::kScda,
                          transport::TransportKind::kScda,
                          runner::AfctBinning{});
}

TEST(Obs, MetricsSnapshotIsDeterministicAcrossIdenticalSeeds) {
  const stats::RunResult a = run_tiny(tiny_experiment(11));
  const stats::RunResult b = run_tiny(tiny_experiment(11));
  EXPECT_FALSE(a.metrics.empty());
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
  // A different seed produces a different simulation, hence different
  // metric values.
  const stats::RunResult c = run_tiny(tiny_experiment(12));
  EXPECT_NE(a.metrics.to_json(), c.metrics.to_json());
  // The catalog's headline ids are present.
  EXPECT_TRUE(a.metrics.has("sim.events.popped"));
  EXPECT_TRUE(a.metrics.has("transport.flows_completed"));
  EXPECT_TRUE(a.metrics.has("net.link.tx_packets"));
  EXPECT_TRUE(a.metrics.has("core.control.ticks"));
  EXPECT_GT(a.metrics.value("sim.events.popped"), 0.0);
}

TEST(Obs, MetricsCanBeDisabledPerRun) {
  runner::ExperimentConfig cfg = tiny_experiment(11);
  cfg.obs.metrics = false;
  const stats::RunResult r = run_tiny(cfg);
  EXPECT_TRUE(r.metrics.empty());
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(Obs, TraceFilesAreByteIdenticalAcrossIdenticalSeeds) {
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/scda_obs_trace_a.json";
  const std::string path_b = dir + "/scda_obs_trace_b.json";

  runner::ExperimentConfig cfg = tiny_experiment(11);
  cfg.obs.trace_path = path_a;
  (void)run_tiny(cfg);
  cfg.obs.trace_path = path_b;
  (void)run_tiny(cfg);

  const std::string a = read_file(path_a);
  const std::string b = read_file(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The file is a Chrome trace-event object with flow spans in it.
  EXPECT_EQ(a.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(a.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(a.find("scda_flow"), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// --------------------------------------------------- zero-overhead path --

TEST(Obs, DisabledHotPathDoesNotAllocate) {
  sim::Simulator sim(1);
  ASSERT_EQ(sim.observability(), nullptr);  // off by default

  // The BM_EventLoopThroughput shape: self-rescheduling timer chains, the
  // pattern of pacing and periodic control processes.
  struct Chain {
    sim::Simulator* sim = nullptr;
    std::uint64_t budget = 0;
    double period = 1e-3;
    void fire() {
      if (--budget > 0) {
        sim->post_in(scda::sim::secs(period), [this] { fire(); });
      }
    }
  };
  std::vector<Chain> chains(64);
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i].sim = &sim;
    chains[i].period = 1e-3 * (1.0 + 1e-4 * static_cast<double>(i));
  }
  const auto drive = [&](std::uint64_t budget) {
    for (Chain& c : chains) {
      c.budget = budget;
      sim.post_in(scda::sim::secs(c.period), [&c] { c.fire(); });
    }
    sim.run();
  };

  // Warm-up: grows the event pool and heap to steady state.
  drive(500);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  drive(500);
  const std::uint64_t during =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0u)
      << "event hot path allocated with observability disabled";
}

}  // namespace
