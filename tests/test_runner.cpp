// Tests for the sweep runner: seed derivation, the worker pool, logger
// thread-safety, cross-instance Simulator isolation, and the headline
// determinism contract — aggregated sweep output is byte-identical no
// matter how many workers executed it.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cloud.h"
#include "runner/experiment.h"
#include "runner/seed_sequence.h"
#include "runner/sweep.h"
#include "runner/worker_pool.h"
#include "sim/simulator.h"
#include "stats/aggregate.h"
#include "stats/collector.h"
#include "util/log.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace {

using namespace scda;

// ---------------------------------------------------------------- seeds --

TEST(SeedSequence, ReplicationZeroIsBaseSeed) {
  EXPECT_EQ(runner::derive_seed(0x5cda2013ULL, 0), 0x5cda2013ULL);
  EXPECT_EQ(runner::derive_seed(7, 0), 7u);
}

TEST(SeedSequence, DerivedSeedsAreDeterministicAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 1000; ++r) {
    const std::uint64_t s = runner::derive_seed(42, r);
    EXPECT_EQ(s, runner::derive_seed(42, r));  // pure function
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a long sweep
  // Different base seeds give unrelated streams.
  EXPECT_NE(runner::derive_seed(1, 5), runner::derive_seed(2, 5));
}

// ----------------------------------------------------------- WorkerPool --

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 8u}) {
    runner::WorkerPool pool(workers);
    std::vector<std::atomic<int>> hits(100);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ParallelMapPreservesOrder) {
  runner::WorkerPool pool(4);
  std::vector<int> in(257);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int>(i);
  const auto out = runner::parallel_map<long>(
      pool, in, [](int x, std::size_t idx) {
        EXPECT_EQ(static_cast<std::size_t>(x), idx);
        return static_cast<long>(x) * 3;
      });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<long>(i) * 3);
}

TEST(WorkerPool, ReportsLowestIndexException) {
  runner::WorkerPool pool(4);
  // Several jobs throw; the rethrown exception must be job 3's (the lowest
  // throwing index) regardless of scheduling.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> completed{0};
    try {
      pool.run(64, [&](std::size_t i) {
        if (i == 3 || i == 40 || i == 63)
          throw std::runtime_error("job " + std::to_string(i));
        completed.fetch_add(1);
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 3");
    }
    EXPECT_EQ(completed.load(), 61);  // no short-circuit: the rest all ran
  }
}

TEST(WorkerPool, ReusableAcrossBatches) {
  runner::WorkerPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<int> sum{0};
    pool.run(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(WorkerPool, DefaultWorkersRespectsEnv) {
  ::setenv("SCDA_WORKERS", "3", 1);
  EXPECT_EQ(runner::default_workers(), 3u);
  ::unsetenv("SCDA_WORKERS");
  EXPECT_GE(runner::default_workers(), 1u);
}

// ------------------------------------------------------------------ Log --

TEST(Log, ConcurrentWritersProduceIntactLines) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  util::Log::set_sink(sink);
  util::Log::set_level(util::LogLevel::kInfo);
  constexpr int kThreads = 4, kLines = 500;
  {
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([t] {
        for (int i = 0; i < kLines; ++i)
          SCDA_LOG_INFO("writer %d line %d end", t, i);
      });
    }
    for (auto& th : ts) th.join();
  }
  util::Log::set_level(util::LogLevel::kWarn);
  util::Log::set_sink(stderr);

  std::fflush(sink);
  std::rewind(sink);
  char buf[256];
  int lines = 0;
  while (std::fgets(buf, sizeof buf, sink)) {
    ++lines;
    int t = -1, i = -1;
    // Every line must be a complete, un-interleaved record.
    ASSERT_EQ(std::sscanf(buf, "[INFO ] writer %d line %d end", &t, &i), 2)
        << "corrupt line: " << buf;
    EXPECT_GE(t, 0);
    EXPECT_LT(t, kThreads);
  }
  std::fclose(sink);
  EXPECT_EQ(lines, kThreads * kLines);
}

// ------------------------------------------- cross-instance isolation ----

runner::ExperimentConfig tiny_experiment(std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.name = "tiny";
  cfg.topology.n_agg = 1;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 2;
  cfg.topology.n_clients = 4;
  cfg.topology.base_bps = util::mbps(100);
  cfg.driver.end_time_s = 3.0;
  cfg.sim_time_s = 6.0;
  cfg.seed = seed;
  cfg.make_generator = [] {
    workload::ParetoPoissonConfig w;
    w.arrival_rate = 10.0;
    return std::make_unique<workload::ParetoPoissonWorkload>(w);
  };
  return cfg;
}

void expect_identical(const stats::RunResult& a, const stats::RunResult& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  EXPECT_EQ(a.summary.mean_fct_s, b.summary.mean_fct_s);
  EXPECT_EQ(a.summary.goodput_bps, b.summary.goodput_bps);
  EXPECT_EQ(a.mean_throughput_kbs, b.mean_throughput_kbs);
  EXPECT_EQ(a.energy_j, b.energy_j);
  ASSERT_EQ(a.fct_cdf.size(), b.fct_cdf.size());
  for (std::size_t i = 0; i < a.fct_cdf.size(); ++i)
    EXPECT_EQ(a.fct_cdf[i].x, b.fct_cdf[i].x);
}

/// A run stepped manually in time slices, so two instances can interleave.
struct SlicedRun {
  explicit SlicedRun(const runner::ExperimentConfig& cfg)
      : config(cfg), sim(cfg.seed) {
    core::CloudConfig cc;
    cc.topology = cfg.topology;
    cc.params = cfg.params;
    cloud = std::make_unique<core::Cloud>(sim, cc);
    collector = std::make_unique<stats::FlowStatsCollector>(*cloud);
    driver = std::make_unique<workload::WorkloadDriver>(
        *cloud, cfg.make_generator(), cfg.driver);
    driver->start();
  }
  std::uint64_t advance_to(double t) {
    return sim.run_until(scda::sim::secs(t));
  }

  runner::ExperimentConfig config;
  sim::Simulator sim;
  std::unique_ptr<core::Cloud> cloud;
  std::unique_ptr<stats::FlowStatsCollector> collector;
  std::unique_ptr<workload::WorkloadDriver> driver;
};

TEST(Isolation, InterleavedSimulatorsMatchSoloRuns) {
  // Reference: each seed run alone, straight through.
  SlicedRun solo_a(tiny_experiment(1));
  SlicedRun solo_b(tiny_experiment(2));
  std::uint64_t events_a = solo_a.advance_to(6.0);
  std::uint64_t events_b = solo_b.advance_to(6.0);

  // Interleaved: alternate sub-second slices between the two instances.
  SlicedRun mix_a(tiny_experiment(1));
  SlicedRun mix_b(tiny_experiment(2));
  std::uint64_t mixed_a = 0, mixed_b = 0;
  for (double t = 0.5; t <= 6.0; t += 0.5) {
    mixed_a += mix_a.advance_to(t);
    mixed_b += mix_b.advance_to(t);
  }
  EXPECT_EQ(mixed_a, events_a);
  EXPECT_EQ(mixed_b, events_b);
  const stats::Summary sa = solo_a.collector->summary();
  const stats::Summary ma = mix_a.collector->summary();
  EXPECT_EQ(sa.flows, ma.flows);
  EXPECT_EQ(sa.mean_fct_s, ma.mean_fct_s);
  EXPECT_EQ(sa.goodput_bps, ma.goodput_bps);
  const stats::Summary sb = solo_b.collector->summary();
  const stats::Summary mb = mix_b.collector->summary();
  EXPECT_EQ(sb.flows, mb.flows);
  EXPECT_EQ(sb.mean_fct_s, mb.mean_fct_s);
  EXPECT_EQ(sb.goodput_bps, mb.goodput_bps);
}

TEST(Isolation, ConcurrentSimulatorsMatchSoloRuns) {
  const runner::AfctBinning bins;
  // Reference: sequential runs.
  const stats::RunResult ref1 =
      runner::run_once(tiny_experiment(11), core::PlacementPolicy::kScda,
                       transport::TransportKind::kScda, bins);
  const stats::RunResult ref2 =
      runner::run_once(tiny_experiment(22), core::PlacementPolicy::kScda,
                       transport::TransportKind::kScda, bins);

  // Two Simulators running at the same time on different threads.
  stats::RunResult con1, con2;
  std::thread t1([&] {
    con1 = runner::run_once(tiny_experiment(11), core::PlacementPolicy::kScda,
                            transport::TransportKind::kScda, bins);
  });
  std::thread t2([&] {
    con2 = runner::run_once(tiny_experiment(22), core::PlacementPolicy::kScda,
                            transport::TransportKind::kScda, bins);
  });
  t1.join();
  t2.join();
  expect_identical(ref1, con1);
  expect_identical(ref2, con2);
}

// ------------------------------------------------- sweep determinism ----

std::string sweep_json(unsigned workers) {
  runner::SweepSpec spec;
  spec.base = tiny_experiment(0x5cda2013ULL);
  spec.arms = {
      {"SCDA", core::PlacementPolicy::kScda, transport::TransportKind::kScda},
      {"RandTCP", core::PlacementPolicy::kRandom,
       transport::TransportKind::kTcp},
  };
  spec.seeds = 3;
  runner::WorkerPool pool(workers);
  const runner::SweepResult res = runner::run_sweep(spec, pool);

  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  for (const runner::ArmSummary& s : runner::aggregate_sweep(spec, res))
    stats::emit_aggregate_json(f, s.label, s.agg);
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(Sweep, AggregatedJsonIsByteIdenticalAcrossWorkerCounts) {
  const std::string one = sweep_json(1);
  const std::string eight = sweep_json(8);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
  // Sanity: both arms and the label scheme appear.
  EXPECT_NE(one.find("\"label\":\"SCDA\""), std::string::npos);
  EXPECT_NE(one.find("\"label\":\"RandTCP\""), std::string::npos);
}

TEST(Sweep, MetricsAreCollectedConcurrentlyAndMatchSerialRuns) {
  // Each run's metrics registry is private to its run_once() call, so
  // collection must be race-free under the worker pool (this test is part
  // of the TSan shard) and per-run snapshots must not depend on how many
  // workers executed the sweep.
  runner::SweepSpec spec;
  spec.base = tiny_experiment(0x5cda2013ULL);
  spec.arms = {
      {"SCDA", core::PlacementPolicy::kScda, transport::TransportKind::kScda},
      {"RandTCP", core::PlacementPolicy::kRandom,
       transport::TransportKind::kTcp},
  };
  spec.seeds = 4;
  runner::WorkerPool serial(1);
  runner::WorkerPool pool(4);
  const runner::SweepResult one = runner::run_sweep(spec, serial);
  const runner::SweepResult four = runner::run_sweep(spec, pool);
  ASSERT_EQ(one.results.size(), four.results.size());
  for (std::size_t i = 0; i < one.results.size(); ++i) {
    EXPECT_FALSE(one.results[i].metrics.empty());
    EXPECT_EQ(one.results[i].metrics.to_json(),
              four.results[i].metrics.to_json());
  }
}

TEST(Sweep, ExpansionIsPureAndPaired) {
  runner::SweepSpec spec;
  spec.base = tiny_experiment(9);
  spec.arms = {{"A", core::PlacementPolicy::kScda,
                transport::TransportKind::kScda},
               {"B", core::PlacementPolicy::kRandom,
                transport::TransportKind::kTcp}};
  spec.grid = {{"tau", {0.01, 0.05}}, {"read_fraction", {0.0, 0.5}}};
  spec.seeds = 2;
  const auto runs = runner::expand_runs(spec);
  ASSERT_EQ(runs.size(), 4u * 2u * 2u);  // cells x arms x seeds
  for (std::size_t i = 0; i < runs.size(); ++i)
    EXPECT_EQ(runs[i].index, i);
  // Replication r of both arms shares the seed (paired comparison)...
  EXPECT_EQ(runs[0].seed, runs[2].seed);
  // ...replications within an arm do not.
  EXPECT_NE(runs[0].seed, runs[1].seed);
  // Seed index 0 is the base seed verbatim.
  EXPECT_EQ(runs[0].seed, spec.base.seed);
  // Grid values land in the config; the first axis varies slowest.
  const auto cfg_first = runner::make_run_config(spec, runs[0]);
  EXPECT_EQ(cfg_first.params.tau, 0.01);
  EXPECT_EQ(cfg_first.driver.read_fraction, 0.0);
  const auto cfg_last = runner::make_run_config(spec, runs.back());
  EXPECT_EQ(cfg_last.params.tau, 0.05);
  EXPECT_EQ(cfg_last.driver.read_fraction, 0.5);
}

TEST(Sweep, ApplyParamRejectsUnknownNames) {
  runner::ExperimentConfig cfg;
  EXPECT_THROW(runner::apply_param(cfg, "no_such_knob", 1.0),
               std::invalid_argument);
  // custom_param can extend the vocabulary.
  runner::SweepSpec spec;
  spec.base = tiny_experiment(1);
  spec.arms = {{"A", core::PlacementPolicy::kScda,
                transport::TransportKind::kScda}};
  spec.grid = {{"my_rate", {5.0}}};
  spec.custom_param = [](runner::ExperimentConfig& c, const std::string& name,
                         double v) {
    if (name != "my_rate") return false;
    c.driver.priority = v;
    return true;
  };
  const auto runs = runner::expand_runs(spec);
  const auto cfg2 = runner::make_run_config(spec, runs[0]);
  EXPECT_EQ(cfg2.driver.priority, 5.0);
}

// -------------------------------------------------------------- moments --

TEST(Aggregate, MomentsKnownValues) {
  const stats::Moments m = stats::compute_moments({2.0, 4.0, 4.0, 4.0, 6.0});
  EXPECT_EQ(m.n, 5u);
  EXPECT_DOUBLE_EQ(m.mean, 4.0);
  EXPECT_NEAR(m.stddev, 1.4142135623730951, 1e-12);  // sample (n-1) stddev
  EXPECT_NEAR(m.ci95_half, 1.96 * m.stddev / std::sqrt(5.0), 1e-12);
  EXPECT_EQ(m.min, 2.0);
  EXPECT_EQ(m.max, 6.0);

  const stats::Moments single = stats::compute_moments({3.5});
  EXPECT_EQ(single.n, 1u);
  EXPECT_EQ(single.mean, 3.5);
  EXPECT_EQ(single.stddev, 0.0);
  EXPECT_EQ(single.ci95_half, 0.0);

  const stats::Moments empty = stats::compute_moments({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

}  // namespace
