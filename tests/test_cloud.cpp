#include "core/cloud.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace scda::core {
namespace {

using transport::ContentClass;
using transport::FlowRecord;

CloudConfig small_config() {
  CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(500);
  return cfg;
}

class CloudTest : public ::testing::Test {
 protected:
  void build(CloudConfig cfg) {
    sim_ = std::make_unique<sim::Simulator>(7);
    cloud_ = std::make_unique<Cloud>(*sim_, cfg);
    cloud_->add_completion_callback(
        [this](const FlowRecord& rec, const CloudOp& op) {
          done_.push_back({rec, op});
        });
  }

  std::vector<std::pair<FlowRecord, CloudOp>> done_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cloud> cloud_;

  [[nodiscard]] std::size_t count(CloudOp::Kind k) const {
    std::size_t n = 0;
    for (const auto& [rec, op] : done_)
      if (op.kind == k) ++n;
    return n;
  }
};

TEST_F(CloudTest, WriteCompletesAndStoresContent) {
  build(small_config());
  EXPECT_TRUE(cloud_->write(0, 1, util::megabytes(4)));
  sim_->run_until(scda::sim::secs(20.0));
  EXPECT_EQ(count(CloudOp::Kind::kWrite), 1u);
  // Written once, replicated once -> two servers hold the block.
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->replicas.size(), 2u);
  EXPECT_EQ(count(CloudOp::Kind::kReplication), 1u);
  EXPECT_NE(meta->replicas[0], meta->replicas[1]);
  for (const auto s : meta->replicas)
    EXPECT_TRUE(cloud_->servers()[static_cast<std::size_t>(s)].has(1));
}

TEST_F(CloudTest, DuplicateContentIdRejected) {
  build(small_config());
  EXPECT_TRUE(cloud_->write(0, 1, 1000));
  EXPECT_FALSE(cloud_->write(1, 1, 2000));
}

TEST_F(CloudTest, InvalidArgumentsRejected) {
  build(small_config());
  EXPECT_FALSE(cloud_->write(/*client=*/999, 1, 1000));
  EXPECT_FALSE(cloud_->write(0, 2, 0));
  EXPECT_FALSE(cloud_->read(/*client=*/999, 1));
}

TEST_F(CloudTest, ReadAfterWriteRoundTrips) {
  build(small_config());
  cloud_->write(0, 42, util::megabytes(2));
  sim_->post_at(scda::sim::secs(10.0), [&] { cloud_->read(1, 42); });
  sim_->run_until(scda::sim::secs(30.0));
  ASSERT_EQ(count(CloudOp::Kind::kRead), 1u);
  for (const auto& [rec, op] : done_) {
    if (op.kind == CloudOp::Kind::kRead) {
      EXPECT_EQ(rec.size_bytes, util::megabytes(2));
      EXPECT_GT(rec.fct(), 0.0);
    }
  }
  const auto* meta = cloud_->fes().dispatch_by_content(42).find(42);
  EXPECT_EQ(meta->reads, 1u);
}

TEST_F(CloudTest, ReadOfUnknownContentFails) {
  build(small_config());
  cloud_->read(0, 777);
  sim_->run_until(scda::sim::secs(5.0));
  EXPECT_EQ(cloud_->failed_reads(), 1u);
  EXPECT_EQ(count(CloudOp::Kind::kRead), 0u);
}

TEST_F(CloudTest, RandTcpModeServesSameApi) {
  auto cfg = small_config();
  cfg.placement = PlacementPolicy::kRandom;
  cfg.transport = transport::TransportKind::kTcp;
  build(cfg);
  cloud_->write(0, 1, util::megabytes(1));
  sim_->post_at(scda::sim::secs(15.0), [&] { cloud_->read(1, 1); });
  sim_->run_until(scda::sim::secs(60.0));
  EXPECT_EQ(count(CloudOp::Kind::kWrite), 1u);
  EXPECT_EQ(count(CloudOp::Kind::kRead), 1u);
  EXPECT_EQ(count(CloudOp::Kind::kReplication), 1u);
}

TEST_F(CloudTest, ReplicationDisabledLeavesSingleCopy) {
  auto cfg = small_config();
  cfg.enable_replication = false;
  build(cfg);
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(scda::sim::secs(20.0));
  EXPECT_EQ(count(CloudOp::Kind::kReplication), 0u);
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  EXPECT_EQ(meta->replicas.size(), 1u);
}

TEST_F(CloudTest, PriorityFlowFinishesFasterUnderContention) {
  // Two equal writes from different clients to a loaded cloud; the
  // prioritized one gets a larger share (section IV-A).
  build(small_config());
  for (int i = 0; i < 6; ++i)
    cloud_->write(static_cast<std::size_t>(i % 4), 100 + i,
                  util::megabytes(8), ContentClass::kSemiInteractive);
  cloud_->write(4, 1, util::megabytes(8), ContentClass::kSemiInteractive,
                /*priority=*/4.0);
  cloud_->write(5, 2, util::megabytes(8), ContentClass::kSemiInteractive,
                /*priority=*/1.0);
  sim_->run_until(scda::sim::secs(60.0));
  double fct_hi = -1, fct_lo = -1;
  for (const auto& [rec, op] : done_) {
    if (op.content == 1) fct_hi = rec.fct();
    if (op.content == 2) fct_lo = rec.fct();
  }
  ASSERT_GT(fct_hi, 0);
  ASSERT_GT(fct_lo, 0);
  EXPECT_LT(fct_hi, fct_lo);
}

TEST_F(CloudTest, ReservedFlowMeetsDeadlineUnderLoad) {
  build(small_config());
  // Background load.
  for (int i = 0; i < 8; ++i)
    cloud_->write(static_cast<std::size_t>(i % 8), 100 + i,
                  util::megabytes(10));
  // 4 MB with a 100 Mbps reservation: upper bound ~0.32 s + control
  // latency + convergence slack.
  cloud_->write(0, 1, util::megabytes(4), ContentClass::kSemiInteractive,
                1.0, /*reserved_bps=*/util::mbps(100));
  sim_->run_until(scda::sim::secs(60.0));
  for (const auto& [rec, op] : done_) {
    if (op.content == 1 && op.kind == CloudOp::Kind::kWrite) {
      EXPECT_LT(rec.fct(), 1.0);
    }
  }
}

TEST_F(CloudTest, ControlOverheadAccounted) {
  build(small_config());
  cloud_->write(0, 1, 100000);
  sim_->run_until(scda::sim::secs(5.0));
  EXPECT_GT(cloud_->control_messages(), 0u);
  EXPECT_GT(cloud_->control_bytes(), cloud_->control_messages());
}

TEST_F(CloudTest, EnergyAccumulates) {
  build(small_config());
  sim_->run_until(scda::sim::secs(2.0));
  const double e1 = cloud_->total_energy_j();
  EXPECT_GT(e1, 0.0);
  sim_->run_until(scda::sim::secs(4.0));
  EXPECT_GT(cloud_->total_energy_j(), e1);
}

TEST_F(CloudTest, PowerHeterogeneityApplied) {
  auto cfg = small_config();
  cfg.power_heterogeneity = 0.5;
  build(cfg);
  double lo = 1e9, hi = 0;
  for (const auto& s : cloud_->servers()) {
    lo = std::min(lo, s.power().inefficiency());
    hi = std::max(hi, s.power().inefficiency());
  }
  EXPECT_GE(lo, 1.0);
  EXPECT_LE(hi, 1.5);
  EXPECT_GT(hi - lo, 0.05);  // 16 draws almost surely spread
}

TEST_F(CloudTest, PassiveContentScalesServersDown) {
  auto cfg = small_config();
  cfg.params.rscale = util::mbps(400);
  build(cfg);
  cloud_->write(0, 1, util::megabytes(1), ContentClass::kPassive);
  sim_->run_until(scda::sim::secs(30.0));
  // The passive content's replica landed on a dormant-eligible server and
  // idle servers holding only passive content were scaled down.
  EXPECT_GT(cloud_->dormant_servers(), 0u);
}

TEST_F(CloudTest, ReadWakesDormantServer) {
  auto cfg = small_config();
  cfg.params.rscale = util::mbps(400);
  build(cfg);
  cloud_->write(0, 1, util::megabytes(1), ContentClass::kPassive);
  sim_->post_at(scda::sim::secs(20.0), [&] { cloud_->read(1, 1); });
  sim_->run_until(scda::sim::secs(60.0));
  EXPECT_EQ(count(CloudOp::Kind::kRead), 1u);
}

TEST_F(CloudTest, ScdaFlowsDeregisterOnCompletion) {
  build(small_config());
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(scda::sim::secs(20.0));
  EXPECT_EQ(cloud_->allocator().active_flows(), 0u);
}

TEST_F(CloudTest, SingleNameNodeModeWorks) {
  auto cfg = small_config();
  cfg.params.n_name_nodes = 1;
  build(cfg);
  for (int i = 0; i < 10; ++i)
    cloud_->write(static_cast<std::size_t>(i % 8), i + 1, 50000);
  sim_->run_until(scda::sim::secs(20.0));
  EXPECT_EQ(count(CloudOp::Kind::kWrite), 10u);
  EXPECT_EQ(cloud_->fes().nns_count(), 1u);
}

TEST_F(CloudTest, ManyContentsSpreadAcrossNameNodes) {
  build(small_config());
  for (int i = 0; i < 40; ++i)
    cloud_->write(static_cast<std::size_t>(i % 8), i + 1, 20000);
  sim_->run_until(scda::sim::secs(30.0));
  std::size_t nns_with_content = 0;
  for (std::size_t i = 0; i < cloud_->fes().nns_count(); ++i)
    if (cloud_->fes().node(i).content_count() > 0) ++nns_with_content;
  EXPECT_GE(nns_with_content, 2u);
}

TEST_F(CloudTest, ColdContentMigratesToDormantEligibleServer) {
  auto cfg = small_config();
  cfg.params.rscale = util::mbps(400);
  cfg.params.migration_interval_s = 5.0;
  cfg.enable_replication = false;
  build(cfg);
  // Written as semi-interactive but never accessed again: the classifier
  // learns it is passive and the migration scan moves it (section VII-C).
  cloud_->write(0, 1, util::megabytes(1),
                ContentClass::kSemiInteractive);
  sim_->run_until(scda::sim::secs(120.0));
  EXPECT_GE(cloud_->migrations_completed(), 1u);
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->content_class, ContentClass::kPassive);
  ASSERT_EQ(meta->replicas.size(), 1u);  // moved, not copied
  EXPECT_TRUE(cloud_->servers()[static_cast<std::size_t>(meta->replicas[0])]
                  .has(1));
  // Exactly one server holds the block afterwards.
  std::size_t holders = 0;
  for (const auto& bs : cloud_->servers())
    if (bs.has(1)) ++holders;
  EXPECT_EQ(holders, 1u);
}

TEST_F(CloudTest, HotContentIsNotMigrated) {
  auto cfg = small_config();
  cfg.params.rscale = util::mbps(400);
  cfg.params.migration_interval_s = 5.0;
  cfg.enable_replication = false;
  build(cfg);
  cloud_->write(0, 1, util::kilobytes(256), ContentClass::kSemiInteractive);
  // Keep it hot: a read every 4 seconds.
  for (int i = 1; i <= 20; ++i) {
    sim_->post_at(scda::sim::secs(4.0 * i), [this] { cloud_->read(1, 1); });
  }
  sim_->run_until(scda::sim::secs(90.0));
  EXPECT_EQ(cloud_->migrations_completed(), 0u);
}

TEST_F(CloudTest, SetFlowPriorityIsSafeForUnknownFlows) {
  build(small_config());
  EXPECT_NO_THROW(cloud_->set_flow_priority(scda::net::FlowId{12345}, 2.0));
}

}  // namespace
}  // namespace scda::core
