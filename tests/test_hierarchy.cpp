#include "core/hierarchy.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace scda::core {
namespace {

/// Small 2x2x2 tree: 8 servers, X = 100 Mbps, K = 2.
class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() {
    cfg_.n_agg = 2;
    cfg_.tors_per_agg = 2;
    cfg_.servers_per_tor = 2;
    cfg_.n_clients = 2;
    cfg_.base_bps = sim::BitRate{100e6};
    cfg_.k_factor = 2.0;
    topo_ = std::make_unique<net::ThreeTierTree>(sim_, cfg_);
    params_.alpha = 1.0;
    alloc_ = std::make_unique<RateAllocator>(topo_->net(), params_);
    hier_ = std::make_unique<Hierarchy>(*topo_, *alloc_);
  }

  sim::Simulator sim_;
  net::TopologyConfig cfg_;
  ScdaParams params_;
  std::unique_ptr<net::ThreeTierTree> topo_;
  std::unique_ptr<RateAllocator> alloc_;
  std::unique_ptr<Hierarchy> hier_;
};

TEST_F(HierarchyTest, IdleNetworkValuesEqualLinkCapacityChainMin) {
  hier_->update();
  // All idle: server value at level 0 = 100M (access link rate).
  EXPECT_DOUBLE_EQ(hier_->server_value_up(0, 0).bps(), 100e6);
  // Level 1 chain: min(100M, ToR uplink 100M) = 100M.
  EXPECT_DOUBLE_EQ(hier_->server_value_up(0, 1).bps(), 100e6);
  // Level 2: agg uplink is 200M, min stays 100M.
  EXPECT_DOUBLE_EQ(hier_->server_value_up(0, 2).bps(), 100e6);
  // Level 3: core uplink 600M, min stays 100M.
  EXPECT_DOUBLE_EQ(hier_->server_value_up(0, 3).bps(), 100e6);
}

TEST_F(HierarchyTest, ROtherCapsServerValue) {
  hier_->set_r_other_provider([](std::size_t s) {
    // server 2 disk-limited to 30M
    return sim::BitRate{s == 2 ? 30e6 : 1e9};
  });
  hier_->update();
  EXPECT_DOUBLE_EQ(hier_->server_value_up(2, 0).bps(), 30e6);
  EXPECT_DOUBLE_EQ(hier_->server_value_up(2, 3).bps(), 30e6);
  EXPECT_DOUBLE_EQ(hier_->server_value_up(3, 0).bps(), 100e6);
  EXPECT_DOUBLE_EQ(hier_->rm_rhat_up(2).bps(), 30e6);
  EXPECT_DOUBLE_EQ(hier_->rm_rhat_down(2).bps(), 30e6);
}

TEST_F(HierarchyTest, BestServerPrefersUnloaded) {
  // Load server 0's uplink with flows so its rate drops; the best-uplink
  // server must be someone else.
  for (net::FlowId f{1}; f <= net::FlowId{4}; ++f)
    alloc_->register_flow(f, topo_->servers()[0], topo_->clients()[0]);
  for (int i = 0; i < 50; ++i) alloc_->tick();
  hier_->update();
  const BestServer b = hier_->best_server(SelectionMetric::kUp);
  EXPECT_NE(b.server, 0);
  EXPECT_GT(b.value.bps(),
            hier_->server_value_up(0, kMaxLevel).bps());
}

TEST_F(HierarchyTest, BestServerMinUpDownUsesWorseDirection) {
  hier_->set_r_other_provider(
      [](std::size_t) { return sim::BitRate{1e9}; });
  // Load server 1's downlink only.
  for (net::FlowId f{1}; f <= net::FlowId{4}; ++f)
    alloc_->register_flow(f, topo_->clients()[0], topo_->servers()[1]);
  for (int i = 0; i < 50; ++i) alloc_->tick();
  hier_->update();
  const double min_v = std::min(hier_->server_value_up(1, kMaxLevel).bps(),
                                hier_->server_value_down(1, kMaxLevel).bps());
  EXPECT_LT(min_v, 100e6);
  const BestServer b = hier_->best_server(SelectionMetric::kMinUpDown);
  EXPECT_NE(b.server, 1);
}

TEST_F(HierarchyTest, BestServerInRackRestrictsCandidates) {
  hier_->update();
  const BestServer b = hier_->best_server_in_rack(1, SelectionMetric::kDown);
  // Rack 1 holds servers 2 and 3.
  EXPECT_TRUE(b.server == 2 || b.server == 3);
}

TEST_F(HierarchyTest, FilteredSelectionHonoursPredicate) {
  hier_->update();
  const BestServer b = hier_->best_server_filtered(
      SelectionMetric::kUp, kMaxLevel,
      [](std::size_t s) { return s >= 6; });
  EXPECT_GE(b.server, 6);
}

TEST_F(HierarchyTest, FilteredSelectionAllRejectedGivesInvalid) {
  hier_->update();
  const BestServer b = hier_->best_server_filtered(
      SelectionMetric::kUp, kMaxLevel, [](std::size_t) { return false; });
  EXPECT_EQ(b.server, -1);
}

TEST_F(HierarchyTest, ReweightChangesWinner) {
  hier_->update();
  // Heavily penalize every server except 5.
  const BestServer b = hier_->best_server_filtered(
      SelectionMetric::kUp, kMaxLevel, nullptr,
      [](std::size_t s, sim::BitRate v) {
        return s == 5 ? v : v / 1000.0;
      });
  EXPECT_EQ(b.server, 5);
}

TEST_F(HierarchyTest, RmLevelRatesAreMinOfChain) {
  // Congest the ToR-0 uplink via flows from both rack-0 servers.
  for (net::FlowId f{1}; f <= net::FlowId{8}; ++f)
    alloc_->register_flow(f, topo_->servers()[f.index() % 2],
                          topo_->clients()[0]);
  for (int i = 0; i < 50; ++i) alloc_->tick();
  hier_->update();
  const double l0 = hier_->rm_level_rate_up(0, 0).bps();
  const double l1 = hier_->rm_level_rate_up(0, 1).bps();
  const double l3 = hier_->rm_level_rate_up(0, 3).bps();
  EXPECT_LE(l1, l0);
  EXPECT_LE(l3, l1);
}

TEST_F(HierarchyTest, SlaReportAttributesPerLevel) {
  // Oversubscribe one server downlink via reservations.
  alloc_->register_flow(scda::net::FlowId{1}, topo_->clients()[0],
                        topo_->servers()[0], 1.0, sim::BitRate{80e6});
  alloc_->register_flow(scda::net::FlowId{2}, topo_->clients()[1],
                        topo_->servers()[0], 1.0, sim::BitRate{80e6});
  for (int i = 0; i < 5; ++i) alloc_->tick();
  hier_->update();
  const SlaLevelReport rep = hier_->sla_report();
  EXPECT_GT(rep.total(), 0u);
  EXPECT_GT(rep.per_level[0], 0u);  // the server access link violated
}

TEST_F(HierarchyTest, ServerCountMatchesTopology) {
  EXPECT_EQ(hier_->server_count(), 8u);
}

}  // namespace
}  // namespace scda::core
