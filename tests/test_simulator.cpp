#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace scda::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 0.0);
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator sim;
  double seen = -1;
  sim.post_in(scda::sim::secs(1.5), [&] { seen = sim.now().seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 1.5);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double seen = -1;
  sim.post_at(scda::sim::secs(3.0), [&] { seen = sim.now().seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.post_in(scda::sim::secs(-0.1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, PastAbsoluteTimeThrows) {
  Simulator sim;
  sim.post_in(scda::sim::secs(1.0), [] {});
  sim.run();
  EXPECT_THROW(sim.post_at(scda::sim::secs(0.5), [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.post_at(scda::sim::secs(1.0), [&] { ++ran; });
  sim.post_at(scda::sim::secs(2.0), [&] { ++ran; });
  sim.post_at(scda::sim::secs(3.0), [&] { ++ran; });
  const auto n = sim.run_until(scda::sim::secs(2.0));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 2.0);
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(scda::sim::secs(5.0));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 5.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now().seconds());
    if (times.size() < 5) sim.post_in(scda::sim::secs(1.0), chain);
  };
  sim.post_in(scda::sim::secs(1.0), chain);
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  for (size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(times[i], static_cast<double>(i + 1));
}

TEST(Simulator, CancelStopsScheduledEvent) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule_in(scda::sim::secs(1.0), [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.post_in(scda::sim::secs(0.1 * (i + 1)), [] {});
  }
  EXPECT_EQ(sim.run(), 7u);
}

TEST(PeriodicProcess, FiresAtPeriod) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, secs(0.5),
                    [&] { ticks.push_back(sim.now().seconds()); });
  p.start(scda::sim::secs(0.5));
  sim.run_until(scda::sim::secs(2.1));
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.5);
  EXPECT_DOUBLE_EQ(ticks[3], 2.0);
}

TEST(PeriodicProcess, StartWithCustomFirstDelay) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, secs(1.0),
                    [&] { ticks.push_back(sim.now().seconds()); });
  p.start(scda::sim::secs(0.25));
  sim.run_until(scda::sim::secs(2.5));
  ASSERT_GE(ticks.size(), 2u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.25);
  EXPECT_DOUBLE_EQ(ticks[1], 1.25);
}

TEST(PeriodicProcess, StopHaltsTicks) {
  Simulator sim;
  int n = 0;
  PeriodicProcess p(sim, secs(0.5), [&] { ++n; });
  p.start(scda::sim::secs(0.5));
  sim.post_at(scda::sim::secs(1.1), [&] { p.stop(); });
  sim.run_until(scda::sim::secs(5.0));
  EXPECT_EQ(n, 2);
  EXPECT_FALSE(p.running());
}

TEST(PeriodicProcess, CanStopItselfFromTick) {
  Simulator sim;
  int n = 0;
  PeriodicProcess p(sim, secs(0.5), [&] {
    if (++n == 3) p.stop();
  });
  p.start(scda::sim::secs(0.5));
  sim.run_until(scda::sim::secs(10.0));
  EXPECT_EQ(n, 3);
}

TEST(PeriodicProcess, InvalidPeriodThrows) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, secs(0.0), [] {}), std::invalid_argument);
  PeriodicProcess p(sim, secs(1.0), [] {});
  EXPECT_THROW(p.set_period(scda::sim::secs(-1.0)), std::invalid_argument);
}

TEST(PeriodicProcess, RestartResetsSchedule) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, secs(1.0),
                    [&] { ticks.push_back(sim.now().seconds()); });
  p.start(scda::sim::secs(1.0));
  sim.run_until(scda::sim::secs(1.5));
  p.start(scda::sim::secs(1.0));  // restart at t=1.5 -> next tick 2.5
  sim.run_until(scda::sim::secs(3.0));
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_DOUBLE_EQ(ticks[1], 2.5);
}

}  // namespace
}  // namespace scda::sim
