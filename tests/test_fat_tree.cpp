#include "net/fat_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.h"
#include "transport/transport_manager.h"

namespace scda::net {
namespace {

class FatTreeTest : public ::testing::Test {
 protected:
  FatTreeTest() {
    cfg_.k = 4;
    cfg_.n_clients = 4;
    ft_ = std::make_unique<FatTree>(sim_, cfg_);
  }

  sim::Simulator sim_;
  FatTreeConfig cfg_;
  std::unique_ptr<FatTree> ft_;
};

TEST_F(FatTreeTest, K4ShapeCounts) {
  EXPECT_EQ(cfg_.n_servers(), 16);
  EXPECT_EQ(cfg_.cores(), 4);
  EXPECT_EQ(ft_->servers().size(), 16u);
  EXPECT_EQ(ft_->cores().size(), 4u);
  // nodes: gw + 4 cores + 8 aggs + 8 edges + 16 servers + 4 clients = 41
  EXPECT_EQ(ft_->net().node_count(), 41u);
  // duplex links: 4 core-gw + 16 agg-core + 16 edge-agg + 16 server +
  // 4 client = 56 -> 112 unidirectional
  EXPECT_EQ(ft_->net().link_count(), 112u);
}

TEST_F(FatTreeTest, OddKRejected) {
  FatTreeConfig bad;
  bad.k = 3;
  EXPECT_THROW(FatTree(sim_, bad), std::invalid_argument);
}

TEST_F(FatTreeTest, PodMapping) {
  EXPECT_EQ(ft_->pod_of_server(0), 0u);
  EXPECT_EQ(ft_->pod_of_server(3), 0u);
  EXPECT_EQ(ft_->pod_of_server(4), 1u);
  EXPECT_EQ(ft_->pod_of_server(15), 3u);
  EXPECT_EQ(ft_->edge_index_of_server(0), 0u);
  EXPECT_EQ(ft_->edge_index_of_server(2), 1u);
}

TEST_F(FatTreeTest, IntraPodPathLength) {
  // Same edge: srv->edge->srv (2). Same pod, different edge:
  // srv->edge->agg->edge->srv (4).
  EXPECT_EQ(ft_->net().path(ft_->servers()[0], ft_->servers()[1]).size(),
            2u);
  EXPECT_EQ(ft_->net().path(ft_->servers()[0], ft_->servers()[2]).size(),
            4u);
}

TEST_F(FatTreeTest, CrossPodHasFourEqualCostPaths) {
  const auto paths = all_shortest_paths(ft_->net(), ft_->servers()[0],
                                        ft_->servers()[15]);
  ASSERT_EQ(paths.size(), 4u);  // (k/2)^2
  std::set<std::vector<LinkId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.size(), 6u);  // srv-edge-agg-core-agg-edge-srv
    // Path is contiguous from src to dst.
    EXPECT_EQ(ft_->net().link(p.front()).from(), ft_->servers()[0]);
    EXPECT_EQ(ft_->net().link(p.back()).to(), ft_->servers()[15]);
    for (std::size_t i = 1; i < p.size(); ++i)
      EXPECT_EQ(ft_->net().link(p[i]).from(),
                ft_->net().link(p[i - 1]).to());
  }
}

TEST_F(FatTreeTest, AllShortestPathsTrivialCases) {
  EXPECT_TRUE(all_shortest_paths(ft_->net(), ft_->servers()[0],
                                 ft_->servers()[0])
                  .empty());
  const auto same_edge = all_shortest_paths(ft_->net(), ft_->servers()[0],
                                            ft_->servers()[1]);
  ASSERT_EQ(same_edge.size(), 1u);
  EXPECT_EQ(same_edge[0].size(), 2u);
}

TEST_F(FatTreeTest, EcmpIsDeterministicPerFlowAndSpreads) {
  const NodeId a = ft_->servers()[0];
  const NodeId b = ft_->servers()[15];
  std::set<std::vector<LinkId>> chosen;
  for (FlowId f{0}; f < FlowId{64}; ++f) {
    const auto p1 = ecmp_path(ft_->net(), a, b, f);
    const auto p2 = ecmp_path(ft_->net(), a, b, f);
    EXPECT_EQ(p1, p2);  // same flow -> same path
    chosen.insert(p1);
  }
  EXPECT_EQ(chosen.size(), 4u);  // 64 flows cover all 4 paths
}

TEST_F(FatTreeTest, PinnedEcmpFlowDeliversData) {
  transport::TransportManager tm(ft_->net());
  int done = 0;
  tm.set_completion_callback([&](const transport::FlowRecord&) { ++done; });
  const NodeId a = ft_->servers()[0];
  const NodeId b = ft_->servers()[12];
  const FlowId id = tm.next_flow_id();
  ft_->net().pin_flow_route(id, ecmp_path(ft_->net(), a, b, id));
  tm.start_scda_flow(a, b, 500'000, sim::BitRate{100e6}, sim::BitRate{100e6});
  sim_.run_until(scda::sim::secs(30.0));
  EXPECT_EQ(done, 1);
}

// ------------------------------------------------------ scale guards ----
//
// The fluid scale bench (bench_scale, BENCH_scale.json) builds k=16/k=32
// fabrics with build_routes=false and analytic FatTree::server_path. These
// tests pin the construction counts, prove builder memory stays O(links)
// (no next-hop tables), and validate the analytic paths against the
// BFS-enumerated shortest paths.

TEST(FatTreeScale, K16CountsWithoutRouteTables) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.k = 16;
  cfg.n_clients = 0;
  cfg.build_routes = false;
  FatTree ft(sim, cfg);
  EXPECT_EQ(ft.servers().size(), 1024u);  // k^3/4
  EXPECT_EQ(ft.cores().size(), 64u);      // (k/2)^2
  // gw + cores + k*k pod switches + servers
  EXPECT_EQ(ft.net().node_count(), 1u + 64u + 256u + 1024u);
  // duplex: (k/2)^2 core-gw + 3*(k^3/4) fabric/server = 3136 -> x2
  EXPECT_EQ(ft.net().link_count(), 6272u);
  EXPECT_FALSE(ft.net().routes_built());
  EXPECT_EQ(ft.net().route_table_entries(), 0u);
}

TEST(FatTreeScale, K32CountsWithoutRouteTables) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.k = 32;
  cfg.n_clients = 0;
  cfg.build_routes = false;
  FatTree ft(sim, cfg);
  EXPECT_EQ(ft.servers().size(), 8192u);   // k^3/4
  EXPECT_EQ(ft.cores().size(), 256u);      // (k/2)^2
  EXPECT_EQ(ft.net().node_count(), 1u + 256u + 1024u + 8192u);
  // duplex: 256 core-gw + 3*8192 = 24832 -> 49664 unidirectional, the
  // committed BENCH_scale.json "links" value.
  EXPECT_EQ(ft.net().link_count(), 49664u);
  // O(links) builder memory: a dense next-hop table at this scale would
  // be ~9.5k x 9.5k entries; analytic routing never materializes it.
  EXPECT_EQ(ft.net().route_table_entries(), 0u);
}

TEST(FatTreeScale, ServerPathIsContiguousAndTiered) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.k = 16;
  cfg.n_clients = 0;
  cfg.build_routes = false;
  FatTree ft(sim, cfg);
  const std::size_t n = ft.servers().size();

  auto check = [&](std::size_t src, std::size_t dst, std::size_t hops) {
    const auto p = ft.server_path(src, dst, FlowId{1});
    ASSERT_EQ(p.size(), hops) << src << "->" << dst;
    EXPECT_EQ(ft.net().link(p.front()).from(), ft.servers()[src]);
    EXPECT_EQ(ft.net().link(p.back()).to(), ft.servers()[dst]);
    for (std::size_t i = 1; i < p.size(); ++i)
      EXPECT_EQ(ft.net().link(p[i]).from(), ft.net().link(p[i - 1]).to());
  };
  check(0, 1, 2);          // same edge
  check(0, 8, 4);          // same pod, different edge (k/2 per edge)
  check(0, n - 1, 6);      // inter-pod, via core
  check(n - 1, 0, 6);      // and the reverse direction
  EXPECT_TRUE(ft.server_path(3, 3, FlowId{1}).empty());
  EXPECT_THROW((void)ft.server_path(0, n, FlowId{1}), std::out_of_range);
}

TEST(FatTreeScale, ServerPathMatchesBfsShortestPaths) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.k = 8;
  cfg.n_clients = 0;
  cfg.build_routes = false;
  FatTree ft(sim, cfg);
  // Every analytic path must be one of the BFS-enumerated equal-cost
  // shortest paths for that pair.
  const std::size_t pairs[][2] = {{0, 1}, {0, 9}, {0, 127}, {63, 64}};
  for (const auto& pr : pairs) {
    const auto all = all_shortest_paths(ft.net(), ft.servers()[pr[0]],
                                        ft.servers()[pr[1]]);
    const std::set<std::vector<LinkId>> legal(all.begin(), all.end());
    for (FlowId f{0}; f < FlowId{16}; ++f) {
      const auto p = ft.server_path(pr[0], pr[1], f);
      EXPECT_EQ(p, ft.server_path(pr[0], pr[1], f));  // deterministic
      EXPECT_TRUE(legal.count(p)) << pr[0] << "->" << pr[1];
    }
  }
}

TEST(FatTreeScale, ServerPathSpreadsAcrossCores) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.k = 16;
  cfg.n_clients = 0;
  cfg.build_routes = false;
  FatTree ft(sim, cfg);
  std::set<std::vector<LinkId>> chosen;
  for (FlowId f{0}; f < FlowId{512}; ++f)
    chosen.insert(ft.server_path(0, ft.servers().size() - 1, f));
  // (k/2)^2 = 64 equal-cost inter-pod paths; 512 hashed flows should
  // cover nearly all of them.
  EXPECT_GE(chosen.size(), 48u);
}

TEST_F(FatTreeTest, K6Scales) {
  FatTreeConfig big;
  big.k = 6;
  big.n_clients = 2;
  sim::Simulator sim2;
  FatTree ft(sim2, big);
  EXPECT_EQ(ft.servers().size(), 54u);  // 6 pods * 3 edges * 3 servers
  EXPECT_EQ(ft.cores().size(), 9u);
  const auto paths =
      all_shortest_paths(ft.net(), ft.servers()[0], ft.servers()[53]);
  EXPECT_EQ(paths.size(), 9u);  // (k/2)^2
}

}  // namespace
}  // namespace scda::net
