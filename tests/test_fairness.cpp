#include "stats/fairness.h"

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "util/units.h"

namespace scda::stats {
namespace {

TEST(JainIndex, EqualAllocationsScoreOne) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({7}), 1.0);
}

TEST(JainIndex, StarvationScoresOneOverN) {
  // One user gets everything among 4: J = 1/4.
  EXPECT_NEAR(jain_index({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainIndex, MonotoneInInequality) {
  const double even = jain_index({5, 5, 5, 5});
  const double mild = jain_index({6, 5, 5, 4});
  const double harsh = jain_index({14, 2, 2, 2});
  EXPECT_GT(even, mild);
  EXPECT_GT(mild, harsh);
}

TEST(Percentile, ExactValues) {
  std::vector<double> xs{4, 1, 3, 2, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(LiveFairness, ConcurrentEqualFlowsScoreNearOne) {
  // Eight long SCDA uploads from one client: after convergence the Jain
  // index of their live allocations must be ~1 (max-min fairness).
  sim::Simulator sim(9);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 4;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);
  for (int i = 0; i < 8; ++i)
    cloud.write(0, i + 1, util::megabytes(200));
  sim.run_until(scda::sim::secs(3.0));
  std::vector<double> rates;
  for (net::FlowId f{0}; f < net::FlowId{8}; ++f)
    rates.push_back(cloud.allocator().flow_rate(f).bps());
  EXPECT_GT(jain_index(rates), 0.99);
}

}  // namespace
}  // namespace scda::stats
