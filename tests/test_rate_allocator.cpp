#include "core/rate_allocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace scda::core {
namespace {

/// Line network a - m - b: two shared links per direction. Flows a->b share
/// both; flows a->m only the first.
class RateAllocatorTest : public ::testing::Test {
 protected:
  RateAllocatorTest() : net_(sim_) {
    a_ = net_.add_node(net::NodeRole::kClient, "a");
    m_ = net_.add_node(net::NodeRole::kOther, "m");
    b_ = net_.add_node(net::NodeRole::kServer, "b");
    auto [am, ma] = net_.add_duplex(a_, m_, sim::BitRate{100e6}, 0.001, 1 << 20);
    auto [mb, bm] = net_.add_duplex(m_, b_, sim::BitRate{50e6}, 0.001, 1 << 20);
    am_ = am;
    mb_ = mb;
    (void)ma;
    (void)bm;
    net_.build_routes();
    params_.alpha = 1.0;  // exact capacities for easy arithmetic
    params_.beta = 0.5;
    params_.tau = 0.05;
  }

  RateAllocator make() { return RateAllocator(net_, params_); }
  void settle(RateAllocator& alloc, int ticks = 30) {
    for (int i = 0; i < ticks; ++i) alloc.tick();
  }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId a_{}, m_{}, b_{};
  net::LinkId am_{}, mb_{};
  ScdaParams params_;
};

TEST_F(RateAllocatorTest, IdleLinksOfferFullEffectiveCapacity) {
  auto alloc = make();
  EXPECT_DOUBLE_EQ(alloc.link_rate(am_).bps(), 100e6);
  EXPECT_DOUBLE_EQ(alloc.link_rate(mb_).bps(), 50e6);
  settle(alloc);
  EXPECT_DOUBLE_EQ(alloc.link_rate(am_).bps(), 100e6);
}

TEST_F(RateAllocatorTest, PathRateIsBottleneckMin) {
  auto alloc = make();
  EXPECT_DOUBLE_EQ(alloc.path_rate(a_, b_).bps(), 50e6);
  EXPECT_DOUBLE_EQ(alloc.path_rate(a_, m_).bps(), 100e6);
}

TEST_F(RateAllocatorTest, SingleFlowGetsBottleneckCapacity) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  settle(alloc);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 50e6, 1e3);
}

TEST_F(RateAllocatorTest, EqualFlowsShareEqually) {
  auto alloc = make();
  for (net::FlowId f{1}; f <= net::FlowId{4}; ++f) {
    alloc.register_flow(f, a_, b_);
  }
  settle(alloc);
  for (net::FlowId f{1}; f <= net::FlowId{4}; ++f)
    EXPECT_NEAR(alloc.flow_rate(f).bps(), 50e6 / 4, 1e3) << "flow " << f.value();
}

TEST_F(RateAllocatorTest, MaxMinFairnessAcrossHeterogeneousPaths) {
  // Classic parking lot: one long flow a->b plus three short flows a->m.
  // Long flow is bottlenecked at the 50M link; the three short flows split
  // the remaining 100M - share so that the a->m link is fully used.
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  for (net::FlowId f{2}; f <= net::FlowId{4}; ++f) {
    alloc.register_flow(f, a_, m_);
  }
  settle(alloc, 200);
  const double long_rate = alloc.flow_rate(scda::net::FlowId{1}).bps();
  const double short_rate = alloc.flow_rate(scda::net::FlowId{2}).bps();
  // Weighted max-min fixed point: long flow limited by the 50M link but the
  // a->m link's fair share is 100/4 = 25M < 50M, so all four flows get 25M
  // ... unless the long flow is counted fractionally. With the long flow
  // taking r1 = min(50, rho_am) and shorts rho_am each:
  //   rho_am solves 3*rho + min(50, rho) = 100 -> rho = 25.
  EXPECT_NEAR(short_rate, 25e6, 1e5);
  EXPECT_NEAR(long_rate, 25e6, 1e5);
  // Total on the shared link never exceeds capacity.
  EXPECT_LE(alloc.link_rate_sum(am_).bps(), 100e6 * 1.001);
}

TEST_F(RateAllocatorTest, BottleneckedElsewhereFreesCapacity) {
  // One flow a->b (bottleneck 50M at mb), one flow a->m. The a->m flow
  // should get 100 - 50 = 50M, not 100/2 (max-min property, eq. 3).
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  alloc.register_flow(scda::net::FlowId{2}, a_, m_);
  settle(alloc, 200);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 50e6, 5e5);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 50e6, 5e5);
}

TEST_F(RateAllocatorTest, PriorityWeightsSkewShares) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_, /*priority=*/3.0);
  alloc.register_flow(scda::net::FlowId{2}, a_, b_, /*priority=*/1.0);
  settle(alloc, 100);
  // Weighted fair: 3:1 split of 50M.
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 37.5e6, 5e5);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 12.5e6, 5e5);
}

TEST_F(RateAllocatorTest, PriorityChangeTakesEffect) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_, 1.0);
  alloc.register_flow(scda::net::FlowId{2}, a_, b_, 1.0);
  settle(alloc, 50);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 25e6, 5e5);
  alloc.set_priority(scda::net::FlowId{1}, 4.0);
  EXPECT_DOUBLE_EQ(alloc.priority(scda::net::FlowId{1}), 4.0);
  settle(alloc, 100);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 40e6, 5e5);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 10e6, 5e5);
}

TEST_F(RateAllocatorTest, ReservationGuaranteesMinimumRate) {
  auto alloc = make();
  // 10 unit flows plus one with a 30M reservation on the 50M bottleneck.
  alloc.register_flow(scda::net::FlowId{1}, a_, b_, 1.0, /*reserved=*/sim::BitRate{30e6});
  for (net::FlowId f{2}; f <= net::FlowId{11}; ++f) {
    alloc.register_flow(f, a_, b_);
  }
  settle(alloc, 200);
  EXPECT_GE(alloc.flow_rate(scda::net::FlowId{1}).bps(), 30e6);
  // Others share the remaining ~20M.
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 20e6 / 11.0, 5e5);
}

TEST_F(RateAllocatorTest, UnregisterRestoresShares) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  alloc.register_flow(scda::net::FlowId{2}, a_, b_);
  settle(alloc, 50);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 25e6, 5e5);
  alloc.unregister_flow(scda::net::FlowId{2});
  EXPECT_FALSE(alloc.has_flow(scda::net::FlowId{2}));
  settle(alloc, 50);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 50e6, 5e5);
  EXPECT_DOUBLE_EQ(alloc.flow_rate(scda::net::FlowId{2}).bps(), 0.0);
}

TEST_F(RateAllocatorTest, DoubleRegistrationThrows) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  EXPECT_THROW(alloc.register_flow(scda::net::FlowId{1}, a_, b_),
               std::logic_error);
}

TEST_F(RateAllocatorTest, ImmediateFeedbackOnRegistration) {
  // Flows admitted within the same control interval must not all be quoted
  // the full link rate (the burst-loss bug this guards against).
  auto alloc = make();
  settle(alloc, 2);
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  // first: the full bottleneck
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 50e6, 1e3);
  alloc.register_flow(scda::net::FlowId{2}, a_, b_);
  // second: gamma/2
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 25e6, 1e3);
  alloc.register_flow(scda::net::FlowId{3}, a_, b_);
  // third: gamma/3
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{3}).bps(), 50e6 / 3, 1e3);
}

TEST_F(RateAllocatorTest, ProspectiveRateAnticipatesNewFlow) {
  auto alloc = make();
  settle(alloc, 2);
  // Idle link: a new flow would get the whole capacity.
  EXPECT_NEAR(alloc.prospective_link_rate(mb_).bps(), 50e6, 1e3);
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  settle(alloc, 50);
  // link_rate still advertises the single flow's full share, but the
  // prospective rate halves — this is what route selection compares.
  EXPECT_NEAR(alloc.link_rate(mb_).bps(), 50e6, 1e5);
  EXPECT_NEAR(alloc.prospective_link_rate(mb_).bps(), 25e6, 1e5);
  // A heavier prospective flow sees a proportionally smaller share.
  EXPECT_NEAR(alloc.prospective_link_rate(mb_, 3.0).bps(), 50e6 / 4, 1e5);
}

TEST_F(RateAllocatorTest, ROtherConstrainsFlowRate) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_, 1.0, sim::BitRate{}, /*send=*/nullptr,
                      /*recv=*/[] { return sim::BitRate{7e6}; });
  settle(alloc);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 7e6, 1e3);
}

TEST_F(RateAllocatorTest, ROtherReleasedCapacityGoesToOthers) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_, 1.0, sim::BitRate{}, nullptr,
                      [] { return sim::BitRate{5e6}; });
  alloc.register_flow(scda::net::FlowId{2}, a_, b_);
  settle(alloc, 200);
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 5e6, 1e3);
  // picks up the slack
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{2}).bps(), 45e6, 5e5);
}

TEST_F(RateAllocatorTest, SlaViolationDetectedOnOversubscription) {
  auto alloc = make();
  std::uint64_t events = 0;
  net::LinkId last_link = net::kInvalidLink;
  alloc.set_sla_callback(
      [&](net::LinkId l, sim::BitRate s, sim::BitRate g, sim::Time) {
        ++events;
        last_link = l;
        EXPECT_GT(s.bps(), g.bps());
      });
  // Reservations exceeding the bottleneck capacity guarantee violation.
  alloc.register_flow(scda::net::FlowId{1}, a_, b_, 1.0, sim::BitRate{40e6});
  alloc.register_flow(scda::net::FlowId{2}, a_, b_, 1.0, sim::BitRate{40e6});
  settle(alloc, 5);
  EXPECT_GT(events, 0u);
  EXPECT_GT(alloc.sla_violations(), 0u);
  EXPECT_EQ(last_link, mb_);  // the 50M link is the one oversubscribed
  EXPECT_GT(alloc.sla_violations(mb_), 0u);
}

TEST_F(RateAllocatorTest, NoSlaViolationUnderNormalLoad) {
  auto alloc = make();
  alloc.register_flow(scda::net::FlowId{1}, a_, b_);
  alloc.register_flow(scda::net::FlowId{2}, a_, b_);
  settle(alloc, 50);
  // Converged allocations sum below capacity: no violations after the
  // transient (allow the registration transient itself).
  const auto early = alloc.sla_violations();
  settle(alloc, 100);
  EXPECT_EQ(alloc.sla_violations(), early);
}

TEST_F(RateAllocatorTest, RatesStayNonNegativeAndBounded) {
  auto alloc = make();
  for (net::FlowId f{1}; f <= net::FlowId{50}; ++f)
    alloc.register_flow(f, a_, b_, 1.0 + static_cast<double>(f.value() % 3));
  for (int i = 0; i < 100; ++i) {
    alloc.tick();
    for (net::FlowId f{1}; f <= net::FlowId{50}; ++f) {
      EXPECT_GE(alloc.flow_rate(f).bps(), params_.min_rate.bps() * 0.99);
      EXPECT_LE(alloc.flow_rate(f).bps(), 100e6 * 3 + 1);
    }
  }
}

TEST_F(RateAllocatorTest, OutputIndependentOfInsertionOrder) {
  // The same flow set registered in different orders must allocate
  // bit-identically: tick() walks the sorted flow-id index, so neither a
  // hash map's iteration order (the bug the sorted index replaced) nor the
  // slot layout of the dense table may leak into the figures. Priorities
  // and reservations are dyadic so the registration-time link sums are
  // exact in any order; everything after the first tick is recomputed from
  // link state alone.
  struct Spec {
    std::int64_t id;
    bool to_b;  // a->b (two links) or a->m (one link)
    double pri;
    double res;
  };
  const std::vector<Spec> specs = {
      {1, true, 1.0, 0.0},  {2, false, 2.0, 0.0}, {3, true, 0.5, 8e6},
      {4, true, 4.0, 0.0},  {5, false, 1.0, 4e6}, {6, true, 2.0, 0.0},
      {7, false, 0.5, 0.0}, {8, true, 1.0, 2e6},
  };

  auto run = [&](const std::vector<std::size_t>& order) {
    auto alloc = make();
    // Desynchronize slot numbering from id order: the recycled slot goes
    // to whichever flow happens to register first.
    alloc.register_flow(net::FlowId{99}, a_, b_);
    alloc.unregister_flow(net::FlowId{99});
    for (const std::size_t i : order) {
      const Spec& s = specs[i];
      alloc.register_flow(net::FlowId{s.id}, a_, s.to_b ? b_ : m_, s.pri,
                          sim::BitRate{s.res});
    }
    for (int t = 0; t < 40; ++t) alloc.tick();
    std::vector<double> out;
    for (const Spec& s : specs) {
      out.push_back(alloc.flow_rate(net::FlowId{s.id}).bps());
    }
    out.push_back(alloc.link_rate(am_).bps());
    out.push_back(alloc.link_rate(mb_).bps());
    out.push_back(alloc.link_rate_sum(am_).bps());
    out.push_back(alloc.link_rate_sum(mb_).bps());
    return out;
  };

  const auto sorted = run({0, 1, 2, 3, 4, 5, 6, 7});
  const auto shuffled = run({5, 2, 7, 0, 3, 6, 1, 4});
  ASSERT_EQ(sorted.size(), shuffled.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Bit-exact, not EXPECT_DOUBLE_EQ: a one-ulp divergence here is an
    // iteration-order leak that would already desynchronize a long run.
    EXPECT_EQ(std::memcmp(&sorted[i], &shuffled[i], sizeof(double)), 0)
        << "value " << i << ": " << sorted[i] << " vs " << shuffled[i];
  }
}

TEST_F(RateAllocatorTest, SlotRecyclingSurvivesChurn) {
  // Heavy register/unregister churn through the free list must keep the
  // registry consistent (find_row on the sorted index) and keep rates
  // finite and bounded.
  auto alloc = make();
  std::int64_t next_id = 1;
  for (int round = 0; round < 50; ++round) {
    for (int j = 0; j < 4; ++j)
      alloc.register_flow(net::FlowId{next_id++}, a_, b_);
    // Drop the two oldest still-active flows.
    alloc.unregister_flow(net::FlowId{next_id - 4});
    alloc.unregister_flow(net::FlowId{next_id - 3});
    alloc.tick();
  }
  EXPECT_EQ(alloc.active_flows(), 100u);
  EXPECT_FALSE(alloc.has_flow(net::FlowId{197}));
  EXPECT_TRUE(alloc.has_flow(net::FlowId{199}));
  EXPECT_GT(alloc.flow_rate(net::FlowId{200}).bps(), 0.0);
}

// --- metric-kind sweep: both variants converge on the basics ---------------

class MetricKindSweep : public ::testing::TestWithParam<RateMetricKind> {};

TEST_P(MetricKindSweep, SingleFlowGetsFullRateOnIdleNetwork) {
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  net.add_duplex(a, b, sim::BitRate{100e6}, 0.001, 1 << 20);
  net.build_routes();
  ScdaParams p;
  p.alpha = 1.0;
  p.metric = GetParam();
  RateAllocator alloc(net, p);
  alloc.register_flow(scda::net::FlowId{1}, a, b);
  for (int i = 0; i < 20; ++i) alloc.tick();
  // With no measured traffic the simplified metric also reports gamma.
  EXPECT_NEAR(alloc.flow_rate(scda::net::FlowId{1}).bps(), 100e6, 1e6);
}

INSTANTIATE_TEST_SUITE_P(Kinds, MetricKindSweep,
                         ::testing::Values(RateMetricKind::kExact,
                                           RateMetricKind::kSimplified));

}  // namespace
}  // namespace scda::core
