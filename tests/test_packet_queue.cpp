#include "net/packet_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace scda::net {
namespace {

Packet pkt(FlowId flow, std::int64_t seq = 0) {
  return make_data(flow, scda::net::NodeId{0}, scda::net::NodeId{1}, seq,
                   1000, scda::sim::secs(0.0));
}

/// Drain the queue through the select/take service cycle a link performs,
/// recording (flow, seq) service order.
std::vector<std::pair<FlowId, std::int64_t>> drain(PacketQueue& q) {
  std::vector<std::pair<FlowId, std::int64_t>> order;
  while (!q.empty()) {
    const PacketQueue::NodeIndex n = q.select_next();
    Packet p = q.take(n);
    q.note_transmitted(p.flow);
    order.emplace_back(p.flow, p.seq);
  }
  return order;
}

TEST(PacketQueue, StartsEmpty) {
  PacketQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pool_capacity(), 0u);
}

TEST(PacketQueue, FifoServesArrivalOrder) {
  PacketQueue q;
  for (int i = 0; i < 5; ++i) q.push(pkt(FlowId{i % 2}, i));
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)].second, i);
  }
}

TEST(PacketQueue, SjfServesLeastTransmittedFlowFirst) {
  PacketQueue q;
  q.set_discipline(QueueDiscipline::kSjf);
  // Flow 1 has already transmitted 3 packets; flow 2 none.
  for (int i = 0; i < 3; ++i) q.note_transmitted(scda::net::FlowId{1});
  q.push(pkt(scda::net::FlowId{1}, 10));
  q.push(pkt(scda::net::FlowId{2}, 20));
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, FlowId{2});  // fewest transmitted goes first
  EXPECT_EQ(order[1].first, FlowId{1});
}

TEST(PacketQueue, SjfTieBreaksByLongestWaitingFlow) {
  PacketQueue q;
  q.set_discipline(QueueDiscipline::kSjf);
  q.push(pkt(scda::net::FlowId{7}, 1));  // flow 7 queued first
  q.push(pkt(scda::net::FlowId{3}, 2));
  const auto order = drain(q);
  // Equal counts after each transmission, so service alternates starting
  // from the flow whose oldest packet has waited longest.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, FlowId{7});
  EXPECT_EQ(order[1].first, FlowId{3});
}

TEST(PacketQueue, SjfNeverReordersWithinAFlow) {
  // The seed's swap-to-front scan could reorder packets of the same flow;
  // the indexed queue must serve each flow strictly FIFO.
  PacketQueue q;
  q.set_discipline(QueueDiscipline::kSjf);
  for (int i = 0; i < 8; ++i) q.push(pkt(scda::net::FlowId{1}, i));
  for (int i = 0; i < 8; ++i) q.push(pkt(scda::net::FlowId{2}, 100 + i));
  const auto order = drain(q);
  std::int64_t prev1 = -1;
  std::int64_t prev2 = -1;
  for (const auto& [flow, seq] : order) {
    if (flow == FlowId{1}) {
      EXPECT_GT(seq, prev1);
      prev1 = seq;
    } else {
      EXPECT_GT(seq, prev2);
      prev2 = seq;
    }
  }
}

TEST(PacketQueue, SwitchToSjfWithQueuedPacketsRebuildsIndex) {
  PacketQueue q;
  // Queue under FIFO, then enable SJF: the per-flow index must be rebuilt
  // from the arrival-order list, and service must follow SJF rules.
  for (int i = 0; i < 4; ++i) q.push(pkt(scda::net::FlowId{1}, i));
  q.push(pkt(scda::net::FlowId{2}, 100));
  q.set_discipline(QueueDiscipline::kSjf);
  const auto first = q.packet(q.select_next());
  // Both flows have count 0; flow 1 queued first so it goes, then counts
  // alternate service until flow 1's backlog is drained.
  EXPECT_EQ(first.flow, FlowId{1});
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[1].first, FlowId{2});  // after a flow-1 tx, flow 2 is next
}

TEST(PacketQueue, SwitchBackToFifoRestoresArrivalOrder) {
  PacketQueue q;
  q.set_discipline(QueueDiscipline::kSjf);
  q.push(pkt(scda::net::FlowId{1}, 0));
  q.push(pkt(scda::net::FlowId{2}, 1));
  q.push(pkt(scda::net::FlowId{1}, 2));
  q.set_discipline(QueueDiscipline::kFifo);
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)].second, i);
  }
}

TEST(PacketQueue, TxCountsOnlyAdvanceUnderSjf) {
  PacketQueue q;
  q.note_transmitted(scda::net::FlowId{5});  // FIFO mode: no SJF bookkeeping
  EXPECT_EQ(q.tx_count(scda::net::FlowId{5}), 0u);
  q.set_discipline(QueueDiscipline::kSjf);
  q.note_transmitted(scda::net::FlowId{5});
  q.note_transmitted(scda::net::FlowId{5});
  EXPECT_EQ(q.tx_count(scda::net::FlowId{5}), 2u);
}

TEST(PacketQueue, PoolIsRecycledAcrossChurn) {
  PacketQueue q;
  for (int round = 0; round < 10'000; ++round) {
    q.push(pkt(scda::net::FlowId{1}, round));
    q.push(pkt(scda::net::FlowId{2}, round));
    (void)q.take(q.select_next());
    (void)q.take(q.select_next());
  }
  EXPECT_TRUE(q.empty());
  // Peak depth was 2, so the pool must not have grown past it.
  EXPECT_LE(q.pool_capacity(), 2u);
}

TEST(PacketQueue, SelectedHandleSurvivesPushes) {
  // A link selects a packet when transmission starts and takes it when
  // transmission completes; packets arriving in between must not move it.
  PacketQueue q;
  q.push(pkt(scda::net::FlowId{1}, 42));
  const PacketQueue::NodeIndex n = q.select_next();
  for (int i = 0; i < 100; ++i) q.push(pkt(scda::net::FlowId{2}, i));
  EXPECT_EQ(q.packet(n).seq, 42);
  EXPECT_EQ(q.take(n).seq, 42);
  EXPECT_EQ(q.size(), 100u);
}

TEST(PacketQueue, PerfCountersTrackDepthAndSjfUse) {
  PacketQueue q;
  q.set_discipline(QueueDiscipline::kSjf);
  for (int i = 0; i < 6; ++i) q.push(pkt(FlowId{i}, i));
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(q.perf().pool_hwm, 6u);
  EXPECT_GT(q.perf().sjf_selects, 0u);
}

}  // namespace
}  // namespace scda::net
