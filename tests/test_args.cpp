#include "util/args.h"

#include <gtest/gtest.h>

namespace scda::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, SpaceSeparatedValues) {
  const auto a = parse({"--name", "value"});
  EXPECT_TRUE(a.has("name"));
  EXPECT_EQ(a.get("name"), "value");
}

TEST(ArgParser, EqualsSeparatedValues) {
  const auto a = parse({"--name=value"});
  EXPECT_EQ(a.get("name"), "value");
}

TEST(ArgParser, BareFlagIsEmptyString) {
  const auto a = parse({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_TRUE(a.get_bool("verbose", false));
}

TEST(ArgParser, MissingFlagUsesDefault) {
  const auto a = parse({});
  EXPECT_FALSE(a.has("x"));
  EXPECT_EQ(a.get("x", "def"), "def");
  EXPECT_DOUBLE_EQ(a.get_double("x", 2.5), 2.5);
  EXPECT_EQ(a.get_int("x", 7), 7);
  EXPECT_TRUE(a.get_bool("x", true));
}

TEST(ArgParser, NumericParsing) {
  const auto a = parse({"--rate", "12.5", "--count=42"});
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0), 12.5);
  EXPECT_EQ(a.get_int("count", 0), 42);
}

TEST(ArgParser, MalformedNumbersThrow) {
  const auto a = parse({"--rate", "abc", "--count", "1.5"});
  EXPECT_THROW((void)a.get_double("rate", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_int("count", 0), std::invalid_argument);
}

TEST(ArgParser, BooleanValues) {
  const auto a = parse({"--on=1", "--off=false"});
  EXPECT_TRUE(a.get_bool("on", false));
  EXPECT_FALSE(a.get_bool("off", true));
}

TEST(ArgParser, MalformedBooleanThrows) {
  const auto a = parse({"--flag=maybe"});
  EXPECT_THROW((void)a.get_bool("flag", false), std::invalid_argument);
}

TEST(ArgParser, PositionalArguments) {
  const auto a = parse({"input.csv", "--flag", "output.csv"});
  // "--flag output.csv" consumes output.csv as the flag's value.
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "input.csv");
  EXPECT_EQ(a.get("flag"), "output.csv");
}

TEST(ArgParser, ConsecutiveFlags) {
  const auto a = parse({"--a", "--b", "value"});
  EXPECT_TRUE(a.has("a"));
  EXPECT_EQ(a.get("a"), "");
  EXPECT_EQ(a.get("b"), "value");
}

TEST(ArgParser, FlagNamesEnumerated) {
  const auto a = parse({"--x=1", "--y=2"});
  const auto names = a.flag_names();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace scda::util
