// Configuration-matrix integration sweep: the full cloud must behave sanely
// across rate-metric kinds, placement policies, transports, topology shapes
// and NNS counts. Each cell runs a short mixed workload and asserts the
// cross-cutting invariants (completion, no failed reads, energy accrual,
// deterministic flow accounting).
#include <gtest/gtest.h>

#include <tuple>

#include "core/cloud.h"
#include "stats/collector.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace scda {
namespace {

using MatrixParam =
    std::tuple<core::RateMetricKind, core::PlacementPolicy, int /*shape*/,
               int /*n_nns*/>;

class CloudMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CloudMatrix, ShortWorkloadRunsClean) {
  const auto [metric, placement, shape, n_nns] = GetParam();

  sim::Simulator sim(77);
  core::CloudConfig cfg;
  switch (shape) {
    case 0:  // small wide
      cfg.topology.n_agg = 1;
      cfg.topology.tors_per_agg = 2;
      cfg.topology.servers_per_tor = 4;
      break;
    case 1:  // deep
      cfg.topology.n_agg = 3;
      cfg.topology.tors_per_agg = 2;
      cfg.topology.servers_per_tor = 2;
      break;
    default:  // asymmetric-ish
      cfg.topology.n_agg = 2;
      cfg.topology.tors_per_agg = 3;
      cfg.topology.servers_per_tor = 3;
      cfg.topology.k_factor = 1.0;
      break;
  }
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.params.metric = metric;
  cfg.params.n_name_nodes = n_nns;
  cfg.placement = placement;
  cfg.transport = placement == core::PlacementPolicy::kScda
                      ? transport::TransportKind::kScda
                      : transport::TransportKind::kTcp;

  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  workload::DriverConfig dc;
  dc.end_time_s = 8.0;
  dc.read_fraction = 0.4;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 8.0;
  pc.mean_bytes = 200e3;
  pc.cap_bytes = 5 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(60.0));

  const stats::Summary s = col.summary();
  EXPECT_GT(s.flows, 20u) << "workload barely ran";
  EXPECT_EQ(cloud.failed_reads(), 0u);
  EXPECT_EQ(cloud.failed_writes(), 0u);
  EXPECT_GT(cloud.total_energy_j(), 0.0);
  EXPECT_GT(s.goodput_bps, 0.0);
  // All issued content ops completed (writes + replications + reads).
  EXPECT_EQ(cloud.snapshot().active_flows, 0u);
  // Every completed flow has a positive, finite FCT.
  for (const auto& r : col.records()) {
    EXPECT_GT(r.fct_s, 0.0);
    EXPECT_LT(r.fct_s, 60.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CloudMatrix,
    ::testing::Combine(
        ::testing::Values(core::RateMetricKind::kExact,
                          core::RateMetricKind::kSimplified),
        ::testing::Values(core::PlacementPolicy::kScda,
                          core::PlacementPolicy::kRandom),
        ::testing::Values(0, 1, 2), ::testing::Values(1, 4)));

}  // namespace
}  // namespace scda
