#include "core/power.h"

#include <gtest/gtest.h>

namespace scda::core {
namespace {

TEST(PowerModel, IdleAndPeakDraw) {
  PowerModel p(100.0, 300.0);
  EXPECT_DOUBLE_EQ(p.power_w(0.0), 100.0);
  EXPECT_DOUBLE_EQ(p.power_w(1.0), 300.0);
  EXPECT_DOUBLE_EQ(p.power_w(0.5), 200.0);
}

TEST(PowerModel, UtilizationClamped) {
  PowerModel p(100.0, 300.0);
  EXPECT_DOUBLE_EQ(p.power_w(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.power_w(2.0), 300.0);
}

TEST(PowerModel, InefficiencyScalesDraw) {
  PowerModel p(100.0, 300.0, /*inefficiency=*/1.5);
  EXPECT_DOUBLE_EQ(p.power_w(0.0), 150.0);
  EXPECT_DOUBLE_EQ(p.power_w(1.0), 450.0);
}

TEST(PowerModel, DormantDrawsStandbyOnly) {
  PowerModel p(100.0, 300.0);
  p.set_standby_w(10.0);
  p.set_dormant(true);
  EXPECT_DOUBLE_EQ(p.power_w(0.5), 10.0);
  EXPECT_TRUE(p.dormant());
  p.set_dormant(false);
  EXPECT_DOUBLE_EQ(p.power_w(0.5), 200.0);
}

TEST(PowerModel, EnergyIntegration) {
  PowerModel p(100.0, 300.0);
  p.integrate_energy(200.0, 0.5);
  p.integrate_energy(100.0, 1.0);
  EXPECT_DOUBLE_EQ(p.energy_j(), 200.0);
}

TEST(PowerModel, RunningAverageWeightsRecentSamples) {
  PowerModel p(100.0, 300.0);
  p.record_sample(100.0);
  EXPECT_DOUBLE_EQ(p.average_w(), 100.0);
  p.record_sample(200.0, 0.5);
  EXPECT_DOUBLE_EQ(p.average_w(), 150.0);
}

TEST(PowerModel, AverageDefaultsToIdleBeforeSamples) {
  PowerModel p(100.0, 300.0, 1.2);
  EXPECT_DOUBLE_EQ(p.average_w(), 120.0);
}

}  // namespace
}  // namespace scda::core
