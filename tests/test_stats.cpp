#include "stats/collector.h"

#include <gtest/gtest.h>

#include "stats/emit.h"
#include "stats/throughput.h"
#include "util/units.h"

namespace scda::stats {
namespace {

using core::CloudOp;
using transport::FlowRecord;

FlowRecord flow(std::int64_t size, double start, double finish) {
  FlowRecord r;
  r.size_bytes = size;
  r.start_time = sim::secs(start);
  r.finish_time = sim::secs(finish);
  return r;
}

CloudOp op(CloudOp::Kind k) {
  CloudOp o;
  o.kind = k;
  return o;
}

/// Collector unit tests drive `record` directly (no cloud needed).
class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : sim_(1), cloud_cfg_(), cloud_(sim_, cloud_cfg_), col_(cloud_) {}

  sim::Simulator sim_;
  core::CloudConfig cloud_cfg_;
  core::Cloud cloud_;
  FlowStatsCollector col_;
};

TEST_F(CollectorTest, RecordsBasicFields) {
  col_.record(flow(1000, 1.0, 3.0), op(CloudOp::Kind::kWrite));
  ASSERT_EQ(col_.count(), 1u);
  EXPECT_EQ(col_.records()[0].size_bytes, 1000);
  EXPECT_DOUBLE_EQ(col_.records()[0].fct_s, 2.0);
  EXPECT_TRUE(col_.records()[0].control);  // < 5 KB
}

TEST_F(CollectorTest, ReplicationExcludedByDefault) {
  col_.record(flow(1000, 0, 1), op(CloudOp::Kind::kReplication));
  EXPECT_EQ(col_.count(), 0u);
  col_.record(flow(1000, 0, 1), op(CloudOp::Kind::kRead));
  EXPECT_EQ(col_.count(), 1u);
}

TEST_F(CollectorTest, CdfIsSortedAndReachesOne) {
  col_.record(flow(10000, 0, 3), op(CloudOp::Kind::kWrite));
  col_.record(flow(10000, 0, 1), op(CloudOp::Kind::kWrite));
  col_.record(flow(10000, 0, 2), op(CloudOp::Kind::kWrite));
  const auto cdf = col_.fct_cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
  EXPECT_NEAR(cdf[0].p, 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].p, 1.0);
}

TEST_F(CollectorTest, AfctBinsAverageWithinBin) {
  col_.record(flow(500'000, 0, 2), op(CloudOp::Kind::kWrite));
  col_.record(flow(600'000, 0, 4), op(CloudOp::Kind::kWrite));
  col_.record(flow(2'500'000, 0, 10), op(CloudOp::Kind::kWrite));
  const auto bins = col_.afct_by_size(1e6, 4e6);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].afct_s, 3.0);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[1].afct_s, 10.0);
  EXPECT_DOUBLE_EQ(bins[1].size_mid, 2.5e6);
}

TEST_F(CollectorTest, AfctOversizeClampedToLastBin) {
  col_.record(flow(99'000'000, 0, 5), op(CloudOp::Kind::kWrite));
  const auto bins = col_.afct_by_size(1e6, 4e6);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].size_mid, 3.5e6);
}

TEST_F(CollectorTest, SummaryStatistics) {
  col_.record(flow(1'000'000, 0, 1), op(CloudOp::Kind::kWrite));
  col_.record(flow(1'000'000, 1, 4), op(CloudOp::Kind::kWrite));
  col_.record(flow(2'000'000, 2, 12), op(CloudOp::Kind::kWrite));
  const Summary s = col_.summary();
  EXPECT_EQ(s.flows, 3u);
  EXPECT_NEAR(s.mean_fct_s, (1 + 3 + 10) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.median_fct_s, 3.0);
  EXPECT_NEAR(s.mean_size_bytes, 4e6 / 3, 1.0);
  // goodput: 4 MB over [0, 12] s
  EXPECT_NEAR(s.goodput_bps, 4e6 * 8 / 12.0, 1.0);
}

TEST_F(CollectorTest, PerKindSummaries) {
  col_.record(flow(1'000'000, 0, 1), op(CloudOp::Kind::kWrite));
  col_.record(flow(1'000'000, 0, 3), op(CloudOp::Kind::kWrite));
  col_.record(flow(2'000'000, 0, 2), op(CloudOp::Kind::kRead));
  const Summary w = col_.summary_for(CloudOp::Kind::kWrite);
  const Summary r = col_.summary_for(CloudOp::Kind::kRead);
  EXPECT_EQ(w.flows, 2u);
  EXPECT_DOUBLE_EQ(w.mean_fct_s, 2.0);
  EXPECT_EQ(r.flows, 1u);
  EXPECT_DOUBLE_EQ(r.mean_fct_s, 2.0);
  EXPECT_EQ(col_.summary_for(CloudOp::Kind::kMigration).flows, 0u);
}

TEST_F(CollectorTest, PerClassSummaries) {
  CloudOp o;
  o.kind = CloudOp::Kind::kWrite;
  o.content_class = transport::ContentClass::kPassive;
  col_.record(flow(1000, 0, 1), o);
  o.content_class = transport::ContentClass::kInteractive;
  col_.record(flow(1000, 0, 5), o);
  EXPECT_EQ(col_.summary_for(transport::ContentClass::kPassive).flows, 1u);
  EXPECT_DOUBLE_EQ(
      col_.summary_for(transport::ContentClass::kInteractive).mean_fct_s,
      5.0);
}

TEST_F(CollectorTest, SummaryWherePredicate) {
  col_.record(flow(1000, 0, 1), op(CloudOp::Kind::kWrite));     // control
  col_.record(flow(900'000, 0, 2), op(CloudOp::Kind::kWrite));  // content
  const Summary content = col_.summary_where(
      [](const CompletionRecord& r) { return !r.control; });
  EXPECT_EQ(content.flows, 1u);
  EXPECT_DOUBLE_EQ(content.mean_fct_s, 2.0);
}

TEST_F(CollectorTest, EmptySummaryIsZero) {
  const Summary s = col_.summary();
  EXPECT_EQ(s.flows, 0u);
  EXPECT_DOUBLE_EQ(s.mean_fct_s, 0.0);
}

TEST(ThroughputSampler, SamplesDeltas) {
  sim::Simulator sim(2);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  net.add_duplex(a, b, sim::BitRate{100e6}, 0.001, 1 << 22);
  net.build_routes();
  transport::TransportManager tm(net);
  ThroughputSampler sampler(sim, tm, 0.5);
  tm.start_scda_flow(a, b, 1'000'000, sim::BitRate{50e6}, sim::BitRate{50e6});
  sim.run_until(scda::sim::secs(3.0));
  const auto& series = sampler.series();
  ASSERT_GE(series.size(), 5u);
  double total = 0;
  for (const auto& s : series) total += s.kbytes_per_s * 0.5;
  EXPECT_NEAR(total, 1000.0, 10.0);  // 1 MB delivered in KB
  EXPECT_GT(sampler.mean_kbytes_per_s(), 0.0);
}

TEST(Emit, ProducesParseableOutput) {
  char buf[4096];
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(f, nullptr);
  emit_cdf(f, "test cdf", {{0.5, 0.25}, {1.0, 1.0}});
  emit_afct(f, "test afct", {{1e6, 2.5, 10}});
  emit_throughput(f, "test thpt", {{1.0, 123.4}});
  Summary s;
  s.flows = 2;
  s.mean_fct_s = 1.5;
  emit_summary(f, "sys", s);
  emit_comparison(f, s, s, 100.0, 50.0);
  std::fclose(f);
  const std::string out(buf);
  EXPECT_NE(out.find("# test cdf"), std::string::npos);
  EXPECT_NE(out.find("0.5000 0.2500"), std::string::npos);
  EXPECT_NE(out.find("1.00 2.5000 10"), std::string::npos);
  EXPECT_NE(out.find("1.0 123.4"), std::string::npos);
  EXPECT_NE(out.find("flows=2"), std::string::npos);
  EXPECT_NE(out.find("100.0% higher"), std::string::npos);
}

TEST(Emit, CdfDownsamplesLongSeries) {
  std::vector<CdfPoint> cdf;
  for (int i = 0; i < 1000; ++i)
    cdf.push_back({static_cast<double>(i), (i + 1) / 1000.0});
  char buf[1 << 16];
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  emit_cdf(f, "big", cdf, 60);
  std::fclose(f);
  const std::string out(buf);
  int lines = 0;
  for (const char c : out)
    if (c == '\n') ++lines;
  EXPECT_LE(lines, 70);
  // last point always present
  EXPECT_NE(out.find("999.0000 1.0000"), std::string::npos);
}

}  // namespace
}  // namespace scda::stats
