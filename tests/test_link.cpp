#include "net/link.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"

namespace scda::net {
namespace {

Packet data_packet(std::int32_t payload, FlowId flow = FlowId{1}) {
  return make_data(flow, NodeId{0}, NodeId{1}, 0, payload, sim::Time{});
}

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
};

TEST_F(LinkTest, SinglePacketTimingIsTxPlusPropagation) {
  // 1500B wire @ 1 Mbps = 12 ms tx, plus 10 ms propagation.
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.010, 1 << 20);
  std::vector<double> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(sim_.now().seconds()); });
  ASSERT_TRUE(link.enqueue(data_packet(1500 - kHeaderBytes)));
  sim_.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 0.012 + 0.010, 1e-9);
}

TEST_F(LinkTest, BackToBackPacketsSerialize) {
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.010, 1 << 20);
  std::vector<double> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(sim_.now().seconds()); });
  ASSERT_TRUE(link.enqueue(data_packet(1500 - kHeaderBytes)));
  ASSERT_TRUE(link.enqueue(data_packet(1500 - kHeaderBytes)));
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 0.012, 1e-9);  // one tx time apart
}

TEST_F(LinkTest, DropTailWhenQueueFull) {
  // Queue fits exactly two 1500-byte packets.
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.001, 3000);
  int delivered = 0;
  link.set_deliver([&](Packet&&) { ++delivered; });
  EXPECT_TRUE(link.enqueue(data_packet(1460)));
  EXPECT_TRUE(link.enqueue(data_packet(1460)));
  EXPECT_FALSE(link.enqueue(data_packet(1460)));  // third is dropped
  sim_.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().dropped_packets, 1u);
  EXPECT_EQ(link.stats().tx_packets, 2u);
}

TEST_F(LinkTest, QueueBytesReflectsOccupancy) {
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.001, 1 << 20);
  EXPECT_EQ(link.queue_bytes(), 0);
  ASSERT_TRUE(link.enqueue(data_packet(1460)));
  ASSERT_TRUE(link.enqueue(data_packet(1460)));
  EXPECT_EQ(link.queue_bytes(), 3000);
  sim_.run();
  EXPECT_EQ(link.queue_bytes(), 0);
}

TEST_F(LinkTest, IntervalArrivalCounterIncludesDrops) {
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.001, 1500);
  ASSERT_TRUE(link.enqueue(data_packet(1460)));
  EXPECT_FALSE(link.enqueue(data_packet(1460)));  // dropped but offered
  EXPECT_EQ(link.interval_arrived_bytes(), 3000);
  EXPECT_EQ(link.take_interval_arrived_bytes(), 3000);
  EXPECT_EQ(link.interval_arrived_bytes(), 0);  // reset
}

TEST_F(LinkTest, StatsAccumulateBytes) {
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.001, 1 << 20);
  link.set_deliver([](Packet&&) {});
  ASSERT_TRUE(link.enqueue(data_packet(1460)));
  sim_.run();
  EXPECT_EQ(link.stats().tx_bytes, 1500u);
  EXPECT_EQ(link.stats().enqueued_packets, 1u);
}

TEST_F(LinkTest, UtilizationMatchesTransmittedBits) {
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.0, 1 << 20);
  link.set_deliver([](Packet&&) {});
  // 10 packets * 1500 B = 120 kbit over 1 s at 1 Mbps -> 12% utilization
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(link.enqueue(data_packet(1460)));
  sim_.run();
  EXPECT_NEAR(link.utilization(1.0), 0.12, 1e-9);
}

TEST_F(LinkTest, CapacityChangeAffectsSubsequentPackets) {
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.0, 1 << 20);
  std::vector<double> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(sim_.now().seconds()); });
  ASSERT_TRUE(link.enqueue(data_packet(1460)));
  sim_.run();
  link.set_capacity(sim::BitRate{2e6});  // reserve capacity switched in
  ASSERT_TRUE(link.enqueue(data_packet(1460)));
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.012, 1e-9);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 0.006, 1e-9);
}

TEST_F(LinkTest, DeliveryPreservesPacketFields) {
  Link link(sim_, LinkId{7}, NodeId{0}, NodeId{1}, sim::BitRate{1e6}, 0.001, 1 << 20);
  Packet got;
  link.set_deliver([&](Packet&& p) { got = p; });
  Packet p = make_data(scda::net::FlowId{42}, scda::net::NodeId{3},
                       scda::net::NodeId{9}, 1000, 500, sim::secs(1.25));
  p.rcvw_bytes = 777;
  ASSERT_TRUE(link.enqueue(std::move(p)));
  sim_.run();
  EXPECT_EQ(got.flow, FlowId{42});
  EXPECT_EQ(got.src, NodeId{3});
  EXPECT_EQ(got.dst, NodeId{9});
  EXPECT_EQ(got.seq, 1000);
  EXPECT_EQ(got.payload_bytes, 500);
  EXPECT_EQ(got.rcvw_bytes, 777);
  EXPECT_DOUBLE_EQ(got.ts.seconds(), 1.25);
}

// Regression for the negative-delay crash: the delivery timer computes
// `due - now`, and after millions of float additions the head's deadline
// can land a few ulps below the current clock. The seed passed that raw
// difference to Simulator::schedule_in, which throws on negative delays and
// tore down whole runs. delivery_delay must clamp FP noise to zero.
TEST(LinkDeliveryDelay, PositiveDelayPassesThrough) {
  EXPECT_DOUBLE_EQ(
      Link::delivery_delay(scda::sim::secs(2.0), scda::sim::secs(1.0))
          .seconds(),
      1.0);
  EXPECT_DOUBLE_EQ(
      Link::delivery_delay(scda::sim::secs(1.0), scda::sim::secs(1.0))
          .seconds(),
      0.0);
}

TEST(LinkDeliveryDelay, UlpNegativeDelayClampsToZero) {
  // `due` one ulp below `now`: exactly the drift repeated accumulation
  // produces. The clamped delay must be a valid schedule_in argument.
  const double now = 1000.0;
  const double due = std::nextafter(now, 0.0);
  ASSERT_LT(due - now, 0.0);
  EXPECT_DOUBLE_EQ(
      Link::delivery_delay(scda::sim::secs(due), scda::sim::secs(now))
          .seconds(),
      0.0);

  const double small_now = 1e-3;
  const double small_due = std::nextafter(small_now, 0.0);
  EXPECT_DOUBLE_EQ(
      Link::delivery_delay(scda::sim::secs(small_due),
                           scda::sim::secs(small_now))
          .seconds(),
      0.0);
}

TEST_F(LinkTest, AdversarialPropagationDelaysNeverThrow) {
  // Stress the tx/propagation interleaving with a propagation delay chosen
  // so tx-complete and delivery deadlines land on awkward non-dyadic
  // fractions, accumulating rounding drift across tens of thousands of
  // events. The run must complete without schedule_in throwing and deliver
  // every packet exactly once.
  //
  // capacity chosen so tx time per 83-byte wire packet = 83*8/0.9e6 s
  // (a repeating binary fraction); prop delay 1/3e-4 likewise.
  Link link(sim_, LinkId{0}, NodeId{0}, NodeId{1}, sim::BitRate{0.9e6},
            1.0 / 3.0 * 1e-4, 1 << 22);
  std::uint64_t delivered = 0;
  std::uint64_t sent = 0;
  const std::uint64_t kPackets = 50'000;
  link.set_deliver([&](Packet&&) {
    ++delivered;
    if (sent < kPackets) {
      ++sent;
      ASSERT_TRUE(link.enqueue(
          make_data(scda::net::FlowId{1}, scda::net::NodeId{0},
                    scda::net::NodeId{1}, 0, 83 - kHeaderBytes, sim_.now())));
    }
  });
  for (int i = 0; i < 3; ++i) {
    ++sent;
    ASSERT_TRUE(link.enqueue(
        make_data(scda::net::FlowId{1}, scda::net::NodeId{0},
                  scda::net::NodeId{1}, 0, 83 - kHeaderBytes, sim::Time{})));
  }
  ASSERT_NO_THROW(sim_.run());
  EXPECT_EQ(delivered, sent);
}

}  // namespace
}  // namespace scda::net
