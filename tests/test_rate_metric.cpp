#include "core/rate_metric.h"

#include <gtest/gtest.h>

namespace scda::core {
namespace {

constexpr double kMin = 12000.0;  // 1 MTU/s floor

TEST(EffectiveCapacity, NoQueueGivesAlphaC) {
  EXPECT_DOUBLE_EQ(effective_capacity(100e6, 0, 0.05, 0.95, 0.5), 95e6);
}

TEST(EffectiveCapacity, QueueTermDrainsInOneInterval) {
  // Q = 1 Mbit, tau = 0.05 -> drain rate 20 Mbps, weighted by beta.
  const double g = effective_capacity(100e6, 1e6, 0.05, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(g, 100e6 - 20e6);
}

TEST(EffectiveCapacity, CanGoNegativeUnderHugeQueue) {
  EXPECT_LT(effective_capacity(10e6, 1e9, 0.05, 1.0, 1.0), 0.0);
}

TEST(EffectiveFlows, CountsFractionalFlows) {
  // Flow consuming half the advertised rate counts as half a flow (eq. 3).
  EXPECT_DOUBLE_EQ(effective_flows(5e6, 10e6), 0.5);
  EXPECT_DOUBLE_EQ(effective_flows(30e6, 10e6), 3.0);
}

TEST(EffectiveFlows, ZeroPrevRateYieldsZero) {
  EXPECT_DOUBLE_EQ(effective_flows(5e6, 0.0), 0.0);
}

TEST(ExactRate, IdleLinkOffersFullEffectiveCapacity) {
  EXPECT_DOUBLE_EQ(exact_rate(95e6, 0.0, 95e6, kMin), 95e6);
}

TEST(ExactRate, EquilibriumIsFixedPoint) {
  // n flows each consuming R: S = nR, so R' = gamma/(S/R) = gamma/n... at
  // the fixed point R = gamma/n.
  const double gamma = 90e6;
  const double n = 3;
  const double r = gamma / n;
  EXPECT_NEAR(exact_rate(gamma, n * r, r, kMin), r, 1e-6);
}

TEST(ExactRate, ConvergesFromAbove) {
  const double gamma = 90e6;
  double r = gamma;  // start: idle advertisement
  for (int i = 0; i < 30; ++i) r = exact_rate(gamma, 3 * r, r, kMin);
  EXPECT_NEAR(r, gamma / 3, 1.0);
}

TEST(ExactRate, ConvergesFromBelow) {
  const double gamma = 90e6;
  double r = kMin;
  for (int i = 0; i < 60; ++i) r = exact_rate(gamma, 2 * r, r, kMin);
  EXPECT_NEAR(r, gamma / 2, 1.0);
}

TEST(ExactRate, ClampedToMinimum) {
  // Demand from 1000 effective flows on a small link.
  const double r = exact_rate(1e6, 1000 * 1e6, 1e6, kMin);
  EXPECT_DOUBLE_EQ(r, kMin);
}

TEST(ExactRate, NeverExceedsEffectiveCapacity) {
  EXPECT_LE(exact_rate(50e6, 1e3, 100e6, kMin), 50e6);
}

TEST(SimplifiedRate, IdleLinkOffersFullEffectiveCapacity) {
  EXPECT_DOUBLE_EQ(simplified_rate(95e6, 0.0, 0.05, 50e6, kMin), 95e6);
}

TEST(SimplifiedRate, EquilibriumIsFixedPoint) {
  // Arrival rate Lambda equals gamma -> rate unchanged.
  const double gamma = 80e6;
  const double r = 20e6;
  const double interval_bits = gamma * 0.05;  // Lambda = gamma
  EXPECT_NEAR(simplified_rate(gamma, interval_bits, 0.05, r, kMin), r, 1e-6);
}

TEST(SimplifiedRate, OverloadReducesRate) {
  const double gamma = 80e6;
  const double r = 20e6;
  const double interval_bits = 2 * gamma * 0.05;  // Lambda = 2 gamma
  EXPECT_NEAR(simplified_rate(gamma, interval_bits, 0.05, r, kMin), r / 2,
              1e-6);
}

TEST(SimplifiedRate, UnderloadRaisesRate) {
  const double gamma = 80e6;
  const double r = 20e6;
  const double interval_bits = 0.5 * gamma * 0.05;
  EXPECT_NEAR(simplified_rate(gamma, interval_bits, 0.05, r, kMin), 2 * r,
              1e-6);
}

TEST(SlaViolated, TriggersAboveCapacity) {
  EXPECT_TRUE(sla_violated(101e6, 100e6));
  EXPECT_FALSE(sla_violated(99e6, 100e6));
  EXPECT_FALSE(sla_violated(100e6, 100e6));
}

// --- property sweep: the exact metric converges to gamma/n for any (n,
// gamma) combination -------------------------------------------------------

class ExactRateConvergence
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ExactRateConvergence, ReachesFairShare) {
  const int n = std::get<0>(GetParam());
  const double gamma = std::get<1>(GetParam());
  double r = gamma;
  for (int i = 0; i < 100; ++i)
    r = exact_rate(gamma, n * r, r, kMin);
  EXPECT_NEAR(r, std::max(gamma / n, kMin), std::max(1.0, gamma * 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactRateConvergence,
    ::testing::Combine(::testing::Values(1, 2, 5, 17, 100),
                       ::testing::Values(1e6, 100e6, 10e9)));

// --- property sweep: simplified metric fixed point stability ---------------

class SimplifiedRateStability : public ::testing::TestWithParam<double> {};

TEST_P(SimplifiedRateStability, IterationConvergesToFairShare) {
  // n flows always sending at the advertised rate: Lambda = n * R.
  const double n = GetParam();
  const double gamma = 100e6;
  const double tau = 0.05;
  double r = gamma;
  for (int i = 0; i < 200; ++i) {
    const double lambda_bits = n * r * tau;
    r = simplified_rate(gamma, lambda_bits, tau, r, kMin);
  }
  EXPECT_NEAR(r, gamma / n, gamma * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplifiedRateStability,
                         ::testing::Values(1.0, 2.0, 4.0, 10.0, 50.0));

}  // namespace
}  // namespace scda::core
