#include "core/rate_metric.h"

#include <gtest/gtest.h>

namespace scda::core {
namespace {

constexpr sim::BitRate kMin{12000.0};  // 1 MTU/s floor

// Test-side shorthands: the metric API is dimension-checked, the expected
// values below stay plain doubles.
sim::BitRate R(double bps) { return sim::BitRate{bps}; }
sim::BitCount Q(double bits) {
  return sim::BitCount{static_cast<std::int64_t>(bits)};
}

TEST(EffectiveCapacity, NoQueueGivesAlphaC) {
  EXPECT_DOUBLE_EQ(effective_capacity(R(100e6), Q(0), 0.05, 0.95, 0.5).bps(),
                   95e6);
}

TEST(EffectiveCapacity, QueueTermDrainsInOneInterval) {
  // Q = 1 Mbit, tau = 0.05 -> drain rate 20 Mbps, weighted by beta.
  const sim::BitRate g = effective_capacity(R(100e6), Q(1e6), 0.05, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(g.bps(), 100e6 - 20e6);
}

TEST(EffectiveCapacity, CanGoNegativeUnderHugeQueue) {
  EXPECT_LT(effective_capacity(R(10e6), Q(1e9), 0.05, 1.0, 1.0).bps(), 0.0);
}

TEST(EffectiveFlows, CountsFractionalFlows) {
  // Flow consuming half the advertised rate counts as half a flow (eq. 3).
  EXPECT_DOUBLE_EQ(effective_flows(R(5e6), R(10e6)), 0.5);
  EXPECT_DOUBLE_EQ(effective_flows(R(30e6), R(10e6)), 3.0);
}

TEST(EffectiveFlows, ZeroPrevRateYieldsZero) {
  EXPECT_DOUBLE_EQ(effective_flows(R(5e6), R(0.0)), 0.0);
}

TEST(ExactRate, IdleLinkOffersFullEffectiveCapacity) {
  EXPECT_DOUBLE_EQ(exact_rate(R(95e6), R(0.0), R(95e6), kMin).bps(), 95e6);
}

TEST(ExactRate, EquilibriumIsFixedPoint) {
  // n flows each consuming R: S = nR, so R' = gamma/(S/R) = gamma/n... at
  // the fixed point R = gamma/n.
  const double gamma = 90e6;
  const double n = 3;
  const double r = gamma / n;
  EXPECT_NEAR(exact_rate(R(gamma), R(n * r), R(r), kMin).bps(), r, 1e-6);
}

TEST(ExactRate, ConvergesFromAbove) {
  const double gamma = 90e6;
  sim::BitRate r{gamma};  // start: idle advertisement
  for (int i = 0; i < 30; ++i) r = exact_rate(R(gamma), 3.0 * r, r, kMin);
  EXPECT_NEAR(r.bps(), gamma / 3, 1.0);
}

TEST(ExactRate, ConvergesFromBelow) {
  const double gamma = 90e6;
  sim::BitRate r = kMin;
  for (int i = 0; i < 60; ++i) r = exact_rate(R(gamma), 2.0 * r, r, kMin);
  EXPECT_NEAR(r.bps(), gamma / 2, 1.0);
}

TEST(ExactRate, ClampedToMinimum) {
  // Demand from 1000 effective flows on a small link.
  const sim::BitRate r = exact_rate(R(1e6), R(1000 * 1e6), R(1e6), kMin);
  EXPECT_DOUBLE_EQ(r.bps(), kMin.bps());
}

TEST(ExactRate, NeverExceedsEffectiveCapacity) {
  EXPECT_LE(exact_rate(R(50e6), R(1e3), R(100e6), kMin).bps(), 50e6);
}

TEST(SimplifiedRate, IdleLinkOffersFullEffectiveCapacity) {
  EXPECT_DOUBLE_EQ(simplified_rate(R(95e6), Q(0), 0.05, R(50e6), kMin).bps(),
                   95e6);
}

TEST(SimplifiedRate, EquilibriumIsFixedPoint) {
  // Arrival rate Lambda equals gamma -> rate unchanged.
  const double gamma = 80e6;
  const double r = 20e6;
  const double interval_bits = gamma * 0.05;  // Lambda = gamma
  EXPECT_NEAR(simplified_rate(R(gamma), Q(interval_bits), 0.05, R(r),
                              kMin).bps(),
              r, 1e-6);
}

TEST(SimplifiedRate, OverloadReducesRate) {
  const double gamma = 80e6;
  const double r = 20e6;
  const double interval_bits = 2 * gamma * 0.05;  // Lambda = 2 gamma
  EXPECT_NEAR(simplified_rate(R(gamma), Q(interval_bits), 0.05, R(r),
                              kMin).bps(),
              r / 2, 1e-6);
}

TEST(SimplifiedRate, UnderloadRaisesRate) {
  const double gamma = 80e6;
  const double r = 20e6;
  const double interval_bits = 0.5 * gamma * 0.05;
  EXPECT_NEAR(simplified_rate(R(gamma), Q(interval_bits), 0.05, R(r),
                              kMin).bps(),
              2 * r, 1e-6);
}

TEST(SlaViolated, TriggersAboveCapacity) {
  EXPECT_TRUE(sla_violated(R(101e6), R(100e6)));
  EXPECT_FALSE(sla_violated(R(99e6), R(100e6)));
  EXPECT_FALSE(sla_violated(R(100e6), R(100e6)));
}

// --- property sweep: the exact metric converges to gamma/n for any (n,
// gamma) combination -------------------------------------------------------

class ExactRateConvergence
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ExactRateConvergence, ReachesFairShare) {
  const int n = std::get<0>(GetParam());
  const double gamma = std::get<1>(GetParam());
  sim::BitRate r{gamma};
  for (int i = 0; i < 100; ++i)
    r = exact_rate(R(gamma), static_cast<double>(n) * r, r, kMin);
  EXPECT_NEAR(r.bps(), std::max(gamma / n, kMin.bps()),
              std::max(1.0, gamma * 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactRateConvergence,
    ::testing::Combine(::testing::Values(1, 2, 5, 17, 100),
                       ::testing::Values(1e6, 100e6, 10e9)));

// --- property sweep: simplified metric fixed point stability ---------------

class SimplifiedRateStability : public ::testing::TestWithParam<double> {};

TEST_P(SimplifiedRateStability, IterationConvergesToFairShare) {
  // n flows always sending at the advertised rate: Lambda = n * R.
  const double n = GetParam();
  const double gamma = 100e6;
  const double tau = 0.05;
  sim::BitRate r{gamma};
  for (int i = 0; i < 200; ++i) {
    const double lambda_bits = n * r.bps() * tau;
    r = simplified_rate(R(gamma), Q(lambda_bits), tau, r, kMin);
  }
  EXPECT_NEAR(r.bps(), gamma / n, gamma * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplifiedRateStability,
                         ::testing::Values(1.0, 2.0, 4.0, 10.0, 50.0));

}  // namespace
}  // namespace scda::core
