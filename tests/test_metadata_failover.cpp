// Metadata-plane fault tolerance tests (docs/scenarios.md): the NNS
// failure schedule streams, the --kill spec parser/validator, standby
// failover with client-side timeout/retry, recovery re-sync, mirror
// currency, and the proactive rebalancer. The central contract under
// test: a scripted NNS outage completes with zero lost requests, and
// with NNS churn off the historical event sequence is untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/churn.h"
#include "core/cloud.h"
#include "sim/failure_schedule.h"
#include "util/units.h"

namespace scda::core {
namespace {

using transport::FlowRecord;

// ---------------------------------------------------------------------------
// failure schedule: the tag-3 NNS renewal streams
// ---------------------------------------------------------------------------

TEST(NnsFailureSchedule, StreamsIndependentOfServerAndLinkStreams) {
  // Turning NNS churn on must not perturb the server/link timelines —
  // otherwise existing committed churn artifacts would shift.
  sim::ChurnConfig base;
  base.enabled = true;
  base.server_mtbf_s = 20.0;
  base.server_mttr_s = 4.0;
  base.link_mtbf_s = 50.0;
  base.link_mttr_s = 2.0;
  base.horizon_s = 120.0;
  sim::ChurnConfig with_nns = base;
  with_nns.nns_mtbf_s = 15.0;
  with_nns.nns_mttr_s = 3.0;

  const sim::ChurnShape shape{16, 4, 8, 8};
  const auto a = sim::build_failure_schedule(base, shape, 42);
  const auto b = sim::build_failure_schedule(with_nns, shape, 42);
  const auto not_nns = [](const sim::FailureEvent& e) {
    return e.kind != sim::FailureKind::kNnsDown &&
           e.kind != sim::FailureKind::kNnsUp;
  };
  std::vector<sim::FailureEvent> sb;
  for (const auto& e : b)
    if (not_nns(e)) sb.push_back(e);
  ASSERT_EQ(a.size(), sb.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, sb[i].at);
    EXPECT_EQ(a[i].kind, sb[i].kind);
    EXPECT_EQ(a[i].index, sb[i].index);
  }
  // And the NNS stream actually produced events over all 8 instances' tag.
  EXPECT_GT(b.size(), a.size());
}

TEST(NnsFailureSchedule, ScriptedNnsExpandsToDownUpPair) {
  sim::ChurnConfig cfg;
  cfg.enabled = true;
  cfg.scripted.push_back({30.0, sim::ScriptedFailure::Target::kNns, 1, 20.0});
  const auto events = sim::build_failure_schedule(cfg, {16, 4, 8, 8}, 1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, sim::FailureKind::kNnsDown);
  EXPECT_EQ(events[0].index, 1);
  EXPECT_DOUBLE_EQ(events[0].at.seconds(), 30.0);
  EXPECT_EQ(events[1].kind, sim::FailureKind::kNnsUp);
  EXPECT_DOUBLE_EQ(events[1].at.seconds(), 50.0);
}

TEST(NnsFailureSchedule, ChurnConfiguredGate) {
  sim::ChurnConfig cfg;
  EXPECT_FALSE(sim::nns_churn_configured(cfg));  // churn off entirely
  cfg.enabled = true;
  EXPECT_FALSE(sim::nns_churn_configured(cfg));  // no NNS stream or script
  cfg.server_mtbf_s = 10.0;  // server churn alone does not enable it
  EXPECT_FALSE(sim::nns_churn_configured(cfg));
  cfg.nns_mtbf_s = 5.0;
  EXPECT_TRUE(sim::nns_churn_configured(cfg));
  cfg.nns_mtbf_s = 0.0;
  cfg.scripted.push_back({10.0, sim::ScriptedFailure::Target::kNns, 0, 1.0});
  EXPECT_TRUE(sim::nns_churn_configured(cfg));
  cfg.enabled = false;  // master switch wins over the script
  EXPECT_FALSE(sim::nns_churn_configured(cfg));
}

// ---------------------------------------------------------------------------
// --kill spec parsing + census validation (satellite: parse-time errors)
// ---------------------------------------------------------------------------

TEST(ParseKillSpecs, ParsesAllTargetsAndOptionalDuration) {
  const auto specs =
      sim::parse_kill_specs("server:3@30+5,pod:0@30+20,link:2@1,nns:1@10+2");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].target, sim::ScriptedFailure::Target::kServer);
  EXPECT_EQ(specs[0].index, 3);
  EXPECT_DOUBLE_EQ(specs[0].at_s, 30.0);
  EXPECT_DOUBLE_EQ(specs[0].duration_s, 5.0);
  EXPECT_EQ(specs[1].target, sim::ScriptedFailure::Target::kPod);
  EXPECT_EQ(specs[2].target, sim::ScriptedFailure::Target::kLink);
  EXPECT_DOUBLE_EQ(specs[2].duration_s, 0.0);  // permanent outage
  EXPECT_EQ(specs[3].target, sim::ScriptedFailure::Target::kNns);
  EXPECT_EQ(specs[3].index, 1);
  EXPECT_TRUE(sim::parse_kill_specs("").empty());
}

TEST(ParseKillSpecs, RejectsMalformedSpecsAtParseTime) {
  EXPECT_THROW((void)sim::parse_kill_specs("disk:0@10"),
               std::invalid_argument);  // unknown target
  EXPECT_THROW((void)sim::parse_kill_specs("server:x@10"),
               std::invalid_argument);  // non-numeric index
  EXPECT_THROW((void)sim::parse_kill_specs("server:1.5@10"),
               std::invalid_argument);  // fractional index
  EXPECT_THROW((void)sim::parse_kill_specs("server:1@10+3x"),
               std::invalid_argument);  // trailing junk after duration
  EXPECT_THROW((void)sim::parse_kill_specs("server:1"),
               std::invalid_argument);  // missing @time
  EXPECT_THROW((void)sim::parse_kill_specs("nns:-1@10"),
               std::invalid_argument);  // negative index
}

TEST(ParseKillSpecs, ValidateScriptedRangeChecks) {
  const sim::ChurnShape shape{16, 4, 8, 8};  // 2 pods, 8 NNS instances
  auto ok = sim::parse_kill_specs("server:15@1,link:3@1,pod:1@1,nns:7@1");
  EXPECT_NO_THROW(sim::validate_scripted(ok, shape));
  EXPECT_THROW(
      sim::validate_scripted(sim::parse_kill_specs("nns:8@1"), shape),
      std::invalid_argument);
  EXPECT_THROW(
      sim::validate_scripted(sim::parse_kill_specs("server:16@1"), shape),
      std::invalid_argument);
  EXPECT_THROW(
      sim::validate_scripted(sim::parse_kill_specs("pod:2@1"), shape),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// cloud-level failover / retry / resync / rebalance
// ---------------------------------------------------------------------------

class MetaFtTest : public ::testing::Test {
 protected:
  void build(CloudConfig cfg, std::uint64_t seed = 5) {
    cfg.topology.n_agg = 2;
    cfg.topology.tors_per_agg = 2;
    cfg.topology.servers_per_tor = 4;
    cfg.topology.n_clients = 8;
    cfg.topology.base_bps = util::mbps(200);
    sim_ = std::make_unique<sim::Simulator>(seed);
    cloud_ = std::make_unique<Cloud>(*sim_, cfg);
    cloud_->add_completion_callback(
        [this](const FlowRecord& rec, const CloudOp& op) {
          done_.push_back({rec, op});
        });
  }

  /// Failover on without any schedule firing: a scripted NNS outage far
  /// beyond the test horizon flips nns_churn_configured(), so standbys
  /// exist and the timeout/retry path is active, but nothing fails unless
  /// the test calls fail_nns itself.
  static CloudConfig failover_only_cfg() {
    CloudConfig cfg;
    cfg.churn.enabled = true;
    cfg.churn.scripted.push_back(
        {1e6, sim::ScriptedFailure::Target::kNns, 0, 1.0});
    return cfg;
  }

  [[nodiscard]] std::size_t completed(CloudOp::Kind kind) const {
    std::size_t n = 0;
    for (const auto& [rec, op] : done_)
      if (op.kind == kind) ++n;
    return n;
  }

  [[nodiscard]] std::size_t shard_of(ContentId id) const {
    return cloud_->fes().dispatch_index(static_cast<std::uint64_t>(id));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cloud> cloud_;
  std::vector<std::pair<FlowRecord, CloudOp>> done_;
};

TEST_F(MetaFtTest, FailoverLayerOffByDefault) {
  build(CloudConfig{});
  EXPECT_FALSE(cloud_->nns_failover_enabled());
  // Only the primaries exist: no standby instances, no mirror traffic.
  EXPECT_EQ(cloud_->nns_instance_count(), cloud_->fes().nns_count());
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(sim::secs(10.0));
  EXPECT_EQ(cloud_->meta_stats().mirror_updates, 0u);
}

TEST_F(MetaFtTest, StandbyServesWhileEveryPrimaryIsDown) {
  build(failover_only_cfg());
  ASSERT_TRUE(cloud_->nns_failover_enabled());
  const std::size_t n = cloud_->fes().nns_count();
  ASSERT_EQ(cloud_->nns_instance_count(), 2 * n);
  for (std::size_t i = 0; i < n; ++i) cloud_->fail_nns(i);

  for (int i = 0; i < 6; ++i)
    cloud_->write(static_cast<std::size_t>(i), i + 1, util::kilobytes(256));
  sim_->run_until(sim::secs(10.0));
  for (int i = 0; i < 6; ++i)
    cloud_->read(static_cast<std::size_t>(i), i + 1);
  sim_->run_until(sim::secs(30.0));

  EXPECT_EQ(completed(CloudOp::Kind::kWrite), 6u);
  EXPECT_EQ(completed(CloudOp::Kind::kRead), 6u);
  EXPECT_EQ(cloud_->failed_reads(), 0u);
  EXPECT_EQ(cloud_->failed_writes(), 0u);
  const MetadataStats& ms = cloud_->meta_stats();
  EXPECT_GE(ms.failovers, 12u);  // every request served by a standby
  EXPECT_EQ(ms.requests_dropped, 0u);
}

TEST_F(MetaFtTest, WholeShardDownRetriesUntilRecovery) {
  build(failover_only_cfg());
  const std::size_t n = cloud_->fes().nns_count();
  // Kill both replicas of every shard: no request can be served, the
  // client-side retry loop carries them across the outage window.
  for (std::size_t i = 0; i < 2 * n; ++i) cloud_->fail_nns(i);
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(sim::secs(0.15));
  EXPECT_EQ(completed(CloudOp::Kind::kWrite), 0u);
  const MetadataStats& ms = cloud_->meta_stats();
  EXPECT_GE(ms.unavailable, 1u);
  EXPECT_GE(ms.retries, 1u);
  // Recovery inside the retry budget: the queued request lands and the
  // write completes with nothing dropped. (Dead peer -> the recovering
  // node rejoins immediately, no sync flow to wait for.)
  for (std::size_t i = 0; i < n; ++i) cloud_->recover_nns(i);
  sim_->run_until(sim::secs(30.0));
  EXPECT_EQ(completed(CloudOp::Kind::kWrite), 1u);
  EXPECT_EQ(cloud_->meta_stats().requests_dropped, 0u);
  EXPECT_EQ(cloud_->failed_writes(), 0u);
}

TEST_F(MetaFtTest, AttemptExhaustionDropsRequestAndFailsOp) {
  build(failover_only_cfg());
  cloud_->write(0, 7, util::megabytes(1));
  sim_->run_until(sim::secs(10.0));
  ASSERT_EQ(completed(CloudOp::Kind::kWrite), 1u);

  // Permanently kill both instances of content 7's shard, then read it:
  // the request retries with backoff until the attempt cap and is dropped,
  // surfacing as a failed read — never a hung client.
  const std::size_t shard = shard_of(7);
  cloud_->fail_nns(shard);
  cloud_->fail_nns(shard + cloud_->fes().nns_count());
  cloud_->read(1, 7);
  sim_->run_until(sim::secs(30.0));
  const MetadataStats& ms = cloud_->meta_stats();
  EXPECT_GE(ms.requests_dropped, 1u);
  EXPECT_EQ(cloud_->failed_reads(), 1u);
  EXPECT_GE(ms.retries,
            static_cast<std::uint64_t>(
                cloud_->config().params.metadata_max_attempts - 1));
}

TEST_F(MetaFtTest, MirrorKeepsStandbyCurrent) {
  build(failover_only_cfg());
  cloud_->write(0, 7, util::megabytes(1));
  sim_->run_until(sim::secs(10.0));
  ASSERT_GE(completed(CloudOp::Kind::kWrite), 1u);

  const std::size_t shard = shard_of(7);
  NameNode& primary = cloud_->nns_instance(shard);
  NameNode& standby =
      cloud_->nns_instance(shard + cloud_->fes().nns_count());
  const ContentMeta* p = primary.find(7);
  const ContentMeta* s = standby.find(7);
  ASSERT_NE(p, nullptr);
  ASSERT_NE(s, nullptr);  // mirrored within a control latency of the write
  EXPECT_EQ(p->size_bytes, s->size_bytes);
  EXPECT_EQ(p->replicas, s->replicas);
  EXPECT_GE(cloud_->meta_stats().mirror_updates, 1u);
}

TEST_F(MetaFtTest, RecoveryResyncsFromPeerBeforeRejoining) {
  build(failover_only_cfg());
  for (int i = 0; i < 8; ++i)
    cloud_->write(static_cast<std::size_t>(i), i + 1, util::kilobytes(256));
  sim_->run_until(sim::secs(10.0));

  // Fail primary 0; the standby serves (and keeps absorbing mutations),
  // then the recovering primary must pull the full map back via a
  // background sync flow before rejoining.
  cloud_->fail_nns(0);
  sim_->run_until(sim::secs(12.0));
  cloud_->recover_nns(0);
  sim_->run_until(sim::secs(30.0));

  const MetadataStats& ms = cloud_->meta_stats();
  EXPECT_GE(ms.resyncs_started, 1u);
  EXPECT_EQ(ms.resyncs_completed, ms.resyncs_started);
  EXPECT_GT(ms.resync_bytes, 0u);
  // The rejoined primary serves again with the peer's (current) metadata.
  NameNode& primary = cloud_->nns_instance(0);
  NameNode& standby = cloud_->nns_instance(cloud_->fes().nns_count());
  EXPECT_TRUE(primary.alive());
  EXPECT_EQ(primary.content_count(), standby.content_count());
}

TEST_F(MetaFtTest, ScriptedOutageWindowLosesNothing) {
  // The ISSUE acceptance scenario in unit form: one primary down for a
  // window while traffic keeps flowing. Every op completes, nothing is
  // dropped, and the node is back (re-synced) by the end.
  CloudConfig cfg = failover_only_cfg();
  cfg.churn.scripted.push_back(
      {2.0, sim::ScriptedFailure::Target::kNns, 0, 6.0});
  build(cfg);
  for (int i = 0; i < 12; ++i)
    cloud_->write(static_cast<std::size_t>(i % 8), i + 1,
                  util::kilobytes(256));
  sim_->run_until(sim::secs(5.0));  // inside the outage window
  EXPECT_FALSE(cloud_->nns_instance(0).alive());
  for (int i = 0; i < 12; ++i)
    cloud_->read(static_cast<std::size_t>(i % 8), i + 1);
  sim_->run_until(sim::secs(40.0));

  EXPECT_EQ(completed(CloudOp::Kind::kWrite), 12u);
  EXPECT_EQ(completed(CloudOp::Kind::kRead), 12u);
  EXPECT_EQ(cloud_->failed_reads(), 0u);
  EXPECT_EQ(cloud_->failed_writes(), 0u);
  EXPECT_EQ(cloud_->meta_stats().requests_dropped, 0u);
  EXPECT_TRUE(cloud_->nns_instance(0).alive());
  EXPECT_EQ(cloud_->churn()->stats().nns_downs, 1u);
  EXPECT_EQ(cloud_->churn()->stats().nns_ups, 1u);
}

TEST_F(MetaFtTest, StochasticNnsChurnIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    CloudConfig cfg;
    cfg.churn.enabled = true;
    cfg.churn.nns_mtbf_s = 4.0;
    cfg.churn.nns_mttr_s = 1.0;
    cfg.churn.horizon_s = 30.0;
    cfg.topology.n_agg = 2;
    cfg.topology.tors_per_agg = 2;
    cfg.topology.servers_per_tor = 4;
    cfg.topology.n_clients = 8;
    cfg.topology.base_bps = util::mbps(200);
    sim::Simulator sim(seed);
    Cloud cloud(sim, cfg);
    for (int i = 0; i < 10; ++i)
      cloud.write(static_cast<std::size_t>(i % 8), i + 1,
                  util::kilobytes(256));
    sim.run_until(sim::secs(30.0));
    const MetadataStats& ms = cloud.meta_stats();
    return std::tuple{ms.retries,   ms.failovers,
                      ms.unavailable, ms.requests_dropped,
                      ms.mirror_updates, ms.resyncs_completed,
                      cloud.churn()->stats().nns_downs};
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(std::get<6>(run(11)), 0u);
}

TEST_F(MetaFtTest, RebalancerMovesHotContentOffOverloadedServer) {
  CloudConfig cfg;  // rebalancing gates independently of churn
  cfg.enable_replication = false;
  cfg.params.rebalance_interval_s = 1.0;
  build(cfg);
  ASSERT_TRUE(cloud_->rebalance_enabled());
  ASSERT_FALSE(cloud_->nns_failover_enabled());

  for (int i = 0; i < 8; ++i)
    cloud_->write(static_cast<std::size_t>(i), i + 1, util::kilobytes(512));
  // Hammer content 1: its holder becomes the hottest server by far, so a
  // periodic scan must migrate it toward an under-loaded target.
  for (int i = 0; i < 24; ++i) {
    sim_->post_at(sim::secs(5.0 + 0.25 * i), [this, i] {
      cloud_->read(static_cast<std::size_t>(i % 8), 1);
    });
  }
  sim_->run_until(sim::secs(60.0));

  const RebalanceStats& rs = cloud_->rebalance_stats();
  EXPECT_GE(rs.scans, 50u);
  EXPECT_GE(rs.flows_completed, 1u);
  EXPECT_EQ(rs.flows_started, rs.flows_completed);  // nothing stranded
  EXPECT_GT(rs.bytes_moved, 0u);
  EXPECT_EQ(cloud_->failed_reads(), 0u);  // moves never lose the object
  const ContentMeta* m =
      cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->replicas.size(), 1u);
}

}  // namespace
}  // namespace scda::core
