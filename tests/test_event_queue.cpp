#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace scda::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.scheduled(), 0u);
  EventQueue::Fired f;
  EXPECT_FALSE(q.pop(f));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.post(scda::sim::secs(3.0), [&] { order.push_back(3); });
  q.post(scda::sim::secs(1.0), [&] { order.push_back(1); });
  q.post(scda::sim::secs(2.0), [&] { order.push_back(2); });
  EventQueue::Fired f;
  while (q.pop(f)) f.cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.post(scda::sim::secs(1.0), [&order, i] { order.push_back(i); });
  EventQueue::Fired f;
  while (q.pop(f)) f.cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReportsScheduledTime) {
  EventQueue q;
  q.post(scda::sim::secs(2.5), [] {});
  EventQueue::Fired f;
  ASSERT_TRUE(q.pop(f));
  EXPECT_DOUBLE_EQ(f.time.seconds(), 2.5);
}

TEST(EventQueue, NextTimeSeesEarliestLiveEvent) {
  EventQueue q;
  auto h = q.schedule(scda::sim::secs(1.0), [] {});
  q.post(scda::sim::secs(2.0), [] {});
  EXPECT_DOUBLE_EQ(q.next_time().seconds(), 1.0);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time().seconds(), 2.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(scda::sim::secs(1.0), [&] { ran = true; });
  q.cancel(h);
  EXPECT_TRUE(q.empty());
  EventQueue::Fired f;
  EXPECT_FALSE(q.pop(f));
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOnlyAffectsTarget) {
  EventQueue q;
  int sum = 0;
  q.post(scda::sim::secs(1.0), [&] { sum += 1; });
  auto h = q.schedule(scda::sim::secs(1.0), [&] { sum += 10; });
  q.post(scda::sim::secs(1.0), [&] { sum += 100; });
  q.cancel(h);
  EventQueue::Fired f;
  while (q.pop(f)) f.cb();
  EXPECT_EQ(sum, 101);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto h = q.schedule(scda::sim::secs(1.0), [] {});
  EventQueue::Fired f;
  ASSERT_TRUE(q.pop(f));
  q.cancel(h);  // must not crash or affect later events
  q.post(scda::sim::secs(2.0), [] {});
  EXPECT_FALSE(q.empty());
  ASSERT_TRUE(q.pop(f));
  EXPECT_DOUBLE_EQ(f.time.seconds(), 2.0);
}

TEST(EventQueue, InvalidHandleCancelIsNoop) {
  EventQueue q;
  q.cancel(EventHandle{});  // default handle is invalid
  q.post(scda::sim::secs(1.0), [] {});
  EXPECT_EQ(q.scheduled(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ManyEventsDrainCompletely) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10000; ++i)
    q.post(scda::sim::secs(static_cast<double>(i % 100)), [&] { ++count; });
  EventQueue::Fired f;
  double prev = -1;
  while (q.pop(f)) {
    EXPECT_GE(f.time.seconds(), prev);
    prev = f.time.seconds();
    f.cb();
  }
  EXPECT_EQ(count, 10000);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 50; ++i) {
    hs.push_back(q.schedule(scda::sim::secs(1.0), [] {}));
  }
  for (auto h : hs) q.cancel(h);
  EXPECT_TRUE(q.empty());
}

// Regression for the seed's tombstone leak: cancel() compared the handle id
// against next_id_ (always true), so every cancel of an already-fired event
// left a permanent entry in the cancelled-id set. A sender that schedules an
// RTO per packet and cancels it on ACK — the common transport pattern —
// accumulated unbounded bookkeeping over a long run. The rebuilt queue must
// keep memory bounded by the peak number of concurrently pending events.
TEST(EventQueue, ScheduleFireCancelChurnKeepsBookkeepingBounded) {
  EventQueue q;
  double t = 0;
  std::uint64_t fired = 0;
  EventQueue::Fired f;
  for (int i = 0; i < 1'000'000; ++i) {
    EventHandle rto =
        q.schedule(scda::sim::secs(t + 1.0), [&fired] { ++fired; });
    q.post(scda::sim::secs(t + 0.5), [&fired] { ++fired; });
    ASSERT_TRUE(q.pop(f));  // the "ACK" arrives first...
    f.cb();
    q.cancel(rto);          // ...and cancels the pending retransmit
    t += 1.0;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 1'000'000u);
  // Peak pending = 2, so the pool must stay tiny no matter how many cycles
  // ran. The seed design grew its cancelled-set by one entry per cycle.
  EXPECT_LE(q.pool_capacity(), 4u);
  EXPECT_EQ(q.perf().cancelled, 1'000'000u);
  EXPECT_EQ(q.perf().popped, 1'000'000u);
  EXPECT_EQ(q.perf().heap_hwm, 2u);
}

// A handle becomes stale once its event fires; the slot may be recycled for
// a new event. Cancelling the stale handle must not kill the new occupant.
TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  bool first = false;
  bool second = false;
  EventHandle h1 = q.schedule(scda::sim::secs(1.0), [&] { first = true; });
  EventQueue::Fired f;
  ASSERT_TRUE(q.pop(f));
  f.cb();
  // The new event recycles h1's slot (single-slot pool).
  EventHandle h2 = q.schedule(scda::sim::secs(2.0), [&] { second = true; });
  EXPECT_EQ(h2.slot, h1.slot);
  q.cancel(h1);  // stale: must be a counted no-op, not cancel h2's event
  EXPECT_EQ(q.scheduled(), 1u);
  ASSERT_TRUE(q.pop(f));
  f.cb();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_EQ(q.perf().stale_cancels, 1u);
  EXPECT_EQ(q.perf().cancelled, 0u);
}

TEST(EventQueue, DoubleCancelIsCountedStale) {
  EventQueue q;
  EventHandle h = q.schedule(scda::sim::secs(1.0), [] {});
  q.cancel(h);
  q.cancel(h);  // second cancel of the same handle: stale no-op
  EXPECT_EQ(q.perf().cancelled, 1u);
  EXPECT_EQ(q.perf().stale_cancels, 1u);
}

TEST(EventQueue, CancelInteriorPreservesOrdering) {
  // Cancel events from the middle of a deep heap, then verify the survivors
  // still drain in exact (time, FIFO) order.
  EventQueue q;
  std::vector<EventHandle> hs;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 257);
    hs.push_back(
        q.schedule(scda::sim::secs(t), [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < hs.size(); i += 3) q.cancel(hs[i]);
  EventQueue::Fired f;
  double prev = -1;
  while (q.pop(f)) {
    EXPECT_GE(f.time.seconds(), prev);
    prev = f.time.seconds();
    f.cb();
  }
  EXPECT_EQ(order.size(), 666u);
  for (int i : order) EXPECT_NE(i % 3, 0);
}

TEST(EventQueue, LargeCapturesSpillToHeapAndStillRun) {
  EventQueue q;
  // 64 bytes of captured state exceeds SmallFn's inline budget.
  struct Big {
    double a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  } big;
  double sum = 0;
  q.post(scda::sim::secs(1.0), [big, &sum] {
    for (double v : big.a) sum += v;
  });
  EXPECT_EQ(q.perf().callbacks_heap, 1u);
  EventQueue::Fired f;
  ASSERT_TRUE(q.pop(f));
  f.cb();
  EXPECT_DOUBLE_EQ(sum, 36.0);
}

}  // namespace
}  // namespace scda::sim
