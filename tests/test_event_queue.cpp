#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace scda::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.scheduled(), 0u);
  EventQueue::Fired f;
  EXPECT_FALSE(q.pop(f));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EventQueue::Fired f;
  while (q.pop(f)) f.cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  EventQueue::Fired f;
  while (q.pop(f)) f.cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReportsScheduledTime) {
  EventQueue q;
  q.schedule(2.5, [] {});
  EventQueue::Fired f;
  ASSERT_TRUE(q.pop(f));
  EXPECT_DOUBLE_EQ(f.time, 2.5);
}

TEST(EventQueue, NextTimeSeesEarliestLiveEvent) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(1.0, [&] { ran = true; });
  q.cancel(h);
  EXPECT_TRUE(q.empty());
  EventQueue::Fired f;
  EXPECT_FALSE(q.pop(f));
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOnlyAffectsTarget) {
  EventQueue q;
  int sum = 0;
  q.schedule(1.0, [&] { sum += 1; });
  auto h = q.schedule(1.0, [&] { sum += 10; });
  q.schedule(1.0, [&] { sum += 100; });
  q.cancel(h);
  EventQueue::Fired f;
  while (q.pop(f)) f.cb();
  EXPECT_EQ(sum, 101);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  EventQueue::Fired f;
  ASSERT_TRUE(q.pop(f));
  q.cancel(h);  // must not crash or affect later events
  q.schedule(2.0, [] {});
  EXPECT_FALSE(q.empty());
  ASSERT_TRUE(q.pop(f));
  EXPECT_DOUBLE_EQ(f.time, 2.0);
}

TEST(EventQueue, InvalidHandleCancelIsNoop) {
  EventQueue q;
  q.cancel(EventHandle{});  // default handle is invalid
  q.schedule(1.0, [] {});
  EXPECT_EQ(q.scheduled(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ManyEventsDrainCompletely) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10000; ++i)
    q.schedule(static_cast<double>(i % 100), [&] { ++count; });
  EventQueue::Fired f;
  double prev = -1;
  while (q.pop(f)) {
    EXPECT_GE(f.time, prev);
    prev = f.time;
    f.cb();
  }
  EXPECT_EQ(count, 10000);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 50; ++i) hs.push_back(q.schedule(1.0, [] {}));
  for (auto h : hs) q.cancel(h);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace scda::sim
