// Failure-injection tests: server loss, replica failover, re-replication
// and recovery.
#include <gtest/gtest.h>

#include "core/cloud.h"
#include "util/units.h"

namespace scda::core {
namespace {

using transport::FlowRecord;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() {
    CloudConfig cfg;
    cfg.topology.n_agg = 2;
    cfg.topology.tors_per_agg = 2;
    cfg.topology.servers_per_tor = 4;
    cfg.topology.n_clients = 8;
    cfg.topology.base_bps = util::mbps(200);
    sim_ = std::make_unique<sim::Simulator>(5);
    cloud_ = std::make_unique<Cloud>(*sim_, cfg);
    cloud_->add_completion_callback(
        [this](const FlowRecord& rec, const CloudOp& op) {
          done_.push_back({rec, op});
        });
  }

  [[nodiscard]] std::size_t reads_completed() const {
    std::size_t n = 0;
    for (const auto& [rec, op] : done_)
      if (op.kind == CloudOp::Kind::kRead) ++n;
    return n;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cloud> cloud_;
  std::vector<std::pair<FlowRecord, CloudOp>> done_;
};

TEST_F(FailureTest, ReadFailsOverToSurvivingReplica) {
  cloud_->write(0, 1, util::megabytes(2));
  sim_->run_until(scda::sim::secs(10.0));  // write + replication done: 2 copies
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  ASSERT_EQ(meta->replicas.size(), 2u);
  const auto primary = static_cast<std::size_t>(meta->replicas[0]);

  cloud_->fail_server(primary, /*re_replicate=*/false);
  cloud_->read(1, 1);
  sim_->run_until(scda::sim::secs(30.0));
  EXPECT_EQ(reads_completed(), 1u);
  EXPECT_EQ(cloud_->failed_reads(), 0u);
}

TEST_F(FailureTest, AllReplicasFailedMeansFailedRead) {
  cloud_->write(0, 1, util::megabytes(1));
  sim_->run_until(scda::sim::secs(10.0));
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_NE(meta, nullptr);
  for (const auto r : std::vector<std::int32_t>(meta->replicas))
    cloud_->fail_server(static_cast<std::size_t>(r), false);
  cloud_->read(1, 1);
  sim_->run_until(scda::sim::secs(20.0));
  EXPECT_EQ(reads_completed(), 0u);
  EXPECT_EQ(cloud_->failed_reads(), 1u);
}

TEST_F(FailureTest, FailureTriggersReReplication) {
  cloud_->write(0, 1, util::megabytes(2));
  sim_->run_until(scda::sim::secs(10.0));
  const auto* meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_EQ(meta->replicas.size(), 2u);
  const auto lost = static_cast<std::size_t>(meta->replicas[0]);
  cloud_->fail_server(lost, /*re_replicate=*/true);
  sim_->run_until(scda::sim::secs(30.0));
  // Replication factor restored on alive servers.
  meta = cloud_->fes().dispatch_by_content(1).find(1);
  ASSERT_EQ(meta->replicas.size(), 2u);
  for (const auto r : meta->replicas) {
    EXPECT_NE(static_cast<std::size_t>(r), lost);
    EXPECT_FALSE(
        cloud_->servers()[static_cast<std::size_t>(r)].failed());
    EXPECT_TRUE(cloud_->servers()[static_cast<std::size_t>(r)].has(1));
  }
}

TEST_F(FailureTest, NewWritesAvoidFailedServers) {
  cloud_->fail_server(0, false);
  cloud_->fail_server(1, false);
  for (int i = 0; i < 12; ++i)
    cloud_->write(static_cast<std::size_t>(i % 8), i + 1,
                  util::kilobytes(100));
  sim_->run_until(scda::sim::secs(30.0));
  EXPECT_FALSE(cloud_->servers()[0].has(3));
  EXPECT_EQ(cloud_->servers()[0].block_count(), 0u);
  EXPECT_EQ(cloud_->servers()[1].block_count(), 0u);
  EXPECT_EQ(cloud_->failed_writes(), 0u);
}

TEST_F(FailureTest, RecoveryMakesServerEligibleAgain) {
  // Fail every server except #3, write, recover, write again.
  for (std::size_t s = 0; s < cloud_->servers().size(); ++s)
    if (s != 3) cloud_->fail_server(s, false);
  cloud_->write(0, 1, util::kilobytes(64));
  sim_->run_until(scda::sim::secs(5.0));
  EXPECT_TRUE(cloud_->servers()[3].has(1));

  cloud_->recover_server(5);
  cloud_->write(0, 2, util::kilobytes(64));
  sim_->run_until(scda::sim::secs(10.0));
  // Content 2's copies can only be on 3 or 5.
  const auto* meta = cloud_->fes().dispatch_by_content(2).find(2);
  ASSERT_NE(meta, nullptr);
  for (const auto r : meta->replicas) EXPECT_TRUE(r == 3 || r == 5);
}

TEST_F(FailureTest, DoubleFailureIsIdempotent) {
  cloud_->fail_server(0, false);
  EXPECT_NO_THROW(cloud_->fail_server(0, false));
  EXPECT_TRUE(cloud_->servers()[0].failed());
  cloud_->recover_server(0);
  EXPECT_FALSE(cloud_->servers()[0].failed());
}

}  // namespace
}  // namespace scda::core
