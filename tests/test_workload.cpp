#include "workload/generators.h"

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "util/units.h"
#include "workload/driver.h"

namespace scda::workload {
namespace {

using transport::ContentClass;

TEST(VideoWorkload, SizesRespectPaperBounds) {
  sim::Rng rng(1);
  VideoWorkload gen;
  for (int i = 0; i < 5000; ++i) {
    const FlowRequest r = gen.next(rng);
    EXPECT_GT(r.inter_arrival_s, 0.0);
    if (r.is_control) {
      EXPECT_LT(r.size_bytes, 5 * 1000);  // control < 5 KB (paper X-A1)
    } else {
      EXPECT_GE(r.size_bytes, 5 * 1000);
      EXPECT_LE(r.size_bytes, 30 * 1000 * 1000);  // 30 MB cap (paper)
    }
  }
}

TEST(VideoWorkload, ControlFractionMatchesConfig) {
  sim::Rng rng(2);
  VideoWorkloadConfig cfg;
  cfg.control_flows_per_video = 3.0;  // 75% of flows are control
  VideoWorkload gen(cfg);
  int control = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (gen.next(rng).is_control) ++control;
  EXPECT_NEAR(static_cast<double>(control) / n, 0.75, 0.02);
}

TEST(VideoWorkload, WithoutControlFlowsAllVideo) {
  sim::Rng rng(3);
  VideoWorkloadConfig cfg;
  cfg.include_control_flows = false;
  VideoWorkload gen(cfg);
  for (int i = 0; i < 2000; ++i) EXPECT_FALSE(gen.next(rng).is_control);
}

TEST(VideoWorkload, ArrivalRateScalesWithControlFlows) {
  sim::Rng rng(4);
  VideoWorkloadConfig cfg;
  cfg.video_arrival_rate = 5.0;
  cfg.control_flows_per_video = 3.0;
  VideoWorkload gen(cfg);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += gen.next(rng).inter_arrival_s;
  // total arrival rate = 5 * (1+3) = 20 flows/s
  EXPECT_NEAR(total / n, 1.0 / 20.0, 0.002);
}

TEST(DatacenterWorkload, MiceFractionRespected) {
  sim::Rng rng(5);
  DatacenterWorkloadConfig cfg;
  cfg.mice_fraction = 0.8;
  DatacenterWorkload gen(cfg);
  int big = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (gen.next(rng).size_bytes >= cfg.elephant_min_bytes) ++big;
  // Elephants are >= 200 KB; a few mice may cross that line too.
  EXPECT_NEAR(static_cast<double>(big) / n, 0.2, 0.04);
}

TEST(DatacenterWorkload, ElephantSizesBounded) {
  sim::Rng rng(6);
  DatacenterWorkloadConfig cfg;
  DatacenterWorkload gen(cfg);
  for (int i = 0; i < 20000; ++i) {
    const auto s = gen.next(rng).size_bytes;
    EXPECT_GE(s, 500);
    EXPECT_LE(s, cfg.elephant_cap_bytes);
  }
}

TEST(DatacenterWorkload, ExponentialFallbackWhenCvZero) {
  sim::Rng rng(7);
  DatacenterWorkloadConfig cfg;
  cfg.arrival_cv = 0.0;
  cfg.arrival_rate = 100.0;
  DatacenterWorkload gen(cfg);
  double total = 0;
  for (int i = 0; i < 20000; ++i) total += gen.next(rng).inter_arrival_s;
  EXPECT_NEAR(total / 20000, 0.01, 0.001);
}

TEST(ParetoPoissonWorkload, MatchesPaperParameters) {
  sim::Rng rng(8);
  ParetoPoissonWorkload gen;  // defaults = paper section X-B
  double gap_sum = 0, size_sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const FlowRequest r = gen.next(rng);
    gap_sum += r.inter_arrival_s;
    size_sum += static_cast<double>(r.size_bytes);
  }
  EXPECT_NEAR(gap_sum / n, 1.0 / 200.0, 0.0005);       // 200 flows/s
  EXPECT_NEAR(size_sum / n / 500e3, 1.0, 0.25);        // mean 500 KB
}

TEST(WorkloadDriver, IssuesTrafficIntoCloud) {
  sim::Simulator sim(9);
  core::CloudConfig cc;
  cc.topology.n_agg = 2;
  cc.topology.tors_per_agg = 2;
  cc.topology.servers_per_tor = 2;
  cc.topology.n_clients = 4;
  core::Cloud cloud(sim, cc);

  DriverConfig dc;
  dc.end_time_s = 5.0;
  dc.read_fraction = 0.5;
  ParetoPoissonConfig pc;
  pc.arrival_rate = 10.0;
  pc.cap_bytes = 200 * 1000;
  WorkloadDriver driver(cloud,
                        std::make_unique<ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(20.0));
  EXPECT_GT(driver.issued_writes(), 10u);
  EXPECT_GT(driver.issued_reads(), 0u);
  EXPECT_EQ(cloud.failed_reads(), 0u);  // driver only reads stored content
}

TEST(WorkloadDriver, StopsIssuingAtEndTime) {
  sim::Simulator sim(10);
  core::CloudConfig cc;
  cc.topology.n_agg = 1;
  cc.topology.tors_per_agg = 2;
  cc.topology.servers_per_tor = 2;
  cc.topology.n_clients = 2;
  core::Cloud cloud(sim, cc);

  DriverConfig dc;
  dc.end_time_s = 2.0;
  ParetoPoissonConfig pc;
  pc.arrival_rate = 50.0;
  pc.cap_bytes = 100 * 1000;
  WorkloadDriver driver(cloud,
                        std::make_unique<ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(2.0));
  const auto at_end = driver.issued_writes() + driver.issued_reads();
  sim.run_until(scda::sim::secs(10.0));
  EXPECT_EQ(driver.issued_writes() + driver.issued_reads(), at_end);
  EXPECT_NEAR(static_cast<double>(at_end), 100.0, 40.0);  // ~50/s * 2 s
}

}  // namespace
}  // namespace scda::workload
