#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scda::sim {
namespace {

constexpr int kSamples = 20000;

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += r.exponential(0.25);
  EXPECT_NEAR(sum / kSamples, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ParetoLowerBoundHolds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.6), 2.0);
}

TEST(Rng, ParetoMeanParametrization) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += r.pareto_mean(500e3, 2.5);
  // heavy-tailed: tolerate 10% error on the empirical mean at shape 2.5
  EXPECT_NEAR(sum / kSamples, 500e3, 50e3);
}

TEST(Rng, ParetoMeanNeedsShapeAboveOne) {
  Rng r(1);
  EXPECT_THROW(r.pareto_mean(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, BoundedParetoWithinBounds) {
  Rng r(9);
  for (int i = 0; i < 2000; ++i) {
    const double v = r.bounded_pareto(1e3, 1.2, 1e6);
    EXPECT_GE(v, 1e3);
    EXPECT_LE(v, 1e6);
  }
}

TEST(Rng, BoundedParetoRejectsBadCap) {
  Rng r(1);
  EXPECT_THROW(r.bounded_pareto(10.0, 1.0, 5.0), std::invalid_argument);
}

TEST(Rng, LognormalMeanCvMatchesMoments) {
  Rng r(13);
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = r.lognormal_mean_cv(100.0, 0.5);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum2 / kSamples - mean * mean;
  EXPECT_NEAR(mean, 100.0, 2.0);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.05);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng r(17);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < kSamples; ++i)
    if (r.discrete(w) == 1) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, 0.75, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < kSamples; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

class ParetoShapeSweep : public ::testing::TestWithParam<double> {};

TEST_P(ParetoShapeSweep, EmpiricalMeanTracksAnalytic) {
  const double shape = GetParam();
  Rng r(23);
  const double xm = 1000.0;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += r.pareto(xm, shape);
  const double analytic = xm * shape / (shape - 1.0);
  EXPECT_NEAR(sum / kSamples / analytic, 1.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParetoShapeSweep,
                         ::testing::Values(2.0, 2.5, 3.0, 4.0));

}  // namespace
}  // namespace scda::sim
