#include "core/selection.h"

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "core/rate_allocator.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace scda::core {
namespace {

using transport::ContentClass;

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() : rng_(99) {
    cfg_.n_agg = 2;
    cfg_.tors_per_agg = 2;
    cfg_.servers_per_tor = 2;  // 8 servers
    cfg_.n_clients = 4;
    cfg_.base_bps = sim::BitRate{100e6};
    topo_ = std::make_unique<net::ThreeTierTree>(sim_, cfg_);
    params_.alpha = 1.0;
    alloc_ = std::make_unique<RateAllocator>(topo_->net(), params_);
    hier_ = std::make_unique<Hierarchy>(*topo_, *alloc_);
    for (std::size_t s = 0; s < 8; ++s)
      servers_.emplace_back(s, topo_->servers()[s]);
    hier_->update();
  }

  ServerSelector make(PlacementPolicy pol) {
    return ServerSelector(*hier_, servers_, params_, rng_, pol);
  }

  /// Drive load onto server `s`'s access links so they become the
  /// bottleneck and their advertised per-flow rate drops. Flows terminate
  /// at the ToR so only the access links carry them.
  void load_server(std::size_t s, int flows = 4) {
    const net::NodeId tor =
        topo_->tors()[topo_->tor_of_server(s)];
    for (int f = 0; f < flows; ++f) {
      alloc_->register_flow(next_flow_++, topo_->servers()[s], tor);
      alloc_->register_flow(next_flow_++, tor, topo_->servers()[s]);
    }
    for (int i = 0; i < 50; ++i) alloc_->tick();
    hier_->update();
  }

  sim::Simulator sim_;
  sim::Rng rng_;
  net::TopologyConfig cfg_;
  ScdaParams params_;
  std::unique_ptr<net::ThreeTierTree> topo_;
  std::unique_ptr<RateAllocator> alloc_;
  std::unique_ptr<Hierarchy> hier_;
  std::vector<BlockServer> servers_;
  net::FlowId next_flow_ = scda::net::FlowId{1};
};

TEST_F(SelectionTest, ScdaAvoidsLoadedServerForWrites) {
  load_server(0);
  auto sel = make(PlacementPolicy::kScda);
  const auto t = sel.select_write_target(ContentClass::kSemiInteractive);
  ASSERT_GE(t, 0);
  EXPECT_NE(t, 0);
}

TEST_F(SelectionTest, RandomPolicyCoversAllServers) {
  auto sel = make(PlacementPolicy::kRandom);
  std::set<std::int32_t> seen;
  for (int i = 0; i < 300; ++i)
    seen.insert(sel.select_write_target(ContentClass::kSemiInteractive));
  EXPECT_EQ(seen.size(), 8u);
}

TEST_F(SelectionTest, ReplicaExcludesPrimary) {
  auto sel = make(PlacementPolicy::kScda);
  for (int i = 0; i < 20; ++i) {
    const auto r =
        sel.select_replica_target(ContentClass::kSemiInteractive, 3);
    EXPECT_NE(r, 3);
  }
  auto rnd = make(PlacementPolicy::kRandom);
  for (int i = 0; i < 50; ++i)
    EXPECT_NE(rnd.select_replica_target(ContentClass::kSemiInteractive, 3),
              3);
}

TEST_F(SelectionTest, AdmitFilterRespected) {
  auto sel = make(PlacementPolicy::kScda);
  sel.set_admit_filter([](std::size_t s) { return s == 5; });
  EXPECT_EQ(sel.select_write_target(ContentClass::kSemiInteractive), 5);
  auto rnd = make(PlacementPolicy::kRandom);
  rnd.set_admit_filter([](std::size_t s) { return s == 6; });
  EXPECT_EQ(rnd.select_write_target(ContentClass::kSemiInteractive), 6);
}

TEST_F(SelectionTest, ReadReplicaPicksBestUplink) {
  load_server(1);  // degrade server 1's uplink
  auto sel = make(PlacementPolicy::kScda);
  const auto r = sel.select_read_replica({1, 6});
  EXPECT_EQ(r, 6);
}

TEST_F(SelectionTest, ReadReplicaEmptyListRejected) {
  auto sel = make(PlacementPolicy::kScda);
  EXPECT_EQ(sel.select_read_replica({}), -1);
}

TEST_F(SelectionTest, ReadReplicaSingleCandidate) {
  auto sel = make(PlacementPolicy::kScda);
  EXPECT_EQ(sel.select_read_replica({4}), 4);
}

TEST_F(SelectionTest, DormantServersReservedForPassiveReplicas) {
  params_.rscale = sim::BitRate{50e6};  // enable the dormant policy
  // Load all servers except 7 below R_scale; server 7 stays idle (100M).
  for (std::size_t s = 0; s < 7; ++s) load_server(s, 2);
  auto sel = make(PlacementPolicy::kScda);
  // Active content must avoid server 7 (uplink above R_scale).
  const auto active = sel.select_write_target(ContentClass::kInteractive);
  EXPECT_NE(active, 7);
  // Passive replicas go *to* the dormant-eligible server.
  const auto passive =
      sel.select_replica_target(ContentClass::kPassive, active);
  EXPECT_EQ(passive, 7);
}

TEST_F(SelectionTest, PassiveFallsBackWhenNoDormantCandidate) {
  params_.rscale = sim::BitRate{1e3};  // nothing qualifies as dormant-eligible…
  // …because every uplink is far above 1 kbps, so active content has no
  // admissible server either; the fallback path must still pick one.
  auto sel = make(PlacementPolicy::kScda);
  const auto t = sel.select_write_target(ContentClass::kSemiInteractive);
  EXPECT_GE(t, 0);
}

TEST_F(SelectionTest, PowerAwareSelectionPrefersEfficientServer) {
  params_.power_aware = true;
  // Equal rates everywhere; make server 2 draw half the power of others.
  for (std::size_t s = 0; s < 8; ++s)
    servers_[s].power().record_sample(s == 2 ? 100.0 : 200.0, 1.0);
  auto sel = make(PlacementPolicy::kScda);
  EXPECT_EQ(sel.select_write_target(ContentClass::kSemiInteractive), 2);
}

TEST_F(SelectionTest, InteractiveUsesMinUpDown) {
  // Degrade only the downlink of server 4; min(up,down) drops, so
  // interactive selection must avoid it even though its uplink is pristine.
  for (int f = 0; f < 4; ++f)
    alloc_->register_flow(next_flow_++, topo_->clients()[0],
                          topo_->servers()[4]);
  for (int i = 0; i < 50; ++i) alloc_->tick();
  hier_->update();
  auto sel = make(PlacementPolicy::kScda);
  EXPECT_NE(sel.select_write_target(ContentClass::kInteractive), 4);
}

}  // namespace
}  // namespace scda::core
