#include "core/classifier.h"

#include <gtest/gtest.h>

namespace scda::core {
namespace {

using transport::ContentClass;

TEST(Classifier, UnknownContentIsPassive) {
  ContentClassifier c;
  EXPECT_EQ(c.classify(1, scda::sim::secs(0.0)), ContentClass::kPassive);
}

TEST(Classifier, FewAccessesStayPassive) {
  ContentClassifier c;
  c.record_write(1, scda::sim::secs(0.0));
  c.record_read(1, scda::sim::secs(10.0));
  EXPECT_EQ(c.classify(1, scda::sim::secs(20.0)), ContentClass::kPassive);
}

TEST(Classifier, HighReadsOnlyIsSemiInteractive) {
  ContentClassifier c;
  for (int i = 0; i < 6; ++i) c.record_read(1, scda::sim::secs(i * 2.0));
  EXPECT_EQ(c.classify(1, scda::sim::secs(12.0)),
            ContentClass::kSemiInteractive);
}

TEST(Classifier, HighWritesOnlyIsSemiInteractive) {
  ContentClassifier c;
  for (int i = 0; i < 6; ++i) c.record_write(1, scda::sim::secs(i * 2.0));
  EXPECT_EQ(c.classify(1, scda::sim::secs(12.0)),
            ContentClass::kSemiInteractive);
}

TEST(Classifier, TightInterleavingIsInteractive) {
  ContentClassifier c;
  // writes and reads interleaved every second: HWHR with gaps << 5 s.
  for (int i = 0; i < 5; ++i) {
    c.record_write(1, scda::sim::secs(i * 2.0));
    c.record_read(1, scda::sim::secs(i * 2.0 + 1.0));
  }
  EXPECT_EQ(c.classify(1, scda::sim::secs(10.0)), ContentClass::kInteractive);
}

TEST(Classifier, LooseInterleavingIsNotInteractive) {
  ClassifierConfig cfg;
  cfg.window_s = 600.0;
  ContentClassifier c(cfg);
  // High write and read counts, but 30 s apart (> 5 s interactivity gap).
  for (int i = 0; i < 5; ++i) {
    c.record_write(1, scda::sim::secs(i * 60.0));
    c.record_read(1, scda::sim::secs(i * 60.0 + 30.0));
  }
  EXPECT_EQ(c.classify(1, scda::sim::secs(290.0)),
            ContentClass::kSemiInteractive);
}

TEST(Classifier, WindowForgetsOldAccesses) {
  ContentClassifier c;  // 60 s window
  for (int i = 0; i < 6; ++i) c.record_read(1, scda::sim::secs(i * 1.0));
  EXPECT_EQ(c.classify(1, scda::sim::secs(6.0)),
            ContentClass::kSemiInteractive);
  // Two minutes later the burst is outside the window.
  EXPECT_EQ(c.classify(1, scda::sim::secs(130.0)), ContentClass::kPassive);
}

TEST(Classifier, AccessCountRespectsWindow) {
  ContentClassifier c;
  c.record_write(1, scda::sim::secs(0.0));
  c.record_read(1, scda::sim::secs(30.0));
  EXPECT_EQ(c.accesses_in_window(1, scda::sim::secs(40.0)), 2u);
  EXPECT_EQ(c.accesses_in_window(1, scda::sim::secs(70.0)), 1u);  // w expired
  EXPECT_EQ(c.accesses_in_window(1, scda::sim::secs(100.0)), 0u);  // expired
}

TEST(Classifier, ContentsAreIndependent) {
  ContentClassifier c;
  for (int i = 0; i < 6; ++i) c.record_read(1, scda::sim::secs(i * 1.0));
  EXPECT_EQ(c.classify(1, scda::sim::secs(6.0)),
            ContentClass::kSemiInteractive);
  EXPECT_EQ(c.classify(2, scda::sim::secs(6.0)), ContentClass::kPassive);
}

TEST(Classifier, ThresholdConfigurable) {
  ClassifierConfig cfg;
  cfg.high_accesses_per_window = 2;
  ContentClassifier c(cfg);
  c.record_read(1, scda::sim::secs(0.0));
  c.record_read(1, scda::sim::secs(1.0));
  EXPECT_EQ(c.classify(1, scda::sim::secs(2.0)),
            ContentClass::kSemiInteractive);
}

}  // namespace
}  // namespace scda::core
