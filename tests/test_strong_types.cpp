// Unit tests for the strong value types (sim/types.h): typed ids and
// simulation time. These lock the properties the tree-wide conversion
// relies on — zero-cost layout, closed arithmetic, hashing, ordering,
// and byte-stable %.9g formatting at the JSON emission boundary.
#include "sim/types.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "net/packet.h"

namespace scda::sim {
namespace {

// --- compile-time contract ---------------------------------------------------

// Zero-cost: a StrongId is layout-identical to its representation and a
// SimTime to a double; passing either by value is passing the raw rep.
static_assert(sizeof(net::NodeId) == sizeof(net::NodeId::rep_type));
static_assert(sizeof(SimTime) == sizeof(double));
static_assert(std::is_trivially_copyable_v<net::NodeId>);
static_assert(std::is_trivially_copyable_v<SimTime>);

// No implicit conversions in or out, and distinct id spaces do not mix.
static_assert(!std::is_convertible_v<int, net::NodeId>);
static_assert(!std::is_convertible_v<net::NodeId, int>);
static_assert(!std::is_convertible_v<net::NodeId, net::LinkId>);
static_assert(!std::is_convertible_v<net::FlowId, net::NodeId>);
static_assert(!std::is_convertible_v<double, SimTime>);
static_assert(!std::is_convertible_v<SimTime, double>);
static_assert(std::is_constructible_v<SimTime, double>);  // explicit ok

TEST(StrongId, ValueRoundTripAndValidity) {
  const net::NodeId n{7};
  EXPECT_EQ(n.value(), 7);
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.index(), 7u);
  EXPECT_EQ(net::NodeId::from_index(7u), n);

  const net::NodeId invalid{-1};
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(net::NodeId{}.valid());  // default is Rep{} == 0
  EXPECT_EQ(net::NodeId{}.value(), 0);
}

TEST(StrongId, OrderingAndEquality) {
  const net::FlowId a{1};
  const net::FlowId b{2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == net::FlowId{1});
}

TEST(StrongId, IncrementGeneratesSequentialIds) {
  net::FlowId id{5};
  EXPECT_EQ((id++).value(), 5);
  EXPECT_EQ(id.value(), 6);
  EXPECT_EQ((++id).value(), 7);
}

TEST(StrongId, HashMatchesRepHashAndWorksInUnorderedContainers) {
  const net::LinkId l{42};
  EXPECT_EQ(std::hash<net::LinkId>{}(l),
            std::hash<net::LinkId::rep_type>{}(l.value()));

  std::unordered_map<net::FlowId, double> m;
  m[net::FlowId{1}] = 1.5;
  m[net::FlowId{2}] = 2.5;
  EXPECT_DOUBLE_EQ(m.at(net::FlowId{1}), 1.5);
  EXPECT_EQ(m.count(net::FlowId{3}), 0u);

  std::unordered_set<net::NodeId> s{net::NodeId{0}, net::NodeId{0},
                                    net::NodeId{9}};
  EXPECT_EQ(s.size(), 2u);
}

// --- SimTime -----------------------------------------------------------------

TEST(SimTime, ArithmeticIsClosedAndMatchesRawDoubles) {
  const SimTime a{1.25};
  const SimTime b{0.75};
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 0.5);
  EXPECT_DOUBLE_EQ((-a).seconds(), -1.25);
  EXPECT_DOUBLE_EQ((a * 2.0).seconds(), 2.5);
  EXPECT_DOUBLE_EQ((2.0 * a).seconds(), 2.5);
  EXPECT_DOUBLE_EQ((a / 2.0).seconds(), 0.625);
  EXPECT_DOUBLE_EQ(a / b, 1.25 / 0.75);  // ratio is a scalar

  SimTime t{};
  t += a;
  t -= b;
  EXPECT_DOUBLE_EQ(t.seconds(), 0.5);
}

TEST(SimTime, OrderingTotalAndConsistent) {
  const SimTime early{1.0};
  const SimTime late{2.0};
  EXPECT_TRUE(early < late);
  EXPECT_TRUE(early <= late);
  EXPECT_TRUE(late > early);
  EXPECT_TRUE(late >= early);
  EXPECT_TRUE(early != late);
  EXPECT_TRUE(SimTime{2.0} == late);
  EXPECT_TRUE(SimTime::zero() < early);
}

TEST(SimTime, SecsHelperAndDefaultAreExact) {
  EXPECT_DOUBLE_EQ(secs(0.05).seconds(), 0.05);
  EXPECT_DOUBLE_EQ(SimTime{}.seconds(), 0.0);
  EXPECT_TRUE(SimTime{} == SimTime::zero());
}

TEST(SimTime, HashMatchesDoubleHash) {
  EXPECT_EQ(std::hash<SimTime>{}(SimTime{3.5}),
            std::hash<double>{}(3.5));
}

// --- %.9g formatting stability ----------------------------------------------

// Every JSON emitter in the tree prints times as %.9g of .seconds().
// The conversion is observably zero-cost only if that formatting is
// byte-identical to formatting the raw double the field used to hold.
std::string fmt9g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

TEST(SimTime, Format9gIsByteIdenticalToRawDouble) {
  const double samples[] = {0.0,       1.0,          0.05,
                            1e-9,      123456789.0,  1.0 / 3.0,
                            5e-6,      2.000000001,  -0.25,
                            60.0,      1e300,        3.1415926535897931};
  for (const double v : samples) {
    EXPECT_EQ(fmt9g(SimTime{v}.seconds()), fmt9g(v)) << "sample " << v;
  }
}

TEST(StrongId, FormattingGoesThroughValue) {
  // Ids print through value() with integer formats; lock the idiom used
  // by the emitters (e.g. "flow_%d" with FlowId::value()).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(net::FlowId{37}.value()));
  EXPECT_STREQ(buf, "37");
}

}  // namespace
}  // namespace scda::sim
